package graph

import (
	"fmt"
	"math/rand"
)

// The generators below produce the graph families used across the paper's
// experiments (DESIGN.md §3): paths and trees (high diameter, treewidth 1),
// grids and wide grids (planar, the Fig. 1 topology), tori, caterpillars
// (bounded treewidth with tunable shape), stars and complete graphs
// (degenerate extremes), random regular graphs (expander stand-ins), barbells
// (classic congestion bottlenecks) and random connected graphs.
//
// All generators are deterministic given their arguments (randomized ones
// take an explicit seed) so that experiments are reproducible.

// Path returns the n-node path 0-1-...-(n-1) with unit weights.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	return g
}

// Cycle returns the n-node cycle with unit weights (n >= 3).
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.MustAddEdge(n-1, 0, 1)
	}
	return g
}

// Grid returns the rows x cols grid with unit weights. Node (r, c) has ID
// r*cols + c. A "wide grid" (cylinder-like shape with small diameter but
// large √n) is Grid(h, w) with h << w.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) NodeID { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return g
}

// Torus returns the rows x cols torus (grid with wraparound) with unit
// weights; rows, cols >= 3 to avoid parallel edges.
func Torus(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) NodeID { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.MustAddEdge(id(r, c), id(r, (c+1)%cols), 1)
			g.MustAddEdge(id(r, c), id((r+1)%rows, c), 1)
		}
	}
	return g
}

// CompleteTree returns the complete b-ary tree with the given number of
// levels (levels >= 1; a single level is one node). Unit weights.
func CompleteTree(branching, levels int) *Graph {
	if levels < 1 {
		return New(0)
	}
	n := 1
	width := 1
	for l := 1; l < levels; l++ {
		width *= branching
		n += width
	}
	g := New(n)
	// Children of node v are b*v+1 ... b*v+b, heap style.
	for v := 0; v < n; v++ {
		for c := 1; c <= branching; c++ {
			child := branching*v + c
			if child < n {
				g.MustAddEdge(v, child, 1)
			}
		}
	}
	return g
}

// Star returns the n-node star with center 0 and unit weights.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i, 1)
	}
	return g
}

// Complete returns the complete graph K_n with unit weights.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v, 1)
		}
	}
	return g
}

// Caterpillar returns a caterpillar: a spine path of spine nodes, each spine
// node with legs pendant leaves. Treewidth 1, diameter spine+1, n =
// spine*(1+legs). Unit weights.
func Caterpillar(spine, legs int) *Graph {
	g := New(spine * (1 + legs))
	for i := 0; i+1 < spine; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.MustAddEdge(i, next, 1)
			next++
		}
	}
	return g
}

// Barbell returns two K_k cliques joined by a path of bridge nodes
// (bridge >= 0; bridge == 0 joins the cliques by a single edge).
// The classic bandwidth-bottleneck topology. Unit weights.
func Barbell(k, bridge int) *Graph {
	n := 2*k + bridge
	g := New(n)
	clique := func(start int) {
		for u := start; u < start+k; u++ {
			for v := u + 1; v < start+k; v++ {
				g.MustAddEdge(u, v, 1)
			}
		}
	}
	clique(0)
	clique(k + bridge)
	prev := k - 1 // a node of the first clique
	for b := 0; b < bridge; b++ {
		g.MustAddEdge(prev, k+b, 1)
		prev = k + b
	}
	g.MustAddEdge(prev, k+bridge, 1)
	return g
}

// RandomRegular returns a connected random d-regular-ish multigraph on n
// nodes via the configuration model with retries, used as an expander
// stand-in (random regular graphs are expanders with high probability).
// Parallel edges are collapsed and self-loops dropped, so degrees may fall
// slightly below d; the graph is then patched to be connected. n*d must be
// even for an exact configuration; otherwise one stub is dropped.
func RandomRegular(n, d int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	if n <= 1 {
		return g
	}
	if d >= n {
		d = n - 1
	}
	stubs := make([]NodeID, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	if len(stubs)%2 == 1 {
		stubs = stubs[:len(stubs)-1]
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	used := make(map[[2]NodeID]bool)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			continue
		}
		key := [2]NodeID{min(u, v), max(u, v)}
		if used[key] {
			continue
		}
		used[key] = true
		g.MustAddEdge(u, v, 1)
	}
	patchConnected(g, rng)
	return g
}

// RandomConnected returns a connected random graph on n nodes with roughly
// extra additional edges beyond a random spanning tree. Unit weights unless
// maxWeight > 1, in which case weights are uniform in [1, maxWeight].
func RandomConnected(n, extra int, maxWeight int64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	w := func() int64 {
		if maxWeight <= 1 {
			return 1
		}
		return 1 + rng.Int63n(maxWeight)
	}
	// Random spanning tree by random attachment (random recursive tree).
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		parent := perm[rng.Intn(i)]
		g.MustAddEdge(perm[i], parent, w())
	}
	used := make(map[[2]NodeID]bool, extra)
	for _, e := range g.Edges() {
		used[[2]NodeID{min(e.U, e.V), max(e.U, e.V)}] = true
	}
	for tries, added := 0, 0; added < extra && tries < 20*extra+100; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		key := [2]NodeID{min(u, v), max(u, v)}
		if used[key] {
			continue
		}
		used[key] = true
		g.MustAddEdge(u, v, w())
		added++
	}
	return g
}

// patchConnected adds unit edges between components until g is connected.
func patchConnected(g *Graph, rng *rand.Rand) {
	comps := Components(g)
	for len(comps) > 1 {
		a := comps[0][rng.Intn(len(comps[0]))]
		b := comps[1][rng.Intn(len(comps[1]))]
		g.MustAddEdge(a, b, 1)
		comps = Components(g)
	}
}

// Family is a named graph generator used by experiment sweeps.
type Family struct {
	Name string
	Make func(n int) *Graph
}

// StandardFamilies returns the graph families that the experiment tables
// sweep over, each parameterized by an approximate target size n.
func StandardFamilies() []Family {
	return []Family{
		{Name: "path", Make: Path},
		{Name: "grid", Make: func(n int) *Graph { s := isqrt(n); return Grid(s, s) }},
		{Name: "widegrid", Make: func(n int) *Graph {
			h := isqrt(isqrt(n) * 2)
			if h < 2 {
				h = 2
			}
			return Grid(h, (n+h-1)/h)
		}},
		{Name: "tree", Make: func(n int) *Graph { return CompleteTree(2, log2ceil(n)+1) }},
		{Name: "expander", Make: func(n int) *Graph { return RandomRegular(n, 4, 7) }},
	}
}

// isqrt returns floor(sqrt(n)) for n >= 0.
func isqrt(n int) int {
	if n < 0 {
		return 0
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	if x*x > n {
		x--
	}
	return x
}

// log2ceil returns ceil(log2(n)) for n >= 1, and 0 for n <= 1.
func log2ceil(n int) int {
	k, p := 0, 1
	for p < n {
		p *= 2
		k++
	}
	return k
}

// GridID returns the node ID of cell (r, c) in a Grid(rows, cols) graph.
func GridID(cols, r, c int) NodeID { return r*cols + c }

// FormatSize renders n as a short human label (for experiment tables).
func FormatSize(n int) string { return fmt.Sprintf("%d", n) }
