package experiments

import (
	"runtime"
	"sync"

	"distlap/internal/graph"
	"distlap/internal/simtrace"
)

// A point is one independent sweep point of an experiment: it builds its
// own graph, network(s) and derived seeds, traces into the private
// collector it is handed, and returns the table rows it contributes.
//
// Isolation contract (DESIGN.md §7): a point must not share a
// congest.Network, ncc.Network, *rand.Rand, or simtrace collector with any
// other point, and must not mutate anything captured from the enclosing
// runner. Graphs are rebuilt inside the point (the generators are
// deterministic), so points are safe to execute on concurrent worker
// goroutines in any order.
type point func(tr simtrace.Collector) ([][]string, error)

// workers resolves the worker-pool width for a config: Parallel if
// positive, otherwise GOMAXPROCS.
func (cfg Config) workers() int {
	if cfg.Parallel > 0 {
		return cfg.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// runPoints executes the sweep points of one experiment on a bounded
// worker pool and assembles their rows in canonical order (the order of
// pts). Each point traces into a private simtrace.Recorder; after all
// points finish, the recorders are replayed into cfg.Trace in canonical
// order. The output — rows and the byte stream reaching cfg.Trace — is
// therefore identical for every pool width, including 1 (the parity test
// in parallel_test.go pins this).
//
// On error, the first error in canonical point order is returned (not the
// first to occur on the wall clock, which would be schedule-dependent).
func runPoints(cfg Config, pts []point) ([][]string, error) {
	type result struct {
		rows [][]string
		rec  *simtrace.Recorder
		err  error
	}
	results := make([]result, len(pts))
	tracing := cfg.Trace != nil

	run := func(i int) {
		var tr simtrace.Collector = simtrace.Nop{}
		var rec *simtrace.Recorder
		if tracing {
			rec = simtrace.NewRecorder()
			tr = rec
		}
		rows, err := pts[i](tr)
		results[i] = result{rows: rows, rec: rec, err: err}
	}

	if w := cfg.workers(); w <= 1 || len(pts) <= 1 {
		for i := range pts {
			run(i)
		}
	} else {
		if w > len(pts) {
			w = len(pts)
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					run(i)
				}
			}()
		}
		for i := range pts {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
	}
	var rows [][]string
	for i := range results {
		if tracing {
			results[i].rec.Replay(cfg.Trace)
		}
		rows = append(rows, results[i].rows...)
	}
	return rows, nil
}

// row wraps a single table row as a point result.
func row(cells ...string) [][]string { return [][]string{cells} }

// namedGraph names a deterministic graph constructor. Runners sweep over
// namedGraph families and call mk() inside each point, so every point owns
// its graph instance (nothing is shared across workers).
type namedGraph struct {
	name string
	mk   func() *graph.Graph
}
