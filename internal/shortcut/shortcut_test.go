package shortcut

import (
	"errors"
	"testing"
	"testing/quick"

	"distlap/internal/graph"
)

func gridRows(rows, cols int) [][]graph.NodeID {
	parts := make([][]graph.NodeID, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			parts[r] = append(parts[r], graph.GridID(cols, r, c))
		}
	}
	return parts
}

func TestValidateParts(t *testing.T) {
	g := graph.Grid(3, 3)
	if err := ValidateParts(g, gridRows(3, 3)); err != nil {
		t.Fatal(err)
	}
	if err := ValidateParts(g, [][]graph.NodeID{{}}); !errors.Is(err, ErrEmptyPart) {
		t.Fatalf("err=%v", err)
	}
	if err := ValidateParts(g, [][]graph.NodeID{{0, 8}}); !errors.Is(err, ErrPartDisconnected) {
		t.Fatalf("err=%v", err)
	}
	if err := ValidateParts(g, [][]graph.NodeID{{0, 99}}); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("err=%v", err)
	}
}

func TestCongestion(t *testing.T) {
	parts := [][]graph.NodeID{{0, 1}, {1, 2}, {1, 3}, {4}}
	if c := Congestion(parts); c != 3 {
		t.Fatalf("congestion=%d, want 3", c)
	}
	if Congestion(nil) != 0 {
		t.Fatal("empty congestion")
	}
}

func TestTrivialBuilderOnGridRows(t *testing.T) {
	g := graph.Grid(4, 6)
	s, err := TrivialBuilder{}.Build(g, gridRows(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	if s.Congestion != 0 {
		t.Fatalf("congestion=%d", s.Congestion)
	}
	if s.Dilation != 5 { // row of 6 nodes has diameter 5
		t.Fatalf("dilation=%d, want 5", s.Dilation)
	}
	if s.Quality() != 5 {
		t.Fatalf("quality=%d", s.Quality())
	}
}

func TestVerifyRecomputesCertificates(t *testing.T) {
	g := graph.Path(6)
	parts := [][]graph.NodeID{{0, 1, 2}, {3, 4, 5}}
	s := &Shortcut{Parts: parts, Extra: make([][]graph.EdgeID, 2), Congestion: 99, Dilation: 99}
	if err := Verify(g, s); err != nil {
		t.Fatal(err)
	}
	if s.Congestion != 0 || s.Dilation != 2 {
		t.Fatalf("c=%d d=%d", s.Congestion, s.Dilation)
	}
}

func TestVerifyErrors(t *testing.T) {
	g := graph.Path(4)
	s := &Shortcut{Parts: [][]graph.NodeID{{0, 1}}, Extra: nil}
	if err := Verify(g, s); !errors.Is(err, ErrPartsMismatch) {
		t.Fatalf("err=%v", err)
	}
	s = &Shortcut{
		Parts: [][]graph.NodeID{{0, 1}},
		Extra: [][]graph.EdgeID{{42}},
	}
	if err := Verify(g, s); err == nil {
		t.Fatal("want out-of-range edge error")
	}
}

func TestSteinerBuilderConnectsSplitParts(t *testing.T) {
	// On a star, the leaves {1,2} do not induce a connected subgraph, so
	// this is not a valid part; use a path where a part is spread out but
	// connected, and check Steiner shortcut shrinks nothing (already a
	// path). Then check a comb graph where the Steiner subtree helps.
	g := graph.Caterpillar(8, 1) // spine 0..7, leaf of spine i is 8+i
	// Part: the full spine (connected, diameter 7).
	spine := []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	s, err := NewSteinerBuilder().Build(g, [][]graph.NodeID{spine})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dilation > 7 {
		t.Fatalf("dilation=%d", s.Dilation)
	}
}

func TestSteinerSubtreePrunesAboveMeet(t *testing.T) {
	// Complete binary tree; terminals are two siblings deep in the tree.
	// The Steiner subtree must stop at their common parent, not reach the
	// root.
	g := graph.CompleteTree(2, 4) // 15 nodes, root 0
	tree := graph.BFSTree(g, 0)
	// Nodes 7..14 are leaves; 7 and 8 share parent 3.
	edges := steinerSubtreeEdges(tree, []graph.NodeID{7, 8})
	if len(edges) != 2 {
		t.Fatalf("steiner edges=%d, want 2 (7-3 and 8-3)", len(edges))
	}
	for _, id := range edges {
		e := g.Edge(id)
		if e.U != 3 && e.V != 3 {
			t.Fatalf("edge %v not incident to meet node 3", e)
		}
	}
}

func TestSteinerSingletonTerminal(t *testing.T) {
	g := graph.Path(5)
	tree := graph.BFSTree(g, 0)
	if edges := steinerSubtreeEdges(tree, []graph.NodeID{3}); edges != nil {
		t.Fatalf("singleton should need no edges, got %v", edges)
	}
}

func TestPortfolioPicksBest(t *testing.T) {
	g := graph.Grid(4, 4)
	parts := gridRows(4, 4)
	s, err := DefaultPortfolio().Build(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	triv, _ := TrivialBuilder{}.Build(g, parts)
	st, _ := NewSteinerBuilder().Build(g, parts)
	want := triv.Quality()
	if st.Quality() < want {
		want = st.Quality()
	}
	if s.Quality() != want {
		t.Fatalf("portfolio quality %d, want min %d", s.Quality(), want)
	}
}

func TestCenterHeuristic(t *testing.T) {
	g := graph.Path(9)
	c := centerHeuristic(g)
	if c != 4 {
		t.Fatalf("center of path = %d, want 4", c)
	}
}

func TestTreePartitionCoversAndConnected(t *testing.T) {
	g := graph.Grid(5, 5)
	parts := TreePartition(g, 5)
	seen := make(map[graph.NodeID]int)
	for _, p := range parts {
		for _, v := range p {
			seen[v]++
		}
	}
	if len(seen) != 25 {
		t.Fatalf("covered %d nodes", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("node %d in %d parts", v, c)
		}
	}
	if err := ValidateParts(g, parts); err != nil {
		t.Fatal(err)
	}
}

func TestLayerPartition(t *testing.T) {
	g := graph.Grid(3, 3)
	parts := LayerPartition(g, 0)
	if err := ValidateParts(g, parts); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 9 {
		t.Fatalf("covered %d", total)
	}
}

func TestRandomConnectedPartition(t *testing.T) {
	g := graph.Grid(6, 6)
	parts := RandomConnectedPartition(g, 4, 3)
	if err := ValidateParts(g, parts); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 36 {
		t.Fatalf("covered %d", total)
	}
}

func TestEstimateSQBracketOrdered(t *testing.T) {
	for _, f := range graph.StandardFamilies() {
		g := f.Make(100)
		est, err := EstimateSQ(g, 1)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if est.Lower > est.Upper {
			t.Fatalf("%s: bracket inverted: [%d, %d]", f.Name, est.Lower, est.Upper)
		}
		if est.Upper <= 0 {
			t.Fatalf("%s: degenerate upper %d", f.Name, est.Upper)
		}
	}
}

func TestCandidatePartitionsValid(t *testing.T) {
	g := graph.Grid(6, 6)
	gens := CandidatePartitions(g, 5)
	if len(gens) < 3 {
		t.Fatalf("only %d candidate partitions", len(gens))
	}
	for _, gen := range gens {
		if err := ValidateParts(g, gen.Parts); err != nil {
			t.Fatalf("%s: %v", gen.Name, err)
		}
	}
}

// Property: on random connected graphs, every builder yields a verified
// shortcut whose quality is at least the max part diameter... at least 0,
// and Verify agrees with the builder's own certificate.
func TestBuilderCertificatesProperty(t *testing.T) {
	builders := []Builder{TrivialBuilder{}, NewSteinerBuilder(), DefaultPortfolio()}
	f := func(seed int64, nn uint8) bool {
		n := int(nn%40) + 4
		g := graph.RandomConnected(n, n/2, 1, seed)
		parts := TreePartition(g, 4)
		for _, b := range builders {
			s, err := b.Build(g, parts)
			if err != nil {
				return false
			}
			c, d := s.Congestion, s.Dilation
			if err := Verify(g, s); err != nil {
				return false
			}
			if s.Congestion != c || s.Dilation != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: TreePartition emits parts of size <= 2*ceil(n/k) + max degree
// slack... just check every part is connected and sizes are positive.
func TestTreePartitionProperty(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		k := int(kk%8) + 1
		g := graph.RandomConnected(30, 10, 1, seed)
		parts := TreePartition(g, k)
		if err := ValidateParts(g, parts); err != nil {
			return false
		}
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		return total == 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
