package service

// Endpoint tests for the distlapd serving layer: the full request cycle
// (load → list → solve → batch → flow → mst → evict), the error surface
// (404 on unknown instances, 400 on malformed bodies, cancelled request
// contexts), byte-identical determinism across two independent daemon
// instantiations, and LRU eviction under a byte budget.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doReq(t *testing.T, h http.Handler, method, path, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func mustStatus(t *testing.T, step string, got, want int, body []byte) {
	t.Helper()
	if got != want {
		t.Fatalf("%s: status %d, want %d: %s", step, got, want, body)
	}
}

const loadGrid = `{"id":"g1","graph":{"family":"grid","size":36},"seed":3,"eps":1e-6}`

func unitRHS(n, s, t int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = "0"
	}
	parts[s], parts[t] = "1", "-1"
	return "[" + strings.Join(parts, ",") + "]"
}

func TestServerRequestCycle(t *testing.T) {
	h := New(Config{}).Handler()
	code, body := doReq(t, h, "POST", "/v1/graphs", loadGrid)
	mustStatus(t, "load", code, http.StatusOK, body)
	var load LoadResponse
	if err := json.Unmarshal(body, &load); err != nil {
		t.Fatalf("load response: %v", err)
	}
	if load.Instance.Nodes != 36 || load.Instance.SizeBytes <= 0 {
		t.Fatalf("load response off: %+v", load.Instance)
	}
	if load.Instance.SetupRounds != 0 {
		t.Fatalf("supported-mode load charged %d setup rounds", load.Instance.SetupRounds)
	}

	code, body = doReq(t, h, "GET", "/v1/graphs", "")
	mustStatus(t, "list", code, http.StatusOK, body)
	var list ListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Instances) != 1 || list.Instances[0].ID != "g1" {
		t.Fatalf("list: %+v", list)
	}

	rhs := unitRHS(36, 0, 35)
	code, single := doReq(t, h, "POST", "/v1/graphs/g1/solve", `{"b":`+rhs+`}`)
	mustStatus(t, "solve", code, http.StatusOK, single)
	var sr SolveResponse
	if err := json.Unmarshal(single, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 1 || len(sr.Results[0].X) != 36 || sr.Results[0].Residual > 1e-6 {
		t.Fatalf("solve response off: %+v", sr)
	}

	code, batch := doReq(t, h, "POST", "/v1/graphs/g1/solve", `{"bs":[`+rhs+`,`+rhs+`]}`)
	mustStatus(t, "batch", code, http.StatusOK, batch)
	var br SolveResponse
	if err := json.Unmarshal(batch, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("batch returned %d results", len(br.Results))
	}
	// Batch RHS 0 derives the same request seed as the single solve: the
	// single response's result must appear verbatim in the batch body.
	frag := bytes.TrimSuffix(bytes.TrimPrefix(single, []byte(`{"results":[`)), []byte("]}\n"))
	if !bytes.Contains(batch, frag) {
		t.Fatalf("batch entry 0 is not byte-identical to the single solve")
	}

	code, body = doReq(t, h, "POST", "/v1/graphs/g1/flow", `{"s":0,"t":35}`)
	mustStatus(t, "flow", code, http.StatusOK, body)
	var fr FlowResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Resistance <= 0 {
		t.Fatalf("flow resistance %v", fr.Resistance)
	}

	code, body = doReq(t, h, "POST", "/v1/graphs/g1/mst", `{}`)
	mustStatus(t, "mst", code, http.StatusOK, body)
	var mr MSTResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Edges) != 35 {
		t.Fatalf("mst on 36-node grid returned %d edges", len(mr.Edges))
	}

	code, body = doReq(t, h, "DELETE", "/v1/graphs/g1", "")
	mustStatus(t, "evict", code, http.StatusOK, body)
	code, body = doReq(t, h, "POST", "/v1/graphs/g1/solve", `{"b":`+rhs+`}`)
	mustStatus(t, "post-evict solve", code, http.StatusNotFound, body)
}

func TestServerErrorSurface(t *testing.T) {
	h := New(Config{}).Handler()
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"solve unknown id", "POST", "/v1/graphs/nope/solve", `{"b":[1,-1]}`, http.StatusNotFound},
		{"evict unknown id", "DELETE", "/v1/graphs/nope", "", http.StatusNotFound},
		{"load without id", "POST", "/v1/graphs", `{"graph":{"family":"grid","size":16}}`, http.StatusBadRequest},
		{"load bad family", "POST", "/v1/graphs", `{"id":"x","graph":{"family":"moebius","size":16}}`, http.StatusBadRequest},
		{"load bad mode", "POST", "/v1/graphs", `{"id":"x","graph":{"family":"grid","size":16},"mode":"quantum"}`, http.StatusBadRequest},
		{"load bad edge", "POST", "/v1/graphs", `{"id":"x","graph":{"n":2,"edges":[[0,5,1]]}}`, http.StatusBadRequest},
		{"malformed json", "POST", "/v1/graphs", `{"id":`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/graphs", `{"id":"x","graf":{}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		code, body := doReq(t, h, c.method, c.path, c.body)
		if code != c.want {
			t.Errorf("%s: status %d, want %d: %s", c.name, code, c.want, body)
		}
		if !bytes.Contains(body, []byte(`"error"`)) {
			t.Errorf("%s: error body missing envelope: %s", c.name, body)
		}
	}

	// Solve needs exactly one of b / bs.
	code, body := doReq(t, h, "POST", "/v1/graphs", loadGrid)
	mustStatus(t, "load", code, http.StatusOK, body)
	code, body = doReq(t, h, "POST", "/v1/graphs/g1/solve", `{}`)
	mustStatus(t, "empty solve", code, http.StatusBadRequest, body)
	code, body = doReq(t, h, "POST", "/v1/graphs/g1/solve", `{"b":[1,-1],"bs":[[1,-1]]}`)
	mustStatus(t, "both b and bs", code, http.StatusBadRequest, body)
}

func TestServerCancelledContext(t *testing.T) {
	h := New(Config{}).Handler()
	code, body := doReq(t, h, "POST", "/v1/graphs", loadGrid)
	mustStatus(t, "load", code, http.StatusOK, body)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/graphs/g1/solve",
		strings.NewReader(`{"b":`+unitRHS(36, 0, 35)+`}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("cancelled solve: status %d, want %d: %s", rec.Code, http.StatusRequestTimeout, rec.Body.Bytes())
	}
}

// TestServerDeterministicAcrossInstantiations is the daemon determinism
// gate: two independently constructed Servers must answer an identical
// load + request sequence with byte-identical JSON bodies.
func TestServerDeterministicAcrossInstantiations(t *testing.T) {
	script := []struct{ method, path, body string }{
		{"POST", "/v1/graphs", loadGrid},
		{"GET", "/v1/graphs", ""},
		{"POST", "/v1/graphs/g1/solve", `{"b":` + unitRHS(36, 0, 35) + `}`},
		{"POST", "/v1/graphs/g1/solve", `{"bs":[` + unitRHS(36, 0, 35) + `,` + unitRHS(36, 3, 30) + `]}`},
		{"POST", "/v1/graphs/g1/solve", `{"b":` + unitRHS(36, 0, 35) + `,"seed":42,"eps":1e-4}`},
		{"POST", "/v1/graphs/g1/flow", `{"s":1,"t":34}`},
		{"POST", "/v1/graphs/g1/mst", `{}`},
	}
	run := func() [][]byte {
		h := New(Config{}).Handler()
		var out [][]byte
		for _, step := range script {
			code, body := doReq(t, h, step.method, step.path, step.body)
			mustStatus(t, step.method+" "+step.path, code, http.StatusOK, body)
			out = append(out, body)
		}
		return out
	}
	a, b := run(), run()
	for i := range script {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("step %d (%s %s): responses diverge across daemons:\n%s\nvs\n%s",
				i, script[i].method, script[i].path, a[i], b[i])
		}
	}
}

// TestServerLRUEviction loads instances past a tiny byte budget and checks
// the least-recently-used ones fall out, reported in the load response.
func TestServerLRUEviction(t *testing.T) {
	// One 16-node grid instance is comfortably past 1 KiB, so every load
	// beyond the first evicts the LRU entry.
	h := New(Config{CacheBytes: 1 << 10}).Handler()
	load := func(id string) *LoadResponse {
		body := fmt.Sprintf(`{"id":%q,"graph":{"family":"grid","size":16},"seed":1}`, id)
		code, resp := doReq(t, h, "POST", "/v1/graphs", body)
		mustStatus(t, "load "+id, code, http.StatusOK, resp)
		var lr LoadResponse
		if err := json.Unmarshal(resp, &lr); err != nil {
			t.Fatal(err)
		}
		return &lr
	}
	if lr := load("a"); len(lr.Evicted) != 0 {
		t.Fatalf("first load evicted %v", lr.Evicted)
	}
	if lr := load("b"); len(lr.Evicted) != 1 || lr.Evicted[0] != "a" {
		t.Fatalf("second load evicted %v, want [a]", lr.Evicted)
	}
	// Touch b, load c: b is recent but the budget only fits one, so b goes.
	code, body := doReq(t, h, "GET", "/v1/graphs", "")
	mustStatus(t, "list", code, http.StatusOK, body)
	var list ListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Instances) != 1 || list.Instances[0].ID != "b" {
		t.Fatalf("cache after eviction: %+v", list.Instances)
	}
	if lr := load("c"); len(lr.Evicted) != 1 || lr.Evicted[0] != "b" {
		t.Fatalf("third load evicted %v, want [b]", lr.Evicted)
	}
}

// TestCacheLRUOrder pins the cache's recency discipline directly: touching
// an entry via get saves it from the next eviction sweep.
func TestCacheLRUOrder(t *testing.T) {
	c := newInstanceCache(100, cacheStats{})
	put := func(id string, size int64) []string {
		return c.put(id, nil, InstanceInfo{ID: id, SizeBytes: size})
	}
	if ev := put("a", 40); len(ev) != 0 {
		t.Fatalf("put a evicted %v", ev)
	}
	if ev := put("b", 40); len(ev) != 0 {
		t.Fatalf("put b evicted %v", ev)
	}
	// Touch a so b becomes LRU; the next insert must evict b, not a.
	if _, ok := c.get("a"); !ok {
		t.Fatal("get a failed")
	}
	if ev := put("c", 40); len(ev) != 1 || ev[0] != "b" {
		t.Fatalf("put c evicted %v, want [b]", ev)
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a was evicted despite being recently used")
	}
}
