package simtrace

// Recorder captures the raw event sequence of a traced execution so it can
// be replayed later into another collector, byte-for-byte equivalent to
// having traced into that collector directly. It is the mechanism behind
// the deterministic parallel experiment harness (DESIGN.md §7): each sweep
// point traces into its own private Recorder on a worker goroutine, and
// the harness replays the recorders into the shared sink in canonical
// sweep order — so the sink observes the exact event stream a sequential
// run would have produced, regardless of worker interleaving.
//
// A Recorder is NOT safe for concurrent use; the contract is one Recorder
// per goroutine, with Replay called only after the recording goroutine is
// done (the harness's WaitGroup provides the happens-before edge).
type Recorder struct {
	events []event
}

// event is one recorded Collector call. kind selects which fields are live.
type event struct {
	kind eventKind
	name string  // Begin/End phase name, Counter/Gauge name, or engine
	edge int     // Messages dirEdge, NodeWords from, Gauge step
	to   int     // NodeWords to, Gauge rounds
	n    int64   // Rounds/Messages/Counter/NodeWords quantity
	val  float64 // Gauge value
}

type eventKind uint8

const (
	evBegin eventKind = iota
	evEnd
	evRounds
	evMessages
	evNodeWords
	evCounter
	evGauge
)

var _ Collector = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Begin implements Collector.
func (r *Recorder) Begin(name string) {
	r.events = append(r.events, event{kind: evBegin, name: name})
}

// End implements Collector.
func (r *Recorder) End(name string) {
	r.events = append(r.events, event{kind: evEnd, name: name})
}

// Rounds implements Collector.
func (r *Recorder) Rounds(engine string, n int) {
	r.events = append(r.events, event{kind: evRounds, name: engine, n: int64(n)})
}

// Messages implements Collector.
func (r *Recorder) Messages(engine string, dirEdge int, n int64) {
	r.events = append(r.events, event{kind: evMessages, name: engine, edge: dirEdge, n: n})
}

// NodeWords implements Collector.
func (r *Recorder) NodeWords(engine string, from, to int, n int64) {
	r.events = append(r.events, event{kind: evNodeWords, name: engine, edge: from, to: to, n: n})
}

// Counter implements Collector.
func (r *Recorder) Counter(name string, n int64) {
	r.events = append(r.events, event{kind: evCounter, name: name, n: n})
}

// Gauge implements Collector.
func (r *Recorder) Gauge(name string, step int, value float64, rounds int) {
	r.events = append(r.events, event{kind: evGauge, name: name, edge: step, to: rounds, val: value})
}

// Flush implements Collector. Flushing a recording is a no-op: the
// recorded execution's sink is flushed by whoever owns it, after Replay.
func (r *Recorder) Flush() error { return nil }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Replay re-issues the recorded events, in order, against into. Calling
// Replay on a nil or empty recorder is a no-op; Replay does not call
// into.Flush.
func (r *Recorder) Replay(into Collector) {
	if r == nil {
		return
	}
	for _, e := range r.events {
		switch e.kind {
		case evBegin:
			into.Begin(e.name)
		case evEnd:
			into.End(e.name)
		case evRounds:
			into.Rounds(e.name, int(e.n))
		case evMessages:
			into.Messages(e.name, e.edge, e.n)
		case evNodeWords:
			into.NodeWords(e.name, e.edge, e.to, e.n)
		case evCounter:
			into.Counter(e.name, e.n)
		case evGauge:
			into.Gauge(e.name, e.edge, e.val, e.to)
		}
	}
}
