package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format for graphs is a minimal edge list:
//
//	# optional comment lines
//	<n> <m>
//	<u> <v> <w>      (m lines, 0-based node IDs, positive integer weights)
//
// It round-trips any Graph (including multigraphs) deterministically in
// edge-ID order.

// ErrBadFormat is returned for malformed graph files.
var ErrBadFormat = errors.New("graph: bad file format")

// Write serializes g in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text format, validating every edge.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	next := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, nil
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.EOF
	}
	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrBadFormat, err)
	}
	fields := strings.Fields(header)
	if len(fields) != 2 {
		return nil, fmt.Errorf("%w: header %q", ErrBadFormat, header)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: node count %q", ErrBadFormat, fields[0])
	}
	m, err := strconv.Atoi(fields[1])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("%w: edge count %q", ErrBadFormat, fields[1])
	}
	g := New(n)
	for i := 0; i < m; i++ {
		line, err := next()
		if err != nil {
			return nil, fmt.Errorf("%w: edge %d of %d: %v", ErrBadFormat, i, m, err)
		}
		ef := strings.Fields(line)
		if len(ef) != 3 {
			return nil, fmt.Errorf("%w: edge line %q", ErrBadFormat, line)
		}
		u, err1 := strconv.Atoi(ef[0])
		v, err2 := strconv.Atoi(ef[1])
		w, err3 := strconv.ParseInt(ef[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: edge line %q", ErrBadFormat, line)
		}
		if _, err := g.AddEdge(u, v, w); err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
	}
	if line, err := next(); err == nil {
		return nil, fmt.Errorf("%w: trailing content %q", ErrBadFormat, line)
	}
	return g, nil
}
