# Local and CI entry points — .github/workflows/ci.yml runs exactly these
# targets, so a green `make check` locally means a green CI run.

GO ?= go

.PHONY: check build vet lint test bench bench-smoke microbench trace-smoke

check: build vet lint test trace-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# distlint enforces the determinism and metrics-integrity invariants the
# simulator's measured round counts rest on (see internal/lint).
lint:
	$(GO) run ./cmd/distlint ./...

test:
	$(GO) test -race ./...

# Suite benchmark: full sweeps through cmd/bench, emitting the
# machine-readable trajectory file BENCH_local.json (schema in README
# "Benchmarking"). LABEL and PARALLEL may be overridden:
#   make bench LABEL=mybox PARALLEL=8
LABEL ?= local
PARALLEL ?= 0

bench:
	$(GO) run ./cmd/bench -label $(LABEL) -parallel $(PARALLEL)

# CI-sized benchmark: quick sweeps, plus the sequential parity oracle
# (-verify re-runs everything at -parallel 1 and requires byte-identical
# tables and traces). Fails if parallelism perturbs any result.
bench-smoke:
	$(GO) run ./cmd/bench -quick -label ci -parallel 4 -verify

# Go microbenchmarks (per-experiment testing.B harness in bench_test.go).
microbench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# End-to-end instrumentation check: run one traced experiment, then render
# the trace with cmd/simtrace, which exits nonzero unless the per-phase
# round sums reproduce the engine totals exactly.
trace-smoke:
	$(GO) run ./cmd/experiments -quick -run E9a -trace $(CURDIR)/.trace-smoke.jsonl >/dev/null
	$(GO) run ./cmd/simtrace $(CURDIR)/.trace-smoke.jsonl >/dev/null
	rm -f $(CURDIR)/.trace-smoke.jsonl
	@echo trace-smoke: accounting identity holds
