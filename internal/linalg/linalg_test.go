package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"distlap/internal/graph"
)

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("dot=%v", Dot(a, b))
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("norm2")
	}
	y := Copy(b)
	AXPY(2, a, y)
	if y[0] != 6 || y[2] != 12 {
		t.Fatalf("axpy=%v", y)
	}
	Scale(0.5, y)
	if y[0] != 3 {
		t.Fatalf("scale=%v", y)
	}
	d := Sub(b, a)
	if d[0] != 3 || d[1] != 3 || d[2] != 3 {
		t.Fatalf("sub=%v", d)
	}
	if Mean(a) != 2 {
		t.Fatal("mean")
	}
	c := Copy(a)
	CenterMean(c)
	if math.Abs(Mean(c)) > 1e-15 {
		t.Fatal("center")
	}
	if err := CheckSameLen(a, b); err != nil {
		t.Fatal(err)
	}
	if err := CheckSameLen(a, []float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatal("want dimension error")
	}
}

func TestMatVecPath(t *testing.T) {
	g := graph.Path(3)
	l := NewLaplacian(g)
	y, err := l.MatVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	// L = [[1,-1,0],[-1,2,-1],[0,-1,1]]; x=(1,0,-1) -> (1,0,-1)*... compute:
	// y0 = 1*1 - 0 = 1; y1 = -1 + 0 + 1 = 0... precisely [1, 0, -1].
	want := []float64{1, 0, -1}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y=%v", y)
		}
	}
	if _, err := l.MatVec([]float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatal("want dimension error")
	}
}

func TestQuadraticAndNorm(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 4)
	l := NewLaplacian(g)
	x := []float64{1, -1}
	if q := l.Quadratic(x); q != 16 {
		t.Fatalf("quadratic=%v", q)
	}
	if n := l.LNorm(x); n != 4 {
		t.Fatalf("lnorm=%v", n)
	}
}

func TestDegreesAndDense(t *testing.T) {
	g := graph.Star(4)
	l := NewLaplacian(g)
	d := l.Degrees()
	if d[0] != 3 || d[1] != 1 {
		t.Fatalf("degrees=%v", d)
	}
	m := l.Dense()
	if m[0][0] != 3 || m[0][1] != -1 || m[1][1] != 1 || m[1][2] != 0 {
		t.Fatalf("dense=%v", m)
	}
}

func TestSolveExactAgainstMatVec(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(6), graph.Grid(3, 4), graph.Cycle(7),
		graph.RandomConnected(20, 15, 9, 3),
	} {
		l := NewLaplacian(g)
		b := RandomBVector(g.N(), 42)
		x, err := l.SolveExact(b)
		if err != nil {
			t.Fatal(err)
		}
		lx, _ := l.MatVec(x)
		for i := range b {
			if math.Abs(lx[i]-b[i]) > 1e-7 {
				t.Fatalf("n=%d: residual at %d: %g vs %g", g.N(), i, lx[i], b[i])
			}
		}
		if math.Abs(Mean(x)) > 1e-9 {
			t.Fatal("solution not mean-centered")
		}
	}
}

func TestSolveExactErrors(t *testing.T) {
	g := graph.Path(3)
	l := NewLaplacian(g)
	if _, err := l.SolveExact([]float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Fatal("want dimension error")
	}
	if _, err := l.SolveExact([]float64{1, 1, 1}); !errors.Is(err, ErrNotInRange) {
		t.Fatal("want range error")
	}
	disc := graph.New(3)
	disc.MustAddEdge(0, 1, 1)
	if _, err := NewLaplacian(disc).SolveExact([]float64{1, -1, 0}); !errors.Is(err, ErrDisconnected) {
		t.Fatal("want disconnected error")
	}
}

func TestRelativeLError(t *testing.T) {
	g := graph.Path(4)
	l := NewLaplacian(g)
	x := []float64{1, 2, 3, 4}
	if e := l.RelativeLError(x, x); e != 0 {
		t.Fatalf("self error=%v", e)
	}
	// Shifting by a constant is in the nullspace: still zero error.
	y := []float64{11, 12, 13, 14}
	if e := l.RelativeLError(y, x); e > 1e-12 {
		t.Fatalf("shift error=%v", e)
	}
}

func TestPCGIdentityAndJacobi(t *testing.T) {
	g := graph.Grid(4, 4)
	l := NewLaplacian(g)
	b := RandomBVector(16, 7)
	xStar, err := l.SolveExact(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Preconditioner{IdentityPreconditioner{}, NewJacobi(l)} {
		res, err := PCG(l, b, m, 1e-10, 0)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if e := l.RelativeLError(res.X, xStar); e > 1e-6 {
			t.Fatalf("%s: L-error %g", m.Name(), e)
		}
		if res.Iterations <= 0 || res.Iterations > 200 {
			t.Fatalf("%s: iterations=%d", m.Name(), res.Iterations)
		}
	}
}

func TestPCGZeroRHS(t *testing.T) {
	g := graph.Path(5)
	l := NewLaplacian(g)
	res, err := PCG(l, make([]float64, 5), IdentityPreconditioner{}, 1e-8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || Norm2(res.X) != 0 {
		t.Fatal("zero rhs should return zero immediately")
	}
}

func TestPCGToleranceControlsIterations(t *testing.T) {
	g := graph.Grid(5, 5)
	l := NewLaplacian(g)
	b := RandomBVector(25, 3)
	loose, err := PCG(l, b, IdentityPreconditioner{}, 1e-2, 0)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := PCG(l, b, IdentityPreconditioner{}, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Iterations <= loose.Iterations {
		t.Fatalf("tight %d <= loose %d", tight.Iterations, loose.Iterations)
	}
}

func TestChebyshev(t *testing.T) {
	g := graph.Path(8)
	l := NewLaplacian(g)
	b := RandomBVector(8, 5)
	lo, hi := SpectralBounds(l)
	if lo <= 0 || hi <= lo {
		t.Fatalf("bounds [%g, %g]", lo, hi)
	}
	res, err := Chebyshev(l, b, lo, hi, 1e-8, 100000)
	if err != nil {
		t.Fatal(err)
	}
	xStar, _ := l.SolveExact(b)
	if e := l.RelativeLError(res.X, xStar); e > 1e-4 {
		t.Fatalf("L-error %g", e)
	}
}

func TestChebyshevBadBounds(t *testing.T) {
	g := graph.Path(3)
	l := NewLaplacian(g)
	if _, err := Chebyshev(l, make([]float64, 3), 0, 1, 1e-8, 10); err == nil {
		t.Fatal("want bounds error")
	}
}

func TestRandomBVectorDeterministicMeanZero(t *testing.T) {
	a := RandomBVector(50, 9)
	b := RandomBVector(50, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic")
		}
	}
	if math.Abs(Mean(a)) > 1e-12 {
		t.Fatal("not mean zero")
	}
}

// Property: PCG solutions satisfy the residual it reports, across random
// graphs and seeds.
func TestPCGResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(15, 10, 5, seed)
		l := NewLaplacian(g)
		b := RandomBVector(15, seed)
		res, err := PCG(l, b, NewJacobi(l), 1e-8, 0)
		if err != nil {
			return false
		}
		lx, _ := l.MatVec(res.X)
		bb := Copy(b)
		CenterMean(bb)
		return Norm2(Sub(lx, bb))/Norm2(bb) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Laplacian quadratic form is nonnegative and zero exactly on
// constants.
func TestQuadraticPSDProperty(t *testing.T) {
	f := func(seed int64, c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		g := graph.RandomConnected(10, 8, 3, seed)
		l := NewLaplacian(g)
		x := RandomBVector(10, seed+1)
		if l.Quadratic(x) < 0 {
			return false
		}
		constant := make([]float64, 10)
		for i := range constant {
			constant[i] = c
		}
		return math.Abs(l.Quadratic(constant)) < 1e-6*math.Max(1, c*c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
