package core

import (
	"fmt"

	"distlap/internal/congest"
	"distlap/internal/graph"
)

// NewComm builds the standard communication substrate for a mode.
func NewComm(g *graph.Graph, mode Mode, seed int64) (Comm, error) {
	switch mode {
	case ModeUniversal:
		nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: seed})
		return NewCongestComm(nw, false)
	case ModeCongest:
		nw := congest.NewNetwork(g, congest.Options{Supported: false, Seed: seed})
		return NewCongestComm(nw, false)
	case ModeBaseline:
		// Supported, so the comparison against ModeUniversal isolates the
		// aggregation structure (global tree vs per-cluster) rather than
		// construction costs.
		nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: seed})
		return NewCongestComm(nw, true)
	case ModeHybrid:
		nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: seed})
		return NewHybridComm(nw)
	default:
		return nil, fmt.Errorf("core: unknown mode %q", mode)
	}
}

// DefaultPrecond returns the standard preconditioner for a graph: the
// overlapping-cluster Schwarz preconditioner with ~√n-sized clusters and
// overlap 2 (the congested-PWA component of the solver).
func DefaultPrecond(g *graph.Graph, seed int64) Preconditioner {
	size := 4
	for (size+1)*(size+1) <= g.N() {
		size++
	}
	return NewSchwarzPrecond(size, 2, seed)
}

// SolveOnGraph is the one-call entry point used by the CLIs, examples and
// benchmarks: build the mode's comm, solve L x = b to tolerance tol with
// the default preconditioner, and return both the result and the comm (for
// metric extraction).
func SolveOnGraph(g *graph.Graph, b []float64, mode Mode, tol float64, seed int64) (*Result, Comm, error) {
	c, err := NewComm(g, mode, seed)
	if err != nil {
		return nil, nil, err
	}
	res, err := Solve(c, b, Options{Tol: tol, Precond: DefaultPrecond(g, seed)})
	if err != nil {
		return nil, nil, err
	}
	return res, c, nil
}
