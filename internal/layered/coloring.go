package layered

import (
	"errors"
	"fmt"
	"math/rand"
)

// Multigraph is the minimal multigraph view edge-colored by Lemma 17:
// a node count plus an edge list (parallel edges allowed, each carrying an
// independent message per round as the paper notes).
type Multigraph struct {
	N     int
	Edges [][2]int
}

// MaxDegree returns the maximum endpoint multiplicity.
func (m *Multigraph) MaxDegree() int {
	deg := make([]int, m.N)
	max := 0
	for _, e := range m.Edges {
		deg[e[0]]++
		deg[e[1]]++
		if deg[e[0]] > max {
			max = deg[e[0]]
		}
		if deg[e[1]] > max {
			max = deg[e[1]]
		}
	}
	return max
}

// ColoringResult is a proper edge coloring plus the number of distributed
// rounds the randomized procedure took.
type ColoringResult struct {
	Colors  []int // per edge
	Palette int   // number of colors made available (O(Δ))
	Rounds  int   // distributed rounds consumed (O(log n) w.h.p.)
}

// ErrColoringStuck is returned if the randomized coloring fails to converge
// (probability vanishing in the retry budget).
var ErrColoringStuck = errors.New("layered: edge coloring did not converge")

// ColorEdges properly edge-colors the multigraph with a palette of size
// 4·Δ using the folklore randomized procedure of Lemma 17 ([30]): in each
// round every uncolored edge proposes a uniformly random palette color and
// keeps it if no incident edge (colored or proposing) holds the same color.
// Each round is O(1) CONGEST rounds; the procedure finishes in O(log n)
// rounds w.h.p. The returned Rounds is the number of proposal rounds.
func ColorEdges(m *Multigraph, seed int64) (*ColoringResult, error) {
	delta := m.MaxDegree()
	if delta == 0 {
		return &ColoringResult{Colors: make([]int, len(m.Edges)), Palette: 1}, nil
	}
	palette := 4 * delta
	rng := rand.New(rand.NewSource(seed))
	colors := make([]int, len(m.Edges))
	for i := range colors {
		colors[i] = -1
	}
	// fixed[node][color] = true if an incident edge holds that color.
	fixed := make([]map[int]bool, m.N)
	for i := range fixed {
		fixed[i] = make(map[int]bool)
	}
	uncolored := make([]int, len(m.Edges))
	for i := range uncolored {
		uncolored[i] = i
	}
	rounds := 0
	maxRounds := 64 * (log2(len(m.Edges)+m.N) + 4)
	for len(uncolored) > 0 {
		if rounds >= maxRounds {
			return nil, fmt.Errorf("%w after %d rounds (%d edges left)",
				ErrColoringStuck, rounds, len(uncolored))
		}
		rounds++
		// Propose.
		proposal := make(map[int]int, len(uncolored)) // edge -> color
		propCount := make(map[[2]int]int)             // (node, color) -> #proposals
		for _, e := range uncolored {
			c := rng.Intn(palette)
			proposal[e] = c
			propCount[[2]int{m.Edges[e][0], c}]++
			propCount[[2]int{m.Edges[e][1], c}]++
		}
		// Keep conflict-free proposals.
		kept := uncolored[:0]
		for _, e := range uncolored {
			c := proposal[e]
			u, v := m.Edges[e][0], m.Edges[e][1]
			ok := !fixed[u][c] && !fixed[v][c] &&
				propCount[[2]int{u, c}] == 1 && propCount[[2]int{v, c}] == 1
			if ok {
				colors[e] = c
				fixed[u][c] = true
				fixed[v][c] = true
			} else {
				kept = append(kept, e)
			}
		}
		uncolored = kept
	}
	return &ColoringResult{Colors: colors, Palette: palette, Rounds: rounds}, nil
}

// VerifyColoring checks that colors is a proper edge coloring of m.
func VerifyColoring(m *Multigraph, colors []int) error {
	if len(colors) != len(m.Edges) {
		return fmt.Errorf("layered: %d colors for %d edges", len(colors), len(m.Edges))
	}
	seen := make(map[[2]int]int) // (node, color) -> edge+1
	for e, c := range colors {
		if c < 0 {
			return fmt.Errorf("layered: edge %d uncolored", e)
		}
		for _, v := range m.Edges[e] {
			key := [2]int{v, c}
			if prev, ok := seen[key]; ok {
				return fmt.Errorf("layered: edges %d and %d share color %d at node %d",
					prev-1, e, c, v)
			}
			seen[key] = e + 1
		}
	}
	return nil
}

func log2(n int) int {
	k := 0
	for p := 1; p < n; p *= 2 {
		k++
	}
	return k
}
