package apps

import (
	"fmt"
	"math"

	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/seedderive"
	"distlap/internal/simtrace"
)

// ApproxMaxFlow approximates the s-t maximum flow with the electrical-flow
// multiplicative-weights method (Christiano–Kelner–Mądry–Spielman–Teng,
// simplified) — the algorithm behind the paper's §5 remark that the
// distributed Laplacian solver "directly impl[ies]" an
// O(m^{1/2+o(1)}·SQ(G)) max-flow algorithm. Each iteration solves one
// Laplacian system through the distributed solver, so the total measured
// rounds are (#MWU iterations) × (solver rounds) — the promised structure.
//
// The returned value is within a (1±3ε) factor of the optimum on the
// (small) graphs the tests exercise; the flow itself is the average of the
// electrical iterates, feasible up to congestion 1+O(ε).
type ApproxMaxFlow struct {
	Mode    core.Mode
	Epsilon float64
	MaxIter int // per feasibility probe (0 = default)
	Seed    int64
	// Trace receives every probe solve's instrumentation (nil = Nop).
	Trace simtrace.Collector
}

// ApproxFlowResult reports the approximate computation.
type ApproxFlowResult struct {
	Value      int64     // largest F certified routable with congestion <= 1+eps
	EdgeFlow   []float64 // averaged flow (oriented U -> V), scaled to Value
	Rounds     int       // total solver rounds across all probes
	Solves     int       // Laplacian solves performed
	ExactValue int64     // Edmonds–Karp reference (tests/experiments)
}

// Run computes the approximation and the exact reference.
func (a *ApproxMaxFlow) Run(g *graph.Graph, s, t graph.NodeID) (*ApproxFlowResult, error) {
	if a.Epsilon <= 0 || a.Epsilon >= 0.5 {
		return nil, fmt.Errorf("apps: epsilon %g out of (0, 0.5)", a.Epsilon)
	}
	exact, err := MaxFlowExact(g, s, t)
	if err != nil {
		return nil, err
	}
	res := &ApproxFlowResult{ExactValue: exact.Value}
	if exact.Value == 0 {
		return res, nil
	}
	// Binary search the largest routable F in [1, capacity out of s].
	var hi int64
	for _, h := range g.Neighbors(s) {
		hi += g.Edge(h.Edge).Weight
	}
	lo := int64(1)
	var bestFlow []float64
	for lo <= hi {
		mid := (lo + hi) / 2
		flow, rounds, solves, ok, err := a.probe(g, s, t, mid)
		res.Rounds += rounds
		res.Solves += solves
		if err != nil {
			return nil, err
		}
		if ok {
			res.Value = mid
			bestFlow = flow
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	res.EdgeFlow = bestFlow
	return res, nil
}

// probe decides whether F units route with congestion <= 1+eps, via MWU
// over electrical flows.
func (a *ApproxMaxFlow) probe(g *graph.Graph, s, t graph.NodeID, f int64) ([]float64, int, int, bool, error) {
	m := g.M()
	eps := a.Epsilon
	maxIter := a.MaxIter
	if maxIter <= 0 {
		maxIter = int(8*math.Log(float64(m)+2)/(eps*eps)) + 8
		// The theory budget is pessimistic for infeasible probes (they
		// run to exhaustion); cap it — the averaged-congestion fallback
		// decides feasibility reliably long before the theory bound.
		if maxIter > 160 {
			maxIter = 160
		}
	}
	w := make([]float64, m)
	for i := range w {
		w[i] = 1
	}
	caps := make([]float64, m)
	for id, e := range g.Edges() {
		caps[id] = float64(e.Weight)
	}
	avg := make([]float64, m)
	rounds, solves := 0, 0
	for it := 0; it < maxIter; it++ {
		// Reweighted graph: conductance c_e = cap_e^2 / w_e, discretized.
		// We keep weights in float by scaling to a large integer grid,
		// preserving the paper's integer-weight convention.
		rg := graph.New(g.N())
		const scale = 1 << 16
		for id, e := range g.Edges() {
			c := caps[id] * caps[id] / w[id]
			ic := int64(c*scale/float64(m)) + 1
			rg.MustAddEdge(e.U, e.V, ic)
		}
		b := make([]float64, g.N())
		b[s] = float64(f)
		b[t] = -float64(f)
		sol, _, err := core.SolveOnGraphWith(rg, b, core.SolveConfig{
			Mode: a.Mode, Tol: 1e-8, Seed: seedderive.Derive(a.Seed, "mwu-solve", int64(it)), Trace: a.Trace,
		})
		if err != nil {
			return nil, rounds, solves, false, err
		}
		rounds += sol.Rounds
		solves++
		// Edge flows and congestion.
		rho := 0.0
		flows := make([]float64, m)
		for id, e := range g.Edges() {
			cond := float64(rg.Edge(id).Weight)
			flows[id] = cond * (sol.X[e.U] - sol.X[e.V])
			if cg := math.Abs(flows[id]) / caps[id]; cg > rho {
				rho = cg
			}
		}
		for id := range avg {
			avg[id] += flows[id]
		}
		// Telemetry: per-MWU-iteration congestion of the electrical iterate
		// against the solver rounds spent so far across this probe.
		simtrace.OrNop(a.Trace).Gauge("mwu.congestion", it, rho, rounds)
		if rho <= 1+eps {
			// This iterate already routes F within the congestion budget.
			return flows, rounds, solves, true, nil
		}
		// MWU update; if weights explode, F is too large.
		for id := range w {
			cg := math.Abs(flows[id]) / caps[id]
			w[id] *= 1 + eps*cg/rho
		}
	}
	// Fall back to the averaged flow: feasible iff its congestion is small.
	rho := 0.0
	for id := range avg {
		avg[id] /= float64(maxIter)
		if cg := math.Abs(avg[id]) / caps[id]; cg > rho {
			rho = cg
		}
	}
	if rho <= 1+3*eps {
		return avg, rounds, solves, true, nil
	}
	return nil, rounds, solves, false, nil
}
