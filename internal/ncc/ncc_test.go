package ncc

import (
	"testing"
	"testing/quick"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/partwise"
	"distlap/internal/shortcut"
)

func TestCapacityIsLogN(t *testing.T) {
	tests := []struct{ n, want int }{
		{n: 1, want: 1}, {n: 2, want: 1}, {n: 3, want: 2}, {n: 4, want: 2},
		{n: 5, want: 3}, {n: 1024, want: 10}, {n: 1025, want: 11},
	}
	for _, tt := range tests {
		if c := NewNetwork(tt.n).Capacity(); c != tt.want {
			t.Fatalf("n=%d: cap=%d, want %d", tt.n, c, tt.want)
		}
	}
}

func TestDeliverRespectsCaps(t *testing.T) {
	nw := NewNetwork(4) // cap 2
	// Node 0 sends 5 messages to node 1: needs ceil(5/2)=3 rounds.
	var msgs []Message
	for i := 0; i < 5; i++ {
		msgs = append(msgs, Message{From: 0, To: 1, Payload: congest.Word(i)})
	}
	got := 0
	rounds, err := nw.Deliver(msgs, func(Message) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 || rounds != 3 {
		t.Fatalf("delivered=%d rounds=%d", got, rounds)
	}
	if nw.Messages() != 5 {
		t.Fatalf("messages=%d", nw.Messages())
	}
}

func TestDeliverReceiverBottleneck(t *testing.T) {
	nw := NewNetwork(8) // cap 3
	// 6 distinct senders all target node 0: ceil(6/3)=2 rounds.
	var msgs []Message
	for s := 1; s <= 6; s++ {
		msgs = append(msgs, Message{From: graph.NodeID(s), To: 0})
	}
	rounds, err := nw.Deliver(msgs, func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Fatalf("rounds=%d, want 2", rounds)
	}
}

func TestDeliverValidatesRange(t *testing.T) {
	nw := NewNetwork(3)
	if _, err := nw.Deliver([]Message{{From: 0, To: 5}}, func(Message) {}); err == nil {
		t.Fatal("want range error")
	}
}

func TestDeliverEmpty(t *testing.T) {
	nw := NewNetwork(3)
	rounds, err := nw.Deliver(nil, func(Message) {})
	if err != nil || rounds != 0 {
		t.Fatalf("rounds=%d err=%v", rounds, err)
	}
}

func TestAggregateSingleGlobalPart(t *testing.T) {
	n := 64
	nw := NewNetwork(n)
	part := make([]graph.NodeID, n)
	vals := make([]congest.Word, n)
	for i := 0; i < n; i++ {
		part[i] = i
		vals[i] = congest.Word(i)
	}
	inst := &partwise.Instance{Parts: [][]graph.NodeID{part}, Values: [][]congest.Word{vals}}
	out, err := nw.Aggregate(inst, partwise.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != congest.Word(n*(n-1)/2) {
		t.Fatalf("sum=%d", out[0])
	}
	// O(log n) rounds for a single part: 6 up levels + 6 down, each 1
	// Deliver round (caps never exceeded).
	if nw.Rounds() > 2*6 {
		t.Fatalf("rounds=%d, want <= 12", nw.Rounds())
	}
}

func TestAggregateCongestedInstance(t *testing.T) {
	g, inst := partwise.GridCongestedInstance(6)
	nw := NewNetwork(g.N())
	out, err := nw.Aggregate(inst, partwise.Max)
	if err != nil {
		t.Fatal(err)
	}
	want := inst.Expected(partwise.Max)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("part %d: got %d want %d", i, out[i], want[i])
		}
	}
}

func TestAggregateRejectsBadInstance(t *testing.T) {
	nw := NewNetwork(4)
	bad := &partwise.Instance{Parts: [][]graph.NodeID{{0, 1}}, Values: [][]congest.Word{{1}}}
	if _, err := nw.Aggregate(bad, partwise.Sum); err == nil {
		t.Fatal("want mismatch error")
	}
	dup := &partwise.Instance{Parts: [][]graph.NodeID{{0, 0}}, Values: [][]congest.Word{{1, 2}}}
	if _, err := nw.Aggregate(dup, partwise.Sum); err == nil {
		t.Fatal("want duplicate error")
	}
	oob := &partwise.Instance{Parts: [][]graph.NodeID{{9}}, Values: [][]congest.Word{{1}}}
	if _, err := nw.Aggregate(oob, partwise.Sum); err == nil {
		t.Fatal("want range error")
	}
}

func TestAggregateRoundsScaleLemma26(t *testing.T) {
	// Rounds should scale like p + log n, not like p * log n or k.
	g := graph.Grid(8, 8)
	measure := func(p int) int {
		inst := partwise.RandomCongestedInstance(g, p, 4, 7)
		nw := NewNetwork(g.N())
		if _, err := nw.Aggregate(inst, partwise.Min); err != nil {
			t.Fatal(err)
		}
		return nw.Rounds()
	}
	r1, r8 := measure(1), measure(8)
	if r8 > 8*r1 {
		t.Fatalf("rounds grew superlinearly: p=1 %d, p=8 %d", r1, r8)
	}
}

// Property: NCC aggregation agrees with the reference on random congested
// instances.
func TestAggregateProperty(t *testing.T) {
	f := func(seed int64, pp uint8) bool {
		p := int(pp%4) + 1
		g := graph.Grid(5, 5)
		inst := partwise.RandomCongestedInstance(g, p, 3, seed)
		nw := NewNetwork(g.N())
		out, err := nw.Aggregate(inst, partwise.Sum)
		if err != nil {
			return false
		}
		want := inst.Expected(partwise.Sum)
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: parts that are disconnected in any graph still aggregate (NCC
// needs no connectivity).
func TestAggregateDisconnectedParts(t *testing.T) {
	nw := NewNetwork(10)
	inst := &partwise.Instance{
		Parts:  [][]graph.NodeID{{0, 9}, {3, 5, 7}},
		Values: [][]congest.Word{{4, 6}, {1, 2, 3}},
	}
	out, err := nw.Aggregate(inst, partwise.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 10 || out[1] != 6 {
		t.Fatalf("out=%v", out)
	}
	_ = shortcut.Congestion(inst.Parts) // parts API interoperates
}

func TestDeliverUnscheduledDropsOverCapacity(t *testing.T) {
	nw := NewNetwork(16) // cap 4
	var msgs []Message
	for s := 1; s <= 10; s++ {
		msgs = append(msgs, Message{From: graph.NodeID(s), To: 0, Payload: congest.Word(s)})
	}
	var got []congest.Word
	dropped, err := nw.DeliverUnscheduled(msgs, func(m Message) { got = append(got, m.Payload) })
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 6 || len(got) != 4 {
		t.Fatalf("dropped=%d delivered=%d", dropped, len(got))
	}
	// Adversary keeps the lowest sender IDs.
	for i, w := range got {
		if w != congest.Word(i+1) {
			t.Fatalf("kept=%v", got)
		}
	}
	if nw.Rounds() != 1 {
		t.Fatalf("rounds=%d", nw.Rounds())
	}
}

func TestDeliverUnscheduledSenderCap(t *testing.T) {
	nw := NewNetwork(16) // cap 4
	var msgs []Message
	for i := 0; i < 10; i++ {
		msgs = append(msgs, Message{From: 0, To: graph.NodeID(i + 1)})
	}
	dropped, err := nw.DeliverUnscheduled(msgs, func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 6 {
		t.Fatalf("dropped=%d, want 6 (sender cap)", dropped)
	}
}

// Failure injection: an aggregation implemented with unscheduled delivery
// on a congested instance loses contributions, while the scheduled
// Lemma 26 algorithm is exact — the reason Deliver exists.
func TestUnscheduledAggregationLosesData(t *testing.T) {
	nw := NewNetwork(64) // cap 6
	// 20 nodes all report to node 0 in one unscheduled shot.
	var msgs []Message
	for s := 1; s <= 20; s++ {
		msgs = append(msgs, Message{From: graph.NodeID(s), To: 0, Payload: 1})
	}
	var sum congest.Word
	dropped, err := nw.DeliverUnscheduled(msgs, func(m Message) { sum += m.Payload })
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 || sum == 20 {
		t.Fatalf("expected loss: dropped=%d sum=%d", dropped, sum)
	}
	// The scheduled path delivers everything.
	nw2 := NewNetwork(64)
	sum = 0
	if _, err := nw2.Deliver(msgs, func(m Message) { sum += m.Payload }); err != nil {
		t.Fatal(err)
	}
	if sum != 20 {
		t.Fatalf("scheduled sum=%d", sum)
	}
}
