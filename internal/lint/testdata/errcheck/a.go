package errcheck

import (
	"io"

	"distlap/internal/simtrace"
)

// drops loses engine errors three ways; every statement must be flagged.
func drops(j *simtrace.JSONL) {
	j.Flush()
	defer j.Flush()
	go j.Flush()
}

// handles shows the accepted forms: checked, or discarded with visible
// intent.
func handles(j *simtrace.JSONL) error {
	_ = j.Flush()
	if err := j.Flush(); err != nil {
		return err
	}
	return nil
}

// outOfScope drops an error from a non-engine package; errcheck only
// guards the simulator primitives.
func outOfScope(w io.Writer) {
	io.WriteString(w, "x")
}

// allowed carries a justification directive, so the runner suppresses it.
func allowed(j *simtrace.JSONL) {
	j.Flush() //distlint:allow errcheck sink is a bytes.Buffer, cannot fail
}
