package experiments

import (
	"bytes"
	"testing"

	"distlap/internal/simtrace"
)

// runTraced runs one experiment (quick sweeps) at the given pool width and
// returns the rendered table bytes and the flushed JSONL trace bytes.
func runTraced(t *testing.T, id string, parallel int) ([]byte, []byte) {
	t.Helper()
	var trace bytes.Buffer
	jsonl := simtrace.NewJSONL(&trace)
	tbl, err := RunWith(id, Config{Quick: true, Trace: jsonl, Parallel: parallel})
	if err != nil {
		t.Fatalf("%s at -parallel %d: %v", id, parallel, err)
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatalf("%s at -parallel %d: flush: %v", id, parallel, err)
	}
	var table bytes.Buffer
	tbl.Fprint(&table)
	return table.Bytes(), trace.Bytes()
}

// TestParallelParity is the guard on the parallel harness's determinism
// contract (DESIGN.md §7): for every experiment, a parallel run must
// produce byte-identical tables AND byte-identical JSONL traces to the
// sequential (-parallel 1) run, because points trace into private
// recorders that are replayed in canonical sweep order.
func TestParallelParity(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seqTable, seqTrace := runTraced(t, id, 1)
			parTable, parTrace := runTraced(t, id, 4)
			if !bytes.Equal(seqTable, parTable) {
				t.Errorf("table diverged between -parallel 1 and 4:\nsequential:\n%s\nparallel:\n%s",
					seqTable, parTable)
			}
			if !bytes.Equal(seqTrace, parTrace) {
				t.Errorf("JSONL trace diverged between -parallel 1 and 4 (%d vs %d bytes)",
					len(seqTrace), len(parTrace))
			}
		})
	}
}

// TestParallelParityUntraced checks the table-only path (Trace == nil): no
// recorders are allocated, and rows still assemble in canonical order.
func TestParallelParityUntraced(t *testing.T) {
	for _, id := range []string{"E1", "E8", "E9a"} {
		seq, err := RunWith(id, Config{Quick: true, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunWith(id, Config{Quick: true, Parallel: 3})
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		seq.Fprint(&a)
		par.Fprint(&b)
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: untraced tables diverged", id)
		}
	}
}
