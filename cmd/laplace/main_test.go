package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunGeneratedFamilies(t *testing.T) {
	for _, family := range []string{"path", "grid", "expander"} {
		if err := run([]string{"-family", family, "-n", "36", "-eps", "1e-3"}); err != nil {
			t.Fatalf("%s: %v", family, err)
		}
	}
}

func TestRunWithCheck(t *testing.T) {
	if err := run([]string{"-family", "grid", "-n", "16", "-eps", "1e-6", "-check"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaveThenLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := run([]string{"-family", "grid", "-n", "25", "-eps", "1e-3", "-save", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-load", path, "-eps", "1e-3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-family", "nope"}); err == nil {
		t.Fatal("want unknown-family error")
	}
	if err := run([]string{"-family", "grid", "-n", "16", "-mode", "warp"}); err == nil {
		t.Fatal("want unknown-mode error")
	}
	if err := run([]string{"-load", "/does/not/exist"}); err == nil {
		t.Fatal("want load error")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("want flag error")
	}
}
