package apps

import (
	"errors"
	"fmt"
	"math"

	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/linalg"
	"distlap/internal/seedderive"
	"distlap/internal/simtrace"
)

// SpectralPartitioner approximates the Fiedler vector (the eigenvector of
// the second-smallest Laplacian eigenvalue) by inverse power iteration:
// every iteration is one distributed Laplacian solve, x ← normalize(L⁺ x),
// restricted to the mean-zero subspace. The sign cut of the Fiedler vector
// is the classic spectral bipartition — another application the Laplacian
// paradigm (paper §1) exists to accelerate.
type SpectralPartitioner struct {
	Mode core.Mode
	Tol  float64 // per-solve tolerance (default 1e-8)
	Seed int64
	// Iterations of inverse power iteration (default 12 — inverse
	// iteration converges geometrically in λ₂/λ₃).
	Iterations int
	// Trace receives every solve's instrumentation (nil = Nop).
	Trace simtrace.Collector
}

// SpectralResult reports the approximate Fiedler computation.
type SpectralResult struct {
	Fiedler   []float64      // unit-norm, mean-zero approximate eigenvector
	Lambda2   float64        // Rayleigh quotient of Fiedler (≈ algebraic connectivity)
	SideA     []graph.NodeID // nonnegative-sign side of the cut
	CutWeight int64          // weight of edges crossing the sign cut
	Rounds    int            // total measured rounds across all solves
	Solves    int
}

// Partition runs the iteration and returns the sign-cut bipartition.
func (sp *SpectralPartitioner) Partition(g *graph.Graph) (*SpectralResult, error) {
	n := g.N()
	if n < 2 {
		return nil, errors.New("apps: spectral partition needs >= 2 nodes")
	}
	if !graph.IsConnected(g) {
		return nil, fmt.Errorf("apps: %w", ErrDisconnected)
	}
	tol := sp.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	iters := sp.Iterations
	if iters <= 0 {
		iters = 12
	}
	// Deterministic mean-zero start with components along all eigvectors.
	x := linalg.RandomBVector(n, seedderive.Derive(sp.Seed, "spectral-start", 0))
	if linalg.Norm2(x) == 0 { //distlint:allow floateq exact-zero guard before normalizing a possibly all-zero start vector
		x[0] = 1
		linalg.CenterMean(x)
	}
	res := &SpectralResult{}
	l := linalg.NewLaplacian(g)
	for it := 0; it < iters; it++ {
		sol, _, err := core.SolveOnGraphWith(g, x, core.SolveConfig{
			Mode: sp.Mode, Tol: tol, Seed: seedderive.Derive(sp.Seed, "inverse-iter", int64(it)), Trace: sp.Trace,
		})
		if err != nil {
			return nil, fmt.Errorf("apps: inverse iteration %d: %w", it, err)
		}
		res.Rounds += sol.Rounds
		res.Solves++
		x = sol.X
		linalg.CenterMean(x)
		nrm := linalg.Norm2(x)
		if nrm == 0 { //distlint:allow floateq exact-zero guard before dividing by the norm
			return nil, errors.New("apps: inverse iteration collapsed")
		}
		linalg.Scale(1/nrm, x)
		// Telemetry: per-iteration Rayleigh quotient (converging to λ₂)
		// against the solver rounds spent so far.
		simtrace.OrNop(sp.Trace).Gauge("spectral.rayleigh", it, l.Quadratic(x), res.Rounds)
	}
	res.Fiedler = x
	res.Lambda2 = l.Quadratic(x) // x is unit norm
	for v := 0; v < n; v++ {
		if x[v] >= 0 {
			res.SideA = append(res.SideA, v)
		}
	}
	res.CutWeight = CutValue(g, res.SideA)
	return res, nil
}

// Lambda2Exact computes the algebraic connectivity by dense eigensolving
// (Jacobi rotations on the projected Laplacian) — the tests' ground truth.
// Suitable for small n only.
func Lambda2Exact(g *graph.Graph) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, errors.New("apps: need >= 2 nodes")
	}
	a := linalg.NewLaplacian(g).Dense()
	// Jacobi eigenvalue iteration.
	for sweep := 0; sweep < 200; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-20 {
			break
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if math.Abs(a[i][j]) < 1e-14 {
					continue
				}
				theta := 0.5 * math.Atan2(2*a[i][j], a[j][j]-a[i][i])
				c, s := math.Cos(theta), math.Sin(theta)
				for k := 0; k < n; k++ {
					aik, ajk := a[i][k], a[j][k]
					a[i][k] = c*aik - s*ajk
					a[j][k] = s*aik + c*ajk
				}
				for k := 0; k < n; k++ {
					aki, akj := a[k][i], a[k][j]
					a[k][i] = c*aki - s*akj
					a[k][j] = s*aki + c*akj
				}
			}
		}
	}
	eigs := make([]float64, n)
	for i := 0; i < n; i++ {
		eigs[i] = a[i][i]
	}
	// Second smallest.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && eigs[j] < eigs[j-1]; j-- {
			eigs[j], eigs[j-1] = eigs[j-1], eigs[j]
		}
	}
	return eigs[1], nil
}
