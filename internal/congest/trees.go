package congest

import (
	"fmt"

	"distlap/internal/graph"
)

// Agg is a commutative, associative aggregation function over words
// (paper Definition 4: min, sum, logical-AND, ...).
type Agg func(a, b Word) Word

// Standard aggregation functions.
func AggSum(a, b Word) Word { return a + b }
func AggMin(a, b Word) Word {
	if b < a {
		return b
	}
	return a
}
func AggMax(a, b Word) Word {
	if b > a {
		return b
	}
	return a
}
func AggAnd(a, b Word) Word {
	if a != 0 && b != 0 {
		return 1
	}
	return 0
}
func AggOr(a, b Word) Word {
	if a != 0 || b != 0 {
		return 1
	}
	return 0
}

// pendingSend is one word waiting to cross a directed edge.
type pendingSend struct {
	tree     int
	from     graph.NodeID
	to       graph.NodeID
	w        Word
	eligible int // earliest round this send may occur
}

// treeSched is the shared store-and-forward scheduler for tree-structured
// communication: per directed edge a FIFO of pending sends, at most one
// crossing per round.
type treeSched struct {
	nw     *Network
	queues map[int][]pendingSend // dirEdge -> FIFO
	active []int                 // sorted dirEdges with nonempty queues
	dirty  bool
	round  int
	pushes int // total sends ever queued (sizes the faulty-run round cap)
}

func newTreeSched(nw *Network) *treeSched {
	return &treeSched{nw: nw, queues: make(map[int][]pendingSend)}
}

func (s *treeSched) push(de int, ps pendingSend) {
	q := s.queues[de]
	if len(q) == 0 {
		s.active = append(s.active, de)
		s.dirty = true
	}
	s.queues[de] = append(q, ps)
	s.pushes++
}

// step advances one round, delivering at most one eligible send per directed
// edge; deliveries are returned so the caller can apply their effects (which
// may enqueue new sends eligible from round+1). Returns false when no queue
// holds any send.
func (s *treeSched) step(deliver func(ps pendingSend)) bool {
	if len(s.active) == 0 {
		return false
	}
	faults := s.nw.faults
	if faults != nil && s.round >= s.faultRoundCap() {
		// A fault plan can starve completeness (every remaining send
		// perpetually delayed); abandon the schedule so the primitives'
		// completeness checks report the failure instead of spinning.
		return false
	}
	s.nw.checkCancel()
	if s.dirty {
		sortInts(s.active)
		s.dirty = false
	}
	s.round++
	var delivered []pendingSend
	newActive := s.active[:0]
	for _, de := range s.active {
		q := s.queues[de]
		if faults != nil {
			q, delivered = s.stepEdgeFaulty(de, q, delivered)
		} else {
			// Pop the first eligible send, preserving FIFO order otherwise.
			for i := range q {
				if q[i].eligible <= s.round {
					ps := q[i]
					q = append(q[:i], q[i+1:]...)
					s.nw.chargeEdge(de)
					delivered = append(delivered, ps)
					break
				}
			}
		}
		if len(q) == 0 {
			delete(s.queues, de)
		} else {
			s.queues[de] = q
			newActive = append(newActive, de)
		}
	}
	s.active = append([]int(nil), newActive...)
	s.dirty = true
	s.nw.metrics.Rounds++
	s.nw.trace.Rounds(s.nw.engine, 1)
	for _, ps := range delivered {
		deliver(ps)
	}
	return true
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// treeCongestion returns the maximum number of trees whose parent edges use
// any single directed edge (the scheduler's congestion parameter c).
func (nw *Network) treeCongestion(trees []*graph.Tree) int {
	use := make(map[int]int)
	c := 1
	for _, t := range trees {
		for _, v := range t.Members {
			if t.Parent[v] == -1 {
				continue
			}
			de := nw.dirEdge(t.ParentEdge[v], v)
			use[de]++
			if use[de] > c {
				c = use[de]
			}
		}
	}
	return c
}

// randomDelays draws, for each tree, an initial delay uniform in [0, c)
// (Ghaffari'15-style random-delay scheduling). With delays disabled all
// trees start immediately.
func (nw *Network) randomDelays(k, c int) []int {
	delays := make([]int, k)
	if nw.opts.DisableRandomDelays || c <= 1 {
		return delays
	}
	for i := range delays {
		delays[i] = nw.rng.Intn(c)
	}
	return delays
}

// ConvergecastMany aggregates, concurrently for every tree, the value
// val(t, v) over the tree's members using agg, delivering the result to each
// tree's root. Trees may share graph edges; every directed edge carries at
// most one word per round, so the measured cost is the true scheduled
// makespan (O(congestion + depth) with random delays, up to log factors).
// Returns the per-tree root aggregates.
func (nw *Network) ConvergecastMany(
	trees []*graph.Tree,
	val func(t int, v graph.NodeID) Word,
	agg Agg,
) ([]Word, error) {
	if len(trees) == 0 {
		return nil, ErrNoTrees
	}
	k := len(trees)
	type nodeState struct {
		pending int
		acc     Word
	}
	states := make([]map[graph.NodeID]*nodeState, k)
	sched := newTreeSched(nw)
	delays := nw.randomDelays(k, nw.treeCongestion(trees))

	for t, tr := range trees {
		states[t] = make(map[graph.NodeID]*nodeState, len(tr.Members))
		ch := tr.Children()
		for _, v := range tr.Members {
			states[t][v] = &nodeState{pending: len(ch[v]), acc: val(t, v)}
		}
		// Leaves are immediately ready to send to their parents.
		for _, v := range tr.Members {
			st := states[t][v]
			if st.pending == 0 && v != tr.Root {
				sched.push(nw.dirEdge(tr.ParentEdge[v], v), pendingSend{
					tree: t, from: v, to: tr.Parent[v], w: st.acc,
					eligible: 1 + delays[t],
				})
			}
		}
	}

	deliver := func(ps pendingSend) {
		tr := trees[ps.tree]
		st := states[ps.tree][ps.to]
		st.acc = agg(st.acc, ps.w)
		st.pending--
		if st.pending == 0 && ps.to != tr.Root {
			sched.push(nw.dirEdge(tr.ParentEdge[ps.to], ps.to), pendingSend{
				tree: ps.tree, from: ps.to, to: tr.Parent[ps.to], w: st.acc,
				eligible: sched.round + 1,
			})
		}
	}
	for sched.step(deliver) {
	}

	out := make([]Word, k)
	for t, tr := range trees {
		st := states[t][tr.Root]
		if st == nil || st.pending != 0 {
			return nil, fmt.Errorf("congest: convergecast of tree %d did not complete", t)
		}
		out[t] = st.acc
	}
	return out, nil
}

// BroadcastMany propagates, concurrently for every tree, the root value
// rootVal[t] to all members. on(t, v, w) is invoked once per member with the
// received value (including the root itself at round 0). Cost accounting is
// identical to ConvergecastMany.
func (nw *Network) BroadcastMany(
	trees []*graph.Tree,
	rootVal []Word,
	on func(t int, v graph.NodeID, w Word),
) error {
	if len(trees) == 0 {
		return ErrNoTrees
	}
	if len(rootVal) != len(trees) {
		return fmt.Errorf("congest: %d root values for %d trees", len(rootVal), len(trees))
	}
	k := len(trees)
	sched := newTreeSched(nw)
	delays := nw.randomDelays(k, nw.treeCongestion(trees))
	children := make([][][]graph.NodeID, k)
	received := make([]map[graph.NodeID]bool, k)
	for t, tr := range trees {
		children[t] = tr.Children()
		received[t] = make(map[graph.NodeID]bool, len(tr.Members))
	}

	fanOut := func(t int, v graph.NodeID, w Word, eligible int) {
		for _, c := range children[t][v] {
			sched.push(nw.dirEdge(trees[t].ParentEdge[c], v), pendingSend{
				tree: t, from: v, to: c, w: w, eligible: eligible,
			})
		}
	}
	for t, tr := range trees {
		received[t][tr.Root] = true
		on(t, tr.Root, rootVal[t])
		fanOut(t, tr.Root, rootVal[t], 1+delays[t])
	}
	deliver := func(ps pendingSend) {
		if received[ps.tree][ps.to] {
			return
		}
		received[ps.tree][ps.to] = true
		on(ps.tree, ps.to, ps.w)
		fanOut(ps.tree, ps.to, ps.w, sched.round+1)
	}
	for sched.step(deliver) {
	}

	for t, tr := range trees {
		if len(received[t]) != len(tr.Members) {
			return fmt.Errorf("congest: broadcast of tree %d reached %d of %d members",
				t, len(received[t]), len(tr.Members))
		}
	}
	return nil
}

// AggregateMany runs a full part-wise aggregation round-trip on every tree:
// convergecast of val under agg to the root, then broadcast of the result
// back to all members. It returns the per-tree aggregates (which, after the
// call, every member of the corresponding tree knows). This realizes
// Proposition 6's "solve part-wise aggregation given trees of the shortcut
// subgraphs".
func (nw *Network) AggregateMany(
	trees []*graph.Tree,
	val func(t int, v graph.NodeID) Word,
	agg Agg,
) ([]Word, error) {
	up, err := nw.ConvergecastMany(trees, val, agg)
	if err != nil {
		return nil, err
	}
	if err := nw.BroadcastMany(trees, up, func(int, graph.NodeID, Word) {}); err != nil {
		return nil, err
	}
	return up, nil
}
