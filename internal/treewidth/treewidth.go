// Package treewidth implements tree decompositions (paper Definition 11),
// heuristic width computation via elimination orderings, and the explicit
// lifting of a decomposition of G to its layered graph Ĝ_p that witnesses
// Lemma 19: tw(Ĝ_p) ≤ p·tw(G) + p − 1.
//
// Determinism obligations: elimination orderings break ties by node ID,
// heuristics use no randomness, and every decomposition is checked for
// validity (connected bags, covered edges) before its width is reported —
// widths are certified by explicit witnesses.
package treewidth

import (
	"errors"
	"fmt"
	"sort"

	"distlap/internal/graph"
	"distlap/internal/layered"
)

// Decomposition is a tree decomposition: bags of nodes connected by tree
// edges (indices into Bags).
type Decomposition struct {
	Bags  [][]graph.NodeID
	Edges [][2]int
}

// Width returns the decomposition width: max bag size − 1.
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// Errors reported by Validate.
var (
	ErrNotTree         = errors.New("treewidth: bag graph is not a tree")
	ErrNodeUncovered   = errors.New("treewidth: node in no bag")
	ErrEdgeUncovered   = errors.New("treewidth: edge endpoints share no bag")
	ErrNotContiguous   = errors.New("treewidth: bags containing a node are not connected")
	ErrNoDecomposition = errors.New("treewidth: empty decomposition for nonempty graph")
)

// Validate checks the three Definition 11 properties against g.
func (d *Decomposition) Validate(g *graph.Graph) error {
	if g.N() == 0 {
		return nil
	}
	if len(d.Bags) == 0 {
		return ErrNoDecomposition
	}
	// Bag graph must be a tree (connected, |E| = |bags|-1).
	if len(d.Edges) != len(d.Bags)-1 {
		return fmt.Errorf("%w: %d bags, %d edges", ErrNotTree, len(d.Bags), len(d.Edges))
	}
	uf := graph.NewUnionFind(len(d.Bags))
	for _, e := range d.Edges {
		if e[0] < 0 || e[0] >= len(d.Bags) || e[1] < 0 || e[1] >= len(d.Bags) {
			return fmt.Errorf("%w: edge %v out of range", ErrNotTree, e)
		}
		if !uf.Union(e[0], e[1]) {
			return fmt.Errorf("%w: cycle through %v", ErrNotTree, e)
		}
	}
	if uf.Count() != 1 {
		return fmt.Errorf("%w: %d components", ErrNotTree, uf.Count())
	}
	// Property 1 (coverage) and 2 (contiguity).
	inBags := make(map[graph.NodeID][]int)
	for i, b := range d.Bags {
		for _, v := range b {
			inBags[v] = append(inBags[v], i)
		}
	}
	for v := 0; v < g.N(); v++ {
		bags := inBags[v]
		if len(bags) == 0 {
			return fmt.Errorf("%w: node %d", ErrNodeUncovered, v)
		}
		if !bagsConnected(d, bags) {
			return fmt.Errorf("%w: node %d", ErrNotContiguous, v)
		}
	}
	// Property 3 (edge coverage).
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		covered := false
		setU := make(map[int]bool, len(inBags[e.U]))
		for _, i := range inBags[e.U] {
			setU[i] = true
		}
		for _, i := range inBags[e.V] {
			if setU[i] {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("%w: edge %d={%d,%d}", ErrEdgeUncovered, id, e.U, e.V)
		}
	}
	return nil
}

// bagsConnected checks that the given bag indices induce a connected
// subtree of the bag tree.
func bagsConnected(d *Decomposition, bags []int) bool {
	if len(bags) <= 1 {
		return true
	}
	in := make(map[int]bool, len(bags))
	for _, b := range bags {
		in[b] = true
	}
	adj := make(map[int][]int)
	for _, e := range d.Edges {
		if in[e[0]] && in[e[1]] {
			adj[e[0]] = append(adj[e[0]], e[1])
			adj[e[1]] = append(adj[e[1]], e[0])
		}
	}
	seen := map[int]bool{bags[0]: true}
	stack := []int{bags[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return len(seen) == len(bags)
}

// Heuristic computes a tree decomposition via a greedy min-fill elimination
// ordering (ties by min degree, then node ID). The width is an upper bound
// on tw(G); on trees, paths, and series-parallel-ish inputs it is typically
// exact.
func Heuristic(g *graph.Graph) *Decomposition {
	n := g.N()
	if n == 0 {
		return &Decomposition{}
	}
	// Working adjacency (simple graph view).
	adj := make([]map[graph.NodeID]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[graph.NodeID]bool)
	}
	for _, e := range g.Edges() {
		adj[e.U][e.V] = true
		adj[e.V][e.U] = true
	}
	eliminated := make([]bool, n)
	order := make([]graph.NodeID, 0, n)
	bagOf := make([][]graph.NodeID, 0, n)

	// liveNeighbors returns v's non-eliminated neighbors in sorted order;
	// bags are built from it, so its order must not leak map iteration
	// order into the decomposition.
	liveNeighbors := func(v graph.NodeID) []graph.NodeID {
		nb := make([]graph.NodeID, 0, len(adj[v]))
		for u := range adj[v] {
			if !eliminated[u] {
				nb = append(nb, u)
			}
		}
		sort.Ints(nb)
		return nb
	}
	fillOf := func(nb []graph.NodeID) int {
		fill := 0
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if !adj[nb[i]][nb[j]] {
					fill++
				}
			}
		}
		return fill
	}
	for len(order) < n {
		best, bestFill, bestDeg := -1, 1<<30, 1<<30
		for v := 0; v < n; v++ {
			if eliminated[v] {
				continue
			}
			nb := liveNeighbors(v)
			f := fillOf(nb)
			if f < bestFill || (f == bestFill && len(nb) < bestDeg) {
				best, bestFill, bestDeg = v, f, len(nb)
			}
		}
		v := best
		nb := liveNeighbors(v)
		// Make the neighborhood a clique (chordalize).
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				adj[nb[i]][nb[j]] = true
				adj[nb[j]][nb[i]] = true
			}
		}
		bag := append([]graph.NodeID{v}, nb...)
		bagOf = append(bagOf, bag)
		order = append(order, v)
		eliminated[v] = true
	}
	// Build the bag tree: bag i connects to the bag of the earliest-
	// eliminated neighbor remaining in bag i (standard clique-tree link).
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	d := &Decomposition{Bags: bagOf}
	for i, bag := range bagOf {
		next := -1
		for _, u := range bag[1:] {
			if next == -1 || pos[u] < pos[next] {
				next = u
			}
		}
		if next != -1 {
			d.Edges = append(d.Edges, [2]int{i, pos[next]})
		}
	}
	// A connected chordalized graph yields exactly len(bags)-1 links; for
	// disconnected graphs multiple roots appear — chain them to keep the
	// bag graph a tree.
	for len(d.Edges) < len(d.Bags)-1 {
		// Find components of the bag graph and join consecutive roots.
		uf := graph.NewUnionFind(len(d.Bags))
		for _, e := range d.Edges {
			uf.Union(e[0], e[1])
		}
		roots := []int{}
		seen := map[int]bool{}
		for i := range d.Bags {
			r := uf.Find(i)
			if !seen[r] {
				seen[r] = true
				roots = append(roots, i)
			}
		}
		for i := 0; i+1 < len(roots); i++ {
			d.Edges = append(d.Edges, [2]int{roots[i], roots[i+1]})
		}
	}
	return d
}

// LiftToLayered lifts a decomposition of the base graph to its layered
// graph by replacing every bag X with the union of X's copies across all p
// layers (the Lemma 19 witness): the lifted width is exactly
// p·(w+1) − 1 ≤ p·tw(G) + p − 1 when d is optimal.
func LiftToLayered(d *Decomposition, l *layered.Layered) *Decomposition {
	out := &Decomposition{
		Bags:  make([][]graph.NodeID, len(d.Bags)),
		Edges: append([][2]int(nil), d.Edges...),
	}
	for i, bag := range d.Bags {
		lifted := make([]graph.NodeID, 0, len(bag)*l.P)
		for _, v := range bag {
			for layer := 0; layer < l.P; layer++ {
				lifted = append(lifted, l.Copy(v, layer))
			}
		}
		out.Bags[i] = lifted
	}
	return out
}
