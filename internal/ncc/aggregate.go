package ncc

import (
	"fmt"
	"sort"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/partwise"
)

// aggRoute records one tournament edge as (part, member positions), so
// applying a level's combinations is pure array indexing.
type aggRoute struct {
	part     int
	from, to int
}

// Aggregate solves a p-congested part-wise aggregation instance in the NCC
// model (Lemma 26): each part runs a binary aggregation tournament over its
// members (sorted by node ID), all parts batched level by level, then a
// symmetric broadcast tournament distributes the result back. Every level
// loads each node with at most p messages, so with per-node capacity
// Θ(log n) the total cost is O((p/log n + 1)·log n) = O(p + log n) rounds —
// which the engine measures rather than assumes.
//
// Parts need not be connected in any graph: NCC is a clique with capacity
// limits, so the Definition 13 connectivity requirement is irrelevant here.
//
// The working state (sorted member views, positional accumulators, per-level
// message batches) lives in the network's pooled scratch; an already-sorted
// part (the common whole-graph identity part of hybrid global sums) is
// aliased rather than copied and re-sorted, so steady-state aggregation over
// stable parts allocates only the returned result slice.
func (nw *Network) Aggregate(inst *partwise.Instance, spec partwise.AggSpec) ([]congest.Word, error) {
	if nw.n == 0 {
		return nil, ErrNoNodes
	}
	if len(inst.Values) != len(inst.Parts) {
		return nil, partwise.ErrValuesMismatch
	}
	k := len(inst.Parts)
	total := 0
	for _, p := range inst.Parts {
		total += len(p)
	}
	s := &nw.scr
	if cap(s.members) < k {
		s.members = make([][]graph.NodeID, k)
	}
	if cap(s.acc) < k {
		s.acc = make([][]congest.Word, k)
	}
	members := s.members[:k]
	acc := s.acc[:k]
	s.memArena = grownNodes(s.memArena, total)
	s.accArena = grownWords(s.accArena, total)
	s.valWord = grownWords(s.valWord, nw.n)
	s.valStamp = grownU32(s.valStamp, nw.n)
	memPos, accPos := 0, 0
	maxSize := 0
	for i, p := range inst.Parts {
		if len(inst.Values[i]) != len(p) {
			return nil, partwise.ErrValuesMismatch
		}
		// Scatter this part's values into the epoch-stamped node→value
		// table, catching out-of-range and duplicate members in input order.
		s.valEpoch++
		if s.valEpoch == 0 {
			for j := range s.valStamp {
				s.valStamp[j] = 0
			}
			s.valEpoch = 1
		}
		for j, v := range p {
			if v < 0 || v >= nw.n {
				return nil, fmt.Errorf("ncc: %w: %d", graph.ErrNodeRange, v)
			}
			if s.valStamp[v] == s.valEpoch {
				return nil, fmt.Errorf("ncc: part %d repeats node %d", i, v)
			}
			s.valStamp[v] = s.valEpoch
			s.valWord[v] = inst.Values[i][j]
		}
		if sort.IntsAreSorted(p) {
			members[i] = p
		} else {
			ms := s.memArena[memPos : memPos+len(p)]
			memPos += len(p)
			copy(ms, p)
			sort.Ints(ms)
			members[i] = ms
		}
		a := s.accArena[accPos : accPos+len(p)]
		accPos += len(p)
		for j, v := range members[i] {
			a[j] = s.valWord[v]
		}
		acc[i] = a
		if len(p) > maxSize {
			maxSize = len(p)
		}
	}

	// Upward tournament: at level l, the member at position j (j odd
	// multiple of 2^l... precisely j ≡ 2^l (mod 2^{l+1})) sends its
	// accumulator to position j − 2^l.
	nw.trace.Begin("ncc-up")
	for stride := 1; stride < maxSize; stride *= 2 {
		msgs := s.msgs[:0]
		routes := s.routes[:0]
		for i := range members {
			for j := stride; j < len(members[i]); j += 2 * stride {
				msgs = append(msgs, Message{
					From: members[i][j], To: members[i][j-stride], Payload: acc[i][j],
				})
				routes = append(routes, aggRoute{part: i, from: j, to: j - stride})
			}
		}
		s.msgs, s.routes = msgs, routes
		if len(msgs) == 0 {
			continue
		}
		if _, err := nw.Deliver(msgs, func(m Message) {}); err != nil {
			nw.trace.End("ncc-up")
			return nil, err
		}
		// Apply combinations (payloads were captured at send time,
		// matching a real synchronous execution).
		for _, r := range routes {
			acc[r.part][r.to] = spec.Fn(acc[r.part][r.to], acc[r.part][r.from])
		}
	}
	nw.trace.End("ncc-up")
	out := make([]congest.Word, k)
	for i := range members {
		out[i] = acc[i][0]
	}

	// Downward tournament: position 0 holds the aggregate; reverse the
	// strides so every member learns it.
	top := 1
	for top < maxSize {
		top *= 2
	}
	nw.trace.Begin("ncc-down")
	for stride := top / 2; stride >= 1; stride /= 2 {
		msgs := s.msgs[:0]
		for i := range members {
			for j := stride; j < len(members[i]); j += 2 * stride {
				msgs = append(msgs, Message{
					From:    members[i][j-stride],
					To:      members[i][j],
					Payload: out[i],
				})
			}
		}
		s.msgs = msgs
		if len(msgs) == 0 {
			continue
		}
		if _, err := nw.Deliver(msgs, func(Message) {}); err != nil {
			nw.trace.End("ncc-down")
			return nil, err
		}
	}
	nw.trace.End("ncc-down")
	return out, nil
}

func grownNodes(buf []graph.NodeID, n int) []graph.NodeID {
	if cap(buf) < n {
		return make([]graph.NodeID, n)
	}
	return buf[:n]
}
