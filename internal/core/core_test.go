package core

import (
	"math"
	"testing"
	"testing/quick"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/linalg"
)

func universalComm(t *testing.T, g *graph.Graph) *CongestComm {
	t.Helper()
	nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 1})
	c, err := NewCongestComm(nw, false)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMatVecMatchesLinalg(t *testing.T) {
	g := graph.RandomConnected(30, 20, 7, 3)
	c := universalComm(t, g)
	l := linalg.NewLaplacian(g)
	x := linalg.RandomBVector(30, 5)
	want, _ := l.MatVec(x)
	got, err := c.MatVecLaplacian(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("entry %d: %g vs %g", i, got[i], want[i])
		}
	}
	if c.Rounds() != 1 {
		t.Fatalf("matvec rounds=%d, want 1", c.Rounds())
	}
}

func TestGlobalSumsBatched(t *testing.T) {
	g := graph.Grid(5, 5)
	c := universalComm(t, g)
	a := linalg.RandomBVector(25, 1)
	b := linalg.RandomBVector(25, 2)
	ones := make([]float64, 25)
	for i := range ones {
		ones[i] = 1
	}
	sums, err := c.GlobalSums(a, b, ones)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sums[0]) > 1e-9 || math.Abs(sums[1]) > 1e-9 {
		t.Fatalf("mean-zero vectors should sum to 0: %v", sums[:2])
	}
	if sums[2] != 25 {
		t.Fatalf("ones sum=%v", sums[2])
	}
	// Batching: 3 sums over the same tree should cost ~height*2 + batch,
	// far below 3 separate full aggregations... just check it's bounded.
	if c.Rounds() > 6*graph.Diameter(g) {
		t.Fatalf("rounds=%d too high", c.Rounds())
	}
}

func TestSolveIdentityPrecond(t *testing.T) {
	g := graph.Grid(4, 4)
	c := universalComm(t, g)
	b := linalg.RandomBVector(16, 9)
	res, err := Solve(c, b, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	l := linalg.NewLaplacian(g)
	xStar, _ := l.SolveExact(b)
	if e := l.RelativeLError(res.X, xStar); e > 1e-5 {
		t.Fatalf("L-error %g", e)
	}
	if res.Rounds <= 0 || res.Iterations <= 0 {
		t.Fatalf("res=%+v", res)
	}
}

func TestSolveAllPreconditioners(t *testing.T) {
	g := graph.Grid(5, 5)
	b := linalg.RandomBVector(25, 4)
	l := linalg.NewLaplacian(g)
	xStar, _ := l.SolveExact(b)
	preconds := []Preconditioner{
		&IdentityPrecond{},
		&JacobiPrecond{},
		&TreePrecond{},
		NewSchwarzPrecond(6, 2, 11),
	}
	for _, pre := range preconds {
		c := universalComm(t, g)
		res, err := Solve(c, b, Options{Tol: 1e-9, Precond: pre})
		if err != nil {
			t.Fatalf("%s: %v", pre.Name(), err)
		}
		if e := l.RelativeLError(res.X, xStar); e > 1e-5 {
			t.Fatalf("%s: L-error %g", pre.Name(), e)
		}
	}
}

func TestSolveToleranceScalesIterations(t *testing.T) {
	g := graph.Grid(6, 6)
	b := linalg.RandomBVector(36, 8)
	iters := func(tol float64) int {
		c := universalComm(t, g)
		res, err := Solve(c, b, Options{Tol: tol, Precond: &JacobiPrecond{}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Iterations
	}
	if i2, i8 := iters(1e-2), iters(1e-8); i8 <= i2 {
		t.Fatalf("log(1/eps) scaling violated: %d (1e-2) vs %d (1e-8)", i2, i8)
	}
}

func TestSolveBadInputs(t *testing.T) {
	g := graph.Path(4)
	c := universalComm(t, g)
	if _, err := Solve(c, []float64{1}, Options{Tol: 1e-6}); err == nil {
		t.Fatal("want dimension error")
	}
	if _, err := Solve(c, make([]float64, 4), Options{Tol: 0}); err == nil {
		t.Fatal("want tolerance error")
	}
	if _, err := Solve(c, make([]float64, 4), Options{Tol: 2}); err == nil {
		t.Fatal("want tolerance error")
	}
}

func TestSolveZeroRHS(t *testing.T) {
	g := graph.Path(5)
	c := universalComm(t, g)
	res, err := Solve(c, make([]float64, 5), Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || linalg.Norm2(res.X) != 0 {
		t.Fatal("zero rhs should return zero")
	}
}

func TestHybridCommSolve(t *testing.T) {
	g := graph.Path(40) // high diameter: HYBRID should beat CONGEST
	b := linalg.RandomBVector(40, 3)
	l := linalg.NewLaplacian(g)
	xStar, _ := l.SolveExact(b)

	resU, cu, err := SolveOnGraph(g, b, ModeUniversal, 1e-8, 1)
	if err != nil {
		t.Fatal(err)
	}
	resH, ch, err := SolveOnGraph(g, b, ModeHybrid, 1e-8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*Result{"universal": resU, "hybrid": resH} {
		if e := l.RelativeLError(res.X, xStar); e > 1e-5 {
			t.Fatalf("%s: L-error %g", name, e)
		}
	}
	if resH.Rounds >= resU.Rounds {
		t.Fatalf("hybrid rounds %d should beat congest rounds %d on a path",
			resH.Rounds, resU.Rounds)
	}
	_ = cu
	if hc, ok := ch.(*HybridComm); !ok || hc.NCC().Rounds() == 0 {
		t.Fatal("hybrid did not use NCC")
	}
}

func TestBaselineVsUniversalOnLowDiameter(t *testing.T) {
	// Low-diameter, many-cluster topology: the baseline's global-tree
	// cluster sweeps serialize at the root while the universal solver's
	// local cluster trees stay parallel.
	g := graph.RandomRegular(256, 4, 5)
	b := linalg.RandomBVector(g.N(), 2)
	resB, _, err := SolveOnGraph(g, b, ModeBaseline, 1e-6, 3)
	if err != nil {
		t.Fatal(err)
	}
	resU, _, err := SolveOnGraph(g, b, ModeUniversal, 1e-6, 3)
	if err != nil {
		t.Fatal(err)
	}
	perIterB := float64(resB.Rounds) / float64(resB.Iterations)
	perIterU := float64(resU.Rounds) / float64(resU.Iterations)
	if perIterU >= perIterB {
		t.Fatalf("universal per-iteration rounds %.1f should beat baseline %.1f",
			perIterU, perIterB)
	}
}

func TestModeCongestPaysConstruction(t *testing.T) {
	g := graph.Grid(6, 6)
	b := linalg.RandomBVector(36, 1)
	resS, _, err := SolveOnGraph(g, b, ModeUniversal, 1e-6, 1)
	if err != nil {
		t.Fatal(err)
	}
	resC, _, err := SolveOnGraph(g, b, ModeCongest, 1e-6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resC.Rounds <= resS.Rounds {
		t.Fatalf("CONGEST rounds %d should exceed Supported rounds %d",
			resC.Rounds, resS.Rounds)
	}
}

func TestNewCommUnknownMode(t *testing.T) {
	if _, err := NewComm(graph.Path(3), Mode("nope"), 1); err == nil {
		t.Fatal("want unknown-mode error")
	}
}

func TestSchwarzSetupCoversAllNodes(t *testing.T) {
	g := graph.Grid(6, 6)
	c := universalComm(t, g)
	p := NewSchwarzPrecond(6, 3, 7)
	if err := p.Setup(c); err != nil {
		t.Fatal(err)
	}
	counts := make(map[graph.NodeID]int)
	for _, cl := range p.Clusters() {
		for _, v := range cl {
			counts[v]++
		}
	}
	if len(counts) != 36 {
		t.Fatalf("covered %d nodes", len(counts))
	}
	for v, cnt := range counts {
		if cnt != 3 {
			t.Fatalf("node %d in %d clusters, want overlap 3", v, cnt)
		}
	}
}

func TestFloatWordRoundtrip(t *testing.T) {
	for _, f := range []float64{0, 1, -3.25, math.Pi, 1e-300, -1e300} {
		if got := congest.WordFloat(congest.FloatWord(f)); got != f {
			t.Fatalf("%v -> %v", f, got)
		}
	}
}

// Property: the solver reaches the requested residual on random connected
// graphs with the Schwarz preconditioner across modes.
func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(20, 15, 4, seed)
		b := linalg.RandomBVector(20, seed)
		for _, mode := range []Mode{ModeUniversal, ModeBaseline, ModeHybrid} {
			res, _, err := SolveOnGraph(g, b, mode, 1e-7, seed)
			if err != nil {
				return false
			}
			if res.Residual > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the solution's relative L-error is below the residual tolerance
// scaled by a modest condition-dependent factor.
func TestSolveLErrorProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(16, 10, 3, seed)
		l := linalg.NewLaplacian(g)
		b := linalg.RandomBVector(16, seed+1)
		xStar, err := l.SolveExact(b)
		if err != nil {
			return false
		}
		res, _, err := SolveOnGraph(g, b, ModeUniversal, 1e-10, seed)
		if err != nil {
			return false
		}
		return l.RelativeLError(res.X, xStar) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestLowStretchTreePrecond(t *testing.T) {
	g := graph.Grid(6, 6)
	b := linalg.RandomBVector(36, 5)
	l := linalg.NewLaplacian(g)
	xStar, _ := l.SolveExact(b)
	c := universalComm(t, g)
	res, err := Solve(c, b, Options{Tol: 1e-9, Precond: &TreePrecond{LowStretch: true, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if e := l.RelativeLError(res.X, xStar); e > 1e-5 {
		t.Fatalf("L-error %g", e)
	}
}

func TestSchwarzMPXClusters(t *testing.T) {
	g := graph.Grid(6, 6)
	b := linalg.RandomBVector(36, 2)
	c := universalComm(t, g)
	pre := &SchwarzPrecond{TargetSize: 8, Overlap: 2, Seed: 4, Method: "mpx"}
	res, err := Solve(c, b, Options{Tol: 1e-8, Precond: pre})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-8 {
		t.Fatalf("residual %g", res.Residual)
	}
	counts := map[graph.NodeID]int{}
	for _, cl := range pre.Clusters() {
		for _, v := range cl {
			counts[v]++
		}
	}
	for v, cnt := range counts {
		if cnt != 2 {
			t.Fatalf("node %d in %d clusters", v, cnt)
		}
	}
}

func TestSchwarzUnknownMethod(t *testing.T) {
	g := graph.Path(6)
	c := universalComm(t, g)
	pre := &SchwarzPrecond{TargetSize: 3, Overlap: 1, Method: "voronoi?"}
	if err := pre.Setup(c); err == nil {
		t.Fatal("want unknown-method error")
	}
}
