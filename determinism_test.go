package distlap_test

// Determinism regression tests: the two invariants distlint enforces
// statically are verified dynamically here. (a) Identical seeds must
// produce bit-identical executions — solutions, certificates and metrics.
// (b) Phases the theory says are schedule-independent (BFS flooding,
// seeded generation) must charge identical costs under different seeds.

import (
	"math"
	"testing"

	"distlap/internal/congest"
	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/shortcut"
)

// runPipeline executes the representative pipeline — seeded graph
// generation, shortcut-quality estimation, full distributed solve — and
// returns everything observable about the run.
func runPipeline(t *testing.T, seed int64) ([]float64, shortcut.QualityEstimate, congest.Metrics, int) {
	t.Helper()
	g := graph.RandomRegular(96, 4, seed)
	sq, err := shortcut.EstimateSQ(g, seed)
	if err != nil {
		t.Fatalf("EstimateSQ: %v", err)
	}
	b := make([]float64, g.N())
	mean := 0.0
	for i := range b {
		b[i] = math.Sin(float64(3*i + 1))
		mean += b[i]
	}
	mean /= float64(len(b))
	for i := range b {
		b[i] -= mean
	}
	res, c, err := core.SolveOnGraph(g, b, core.ModeUniversal, 1e-8, seed)
	if err != nil {
		t.Fatalf("SolveOnGraph: %v", err)
	}
	cc, ok := c.(*core.CongestComm)
	if !ok {
		t.Fatalf("expected *core.CongestComm, got %T", c)
	}
	return res.X, sq, cc.Network().Metrics(), res.Iterations
}

func TestSameSeedBitIdentical(t *testing.T) {
	const seed = 12345
	x1, sq1, m1, it1 := runPipeline(t, seed)
	x2, sq2, m2, it2 := runPipeline(t, seed)

	if it1 != it2 {
		t.Errorf("iteration counts differ: %d vs %d", it1, it2)
	}
	if m1 != m2 {
		t.Errorf("metrics differ under the same seed: %+v vs %+v", m1, m2)
	}
	if sq1 != sq2 {
		t.Errorf("shortcut quality estimates differ: %+v vs %+v", sq1, sq2)
	}
	if len(x1) != len(x2) {
		t.Fatalf("solution lengths differ: %d vs %d", len(x1), len(x2))
	}
	for i := range x1 {
		if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
			t.Fatalf("solution not bit-identical at %d: %x vs %x",
				i, math.Float64bits(x1[i]), math.Float64bits(x2[i]))
		}
	}
}

func TestDeterministicPhasesAcrossSeeds(t *testing.T) {
	// The graph is fixed (its own generation seed is constant); only the
	// network scheduling seed varies. BFS flooding is a deterministic
	// phase: every node is reached in the round equal to its hop distance
	// regardless of scheduling randomness, so rounds, messages and edge
	// loads must all agree across seeds.
	g := graph.RandomRegular(128, 4, 7)
	nw1 := congest.NewNetwork(g, congest.Options{Seed: 1})
	nw2 := congest.NewNetwork(g, congest.Options{Seed: 999})
	r1 := nw1.BFS(0)
	r2 := nw2.BFS(0)
	if nw1.Metrics() != nw2.Metrics() {
		t.Errorf("BFS metrics differ across seeds: %+v vs %+v", nw1.Metrics(), nw2.Metrics())
	}
	for v := range r1.Dist {
		if r1.Dist[v] != r2.Dist[v] {
			t.Fatalf("BFS distances differ at node %d: %d vs %d", v, r1.Dist[v], r2.Dist[v])
		}
	}

	// Seeded generation is pure: the same generation seed produces the
	// same edge list no matter what else has run.
	ga := graph.RandomRegular(128, 4, 7)
	if ga.N() != g.N() || ga.M() != g.M() {
		t.Fatalf("regenerated graph shape differs: %d/%d vs %d/%d", ga.N(), ga.M(), g.N(), g.M())
	}
	for id := 0; id < g.M(); id++ {
		ea, eb := ga.Edge(id), g.Edge(id)
		if ea.U != eb.U || ea.V != eb.V || ea.Weight != eb.Weight {
			t.Fatalf("edge %d differs: %+v vs %+v", id, ea, eb)
		}
	}

	// Shortcut construction is deterministic given the partition: the
	// certificates must agree across network seeds (the builder never
	// consults the network RNG).
	parts := [][]graph.NodeID{}
	for start := 0; start < g.N(); start += 16 {
		end := start + 16
		if end > g.N() {
			end = g.N()
		}
		part := []graph.NodeID{}
		for v := start; v < end; v++ {
			part = append(part, v)
		}
		parts = append(parts, part)
	}
	// Partitions must be induced-connected; fall back to single-part if
	// the contiguous chunks are not (RandomRegular IDs are arbitrary).
	all := []graph.NodeID{}
	for v := 0; v < g.N(); v++ {
		all = append(all, v)
	}
	if err := shortcut.ValidateParts(g, parts); err != nil {
		parts = [][]graph.NodeID{all}
	}
	b := shortcut.NewRegionBuilder()
	s1, err := b.Build(g, parts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s2, err := b.Build(g, parts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if s1.Congestion != s2.Congestion || s1.Dilation != s2.Dilation {
		t.Errorf("shortcut certificates differ: c=%d/%d d=%d/%d",
			s1.Congestion, s2.Congestion, s1.Dilation, s2.Dilation)
	}
	for i := range s1.Extra {
		if len(s1.Extra[i]) != len(s2.Extra[i]) {
			t.Fatalf("part %d extra edge counts differ: %d vs %d", i, len(s1.Extra[i]), len(s2.Extra[i]))
		}
		for j := range s1.Extra[i] {
			if s1.Extra[i][j] != s2.Extra[i][j] {
				t.Fatalf("part %d extra edge %d differs: %d vs %d", i, j, s1.Extra[i][j], s2.Extra[i][j])
			}
		}
	}
}
