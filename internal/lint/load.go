package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked (non-test) package of the
// module under analysis.
type Package struct {
	Path  string // import path, e.g. "distlap/internal/shortcut"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info

	allowSpecs *[]allowSpec // memoized //distlint:allow directives (see allows)
}

// Loader parses and type-checks packages of a single module using only the
// standard library: module-internal imports are resolved recursively from
// source, standard-library imports through go/importer's "source" compiler
// (which also type-checks from $GOROOT/src — no export data needed).
type Loader struct {
	Root       string // module root (directory containing go.mod)
	ModulePath string // module path from go.mod

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package // keyed by import path
	busy map[string]bool     // import-cycle guard
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// sharedFset and sharedStd cache type-checked standard-library packages
// across Loader instances. The "source" importer type-checks each stdlib
// package from $GOROOT/src on first Import (the dominant cost of a lint
// run) and memoizes it internally, so every Loader after the first gets
// the stdlib for free. The importer records positions into its FileSet, so
// the set is shared along with it; module files parsed by different
// Loaders land in the same set, which is harmless — positions stay valid
// per file. Loaders were never goroutine-safe, and sharing changes
// nothing there: all callers (cmd/distlint, the lint tests) run loads
// sequentially.
var (
	sharedFset = token.NewFileSet()
	sharedStd  = importer.ForCompiler(sharedFset, "source", nil)
)

// NewLoader returns a loader for the module rooted at or above dir.
// Loaders share one process-wide standard-library importer (see
// sharedStd), so constructing a second loader is cheap.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	return &Loader{
		Root:       root,
		ModulePath: string(m[1]),
		fset:       sharedFset,
		std:        sharedStd,
		pkgs:       make(map[string]*Package),
		busy:       make(map[string]bool),
	}, nil
}

func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer: module-internal paths load from source,
// everything else falls back to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the non-test package in dir under the given
// import path. Results are cached by import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Expand resolves package patterns relative to the module root into import
// paths, sorted. A pattern is either a directory (absolute, or relative to
// base) or such a directory followed by "/..." for a recursive walk.
// Directories named testdata, vendor, or starting with "." or "_" are
// skipped, as are directories with no non-test Go files.
func (l *Loader) Expand(base string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) error {
		path, err := l.importPathOf(dir)
		if err != nil {
			return err
		}
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		if !recursive {
			if !hasGoFiles(dir) {
				return nil, fmt.Errorf("lint: no Go files in %s", dir)
			}
			if err := add(dir); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				return add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) importPathOf(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.Root)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load loads every package named by the import paths (as returned by Expand).
func (l *Loader) Load(paths []string) ([]*Package, error) {
	var pkgs []*Package
	for _, path := range paths {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
