package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// floatEqScopes are the package-path suffixes (relative to the module) the
// floateq analyzer applies to: the numerical kernel and everything that
// consumes its residuals.
var floatEqScopes = []string{"/internal/linalg", "/internal/core", "/internal/apps"}

// FloatEq returns the floateq analyzer: == and != between floating-point
// expressions in the numerical packages are flagged. Exact float equality
// silently depends on evaluation order and FMA contraction; convergence and
// residual checks must use tolerances. Deliberate exact-zero guards (e.g.
// before a division) are suppressed with //distlint:allow floateq and a
// justification.
func FloatEq() *Analyzer {
	return &Analyzer{
		Name:     "floateq",
		Severity: SevError,
		Doc: "flags ==/!= between floating-point expressions in " +
			"internal/linalg, internal/core and internal/apps",
		Run: runFloatEq,
	}
}

func runFloatEq(p *Package) []Diagnostic {
	if !inFloatEqScope(p.Path) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			lt, rt := p.Info.TypeOf(be.X), p.Info.TypeOf(be.Y)
			if !isFloat(lt) && !isFloat(rt) {
				return true
			}
			// Two untyped constants compare at compile time with exact
			// arithmetic; that is fine.
			if isUntypedConst(p, be.X) && isUntypedConst(p, be.Y) {
				return true
			}
			out = append(out, diag(p, be, "floateq",
				"floating-point %s comparison is exact-bit equality; compare against a tolerance, or //%s floateq <why exact equality is intended>",
				be.Op, AllowDirective))
			return true
		})
	}
	return out
}

func inFloatEqScope(path string) bool {
	for _, s := range floatEqScopes {
		if strings.HasSuffix(path, s) || strings.Contains(path, s+"/") {
			return true
		}
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isUntypedConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUntyped != 0
}
