package distlap_test

// Facade tests for fault-injected requests: FaultSpec validation, the
// reliable fast path staying untouched, and a faulty request surfacing the
// recovery metrics deterministically.

import (
	"context"
	"testing"

	"distlap"
)

func TestNewFaultPlanValidates(t *testing.T) {
	if _, err := distlap.NewFaultPlan(distlap.FaultSpec{DropProb: 1.5}); err == nil {
		t.Fatalf("DropProb=1.5 accepted")
	}
	if _, err := distlap.NewFaultPlan(distlap.FaultSpec{DropProb: 0.6, DupProb: 0.6}); err == nil {
		t.Fatalf("fate probabilities summing past 1 accepted")
	}
	p, err := distlap.NewFaultPlan(distlap.FaultSpec{})
	if err != nil || p != nil {
		t.Fatalf("zero spec: plan=%v err=%v, want nil/nil (reliable path)", p, err)
	}
}

func TestNilFaultPlanIsReliableFastPath(t *testing.T) {
	g, b := parityGraph()
	inst, err := distlap.NewSolver(distlap.WithSeed(3)).Prepare(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := inst.Solve(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	var nilPlan *distlap.FaultPlan
	withNil, err := inst.Solve(context.Background(), b, distlap.WithRequestFaults(nilPlan))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "nil fault plan", plain, withNil)
	if plain.Metrics.Attempts != 0 || plain.Metrics.Degraded {
		t.Fatalf("reliable solve carries recovery metrics: %+v", plain.Metrics)
	}
}

func TestFaultyRequestRecoversDeterministically(t *testing.T) {
	g, b := parityGraph()
	inst, err := distlap.NewSolver(distlap.WithSeed(3)).Prepare(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := distlap.NewFaultPlan(distlap.FaultSpec{Seed: 11, DropProb: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *distlap.Result {
		res, err := inst.Solve(context.Background(), b, distlap.WithRequestFaults(plan))
		if err != nil {
			t.Fatalf("faulty solve: %v", err)
		}
		return res
	}
	a, c := run(), run()
	sameResult(t, "faulty request", a, c)
	if a.Metrics.Attempts < 1 || a.Metrics.FaultsObserved == 0 {
		t.Fatalf("faulty solve reported no recovery activity: %+v", a.Metrics)
	}
	if a.Metrics.Attempts != c.Metrics.Attempts ||
		a.Metrics.FaultsObserved != c.Metrics.FaultsObserved ||
		a.Metrics.Degraded != c.Metrics.Degraded {
		t.Fatalf("recovery metrics diverged: %+v vs %+v", a.Metrics, c.Metrics)
	}
}
