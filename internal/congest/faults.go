package congest

import (
	"distlap/internal/faultinject"
	"distlap/internal/graph"
)

// This file is the CONGEST engine's half of the fault-injection contract
// (DESIGN.md §9): when Options.Faults carries a plan, every message the
// engine moves — Exchange words and tree-scheduler sends alike — consults
// the plan at its round barrier and may be dropped, duplicated or delayed,
// and crash-stopped nodes fall silent. Fault decisions are pure functions
// of (plan seed, global round, directed edge / node), so the perturbed
// execution remains a pure function of (graph, Options.Seed, plan) and is
// byte-identical across repeats and -parallel widths. With a nil plan none
// of this code runs: Exchange and treeSched.step keep their exact
// pre-fault fast paths.

// FaultStats is the per-engine fault tally, shared with the NCC engine via
// internal/faultinject (see faultinject.Stats for the field semantics).
type FaultStats = faultinject.Stats

// FaultStats returns the faults injected so far (zero on reliable
// networks).
func (nw *Network) FaultStats() FaultStats { return nw.fstats }

// FaultPlan returns the network's fault plan (nil when reliable).
func (nw *Network) FaultPlan() *faultinject.Plan { return nw.faults }

// stashedDelivery is an Exchange message in delayed flight: it matures at
// the first Exchange whose global round reaches due, arriving stale at
// whatever handler that round runs (exactly the hazard delayed packets
// pose to real synchronous algorithms).
type stashedDelivery struct {
	due int // global round at which the delivery matures
	d   delivery
}

// noteFault records one injected fault event of the given kind in the
// trace: a running counter ("fault.<kind>s") for aggregate reporting, and
// a streamed gauge sample ("fault.<kind>") whose value identifies the
// edge or node hit and whose rounds field pins the event to the engine
// round it happened in — the hook cmd/simtrace's timeline markers render.
func (nw *Network) noteFault(kind string, seq int64, val, round int) {
	nw.trace.Counter("fault."+kind+"s", 1)
	nw.trace.Gauge("fault."+kind, int(seq), float64(val), round)
}

// noteCrash records a crash-stopped node the first time it is observed
// refusing to act.
func (nw *Network) noteCrash(v graph.NodeID, round int) {
	if nw.crashedSeen[v] {
		return
	}
	if nw.crashedSeen == nil {
		nw.crashedSeen = make(map[graph.NodeID]bool)
	}
	nw.crashedSeen[v] = true
	nw.fstats.Crashes++
	nw.noteFault("crash", int64(nw.fstats.Crashes), v, round)
}

// exchangeRetryCap bounds the retransmission rounds one faulty Exchange may
// consume. Links are fair-lossy: a fresh variate is drawn per (round, edge),
// so any drop probability below one clears the backlog in a handful of
// rounds (P[a word needs > k rounds] = p^k). Only a pathological plan
// (DropProb == 1, or a flaky link at FlakyDropProb == 1) reaches the cap;
// the survivors are then abandoned as permanent drops — which corrupts the
// exchange and is caught downstream by the solver's residual verification.
const exchangeRetryCap = 64

// exchangeFaulty is Exchange under a fault plan, modeling a reliable
// transport over fair-lossy links: a dropped word is charged (the bits
// crossed part of the link) and retransmitted in an extra round, so drops
// cost rounds and bandwidth, not correctness. Duplication, delay and
// crashes remain adversarial: a duplicated word is charged and delivered
// twice, a delayed word is charged at send and arrives stale at a later
// Exchange's round barrier, and a crashed node falls permanently silent
// (its peers' words to it are charged and swallowed; it sends nothing and
// is never charged).
func (nw *Network) exchangeFaulty(
	send func(v graph.NodeID, h graph.Half) (Word, bool),
	recv func(v graph.NodeID, h graph.Half, w Word),
) {
	nw.checkCancel()
	round := nw.metrics.Rounds + 1
	// Collect the round's transmissions. A transmission remembers its
	// directed edge so retransmission attempts charge the same link.
	type transmission struct {
		de int
		d  delivery
	}
	var pending []transmission
	for v := 0; v < nw.g.N(); v++ {
		if nw.faults.Crashed(v, round) {
			nw.noteCrash(v, round)
			continue // crash-stop: the node computes and sends nothing
		}
		for _, h := range nw.g.Neighbors(v) {
			w, ok := send(v, h)
			if !ok {
				continue
			}
			pending = append(pending, transmission{
				de: nw.dirEdge(h.Edge, v),
				d:  delivery{to: h.To, half: graph.Half{To: v, Edge: h.Edge}, w: w},
			})
		}
	}
	for tries := 0; ; tries++ {
		round = nw.metrics.Rounds + 1
		var deliveries []delivery
		kept := pending[:0]
		for _, tx := range pending {
			if nw.faults.Crashed(tx.d.to, round) {
				nw.chargeEdge(tx.de)
				nw.noteCrash(tx.d.to, round)
				nw.fstats.CrashDrops++
				nw.noteFault("crash-drop", nw.fstats.CrashDrops, tx.de, round)
				continue
			}
			vd := nw.faults.Link(round, tx.de)
			switch vd.Fate {
			case faultinject.FateDrop:
				// Charged, lost, retried next round (reliable transport).
				nw.chargeEdge(tx.de)
				nw.fstats.Drops++
				nw.noteFault("drop", nw.fstats.Drops, tx.de, round)
				kept = append(kept, tx)
			case faultinject.FateDup:
				nw.chargeEdge(tx.de)
				nw.chargeEdge(tx.de)
				nw.fstats.Dups++
				nw.noteFault("dup", nw.fstats.Dups, tx.de, round)
				deliveries = append(deliveries, tx.d, tx.d)
			case faultinject.FateDelay:
				nw.chargeEdge(tx.de)
				nw.fstats.Delays++
				nw.noteFault("delay", nw.fstats.Delays, tx.de, round)
				nw.stash = append(nw.stash, stashedDelivery{due: round + vd.Delay, d: tx.d})
			default:
				nw.chargeEdge(tx.de)
				deliveries = append(deliveries, tx.d)
			}
		}
		pending = kept
		nw.metrics.Rounds++
		nw.trace.Rounds(nw.engine, 1)
		// Matured delayed messages arrive first (they are older), stale, at
		// this round's handler; a receiver that crashed while they were in
		// flight swallows them.
		if len(nw.stash) > 0 {
			keptStash := nw.stash[:0]
			for _, sd := range nw.stash {
				if sd.due > round {
					keptStash = append(keptStash, sd)
					continue
				}
				if nw.faults.Crashed(sd.d.to, round) {
					nw.fstats.CrashDrops++
					continue
				}
				recv(sd.d.to, sd.d.half, sd.d.w)
			}
			nw.stash = keptStash
		}
		for _, d := range deliveries {
			recv(d.to, d.half, d.w)
		}
		if len(pending) == 0 {
			return
		}
		if tries >= exchangeRetryCap {
			// Pathologically lossy links: abandon the survivors as permanent
			// drops rather than spin. The exchange is now corrupted, which
			// the solver's local residual verification detects.
			nw.fstats.Drops += int64(len(pending))
			return
		}
	}
}

// faultRoundCap bounds a faulty tree-scheduler run: delays and drops can
// starve completeness, and the scheduler must abandon — triggering the
// primitives' completeness errors — rather than spin. The bound is far
// above any legitimate schedule (which delivers ≥ 1 send per active round).
func (s *treeSched) faultRoundCap() int { return 10_000 + 16*s.pushes }

// stepEdgeFaulty applies fault fates to one directed edge's queue for one
// scheduler round: at most one send is acted on (the link carries one word
// per round), and a delayed send stalls the link without charge. Returns
// the updated queue and delivered list.
func (s *treeSched) stepEdgeFaulty(de int, q, delivered []pendingSend) ([]pendingSend, []pendingSend) {
	nw := s.nw
	round := nw.metrics.Rounds + 1 // global round in progress
	for i := range q {
		if q[i].eligible > s.round {
			continue
		}
		ps := q[i]
		if nw.faults.Crashed(ps.from, round) {
			// The sender is dead; every send queued on its edge (all from
			// the same node, by the directed-edge encoding) dies unsent.
			nw.noteCrash(ps.from, round)
			nw.fstats.CrashDrops += int64(len(q))
			return q[:0], delivered
		}
		if nw.faults.Crashed(ps.to, round) {
			nw.chargeEdge(de)
			nw.noteCrash(ps.to, round)
			nw.fstats.CrashDrops++
			nw.noteFault("crash-drop", nw.fstats.CrashDrops, de, round)
			return append(q[:i], q[i+1:]...), delivered
		}
		vd := nw.faults.Link(round, de)
		switch vd.Fate {
		case faultinject.FateDrop:
			// Charged and lost; the send keeps its FIFO slot and the link
			// retries it next round (reliable transport over a lossy link).
			// Only a plan that drops forever starves the schedule, and the
			// round cap converts that into a completeness error.
			nw.chargeEdge(de)
			nw.fstats.Drops++
			nw.noteFault("drop", nw.fstats.Drops, de, round)
			return q, delivered
		case faultinject.FateDup:
			nw.chargeEdge(de)
			nw.chargeEdge(de)
			nw.fstats.Dups++
			nw.noteFault("dup", nw.fstats.Dups, de, round)
			return append(q[:i], q[i+1:]...), append(delivered, ps, ps)
		case faultinject.FateDelay:
			// The link stalls: the send stays queued (FIFO position kept)
			// and becomes eligible again after the delay; nothing crosses
			// this round.
			q[i].eligible = s.round + vd.Delay
			nw.fstats.Delays++
			nw.noteFault("delay", nw.fstats.Delays, de, round)
			return q, delivered
		default:
			nw.chargeEdge(de)
			return append(q[:i], q[i+1:]...), append(delivered, ps)
		}
	}
	return q, delivered
}
