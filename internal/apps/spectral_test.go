package apps

import (
	"math"
	"testing"

	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/linalg"
)

func TestSpectralPartitionBarbell(t *testing.T) {
	// The Fiedler sign cut of a barbell must be the bridge: the two
	// cliques land on opposite sides.
	g := graph.Barbell(5, 0)
	sp := &SpectralPartitioner{Mode: core.ModeUniversal, Seed: 1}
	res, err := sp.Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SideA) != 5 {
		t.Fatalf("side size %d, want 5 (one clique)", len(res.SideA))
	}
	if res.CutWeight != 1 {
		t.Fatalf("cut weight %d, want 1 (the bridge)", res.CutWeight)
	}
	if res.Rounds <= 0 || res.Solves != 12 {
		t.Fatalf("accounting: %+v", res)
	}
}

func TestSpectralLambda2MatchesExact(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(8),
		graph.Cycle(9),
		graph.Grid(3, 4),
	} {
		sp := &SpectralPartitioner{Mode: core.ModeUniversal, Seed: 2, Iterations: 30}
		res, err := sp.Partition(g)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Lambda2Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Lambda2-want) > 1e-3*math.Max(1, want) {
			t.Fatalf("n=%d: lambda2 %v vs exact %v", g.N(), res.Lambda2, want)
		}
	}
}

func TestLambda2ExactKnownValues(t *testing.T) {
	// Complete graph K_n: lambda2 = n.
	lam, err := Lambda2Exact(graph.Complete(5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-5) > 1e-8 {
		t.Fatalf("K5 lambda2 %v, want 5", lam)
	}
	// Path P_n: lambda2 = 2(1 - cos(pi/n)).
	n := 6
	lam, err = Lambda2Exact(graph.Path(n))
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (1 - math.Cos(math.Pi/float64(n)))
	if math.Abs(lam-want) > 1e-8 {
		t.Fatalf("P6 lambda2 %v, want %v", lam, want)
	}
}

func TestSpectralPartitionErrors(t *testing.T) {
	sp := &SpectralPartitioner{Mode: core.ModeUniversal}
	if _, err := sp.Partition(graph.New(1)); err == nil {
		t.Fatal("want size error")
	}
	disc := graph.New(4)
	disc.MustAddEdge(0, 1, 1)
	disc.MustAddEdge(2, 3, 1)
	if _, err := sp.Partition(disc); err == nil {
		t.Fatal("want disconnected error")
	}
	if _, err := Lambda2Exact(graph.New(1)); err == nil {
		t.Fatal("want size error")
	}
}

func TestSpectralFiedlerIsUnitMeanZero(t *testing.T) {
	g := graph.Grid(4, 4)
	sp := &SpectralPartitioner{Mode: core.ModeUniversal, Seed: 3}
	res, err := sp.Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(linalg.Norm2(res.Fiedler)-1) > 1e-9 {
		t.Fatal("not unit norm")
	}
	if math.Abs(linalg.Mean(res.Fiedler)) > 1e-9 {
		t.Fatal("not mean zero")
	}
}
