package treewidth

import (
	"errors"
	"testing"
	"testing/quick"

	"distlap/internal/graph"
	"distlap/internal/layered"
	"distlap/internal/minor"
)

func TestHeuristicWidths(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int // expected heuristic width (== treewidth on these inputs)
	}{
		{name: "single", g: graph.New(1), want: 0},
		{name: "path", g: graph.Path(8), want: 1},
		{name: "tree", g: graph.CompleteTree(2, 4), want: 1},
		{name: "caterpillar", g: graph.Caterpillar(5, 3), want: 1},
		{name: "cycle", g: graph.Cycle(7), want: 2},
		{name: "complete5", g: graph.Complete(5), want: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := Heuristic(tt.g)
			if err := d.Validate(tt.g); err != nil {
				t.Fatal(err)
			}
			if d.Width() != tt.want {
				t.Fatalf("width=%d, want %d", d.Width(), tt.want)
			}
		})
	}
}

func TestHeuristicGridBound(t *testing.T) {
	// tw(k x k grid) = k; min-fill typically achieves it (allow slack 1).
	for _, k := range []int{3, 4, 5} {
		g := graph.Grid(k, k)
		d := Heuristic(g)
		if err := d.Validate(g); err != nil {
			t.Fatal(err)
		}
		if d.Width() < k || d.Width() > k+1 {
			t.Fatalf("grid %d: width=%d", k, d.Width())
		}
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	g := graph.Path(3) // nodes 0-1-2
	// Missing edge coverage: bags {0,1} {2} joined.
	d := &Decomposition{
		Bags:  [][]graph.NodeID{{0, 1}, {2}},
		Edges: [][2]int{{0, 1}},
	}
	if err := d.Validate(g); !errors.Is(err, ErrEdgeUncovered) {
		t.Fatalf("err=%v", err)
	}
	// Node not covered.
	d = &Decomposition{
		Bags:  [][]graph.NodeID{{0, 1}, {1, 2}},
		Edges: [][2]int{{0, 1}},
	}
	if err := d.Validate(g); err != nil {
		t.Fatalf("valid decomposition rejected: %v", err)
	}
	d = &Decomposition{
		Bags:  [][]graph.NodeID{{0, 1}},
		Edges: nil,
	}
	if err := d.Validate(g); !errors.Is(err, ErrNodeUncovered) {
		t.Fatalf("err=%v", err)
	}
	// Not a tree (cycle).
	d = &Decomposition{
		Bags:  [][]graph.NodeID{{0, 1}, {1, 2}, {0, 2}},
		Edges: [][2]int{{0, 1}, {1, 2}},
	}
	// 3 bags, 2 edges is a tree; make it a cycle by 3 edges.
	d.Edges = append(d.Edges, [2]int{2, 0})
	if err := d.Validate(g); !errors.Is(err, ErrNotTree) {
		t.Fatalf("err=%v", err)
	}
	// Contiguity violation: node 1 in bags 0 and 2 but not 1.
	d = &Decomposition{
		Bags:  [][]graph.NodeID{{0, 1}, {0, 2}, {1, 2}},
		Edges: [][2]int{{0, 1}, {1, 2}},
	}
	if err := d.Validate(g); !errors.Is(err, ErrNotContiguous) {
		t.Fatalf("err=%v", err)
	}
}

func TestLiftToLayeredLemma19(t *testing.T) {
	// Lemma 19: tw(Ĝ_p) <= p*tw(G) + p - 1; the lift realizes exactly
	// p*(w+1) - 1.
	bases := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "path", g: graph.Path(10)},
		{name: "tree", g: graph.CompleteTree(2, 4)},
		{name: "cycle", g: graph.Cycle(8)},
		{name: "grid", g: graph.Grid(3, 3)},
	}
	for _, b := range bases {
		d := Heuristic(b.g)
		w := d.Width()
		for _, p := range []int{1, 2, 3, 4} {
			l, err := layered.New(b.g, p)
			if err != nil {
				t.Fatal(err)
			}
			lifted := LiftToLayered(d, l)
			if err := lifted.Validate(l.G); err != nil {
				t.Fatalf("%s p=%d: lifted decomposition invalid: %v", b.name, p, err)
			}
			want := p*(w+1) - 1
			if lifted.Width() != want {
				t.Fatalf("%s p=%d: lifted width=%d, want %d", b.name, p, lifted.Width(), want)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0)
	d := Heuristic(g)
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// Property: the heuristic always produces a valid decomposition on random
// connected graphs, with width at least the trivial lower bound
// (min degree over a 2-core-ish check skipped; just >= 1 when m >= n).
func TestHeuristicValidProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%25) + 3
		g := graph.RandomConnected(n, n/2, 1, seed)
		d := Heuristic(g)
		if err := d.Validate(g); err != nil {
			return false
		}
		return d.Width() >= 1 && d.Width() < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: lifted decompositions of random trees are valid with width
// exactly 2p-1 (trees have width 1).
func TestLiftPropertyOnTrees(t *testing.T) {
	f := func(seed int64, pp uint8) bool {
		p := int(pp%4) + 1
		g := graph.RandomConnected(15, 0, 1, seed) // spanning tree only
		d := Heuristic(g)
		if d.Width() != 1 {
			return false
		}
		l, err := layered.New(g, p)
		if err != nil {
			return false
		}
		lifted := LiftToLayered(d, l)
		return lifted.Validate(l.G) == nil && lifted.Width() == 2*p-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Lemma 12: δ(G) <= tw(G). Certified minor densities (lower bounds on δ)
// must therefore stay below the heuristic width (an upper bound on tw),
// up to the +1 from density-vs-clique-size accounting.
func TestLemma12DensityBelowTreewidth(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(20),
		graph.Cycle(12),
		graph.Grid(4, 4),
		graph.RandomConnected(30, 20, 1, 5),
	}
	for _, g := range graphs {
		w := Heuristic(g).Width()
		cert := minor.GreedyDenseMinor(g, 3)
		if err := cert.Validate(g); err != nil {
			t.Fatal(err)
		}
		if d := cert.Density(g); d > float64(w)+1 {
			t.Fatalf("certified density %v exceeds width %d + 1 (Lemma 12 violated)", d, w)
		}
	}
}
