package apps

import (
	"testing"
	"testing/quick"

	"distlap/internal/core"
	"distlap/internal/graph"
)

func TestMaxFlowExactPath(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(2, 3, 7)
	res, err := MaxFlowExact(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 {
		t.Fatalf("flow=%d, want 3 (bottleneck)", res.Value)
	}
	if CutValue(g, res.CutS) != 3 {
		t.Fatalf("cut value %d != flow", CutValue(g, res.CutS))
	}
}

func TestMaxFlowExactParallelPaths(t *testing.T) {
	// Two disjoint s-t paths of capacity 2 and 3.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 3, 2)
	g.MustAddEdge(0, 2, 3)
	g.MustAddEdge(2, 3, 3)
	res, err := MaxFlowExact(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 5 {
		t.Fatalf("flow=%d, want 5", res.Value)
	}
}

func TestMaxFlowExactBarbell(t *testing.T) {
	g := graph.Barbell(4, 0) // single bridge of weight 1
	res, err := MaxFlowExact(g, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 {
		t.Fatalf("flow=%d, want 1", res.Value)
	}
	if len(res.CutS) != 4 {
		t.Fatalf("cut side=%v", res.CutS)
	}
}

func TestMaxFlowExactErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := MaxFlowExact(g, 0, 0); err == nil {
		t.Fatal("want s==t error")
	}
	if _, err := MaxFlowExact(g, 0, 9); err == nil {
		t.Fatal("want range error")
	}
	// Disconnected: flow 0, cut = s's component.
	dg := graph.New(4)
	dg.MustAddEdge(0, 1, 1)
	dg.MustAddEdge(2, 3, 1)
	res, err := MaxFlowExact(dg, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 || len(res.CutS) != 2 {
		t.Fatalf("res=%+v", res)
	}
}

func TestSweepCutRecoversBottleneck(t *testing.T) {
	// On the barbell the electrical potentials split cleanly at the
	// bridge: the sweep cut must find the exact min cut.
	g := graph.Barbell(5, 1)
	res, err := SweepCutFromPotentials(g, 0, g.N()-1, core.ModeUniversal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != res.Exact {
		t.Fatalf("sweep cut %d vs exact %d", res.Value, res.Exact)
	}
	if res.Ratio != 1 {
		t.Fatalf("ratio=%v", res.Ratio)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds charged")
	}
	if CutValue(g, res.Side) != res.Value {
		t.Fatal("reported side inconsistent with value")
	}
}

func TestSweepCutOnGrid(t *testing.T) {
	g := graph.Grid(4, 8)
	res, err := SweepCutFromPotentials(g, 0, g.N()-1, core.ModeUniversal, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep cuts are a rounding heuristic: demand a modest approximation.
	if res.Ratio < 1 && res.Exact > 0 {
		t.Fatalf("ratio below 1: %v (cut smaller than max flow is impossible)", res.Ratio)
	}
	if res.Ratio > 2.0 {
		t.Fatalf("sweep cut ratio %v too large on a grid", res.Ratio)
	}
}

// Property: exact max flow equals exact min cut (duality) and the sweep
// cut never beats it.
func TestFlowCutDualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(14, 10, 6, seed)
		res, err := MaxFlowExact(g, 0, 13)
		if err != nil {
			return false
		}
		if CutValue(g, res.CutS) != res.Value {
			return false
		}
		sweep, err := SweepCutFromPotentials(g, 0, 13, core.ModeUniversal, seed)
		if err != nil {
			return false
		}
		return sweep.Value >= res.Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
