package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// congestPath is the module-relative suffix of the package owning the Word
// payload type and its sanctioned encoders (FloatWord, PackWord).
const congestPath = "/internal/congest"

// WordTrunc returns the wordtrunc analyzer. The CONGEST model transmits
// O(log n)-bit words; congest.Word is the simulator's payload type and the
// engines charge exactly one word per message. A conversion that silently
// changes the value on its way into a Word therefore under-charges the
// model — the payload the algorithm meant to send did not fit, and instead
// of being split into ceil(bits/congest.WordBits) words it was truncated.
// In internal/... the analyzer flags:
//
//   - float -> Word conversions (the fractional part is discarded; use
//     congest.FloatWord, the exact bit-level encoding, or send multiple
//     words);
//   - uint64/uint/uintptr -> Word conversions (values above 2^63-1 wrap
//     negative; bit-level reinterpretation must be justified);
//   - non-constant shift-packing of a Word conversion (congest.Word(x)<<k):
//     multi-field payloads must go through congest.PackWord, which panics
//     on field overflow instead of corrupting the payload.
//
// Constant expressions are exempt: constant conversions that would lose
// value do not compile, and constant shifts build sentinels, not payloads.
func WordTrunc() *Analyzer {
	return &Analyzer{
		Name:     "wordtrunc",
		Severity: SevError,
		Doc: "flags value-changing conversions into congest.Word (float " +
			"truncation, unsigned wraparound, unchecked shift-packing)",
		Run: runWordTrunc,
	}
}

func runWordTrunc(p *Package) []Diagnostic {
	if !underInternal(p.Path) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if d, ok := truncatingWordConversion(p, e); ok {
					out = append(out, d)
				}
			case *ast.BinaryExpr:
				if d, ok := uncheckedPacking(p, e); ok {
					out = append(out, d)
				}
			}
			return true
		})
	}
	return out
}

// truncatingWordConversion reports a conversion congest.Word(x) whose
// operand type can change value across the conversion.
func truncatingWordConversion(p *Package, call *ast.CallExpr) (Diagnostic, bool) {
	if !isWordConversion(p, call) {
		return Diagnostic{}, false
	}
	arg := call.Args[0]
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Value != nil { // constants convert exactly or fail to compile
		return Diagnostic{}, false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return Diagnostic{}, false
	}
	switch {
	case b.Info()&types.IsFloat != 0:
		return diag(p, call, "wordtrunc",
			"converting %s to congest.Word discards the fractional part, silently truncating the payload; encode with congest.FloatWord (exact bit-level round-trip) or split into congest.WordsFor-charged words",
			types.TypeString(tv.Type, types.RelativeTo(p.Types))), true
	case b.Kind() == types.Uint64 || b.Kind() == types.Uint || b.Kind() == types.Uintptr:
		return diag(p, call, "wordtrunc",
			"converting %s to congest.Word reinterprets values above 2^63-1 as negative; a deliberate bit-level encoding needs //%s wordtrunc <why the round-trip is exact>",
			types.TypeString(tv.Type, types.RelativeTo(p.Types)), AllowDirective), true
	}
	return Diagnostic{}, false
}

// uncheckedPacking reports a non-constant left-shift of a Word conversion
// by a sizeable constant — the hand-rolled field-packing idiom that can
// silently overflow into (or past) the sign bit.
func uncheckedPacking(p *Package, be *ast.BinaryExpr) (Diagnostic, bool) {
	if be.Op != token.SHL {
		return Diagnostic{}, false
	}
	if tv, ok := p.Info.Types[be]; ok && tv.Value != nil {
		return Diagnostic{}, false // constant sentinel, not a payload
	}
	lhs, ok := ast.Unparen(be.X).(*ast.CallExpr)
	if !ok || !isWordConversion(p, lhs) {
		return Diagnostic{}, false
	}
	shift, ok := p.Info.Types[be.Y]
	if !ok || shift.Value == nil {
		return Diagnostic{}, false
	}
	if v, exact := constInt64(shift); !exact || v < 8 {
		return Diagnostic{}, false
	}
	return diag(p, be, "wordtrunc",
		"hand-packed congest.Word payload can overflow its field widths undetected; pack with congest.PackWord (checked, panics instead of truncating) or charge congest.WordsFor(bits) words"), true
}

// isWordConversion reports whether call is a conversion whose target type
// is the congest package's Word alias (written congest.Word or, inside the
// owning package, Word). Word is a type alias for int64, so this is a
// syntactic check on the resolved type name — types.Identical cannot tell
// Word apart from int64.
func isWordConversion(p *Package, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	tn, ok := p.Info.Uses[id].(*types.TypeName)
	if !ok || tn.Name() != "Word" || tn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(tn.Pkg().Path(), congestPath)
}

// constInt64 extracts an exact int64 from a constant type-and-value.
func constInt64(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}
