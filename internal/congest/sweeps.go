package congest

import (
	"fmt"
	"math"

	"distlap/internal/graph"
)

// FloatWord packs a float64 into a message word (one float per O(log n)-bit
// message, the standard CONGEST convention for numerical algorithms). This
// is the sanctioned bit-level encoder the wordtrunc analyzer points cast
// sites at: the uint64 -> Word reinterpretation below is exact (all 64 bits
// preserved) and WordFloat inverts it bit-for-bit.
func FloatWord(f float64) Word {
	//distlint:allow wordtrunc sanctioned encoder: Float64bits reinterpretation is exact and WordFloat inverts it
	return Word(math.Float64bits(f))
}

// WordFloat unpacks a float64 from a message word.
func WordFloat(w Word) float64 { return math.Float64frombits(uint64(w)) }

// ConvergecastAll is ConvergecastMany that additionally exposes, per tree,
// every member's subtree aggregate (the value the member forwarded to its
// parent — physically known to both endpoints after the pass). Tree solvers
// (internal/core's tree and Schwarz preconditioners) need these per-edge
// partial aggregates, not just the root total.
func (nw *Network) ConvergecastAll(
	trees []*graph.Tree,
	val func(t int, v graph.NodeID) Word,
	agg Agg,
) (roots []Word, subtree []map[graph.NodeID]Word, err error) {
	if len(trees) == 0 {
		return nil, nil, ErrNoTrees
	}
	k := len(trees)
	type nodeState struct {
		pending int
		acc     Word
	}
	states := make([]map[graph.NodeID]*nodeState, k)
	sched := newTreeSched(nw)
	delays := nw.randomDelays(k, nw.treeCongestion(trees))
	for t, tr := range trees {
		states[t] = make(map[graph.NodeID]*nodeState, len(tr.Members))
		ch := tr.Children()
		for _, v := range tr.Members {
			states[t][v] = &nodeState{pending: len(ch[v]), acc: val(t, v)}
		}
		for _, v := range tr.Members {
			st := states[t][v]
			if st.pending == 0 && v != tr.Root {
				sched.push(nw.dirEdge(tr.ParentEdge[v], v), pendingSend{
					tree: t, from: v, to: tr.Parent[v], w: st.acc,
					eligible: 1 + delays[t],
				})
			}
		}
	}
	deliver := func(ps pendingSend) {
		tr := trees[ps.tree]
		st := states[ps.tree][ps.to]
		st.acc = agg(st.acc, ps.w)
		st.pending--
		if st.pending == 0 && ps.to != tr.Root {
			sched.push(nw.dirEdge(tr.ParentEdge[ps.to], ps.to), pendingSend{
				tree: ps.tree, from: ps.to, to: tr.Parent[ps.to], w: st.acc,
				eligible: sched.round + 1,
			})
		}
	}
	for sched.step(deliver) {
	}
	roots = make([]Word, k)
	subtree = make([]map[graph.NodeID]Word, k)
	for t, tr := range trees {
		subtree[t] = make(map[graph.NodeID]Word, len(tr.Members))
		for _, v := range tr.Members {
			st := states[t][v]
			if st.pending != 0 {
				return nil, nil, fmt.Errorf("congest: convergecast of tree %d stuck at node %d", t, v)
			}
			subtree[t][v] = st.acc
		}
		roots[t] = subtree[t][tr.Root]
	}
	return roots, subtree, nil
}

// DownSweepMany propagates values from each tree root toward the leaves,
// transforming per hop: the parent computes next(t, parent, child,
// parentVal) — a function of locally-known state — and sends the result to
// the child. on fires at every member with its received (or, for the root,
// initial) value. This is the downward pass of distributed tree solvers.
func (nw *Network) DownSweepMany(
	trees []*graph.Tree,
	rootVal []Word,
	next func(t int, parent, child graph.NodeID, parentVal Word) Word,
	on func(t int, v graph.NodeID, w Word),
) error {
	if len(trees) == 0 {
		return ErrNoTrees
	}
	if len(rootVal) != len(trees) {
		return fmt.Errorf("congest: %d root values for %d trees", len(rootVal), len(trees))
	}
	k := len(trees)
	sched := newTreeSched(nw)
	delays := nw.randomDelays(k, nw.treeCongestion(trees))
	children := make([][][]graph.NodeID, k)
	received := make([]map[graph.NodeID]bool, k)
	for t, tr := range trees {
		children[t] = tr.Children()
		received[t] = make(map[graph.NodeID]bool, len(tr.Members))
	}
	fanOut := func(t int, v graph.NodeID, w Word, eligible int) {
		for _, c := range children[t][v] {
			sched.push(nw.dirEdge(trees[t].ParentEdge[c], v), pendingSend{
				tree: t, from: v, to: c, w: next(t, v, c, w), eligible: eligible,
			})
		}
	}
	for t, tr := range trees {
		received[t][tr.Root] = true
		on(t, tr.Root, rootVal[t])
		fanOut(t, tr.Root, rootVal[t], 1+delays[t])
	}
	deliver := func(ps pendingSend) {
		if received[ps.tree][ps.to] {
			return
		}
		received[ps.tree][ps.to] = true
		on(ps.tree, ps.to, ps.w)
		fanOut(ps.tree, ps.to, ps.w, sched.round+1)
	}
	for sched.step(deliver) {
	}
	for t, tr := range trees {
		if len(received[t]) != len(tr.Members) {
			return fmt.Errorf("congest: down-sweep of tree %d reached %d of %d members",
				t, len(received[t]), len(tr.Members))
		}
	}
	return nil
}
