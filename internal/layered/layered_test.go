package layered

import (
	"testing"
	"testing/quick"

	"distlap/internal/graph"
)

func TestNewLayeredShape(t *testing.T) {
	base := graph.Grid(3, 3) // n=9, m=12
	for _, p := range []int{1, 2, 3, 5} {
		l, err := New(base, p)
		if err != nil {
			t.Fatal(err)
		}
		wantN := 9 * p
		wantM := 12*p + 9*p*(p-1)/2
		if l.G.N() != wantN || l.G.M() != wantM {
			t.Fatalf("p=%d: n=%d m=%d, want %d, %d", p, l.G.N(), l.G.M(), wantN, wantM)
		}
		if err := l.G.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !graph.IsConnected(l.G) {
			t.Fatalf("p=%d: layered graph disconnected", p)
		}
	}
}

func TestNewLayeredBadP(t *testing.T) {
	if _, err := New(graph.Path(2), 0); err == nil {
		t.Fatal("want error for p=0")
	}
}

func TestCopyProjectRoundtrip(t *testing.T) {
	base := graph.Path(7)
	l, err := New(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 7; v++ {
		for layer := 0; layer < 4; layer++ {
			x := l.Copy(v, layer)
			pv, pl := l.Project(x)
			if pv != v || pl != layer {
				t.Fatalf("roundtrip (%d,%d) -> %d -> (%d,%d)", v, layer, x, pv, pl)
			}
		}
	}
}

func TestLayerEdgeAndCliqueEdge(t *testing.T) {
	base := graph.Path(3) // edges 0:(0-1) 1:(1-2)
	l, err := New(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	for layer := 0; layer < 3; layer++ {
		for be := 0; be < 2; be++ {
			id := l.LayerEdge(layer, be)
			e := l.G.Edge(id)
			bu, blu := l.Project(e.U)
			bv, blv := l.Project(e.V)
			if blu != layer || blv != layer {
				t.Fatalf("layer edge in wrong layer: %d/%d", blu, blv)
			}
			bb := base.Edge(be)
			if !(bu == bb.U && bv == bb.V || bu == bb.V && bv == bb.U) {
				t.Fatalf("layer edge endpoints wrong")
			}
		}
	}
	for v := 0; v < 3; v++ {
		id, err := l.CliqueEdge(v, 2, 0) // order-insensitive
		if err != nil {
			t.Fatal(err)
		}
		e := l.G.Edge(id)
		au, alu := l.Project(e.U)
		av, alv := l.Project(e.V)
		if au != v || av != v {
			t.Fatalf("clique edge not on node %d", v)
		}
		if !(alu == 0 && alv == 2 || alu == 2 && alv == 0) {
			t.Fatalf("clique layers (%d,%d)", alu, alv)
		}
	}
	if _, err := l.CliqueEdge(0, 1, 1); err == nil {
		t.Fatal("want error for i==j")
	}
	if _, err := l.CliqueEdge(0, 0, 9); err == nil {
		t.Fatal("want error for out-of-range layer")
	}
}

func TestSimulatedRounds(t *testing.T) {
	l, _ := New(graph.Path(4), 5)
	if l.SimulationOverhead() != 5 || l.SimulatedRounds(7) != 35 {
		t.Fatal("Lemma 16 accounting wrong")
	}
}

func TestPairIndexExhaustive(t *testing.T) {
	for p := 2; p <= 8; p++ {
		seen := make(map[int]bool)
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				idx := pairIndex(p, i, j)
				if idx < 0 || idx >= p*(p-1)/2 || seen[idx] {
					t.Fatalf("p=%d pair (%d,%d) -> %d invalid/dup", p, i, j, idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestColorEdgesProper(t *testing.T) {
	// Multigraph with parallel edges.
	m := &Multigraph{N: 4, Edges: [][2]int{{0, 1}, {0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}}}
	res, err := ColorEdges(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoring(m, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Palette != 4*m.MaxDegree() {
		t.Fatalf("palette=%d", res.Palette)
	}
	if res.Rounds < 1 {
		t.Fatal("rounds not counted")
	}
}

func TestColorEdgesEmpty(t *testing.T) {
	m := &Multigraph{N: 3}
	res, err := ColorEdges(m, 1)
	if err != nil || len(res.Colors) != 0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestVerifyColoringDetectsConflicts(t *testing.T) {
	m := &Multigraph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}}
	if err := VerifyColoring(m, []int{0, 0}); err == nil {
		t.Fatal("want conflict at node 1")
	}
	if err := VerifyColoring(m, []int{0}); err == nil {
		t.Fatal("want length mismatch")
	}
	if err := VerifyColoring(m, []int{0, -1}); err == nil {
		t.Fatal("want uncolored error")
	}
	if err := VerifyColoring(m, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestColoringRoundsLogarithmic(t *testing.T) {
	// A long path multigraph: Δ=2, palette 8; rounds should be well below
	// the edge count.
	n := 2048
	m := &Multigraph{N: n}
	for i := 0; i+1 < n; i++ {
		m.Edges = append(m.Edges, [2]int{i, i + 1})
	}
	res, err := ColorEdges(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 12*log2(n) {
		t.Fatalf("rounds=%d too large for n=%d", res.Rounds, n)
	}
	if err := VerifyColoring(m, res.Colors); err != nil {
		t.Fatal(err)
	}
}

// gridPaths returns the Figure 1 instance: every row and every column of an
// s x s grid as a path (each node in exactly 2 parts).
func gridPaths(s int) (*graph.Graph, []Path) {
	g := graph.Grid(s, s)
	edgeBetween := func(u, v graph.NodeID) graph.EdgeID {
		for _, h := range g.Neighbors(u) {
			if h.To == v {
				return h.Edge
			}
		}
		panic("no edge")
	}
	var paths []Path
	for r := 0; r < s; r++ {
		p := Path{}
		for c := 0; c < s; c++ {
			p.Nodes = append(p.Nodes, graph.GridID(s, r, c))
			if c > 0 {
				p.Edges = append(p.Edges, edgeBetween(graph.GridID(s, r, c-1), graph.GridID(s, r, c)))
			}
		}
		paths = append(paths, p)
	}
	for c := 0; c < s; c++ {
		p := Path{}
		for r := 0; r < s; r++ {
			p.Nodes = append(p.Nodes, graph.GridID(s, r, c))
			if r > 0 {
				p.Edges = append(p.Edges, edgeBetween(graph.GridID(s, r-1, c), graph.GridID(s, r, c)))
			}
		}
		paths = append(paths, p)
	}
	return g, paths
}

func TestEmbedPathsFigure1(t *testing.T) {
	g, paths := gridPaths(5)
	emb, err := EmbedPaths(g, paths, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Parts) != 10 {
		t.Fatalf("parts=%d", len(emb.Parts))
	}
	// Lemma 18: embedding uses O(Δ_M) = O(4) layers.
	if emb.L > 16 {
		t.Fatalf("L=%d layers, want O(p)", emb.L)
	}
	// Each canonical copy projects back to the path node.
	for j, p := range paths {
		for i, v := range p.Nodes {
			pv, _ := emb.Layered.Project(emb.Canonical[j][i])
			if pv != v {
				t.Fatalf("path %d node %d: canonical projects to %d", j, i, pv)
			}
		}
	}
}

func TestEmbedPathsRejectsBadInput(t *testing.T) {
	g := graph.Path(4)
	if _, err := EmbedPaths(g, nil, 1); err == nil {
		t.Fatal("want error for empty batch")
	}
	if _, err := EmbedPaths(g, []Path{{Nodes: []graph.NodeID{2}}}, 1); err == nil {
		t.Fatal("want error for singleton path")
	}
	if _, err := EmbedPaths(g, []Path{{Nodes: []graph.NodeID{0, 2}, Edges: []graph.EdgeID{0}}}, 1); err == nil {
		t.Fatal("want error for non-path edge sequence")
	}
	if _, err := EmbedPaths(g, []Path{{Nodes: []graph.NodeID{0, 1, 0}, Edges: []graph.EdgeID{0, 0}}}, 1); err == nil {
		t.Fatal("want error for repeated node")
	}
}

func TestPathValidate(t *testing.T) {
	g := graph.Path(5)
	good := Path{Nodes: []graph.NodeID{1, 2, 3}, Edges: []graph.EdgeID{1, 2}}
	if err := good.Validate(g); err != nil {
		t.Fatal(err)
	}
	bad := Path{Nodes: []graph.NodeID{1, 2}, Edges: nil}
	if err := bad.Validate(g); err == nil {
		t.Fatal("want edge count error")
	}
}

// Property: embeddings of random path batches are always 1-congested and
// connected (verify() enforces it; here we re-check congestion from the
// outside) and the layer count stays within the palette bound 8p.
func TestEmbedPathsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, paths := gridPaths(4)
		emb, err := EmbedPaths(g, paths, seed)
		if err != nil {
			return false
		}
		// Max node congestion of the original instance is 2; palette bound
		// is 4*Δ_M = 4*(2*2) = 16 layers.
		if emb.L > 16 {
			return false
		}
		seen := make(map[graph.NodeID]bool)
		for _, part := range emb.Parts {
			for _, x := range part {
				if seen[x] {
					return false
				}
				seen[x] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
