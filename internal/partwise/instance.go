// Package partwise implements the part-wise aggregation problem (paper
// Definition 4) and its p-congested generalization (Definition 13), together
// with three distributed solvers whose costs are measured on the congest
// engine:
//
//   - NaiveGlobalSolver — the existential baseline: every part aggregates
//     over one global BFS tree, Θ(k + D) rounds on k parts;
//   - ShortcutSolver — Proposition 6: 1-congested instances solved over a
//     low-congestion shortcut in O(quality) rounds;
//   - LayeredSolver — the paper's contribution (§3.1): p-congested
//     instances reduced, via heavy-path decomposition of each part
//     (Lemma 15, following [29]) and the Lemma 18 path embedding, to
//     1-congested instances on layered graphs Ĝ_{O(p)}, simulated in G with
//     the Lemma 16 overhead.
//
// Determinism obligations: all three solvers return identical aggregation
// values on identical instances (they differ only in measured cost);
// per-level seeds in the layered solver come from seedderive, and part /
// path processing follows stable instance order — a solve is replayable
// from (graph, instance, seed).
package partwise

import (
	"errors"
	"fmt"
	"math"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/seedderive"
	"distlap/internal/shortcut"
)

// AggSpec is an aggregation function together with its identity element and
// a display name. The identity is required so relay nodes (Steiner nodes,
// non-canonical layered copies, non-members on global trees) can participate
// without perturbing the aggregate.
type AggSpec struct {
	Name     string
	Fn       congest.Agg
	Identity congest.Word
}

// Standard aggregation specs (Definition 4 examples).
var (
	Sum = AggSpec{Name: "sum", Fn: congest.AggSum, Identity: 0}
	Min = AggSpec{Name: "min", Fn: congest.AggMin, Identity: math.MaxInt64}
	Max = AggSpec{Name: "max", Fn: congest.AggMax, Identity: math.MinInt64}
	And = AggSpec{Name: "and", Fn: congest.AggAnd, Identity: 1}
	Or  = AggSpec{Name: "or", Fn: congest.AggOr, Identity: 0}
)

// Instance is a (possibly congested) part-wise aggregation instance: parts
// (each induced-connected in the communication graph) and, aligned with
// each part's node list, the part-specific input values x_i(v).
type Instance struct {
	Parts  [][]graph.NodeID
	Values [][]congest.Word
}

// Errors reported by validation and solvers.
var (
	ErrValuesMismatch = errors.New("partwise: values do not align with parts")
	ErrCongested      = errors.New("partwise: instance has node congestion > 1")
)

// Validate checks structural invariants against the communication graph.
func (inst *Instance) Validate(g *graph.Graph) error {
	if len(inst.Values) != len(inst.Parts) {
		return fmt.Errorf("%w: %d value rows for %d parts",
			ErrValuesMismatch, len(inst.Values), len(inst.Parts))
	}
	for i, p := range inst.Parts {
		if len(inst.Values[i]) != len(p) {
			return fmt.Errorf("%w: part %d has %d nodes, %d values",
				ErrValuesMismatch, i, len(p), len(inst.Values[i]))
		}
	}
	return shortcut.ValidateParts(g, inst.Parts)
}

// Congestion returns the maximum number of parts any node belongs to (the
// parameter p of Definition 13).
func (inst *Instance) Congestion() int { return shortcut.Congestion(inst.Parts) }

// Expected computes the reference aggregates centrally (ground truth for
// tests and experiments).
func (inst *Instance) Expected(spec AggSpec) []congest.Word {
	out := make([]congest.Word, len(inst.Parts))
	for i := range inst.Parts {
		acc := spec.Identity
		for _, w := range inst.Values[i] {
			acc = spec.Fn(acc, w)
		}
		out[i] = acc
	}
	return out
}

// value returns a lookup from (part, node) to input value.
func (inst *Instance) valueLookup() []map[graph.NodeID]congest.Word {
	lut := make([]map[graph.NodeID]congest.Word, len(inst.Parts))
	for i, p := range inst.Parts {
		lut[i] = make(map[graph.NodeID]congest.Word, len(p))
		for j, v := range p {
			lut[i][v] = inst.Values[i][j]
		}
	}
	return lut
}

// Solver is a distributed part-wise aggregation algorithm; after Solve
// returns, every member of part i knows out[i] (the engine's broadcast
// phases enforce this).
type Solver interface {
	Name() string
	Solve(nw *congest.Network, inst *Instance, spec AggSpec) ([]congest.Word, error)
}

// GridCongestedInstance builds the Figure 1 instance on an s×s grid: every
// row and every column is a part, so every node has congestion exactly 2
// and every row part intersects every column part (the Observation 14
// pattern). Values are the node IDs.
func GridCongestedInstance(s int) (*graph.Graph, *Instance) {
	g := graph.Grid(s, s)
	inst := &Instance{}
	for r := 0; r < s; r++ {
		var part []graph.NodeID
		var vals []congest.Word
		for c := 0; c < s; c++ {
			v := graph.GridID(s, r, c)
			part = append(part, v)
			vals = append(vals, congest.Word(v))
		}
		inst.Parts = append(inst.Parts, part)
		inst.Values = append(inst.Values, vals)
	}
	for c := 0; c < s; c++ {
		var part []graph.NodeID
		var vals []congest.Word
		for r := 0; r < s; r++ {
			v := graph.GridID(s, r, c)
			part = append(part, v)
			vals = append(vals, congest.Word(v))
		}
		inst.Parts = append(inst.Parts, part)
		inst.Values = append(inst.Values, vals)
	}
	return g, inst
}

// MinOneCongestedCover greedily colors the part-conflict graph (parts
// conflict when they share a node) and returns the number of classes, i.e.
// the number of 1-congested sub-instances a direct decomposition needs.
// Observation 14: on the Figure 1 instance this is Ω(√n) even though p = 2.
func MinOneCongestedCover(parts [][]graph.NodeID) int {
	k := len(parts)
	if k == 0 {
		return 0
	}
	// Build conflict adjacency via node -> parts index.
	byNode := make(map[graph.NodeID][]int)
	for i, p := range parts {
		for _, v := range p {
			byNode[v] = append(byNode[v], i)
		}
	}
	conflict := make([]map[int]bool, k)
	for i := range conflict {
		conflict[i] = make(map[int]bool)
	}
	for _, idxs := range byNode { //distlint:allow maporder idempotent set inserts; the conflict relation is order-independent
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				conflict[idxs[a]][idxs[b]] = true
				conflict[idxs[b]][idxs[a]] = true
			}
		}
	}
	color := make([]int, k)
	classes := 0
	for i := 0; i < k; i++ {
		used := make(map[int]bool)
		for j := range conflict[i] { //distlint:allow maporder builds the used-color set; set membership is order-independent
			if j < i {
				used[color[j]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[i] = c
		if c+1 > classes {
			classes = c + 1
		}
	}
	return classes
}

// RandomCongestedInstance builds a p-congested instance on g: p independent
// TreePartition-style partitions are overlaid, so every node lies in exactly
// p parts. Values are deterministic functions of (part, node).
func RandomCongestedInstance(g *graph.Graph, p, partsPerLayer int, seed int64) *Instance {
	inst := &Instance{}
	for l := 0; l < p; l++ {
		parts := shortcut.RandomConnectedPartition(g, partsPerLayer, seedderive.Derive(seed, "instance-layer", int64(l)))
		for _, part := range parts {
			vals := make([]congest.Word, len(part))
			for i, v := range part {
				vals[i] = congest.Word(v + l*7)
			}
			inst.Parts = append(inst.Parts, part)
			inst.Values = append(inst.Values, vals)
		}
	}
	return inst
}

// HookCongestedInstance builds the pairwise-intersecting Figure 1 pattern
// on an s×s grid: part i is the "hook" that runs along row i from column 0
// to the diagonal and then down column i to the bottom. Every node on or
// below the diagonal lies in exactly two parts, and every two distinct
// parts share the node (max(i,j), min(i,j)) — so reducing the instance to
// 1-congested sub-instances requires k = s classes even though p = 2
// (Observation 14).
func HookCongestedInstance(s int) (*graph.Graph, *Instance) {
	g := graph.Grid(s, s)
	inst := &Instance{}
	for i := 0; i < s; i++ {
		var part []graph.NodeID
		var vals []congest.Word
		for c := 0; c <= i; c++ {
			v := graph.GridID(s, i, c)
			part = append(part, v)
			vals = append(vals, congest.Word(v))
		}
		for r := i + 1; r < s; r++ {
			v := graph.GridID(s, r, i)
			part = append(part, v)
			vals = append(vals, congest.Word(v))
		}
		inst.Parts = append(inst.Parts, part)
		inst.Values = append(inst.Values, vals)
	}
	return g, inst
}
