package simprof

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchSchema is the current BENCH_<label>.json schema version; it is
// bumped on any incompatible layout change.
const BenchSchema = 1

// BenchFile is the top-level BENCH_<label>.json document written by
// cmd/bench. Field order here is the emission order (encoding/json follows
// struct order), so the file layout is stable.
//
// Metric split (the regression-gating contract): rounds, messages,
// max_edge_load, and rows are deterministic simulator measurements —
// identical for a given code version and mode on any host — and are what
// CompareBench gates on. All *_wall_ms fields and speedup are wall-clock
// observations that vary by machine and load; they are reported for trend
// reading but never gated.
type BenchFile struct {
	Schema           int        `json:"schema"`
	Label            string     `json:"label"`
	Mode             string     `json:"mode"` // "quick" or "full"
	Parallel         int        `json:"parallel"`
	GOMAXPROCS       int        `json:"gomaxprocs"`
	TotalWallMS      float64    `json:"total_wall_ms"`
	SequentialWallMS float64    `json:"sequential_wall_ms,omitempty"` // -verify only
	Speedup          float64    `json:"speedup,omitempty"`            // -verify only
	Experiments      []BenchExp `json:"experiments"`
}

// BenchExp is one experiment's record.
type BenchExp struct {
	ID          string  `json:"id"`
	WallMS      float64 `json:"wall_ms"`
	Rounds      int     `json:"rounds"`
	Messages    int64   `json:"messages"`
	MaxEdgeLoad int64   `json:"max_edge_load"`
	Rows        int     `json:"rows"`
}

// LoadBench reads and decodes one BENCH_<label>.json file.
func LoadBench(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b BenchFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// Regression is one gated metric of one experiment that regressed beyond
// the comparison threshold. Metric "missing" marks an experiment present in
// the baseline but absent from the new run (a coverage loss).
type Regression struct {
	ID     string
	Metric string // "rounds", "messages", "max_edge_load", or "missing"
	Old    int64
	New    int64
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but missing from this run", r.ID)
	}
	return fmt.Sprintf("%s: %s regressed %d -> %d (%+.1f%%)",
		r.ID, r.Metric, r.Old, r.New, 100*(float64(r.New)/float64(r.Old)-1))
}

// CompareBench gates cur against the baseline old: it returns one
// Regression per (experiment, deterministic metric) where cur exceeds the
// baseline by more than threshold (a fraction, e.g. 0.10 for 10%).
// Improvements and new experiments absent from the baseline pass silently;
// wall-time fields are never compared. The two files must share a schema
// and a mode — quick and full sweeps measure different instances and are
// not comparable.
func CompareBench(old, cur *BenchFile, threshold float64) ([]Regression, error) {
	if old.Schema != cur.Schema {
		return nil, fmt.Errorf("simprof: schema mismatch: baseline %d vs current %d", old.Schema, cur.Schema)
	}
	if old.Mode != cur.Mode {
		return nil, fmt.Errorf("simprof: mode mismatch: baseline %q vs current %q (quick and full sweeps are not comparable)", old.Mode, cur.Mode)
	}
	if threshold < 0 {
		return nil, fmt.Errorf("simprof: negative threshold %g", threshold)
	}
	curByID := make(map[string]BenchExp, len(cur.Experiments))
	for _, e := range cur.Experiments {
		curByID[e.ID] = e
	}
	// regressed: old==0 with any growth is a regression (deterministic
	// metrics should not appear from nothing); otherwise gate on the ratio.
	regressed := func(oldV, newV int64) bool {
		if newV <= oldV {
			return false
		}
		if oldV == 0 {
			return true
		}
		return float64(newV) > float64(oldV)*(1+threshold)
	}
	var out []Regression
	for _, ob := range old.Experiments {
		nb, ok := curByID[ob.ID]
		if !ok {
			out = append(out, Regression{ID: ob.ID, Metric: "missing"})
			continue
		}
		if regressed(int64(ob.Rounds), int64(nb.Rounds)) {
			out = append(out, Regression{ID: ob.ID, Metric: "rounds", Old: int64(ob.Rounds), New: int64(nb.Rounds)})
		}
		if regressed(ob.Messages, nb.Messages) {
			out = append(out, Regression{ID: ob.ID, Metric: "messages", Old: ob.Messages, New: nb.Messages})
		}
		if regressed(ob.MaxEdgeLoad, nb.MaxEdgeLoad) {
			out = append(out, Regression{ID: ob.ID, Metric: "max_edge_load", Old: ob.MaxEdgeLoad, New: nb.MaxEdgeLoad})
		}
	}
	return out, nil
}
