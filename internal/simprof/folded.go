package simprof

import (
	"fmt"
	"io"
)

// Folded weight selectors.
const (
	WeightRounds   = "rounds"
	WeightMessages = "messages"
)

// Folded writes the profile's exclusive phase charges in flamegraph
// folded-stack format: one line per phase path with "/" separators turned
// into ";" frame separators, followed by the integer weight (exclusive
// rounds or messages — exclusivity is exactly what the folded format wants,
// since flamegraph tooling re-derives inclusive totals by summing
// prefixes). Charges outside any span appear as the "(untracked)" frame.
// Zero-weight stacks are omitted. Lines inherit the trace's sorted-by-path
// emission order, so the output is deterministic.
func Folded(w io.Writer, p *Profile, weight string) error {
	pick := func(r Record) int64 {
		if weight == WeightMessages {
			return r.Messages
		}
		return int64(r.Rounds)
	}
	switch weight {
	case WeightRounds, WeightMessages:
	default:
		return fmt.Errorf("simprof: unknown folded weight %q (want %q or %q)",
			weight, WeightRounds, WeightMessages)
	}
	for _, ph := range p.Phases {
		v := pick(ph)
		if v == 0 {
			continue
		}
		stack := make([]byte, 0, len(ph.Path))
		for i := 0; i < len(ph.Path); i++ {
			if ph.Path[i] == '/' {
				stack = append(stack, ';')
			} else {
				stack = append(stack, ph.Path[i])
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", stack, v); err != nil {
			return err
		}
	}
	if v := pick(p.Untracked); v != 0 {
		if _, err := fmt.Fprintf(w, "(untracked) %d\n", v); err != nil {
			return err
		}
	}
	return nil
}
