package lint

import (
	"go/ast"
	"go/types"
)

// simtracePath is the package owning the span primitives; it is exempt from
// the tracephase analyzer (its own tests open and close spans piecemeal).
const simtracePath = "distlap/internal/simtrace"

// TracePhase returns the tracephase analyzer: inside every function body
// (function literals are separate scopes), each simtrace span name passed
// to Begin must also appear in an End call of the same scope, and vice
// versa. Error-path code legitimately calls End more than once per Begin
// (once before each early return), so the check is presence, not count —
// what it catches is the span that can never close (skewing every
// descendant phase's attribution) or the End that pops someone else's
// frame.
func TracePhase() *Analyzer {
	return &Analyzer{
		Name:     "tracephase",
		Severity: SevError,
		Doc: "flags simtrace.Begin calls without a lexically matching End " +
			"in the same function scope (and stray Ends without a Begin)",
		Run: runTracePhase,
	}
}

// spanCall is one Begin/End call attributed to its function scope.
type spanCall struct {
	call *ast.CallExpr
	name string // types.ExprString of the argument
}

func runTracePhase(p *Package) []Diagnostic {
	if p.Path == simtracePath {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		begins := make(map[ast.Node][]spanCall)
		ends := make(map[ast.Node][]spanCall)
		var scopeOrder []ast.Node // scopes in first-seen (source) order
		noteScope := func(s ast.Node) {
			if len(begins[s]) == 0 && len(ends[s]) == 0 {
				scopeOrder = append(scopeOrder, s)
			}
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if sel.Sel.Name != "Begin" && sel.Sel.Name != "End" {
				return true
			}
			if !isSimtraceRecv(p, sel.X) {
				return true
			}
			scope := enclosingFunc(stack)
			if scope == nil {
				return true
			}
			sc := spanCall{call: call, name: types.ExprString(call.Args[0])}
			noteScope(scope)
			if sel.Sel.Name == "Begin" {
				begins[scope] = append(begins[scope], sc)
			} else {
				ends[scope] = append(ends[scope], sc)
			}
			return true
		})
		for _, scope := range scopeOrder {
			endNames := make(map[string]bool)
			for _, e := range ends[scope] {
				endNames[e.name] = true
			}
			beginNames := make(map[string]bool)
			seen := make(map[string]bool)
			for _, b := range begins[scope] {
				beginNames[b.name] = true
				if !endNames[b.name] && !seen[b.name] {
					seen[b.name] = true
					out = append(out, diag(p, b.call, "tracephase",
						"span %s is opened here but never closed in this function; an unclosed span misattributes every later charge", b.name))
				}
			}
			seen = make(map[string]bool)
			for _, e := range ends[scope] {
				if !beginNames[e.name] && !seen[e.name] {
					seen[e.name] = true
					out = append(out, diag(p, e.call, "tracephase",
						"span %s is closed here but never opened in this function; a stray End pops the caller's frame", e.name))
				}
			}
		}
	}
	return out
}

// isSimtraceRecv reports whether the receiver expression's static type
// resolves (through pointers) to a named type declared in the simtrace
// package — the Collector interface or one of its sinks.
func isSimtraceRecv(p *Package, recv ast.Expr) bool {
	t := p.Info.TypeOf(recv)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == simtracePath
}

// enclosingFunc returns the innermost FuncDecl or FuncLit in the ancestor
// stack (outermost first), or nil for calls outside any function body.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
