package core

import (
	"context"
	"errors"
	"fmt"

	"distlap/internal/congest"
	"distlap/internal/faultinject"
	"distlap/internal/graph"
	"distlap/internal/linalg"
	"distlap/internal/ncc"
	"distlap/internal/simtrace"
)

// Instance is the cached per-graph half of a solve: everything whose cost
// depends only on the graph — the global (BFS) aggregation tree, the
// preconditioner's cluster covers and cluster trees, and (for Chebyshev
// instances) the spectral bounds — built once by PrepareInstance and reused
// by every request.
//
// A prepared Instance is immutable and safe for concurrent use: requests
// share only read-only state and each request runs on its own freshly
// seeded engine with its own trace collector. The amortization contract is
// that no construction phase is ever charged (or traced) after
// PrepareInstance returns; Solve charges pure iteration cost.
type Instance struct {
	g         *graph.Graph
	mode      Mode
	seed      int64
	tol       float64
	naive     bool
	hybrid    bool
	supported bool
	tree      *graph.Tree
	csr       *graph.CSR     // flat topology shared by every request engine
	pre       Preconditioner // nil for Chebyshev instances

	cheb   bool
	lo, hi float64 // cached spectral bounds (Chebyshev only)

	setup Metrics // communication cost paid by PrepareInstance
}

// PrepareConfig configures PrepareInstance.
type PrepareConfig struct {
	// Mode selects the communication model (default ModeUniversal).
	Mode Mode
	// Tol is the default request tolerance (0 selects 1e-8); individual
	// requests may override it.
	Tol float64
	// Seed drives every randomized setup phase (cluster covers) and is the
	// base from which callers derive per-request seeds.
	Seed int64
	// Trace receives the setup's instrumentation (nil = Nop): the
	// "prepare" span encloses comm-setup — including the charged BFS in
	// ModeCongest — and precond-setup with its cluster-tree construction.
	Trace simtrace.Collector
	// Chebyshev prepares for Chebyshev iteration instead of PCG: no
	// preconditioner is built, and the spectral bounds (Lo, Hi, or the safe
	// automatic ones when zero) are computed once and cached.
	Chebyshev bool
	Lo, Hi    float64
}

// PrepareInstance runs the one-time per-graph pipeline and returns the
// cached Instance. This is the expensive half the paper's amortization
// story rests on: low-stretch/BFS tree construction, cluster covers,
// cluster aggregation trees and preconditioner state are all paid for here,
// exactly once, so each additional right-hand side pays only iteration.
// ctx cancels setup between engine rounds.
func PrepareInstance(ctx context.Context, g *graph.Graph, cfg PrepareConfig) (in *Instance, err error) {
	if g == nil || g.N() == 0 {
		return nil, errors.New("core: empty graph")
	}
	mode := cfg.Mode
	if mode == "" {
		mode = ModeUniversal
	}
	tol := cfg.Tol
	//distlint:allow floateq zero is the "unset" sentinel; negative tolerances must still reach the ErrBadTol check below
	if tol == 0 {
		tol = 1e-8
	}
	if tol <= 0 || tol >= 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadTol, tol)
	}
	defer congest.CatchCancel(&err)
	tr := simtrace.OrNop(cfg.Trace)
	tr.Begin("prepare")
	defer tr.End("prepare")
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c, err := NewCommWith(g, CommConfig{Mode: mode, Seed: cfg.Seed, Trace: tr, Cancel: ctx.Err})
	if err != nil {
		return nil, err
	}
	in = &Instance{
		g:      g,
		csr:    graph.BuildCSR(g),
		mode:   mode,
		seed:   cfg.Seed,
		tol:    tol,
		hybrid: mode == ModeHybrid,
		naive:  mode == ModeBaseline,
		cheb:   cfg.Chebyshev,
	}
	switch cc := c.(type) {
	case *CongestComm:
		in.tree = cc.globalTree
		in.supported = cc.nw.Supported()
	case *HybridComm:
		in.tree = cc.local.globalTree
		in.supported = cc.local.nw.Supported()
	default:
		return nil, fmt.Errorf("core: comm %q exposes no cacheable state", c.Name())
	}
	if cfg.Chebyshev {
		// Spectral bounds are a pure function of the graph — exactly the
		// kind of per-instance work worth caching (the one-shot path
		// recomputes them on every solve).
		lo, hi := cfg.Lo, cfg.Hi
		if lo <= 0 || hi <= 0 {
			tr.Begin("spectral-bounds")
			lo, hi = linalg.SpectralBounds(linalg.NewLaplacian(g))
			tr.End("spectral-bounds")
		}
		if hi <= lo {
			return nil, fmt.Errorf("core: bad spectral bounds [%g, %g]", lo, hi)
		}
		in.lo, in.hi = lo, hi
	} else {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pre := DefaultPrecond(g, cfg.Seed)
		tr.Begin("precond-setup")
		serr := pre.Setup(c)
		tr.End("precond-setup")
		if serr != nil {
			return nil, fmt.Errorf("core: precond setup: %w", serr)
		}
		in.pre = pre
	}
	in.setup = c.CollectMetrics()
	return in, nil
}

// Request configures one per-request execution against a prepared Instance.
type Request struct {
	// Tol overrides the instance's default tolerance when positive.
	Tol float64
	// Seed seeds the request's private engine (scheduling randomness).
	// Callers derive it from the instance seed and a request identity via
	// internal/seedderive so identical requests replay identically and
	// distinct requests get unrelated streams.
	Seed int64
	// Trace receives this request's instrumentation only (nil = Nop).
	// Collectors are single-writer: one per request, never shared.
	Trace simtrace.Collector
	// Cancel is polled at engine round barriers and iteration boundaries
	// (thread context.Context.Err here); nil disables cancellation.
	Cancel func() error
	// MaxIter caps iterations (0 selects the solver default).
	MaxIter int
	// Faults attaches a deterministic fault plan to the request's engines
	// (nil = reliable execution, the fast path). When set, Solve runs the
	// self-checking recovery loop of DESIGN.md §9: every attempt's
	// convergence is verified against a local true-residual computation,
	// failed attempts are retried under re-derived seeds (seedderive phase
	// "retry"), and exhausted retries degrade to a coarser tolerance and
	// then the baseline-fallback solver — surfaced in Metrics.Attempts /
	// FaultsObserved / Degraded. Setup (PrepareInstance) is always
	// fault-free: the fault model covers serving, not construction.
	Faults *faultinject.Plan
	// Retries bounds full-tolerance recovery re-attempts (0 selects 2).
	// Meaningful only with Faults set.
	Retries int
}

// Graph returns the instance's graph (shared, read-only).
func (in *Instance) Graph() *graph.Graph { return in.g }

// Mode returns the instance's communication model.
func (in *Instance) Mode() Mode { return in.mode }

// Seed returns the base seed the instance was prepared with.
func (in *Instance) Seed() int64 { return in.seed }

// Tol returns the instance's default request tolerance.
func (in *Instance) Tol() float64 { return in.tol }

// GlobalTree exposes the cached global aggregation tree (read-only).
func (in *Instance) GlobalTree() *graph.Tree { return in.tree }

// SetupMetrics returns the communication cost PrepareInstance paid (the
// charged BFS in ModeCongest; zero rounds in the Supported modes).
func (in *Instance) SetupMetrics() Metrics { return in.setup }

// Comm builds this request's private communication substrate: a freshly
// seeded engine over the shared graph with the cached global tree injected,
// so construction charges nothing. Each request must use its own comm —
// engines are single-goroutine objects; the instance state they share is
// read-only.
func (in *Instance) Comm(req Request) Comm {
	nw := congest.NewNetwork(in.g, congest.Options{
		Supported: in.supported,
		Topology:  in.csr,
		Seed:      req.Seed,
		Trace:     simtrace.OrNop(req.Trace),
		Cancel:    req.Cancel,
		Faults:    req.Faults,
	})
	local := newCongestCommWithTree(nw, in.naive, in.tree)
	if in.hybrid {
		global := ncc.NewNetworkWith(in.g.N(), nw.Trace())
		global.SetFaults(req.Faults)
		return &HybridComm{local: local, global: global}
	}
	return local
}

// Network builds a request-private supported CONGEST network over the
// instance's graph (for the non-solve applications: MST, part-wise
// aggregation). Same isolation contract as Comm.
func (in *Instance) Network(req Request) *congest.Network {
	return congest.NewNetwork(in.g, congest.Options{
		Supported: true,
		Topology:  in.csr,
		Seed:      req.Seed,
		Trace:     simtrace.OrNop(req.Trace),
		Cancel:    req.Cancel,
		Faults:    req.Faults,
	})
}

// Solve runs the per-request iteration half of a Laplacian solve against
// the cached instance state: PCG with the prepared preconditioner, or
// Chebyshev iteration with the cached spectral bounds. The trace it emits
// contains iteration phases only — setup appeared exactly once, under
// PrepareInstance's "prepare" span.
func (in *Instance) Solve(b []float64, req Request) (res *Result, err error) {
	defer congest.CatchCancel(&err)
	if req.Cancel != nil {
		if err := req.Cancel(); err != nil {
			return nil, err
		}
	}
	tol := req.Tol
	if tol <= 0 {
		tol = in.tol
	}
	if req.Faults != nil {
		// Faulty execution runs the self-checking recovery loop
		// (recover.go): verified attempts, bounded retries, degradation.
		return in.solveRecovering(b, req, tol)
	}
	c := in.Comm(req)
	if in.cheb {
		return SolveChebyshev(c, b, ChebyshevOptions{
			Tol: tol, Lo: in.lo, Hi: in.hi, MaxIter: req.MaxIter, Cancel: req.Cancel,
		})
	}
	return Iterate(c, b, in.pre, Options{Tol: tol, MaxIter: req.MaxIter, Cancel: req.Cancel})
}

// SizeBytes estimates the resident size of the cached instance state —
// graph, global tree, and preconditioner structures — for cache budgeting
// (cmd/distlapd's LRU). It is a deterministic structural estimate, not a
// measured allocation.
func (in *Instance) SizeBytes() int64 {
	const (
		ptrSize   = 8
		edgeSize  = 3 * 8 // U, V, Weight
		halfSize  = 2 * 8 // To, Edge
		sliceHdr  = 3 * 8
		mapEntry  = 2 * 8 // key + bool bucket share, amortized
		structPad = 64
	)
	n := int64(in.g.N())
	m := int64(in.g.M())
	bytes := int64(structPad)
	bytes += m*edgeSize + 2*m*halfSize + n*sliceHdr // edges + adjacency
	bytes += treeSizeBytes(in.tree)
	if sp, ok := in.pre.(*SchwarzPrecond); ok {
		for _, cl := range sp.clusters {
			// Node list plus the membership structure's per-member share
			// (the same estimate the historical per-cluster member maps
			// reported, so cached-size accounting is unchanged).
			bytes += int64(len(cl)) * (ptrSize + mapEntry)
		}
		for _, t := range sp.trees {
			bytes += treeSizeBytes(t)
		}
		bytes += 2 * n * 8 // count + invDeg
	}
	return bytes
}

func treeSizeBytes(t *graph.Tree) int64 {
	if t == nil {
		return 0
	}
	n := int64(len(t.Parent))
	return 3*n*8 + int64(len(t.Members))*8
}
