package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// ReportVersion is the schema version of the machine-readable report. Bump
// it whenever a field changes meaning; additions are backward-compatible.
const ReportVersion = 1

// Report is the machine-readable result of a lint run: the diagnostic
// stream with suppression state, plus enough metadata to interpret it
// without the source tree. Marshaling is byte-stable: struct field order is
// fixed, file paths are module-relative slash paths, and the findings are
// already position-sorted by RunAll, so two runs over the same tree produce
// identical bytes (pinned by TestReportByteStable and the cmd/distlint
// driver test).
type Report struct {
	Version   int              `json:"version"`
	Module    string           `json:"module"`
	Analyzers []ReportAnalyzer `json:"analyzers"`
	Findings  []ReportFinding  `json:"findings"`
	Summary   ReportSummary    `json:"summary"`
}

// ReportAnalyzer describes one analyzer that ran.
type ReportAnalyzer struct {
	Name     string `json:"name"`
	Severity string `json:"severity"`
	Doc      string `json:"doc"`
}

// ReportFinding is one diagnostic, suppressed or not.
type ReportFinding struct {
	Analyzer      string `json:"analyzer"`
	File          string `json:"file"` // module-relative, slash-separated
	Line          int    `json:"line"`
	Col           int    `json:"col"`
	Severity      string `json:"severity"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed"`
	Justification string `json:"justification,omitempty"`
}

// ReportSummary aggregates the stream for quick gating.
type ReportSummary struct {
	Packages   int `json:"packages"`
	Findings   int `json:"findings"`   // unsuppressed
	Suppressed int `json:"suppressed"` // suppressed by a directive
	Errors     int `json:"errors"`     // unsuppressed with severity error
	Warnings   int `json:"warnings"`   // unsuppressed with severity warning
}

// BuildReport assembles the report for a RunAll diagnostic stream. root is
// the module root directory: absolute file positions under it are rewritten
// module-relative (and to forward slashes) so the report is stable across
// checkouts and machines.
func BuildReport(modulePath, root string, analyzers []*Analyzer, packages int, diags []Diagnostic) *Report {
	r := &Report{
		Version: ReportVersion,
		Module:  modulePath,
		Summary: ReportSummary{Packages: packages},
	}
	r.Analyzers = make([]ReportAnalyzer, 0, len(analyzers))
	for _, a := range analyzers {
		sev := a.Severity
		if sev == 0 {
			sev = SevError
		}
		r.Analyzers = append(r.Analyzers, ReportAnalyzer{Name: a.Name, Severity: sev.String(), Doc: a.Doc})
	}
	r.Findings = make([]ReportFinding, 0, len(diags))
	for _, d := range diags {
		r.Findings = append(r.Findings, ReportFinding{
			Analyzer:      d.Check,
			File:          moduleRelative(root, d.Pos.Filename),
			Line:          d.Pos.Line,
			Col:           d.Pos.Column,
			Severity:      d.Severity.String(),
			Message:       d.Message,
			Suppressed:    d.Suppressed,
			Justification: d.Justification,
		})
		switch {
		case d.Suppressed:
			r.Summary.Suppressed++
		case d.Severity == SevWarning:
			r.Summary.Warnings++
			r.Summary.Findings++
		default:
			r.Summary.Errors++
			r.Summary.Findings++
		}
	}
	return r
}

// Marshal renders the report as indented JSON with a trailing newline.
// encoding/json emits struct fields in declaration order, so the bytes are
// a pure function of the report value.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// moduleRelative rewrites file under root as a slash-separated relative
// path; files outside root (stdlib positions should never appear, but be
// safe) pass through unchanged.
func moduleRelative(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(root, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}
