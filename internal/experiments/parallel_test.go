package experiments

import (
	"bytes"
	"io"
	"testing"

	"distlap/internal/simtrace"
)

// runTraced runs one experiment (quick sweeps) at the given pool width and
// returns the rendered table bytes and the flushed JSONL trace bytes.
func runTraced(t *testing.T, id string, parallel int) ([]byte, []byte) {
	return runTracedSink(t, id, parallel, simtrace.NewJSONL)
}

// runTracedSink is runTraced with the JSONL constructor injected (series vs
// plain sinks).
func runTracedSink(t *testing.T, id string, parallel int, sink func(w io.Writer) *simtrace.JSONL) ([]byte, []byte) {
	t.Helper()
	var trace bytes.Buffer
	jsonl := sink(&trace)
	tbl, err := RunWith(id, Config{Quick: true, Trace: jsonl, Parallel: parallel})
	if err != nil {
		t.Fatalf("%s at -parallel %d: %v", id, parallel, err)
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatalf("%s at -parallel %d: flush: %v", id, parallel, err)
	}
	var table bytes.Buffer
	tbl.Fprint(&table)
	return table.Bytes(), trace.Bytes()
}

// TestParallelParity is the guard on the parallel harness's determinism
// contract (DESIGN.md §7): for every experiment, a parallel run must
// produce byte-identical tables AND byte-identical JSONL traces to the
// sequential (-parallel 1) run, because points trace into private
// recorders that are replayed in canonical sweep order.
func TestParallelParity(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seqTable, seqTrace := runTraced(t, id, 1)
			parTable, parTrace := runTraced(t, id, 4)
			if !bytes.Equal(seqTable, parTable) {
				t.Errorf("table diverged between -parallel 1 and 4:\nsequential:\n%s\nparallel:\n%s",
					seqTable, parTable)
			}
			if !bytes.Equal(seqTrace, parTrace) {
				t.Errorf("JSONL trace diverged between -parallel 1 and 4 (%d vs %d bytes)",
					len(seqTrace), len(parTrace))
			}
		})
	}
}

// TestParallelParitySeries extends the parity guard to the round-resolved
// profile: series, node-load, and gauge records must be byte-identical
// across two same-seed runs and across -parallel 1 vs 4 (the recorders
// capture NodeWords/Gauge events, so replay reproduces the full stream).
// E8 exercises ncc node attribution, E9a the solver gauges, and E10 the
// layered engine.
func TestParallelParitySeries(t *testing.T) {
	for _, id := range []string{"E8", "E9a", "E10"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seqTable, seqTrace := runTracedSink(t, id, 1, simtrace.NewJSONLSeries)
			rerunTable, rerunTrace := runTracedSink(t, id, 1, simtrace.NewJSONLSeries)
			parTable, parTrace := runTracedSink(t, id, 4, simtrace.NewJSONLSeries)
			if !bytes.Equal(seqTrace, rerunTrace) {
				t.Errorf("series trace diverged between two same-seed sequential runs (%d vs %d bytes)",
					len(seqTrace), len(rerunTrace))
			}
			if !bytes.Equal(seqTable, parTable) || !bytes.Equal(seqTable, rerunTable) {
				t.Errorf("tables diverged across runs")
			}
			if !bytes.Equal(seqTrace, parTrace) {
				t.Errorf("series JSONL trace diverged between -parallel 1 and 4 (%d vs %d bytes)",
					len(seqTrace), len(parTrace))
			}
			for _, want := range []string{`"ev":"series"`, `"ev":"node"`, `"ev":"nodehist"`} {
				if !bytes.Contains(seqTrace, []byte(want)) {
					t.Errorf("series trace missing %s records", want)
				}
			}
			if id == "E9a" && !bytes.Contains(seqTrace, []byte(`"ev":"gauge"`)) {
				t.Errorf("solver trace missing gauge records")
			}
		})
	}
}

// TestParallelParityUntraced checks the table-only path (Trace == nil): no
// recorders are allocated, and rows still assemble in canonical order.
func TestParallelParityUntraced(t *testing.T) {
	for _, id := range []string{"E1", "E8", "E9a"} {
		seq, err := RunWith(id, Config{Quick: true, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunWith(id, Config{Quick: true, Parallel: 3})
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		seq.Fprint(&a)
		par.Fprint(&b)
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: untraced tables diverged", id)
		}
	}
}
