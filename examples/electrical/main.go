// Electrical flows on a road-like network: a wide grid with a few weighted
// "highway" shortcuts. Computes s-t unit current flows and effective
// resistances through the distributed Laplacian solver — the flagship
// application of the Laplacian paradigm the paper's introduction motivates
// (max-flow via electrical flows, §5).
//
//	go run ./examples/electrical
package main

import (
	"fmt"
	"log"

	"distlap"
)

func main() {
	g, labels := buildRoadNetwork()
	fmt.Printf("road network: %d intersections, %d segments\n\n", g.N(), g.M())

	pairs := [][2]int{
		{labels["west-end"], labels["east-end"]},
		{labels["west-end"], labels["midtown"]},
		{labels["midtown"], labels["east-end"]},
	}
	names := []string{"west-end → east-end", "west-end → midtown", "midtown → east-end"}

	for i, p := range pairs {
		flow, err := distlap.Flow(g, p[0], p[1], distlap.ModeUniversal, 7)
		if err != nil {
			log.Fatal(err)
		}
		// The highest-current segment is the network's bottleneck for this
		// demand pair.
		maxEdge, maxCur := 0, 0.0
		for id, c := range flow.EdgeCurrent {
			if abs(c) > maxCur {
				maxCur = abs(c)
				maxEdge = id
			}
		}
		e := g.Edge(maxEdge)
		fmt.Printf("%s\n", names[i])
		fmt.Printf("  effective resistance: %.4f\n", flow.Resistance)
		fmt.Printf("  CONGEST rounds:       %d (%d iterations)\n", flow.Rounds, flow.Iterations)
		fmt.Printf("  busiest segment:      %d-%d carrying %.2f of the unit flow\n\n",
			e.U, e.V, maxCur)
	}
}

// buildRoadNetwork returns a 4×32 grid ("city blocks") plus three
// high-capacity highway edges, and a few named landmark nodes.
func buildRoadNetwork() (*distlap.Graph, map[string]int) {
	const rows, cols = 4, 32
	g := distlap.NewGraph(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	// Highways: heavy-weight (low-resistance) long-range edges.
	g.MustAddEdge(id(0, 0), id(0, cols/2), 10)
	g.MustAddEdge(id(0, cols/2), id(0, cols-1), 10)
	g.MustAddEdge(id(rows-1, 0), id(rows-1, cols-1), 5)
	labels := map[string]int{
		"west-end": id(1, 0),
		"midtown":  id(2, cols/2),
		"east-end": id(1, cols-1),
	}
	return g, labels
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
