package partwise

import (
	"fmt"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/shortcut"
)

// chargeConstruction charges the modeled cost of constructing the shortcut
// in standard CONGEST: a BFS to set up the skeleton plus Õ(quality) rounds,
// the shape promised by Theorem 8 (construction time ≈ achieved quality up
// to n^{o(1)}). In Supported-CONGEST the topology is common knowledge and
// construction is free.
func chargeConstruction(nw *congest.Network, s *shortcut.Shortcut) {
	if nw.Supported() {
		return
	}
	d := graph.DiameterApprox(nw.Graph())
	if d < 0 {
		d = 0
	}
	nw.ChargeRounds(d + s.Quality())
}

// SolveOneCongested is the Proposition 6 engine shared by every solver:
// build a shortcut for the parts, take a BFS tree of each augmented part
// G[P_i] ∪ H_i, and run a concurrent convergecast+broadcast over all trees.
// val(i, v) supplies the input of part i at node v (only part members are
// queried with their own values; relay nodes contribute the identity).
// Returns the per-part aggregates and the shortcut used.
func SolveOneCongested(
	nw *congest.Network,
	parts [][]graph.NodeID,
	val func(i int, v graph.NodeID) congest.Word,
	spec AggSpec,
	builder shortcut.Builder,
) ([]congest.Word, *shortcut.Shortcut, error) {
	g := nw.Graph()
	tr := nw.Trace()
	tr.Begin("shortcut-build")
	sc, err := builder.Build(g, parts)
	if err != nil {
		tr.End("shortcut-build")
		return nil, nil, fmt.Errorf("partwise: build shortcut: %w", err)
	}
	chargeConstruction(nw, sc)
	tr.End("shortcut-build")

	trees := make([]*graph.Tree, len(parts))
	members := make([]map[graph.NodeID]bool, len(parts))
	for i, p := range parts {
		members[i] = make(map[graph.NodeID]bool, len(p))
		memberList := make([]graph.NodeID, 0, len(p))
		for _, v := range p {
			members[i][v] = true
			memberList = append(memberList, v)
		}
		// Extra-edge endpoints join the tree as relays.
		seen := make(map[graph.NodeID]bool, len(p))
		for _, v := range p {
			seen[v] = true
		}
		for _, id := range sc.Extra[i] {
			e := g.Edge(id)
			for _, x := range []graph.NodeID{e.U, e.V} {
				if !seen[x] {
					seen[x] = true
					memberList = append(memberList, x)
				}
			}
		}
		trees[i] = graph.BFSTreeOfSubgraph(g, memberList, sc.Extra[i], p[0])
		if len(trees[i].Members) != len(memberList) {
			return nil, nil, fmt.Errorf("partwise: augmented part %d disconnected", i)
		}
	}
	tr.Begin("part-aggregate")
	out, err := nw.AggregateMany(trees, func(t int, v graph.NodeID) congest.Word {
		if members[t][v] {
			return val(t, v)
		}
		return spec.Identity
	}, spec.Fn)
	tr.End("part-aggregate")
	if err != nil {
		return nil, nil, err
	}
	return out, sc, nil
}

// NaiveGlobalSolver is the existential baseline in the style of the
// pre-shortcut era (and of the global phases of [18]): every part
// aggregates over one global BFS tree rooted at node 0, so k parts cost
// Θ(k + D) rounds — the √n + D shape on worst-case partitions.
type NaiveGlobalSolver struct{}

var _ Solver = NaiveGlobalSolver{}

// Name implements Solver.
func (NaiveGlobalSolver) Name() string { return "naive-global" }

// Solve implements Solver.
func (NaiveGlobalSolver) Solve(nw *congest.Network, inst *Instance, spec AggSpec) ([]congest.Word, error) {
	g := nw.Graph()
	if err := inst.Validate(g); err != nil {
		return nil, err
	}
	nw.Trace().Begin("pwa-naive")
	defer nw.Trace().End("pwa-naive")
	var tree *graph.Tree
	if nw.Supported() {
		tree = graph.BFSTree(g, 0)
	} else {
		res := nw.BFS(0) // pays O(D) rounds
		tree = &graph.Tree{
			Root: 0, Parent: res.Parent, ParentEdge: res.ParentEdge,
			Depth: res.Dist, Members: res.Order,
		}
	}
	if len(tree.Members) != g.N() {
		return nil, fmt.Errorf("partwise: graph disconnected")
	}
	lut := inst.valueLookup()
	trees := make([]*graph.Tree, len(inst.Parts))
	for i := range trees {
		trees[i] = tree
	}
	return nw.AggregateMany(trees, func(t int, v graph.NodeID) congest.Word {
		if w, ok := lut[t][v]; ok {
			return w
		}
		return spec.Identity
	}, spec.Fn)
}

// ShortcutSolver solves 1-congested instances via low-congestion shortcuts
// (Proposition 6). It rejects congested instances; those belong to
// LayeredSolver.
type ShortcutSolver struct {
	Builder shortcut.Builder
}

var _ Solver = ShortcutSolver{}

// NewShortcutSolver returns a ShortcutSolver with the default portfolio.
func NewShortcutSolver() ShortcutSolver {
	return ShortcutSolver{Builder: shortcut.DefaultPortfolio()}
}

// Name implements Solver.
func (s ShortcutSolver) Name() string { return "shortcut" }

// Solve implements Solver.
func (s ShortcutSolver) Solve(nw *congest.Network, inst *Instance, spec AggSpec) ([]congest.Word, error) {
	if err := inst.Validate(nw.Graph()); err != nil {
		return nil, err
	}
	if c := inst.Congestion(); c > 1 {
		return nil, fmt.Errorf("%w: p=%d", ErrCongested, c)
	}
	lut := inst.valueLookup()
	out, _, err := SolveOneCongested(nw, inst.Parts,
		func(i int, v graph.NodeID) congest.Word { return lut[i][v] },
		spec, s.Builder)
	return out, err
}
