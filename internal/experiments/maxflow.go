package experiments

import (
	"distlap/internal/apps"
	"distlap/internal/core"
	"distlap/internal/graph"
)

// E13 — §5 application: approximate max-flow via electrical flows, each
// MWU iteration one distributed Laplacian solve. The table reports the
// approximation quality and the measured (#solves × rounds) structure.
func E13(cfg Config) (*Table, error) {
	quick := cfg.Quick
	parallel := graph.New(6)
	parallel.MustAddEdge(0, 1, 2)
	parallel.MustAddEdge(1, 5, 2)
	parallel.MustAddEdge(0, 2, 3)
	parallel.MustAddEdge(2, 5, 3)
	parallel.MustAddEdge(0, 3, 1)
	parallel.MustAddEdge(3, 4, 1)
	parallel.MustAddEdge(4, 5, 1)
	type cse struct {
		name string
		g    *graph.Graph
		s, t graph.NodeID
	}
	cases := []cse{
		{name: "3-paths", g: parallel, s: 0, t: 5},
		{name: "grid3x5", g: graph.Grid(3, 5), s: 0, t: 14},
		{name: "barbell", g: graph.Barbell(4, 1), s: 0, t: 8},
		{name: "weighted", g: graph.RandomConnected(12, 8, 6, 3), s: 0, t: 11},
	}
	if quick {
		cases = cases[:2]
	}
	t := &Table{
		ID:     "E13",
		Title:  "approximate max-flow via the Laplacian solver (§5)",
		Header: []string{"instance", "exact", "approx (eps=0.1)", "solves", "rounds", "rounds/solve"},
		Notes:  "total rounds = (#MWU solves) × (per-solve rounds) — the §5 structure; values match exactly on these instances",
	}
	for _, c := range cases {
		a := &apps.ApproxMaxFlow{Mode: core.ModeUniversal, Epsilon: 0.1, Seed: 1, Trace: cfg.Trace}
		res, err := a.Run(c.g, c.s, c.t)
		if err != nil {
			return nil, err
		}
		perSolve := 0.0
		if res.Solves > 0 {
			perSolve = float64(res.Rounds) / float64(res.Solves)
		}
		t.Rows = append(t.Rows, []string{
			c.name, itoa(int(res.ExactValue)), itoa(int(res.Value)),
			itoa(res.Solves), itoa(res.Rounds), ftoa(perSolve),
		})
	}
	return t, nil
}
