package simtrace

import "math"

// Recorder captures the raw event sequence of a traced execution so it can
// be replayed later into another collector, byte-for-byte equivalent to
// having traced into that collector directly. It is the mechanism behind
// the deterministic parallel experiment harness (DESIGN.md §7): each sweep
// point traces into its own private Recorder on a worker goroutine, and
// the harness replays the recorders into the shared sink in canonical
// sweep order — so the sink observes the exact event stream a sequential
// run would have produced, regardless of worker interleaving.
//
// Recording is the hot path of every traced run (two events per delivered
// word), so events are stored compactly: names are interned into a small
// table (the vocabulary — engine labels, phase names, counter and gauge
// series — is static and tiny), and the 24-byte pointer-free event records
// live in fixed-size chunks, so appending never re-copies or re-zeroes the
// whole history the way a doubling slice would.
//
// A Recorder is NOT safe for concurrent use; the contract is one Recorder
// per goroutine, with Replay called only after the recording goroutine is
// done (the harness's WaitGroup provides the happens-before edge).
type Recorder struct {
	chunks [][]event // full chunks, oldest first
	cur    []event   // chunk currently being filled

	names  []string // intern table: id -> name
	nameID map[string]uint16
	last   string // most recent name (charges repeat one engine label)
	lastID uint16
}

// recorderChunk is the event capacity of one storage chunk (32768 events,
// 768 KiB): large enough to amortize allocation, small enough that short
// recordings stay cheap.
const recorderChunk = 1 << 15

// event is one recorded Collector call in 24 pointer-free bytes. kind
// selects which fields are live; name indexes the recorder's intern table;
// a and b carry the small operands (dirEdge/from/step and to/rounds) and n
// the quantity — for Gauge, the IEEE-754 bits of the sampled value.
type event struct {
	name uint16
	kind eventKind
	a, b int32
	n    int64
}

type eventKind uint8

const (
	evBegin eventKind = iota
	evEnd
	evRounds
	evMessages
	evNodeWords
	evCounter
	evGauge
)

var _ Collector = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// intern maps a name to its table id, adding it on first sight. The
// single-entry cache makes the overwhelmingly common case — the same engine
// label on every charge — a pointer-and-length string compare.
func (r *Recorder) intern(name string) uint16 {
	if name == r.last && r.names != nil {
		return r.lastID
	}
	id, ok := r.nameID[name]
	if !ok {
		if r.nameID == nil {
			r.nameID = make(map[string]uint16)
		}
		id = uint16(len(r.names))
		r.names = append(r.names, name)
		r.nameID[name] = id
	}
	r.last, r.lastID = name, id
	return id
}

// add appends one event, rolling to a fresh chunk when the current one is
// full. No existing event is ever moved or re-zeroed.
func (r *Recorder) add(e event) {
	if len(r.cur) == cap(r.cur) {
		if r.cur != nil {
			r.chunks = append(r.chunks, r.cur)
		}
		r.cur = make([]event, 0, recorderChunk)
	}
	r.cur = append(r.cur, e)
}

// Begin implements Collector.
func (r *Recorder) Begin(name string) {
	r.add(event{kind: evBegin, name: r.intern(name)})
}

// End implements Collector.
func (r *Recorder) End(name string) {
	r.add(event{kind: evEnd, name: r.intern(name)})
}

// Rounds implements Collector.
func (r *Recorder) Rounds(engine string, n int) {
	r.add(event{kind: evRounds, name: r.intern(engine), n: int64(n)})
}

// Messages implements Collector.
func (r *Recorder) Messages(engine string, dirEdge int, n int64) {
	r.add(event{kind: evMessages, name: r.intern(engine), a: int32(dirEdge), n: n})
}

// NodeWords implements Collector.
func (r *Recorder) NodeWords(engine string, from, to int, n int64) {
	r.add(event{kind: evNodeWords, name: r.intern(engine), a: int32(from), b: int32(to), n: n})
}

// Counter implements Collector.
func (r *Recorder) Counter(name string, n int64) {
	r.add(event{kind: evCounter, name: r.intern(name), n: n})
}

// Gauge implements Collector.
func (r *Recorder) Gauge(name string, step int, value float64, rounds int) {
	r.add(event{kind: evGauge, name: r.intern(name),
		a: int32(step), b: int32(rounds), n: int64(math.Float64bits(value))})
}

// Flush implements Collector. Flushing a recording is a no-op: the
// recorded execution's sink is flushed by whoever owns it, after Replay.
func (r *Recorder) Flush() error { return nil }

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	n := len(r.cur)
	for _, c := range r.chunks {
		n += len(c)
	}
	return n
}

// Replay re-issues the recorded events, in order, against into. Calling
// Replay on a nil or empty recorder is a no-op; Replay does not call
// into.Flush.
func (r *Recorder) Replay(into Collector) {
	if r == nil {
		return
	}
	for _, c := range r.chunks {
		replayChunk(c, r.names, into)
	}
	replayChunk(r.cur, r.names, into)
}

func replayChunk(events []event, names []string, into Collector) {
	for i := range events {
		e := &events[i]
		name := names[e.name]
		switch e.kind {
		case evBegin:
			into.Begin(name)
		case evEnd:
			into.End(name)
		case evRounds:
			into.Rounds(name, int(e.n))
		case evMessages:
			into.Messages(name, int(e.a), e.n)
		case evNodeWords:
			into.NodeWords(name, int(e.a), int(e.b), e.n)
		case evCounter:
			into.Counter(name, e.n)
		case evGauge:
			into.Gauge(name, int(e.a), math.Float64frombits(uint64(e.n)), int(e.b))
		}
	}
}
