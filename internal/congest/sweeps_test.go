package congest

import (
	"math"
	"testing"
	"testing/quick"

	"distlap/internal/graph"
)

func TestFloatWordRoundtrip(t *testing.T) {
	for _, f := range []float64{0, -0.0, 1.5, -math.Pi, 1e-308, 1e308, math.Inf(1)} {
		got := WordFloat(FloatWord(f))
		if got != f && !(math.IsNaN(got) && math.IsNaN(f)) {
			t.Fatalf("%v -> %v", f, got)
		}
	}
	if !math.IsNaN(WordFloat(FloatWord(math.NaN()))) {
		t.Fatal("NaN roundtrip")
	}
}

func TestConvergecastAllSubtreeSums(t *testing.T) {
	// Path rooted at 0: subtree of node v is {v, ..., n-1}.
	g := graph.Path(6)
	nw := newNet(g)
	tr := graph.BFSTree(g, 0)
	roots, sub, err := nw.ConvergecastAll([]*graph.Tree{tr},
		func(_ int, v graph.NodeID) Word { return 1 }, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if roots[0] != 6 {
		t.Fatalf("root sum=%d", roots[0])
	}
	for v := 0; v < 6; v++ {
		if sub[0][v] != Word(6-v) {
			t.Fatalf("subtree[%d]=%d, want %d", v, sub[0][v], 6-v)
		}
	}
}

func TestConvergecastAllMultipleOverlappingTrees(t *testing.T) {
	g := graph.Grid(3, 3)
	nw := newNet(g)
	trees := []*graph.Tree{graph.BFSTree(g, 0), graph.BFSTree(g, 8)}
	roots, sub, err := nw.ConvergecastAll(trees,
		func(t int, v graph.NodeID) Word { return Word(v) }, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if roots[0] != 36 || roots[1] != 36 {
		t.Fatalf("roots=%v", roots)
	}
	if len(sub[0]) != 9 || len(sub[1]) != 9 {
		t.Fatal("incomplete subtree maps")
	}
}

func TestDownSweepManyPrefixTransform(t *testing.T) {
	// Depth computation via transform: child value = parent value + 1.
	g := graph.Grid(3, 4)
	nw := newNet(g)
	tr := graph.BFSTree(g, 0)
	depths := make(map[graph.NodeID]Word)
	err := nw.DownSweepMany([]*graph.Tree{tr}, []Word{0},
		func(_ int, _, _ graph.NodeID, parentVal Word) Word { return parentVal + 1 },
		func(_ int, v graph.NodeID, w Word) { depths[v] = w })
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.Members {
		if depths[v] != Word(tr.Depth[v]) {
			t.Fatalf("depth[%d]=%d, want %d", v, depths[v], tr.Depth[v])
		}
	}
	if nw.Rounds() != tr.Height() {
		t.Fatalf("rounds=%d, want height %d", nw.Rounds(), tr.Height())
	}
}

func TestDownSweepManyErrors(t *testing.T) {
	nw := newNet(graph.Path(2))
	if err := nw.DownSweepMany(nil, nil, nil, nil); err == nil {
		t.Fatal("want no-trees error")
	}
	tr := graph.BFSTree(nw.Graph(), 0)
	if err := nw.DownSweepMany([]*graph.Tree{tr}, nil,
		func(int, graph.NodeID, graph.NodeID, Word) Word { return 0 },
		func(int, graph.NodeID, Word) {}); err == nil {
		t.Fatal("want root-value mismatch error")
	}
}

func TestConvergecastAllNoTrees(t *testing.T) {
	nw := newNet(graph.Path(2))
	if _, _, err := nw.ConvergecastAll(nil, nil, AggSum); err == nil {
		t.Fatal("want no-trees error")
	}
}

// Property: tree-Laplacian solve via ConvergecastAll + DownSweepMany
// satisfies L_T y = r on random trees (the preconditioner identity used by
// internal/core).
func TestTreeSolveIdentityProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%20) + 3
		g := graph.RandomConnected(n, 0, 5, seed) // a random weighted tree
		nw := NewNetwork(g, Options{Seed: seed})
		tr := graph.BFSTree(g, 0)
		// Mean-zero residual.
		r := make([]float64, n)
		for v := range r {
			r[v] = float64((v*7)%5) - 2
		}
		mean := 0.0
		for _, x := range r {
			mean += x
		}
		mean /= float64(n)
		for v := range r {
			r[v] -= mean
		}
		fsum := func(a, b Word) Word { return FloatWord(WordFloat(a) + WordFloat(b)) }
		_, sub, err := nw.ConvergecastAll([]*graph.Tree{tr},
			func(_ int, v graph.NodeID) Word { return FloatWord(r[v]) }, fsum)
		if err != nil {
			return false
		}
		y := make([]float64, n)
		err = nw.DownSweepMany([]*graph.Tree{tr}, []Word{FloatWord(0)},
			func(_ int, _, child graph.NodeID, parentVal Word) Word {
				w := float64(g.Edge(tr.ParentEdge[child]).Weight)
				return FloatWord(WordFloat(parentVal) + WordFloat(sub[0][child])/w)
			},
			func(_ int, v graph.NodeID, w Word) { y[v] = WordFloat(w) })
		if err != nil {
			return false
		}
		// Check L_T y == r.
		ly := make([]float64, n)
		for _, e := range g.Edges() {
			w := float64(e.Weight)
			d := y[e.U] - y[e.V]
			ly[e.U] += w * d
			ly[e.V] -= w * d
		}
		for v := range r {
			if math.Abs(ly[v]-r[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
