// Package experiments regenerates the paper-claim tables E1–E14 indexed in
// DESIGN.md §3: each experiment turns a figure, lemma or theorem of the
// paper into a measured series on the simulator. cmd/experiments prints the
// tables; the root bench_test.go wraps each one in a testing.B benchmark;
// cmd/bench records the suite's perf trajectory; EXPERIMENTS.md records
// expected-vs-measured shapes.
//
// Determinism obligations: every experiment is a list of independent sweep
// points, each owning its graph, network, derived seeds and trace
// collector (see parallel.go and DESIGN.md §7). Points may execute on a
// bounded worker pool (Config.Parallel), but tables and trace streams are
// assembled in canonical sweep order, so output is byte-identical at every
// pool width. Wall-clock timing is permitted in this package only for
// reporting (never for decisions that affect results).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"distlap/internal/simtrace"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Fprint renders the table as aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Config configures an experiment run.
type Config struct {
	// Quick shrinks the sweep for benchmarks and smoke tests.
	Quick bool
	// Trace receives the instrumentation of every network and solve the
	// experiment performs (nil = Nop). RunWith additionally wraps the whole
	// experiment in a span named after its ID, so per-experiment phase
	// breakdowns come out of one multi-experiment trace. Sweep points trace
	// into private recorders that are replayed into Trace in canonical
	// order, so the stream is independent of Parallel.
	Trace simtrace.Collector
	// Parallel bounds the worker pool the sweep points of each experiment
	// fan out across (0 = GOMAXPROCS). Any value produces byte-identical
	// tables and traces; it only changes wall time.
	Parallel int
}

// Runner executes one experiment.
type Runner func(cfg Config) (*Table, error)

// Registry maps experiment IDs to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"E1":  E1,
		"E2":  E2,
		"E3":  E3,
		"E4":  E4,
		"E5":  E5,
		"E6":  E6,
		"E7":  E7,
		"E8":  E8,
		"E9a": E9a,
		"E9b": E9b,
		"E10": E10,
		"E11": E11,
		"E12": E12,
		"E13": E13,
		"E14": E14,
	}
}

// IDs returns the experiment IDs in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(Registry()))
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		// E1 < E2 < ... < E9a < E9b < E10 < E11.
		ka, kb := sortKey(ids[a]), sortKey(ids[b])
		if ka != kb {
			return ka < kb
		}
		return ids[a] < ids[b]
	})
	return ids
}

func sortKey(id string) int {
	n := 0
	for _, r := range id[1:] {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// Run executes the experiment with the given ID (no trace).
func Run(id string, quick bool) (*Table, error) {
	return RunWith(id, Config{Quick: quick})
}

// RunWith executes the experiment with the given ID under a config,
// wrapping it in a trace span named after the ID. Both tiers resolve here:
// the E-series paper tables and the chaos tier C1–C2 (chaos.go).
func RunWith(id string, cfg Config) (*Table, error) {
	r, ok := lookupRunner(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
			id, knownIDs())
	}
	tr := simtrace.OrNop(cfg.Trace)
	tr.Begin(id)
	defer tr.End(id)
	return r(cfg)
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func ftoa(f float64) string { return fmt.Sprintf("%.2f", f) }
