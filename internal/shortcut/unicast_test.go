package shortcut

import (
	"errors"
	"testing"
	"testing/quick"

	"distlap/internal/congest"
	"distlap/internal/graph"
)

func newNet(g *graph.Graph) *congest.Network {
	return congest.NewNetwork(g, congest.Options{Seed: 1})
}

func TestMultipleUnicastSinglePair(t *testing.T) {
	g := graph.Path(6)
	nw := newNet(g)
	sol, err := SolveMultipleUnicast(nw, []UnicastPair{{Source: 0, Sink: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Dilation != 5 || sol.Congestion != 1 {
		t.Fatalf("d=%d c=%d", sol.Dilation, sol.Congestion)
	}
	if sol.Makespan != 5 {
		t.Fatalf("makespan=%d", sol.Makespan)
	}
	if sol.Quality() != 5 {
		t.Fatalf("quality=%d", sol.Quality())
	}
}

func TestMultipleUnicastCongestion(t *testing.T) {
	// k pairs all crossing the single bridge of a barbell.
	g := graph.Barbell(4, 0) // cliques {0..3}, {4..7}, bridge edge 3-4
	nw := newNet(g)
	var pairs []UnicastPair
	for i := 0; i < 4; i++ {
		pairs = append(pairs, UnicastPair{Source: i, Sink: 4 + i})
	}
	sol, err := SolveMultipleUnicast(nw, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Congestion != 4 {
		t.Fatalf("congestion=%d, want 4 (all cross the bridge)", sol.Congestion)
	}
	if sol.Makespan < 4 {
		t.Fatalf("makespan=%d < congestion", sol.Makespan)
	}
}

func TestMultipleUnicastDisconnected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	nw := newNet(g)
	if _, err := SolveMultipleUnicast(nw, []UnicastPair{{Source: 0, Sink: 3}}); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err=%v", err)
	}
}

func TestMultipleUnicastSameNodePair(t *testing.T) {
	g := graph.Path(3)
	nw := newNet(g)
	sol, err := SolveMultipleUnicast(nw, []UnicastPair{{Source: 1, Sink: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Dilation != 0 || sol.Makespan != 0 {
		t.Fatalf("self pair: %+v", sol)
	}
}

func TestAnyToAnyCastMatchesNearest(t *testing.T) {
	g := graph.Path(10)
	nw := newNet(g)
	sources := []graph.NodeID{0, 9}
	sinks := []graph.NodeID{8, 1}
	sol, match, err := SolveAnyToAnyCast(nw, sources, sinks)
	if err != nil {
		t.Fatal(err)
	}
	// Source 0 should take sink 1 (index 1), source 9 sink 8 (index 0).
	if match[0] != 1 || match[1] != 0 {
		t.Fatalf("match=%v", match)
	}
	if sol.Dilation != 1 {
		t.Fatalf("dilation=%d, want 1", sol.Dilation)
	}
}

func TestAnyToAnyCastMismatchedSizes(t *testing.T) {
	nw := newNet(graph.Path(4))
	if _, _, err := SolveAnyToAnyCast(nw, []graph.NodeID{0}, nil); err == nil {
		t.Fatal("want size error")
	}
}

func TestWitnessDecomposition(t *testing.T) {
	g := graph.Grid(4, 4)
	// Two row paths and two column paths: congestion 2 at crossings.
	w := &WitnessFamily{Paths: [][]graph.NodeID{
		{0, 1, 2, 3},
		{12, 13, 14, 15},
		{0, 4, 8, 12},
		{3, 7, 11, 15},
	}}
	if p := w.NodeCongestion(); p != 2 {
		t.Fatalf("congestion=%d", p)
	}
	classes := w.DecomposeDisjoint()
	if err := w.Validate(g, classes); err != nil {
		t.Fatal(err)
	}
	if len(classes) < 2 || len(classes) > 3 {
		t.Fatalf("classes=%d", len(classes))
	}
}

func TestWitnessValidateCatchesBadPath(t *testing.T) {
	g := graph.Path(4)
	w := &WitnessFamily{Paths: [][]graph.NodeID{{0, 2}}}
	if err := w.Validate(g, nil); err == nil {
		t.Fatal("want non-edge error")
	}
	w2 := &WitnessFamily{Paths: [][]graph.NodeID{{0, 1}, {1, 2}}}
	if err := w2.Validate(g, [][]int{{0, 1}}); err == nil {
		t.Fatal("want shared-node error")
	}
}

// Property: the makespan of a multiple-unicast schedule is at least
// max(dilation, congestion) and the decomposition classes are always
// node-disjoint.
func TestUnicastProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(20, 15, 1, seed)
		nw := congest.NewNetwork(g, congest.Options{Seed: seed})
		pairs := []UnicastPair{
			{Source: 0, Sink: 10}, {Source: 1, Sink: 11},
			{Source: 2, Sink: 12}, {Source: 3, Sink: 13},
		}
		sol, err := SolveMultipleUnicast(nw, pairs)
		if err != nil {
			return false
		}
		lower := sol.Dilation
		if sol.Congestion > lower {
			lower = sol.Congestion
		}
		if sol.Makespan < lower {
			return false
		}
		w := &WitnessFamily{}
		for i, path := range sol.Paths {
			nodes := []graph.NodeID{pairs[i].Source}
			v := pairs[i].Source
			for _, id := range path {
				v = g.Other(id, v)
				nodes = append(nodes, v)
			}
			w.Paths = append(w.Paths, nodes)
		}
		classes := w.DecomposeDisjoint()
		return w.Validate(g, classes) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
