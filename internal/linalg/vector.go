// Package linalg provides the numerical substrate of the Laplacian solvers:
// dense vector operations, graph Laplacian operators, an exact (direct)
// solver used as ground truth, and sequential iterative solvers (CG,
// preconditioned CG, Chebyshev) that the distributed solver in
// internal/core mirrors operation by operation.
//
// Determinism obligations: all iterations and reductions run in fixed
// index order with no parallelism, so floating-point results are
// bit-reproducible; convergence tests use tolerances, never float
// equality (enforced by the floateq analyzer); RandomBVector derives its
// stream via seedderive from the caller's explicit seed.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the numerical routines.
var (
	ErrDimension    = errors.New("linalg: dimension mismatch")
	ErrNotInRange   = errors.New("linalg: right-hand side not in the Laplacian's range (sum != 0)")
	ErrSingular     = errors.New("linalg: singular system")
	ErrNoConverge   = errors.New("linalg: iteration did not converge")
	ErrDisconnected = errors.New("linalg: graph must be connected")
)

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy returns a fresh copy of x.
func Copy(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Sub returns a - b in a fresh vector.
func Sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	SubInto(out, a, b)
	return out
}

// SubInto computes dst = a - b into the caller's buffer (dst may alias a
// or b), the allocation-free form iterative loops use on their pooled
// scratch vectors. All three slices must share a length.
func SubInto(dst, a, b []float64) {
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// MulInto computes the elementwise product dst = a ∘ b into the caller's
// buffer (dst may alias a or b). Used to build the squared/product vectors
// global reductions consume without per-iteration allocation.
func MulInto(dst, a, b []float64) {
	for i := range a {
		dst[i] = a[i] * b[i]
	}
}

// Mean returns the arithmetic mean of x (0 for empty).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// CenterMean subtracts the mean from every entry, projecting x onto the
// space orthogonal to the all-ones vector (the Laplacian's range).
func CenterMean(x []float64) {
	m := Mean(x)
	for i := range x {
		x[i] -= m
	}
}

// CheckSameLen verifies vectors share a length.
func CheckSameLen(vs ...[]float64) error {
	for i := 1; i < len(vs); i++ {
		if len(vs[i]) != len(vs[0]) {
			return fmt.Errorf("%w: %d vs %d", ErrDimension, len(vs[i]), len(vs[0]))
		}
	}
	return nil
}
