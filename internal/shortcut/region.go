package shortcut

import (
	"fmt"

	"distlap/internal/graph"
)

// RegionBuilder is a multi-scale construction in the spirit of the
// minor-free shortcut constructions behind Theorem 10: the graph is
// recursively split by balanced BFS-layer separators into a region
// hierarchy of depth O(log n); each part is assigned to the smallest
// region that fully contains it, and its shortcut H_i is the Steiner
// subtree of the part in that region's own BFS tree. Small parts therefore
// get small-region trees (dilation ~ region diameter instead of graph
// diameter), and parts in disjoint regions never share shortcut edges —
// the measured congestion/dilation certificates quantify the gain.
type RegionBuilder struct {
	// MinRegion stops the recursion below this many nodes (default 8).
	MinRegion int
}

var _ Builder = RegionBuilder{}

// NewRegionBuilder returns a RegionBuilder with defaults.
func NewRegionBuilder() RegionBuilder { return RegionBuilder{MinRegion: 8} }

// Name implements Builder.
func (RegionBuilder) Name() string { return "region" }

// region is one node of the hierarchy.
type region struct {
	nodes  []graph.NodeID
	parent int // index into the regions slice; -1 for the root
	depth  int
	tree   *graph.Tree // BFS tree of the region's induced subgraph (lazy)
}

// Build implements Builder.
func (b RegionBuilder) Build(g *graph.Graph, parts [][]graph.NodeID) (*Shortcut, error) {
	if err := ValidateParts(g, parts); err != nil {
		return nil, err
	}
	minRegion := b.MinRegion
	if minRegion < 2 {
		minRegion = 8
	}
	regions, leafOf, err := buildRegionHierarchy(g, minRegion)
	if err != nil {
		return nil, err
	}
	// ancestry[r] = set of region indices on r's root path, for LCA-style
	// smallest-containing-region queries.
	depthOf := func(r int) int { return regions[r].depth }
	ancestorAt := func(r, d int) int {
		for regions[r].depth > d {
			r = regions[r].parent
		}
		return r
	}
	smallestCommon := func(nodes []graph.NodeID) int {
		r := leafOf[nodes[0]]
		for _, v := range nodes[1:] {
			o := leafOf[v]
			// Lift both to equal depth, then climb together.
			if depthOf(o) > depthOf(r) {
				o = ancestorAt(o, depthOf(r))
			} else if depthOf(r) > depthOf(o) {
				r = ancestorAt(r, depthOf(o))
			}
			for r != o {
				r = regions[r].parent
				o = regions[o].parent
			}
		}
		return r
	}

	s := &Shortcut{
		Parts:   parts,
		Extra:   make([][]graph.EdgeID, len(parts)),
		Builder: "region",
	}
	for i, p := range parts {
		ri := smallestCommon(p)
		reg := &regions[ri]
		if reg.tree == nil {
			reg.tree = graph.BFSTreeOfSubgraph(g, reg.nodes, nil, graph.ApproxCenterOf(g, reg.nodes))
			if len(reg.tree.Members) != len(reg.nodes) {
				return nil, fmt.Errorf("shortcut: region %d disconnected", ri)
			}
		}
		s.Extra[i] = steinerSubtreeEdges(reg.tree, p)
	}
	if err := Verify(g, s); err != nil {
		return nil, err
	}
	return s, nil
}

// buildRegionHierarchy recursively splits g by middle BFS layers. Every
// region is connected; children partition the region minus its separator,
// with separator nodes folded into the largest child to keep the regions a
// laminar family covering all nodes. Returns the regions and each node's
// deepest (leaf) region.
func buildRegionHierarchy(g *graph.Graph, minRegion int) ([]region, []int, error) {
	n := g.N()
	all := make([]graph.NodeID, n)
	for i := range all {
		all[i] = i
	}
	var regions []region
	leafOf := make([]int, n)
	type task struct {
		nodes  []graph.NodeID
		parent int
		depth  int
	}
	stack := []task{{nodes: all, parent: -1, depth: 0}}
	for len(stack) > 0 {
		tk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		idx := len(regions)
		regions = append(regions, region{nodes: tk.nodes, parent: tk.parent, depth: tk.depth})
		for _, v := range tk.nodes {
			leafOf[v] = idx
		}
		if len(tk.nodes) <= minRegion || tk.depth > 40 {
			continue
		}
		children := splitByMiddleLayer(g, tk.nodes)
		if len(children) <= 1 {
			continue
		}
		for _, ch := range children {
			stack = append(stack, task{nodes: ch, parent: idx, depth: tk.depth + 1})
		}
	}
	return regions, leafOf, nil
}

// splitByMiddleLayer removes the middle BFS layer of the induced subgraph
// and returns the resulting components with the separator folded into the
// largest one. Returns nil when no balanced split exists.
func splitByMiddleLayer(g *graph.Graph, nodes []graph.NodeID) [][]graph.NodeID {
	root := graph.ApproxCenterOf(g, nodes)
	tr := graph.BFSTreeOfSubgraph(g, nodes, nil, root)
	if len(tr.Members) != len(nodes) {
		return nil
	}
	h := tr.Height()
	if h < 2 {
		return nil
	}
	sepDepth := h / 2
	if sepDepth == 0 {
		sepDepth = 1
	}
	sep := make(map[graph.NodeID]bool)
	var rest []graph.NodeID
	for _, v := range tr.Members {
		if tr.Depth[v] == sepDepth {
			sep[v] = true
		} else {
			rest = append(rest, v)
		}
	}
	if len(rest) == 0 {
		return nil
	}
	// Components of the region minus the separator.
	sub, orig := g.Subgraph(rest)
	comps := graph.Components(sub)
	if len(comps) < 2 {
		return nil
	}
	out := make([][]graph.NodeID, len(comps))
	largest := 0
	for i, comp := range comps {
		for _, lv := range comp {
			out[i] = append(out[i], orig[lv])
		}
		if len(out[i]) > len(out[largest]) {
			largest = i
		}
	}
	// Fold the separator into the largest component it touches, falling
	// back to any adjacent child (membership maps keep this linear).
	childOf := make(map[graph.NodeID]int)
	for i, ch := range out {
		for _, v := range ch {
			childOf[v] = i
		}
	}
	// Separator nodes may neighbor each other; process until stable.
	pending := make([]graph.NodeID, 0, len(sep))
	for v := range sep {
		pending = append(pending, v)
	}
	sortNodeIDs(pending)
	for len(pending) > 0 {
		progress := false
		next := pending[:0]
		for _, v := range pending {
			target := -1
			for _, h := range g.Neighbors(v) {
				if c, ok := childOf[h.To]; ok {
					if c == largest {
						target = largest
						break
					}
					if target == -1 {
						target = c
					}
				}
			}
			if target == -1 {
				next = append(next, v)
				continue
			}
			out[target] = append(out[target], v)
			childOf[v] = target
			progress = true
		}
		if !progress {
			// Isolated separator remnants (cannot happen in a connected
			// region, but stay safe): give them to the largest child.
			for _, v := range next {
				out[largest] = append(out[largest], v)
				childOf[v] = largest
			}
			break
		}
		pending = append([]graph.NodeID(nil), next...)
	}
	// Children must stay connected; drop the split if folding broke one.
	for _, ch := range out {
		if !graph.InducedConnected(g, ch) {
			return nil
		}
	}
	return out
}
