// Package seededrand is a distlint fixture: global-source and wall-clock
// randomness violations alongside properly seeded construction.
package seededrand

import (
	"math/rand"
	"time"
)

// GlobalDraw uses the process-global source: flagged.
func GlobalDraw() int {
	return rand.Intn(10) // violation: package-level rand
}

// ShuffleGlobal also draws from the global source: flagged.
func ShuffleGlobal(a []int) {
	rand.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
}

// WallClockSeed seeds an RNG from the wall clock: flagged once.
func WallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// Seeded constructs an RNG from an explicit seed: not flagged.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Clock calls time.Now in a simulator (internal) package: flagged.
func Clock() time.Time {
	return time.Now()
}
