// Package congest implements a deterministic simulator for the synchronous
// CONGEST model of distributed computing (paper §2): in every round, each
// node may exchange one O(log n)-bit message with each of its neighbors.
//
// The simulator is the measurement instrument for every experiment in this
// repository: algorithms are expressed in terms of a small set of
// communication primitives (per-round neighbor exchange, store-and-forward
// packet routing along explicit paths, and concurrent convergecast/broadcast
// over collections of trees). Each primitive physically moves data and
// charges the exact number of synchronous rounds the data movement takes
// under the one-message-per-edge-direction-per-round bandwidth constraint,
// so round counts are measured rather than estimated.
//
// Supported-CONGEST (the known-topology model, [46] in the paper) is the
// same engine with the Supported flag set: algorithms may then precompute
// topology-dependent structures (e.g. shortcuts) at zero round cost, exactly
// as the model permits.
//
// Determinism obligations: an execution is a pure function of
// (graph, Options.Seed) — scheduling randomness comes only from the
// network's own rand chain, Metrics fields are written only by this
// package's charging primitives (enforced by the metricsintegrity
// analyzer), and a Network with its engines is confined to a single
// goroutine for its whole lifetime (DESIGN.md §7).
package congest

import (
	"errors"
	"math/rand"
	"sort"

	"distlap/internal/faultinject"
	"distlap/internal/graph"
	"distlap/internal/simtrace"
)

// Word is the payload of a single CONGEST message: an O(log n)-bit value.
// Algorithms that need richer payloads serialize them into words and pay
// one round per word per edge.
type Word = int64

// Metrics accumulates the communication cost of everything executed on a
// Network since its creation (or the last Reset).
type Metrics struct {
	Rounds      int   // synchronous rounds elapsed
	Messages    int64 // total word-messages delivered
	MaxEdgeLoad int   // max words carried by any single directed edge
}

// Options configure a Network.
type Options struct {
	// Supported marks the network as Supported-CONGEST: the topology is
	// common knowledge and algorithms may precompute structures from it
	// for free. The flag does not change the engine's behaviour; higher
	// layers consult it when deciding what to charge rounds for.
	Supported bool

	// Seed drives all randomized scheduling decisions (random delays).
	Seed int64

	// DisableRandomDelays turns off the random initial delays used by the
	// tree-aggregation scheduler (the Ghaffari'15-style scheduling
	// ablation; see DESIGN.md §4).
	DisableRandomDelays bool

	// Trace receives instrumentation events (nil selects simtrace.Nop).
	// The collector observes charging; it never influences scheduling, the
	// RNG, or the metrics themselves.
	Trace simtrace.Collector

	// TraceEngine overrides the engine label under which this network's
	// charges are recorded ("" selects simtrace.EngineCongest). Layered
	// sub-networks (Lemma 16 simulations) pass simtrace.EngineLayered so
	// their internally-simulated rounds are distinguishable from rounds
	// charged on the base network.
	TraceEngine string

	// Cancel, when non-nil, is polled at every round barrier (the start of
	// each Exchange round and each tree-scheduler step). A non-nil return
	// aborts the primitive by panicking with a cancellation sentinel that
	// CatchCancel converts back into the error at the request boundary.
	// Long-lived services thread context.Context.Err here so a caller
	// deadline or disconnect stops a multi-round solve between rounds
	// instead of after it. Cancellation never perturbs determinism: a run
	// either completes with the exact metrics the seed dictates or returns
	// the cancellation error with its partial state discarded.
	Cancel func() error

	// Faults, when non-nil, injects deterministic message- and node-level
	// faults at the engine's round barriers: drops, duplications, delays,
	// crash-stop nodes and flaky links, per internal/faultinject. Every
	// decision is a pure function of (plan seed, round, edge/node), so a
	// faulty run is exactly as replayable as a reliable one. nil keeps the
	// reliable fast path with zero overhead (DESIGN.md §9).
	Faults *faultinject.Plan

	// Topology, when non-nil, supplies a prebuilt CSR view of the graph —
	// the per-instance flat topology a prepared core.Instance shares across
	// its requests so each request-private network skips the Θ(n+m)
	// flattening. It must describe exactly the same graph; nil makes the
	// network build its own.
	Topology *graph.CSR
}

// Network is a CONGEST communication network over a fixed graph.
// It is not safe for concurrent use.
//
// A network owns a set of pooled scratch buffers (deliveries, scheduler
// queues, sweep state — see scratch.go) that its primitives reuse across
// calls, which is what makes steady-state rounds allocation-free. The
// pools are request-private by construction: every request runs on its own
// Network (DESIGN.md §7/§8), so pooling never shares mutable state across
// goroutines.
type Network struct {
	g       *graph.Graph
	csr     *graph.CSR // flat topology: charge accounting, edge lookups
	opts    Options
	rng     *rand.Rand
	metrics Metrics
	load    []int64 // per directed edge: total words carried
	trace   simtrace.Collector
	quiet   bool   // collector is simtrace.Nop: skip per-event trace emission
	engine  string // simtrace engine label for this network's charges

	// Fault-injection state (all zero/nil on reliable networks).
	faults      *faultinject.Plan
	fstats      FaultStats
	stash       []stashedDelivery // Exchange messages in delayed flight
	crashedSeen map[graph.NodeID]bool

	// Pooled scratch reused by the engine primitives (scratch.go). All of
	// it is dead state between calls; none of it influences scheduling,
	// charging, or the RNG.
	scr scratch
}

// ErrNoTrees is returned by tree primitives invoked with no work.
var ErrNoTrees = errors.New("congest: no trees given")

// canceled is the panic sentinel that carries an Options.Cancel error out of
// an engine primitive. Engine primitives charge rounds through void methods
// (Exchange, the tree scheduler), so cancellation cannot flow back as a
// return value without changing every signature; instead the barrier check
// panics with this sentinel and CatchCancel rematerializes the error at the
// request boundary. The type is unexported so no caller can forge or
// swallow one accidentally.
type canceled struct{ err error }

// checkCancel polls Options.Cancel (when set) and aborts the current
// primitive on a non-nil error. It is called at round barriers only, so a
// cancelled execution stops on a round boundary with no partially-charged
// round.
func (nw *Network) checkCancel() {
	if nw.opts.Cancel == nil {
		return
	}
	if err := nw.opts.Cancel(); err != nil {
		panic(canceled{err})
	}
}

// CatchCancel recovers a cancellation abort raised by a network's Cancel
// hook into *errp, re-panicking on every other panic value. Use it as a
// deferred statement at the boundary that owns the request:
//
//	func (in *Instance) Solve(...) (res *Result, err error) {
//		defer congest.CatchCancel(&err)
//		...
//	}
func CatchCancel(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if c, ok := r.(canceled); ok {
		*errp = c.err
		return
	}
	panic(r)
}

// NewNetwork returns a network over g with the given options.
func NewNetwork(g *graph.Graph, opts Options) *Network {
	engine := opts.TraceEngine
	if engine == "" {
		engine = simtrace.EngineCongest
	}
	csr := opts.Topology
	if csr == nil {
		csr = graph.BuildCSR(g)
	}
	tr := simtrace.OrNop(opts.Trace)
	_, quiet := tr.(simtrace.Nop)
	return &Network{
		g:      g,
		csr:    csr,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		load:   make([]int64, 2*g.M()),
		trace:  tr,
		quiet:  quiet,
		engine: engine,
		faults: opts.Faults,
	}
}

// Topology returns the network's flat CSR view of the graph (read-only,
// shared; see graph.CSR).
func (nw *Network) Topology() *graph.CSR { return nw.csr }

// Graph returns the underlying communication graph.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Supported reports whether the network is in Supported-CONGEST mode.
func (nw *Network) Supported() bool { return nw.opts.Supported }

// Metrics returns the communication cost accumulated so far.
func (nw *Network) Metrics() Metrics { return nw.metrics }

// Rounds returns the number of rounds elapsed so far.
func (nw *Network) Rounds() int { return nw.metrics.Rounds }

// Trace returns the network's trace collector (never nil). Algorithm layers
// use it to open phase spans around the primitives they invoke.
func (nw *Network) Trace() simtrace.Collector { return nw.trace }

// Reset zeroes the accumulated metrics (the topology is unchanged).
func (nw *Network) Reset() {
	nw.metrics = Metrics{}
	for i := range nw.load {
		nw.load[i] = 0
	}
}

// ChargeRounds adds r idle rounds (used for purely local computation phases
// that the model still charges, e.g. simulation overheads; see Lemma 16).
func (nw *Network) ChargeRounds(r int) {
	if r > 0 {
		nw.metrics.Rounds += r
		nw.trace.Rounds(nw.engine, r)
	}
}

// chargeRound records one elapsed round. On untraced networks this is a
// bare counter increment — the "no charge recorded" fast path that makes
// simulation bookkeeping free when nobody is listening.
func (nw *Network) chargeRound() {
	nw.metrics.Rounds++
	if !nw.quiet {
		nw.trace.Rounds(nw.engine, 1)
	}
}

// dirEdge encodes a directed use of an undirected edge: 2*edge for U->V and
// 2*edge+1 for V->U.
func (nw *Network) dirEdge(id graph.EdgeID, from graph.NodeID) int {
	if int(nw.csr.EdgeU[id]) == from {
		return 2 * id
	}
	return 2*id + 1
}

// chargeEdge records one word crossing a directed edge, attributing it to
// the edge (Messages) and to both endpoint nodes (NodeWords). The endpoints
// are recovered from the directed-edge encoding: de/2 is the edge id and the
// parity selects the direction (even = U->V). Metrics accounting is three
// flat-array operations; the per-message trace emission behind it is
// skipped entirely on untraced networks (traced runs keep the exact
// historical emission order).
func (nw *Network) chargeEdge(de int) {
	nw.metrics.Messages++
	nw.load[de]++
	if l := int(nw.load[de]); l > nw.metrics.MaxEdgeLoad {
		nw.metrics.MaxEdgeLoad = l
	}
	if nw.quiet {
		return
	}
	nw.trace.Messages(nw.engine, de, 1)
	id := de / 2
	from, to := graph.NodeID(nw.csr.EdgeU[id]), graph.NodeID(nw.csr.EdgeV[id])
	if de%2 == 1 {
		from, to = to, from
	}
	nw.trace.NodeWords(nw.engine, from, to, 1)
}

// delivery is one word arriving at its destination at the end of an
// Exchange round.
type delivery struct {
	to   graph.NodeID
	half graph.Half // the receiving side's half-edge
	w    Word
}

// Exchange executes one synchronous round in which every node may send one
// word along each incident half-edge. send is queried once per (node,
// half-edge); returning ok=false sends nothing on that half-edge. recv is
// then invoked for every delivered word at its destination. Costs exactly
// one round.
//
// Under a fault plan (Options.Faults) individual sends may be dropped,
// duplicated or delayed and crash-stopped nodes fall silent; see
// exchangeFaulty. Without one this is the reliable fast path, bit-for-bit
// the pre-fault-injection engine.
//
// Θ(n + m) work per round; deterministic — handlers run in ascending
// (node, half-edge) order, deliveries in send order. The delivery buffer
// is pooled: after the first round, a reliable Exchange allocates nothing
// (pinned at zero by TestExchangeSteadyStateAllocs).
func (nw *Network) Exchange(
	send func(v graph.NodeID, h graph.Half) (Word, bool),
	recv func(v graph.NodeID, h graph.Half, w Word),
) {
	if nw.faults != nil {
		nw.exchangeFaulty(send, recv)
		return
	}
	nw.checkCancel()
	// Borrow the pooled delivery buffer; parking nil in its place keeps a
	// reentrant Exchange from a handler (none exist today) from clobbering
	// the batch mid-flight.
	deliveries := nw.scr.deliveries[:0]
	nw.scr.deliveries = nil
	for v := 0; v < nw.g.N(); v++ {
		for _, h := range nw.g.Neighbors(v) {
			w, ok := send(v, h)
			if !ok {
				continue
			}
			nw.chargeEdge(nw.dirEdge(h.Edge, v))
			deliveries = append(deliveries, delivery{
				to:   h.To,
				half: graph.Half{To: v, Edge: h.Edge},
				w:    w,
			})
		}
	}
	nw.chargeRound()
	for _, d := range deliveries {
		recv(d.to, d.half, d.w)
	}
	nw.scr.deliveries = deliveries
}

// ExchangeK runs k consecutive Exchange rounds with the same handlers.
func (nw *Network) ExchangeK(k int,
	send func(round int, v graph.NodeID, h graph.Half) (Word, bool),
	recv func(round int, v graph.NodeID, h graph.Half, w Word),
) {
	for r := 0; r < k; r++ {
		rr := r
		nw.Exchange(
			func(v graph.NodeID, h graph.Half) (Word, bool) { return send(rr, v, h) },
			func(v graph.NodeID, h graph.Half, w Word) { recv(rr, v, h, w) },
		)
	}
}

// BFS computes hop distances from root with an actual distributed flooding
// execution (each node learns its distance in the round it is reached);
// it charges ecc(root)+1 rounds. The returned structure matches graph.BFS.
// This grounds the cost model: distributed BFS costs O(D) rounds.
func (nw *Network) BFS(root graph.NodeID) *graph.BFSResult {
	nw.trace.Begin("bfs")
	defer nw.trace.End("bfs")
	n := nw.g.N()
	res := &graph.BFSResult{
		Root:       root,
		Dist:       make([]int, n),
		Parent:     make([]graph.NodeID, n),
		ParentEdge: make([]graph.EdgeID, n),
	}
	for i := 0; i < n; i++ {
		res.Dist[i] = -1
		res.Parent[i] = -1
		res.ParentEdge[i] = -1
	}
	res.Dist[root] = 0
	res.Order = append(res.Order, root)
	// Flat frontier: a membership bitmap plus the node list of the current
	// wave (the only nodes whose bits need clearing between rounds).
	frontier := make([]bool, n)
	frontier[root] = true
	wave := []graph.NodeID{root}
	for len(wave) > 0 {
		var reached []graph.NodeID
		nw.Exchange(
			func(v graph.NodeID, h graph.Half) (Word, bool) {
				if frontier[v] {
					return Word(res.Dist[v]), true
				}
				return 0, false
			},
			func(v graph.NodeID, h graph.Half, w Word) {
				if res.Dist[v] == -1 {
					res.Dist[v] = int(w) + 1
					res.Parent[v] = h.To
					res.ParentEdge[v] = h.Edge
					reached = append(reached, v)
				}
			},
		)
		// Deterministic order: reached was appended in node-scan order of
		// the sending side; sort by node ID for stability.
		sortNodeIDs(reached)
		res.Order = append(res.Order, reached...)
		for _, v := range wave {
			frontier[v] = false
		}
		for _, v := range reached {
			frontier[v] = true
		}
		wave = reached
	}
	return res
}

func sortNodeIDs(a []graph.NodeID) { sort.Ints(a) }
