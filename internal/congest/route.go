package congest

import (
	"fmt"

	"distlap/internal/graph"
)

// Packet is one token to route along an explicit edge path starting at
// Start. Each hop consumes one unit of the traversed edge's per-round
// bandwidth in the traversal direction.
type Packet struct {
	Start   graph.NodeID
	Edges   []graph.EdgeID
	Payload Word
}

// Dest returns the packet's final node.
func (p Packet) Dest(g *graph.Graph) graph.NodeID {
	v := p.Start
	for _, id := range p.Edges {
		v = g.Other(id, v)
	}
	return v
}

// RouteMany routes all packets simultaneously with store-and-forward
// queueing (one packet per directed edge per round, FIFO with random initial
// delays) and returns the per-packet arrival rounds, measured relative to
// the start of the call. This is the multiple-unicast executor used to
// certify shortcut quality (paper §3.1.3, "Multiple-Unicast Problem"): the
// measured makespan is a valid completion time for the instance.
func (nw *Network) RouteMany(pkts []Packet) ([]int, error) {
	// Validate paths and compute congestion (max packets over a directed
	// edge) for the random-delay draw.
	use := make(map[int]int)
	c := 1
	for i, p := range pkts {
		v := p.Start
		for _, id := range p.Edges {
			e := nw.g.Edge(id)
			if e.U != v && e.V != v {
				return nil, fmt.Errorf("congest: packet %d: edge %d not incident to %d", i, id, v)
			}
			de := nw.dirEdge(id, v)
			use[de]++
			if use[de] > c {
				c = use[de]
			}
			v = nw.g.Other(id, v)
		}
	}
	delays := nw.randomDelays(len(pkts), c)

	type pkState struct {
		at   graph.NodeID
		next int // index into Edges
	}
	states := make([]pkState, len(pkts))
	arrival := make([]int, len(pkts))
	sched := newTreeSched(nw)
	remaining := 0
	for i, p := range pkts {
		states[i] = pkState{at: p.Start}
		if len(p.Edges) == 0 {
			arrival[i] = 0
			continue
		}
		remaining++
		sched.push(nw.dirEdge(p.Edges[0], p.Start), pendingSend{
			tree: i, from: p.Start, to: nw.g.Other(p.Edges[0], p.Start),
			w: p.Payload, eligible: 1 + delays[i],
		})
	}
	deliver := func(ps pendingSend) {
		i := ps.tree
		st := &states[i]
		st.at = ps.to
		st.next++
		if st.next == len(pkts[i].Edges) {
			arrival[i] = sched.round
			remaining--
			return
		}
		id := pkts[i].Edges[st.next]
		sched.push(nw.dirEdge(id, st.at), pendingSend{
			tree: i, from: st.at, to: nw.g.Other(id, st.at),
			w: ps.w, eligible: sched.round + 1,
		})
	}
	for sched.step(deliver) {
	}
	if remaining != 0 {
		return nil, fmt.Errorf("congest: %d packets undelivered", remaining)
	}
	return arrival, nil
}
