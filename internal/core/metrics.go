package core

import (
	"distlap/internal/congest"
	"distlap/internal/ncc"
	"distlap/internal/simtrace"
)

// EngineMetrics is one engine's accumulated communication cost. It mirrors
// congest.Metrics but belongs to the result layer, so results can carry
// snapshots without granting anyone write access to engine state.
type EngineMetrics struct {
	Rounds      int   // synchronous rounds elapsed
	Messages    int64 // word-messages delivered
	MaxEdgeLoad int   // max words over any directed edge (0 where inapplicable)
}

// Metrics is the shared result-metrics shape of the facade: the per-engine
// communication totals of a run, plus — when a queryable trace collector was
// attached — the per-phase breakdown. It replaces the bare-int round counts
// earlier result types exposed.
type Metrics struct {
	// Congest is the CONGEST engine's accumulated cost (always present).
	Congest EngineMetrics
	// NCC is the node-capacitated-clique engine's cost; nil outside
	// hybrid-mode runs.
	NCC *EngineMetrics
	// Phases is the exclusive per-phase attribution of every round and
	// message, sorted by phase path; nil unless the run was traced with a
	// collector implementing simtrace.PhaseQuerier.
	Phases []simtrace.PhaseStat

	// Attempts is the number of solve attempts the self-checking recovery
	// loop executed (0 for runs without fault injection; 1 means the first
	// attempt verified). See DESIGN.md §9.
	Attempts int
	// FaultsObserved counts the fault events the request's engines injected
	// across all attempts (drops, duplications, delays, crash losses,
	// crashed nodes).
	FaultsObserved int64
	// Degraded reports that full-tolerance retries exhausted and the
	// returned result met only a degraded target — a coarser tolerance or
	// the baseline-fallback solver. The result's Residual field carries the
	// locally verified true residual either way.
	Degraded bool
}

// TotalRounds returns the rounds summed across engines — the comparable
// round complexity of the run (matches Comm.Rounds at snapshot time).
func (m Metrics) TotalRounds() int {
	total := m.Congest.Rounds
	if m.NCC != nil {
		total += m.NCC.Rounds
	}
	return total
}

// CongestEngineMetrics snapshots a CONGEST network's metrics.
func CongestEngineMetrics(nw *congest.Network) EngineMetrics {
	em := nw.Metrics()
	return EngineMetrics{Rounds: em.Rounds, Messages: em.Messages, MaxEdgeLoad: em.MaxEdgeLoad}
}

// NCCEngineMetrics snapshots an NCC network's metrics (the clique has no
// per-edge identity, so MaxEdgeLoad is 0).
func NCCEngineMetrics(nw *ncc.Network) EngineMetrics {
	return EngineMetrics{Rounds: nw.Rounds(), Messages: nw.Messages()}
}

// PhasesOf extracts the per-phase breakdown from a collector if it is
// queryable (InMemory, JSONL), nil otherwise (Nop, foreign sinks).
func PhasesOf(tr simtrace.Collector) []simtrace.PhaseStat {
	if q, ok := tr.(simtrace.PhaseQuerier); ok {
		return q.Phases()
	}
	return nil
}
