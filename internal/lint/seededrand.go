package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeededRand returns the seededrand analyzer. Every randomized decision in
// the simulator must be replayable from an explicit Seed option, so the
// analyzer bans, in all non-test packages:
//
//   - math/rand (and math/rand/v2) package-level RNG functions, which draw
//     from a shared global source (rand.Intn, rand.Shuffle, rand.Seed, ...);
//   - seeding an RNG from the wall clock (time.Now inside the arguments of
//     rand.New / rand.NewSource / rand.NewPCG / rand.NewChaCha8).
//
// seededrand polices where entropy enters; its companion seedderive (see
// SeedDerive) polices how one seed becomes many, and walltime (see
// WallTime) bans every other clock read in simulator packages. Together
// they implement the DESIGN.md §7 concurrency & determinism contract:
// every RNG stream is a pure function of the explicit base seed and the
// point's position in the sweep, never of wall clock or execution order.
func SeededRand() *Analyzer {
	return &Analyzer{
		Name:     "seededrand",
		Severity: SevError,
		Doc: "bans global math/rand functions and wall-clock-derived RNG " +
			"seeds in all non-test packages",
		Run: runSeededRand,
	}
}

// globalRandFuncs are the math/rand (v1 and v2) package-level functions
// backed by the process-global source. Constructors (New, NewSource, NewZipf,
// NewPCG, NewChaCha8) stay allowed: they take an explicit seed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true, "Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true,
}

// randConstructors are the explicit-seed constructors whose argument trees
// must not contain wall-clock calls.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func runSeededRand(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		// Nested constructors (rand.New(rand.NewSource(...))) both see the
		// same clock call; report it once.
		seedClocks := make(map[ast.Node]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn := pkgFuncOf(p, call)
			switch pkgPath {
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn] {
					out = append(out, diag(p, call, "seededrand",
						"%s.%s draws from the process-global source and is not replayable; construct an explicit *rand.Rand from the Seed option", pkgBase(pkgPath), fn))
					return true
				}
				if randConstructors[fn] {
					if clock := findClockCall(p, call); clock != nil && !seedClocks[clock] {
						seedClocks[clock] = true
						out = append(out, diag(p, clock, "seededrand",
							"RNG seeded from the wall clock is not replayable; thread an explicit Seed option instead"))
					}
				}
			}
			return true
		})
	}
	return out
}

// pkgFuncOf resolves call's function to (package import path, function name)
// when it is a direct pkg.Func selector call; otherwise returns ("", "").
func pkgFuncOf(p *Package, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// findClockCall returns the first time.Now call in call's argument trees.
func findClockCall(p *Package, call *ast.CallExpr) ast.Node {
	var found ast.Node
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, fn := pkgFuncOf(p, inner); path == "time" && fn == "Now" {
				found = inner
				return false
			}
			return true
		})
	}
	return found
}

func pkgBase(path string) string {
	if path == "math/rand/v2" {
		return "rand"
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
