package distlap

import (
	"distlap/internal/faultinject"
)

// FaultSpec configures deterministic fault injection for a request: the
// public mirror of internal/faultinject.Spec. All probabilities are per
// message (or per node, for crashes) and must lie in [0, 1]; DropProb +
// DupProb + DelayProb must not exceed 1. The zero FaultSpec means
// "no faults" and NewFaultPlan maps it to a nil plan — the reliable fast
// path.
//
// The injected execution is a pure function of (graph, request seed, plan):
// byte-identical across repeats, processes and solver parallelism. Drops
// model fair-lossy links under a reliable transport — a dropped word is
// charged and retransmitted, costing rounds and bandwidth, not
// correctness. Duplications, delays and crash-stop nodes are adversarial:
// they can corrupt a solve, which the self-checking recovery loop detects
// by local residual verification and answers with retries, tolerance
// degradation (Metrics.Degraded) or a loud error — never a silently wrong
// vector. See DESIGN.md §9.
type FaultSpec struct {
	// Seed drives every fault decision (independent of the engine seed).
	Seed int64
	// DropProb, DupProb, DelayProb are per-message fate probabilities.
	DropProb  float64
	DupProb   float64
	DelayProb float64
	// MaxDelay bounds a delayed message's extra rounds (0 selects 3).
	MaxDelay int
	// CrashProb is the per-node probability of crash-stopping (permanently)
	// at a round drawn uniformly from [1, CrashWindow] (0 selects 32).
	CrashProb   float64
	CrashWindow int
	// FlakyLinkProb marks whole links flaky; a flaky link additionally
	// drops each message with FlakyDropProb (0 selects 0.5).
	FlakyLinkProb float64
	FlakyDropProb float64
}

// FaultPlan is a validated, immutable fault plan, safe for concurrent use
// and reusable across requests (decisions depend only on round, edge and
// node identities, never on shared state).
type FaultPlan struct {
	inner *faultinject.Plan
}

// NewFaultPlan validates a FaultSpec and compiles it into a reusable plan.
// A spec with no fault sources enabled returns (nil, nil): attaching a nil
// plan is exactly the reliable fast path.
func NewFaultPlan(spec FaultSpec) (*FaultPlan, error) {
	p, err := faultinject.New(faultinject.Spec{
		Seed:          spec.Seed,
		DropProb:      spec.DropProb,
		DupProb:       spec.DupProb,
		DelayProb:     spec.DelayProb,
		MaxDelay:      spec.MaxDelay,
		CrashProb:     spec.CrashProb,
		CrashWindow:   spec.CrashWindow,
		FlakyLinkProb: spec.FlakyLinkProb,
		FlakyDropProb: spec.FlakyDropProb,
	})
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, nil
	}
	return &FaultPlan{inner: p}, nil
}

// plan unwraps to the engine-level plan, tolerating nil receivers so a
// disabled NewFaultPlan result threads through transparently.
func (p *FaultPlan) plan() *faultinject.Plan {
	if p == nil {
		return nil
	}
	return p.inner
}

// WithRequestFaults attaches a fault plan to this request only. The
// request runs the self-checking recovery loop: verified attempts, bounded
// retries under re-derived seeds, degradation to a coarser target when
// retries exhaust — reported in the result's Metrics (Attempts,
// FaultsObserved, Degraded). A nil plan leaves the request on the reliable
// fast path.
func WithRequestFaults(p *FaultPlan) ReqOption {
	return func(rc *reqCfg) { rc.faults = p.plan() }
}

// WithRequestRetries bounds the recovery loop's full-tolerance re-attempts
// for this request (0 selects the default of 2). Meaningful only together
// with WithRequestFaults.
func WithRequestRetries(n int) ReqOption {
	return func(rc *reqCfg) { rc.retries = n }
}
