module distlap

go 1.22
