package shortcut

import (
	"testing"
	"testing/quick"

	"distlap/internal/graph"
)

func TestRegionBuilderGridRows(t *testing.T) {
	g := graph.Grid(8, 8)
	s, err := NewRegionBuilder().Build(g, gridRows(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, s); err != nil {
		t.Fatal(err)
	}
	// Rows are low-diameter; region trees must not blow dilation past the
	// trivial builder's by more than the region radius.
	if s.Quality() > 4*8 {
		t.Fatalf("quality=%d", s.Quality())
	}
}

func TestRegionBuilderMixedScales(t *testing.T) {
	// A partition with one giant part and many tiny parts: the multi-scale
	// construction should give tiny parts small-region trees, so its
	// quality is not dominated by the global diameter for them.
	g := graph.Grid(10, 10)
	var parts [][]graph.NodeID
	// Tiny parts: 2-node dominoes in the top rows.
	for c := 0; c+1 < 10; c += 2 {
		parts = append(parts, []graph.NodeID{graph.GridID(10, 0, c), graph.GridID(10, 0, c+1)})
	}
	// A snake part across the bottom half.
	var snake []graph.NodeID
	for c := 0; c < 10; c++ {
		snake = append(snake, graph.GridID(10, 9, c))
	}
	parts = append(parts, snake)
	s, err := NewRegionBuilder().Build(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Quality() <= 0 {
		t.Fatal("degenerate quality")
	}
}

func TestRegionHierarchyLaminar(t *testing.T) {
	g := graph.Grid(8, 8)
	regions, leafOf, err := buildRegionHierarchy(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) < 3 {
		t.Fatalf("hierarchy did not split: %d regions", len(regions))
	}
	// Every node's leaf region contains it; parents contain children.
	for v := 0; v < g.N(); v++ {
		r := leafOf[v]
		for r != -1 {
			found := false
			for _, u := range regions[r].nodes {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d missing from ancestor region %d", v, r)
			}
			r = regions[r].parent
		}
	}
	// Regions are connected.
	for i, reg := range regions {
		if !graph.InducedConnected(g, reg.nodes) {
			t.Fatalf("region %d disconnected", i)
		}
	}
}

func TestSplitByMiddleLayerPath(t *testing.T) {
	g := graph.Path(16)
	all := make([]graph.NodeID, 16)
	for i := range all {
		all[i] = i
	}
	// The middle BFS layer from the path's center removes two nodes,
	// leaving two or three pieces depending on folding.
	children := splitByMiddleLayer(g, all)
	if len(children) < 2 {
		t.Fatalf("children=%d", len(children))
	}
	total := 0
	for _, ch := range children {
		total += len(ch)
		if !graph.InducedConnected(g, ch) {
			t.Fatal("child disconnected")
		}
	}
	if total != 16 {
		t.Fatalf("covered %d", total)
	}
}

func TestSplitByMiddleLayerDegenerate(t *testing.T) {
	g := graph.Complete(5) // height 1 BFS tree: no balanced split
	all := []graph.NodeID{0, 1, 2, 3, 4}
	if children := splitByMiddleLayer(g, all); children != nil {
		t.Fatalf("unexpected split: %v", children)
	}
}

// Property: the region builder produces verified shortcuts on random
// connected graphs with tree partitions, and its quality never loses to
// the portfolio by definition of the portfolio.
func TestRegionBuilderProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%40) + 8
		g := graph.RandomConnected(n, n/2, 1, seed)
		parts := TreePartition(g, 4)
		s, err := NewRegionBuilder().Build(g, parts)
		if err != nil {
			return false
		}
		best, err := WidePortfolio().Build(g, parts)
		if err != nil {
			return false
		}
		return best.Quality() <= s.Quality()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
