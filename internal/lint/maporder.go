package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrderSortFuncs is the explicit whitelist hook for the collect-then-sort
// recognizer: additional function or method names (exact match) that
// establish a deterministic order over a collected slice, beyond sort.*/
// slices.* and names containing "sort". Populate it before Run — e.g.
// cmd/distlint's -maporder-sortfuncs flag — for repo-local canonicalization
// helpers whose names the heuristic cannot guess.
var MapOrderSortFuncs = map[string]bool{}

// MapOrder returns the maporder analyzer: in non-test internal/... code,
// `range` over a map is flagged unless the loop only collects keys/values
// into slices that are subsequently sorted later in the same function — the
// collect-then-sort idiom (see internal/shortcut/region.go, separator
// folding). Go randomizes map iteration order per execution, so any other
// map range can leak schedule nondeterminism into measured round counts.
//
// The recognizer is intraprocedural: the sort call may appear in any
// enclosing statement list of the same function *after* the collecting
// loop (not only the loop's own block), so collect-inside-a-condition /
// sort-at-function-end no longer false-positives. Helpers recognized as
// sorting are sort.*/slices.* calls, names containing "sort", and the
// MapOrderSortFuncs whitelist.
func MapOrder() *Analyzer {
	return &Analyzer{
		Name:     "maporder",
		Severity: SevError,
		Doc: "flags range over a map in internal packages unless the keys are " +
			"collected into a slice and sorted before use (function-level scan)",
		Run: runMapOrder,
	}
}

func runMapOrder(p *Package) []Diagnostic {
	if !underInternal(p.Path) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectThenSort(p, rs, stack) {
				return true
			}
			out = append(out, diag(p, rs, "maporder",
				"range over map %s is iteration-order nondeterministic; collect keys, sort, then sweep (internal/shortcut/region.go pattern), or //%s maporder <why order cannot matter>",
				types.TypeString(t, types.RelativeTo(p.Types)), AllowDirective))
			return true
		})
	}
	return out
}

// collectThenSort reports whether rs is the blessed idiom: the loop body
// only collects loop variables (or expressions over them) into slices —
// append assignments, possibly behind filtering if/continue — and at least
// one of those slices is later passed to a sort call. The scan is
// function-level: starting from the loop's own statement list, every
// enclosing statement list up to the function boundary is searched, but
// only at statements that execute after the loop (lexically after the
// chain node containing it).
func collectThenSort(p *Package, rs *ast.RangeStmt, stack []ast.Node) bool {
	targets := make(map[string]bool)
	if !collectOnly(rs.Body.List, targets) || len(targets) == 0 {
		return false
	}
	child := ast.Node(rs)
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false // function boundary: stop
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			child = b
			continue
		}
		after := false
		for _, st := range list {
			if ast.Node(st) == child {
				after = true
				continue
			}
			if after && sortsATarget(st, targets) {
				return true
			}
		}
		child = stack[i]
	}
	return false
}

// sortsATarget reports whether st contains a sort call over one of the
// collection targets.
func sortsATarget(st ast.Stmt, targets map[string]bool) bool {
	sorted := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && targets[id.Name] {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// collectOnly reports whether every statement is an append into a slice
// (recorded in targets), a filtering if around such appends, or a continue.
func collectOnly(stmts []ast.Stmt, targets map[string]bool) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				return false
			}
			targets[lhs.Name] = true
		case *ast.IfStmt:
			if !collectOnly(s.Body.List, targets) {
				return false
			}
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					if !collectOnly(e.List, targets) {
						return false
					}
				case *ast.IfStmt:
					if !collectOnly([]ast.Stmt{e}, targets) {
						return false
					}
				default:
					return false
				}
			}
		case *ast.BranchStmt:
			if s.Label != nil {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isSortCall recognizes sort.X(...), helper functions whose name contains
// "sort" (sortNodeIDs, sortEdgeIDs, ...), and names explicitly whitelisted
// through MapOrderSortFuncs.
func isSortCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return MapOrderSortFuncs[fn.Name] ||
			strings.Contains(strings.ToLower(fn.Name), "sort")
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok && (pkg.Name == "sort" || pkg.Name == "slices") {
			return true
		}
		return MapOrderSortFuncs[fn.Sel.Name] ||
			strings.Contains(strings.ToLower(fn.Sel.Name), "sort")
	}
	return false
}
