// Command simtrace renders a JSONL instrumentation trace (produced by
// distlap.NewJSONLTrace or `experiments -trace`) as per-phase round and
// message tables, and verifies the trace's accounting identity: the
// exclusive per-phase rounds (plus charges outside any span) must sum
// exactly to the per-engine round totals — and, for series traces, so must
// the per-round deltas. A mismatch is a bug in the instrumentation and
// exits nonzero.
//
// Usage:
//
//	simtrace trace.jsonl
//	simtrace -top 8 trace.jsonl
//	simtrace -folded -weight messages trace.jsonl > stacks.folded
//	simtrace -timeline -width 72 trace.jsonl
//
// -folded emits flamegraph folded stacks (feed to inferno/flamegraph.pl);
// -timeline needs a series-enabled trace (experiments -series -trace ...)
// and renders per-phase round bars with convergence gauges (pcg.residual,
// chebyshev.residual, …) overlaid as value-mapped rows on the same round
// axis and fault.<kind> streams as per-bucket marker rows.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"distlap/internal/simprof"
)

func main() {
	fs := flag.NewFlagSet("simtrace", flag.ContinueOnError)
	topK := fs.Int("top", 10, "congested edges/nodes to show per engine")
	folded := fs.Bool("folded", false, "emit flamegraph folded stacks instead of tables")
	weight := fs.String("weight", simprof.WeightRounds, "folded-stack weight: rounds or messages")
	timeline := fs.Bool("timeline", false, "render an ASCII per-round heatmap (requires a -series trace)")
	width := fs.Int("width", 64, "timeline bucket count")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: simtrace [-top k] [-folded [-weight rounds|messages]] [-timeline [-width n]] trace.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "simtrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	switch {
	case *folded:
		err = renderFolded(f, os.Stdout, *weight)
	case *timeline:
		err = renderTimeline(f, os.Stdout, *width)
	default:
		err = render(f, os.Stdout, *topK)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simtrace:", err)
		os.Exit(1)
	}
}

// parseChecked parses the trace and enforces the accounting identities.
func parseChecked(r io.Reader) (*simprof.Profile, error) {
	p, err := simprof.Parse(r)
	if err != nil {
		return nil, err
	}
	if err := p.CheckIdentity(); err != nil {
		return nil, err
	}
	return p, nil
}

// renderFolded writes flamegraph folded stacks.
func renderFolded(r io.Reader, w io.Writer, weight string) error {
	p, err := parseChecked(r)
	if err != nil {
		return err
	}
	return simprof.Folded(w, p, weight)
}

// renderTimeline writes the ASCII per-round heatmap.
func renderTimeline(r io.Reader, w io.Writer, width int) error {
	p, err := parseChecked(r)
	if err != nil {
		return err
	}
	return simprof.Timeline(w, p, width)
}

// render parses the trace and writes the table report; it returns an error
// when the trace is malformed or the phase/engine round sums disagree.
func render(r io.Reader, w io.Writer, topK int) error {
	p, err := simprof.Parse(r)
	if err != nil {
		return err
	}

	engineRounds, engineMsgs := p.EngineRounds(), p.EngineMessages()
	phaseRounds, phaseMsgs := p.PhaseRounds(), p.PhaseMessages()
	untracked := p.Untracked

	fmt.Fprintf(w, "engines (%d):\n", len(p.Engines))
	tw := newTabular(w, "engine", "rounds", "messages")
	for _, e := range p.Engines {
		tw.row(e.Engine, itoa(e.Rounds), i64toa(e.Messages))
	}
	tw.flush()

	fmt.Fprintf(w, "\nphases (%d, exclusive rounds):\n", len(p.Phases))
	tw = newTabular(w, "phase", "count", "rounds", "rounds%", "messages")
	for _, ph := range p.Phases {
		tw.row(ph.Path, itoa(ph.Count), itoa(ph.Rounds), pct(ph.Rounds, engineRounds), i64toa(ph.Messages))
	}
	if untracked.Rounds != 0 || untracked.Messages != 0 {
		tw.row("(untracked)", "", itoa(untracked.Rounds), pct(untracked.Rounds, engineRounds), i64toa(untracked.Messages))
	}
	tw.flush()

	if len(p.Counters) > 0 {
		fmt.Fprintf(w, "\ncounters (%d):\n", len(p.Counters))
		tw = newTabular(w, "counter", "value")
		for _, c := range p.Counters {
			tw.row(c.Name, i64toa(int64(c.Value)))
		}
		tw.flush()
	}

	if len(p.Gauges) > 0 {
		fmt.Fprintf(w, "\ngauges (%d series; render the samples from the raw stream):\n", len(p.Gauges))
		tw = newTabular(w, "gauge", "samples", "last-step", "last-value", "rounds@last")
		for _, g := range p.Gauges {
			last := g.Samples[len(g.Samples)-1]
			tw.row(g.Name, itoa(len(g.Samples)), itoa(last.Step),
				fmt.Sprintf("%g", last.Value), itoa(last.Rounds))
		}
		tw.flush()
	}

	if len(p.EdgeHist) > 0 {
		fmt.Fprintf(w, "\nedge-load histogram (per engine, bucket = ceil(log2 words)):\n")
		tw = newTabular(w, "engine", "bucket", "<= words", "edges")
		for _, h := range p.EdgeHist {
			tw.row(h.Engine, itoa(h.Bucket), i64toa(int64(1)<<h.Bucket), i64toa(h.Edges))
		}
		tw.flush()
	}

	if len(p.Edges) > 0 {
		fmt.Fprintf(w, "\ntop congested directed edges (showing <=%d per engine):\n", topK)
		tw = newTabular(w, "engine", "dir-edge", "words")
		perEngine := make(map[string]int)
		for _, e := range p.Edges {
			if perEngine[e.Engine] < topK {
				tw.row(e.Engine, itoa(e.Edge), i64toa(e.Words))
				perEngine[e.Engine]++
			}
		}
		tw.flush()
	}

	if len(p.NodeHist) > 0 {
		fmt.Fprintf(w, "\nnode-load histogram (per engine, bucket = ceil(log2 words)):\n")
		tw = newTabular(w, "engine", "bucket", "<= words", "nodes")
		for _, h := range p.NodeHist {
			tw.row(h.Engine, itoa(h.Bucket), i64toa(int64(1)<<h.Bucket), i64toa(h.Nodes))
		}
		tw.flush()
	}

	if len(p.Nodes) > 0 {
		fmt.Fprintf(w, "\ntop congested nodes (showing <=%d per engine):\n", topK)
		tw = newTabular(w, "engine", "node", "words")
		perEngine := make(map[string]int)
		for _, e := range p.Nodes {
			if perEngine[e.Engine] < topK {
				tw.row(e.Engine, itoa(e.Node), i64toa(e.Words))
				perEngine[e.Engine]++
			}
		}
		tw.flush()
	}

	if len(p.Series) > 0 {
		fmt.Fprintf(w, "\nround series: %d records (render with -timeline)\n", len(p.Series))
	}

	fmt.Fprintf(w, "\ntotals: phases+untracked = %d rounds / %d messages; engines = %d rounds / %d messages\n",
		phaseRounds, phaseMsgs, engineRounds, engineMsgs)
	if err := p.CheckIdentity(); err != nil {
		return err
	}
	fmt.Fprintln(w, "accounting identity holds: per-phase exclusive charges sum to the engine totals")
	return nil
}

// tabular is a minimal aligned-column writer (no dependency on the
// experiments package: cmds stay leaf packages).
type tabular struct {
	w      io.Writer
	header []string
	rows   [][]string
}

func newTabular(w io.Writer, header ...string) *tabular {
	return &tabular{w: w, header: header}
}

func (t *tabular) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tabular) flush() {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
		}
		fmt.Fprintln(t.w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func itoa(n int) string     { return fmt.Sprintf("%d", n) }
func i64toa(n int64) string { return fmt.Sprintf("%d", n) }

func pct(part, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}
