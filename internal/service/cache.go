// Package service implements distlapd's serving layer: a byte-budgeted LRU
// cache of prepared solver instances (distlap.Instance) behind a stdlib
// net/http JSON API. The cache is what makes the daemon an amortization
// demonstrator — each graph pays its setup exactly once at load time, and
// every subsequent solve/flow/MST request runs pure iteration against the
// cached state.
//
// Determinism obligations: responses are a pure function of (request,
// instance configuration) — request seeds derive from the instance seed via
// internal/seedderive unless pinned — so two daemons serve byte-identical
// JSON for identical requests. The cache itself uses a monotonic access
// counter for recency (never the wall clock) and iterates its map in sorted
// key order, so eviction order is deterministic too.
package service

import (
	"sort"
	"sync"

	"distlap"
	"distlap/internal/obs"
)

// InstanceInfo is the serialized description of one cached instance.
type InstanceInfo struct {
	ID            string  `json:"id"`
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	Mode          string  `json:"mode"`
	Eps           float64 `json:"eps"`
	Seed          int64   `json:"seed"`
	SizeBytes     int64   `json:"size_bytes"`
	SetupRounds   int     `json:"setup_rounds"`
	SetupMessages int64   `json:"setup_messages"`
}

// cacheStats is the metric handle bundle the cache updates inline, under
// its own mutex — so the hit/miss/eviction counters and the occupancy
// gauges are exact even while loads and solves race. All fields are
// optional: a zero cacheStats (as the cache-only tests use) records
// nothing.
type cacheStats struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	entries   *obs.Gauge
	bytes     *obs.Gauge
}

func (st cacheStats) onHit() {
	if st.hits != nil {
		st.hits.Inc()
	}
}

func (st cacheStats) onMiss() {
	if st.misses != nil {
		st.misses.Inc()
	}
}

func (st cacheStats) onEvict(n int64) {
	if st.evictions != nil && n > 0 {
		st.evictions.Add(n)
	}
}

// sync publishes the current occupancy to the gauges.
func (st cacheStats) sync(entries int, bytes int64) {
	if st.entries != nil {
		st.entries.Set(int64(entries))
	}
	if st.bytes != nil {
		st.bytes.Set(bytes)
	}
}

type cacheEntry struct {
	inst     *distlap.Instance
	info     InstanceInfo
	lastUsed uint64
}

// instanceCache is a byte-budgeted LRU over prepared instances. Recency is
// a monotonic access counter (wall-clock time is banned in internal/...,
// and a counter makes eviction order reproducible). The mutex guards only
// the map and counters — the instances themselves are immutable and solves
// run outside the lock.
type instanceCache struct {
	mu      sync.Mutex
	budget  int64
	clock   uint64
	total   int64
	entries map[string]*cacheEntry
	stats   cacheStats
}

func newInstanceCache(budget int64, stats cacheStats) *instanceCache {
	return &instanceCache{budget: budget, entries: make(map[string]*cacheEntry), stats: stats}
}

// get returns the cached instance and bumps its recency.
func (c *instanceCache) get(id string) (*distlap.Instance, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		c.stats.onMiss()
		return nil, false
	}
	c.stats.onHit()
	c.clock++
	e.lastUsed = c.clock
	return e.inst, true
}

// put inserts (or replaces) an instance and evicts least-recently-used
// entries until the byte budget holds again, never evicting the entry just
// inserted (a single oversized instance stays resident — the budget bounds
// the herd, not the individual). It returns the evicted IDs in eviction
// order.
func (c *instanceCache) put(id string, inst *distlap.Instance, info InstanceInfo) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[id]; ok {
		c.total -= old.info.SizeBytes
	}
	c.clock++
	c.entries[id] = &cacheEntry{inst: inst, info: info, lastUsed: c.clock}
	c.total += info.SizeBytes
	var evicted []string
	for c.total > c.budget && len(c.entries) > 1 {
		victim := ""
		var oldest uint64
		ids := make([]string, 0, len(c.entries))
		for eid := range c.entries {
			ids = append(ids, eid)
		}
		sort.Strings(ids)
		for _, eid := range ids {
			if eid == id {
				continue
			}
			if e := c.entries[eid]; victim == "" || e.lastUsed < oldest {
				victim, oldest = eid, e.lastUsed
			}
		}
		if victim == "" {
			break
		}
		c.total -= c.entries[victim].info.SizeBytes
		delete(c.entries, victim)
		evicted = append(evicted, victim)
	}
	c.stats.onEvict(int64(len(evicted)))
	c.stats.sync(len(c.entries), c.total)
	return evicted
}

// evict removes one instance by ID, reporting whether it was present.
func (c *instanceCache) evict(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	c.total -= e.info.SizeBytes
	delete(c.entries, id)
	c.stats.onEvict(1)
	c.stats.sync(len(c.entries), c.total)
	return true
}

// list returns the cached instance descriptions sorted by ID.
func (c *instanceCache) list() []InstanceInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.entries))
	for id := range c.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]InstanceInfo, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.entries[id].info)
	}
	return out
}

// count reports the number of cached instances.
func (c *instanceCache) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// totalBytes reports the cache's current resident estimate.
func (c *instanceCache) totalBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}
