package distlap_test

// Ablation benchmarks for the design choices called out in DESIGN.md §4.
// Each reports the measured CONGEST rounds of its configuration as a
// custom metric (rounds/op) so `go test -bench=Ablation` prints the
// comparison directly.

import (
	"testing"

	"distlap/internal/congest"
	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/linalg"
)

// BenchmarkAblationDelays compares the tree-aggregation scheduler with and
// without random initial delays under heavy congestion (64 trees sharing a
// path).
func BenchmarkAblationDelays(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "random-delays"
		if disable {
			name = "no-delays"
		}
		b.Run(name, func(b *testing.B) {
			g := graph.Path(64)
			totalRounds := 0
			for i := 0; i < b.N; i++ {
				nw := congest.NewNetwork(g, congest.Options{
					Seed:                int64(i + 1),
					DisableRandomDelays: disable,
				})
				trees := make([]*graph.Tree, 64)
				for t := range trees {
					trees[t] = graph.BFSTree(g, 0)
				}
				if _, err := nw.ConvergecastMany(trees,
					func(int, graph.NodeID) congest.Word { return 1 },
					congest.AggSum); err != nil {
					b.Fatal(err)
				}
				totalRounds += nw.Rounds()
			}
			b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds/op")
		})
	}
}

// BenchmarkAblationPrecond sweeps the solver's preconditioners on a fixed
// system, reporting iterations and rounds per solve.
func BenchmarkAblationPrecond(b *testing.B) {
	g := graph.Grid(10, 10)
	rhs := linalg.RandomBVector(g.N(), 3)
	preconds := []core.Preconditioner{
		&core.IdentityPrecond{},
		&core.JacobiPrecond{},
		&core.TreePrecond{},
		core.NewSchwarzPrecond(10, 2, 7),
	}
	for _, pre := range preconds {
		pre := pre
		b.Run(pre.Name(), func(b *testing.B) {
			totalRounds, totalIters := 0, 0
			for i := 0; i < b.N; i++ {
				nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 1})
				comm, err := core.NewCongestComm(nw, false)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Solve(comm, rhs, core.Options{Tol: 1e-8, Precond: pre})
				if err != nil {
					b.Fatal(err)
				}
				totalRounds += res.Rounds
				totalIters += res.Iterations
			}
			b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(totalIters)/float64(b.N), "iters/op")
		})
	}
}

// BenchmarkAblationPWAOracle compares the naive global-tree oracle against
// the universal per-cluster oracle inside the solver (the E9b ablation as
// a bench target).
func BenchmarkAblationPWAOracle(b *testing.B) {
	g := graph.RandomRegular(128, 4, 5)
	rhs := linalg.RandomBVector(g.N(), 2)
	for _, mode := range []core.Mode{core.ModeUniversal, core.ModeBaseline, core.ModeHybrid} {
		mode := mode
		b.Run(string(mode), func(b *testing.B) {
			totalRounds := 0
			for i := 0; i < b.N; i++ {
				res, _, err := core.SolveOnGraph(g, rhs, mode, 1e-6, 3)
				if err != nil {
					b.Fatal(err)
				}
				totalRounds += res.Rounds
			}
			b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds/op")
		})
	}
}

// BenchmarkAblationIteration compares the two distributed iterations (PCG
// with per-iteration reductions vs Chebyshev with sparse residual checks)
// on a high-diameter topology.
func BenchmarkAblationIteration(b *testing.B) {
	g := graph.Path(128)
	rhs := linalg.RandomBVector(g.N(), 9)
	b.Run("pcg", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 1})
			comm, err := core.NewCongestComm(nw, false)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Solve(comm, rhs, core.Options{Tol: 1e-5})
			if err != nil {
				b.Fatal(err)
			}
			total += res.Rounds
		}
		b.ReportMetric(float64(total)/float64(b.N), "rounds/op")
	})
	b.Run("chebyshev", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 1})
			comm, err := core.NewCongestComm(nw, false)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.SolveChebyshev(comm, rhs, core.ChebyshevOptions{Tol: 1e-5, CheckEvery: 16})
			if err != nil {
				b.Fatal(err)
			}
			total += res.Rounds
		}
		b.ReportMetric(float64(total)/float64(b.N), "rounds/op")
	})
}
