package core

import (
	"math"
	"testing"
	"testing/quick"

	"distlap/internal/graph"
	"distlap/internal/linalg"
)

func TestSolveSDDAgainstDense(t *testing.T) {
	g := graph.Grid(4, 4)
	extra := make([]int64, 16)
	extra[0], extra[5], extra[15] = 3, 1, 2
	b := linalg.RandomBVector(16, 3)
	b[2] += 5 // b need not sum to zero for SDD systems

	res, err := SolveSDD(g, extra, b, ModeUniversal, 1e-10, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := SDDResidual(g, extra, res.X, b)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-6 {
		t.Fatalf("SDD residual %g", r)
	}
	// Dense cross-check: (L + diag)x = b solved by elimination.
	want := denseSDDSolve(t, g, extra, b)
	for v := range want {
		if math.Abs(res.X[v]-want[v]) > 1e-5 {
			t.Fatalf("entry %d: %g vs %g", v, res.X[v], want[v])
		}
	}
}

func denseSDDSolve(t *testing.T, g *graph.Graph, extra []int64, b []float64) []float64 {
	t.Helper()
	n := g.N()
	a := linalg.NewLaplacian(g).Dense()
	for v := 0; v < n; v++ {
		a[v][v] += float64(extra[v])
		a[v] = append(a[v], b[v])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			t.Fatal("singular dense SDD system")
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for v := 0; v < n; v++ {
		x[v] = a[v][n] / a[v][v]
	}
	return x
}

func TestSolveSDDInputValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := SolveSDD(g, []int64{1}, make([]float64, 3), ModeUniversal, 1e-6, 1); err == nil {
		t.Fatal("want length error")
	}
	if _, err := SolveSDD(g, []int64{0, -1, 0}, make([]float64, 3), ModeUniversal, 1e-6, 1); err == nil {
		t.Fatal("want negativity error")
	}
	if _, err := SolveSDD(g, []int64{0, 0, 0}, make([]float64, 3), ModeUniversal, 1e-6, 1); err == nil {
		t.Fatal("want all-zero error")
	}
}

func TestSolveSDDUniformRegularization(t *testing.T) {
	// (L + I) x = 1 on a path: x should be positive everywhere and
	// symmetric around the middle.
	g := graph.Path(5)
	extra := []int64{1, 1, 1, 1, 1}
	b := []float64{1, 1, 1, 1, 1}
	res, err := SolveSDD(g, extra, b, ModeUniversal, 1e-10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v, x := range res.X {
		if x <= 0 {
			t.Fatalf("x[%d]=%g, want positive", v, x)
		}
	}
	if math.Abs(res.X[0]-res.X[4]) > 1e-6 || math.Abs(res.X[1]-res.X[3]) > 1e-6 {
		t.Fatalf("asymmetric solution %v", res.X)
	}
}

// Property: SolveSDD residuals hold across random graphs, diagonals and
// right-hand sides.
func TestSolveSDDProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(12, 8, 3, seed)
		extra := make([]int64, 12)
		extra[int(uint64(seed)%12)] = 2
		extra[0] += 1
		b := linalg.RandomBVector(12, seed+1)
		b[3] += 2
		res, err := SolveSDD(g, extra, b, ModeUniversal, 1e-9, seed)
		if err != nil {
			return false
		}
		r, err := SDDResidual(g, extra, res.X, b)
		return err == nil && r < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
