package shortcut

import (
	"errors"
	"fmt"
	"sort"

	"distlap/internal/congest"
	"distlap/internal/graph"
)

// This file implements the communication tasks of paper §3.1.3 used to
// characterize shortcut quality (Theorem 25):
//
//   - the multiple-unicast problem: route k source-sink pairs; completion
//     time = max(dilation, congestion) achieved by a set of connecting
//     paths, certified by actually scheduling the packets;
//   - the any-to-any-cast problem: find a source/sink matching minimizing
//     the multiple-unicast completion time;
//   - pair/any-to-any node connectivity witnesses and the Lemma 24-style
//     decomposition of a p-node-congested witness family into few
//     node-disjoint classes (greedy conflict coloring; the paper proves
//     O(p log k) classes exist, our greedy certifies an upper bound).

// UnicastPair is a source-sink demand.
type UnicastPair struct {
	Source, Sink graph.NodeID
}

// UnicastSolution is a set of connecting paths with its certified cost.
type UnicastSolution struct {
	Paths      [][]graph.EdgeID // per pair, edge path source -> sink
	Dilation   int              // max path length
	Congestion int              // max directed-edge multiplicity
	Makespan   int              // measured scheduled completion time
}

// Quality returns max(congestion, dilation) (the τ of §3.1.3).
func (s *UnicastSolution) Quality() int {
	if s.Congestion > s.Dilation {
		return s.Congestion
	}
	return s.Dilation
}

// ErrNoPath is returned when a demand pair is disconnected.
var ErrNoPath = errors.New("shortcut: no path between demand endpoints")

// SolveMultipleUnicast routes every pair along its BFS shortest path and
// certifies the solution by scheduling the packets on the engine (the
// measured makespan is a legal completion time, within the classic
// O(congestion + dilation) of the optimum for these paths).
func SolveMultipleUnicast(nw *congest.Network, pairs []UnicastPair) (*UnicastSolution, error) {
	g := nw.Graph()
	sol := &UnicastSolution{Paths: make([][]graph.EdgeID, len(pairs))}
	use := make(map[int]int)
	for i, pr := range pairs {
		path, err := bfsEdgePath(g, pr.Source, pr.Sink)
		if err != nil {
			return nil, fmt.Errorf("pair %d (%d->%d): %w", i, pr.Source, pr.Sink, err)
		}
		sol.Paths[i] = path
		if len(path) > sol.Dilation {
			sol.Dilation = len(path)
		}
		v := pr.Source
		for _, id := range path {
			key := 2 * id
			if g.Edge(id).U != v {
				key++
			}
			use[key]++
			if use[key] > sol.Congestion {
				sol.Congestion = use[key]
			}
			v = g.Other(id, v)
		}
	}
	pkts := make([]congest.Packet, len(pairs))
	for i, pr := range pairs {
		pkts[i] = congest.Packet{Start: pr.Source, Edges: sol.Paths[i], Payload: congest.Word(i)}
	}
	nw.Trace().Begin("unicast-route")
	before := nw.Rounds()
	if _, err := nw.RouteMany(pkts); err != nil {
		nw.Trace().End("unicast-route")
		return nil, err
	}
	sol.Makespan = nw.Rounds() - before
	nw.Trace().End("unicast-route")
	return sol, nil
}

// SolveAnyToAnyCast matches k sources to k sinks greedily by BFS distance
// (nearest available sink per source, sources processed by increasing
// nearest-distance) and solves the induced multiple-unicast instance. The
// returned permutation maps source index to sink index.
func SolveAnyToAnyCast(nw *congest.Network, sources, sinks []graph.NodeID) (*UnicastSolution, []int, error) {
	if len(sources) != len(sinks) {
		return nil, nil, fmt.Errorf("shortcut: %d sources vs %d sinks", len(sources), len(sinks))
	}
	g := nw.Graph()
	k := len(sources)
	// Distance matrix via one BFS per source (sources are typically few).
	dist := make([][]int, k)
	for i, s := range sources {
		res := graph.BFS(g, s)
		dist[i] = make([]int, k)
		for j, t := range sinks {
			dist[i][j] = res.Dist[t]
			if res.Dist[t] < 0 {
				return nil, nil, fmt.Errorf("source %d: %w", i, ErrNoPath)
			}
		}
	}
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	nearest := func(i int) int {
		best := 1 << 30
		for j := 0; j < k; j++ {
			if dist[i][j] < best {
				best = dist[i][j]
			}
		}
		return best
	}
	sort.Slice(order, func(a, b int) bool { return nearest(order[a]) < nearest(order[b]) })
	taken := make([]bool, k)
	match := make([]int, k)
	for _, i := range order {
		best, bestD := -1, 1<<30
		for j := 0; j < k; j++ {
			if !taken[j] && dist[i][j] < bestD {
				best, bestD = j, dist[i][j]
			}
		}
		taken[best] = true
		match[i] = best
	}
	pairs := make([]UnicastPair, k)
	for i := range pairs {
		pairs[i] = UnicastPair{Source: sources[i], Sink: sinks[match[i]]}
	}
	sol, err := SolveMultipleUnicast(nw, pairs)
	if err != nil {
		return nil, nil, err
	}
	return sol, match, nil
}

// bfsEdgePath returns the edge sequence of a shortest path from s to t.
func bfsEdgePath(g *graph.Graph, s, t graph.NodeID) ([]graph.EdgeID, error) {
	res := graph.BFS(g, s)
	if t < 0 || t >= g.N() || res.Dist[t] < 0 {
		return nil, ErrNoPath
	}
	var rev []graph.EdgeID
	for v := t; v != s; v = res.Parent[v] {
		rev = append(rev, res.ParentEdge[v])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// WitnessFamily is a family of node paths witnessing pair node connectivity
// (§3.1.3): path i connects pair i; the family's node congestion is the
// max number of paths through any node.
type WitnessFamily struct {
	Paths [][]graph.NodeID
}

// NodeCongestion returns the family's node congestion p.
func (w *WitnessFamily) NodeCongestion() int {
	cnt := make(map[graph.NodeID]int)
	p := 0
	for _, path := range w.Paths {
		for _, v := range path {
			cnt[v]++
			if cnt[v] > p {
				p = cnt[v]
			}
		}
	}
	return p
}

// DecomposeDisjoint greedily colors the witness paths so that paths of the
// same class are pairwise node-disjoint, returning the classes (each a list
// of path indices). This is the constructive companion to Lemma 24: the
// lemma guarantees O(p·log k) classes exist for a p-congested family; the
// greedy bound is classes ≤ 1 + max conflict degree, which the Theorem 22
// experiment uses as a measured upper bound.
func (w *WitnessFamily) DecomposeDisjoint() [][]int {
	k := len(w.Paths)
	byNode := make(map[graph.NodeID][]int)
	for i, path := range w.Paths {
		for _, v := range path {
			byNode[v] = append(byNode[v], i)
		}
	}
	conflict := make([]map[int]bool, k)
	for i := range conflict {
		conflict[i] = make(map[int]bool)
	}
	for _, idxs := range byNode { //distlint:allow maporder idempotent set inserts; the conflict relation is order-independent
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				if idxs[a] != idxs[b] {
					conflict[idxs[a]][idxs[b]] = true
					conflict[idxs[b]][idxs[a]] = true
				}
			}
		}
	}
	color := make([]int, k)
	classes := 0
	// Color longest paths first (they conflict most).
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(w.Paths[order[a]]) > len(w.Paths[order[b]])
	})
	colored := make([]bool, k)
	for _, i := range order {
		used := make(map[int]bool)
		for j := range conflict[i] { //distlint:allow maporder builds the used-color set; set membership is order-independent
			if colored[j] {
				used[color[j]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[i] = c
		colored[i] = true
		if c+1 > classes {
			classes = c + 1
		}
	}
	out := make([][]int, classes)
	for i, c := range color {
		out[c] = append(out[c], i)
	}
	return out
}

// Validate checks that every path is a walk in g connecting its endpoints
// and that each class of classes is pairwise node-disjoint.
func (w *WitnessFamily) Validate(g *graph.Graph, classes [][]int) error {
	for i, path := range w.Paths {
		for h := 0; h+1 < len(path); h++ {
			if !g.HasEdgeBetween(path[h], path[h+1]) {
				return fmt.Errorf("shortcut: witness %d: %d-%d not an edge", i, path[h], path[h+1])
			}
		}
	}
	for c, class := range classes {
		seen := make(map[graph.NodeID]int)
		for _, i := range class {
			for _, v := range w.Paths[i] {
				if prev, ok := seen[v]; ok && prev != i {
					return fmt.Errorf("shortcut: class %d: paths %d and %d share node %d",
						c, prev, i, v)
				}
				seen[v] = i
			}
		}
	}
	return nil
}
