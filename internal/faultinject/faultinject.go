// Package faultinject defines deterministic fault plans for the simulated
// communication engines: message drops, duplications, delivery delays,
// crash-stop nodes, and flaky links with per-round failure probability.
//
// The paper's model (like the shortcut framework it builds on) assumes a
// reliable synchronous network; the ROADMAP's north star is a service that
// must survive an unreliable one. A Plan is the bridge: engines consult it
// at their round barriers and perturb delivery accordingly, so experiments
// can measure how the solver detects and recovers from imperfect execution.
//
// Determinism obligations (DESIGN.md §9): every fault decision is a pure
// function of (Spec.Seed, decision kind, round, edge-or-node identity),
// computed by chaining internal/seedderive derivations — a Plan holds no
// RNG and consumes no randomness stream. Two consequences the chaos tier
// relies on: (a) a faulty run is byte-identical across repeats and across
// `-parallel` widths, because decisions cannot depend on evaluation order;
// (b) an engine that replays the same rounds over the same edges observes
// the same faults, regardless of what any other engine did.
//
// A nil *Plan means a reliable network; engines treat it as the fast path
// and charge nothing for the possibility of faults.
package faultinject

import (
	"fmt"

	"distlap/internal/seedderive"
)

// Fate is the outcome a Plan assigns to one message crossing one link in
// one round.
type Fate int

// Message fates. FateDeliver is the zero value: a nil or quiescent plan
// always delivers.
const (
	// FateDeliver delivers the message normally.
	FateDeliver Fate = iota
	// FateDrop loses the message in flight: the send is charged (the
	// bandwidth was spent) but the receiver never sees it.
	FateDrop
	// FateDup delivers the message twice (a retransmission artifact); both
	// crossings are charged.
	FateDup
	// FateDelay postpones delivery by Verdict.Delay rounds: the message
	// stays in flight and arrives at a later round barrier, stale.
	FateDelay
)

// String implements fmt.Stringer for diagnostics and trace labels.
func (f Fate) String() string {
	switch f {
	case FateDeliver:
		return "deliver"
	case FateDrop:
		return "drop"
	case FateDup:
		return "dup"
	case FateDelay:
		return "delay"
	}
	return fmt.Sprintf("fate(%d)", int(f))
}

// Verdict is a Plan's full decision for one message: the fate and, for
// FateDelay, the number of additional rounds the message spends in flight.
type Verdict struct {
	Fate  Fate
	Delay int // rounds of extra flight time; set only for FateDelay (≥ 1)
}

// deliver is the zero Verdict, returned on every reliable path.
var deliver = Verdict{}

// Spec declares a fault plan. The zero Spec is the reliable network; any
// probability may be set independently. All probabilities are per-decision:
// DropProb applies to each (message, round) pair, CrashProb to each node,
// FlakyLinkProb to each undirected edge.
type Spec struct {
	// Seed drives every fault decision. Two plans with equal specs make
	// identical decisions; changing only the engine seed (as the solver's
	// retry path does) re-aligns which logical messages meet which faults
	// without changing the fault process itself.
	Seed int64

	// DropProb is the probability a message is lost in flight.
	DropProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// DelayProb is the probability a message is delayed; the delay is
	// uniform in [1, MaxDelay] rounds.
	DelayProb float64
	// MaxDelay bounds delivery delay in rounds (0 selects 3 when
	// DelayProb > 0).
	MaxDelay int

	// CrashProb is the per-node probability of crash-stop failure: a
	// crashed node sends nothing from its crash round on, and messages
	// addressed to it vanish on arrival.
	CrashProb float64
	// CrashWindow bounds crash rounds: a crashing node halts at a round
	// uniform in [1, CrashWindow] (0 selects 32).
	CrashWindow int

	// FlakyLinkProb is the per-undirected-edge probability that the link
	// is flaky; a flaky link additionally drops each crossing message with
	// probability FlakyDropProb, every round, in both directions.
	FlakyLinkProb float64
	// FlakyDropProb is the per-round, per-message drop probability on
	// flaky links (0 selects 0.5 when FlakyLinkProb > 0).
	FlakyDropProb float64
}

// Enabled reports whether the spec can produce any fault at all.
func (s Spec) Enabled() bool {
	return s.DropProb > 0 || s.DupProb > 0 || s.DelayProb > 0 ||
		s.CrashProb > 0 || s.FlakyLinkProb > 0
}

// Stats counts the faults an engine has injected under a plan. The counts
// live beside — never inside — the engine's metrics: rounds/messages stay
// the measured cost of what the (faulty) execution actually did, and the
// fault tally is reported separately so recovery layers can surface it.
type Stats struct {
	Drops      int64 // messages lost in flight (including flaky-link drops)
	Dups       int64 // messages delivered twice
	Delays     int64 // messages delivered late
	CrashDrops int64 // messages lost to a crash-stopped endpoint
	Crashes    int   // distinct crash-stopped nodes observed acting
}

// Total returns the number of injected fault events (crashed nodes count
// once each, not per suppressed message).
func (s Stats) Total() int64 {
	return s.Drops + s.Dups + s.Delays + s.CrashDrops + int64(s.Crashes)
}

// Add accumulates other into s (for summing stats across engines or
// attempts).
func (s *Stats) Add(other Stats) {
	s.Drops += other.Drops
	s.Dups += other.Dups
	s.Delays += other.Delays
	s.CrashDrops += other.CrashDrops
	s.Crashes += other.Crashes
}

// Plan is a compiled fault spec. It is stateless and safe for concurrent
// use; engines may share one plan across requests (decisions depend only on
// round and identity arguments).
type Plan struct {
	spec          Spec
	maxDelay      int
	crashWindow   int
	flakyDropProb float64
}

// New validates a spec and returns its plan. A spec with no enabled fault
// returns (nil, nil): callers pass the nil plan through and engines keep
// their reliable fast path.
func New(spec Spec) (*Plan, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropProb", spec.DropProb},
		{"DupProb", spec.DupProb},
		{"DelayProb", spec.DelayProb},
		{"CrashProb", spec.CrashProb},
		{"FlakyLinkProb", spec.FlakyLinkProb},
		{"FlakyDropProb", spec.FlakyDropProb},
	} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("faultinject: %s %g outside [0, 1]", p.name, p.v)
		}
	}
	if sum := spec.DropProb + spec.DupProb + spec.DelayProb; sum > 1 {
		return nil, fmt.Errorf("faultinject: drop+dup+delay probability %g exceeds 1", sum)
	}
	if spec.MaxDelay < 0 {
		return nil, fmt.Errorf("faultinject: negative MaxDelay %d", spec.MaxDelay)
	}
	if spec.CrashWindow < 0 {
		return nil, fmt.Errorf("faultinject: negative CrashWindow %d", spec.CrashWindow)
	}
	if !spec.Enabled() {
		return nil, nil
	}
	p := &Plan{
		spec:          spec,
		maxDelay:      spec.MaxDelay,
		crashWindow:   spec.CrashWindow,
		flakyDropProb: spec.FlakyDropProb,
	}
	if p.maxDelay == 0 {
		p.maxDelay = 3
	}
	if p.crashWindow == 0 {
		p.crashWindow = 32
	}
	if p.flakyDropProb == 0 {
		p.flakyDropProb = 0.5
	}
	return p, nil
}

// MustNew is New for static specs in tests and experiments; it panics on a
// validation error.
func MustNew(spec Spec) *Plan {
	p, err := New(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Spec returns the plan's validated spec.
func (p *Plan) Spec() Spec { return p.spec }

// u returns the decision variate for (kind, a, b): uniform in [0, 1), a
// pure function of the plan seed and its arguments. The two-level derive
// keys the kind and first argument into the phase hash, then mixes the
// second argument through an independent avalanche, so decision families
// never share variates.
func (p *Plan) u(kind string, a, b int64) float64 {
	h := seedderive.Derive(seedderive.Derive(p.spec.Seed, kind, a), "faultinject", b)
	return float64(uint64(h)>>11) / (1 << 53)
}

// Crashed reports whether node v has crash-stopped by the given round
// (1-based engine rounds). Crash-stop is permanent: once true for a round,
// it is true for every later round.
func (p *Plan) Crashed(v int, round int) bool {
	if p == nil || p.spec.CrashProb == 0 {
		return false
	}
	if p.u("fault/crash", int64(v), 0) >= p.spec.CrashProb {
		return false
	}
	crashRound := 1 + int(p.u("fault/crash-round", int64(v), 0)*float64(p.crashWindow))
	return round >= crashRound
}

// FlakyLink reports whether undirected edge id is flaky under the plan.
func (p *Plan) FlakyLink(edge int) bool {
	if p == nil || p.spec.FlakyLinkProb == 0 {
		return false
	}
	return p.u("fault/flaky-link", int64(edge), 0) < p.spec.FlakyLinkProb
}

// Link decides the fate of one message crossing directed edge de (encoded
// as 2*edge+direction, the congest engine's convention) at the given round.
func (p *Plan) Link(round, de int) Verdict {
	if p == nil {
		return deliver
	}
	if p.FlakyLink(de/2) && p.u("fault/flaky-round", int64(round), int64(de)) < p.flakyDropProb {
		return Verdict{Fate: FateDrop}
	}
	return p.fate("fault/link", "fault/link-delay", int64(round), int64(de))
}

// Clique decides the fate of one clique message from → to at the given
// round (the NCC engine has no edge identity; flaky links do not apply).
func (p *Plan) Clique(round, from, to int) Verdict {
	if p == nil {
		return deliver
	}
	key := int64(from)<<32 | int64(uint32(to))
	return p.fate("fault/clique", "fault/clique-delay", int64(round), key)
}

// fate partitions one uniform variate into the drop/dup/delay/deliver
// bands and draws the delay magnitude from an independent variate.
func (p *Plan) fate(kind, delayKind string, a, b int64) Verdict {
	s := &p.spec
	if s.DropProb == 0 && s.DupProb == 0 && s.DelayProb == 0 {
		return deliver
	}
	x := p.u(kind, a, b)
	if x < s.DropProb {
		return Verdict{Fate: FateDrop}
	}
	x -= s.DropProb
	if x < s.DupProb {
		return Verdict{Fate: FateDup}
	}
	x -= s.DupProb
	if x < s.DelayProb {
		d := 1 + int(p.u(delayKind, a, b)*float64(p.maxDelay))
		if d > p.maxDelay {
			d = p.maxDelay
		}
		return Verdict{Fate: FateDelay, Delay: d}
	}
	return deliver
}
