package congest

import (
	"testing"
	"testing/quick"

	"distlap/internal/graph"
)

func newNet(g *graph.Graph) *Network {
	return NewNetwork(g, Options{Seed: 1})
}

func TestExchangeCostsOneRound(t *testing.T) {
	g := graph.Path(4)
	nw := newNet(g)
	got := make(map[graph.NodeID]Word)
	nw.Exchange(
		func(v graph.NodeID, h graph.Half) (Word, bool) { return Word(v * 10), true },
		func(v graph.NodeID, h graph.Half, w Word) { got[v] += w },
	)
	if nw.Rounds() != 1 {
		t.Fatalf("rounds=%d, want 1", nw.Rounds())
	}
	// Node 1 hears from 0 and 2: 0 + 20.
	if got[1] != 20 {
		t.Fatalf("node 1 received %d, want 20", got[1])
	}
	// 2*m messages: each of 3 edges in both directions.
	if nw.Metrics().Messages != 6 {
		t.Fatalf("messages=%d, want 6", nw.Metrics().Messages)
	}
}

func TestExchangeSelective(t *testing.T) {
	g := graph.Star(5)
	nw := newNet(g)
	count := 0
	nw.Exchange(
		func(v graph.NodeID, h graph.Half) (Word, bool) { return 7, v == 0 },
		func(v graph.NodeID, h graph.Half, w Word) { count++ },
	)
	if count != 4 {
		t.Fatalf("deliveries=%d, want 4 (center only)", count)
	}
	if nw.Metrics().Messages != 4 {
		t.Fatalf("messages=%d", nw.Metrics().Messages)
	}
}

func TestExchangeK(t *testing.T) {
	g := graph.Path(3)
	nw := newNet(g)
	rounds := map[int]bool{}
	nw.ExchangeK(3,
		func(r int, v graph.NodeID, h graph.Half) (Word, bool) { return Word(r), true },
		func(r int, v graph.NodeID, h graph.Half, w Word) {
			rounds[r] = true
			if w != Word(r) {
				t.Errorf("round %d got word %d", r, w)
			}
		},
	)
	if nw.Rounds() != 3 || len(rounds) != 3 {
		t.Fatalf("rounds=%d seen=%d", nw.Rounds(), len(rounds))
	}
}

func TestDistributedBFSCostsEccentricity(t *testing.T) {
	g := graph.Grid(4, 5)
	nw := newNet(g)
	res := nw.BFS(0)
	ref := graph.BFS(g, 0)
	for v := range ref.Dist {
		if res.Dist[v] != ref.Dist[v] {
			t.Fatalf("dist[%d]=%d, want %d", v, res.Dist[v], ref.Dist[v])
		}
	}
	// BFS floods one extra round past the last frontier.
	ecc := 7 // (4-1)+(5-1)
	if nw.Rounds() < ecc || nw.Rounds() > ecc+1 {
		t.Fatalf("rounds=%d, want ~%d", nw.Rounds(), ecc)
	}
}

func TestChargeRoundsAndReset(t *testing.T) {
	nw := newNet(graph.Path(2))
	nw.ChargeRounds(10)
	nw.ChargeRounds(-5) // ignored
	if nw.Rounds() != 10 {
		t.Fatalf("rounds=%d", nw.Rounds())
	}
	nw.Reset()
	if nw.Rounds() != 0 || nw.Metrics().Messages != 0 {
		t.Fatal("reset did not clear metrics")
	}
}

func TestConvergecastSingleTreeSum(t *testing.T) {
	g := graph.Path(8)
	nw := newNet(g)
	tr := graph.BFSTree(g, 0)
	out, err := nw.ConvergecastMany([]*graph.Tree{tr},
		func(_ int, v graph.NodeID) Word { return Word(v) }, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 28 { // 0+...+7
		t.Fatalf("sum=%d, want 28", out[0])
	}
	// A path convergecast takes exactly height rounds.
	if nw.Rounds() != 7 {
		t.Fatalf("rounds=%d, want 7", nw.Rounds())
	}
}

func TestConvergecastSingletonTreeIsFree(t *testing.T) {
	g := graph.Path(3)
	nw := newNet(g)
	tr := graph.BFSTreeOfSubgraph(g, []graph.NodeID{1}, nil, 1)
	out, err := nw.ConvergecastMany([]*graph.Tree{tr},
		func(_ int, v graph.NodeID) Word { return 42 }, AggMin)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 42 || nw.Rounds() != 0 {
		t.Fatalf("out=%d rounds=%d", out[0], nw.Rounds())
	}
}

func TestConvergecastManySharedEdgesQueue(t *testing.T) {
	// k trees all containing the same 2-node path: the shared edge must
	// serialize, so rounds >= k.
	g := graph.Path(2)
	nw := newNet(g)
	const k = 5
	trees := make([]*graph.Tree, k)
	for i := range trees {
		trees[i] = graph.BFSTree(g, 0)
	}
	out, err := nw.ConvergecastMany(trees,
		func(t int, v graph.NodeID) Word { return Word(t + int(v)) }, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range out {
		if w != Word(i)+Word(i)+1 {
			t.Fatalf("tree %d sum=%d", i, w)
		}
	}
	if nw.Rounds() < k {
		t.Fatalf("rounds=%d; shared edge must serialize %d sends", nw.Rounds(), k)
	}
	if nw.Metrics().MaxEdgeLoad != k {
		t.Fatalf("max edge load=%d, want %d", nw.Metrics().MaxEdgeLoad, k)
	}
}

func TestBroadcastMany(t *testing.T) {
	g := graph.Grid(3, 3)
	nw := newNet(g)
	tr := graph.BFSTree(g, 4)
	seen := make(map[graph.NodeID]Word)
	err := nw.BroadcastMany([]*graph.Tree{tr}, []Word{99},
		func(_ int, v graph.NodeID, w Word) { seen[v] = w })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 9 {
		t.Fatalf("reached %d nodes", len(seen))
	}
	for v, w := range seen {
		if w != 99 {
			t.Fatalf("node %d got %d", v, w)
		}
	}
	if nw.Rounds() != tr.Height() {
		t.Fatalf("rounds=%d, want height %d", nw.Rounds(), tr.Height())
	}
}

func TestAggregateManyRoundTrip(t *testing.T) {
	g := graph.Grid(4, 4)
	nw := newNet(g)
	// Two disjoint parts: top two rows and bottom two rows.
	top := []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	bot := []graph.NodeID{8, 9, 10, 11, 12, 13, 14, 15}
	trees := []*graph.Tree{
		graph.BFSTreeOfSubgraph(g, top, nil, 0),
		graph.BFSTreeOfSubgraph(g, bot, nil, 8),
	}
	out, err := nw.AggregateMany(trees,
		func(_ int, v graph.NodeID) Word { return Word(v) }, AggMax)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 7 || out[1] != 15 {
		t.Fatalf("out=%v", out)
	}
}

func TestBroadcastManyBadArgs(t *testing.T) {
	nw := newNet(graph.Path(2))
	if err := nw.BroadcastMany(nil, nil, nil); err == nil {
		t.Fatal("want error for no trees")
	}
	tr := graph.BFSTree(nw.Graph(), 0)
	if err := nw.BroadcastMany([]*graph.Tree{tr}, nil,
		func(int, graph.NodeID, Word) {}); err == nil {
		t.Fatal("want error for mismatched root values")
	}
}

func TestRouteManySinglePath(t *testing.T) {
	g := graph.Path(5)
	nw := newNet(g)
	// Edge IDs on a path are 0..3 in order.
	arr, err := nw.RouteMany([]Packet{{Start: 0, Edges: []graph.EdgeID{0, 1, 2, 3}, Payload: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if arr[0] != 4 {
		t.Fatalf("arrival=%d, want 4", arr[0])
	}
	if nw.Rounds() != 4 {
		t.Fatalf("rounds=%d", nw.Rounds())
	}
}

func TestRouteManyCongestionSerializes(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g, Options{Seed: 3, DisableRandomDelays: true})
	pkts := make([]Packet, 6)
	for i := range pkts {
		pkts[i] = Packet{Start: 0, Edges: []graph.EdgeID{0}}
	}
	arr, err := nw.RouteMany(pkts)
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, a := range arr {
		if a > max {
			max = a
		}
	}
	if max != 6 {
		t.Fatalf("makespan=%d, want 6", max)
	}
}

func TestRouteManyEmptyPathAndBadPath(t *testing.T) {
	g := graph.Path(3)
	nw := newNet(g)
	arr, err := nw.RouteMany([]Packet{{Start: 1}})
	if err != nil || arr[0] != 0 {
		t.Fatalf("empty path: arr=%v err=%v", arr, err)
	}
	// Edge 1 joins nodes 1-2; starting at 0 it is not incident.
	if _, err := nw.RouteMany([]Packet{{Start: 0, Edges: []graph.EdgeID{1}}}); err == nil {
		t.Fatal("want error for non-incident path")
	}
}

func TestPacketDest(t *testing.T) {
	g := graph.Cycle(4)
	p := Packet{Start: 0, Edges: []graph.EdgeID{0, 1}}
	if d := p.Dest(g); d != 2 {
		t.Fatalf("dest=%d, want 2", d)
	}
}

func TestRandomDelaysAblation(t *testing.T) {
	// With many trees over a shared path, random delays must not change
	// correctness, only scheduling.
	g := graph.Path(10)
	for _, disable := range []bool{false, true} {
		nw := NewNetwork(g, Options{Seed: 7, DisableRandomDelays: disable})
		var trees []*graph.Tree
		for i := 0; i < 8; i++ {
			trees = append(trees, graph.BFSTree(g, 0))
		}
		out, err := nw.ConvergecastMany(trees,
			func(_ int, v graph.NodeID) Word { return 1 }, AggSum)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range out {
			if w != 10 {
				t.Fatalf("disable=%v: count=%d, want 10", disable, w)
			}
		}
	}
}

func TestDeterministicRounds(t *testing.T) {
	run := func() (int, []Word) {
		g := graph.Grid(5, 5)
		nw := NewNetwork(g, Options{Seed: 11})
		trees := []*graph.Tree{
			graph.BFSTree(g, 0),
			graph.BFSTree(g, 24),
			graph.BFSTree(g, 12),
		}
		out, err := nw.AggregateMany(trees,
			func(t int, v graph.NodeID) Word { return Word(v * (t + 1)) }, AggMax)
		if err != nil {
			t.Fatal(err)
		}
		return nw.Rounds(), out
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1 != r2 {
		t.Fatalf("nondeterministic rounds: %d vs %d", r1, r2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("nondeterministic output %d: %d vs %d", i, o1[i], o2[i])
		}
	}
}

// Property: convergecast sum over a BFS tree of a random connected graph
// equals the plain sum of values, and rounds are at least the tree height.
func TestConvergecastSumProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%30) + 2
		g := graph.RandomConnected(n, n/2, 1, seed)
		nw := NewNetwork(g, Options{Seed: seed})
		tr := graph.BFSTree(g, 0)
		out, err := nw.ConvergecastMany([]*graph.Tree{tr},
			func(_ int, v graph.NodeID) Word { return Word(v) + 1 }, AggSum)
		if err != nil {
			return false
		}
		want := Word(n*(n+1)) / 2
		return out[0] == want && nw.Rounds() >= tr.Height()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: routed packets always arrive, and the makespan is at least
// max(dilation, congestion) and at most dilation + total excess congestion.
func TestRouteBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Grid(4, 4)
		nw := NewNetwork(g, Options{Seed: seed})
		// All packets traverse the top row left to right: edge IDs of the
		// top row are the "right" edges of row 0.
		var rowEdges []graph.EdgeID
		v := 0
		for c := 0; c+1 < 4; c++ {
			for _, h := range g.Neighbors(v) {
				if h.To == v+1 {
					rowEdges = append(rowEdges, h.Edge)
					break
				}
			}
			v++
		}
		k := 5
		pkts := make([]Packet, k)
		for i := range pkts {
			pkts[i] = Packet{Start: 0, Edges: rowEdges}
		}
		arr, err := nw.RouteMany(pkts)
		if err != nil {
			return false
		}
		makespan := 0
		for _, a := range arr {
			if a > makespan {
				makespan = a
			}
		}
		dilation := len(rowEdges)
		congestion := k
		lower := dilation
		if congestion > lower {
			lower = congestion
		}
		// Upper bound: full serialization plus the random start delays
		// (each at most congestion-1).
		return makespan >= lower && makespan <= dilation+2*congestion
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeParallelEdges(t *testing.T) {
	// Parallel edges each carry an independent message per round (the
	// multigraph convention Lemma 17 needs).
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 1, 1)
	nw := newNet(g)
	var got []Word
	nw.Exchange(
		func(v graph.NodeID, h graph.Half) (Word, bool) {
			return Word(h.Edge), v == 0
		},
		func(v graph.NodeID, h graph.Half, w Word) { got = append(got, w) },
	)
	if len(got) != 2 {
		t.Fatalf("deliveries=%d, want 2 (one per parallel edge)", len(got))
	}
	if got[0] == got[1] {
		t.Fatal("parallel edges must be distinguishable")
	}
}

func TestRouteManyParallelEdges(t *testing.T) {
	g := graph.New(2)
	e0 := g.MustAddEdge(0, 1, 1)
	e1 := g.MustAddEdge(0, 1, 1)
	nw := NewNetwork(g, Options{Seed: 1, DisableRandomDelays: true})
	arr, err := nw.RouteMany([]Packet{
		{Start: 0, Edges: []graph.EdgeID{e0}},
		{Start: 0, Edges: []graph.EdgeID{e1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct parallel edges do not contend: both arrive in round 1.
	if arr[0] != 1 || arr[1] != 1 {
		t.Fatalf("arrivals=%v, want both 1", arr)
	}
}
