package core

import (
	"fmt"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/simtrace"
)

// CommConfig configures NewCommWith.
type CommConfig struct {
	Mode Mode
	Seed int64
	// Trace receives the run's instrumentation events (nil = Nop). The
	// collector is shared by every engine the comm builds (the CONGEST
	// network and, in hybrid mode, the NCC clique).
	Trace simtrace.Collector
	// Cancel is polled at engine round barriers (see
	// congest.Options.Cancel); nil disables cancellation.
	Cancel func() error
}

// NewComm builds the standard communication substrate for a mode.
func NewComm(g *graph.Graph, mode Mode, seed int64) (Comm, error) {
	return NewCommWith(g, CommConfig{Mode: mode, Seed: seed})
}

// NewCommWith builds the communication substrate for a config. Rounds paid
// during construction (the ModeCongest global BFS) are attributed to the
// "comm-setup" phase.
func NewCommWith(g *graph.Graph, cfg CommConfig) (Comm, error) {
	tr := simtrace.OrNop(cfg.Trace)
	tr.Begin("comm-setup")
	defer tr.End("comm-setup")
	switch cfg.Mode {
	case ModeUniversal:
		nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: cfg.Seed, Trace: tr, Cancel: cfg.Cancel})
		return NewCongestComm(nw, false)
	case ModeCongest:
		nw := congest.NewNetwork(g, congest.Options{Supported: false, Seed: cfg.Seed, Trace: tr, Cancel: cfg.Cancel})
		return NewCongestComm(nw, false)
	case ModeBaseline:
		// Supported, so the comparison against ModeUniversal isolates the
		// aggregation structure (global tree vs per-cluster) rather than
		// construction costs.
		nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: cfg.Seed, Trace: tr, Cancel: cfg.Cancel})
		return NewCongestComm(nw, true)
	case ModeHybrid:
		nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: cfg.Seed, Trace: tr, Cancel: cfg.Cancel})
		return NewHybridComm(nw)
	default:
		return nil, fmt.Errorf("core: unknown mode %q", cfg.Mode)
	}
}

// DefaultPrecond returns the standard preconditioner for a graph: the
// overlapping-cluster Schwarz preconditioner with ~√n-sized clusters and
// overlap 2 (the congested-PWA component of the solver).
func DefaultPrecond(g *graph.Graph, seed int64) Preconditioner {
	size := 4
	for (size+1)*(size+1) <= g.N() {
		size++
	}
	return NewSchwarzPrecond(size, 2, seed)
}

// SolveConfig configures SolveOnGraphWith.
type SolveConfig struct {
	Mode Mode
	Tol  float64
	Seed int64
	// Trace receives the run's instrumentation events (nil = Nop).
	Trace simtrace.Collector
}

// SolveOnGraph is the one-call entry point used by the CLIs, examples and
// benchmarks: build the mode's comm, solve L x = b to tolerance tol with
// the default preconditioner, and return both the result and the comm (for
// metric extraction).
func SolveOnGraph(g *graph.Graph, b []float64, mode Mode, tol float64, seed int64) (*Result, Comm, error) {
	return SolveOnGraphWith(g, b, SolveConfig{Mode: mode, Tol: tol, Seed: seed})
}

// SolveOnGraphWith is SolveOnGraph taking a full config (trace collector
// included).
func SolveOnGraphWith(g *graph.Graph, b []float64, cfg SolveConfig) (*Result, Comm, error) {
	c, err := NewCommWith(g, CommConfig{Mode: cfg.Mode, Seed: cfg.Seed, Trace: cfg.Trace})
	if err != nil {
		return nil, nil, err
	}
	res, err := Solve(c, b, Options{Tol: cfg.Tol, Precond: DefaultPrecond(g, cfg.Seed)})
	if err != nil {
		return nil, nil, err
	}
	return res, c, nil
}
