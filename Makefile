# Local and CI entry points — .github/workflows/ci.yml runs exactly these
# targets, so a green `make check` locally means a green CI run.

GO ?= go

.PHONY: check build vet lint test bench trace-smoke

check: build vet lint test trace-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# distlint enforces the determinism and metrics-integrity invariants the
# simulator's measured round counts rest on (see internal/lint).
lint:
	$(GO) run ./cmd/distlint ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# End-to-end instrumentation check: run one traced experiment, then render
# the trace with cmd/simtrace, which exits nonzero unless the per-phase
# round sums reproduce the engine totals exactly.
trace-smoke:
	$(GO) run ./cmd/experiments -quick -run E9a -trace $(CURDIR)/.trace-smoke.jsonl >/dev/null
	$(GO) run ./cmd/simtrace $(CURDIR)/.trace-smoke.jsonl >/dev/null
	rm -f $(CURDIR)/.trace-smoke.jsonl
	@echo trace-smoke: accounting identity holds
