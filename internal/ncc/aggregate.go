package ncc

import (
	"fmt"
	"sort"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/partwise"
)

// Aggregate solves a p-congested part-wise aggregation instance in the NCC
// model (Lemma 26): each part runs a binary aggregation tournament over its
// members (sorted by node ID), all parts batched level by level, then a
// symmetric broadcast tournament distributes the result back. Every level
// loads each node with at most p messages, so with per-node capacity
// Θ(log n) the total cost is O((p/log n + 1)·log n) = O(p + log n) rounds —
// which the engine measures rather than assumes.
//
// Parts need not be connected in any graph: NCC is a clique with capacity
// limits, so the Definition 13 connectivity requirement is irrelevant here.
func (nw *Network) Aggregate(inst *partwise.Instance, spec partwise.AggSpec) ([]congest.Word, error) {
	if nw.n == 0 {
		return nil, ErrNoNodes
	}
	if len(inst.Values) != len(inst.Parts) {
		return nil, partwise.ErrValuesMismatch
	}
	k := len(inst.Parts)
	members := make([][]graph.NodeID, k)
	acc := make([]map[graph.NodeID]congest.Word, k)
	maxSize := 0
	for i, p := range inst.Parts {
		if len(inst.Values[i]) != len(p) {
			return nil, partwise.ErrValuesMismatch
		}
		ms := append([]graph.NodeID(nil), p...)
		sort.Ints(ms)
		members[i] = ms
		acc[i] = make(map[graph.NodeID]congest.Word, len(p))
		for j, v := range p {
			if v < 0 || v >= nw.n {
				return nil, fmt.Errorf("ncc: %w: %d", graph.ErrNodeRange, v)
			}
			if _, dup := acc[i][v]; dup {
				return nil, fmt.Errorf("ncc: part %d repeats node %d", i, v)
			}
			acc[i][v] = inst.Values[i][j]
		}
		if len(p) > maxSize {
			maxSize = len(p)
		}
	}

	// Upward tournament: at level l, the member at position j (j odd
	// multiple of 2^l... precisely j ≡ 2^l (mod 2^{l+1})) sends its
	// accumulator to position j − 2^l.
	type route struct {
		part     int
		from, to int // member positions
	}
	nw.trace.Begin("ncc-up")
	for stride := 1; stride < maxSize; stride *= 2 {
		var msgs []Message
		var routes []route
		for i := range members {
			for j := stride; j < len(members[i]); j += 2 * stride {
				from, to := members[i][j], members[i][j-stride]
				msgs = append(msgs, Message{From: from, To: to, Payload: acc[i][from]})
				routes = append(routes, route{part: i, from: j, to: j - stride})
			}
		}
		if len(msgs) == 0 {
			continue
		}
		if _, err := nw.Deliver(msgs, func(m Message) {}); err != nil {
			nw.trace.End("ncc-up")
			return nil, err
		}
		// Apply combinations (payloads were captured at send time,
		// matching a real synchronous execution).
		for _, r := range routes {
			fromNode := members[r.part][r.from]
			toNode := members[r.part][r.to]
			acc[r.part][toNode] = spec.Fn(acc[r.part][toNode], acc[r.part][fromNode])
		}
	}
	nw.trace.End("ncc-up")
	out := make([]congest.Word, k)
	for i := range members {
		out[i] = acc[i][members[i][0]]
	}

	// Downward tournament: position 0 holds the aggregate; reverse the
	// strides so every member learns it.
	top := 1
	for top < maxSize {
		top *= 2
	}
	nw.trace.Begin("ncc-down")
	for stride := top / 2; stride >= 1; stride /= 2 {
		var msgs []Message
		for i := range members {
			for j := stride; j < len(members[i]); j += 2 * stride {
				msgs = append(msgs, Message{
					From:    members[i][j-stride],
					To:      members[i][j],
					Payload: out[i],
				})
			}
		}
		if len(msgs) == 0 {
			continue
		}
		if _, err := nw.Deliver(msgs, func(Message) {}); err != nil {
			nw.trace.End("ncc-down")
			return nil, err
		}
	}
	nw.trace.End("ncc-down")
	return out, nil
}
