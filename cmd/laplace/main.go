// Command laplace solves a Laplacian system L x = b on a generated graph in
// a chosen communication model and reports the measured round complexity
// and solution accuracy.
//
// Usage:
//
//	laplace -family grid -n 256 -mode universal -eps 1e-8
//	laplace -family expander -n 1024 -mode hybrid
//
// Families: path, grid, widegrid, tree, expander. Modes: universal,
// congest, baseline, hybrid. The right-hand side is a deterministic
// mean-zero vector (override the seed with -seed).
package main

import (
	"flag"
	"fmt"
	"os"

	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/linalg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "laplace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("laplace", flag.ContinueOnError)
	family := fs.String("family", "grid", "graph family: path|grid|widegrid|tree|expander")
	n := fs.Int("n", 256, "approximate node count")
	load := fs.String("load", "", "load the graph from an edge-list file instead of generating it")
	save := fs.String("save", "", "write the (generated) graph to an edge-list file and continue")
	mode := fs.String("mode", "universal", "model: universal|congest|baseline|hybrid")
	eps := fs.Float64("eps", 1e-8, "target relative residual")
	seed := fs.Int64("seed", 1, "rng seed")
	check := fs.Bool("check", false, "verify against the exact solver (O(n^3), small n only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := makeGraph(*family, *n)
	if err != nil {
		return err
	}
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		g, err = graph.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		*family = *load
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := graph.Write(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	b := linalg.RandomBVector(g.N(), *seed)
	res, comm, err := core.SolveOnGraph(g, b, core.Mode(*mode), *eps, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph:       %s (n=%d, m=%d, D≈%d)\n",
		*family, g.N(), g.M(), graph.DiameterApprox(g))
	fmt.Printf("model:       %s\n", comm.Name())
	fmt.Printf("eps:         %.1e\n", *eps)
	fmt.Printf("iterations:  %d\n", res.Iterations)
	fmt.Printf("rounds:      %d (setup %d, per-iteration %.1f)\n",
		res.Rounds, res.SetupRounds,
		float64(res.Rounds-res.SetupRounds)/float64(max(1, res.Iterations)))
	fmt.Printf("residual:    %.3e\n", res.Residual)
	if *check {
		l := linalg.NewLaplacian(g)
		xStar, err := l.SolveExact(b)
		if err != nil {
			return err
		}
		fmt.Printf("L-error:     %.3e (vs exact solution)\n", l.RelativeLError(res.X, xStar))
	}
	return nil
}

func makeGraph(family string, n int) (*graph.Graph, error) {
	for _, f := range graph.StandardFamilies() {
		if f.Name == family {
			return f.Make(n), nil
		}
	}
	return nil, fmt.Errorf("unknown family %q", family)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
