package lint

import (
	"go/ast"
	"go/types"
)

// metricsOwners maps the packages owning communication metrics to the named
// types whose fields may only be written inside them. All round/message
// accounting must flow through the charging primitives those packages export
// (Exchange, ChargeRounds, Deliver, ...).
var metricsOwners = map[string][]string{
	"distlap/internal/congest": {"Metrics", "Network"},
	"distlap/internal/ncc":     {"Network"},
}

// MetricsIntegrity returns the metricsintegrity analyzer: outside the owning
// package, any assignment, compound assignment or ++/-- whose target is a
// field of congest.Metrics (or of the congest/ncc Network engines), and any
// non-zero congest.Metrics composite literal, is flagged — such writes
// fabricate or corrupt measured round counts.
func MetricsIntegrity() *Analyzer {
	return &Analyzer{
		Name:     "metricsintegrity",
		Severity: SevError,
		Doc: "flags direct writes to congest/ncc metrics state outside the " +
			"owning package; accounting must go through charging primitives",
		Run: runMetricsIntegrity,
	}
}

func runMetricsIntegrity(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if d, ok := guardedWrite(p, lhs); ok {
						out = append(out, d)
					}
				}
			case *ast.IncDecStmt:
				if d, ok := guardedWrite(p, st.X); ok {
					out = append(out, d)
				}
			case *ast.UnaryExpr:
				// &m.Rounds etc. — taking the address of a metrics field
				// enables writes the analyzer cannot see; flag it too.
				if st.Op.String() == "&" {
					if d, ok := guardedWrite(p, st.X); ok {
						out = append(out, d)
					}
				}
			case *ast.CompositeLit:
				if d, ok := fabricatedMetrics(p, st); ok {
					out = append(out, d)
				}
			}
			return true
		})
	}
	return out
}

// guardedWrite reports whether expr is a selector (possibly through an
// index, e.g. nets[i].metrics.Rounds) whose base value is one of the guarded
// metrics types owned by another package.
func guardedWrite(p *Package, expr ast.Expr) (Diagnostic, bool) {
	e := expr
	for {
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ix.X
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return Diagnostic{}, false
	}
	owner, typeName := guardedType(p, p.Info.TypeOf(sel.X))
	if owner == "" || owner == p.Path {
		return Diagnostic{}, false
	}
	return diag(p, expr, "metricsintegrity",
		"write to %s.%s field %s outside %s fabricates measured communication costs; charge through the engine's primitives (Exchange/ChargeRounds/Deliver)",
		pkgBase(owner), typeName, sel.Sel.Name, owner), true
}

// fabricatedMetrics flags congest.Metrics{...} literals with at least one
// element constructed outside the owning package.
func fabricatedMetrics(p *Package, lit *ast.CompositeLit) (Diagnostic, bool) {
	if len(lit.Elts) == 0 {
		return Diagnostic{}, false
	}
	owner, typeName := guardedType(p, p.Info.TypeOf(lit))
	if owner == "" || owner == p.Path || typeName != "Metrics" {
		return Diagnostic{}, false
	}
	return diag(p, lit, "metricsintegrity",
		"constructing a non-zero %s.Metrics outside %s fabricates measured communication costs", pkgBase(owner), owner), true
}

// guardedType resolves t (through pointers) to an owning package path and
// type name if it is one of the guarded metrics types.
func guardedType(p *Package, t types.Type) (string, string) {
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	path := named.Obj().Pkg().Path()
	for _, name := range metricsOwners[path] {
		if named.Obj().Name() == name {
			return path, name
		}
	}
	return "", ""
}
