package simtrace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// failWriter accepts the first okWrites writes, then fails every later one.
type failWriter struct {
	okWrites int
	writes   int
	buf      bytes.Buffer
}

var errDiskFull = errors.New("disk full")

func (f *failWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.okWrites {
		return 0, errDiskFull
	}
	return f.buf.Write(p)
}

// shortWriter reports success but persists one byte fewer than asked.
type shortWriter struct {
	buf bytes.Buffer
}

func (s *shortWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	n, err := s.buf.Write(p[:len(p)-1])
	return n, err
}

// emitSome drives a small event stream into j.
func emitSome(j *JSONL) {
	j.Begin("solve")
	j.Messages(EngineCongest, 0, 2)
	j.NodeWords(EngineCongest, 0, 1, 2)
	j.Rounds(EngineCongest, 1)
	j.Gauge("pcg.residual", 1, 0.5, 1)
	j.End("solve")
}

// TestJSONLMidStreamErrorPoisonsSink pins the failure contract: once a
// write fails, no further bytes are written — in particular Flush must not
// append any aggregate records to a poisoned stream — and Flush surfaces
// the original error.
func TestJSONLMidStreamErrorPoisonsSink(t *testing.T) {
	fw := &failWriter{okWrites: 2}
	j := NewJSONL(fw)
	emitSome(j)
	err := j.Flush()
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("Flush error = %v, want errDiskFull", err)
	}
	got := fw.buf.String()
	if strings.Count(got, "\n") != 2 {
		t.Fatalf("expected exactly the 2 accepted stream lines, got:\n%s", got)
	}
	for _, aggregate := range []string{`"ev":"engine"`, `"ev":"phase"`, `"ev":"counter"`,
		`"ev":"loadhist"`, `"ev":"edge"`, `"ev":"nodehist"`, `"ev":"node"`, `"ev":"untracked"`} {
		if strings.Contains(got, aggregate) {
			t.Errorf("poisoned sink wrote aggregate record %s:\n%s", aggregate, got)
		}
	}
	// The sink must stay poisoned: later events and Flushes are no-ops
	// returning the original error.
	emitSome(j)
	if err := j.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("second Flush = %v, want errDiskFull", err)
	}
	if fw.buf.String() != got {
		t.Error("poisoned sink wrote more bytes after the failure")
	}
}

// TestJSONLErrorDuringFlushSuppressesAggregates fails the writer only once
// the stream portion is fully written: the aggregate block is buffered and
// written atomically, so the output must contain no partial summary.
func TestJSONLErrorDuringFlushSuppressesAggregates(t *testing.T) {
	j := NewJSONL(io.Discard)
	emitSome(j)
	// Count the stream writes so the failure lands exactly on Flush's
	// single aggregate write.
	streamWrites := 3 // begin + end + gauge
	fw := &failWriter{okWrites: streamWrites}
	j2 := NewJSONL(fw)
	emitSome(j2)
	if j2.err != nil {
		t.Fatalf("stream writes failed early: %v", j2.err)
	}
	if err := j2.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Flush = %v, want errDiskFull", err)
	}
	if got := fw.buf.String(); strings.Contains(got, `"ev":"engine"`) {
		t.Errorf("aggregate block partially written:\n%s", got)
	}
}

// TestJSONLShortWriteSurfaces pins that a Write reporting n < len(p) with a
// nil error poisons the sink with io.ErrShortWrite instead of silently
// truncating the trace.
func TestJSONLShortWriteSurfaces(t *testing.T) {
	sw := &shortWriter{}
	j := NewJSONL(sw)
	j.Begin("solve")
	if !errors.Is(j.err, io.ErrShortWrite) {
		t.Fatalf("sink error = %v, want io.ErrShortWrite", j.err)
	}
	if err := j.Flush(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Flush = %v, want io.ErrShortWrite", err)
	}
	if strings.Contains(sw.buf.String(), `"ev":"phase"`) {
		t.Error("aggregates written after a short write")
	}
}

// TestJSONLSeriesTailIdentity pins the series exclusive-attribution rule:
// the per-boundary deltas plus the Flush tail record sum exactly to the
// engine totals.
func TestJSONLSeriesTailIdentity(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONLSeries(&buf)
	j.Begin("phase-a")
	j.Messages(EngineCongest, 0, 3)
	j.Rounds(EngineCongest, 1)
	j.Messages(EngineCongest, 1, 4)
	j.Rounds(EngineCongest, 2)
	j.End("phase-a")
	j.Messages(EngineCongest, 2, 5) // after the last boundary: tail record
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	wantLines := []string{
		`{"ev":"series","round":1,"path":"phase-a","engine":"congest","rounds":1,"messages":3,"maxload":3}`,
		`{"ev":"series","round":3,"path":"phase-a","engine":"congest","rounds":2,"messages":4,"maxload":4}`,
		`{"ev":"series","round":3,"path":"","engine":"","rounds":0,"messages":5,"maxload":5}`,
	}
	for _, w := range wantLines {
		if !strings.Contains(got, w+"\n") {
			t.Errorf("missing series record %s in:\n%s", w, got)
		}
	}
	// A second Flush emits no duplicate tail.
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), wantLines[2]) != 1 {
		t.Error("tail series record duplicated on re-Flush")
	}
}
