// Package core implements the paper's primary contribution: a distributed
// Laplacian solver whose every communication step is expressed through the
// (congested) part-wise aggregation primitive, so that its round complexity
// is (#iterations) × Q(p) exactly as in Assumption 27 / Theorem 28.
//
// The solver is a distributed preconditioned conjugate-gradient iteration
// (see DESIGN.md §1 for why this parameterization substitutes for the full
// FOCS'21 recursion): per iteration it performs one local matrix-vector
// exchange, O(1) batched global inner products, and — under the Schwarz
// preconditioner — one congested concurrent tree-sweep over overlapping
// clusters. Swapping the Comm implementation yields the paper's three
// models:
//
//   - CongestComm (universal mode) — shortcuts/local trees, Theorem 2;
//   - CongestComm (naive mode) — everything over one global BFS tree, the
//     existentially-optimal baseline in the style of [18];
//   - HybridComm — local edges for MatVec, NCC for global aggregation,
//     Theorem 3.
//
// Determinism obligations: iteration order, reduction order and
// floating-point evaluation are fixed, all communication flows through the
// Comm (whose round counts come from the engines underneath), and child
// seeds for randomized phases (cluster covers, MPX shifts) are derived via
// seedderive — so solver trajectories and measured rounds are
// bit-reproducible from (graph, b, options).
package core

import (
	"errors"
	"fmt"
	"sort"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/ncc"
	"distlap/internal/partwise"
	"distlap/internal/simtrace"
)

// Comm abstracts the communication substrate the distributed solver runs
// on. All methods physically move data through the underlying engines and
// accumulate measured rounds.
type Comm interface {
	Name() string
	Graph() *graph.Graph
	// Rounds returns the total rounds charged so far across the comm's
	// underlying engines.
	Rounds() int
	// Tracer returns the trace collector the comm's engines emit into
	// (never nil; simtrace.Nop when untraced). Solver layers use it to
	// open phase spans around the primitives they invoke.
	Tracer() simtrace.Collector
	// CollectMetrics snapshots the accumulated communication cost of the
	// comm's engines.
	CollectMetrics() Metrics
	// MatVecLaplacian computes y = L x with one neighbor-exchange round.
	MatVecLaplacian(x []float64) ([]float64, error)
	// GlobalSums returns the global sums of the given per-node vectors,
	// batched into one pipelined aggregation.
	GlobalSums(vecs ...[]float64) ([]float64, error)
	// ClusterTrees materializes aggregation trees for (possibly
	// overlapping) node clusters; the choice of tree shape is what
	// separates the universal solver from the baseline.
	ClusterTrees(clusters [][]graph.NodeID) ([]*graph.Tree, error)
	// TreeUpDown runs, concurrently over all trees, an upward subtree-sum
	// sweep of leaf values followed by a downward transforming sweep, and
	// returns each tree's node potentials. rootVal seeds the downward pass
	// from the root's subtree total; down computes a child's potential
	// from its parent's potential and the child's subtree sum.
	//
	// The result is dense: row t is indexed by node ID, defined only at
	// trees[t].Members (other slots hold stale scratch). Rows alias the
	// comm's pooled sweep buffer and are valid until the next TreeUpDown on
	// this comm (TreeTotals and the other primitives do not disturb them);
	// callers needing longer retention must copy.
	TreeUpDown(
		trees []*graph.Tree,
		leaf func(t int, v graph.NodeID) float64,
		rootVal func(t int, total float64) float64,
		down func(t int, parent, child graph.NodeID, parentVal, childSubtree float64) float64,
	) ([][]float64, error)
	// TreeTotals runs, concurrently over all trees, an upward sum of leaf
	// values followed by a broadcast of each root total back to the members,
	// returning the per-tree totals. It moves exactly the same sends through
	// exactly the same schedule as a TreeUpDown whose downward transform is
	// the identity — same pushes, same deliveries, same RNG draws — so the
	// two are charge-equivalent; TreeTotals just skips materializing
	// per-node potentials nobody reads.
	TreeTotals(trees []*graph.Tree, leaf func(t int, v graph.NodeID) float64) ([]float64, error)
}

// fsum is float64 summation over bit-packed words.
func fsum(a, b congest.Word) congest.Word {
	return congest.FloatWord(congest.WordFloat(a) + congest.WordFloat(b))
}

// FloatSum is the float64-summation aggregation spec (identity +0.0) used
// by every numerical aggregation in the solver.
var FloatSum = partwise.AggSpec{Name: "fsum", Fn: fsum, Identity: congest.FloatWord(0)}

// CongestComm implements Comm on the CONGEST engine. Like the engine it
// wraps, a comm is request-private and single-goroutine, so the pooled
// buffers below (MatVec output, sweep potentials, per-call tree lists) are
// reused across iterations without synchronization; none of them carries
// information between calls.
type CongestComm struct {
	nw    *congest.Network
	naive bool

	globalTree *graph.Tree

	mvY      []float64      // MatVecLaplacian output (pooled)
	gsTrees  []*graph.Tree  // GlobalSums per-call tree list (pooled)
	udOut    [][]float64    // TreeUpDown row views (pooled)
	udArena  []float64      // TreeUpDown dense potentials, k·n (pooled)
	rootVals []congest.Word // per-call downward seeds (pooled)
}

var _ Comm = (*CongestComm)(nil)

// NewCongestComm builds a CONGEST comm. naive selects the baseline mode in
// which all aggregation structures are (Steiner subtrees of) one global BFS
// tree. The global BFS tree is paid for once here when the network is not
// in Supported mode.
func NewCongestComm(nw *congest.Network, naive bool) (*CongestComm, error) {
	g := nw.Graph()
	if g.N() == 0 {
		return nil, errors.New("core: empty graph")
	}
	center := graph.ApproxCenter(g)
	var tree *graph.Tree
	if nw.Supported() {
		tree = graph.BFSTree(g, center)
	} else {
		res := nw.BFS(center)
		tree = &graph.Tree{
			Root: center, Parent: res.Parent, ParentEdge: res.ParentEdge,
			Depth: res.Dist, Members: res.Order,
		}
	}
	if len(tree.Members) != g.N() {
		return nil, errors.New("core: graph disconnected")
	}
	return newCongestCommWithTree(nw, naive, tree), nil
}

// newCongestCommWithTree wraps a network with an already-built global tree —
// the per-request constructor of a prepared Instance. It never charges
// rounds: the tree (and, in ModeCongest, the BFS that paid for it) belongs
// to the instance's one-time setup, which is the whole amortization story.
func newCongestCommWithTree(nw *congest.Network, naive bool, tree *graph.Tree) *CongestComm {
	return &CongestComm{nw: nw, naive: naive, globalTree: tree}
}

// Name implements Comm.
func (c *CongestComm) Name() string {
	if c.naive {
		return "congest-naive"
	}
	return "congest-universal"
}

// Graph implements Comm.
func (c *CongestComm) Graph() *graph.Graph { return c.nw.Graph() }

// Rounds implements Comm.
func (c *CongestComm) Rounds() int { return c.nw.Rounds() }

// Tracer implements Comm.
func (c *CongestComm) Tracer() simtrace.Collector { return c.nw.Trace() }

// CollectMetrics implements Comm.
func (c *CongestComm) CollectMetrics() Metrics {
	return Metrics{Congest: CongestEngineMetrics(c.nw), Phases: PhasesOf(c.nw.Trace())}
}

// Network exposes the underlying engine (for metrics in experiments).
func (c *CongestComm) Network() *congest.Network { return c.nw }

// GlobalTree exposes the global BFS tree (used by the tree preconditioner).
func (c *CongestComm) GlobalTree() *graph.Tree { return c.globalTree }

// MatVecLaplacian implements Comm: one exchange round in which every node
// sends its x value to each neighbor and accumulates w·(x_v − x_u). Edge
// weights come from the engine's CSR topology (a flat array lookup per
// received word) and the output vector is pooled — valid until the next
// MatVecLaplacian on this comm.
func (c *CongestComm) MatVecLaplacian(x []float64) ([]float64, error) {
	g := c.nw.Graph()
	if len(x) != g.N() {
		return nil, fmt.Errorf("core: x has %d entries for n=%d", len(x), g.N())
	}
	if cap(c.mvY) < len(x) {
		c.mvY = make([]float64, len(x))
	}
	y := c.mvY[:len(x)]
	for i := range y {
		y[i] = 0
	}
	ew := c.nw.Topology().EdgeW
	c.nw.Exchange(
		func(v graph.NodeID, h graph.Half) (congest.Word, bool) {
			return congest.FloatWord(x[v]), true
		},
		func(v graph.NodeID, h graph.Half, w congest.Word) {
			xu := congest.WordFloat(w)
			y[v] += ew[h.Edge] * (x[v] - xu)
		},
	)
	return y, nil
}

// GlobalSums implements Comm: b vectors aggregate as b concurrent passes
// over the global tree (pipelined by the engine: cost ≈ height + b).
func (c *CongestComm) GlobalSums(vecs ...[]float64) ([]float64, error) {
	if len(vecs) == 0 {
		return nil, nil
	}
	trees := c.treeList(len(vecs))
	out, err := c.nw.AggregateMany(trees, func(t int, v graph.NodeID) congest.Word {
		return congest.FloatWord(vecs[t][v])
	}, fsum)
	if err != nil {
		return nil, err
	}
	sums := make([]float64, len(out))
	for i, w := range out {
		sums[i] = congest.WordFloat(w)
	}
	return sums, nil
}

// treeList returns a pooled k-element slice of the global tree.
func (c *CongestComm) treeList(k int) []*graph.Tree {
	if cap(c.gsTrees) < k {
		c.gsTrees = make([]*graph.Tree, k)
	}
	trees := c.gsTrees[:k]
	for i := range trees {
		trees[i] = c.globalTree
	}
	return trees
}

// ClusterTrees implements Comm. Universal mode: a BFS tree inside each
// cluster (height ≤ cluster diameter). Naive mode: the cluster's Steiner
// subtree of the global BFS tree — tall and overlapping near the root, the
// existential baseline's behaviour.
func (c *CongestComm) ClusterTrees(clusters [][]graph.NodeID) ([]*graph.Tree, error) {
	g := c.nw.Graph()
	trees := make([]*graph.Tree, len(clusters))
	for i, cl := range clusters {
		if len(cl) == 0 {
			return nil, fmt.Errorf("core: cluster %d empty", i)
		}
		if c.naive {
			trees[i] = steinerTreeOfGlobal(g, c.globalTree, cl)
			continue
		}
		tr := graph.BFSTreeOfSubgraph(g, cl, nil, cl[0])
		if len(tr.Members) != len(cl) {
			return nil, fmt.Errorf("core: cluster %d not induced-connected", i)
		}
		trees[i] = tr
	}
	return trees, nil
}

// steinerTreeOfGlobal returns the subtree of the global tree spanning the
// terminals (terminals plus all their tree ancestors up to the meeting
// node), rooted at the shallowest included node.
func steinerTreeOfGlobal(g *graph.Graph, global *graph.Tree, terminals []graph.NodeID) *graph.Tree {
	include := make(map[graph.NodeID]bool)
	for _, t := range terminals {
		v := t
		for v != -1 && !include[v] {
			include[v] = true
			v = global.Parent[v]
		}
	}
	// Root = minimum-depth included node; scan in sorted node order so a
	// depth tie can never be broken by map iteration order.
	steiner := make([]graph.NodeID, 0, len(include))
	for v := range include {
		steiner = append(steiner, v)
	}
	sort.Ints(steiner)
	root := terminals[0]
	for _, v := range steiner {
		if global.Depth[v] < global.Depth[root] {
			root = v
		}
	}
	n := g.N()
	tr := &graph.Tree{
		Root:       root,
		Parent:     make([]graph.NodeID, n),
		ParentEdge: make([]graph.EdgeID, n),
		Depth:      make([]int, n),
	}
	for i := 0; i < n; i++ {
		tr.Parent[i] = -1
		tr.ParentEdge[i] = -1
		tr.Depth[i] = -1
	}
	// Members in global BFS order restricted to included nodes keeps
	// parents before children.
	for _, v := range global.Members {
		if !include[v] {
			continue
		}
		if v == root {
			tr.Depth[v] = 0
		} else {
			p := global.Parent[v]
			tr.Parent[v] = p
			tr.ParentEdge[v] = global.ParentEdge[v]
			tr.Depth[v] = tr.Depth[p] + 1
		}
		tr.Members = append(tr.Members, v)
	}
	return tr
}

// TreeUpDown implements Comm via the engine's concurrent sweep primitives.
// The returned rows are dense, pooled views (see the interface contract):
// entries outside trees[t].Members are stale scratch.
func (c *CongestComm) TreeUpDown(
	trees []*graph.Tree,
	leaf func(t int, v graph.NodeID) float64,
	rootVal func(t int, total float64) float64,
	down func(t int, parent, child graph.NodeID, parentVal, childSubtree float64) float64,
) ([][]float64, error) {
	roots, sub, err := c.nw.ConvergecastAll(trees,
		func(t int, v graph.NodeID) congest.Word {
			return congest.FloatWord(leaf(t, v))
		}, fsum)
	if err != nil {
		return nil, err
	}
	k := len(trees)
	if cap(c.rootVals) < k {
		c.rootVals = make([]congest.Word, k)
	}
	rootVals := c.rootVals[:k]
	for t := range trees {
		rootVals[t] = congest.FloatWord(rootVal(t, congest.WordFloat(roots[t])))
	}
	n := c.nw.Graph().N()
	if cap(c.udArena) < k*n {
		c.udArena = make([]float64, k*n)
	}
	if cap(c.udOut) < k {
		c.udOut = make([][]float64, k)
	}
	arena := c.udArena[:k*n]
	out := c.udOut[:k]
	for t := range out {
		out[t] = arena[t*n : (t+1)*n]
	}
	err = c.nw.DownSweepMany(trees, rootVals,
		func(t int, parent, child graph.NodeID, parentVal congest.Word) congest.Word {
			return congest.FloatWord(down(t, parent, child,
				congest.WordFloat(parentVal),
				congest.WordFloat(sub[t][child])))
		},
		func(t int, v graph.NodeID, w congest.Word) {
			out[t][v] = congest.WordFloat(w)
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TreeTotals implements Comm: one convergecast plus one broadcast per tree,
// charge-equivalent to an identity-transform TreeUpDown (the engine moves
// the same words over the same schedule; only the unread per-node
// materialization is skipped).
func (c *CongestComm) TreeTotals(
	trees []*graph.Tree,
	leaf func(t int, v graph.NodeID) float64,
) ([]float64, error) {
	out, err := c.nw.AggregateMany(trees, func(t int, v graph.NodeID) congest.Word {
		return congest.FloatWord(leaf(t, v))
	}, fsum)
	if err != nil {
		return nil, err
	}
	totals := make([]float64, len(out))
	for t, w := range out {
		totals[t] = congest.WordFloat(w)
	}
	return totals, nil
}

// HybridComm implements Comm for the HYBRID model (Theorem 3): local
// operations (MatVec, cluster sweeps) run on the CONGEST engine; global
// aggregation runs on the NCC engine in O(log n) rounds regardless of
// topology. Rounds are charged as the sum of both engines (a conservative
// upper bound on the interleaved execution).
type HybridComm struct {
	local  *CongestComm
	global *ncc.Network

	// Cached whole-graph identity aggregation instance for GlobalSums: the
	// identity part is built once and shared by every vector slot; the
	// per-slot value buffers are pooled. All request-private, like the comm.
	gsIdent []graph.NodeID
	gsInst  partwise.Instance
}

var _ Comm = (*HybridComm)(nil)

// NewHybridComm builds a hybrid comm over the same node set. The NCC engine
// shares the CONGEST network's trace collector, so a single trace covers
// both engines' charges.
func NewHybridComm(nw *congest.Network) (*HybridComm, error) {
	local, err := NewCongestComm(nw, false)
	if err != nil {
		return nil, err
	}
	return &HybridComm{
		local:  local,
		global: ncc.NewNetworkWith(nw.Graph().N(), nw.Trace()),
	}, nil
}

// Name implements Comm.
func (h *HybridComm) Name() string { return "hybrid" }

// Graph implements Comm.
func (h *HybridComm) Graph() *graph.Graph { return h.local.Graph() }

// Rounds implements Comm.
func (h *HybridComm) Rounds() int { return h.local.Rounds() + h.global.Rounds() }

// Tracer implements Comm.
func (h *HybridComm) Tracer() simtrace.Collector { return h.local.Tracer() }

// CollectMetrics implements Comm.
func (h *HybridComm) CollectMetrics() Metrics {
	nccM := NCCEngineMetrics(h.global)
	m := h.local.CollectMetrics()
	m.NCC = &nccM
	return m
}

// NCC exposes the global engine (metrics).
func (h *HybridComm) NCC() *ncc.Network { return h.global }

// MatVecLaplacian implements Comm (local edges).
func (h *HybridComm) MatVecLaplacian(x []float64) ([]float64, error) {
	return h.local.MatVecLaplacian(x)
}

// GlobalSums implements Comm via one NCC aggregation with one whole-graph
// part per vector (Lemma 26 with p = len(vecs)). The identity parts and
// value buffers are pooled on the comm, so a steady-state reduction
// allocates only its small result slice.
func (h *HybridComm) GlobalSums(vecs ...[]float64) ([]float64, error) {
	if len(vecs) == 0 {
		return nil, nil
	}
	n := h.Graph().N()
	if len(h.gsIdent) != n {
		h.gsIdent = make([]graph.NodeID, n)
		for v := 0; v < n; v++ {
			h.gsIdent[v] = v
		}
		h.gsInst = partwise.Instance{}
	}
	inst := &h.gsInst
	for len(inst.Parts) < len(vecs) {
		inst.Parts = append(inst.Parts, h.gsIdent)
		inst.Values = append(inst.Values, make([]congest.Word, n))
	}
	inst.Parts = inst.Parts[:len(vecs)]
	inst.Values = inst.Values[:len(vecs)]
	for i, vec := range vecs {
		vals := inst.Values[i]
		for v := 0; v < n; v++ {
			vals[v] = congest.FloatWord(vec[v])
		}
	}
	out, err := h.global.Aggregate(inst, FloatSum)
	if err != nil {
		return nil, err
	}
	sums := make([]float64, len(out))
	for i, w := range out {
		sums[i] = congest.WordFloat(w)
	}
	return sums, nil
}

// ClusterTrees implements Comm (local, universal shape).
func (h *HybridComm) ClusterTrees(clusters [][]graph.NodeID) ([]*graph.Tree, error) {
	return h.local.ClusterTrees(clusters)
}

// TreeUpDown implements Comm (local edges).
func (h *HybridComm) TreeUpDown(
	trees []*graph.Tree,
	leaf func(t int, v graph.NodeID) float64,
	rootVal func(t int, total float64) float64,
	down func(t int, parent, child graph.NodeID, parentVal, childSubtree float64) float64,
) ([][]float64, error) {
	return h.local.TreeUpDown(trees, leaf, rootVal, down)
}

// TreeTotals implements Comm (local edges).
func (h *HybridComm) TreeTotals(
	trees []*graph.Tree,
	leaf func(t int, v graph.NodeID) float64,
) ([]float64, error) {
	return h.local.TreeTotals(trees, leaf)
}
