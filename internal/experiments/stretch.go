package experiments

import (
	"distlap/internal/congest"
	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/linalg"
	"distlap/internal/simtrace"
)

// E14 — the low-stretch preconditioning substrate (the tree family behind
// the sequential Laplacian-paradigm solvers the paper builds on, cf. the
// FOCS'21 base [18] and the parallel-solvers line [6, 44]): measured
// average stretch of BFS vs MST vs MPX/AKPW trees, and the effect of the
// tree choice on the distributed tree-preconditioned solve.
func E14(cfg Config) (*Table, error) {
	quick := cfg.Quick
	fams := []namedGraph{
		{name: "grid", mk: func() *graph.Graph { return graph.Grid(14, 14) }},
		{name: "torus", mk: func() *graph.Graph { return graph.Torus(10, 10) }},
		{name: "expander", mk: func() *graph.Graph { return graph.RandomRegular(128, 4, 3) }},
		{name: "weighted", mk: func() *graph.Graph { return graph.RandomConnected(100, 200, 50, 7) }},
	}
	if quick {
		fams = fams[:2]
	}
	t := &Table{
		ID:     "E14",
		Title:  "low-stretch trees and tree preconditioning (solver substrate)",
		Header: []string{"family", "stretch BFS", "stretch MST", "stretch LST", "iters BFS-tree", "iters LST-tree"},
		Notes:  "stretch = mean weighted detour resistance; iters = PCG iterations with the tree preconditioner at eps=1e-8",
	}
	var pts []point
	for _, f := range fams {
		pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
			g := f.mk()
			bfs := graph.BFSTree(g, graph.ApproxCenter(g))
			mstIDs, _ := graph.MST(g)
			mst := graph.TreeFromEdges(g, mstIDs, graph.ApproxCenter(g))
			lst := graph.LowStretchTree(g, 1)

			b := linalg.RandomBVector(g.N(), 5)
			iters := func(pre core.Preconditioner) (int, error) {
				nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 1, Trace: tr})
				c, err := core.NewCongestComm(nw, false)
				if err != nil {
					return 0, err
				}
				res, err := core.Solve(c, b, core.Options{Tol: 1e-8, Precond: pre})
				if err != nil {
					return 0, err
				}
				return res.Iterations, nil
			}
			itBFS, err := iters(&core.TreePrecond{})
			if err != nil {
				return nil, err
			}
			itLST, err := iters(&core.TreePrecond{LowStretch: true, Seed: 1})
			if err != nil {
				return nil, err
			}
			return row(
				f.name,
				ftoa(graph.AverageStretch(g, bfs)),
				ftoa(graph.AverageStretch(g, mst)),
				ftoa(graph.AverageStretch(g, lst)),
				itoa(itBFS), itoa(itLST),
			), nil
		})
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
