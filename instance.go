package distlap

import (
	"context"
	"fmt"

	"distlap/internal/apps"
	"distlap/internal/congest"
	"distlap/internal/core"
	"distlap/internal/faultinject"
	"distlap/internal/partwise"
	"distlap/internal/seedderive"
	"distlap/internal/simtrace"
)

// Instance is a prepared per-graph solver instance: the expensive, per-graph
// half of every solve — global aggregation tree, shortcut-style cluster
// covers and cluster trees, preconditioner state, spectral bounds — built
// exactly once by Solver.Prepare and shared by every request. Its methods
// run only the cheap per-request iteration against the cached state, which
// is the amortization the paper's serving story rests on: one Prepare, then
// many Solve/Flow/MST calls each paying iteration cost alone.
//
// A prepared Instance is immutable and safe for concurrent use: concurrent
// requests share only read-only state; each request runs on its own
// freshly-seeded private engine, and trace collectors are per-request
// single-writer (attach one per call via WithRequestTrace — never share a
// collector across in-flight requests).
//
// Request determinism: each request's engine seed is derived from the
// instance seed and the request's identity via internal/seedderive, so
// identical requests against instances prepared with the same Solver
// configuration return byte-identical results — across processes, restarts
// and daemons. WithRequestSeed pins the engine seed exactly for callers
// that manage derivation themselves.
type Instance struct {
	mode  Mode
	eps   float64
	seed  int64
	inner *core.Instance
}

// Prepare runs the full one-time instance pipeline for g under the Solver's
// configuration — communication substrate (including the charged BFS in
// ModeCongest), preconditioner cluster covers and trees, or the Chebyshev
// spectral bounds — and returns the reusable Instance. The Solver's trace
// collector (if any) observes setup under a "prepare" phase span; request
// traces are attached per call on the Instance's methods.
//
// ctx cancels preparation between engine rounds. The Solver itself is not
// captured: changing the Solver afterwards does not affect the Instance.
func (sv *Solver) Prepare(ctx context.Context, g *Graph) (*Instance, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	inner, err := core.PrepareInstance(ctx, g, core.PrepareConfig{
		Mode:      sv.mode,
		Tol:       sv.eps,
		Seed:      sv.seed,
		Trace:     sv.trace,
		Chebyshev: sv.cheb,
		Lo:        sv.lo,
		Hi:        sv.hi,
	})
	if err != nil {
		return nil, err
	}
	return &Instance{mode: sv.mode, eps: inner.Tol(), seed: sv.seed, inner: inner}, nil
}

// ReqOption configures one request against a prepared Instance.
type ReqOption func(*reqCfg)

type reqCfg struct {
	eps     float64
	seed    int64
	hasSeed bool
	trace   simtrace.Collector
	faults  *faultinject.Plan
	retries int
}

// WithRequestTrace attaches a trace collector to this request only.
// Collectors are single-writer: use a distinct collector per in-flight
// request (the Instance never shares one across requests).
func WithRequestTrace(c Collector) ReqOption {
	return func(rc *reqCfg) { rc.trace = c }
}

// WithRequestEps overrides the solve tolerance for this request only.
func WithRequestEps(eps float64) ReqOption {
	return func(rc *reqCfg) { rc.eps = eps }
}

// WithRequestSeed pins this request's engine seed exactly, replacing the
// default derivation (seedderive over the instance seed and the request
// identity). Callers pinning seeds are responsible for deriving unrelated
// streams for unrelated requests — reach for internal/seedderive's scheme,
// not ad-hoc arithmetic.
func WithRequestSeed(seed int64) ReqOption {
	return func(rc *reqCfg) { rc.seed = seed; rc.hasSeed = true }
}

// request resolves the per-request configuration: explicit options over the
// derived defaults. phase/idx identify the request for seed derivation.
func (in *Instance) request(phase string, idx int64, opts []ReqOption) reqCfg {
	rc := reqCfg{eps: in.eps}
	for _, o := range opts {
		o(&rc)
	}
	if !rc.hasSeed {
		rc.seed = seedderive.Derive(in.seed, phase, idx)
	}
	return rc
}

func (in *Instance) coreRequest(ctx context.Context, rc reqCfg) core.Request {
	return core.Request{
		Tol: rc.eps, Seed: rc.seed, Trace: rc.trace, Cancel: ctx.Err,
		Faults: rc.faults, Retries: rc.retries,
	}
}

// Graph returns the instance's graph (shared, read-only — do not mutate a
// graph that has live instances prepared over it).
func (in *Instance) Graph() *Graph { return in.inner.Graph() }

// Mode returns the communication model the instance was prepared in.
func (in *Instance) Mode() Mode { return in.mode }

// Seed returns the base seed the instance was prepared with.
func (in *Instance) Seed() int64 { return in.seed }

// SetupMetrics reports the communication cost Prepare paid (zero rounds in
// the Supported modes, the charged BFS in ModeCongest) — the amortized
// numerator of the serving story.
func (in *Instance) SetupMetrics() Metrics { return in.inner.SetupMetrics() }

// SizeBytes estimates the resident size of the cached instance state for
// cache budgeting (cmd/distlapd's byte-budget LRU).
func (in *Instance) SizeBytes() int64 { return in.inner.SizeBytes() }

// Solve solves L x = b against the cached instance state, paying only
// iteration cost: its phase trace contains no construction phase (those ran
// exactly once, under Prepare). b must sum to approximately zero; the
// solution is mean-centered. ctx cancels between engine rounds.
func (in *Instance) Solve(ctx context.Context, b []float64, opts ...ReqOption) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rc := in.request("instance/solve", 0, opts)
	return in.inner.Solve(b, in.coreRequest(ctx, rc))
}

// SolveBatch solves L x_i = b_i for every right-hand side against the one
// cached preconditioner, charging setup cost zero times — the multi-RHS
// amortization a daemon batches requests for. Right-hand side i uses the
// request seed derived at index i (so SolveBatch(bs)[0] matches Solve(bs[0])
// exactly); WithRequestSeed pins one seed for all of them. Results are
// returned in input order; the first error aborts the batch.
func (in *Instance) SolveBatch(ctx context.Context, bs [][]float64, opts ...ReqOption) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]*Result, len(bs))
	for i, b := range bs {
		rc := in.request("instance/solve", int64(i), opts)
		res, err := in.inner.Solve(b, in.coreRequest(ctx, rc))
		if err != nil {
			return nil, fmt.Errorf("distlap: batch rhs %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// Flow computes the unit s-t electrical flow through one per-request solve
// against the cached instance state.
func (in *Instance) Flow(ctx context.Context, s, t int, opts ...ReqOption) (*ElectricalFlow, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g := in.inner.Graph()
	if err := apps.CheckSTPair(g, s, t); err != nil {
		return nil, err
	}
	rc := in.request("instance/flow", int64(s)*int64(g.N())+int64(t), opts)
	res, err := in.inner.Solve(apps.UnitDemand(g.N(), s, t), in.coreRequest(ctx, rc))
	if err != nil {
		return nil, err
	}
	return apps.FlowFromPotentials(g, s, t, res), nil
}

// EffectiveResistance returns the s-t effective resistance through one
// per-request solve against the cached instance state.
func (in *Instance) EffectiveResistance(ctx context.Context, s, t int, opts ...ReqOption) (float64, error) {
	fl, err := in.Flow(ctx, s, t, opts...)
	if err != nil {
		return 0, err
	}
	return fl.Resistance, nil
}

// MST computes an MST distributedly (Borůvka over part-wise aggregation in
// Supported-CONGEST) on a request-private network over the shared graph.
func (in *Instance) MST(ctx context.Context, opts ...ReqOption) (res *MSTResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer congest.CatchCancel(&err)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rc := in.request("instance/mst", 0, opts)
	nw := in.inner.Network(core.Request{Seed: rc.seed, Trace: rc.trace, Cancel: ctx.Err, Faults: rc.faults})
	return apps.MST(nw, partwise.NewShortcutSolver())
}

// AggregateParts solves a p-congested part-wise aggregation instance on a
// request-private network over the shared graph (the paper's layered-graph
// reduction).
func (in *Instance) AggregateParts(ctx context.Context, inst *PartwiseInstance, spec AggSpec, opts ...ReqOption) (res *AggregateResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer congest.CatchCancel(&err)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rc := in.request("instance/aggregate", 0, opts)
	nw := in.inner.Network(core.Request{Seed: rc.seed, Trace: rc.trace, Cancel: ctx.Err, Faults: rc.faults})
	out, err := partwise.NewLayeredSolver(rc.seed).Solve(nw, inst, spec)
	if err != nil {
		return nil, err
	}
	return &AggregateResult{
		Values: out,
		Metrics: Metrics{
			Congest: core.CongestEngineMetrics(nw),
			Phases:  core.PhasesOf(nw.Trace()),
		},
	}, nil
}
