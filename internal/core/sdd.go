package core

import (
	"errors"
	"fmt"
	"math"

	"distlap/internal/graph"
	"distlap/internal/linalg"
)

// SolveSDD solves the symmetric diagonally-dominant system
//
//	(L_g + diag(extra)) x = b
//
// by the standard grounded-Laplacian reduction: augment g with a ground
// node z joined to every node v with extra[v] > 0 by an edge of weight
// extra[v]; then L' restricted to the original nodes with x_z pinned to 0
// is exactly L + diag(extra). The augmented Laplacian system is solved
// distributedly in the requested mode (the ground node is simulated by the
// network like any other node; it adds 1 to n and extra edges, preserving
// the round-complexity shape), and the solution is shifted so the ground
// reads zero.
//
// extra must be nonnegative with at least one positive entry (otherwise
// the system is a plain Laplacian — use Solve). Unlike Laplacian systems,
// b may have any sum.
func SolveSDD(g *graph.Graph, extra []int64, b []float64, mode Mode, tol float64, seed int64) (*Result, error) {
	return SolveSDDWith(g, extra, b, SolveConfig{Mode: mode, Tol: tol, Seed: seed})
}

// SolveSDDWith is SolveSDD taking a full config (trace collector included).
func SolveSDDWith(g *graph.Graph, extra []int64, b []float64, cfg SolveConfig) (*Result, error) {
	n := g.N()
	if len(extra) != n || len(b) != n {
		return nil, fmt.Errorf("core: extra/b have %d/%d entries for n=%d", len(extra), len(b), n)
	}
	anyPositive := false
	for v, d := range extra {
		if d < 0 {
			return nil, fmt.Errorf("core: extra[%d] = %d is negative", v, d)
		}
		if d > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		return nil, errors.New("core: extra diagonal is all zero; use Solve for pure Laplacians")
	}
	aug := g.Clone()
	z := aug.AddNode()
	for v, d := range extra {
		if d > 0 {
			if _, err := aug.AddEdge(v, z, d); err != nil {
				return nil, err
			}
		}
	}
	bAug := make([]float64, n+1)
	copy(bAug, b)
	sum := 0.0
	for _, w := range b {
		sum += w
	}
	bAug[z] = -sum

	res, _, err := SolveOnGraphWith(aug, bAug, cfg)
	if err != nil {
		return nil, err
	}
	ground := res.X[z]
	x := make([]float64, n)
	for v := range x {
		x[v] = res.X[v] - ground
	}
	res.X = x
	return res, nil
}

// SDDResidual returns ‖(L + diag(extra)) x − b‖₂ / ‖b‖₂ (verification
// helper for SolveSDD).
func SDDResidual(g *graph.Graph, extra []int64, x, b []float64) (float64, error) {
	l := linalg.NewLaplacian(g)
	lx, err := l.MatVec(x)
	if err != nil {
		return 0, err
	}
	if len(extra) != len(x) || len(b) != len(x) {
		return 0, linalg.ErrDimension
	}
	num, den := 0.0, 0.0
	for v := range x {
		r := lx[v] + float64(extra[v])*x[v] - b[v]
		num += r * r
		den += b[v] * b[v]
	}
	if den == 0 { //distlint:allow floateq exact-zero guard before dividing by the grounded column sum
		den = 1
	}
	return math.Sqrt(num / den), nil
}
