// Package wordtrunc is a distlint fixture: value-changing conversions into
// congest.Word alongside the sanctioned encodings the analyzer must accept.
package wordtrunc

import "distlap/internal/congest"

// FloatCast truncates the fractional part: flagged.
func FloatCast(f float64) congest.Word {
	return congest.Word(f) // violation: float -> Word truncation
}

// UnsignedCast can wrap negative: flagged.
func UnsignedCast(u uint64) congest.Word {
	return congest.Word(u) // violation: uint64 -> Word reinterpretation
}

// Packed hand-packs two fields into one word: flagged.
func Packed(a, b int) congest.Word {
	return congest.Word(a)<<20 | congest.Word(b) // violation: unchecked packing
}

// Justified is the suppressed form of a deliberate bit-level encoding.
func Justified(u uint64) congest.Word {
	//distlint:allow wordtrunc fixture: exact round-trip, values are 48-bit hashes
	return congest.Word(u)
}

// IntCast widens a signed int: never flagged.
func IntCast(i int) congest.Word {
	return congest.Word(i)
}

// ConstCast converts a constant exactly: never flagged.
func ConstCast() congest.Word {
	return congest.Word(7)
}

// Sentinel is a constant shift expression, not a payload: never flagged.
const Sentinel = congest.Word(1) << 40

// ViaFloatWord uses the sanctioned encoder: never flagged.
func ViaFloatWord(f float64) congest.Word {
	return congest.FloatWord(f)
}

// PlainShift shifts a Word-typed variable (no conversion): never flagged —
// checked packing helpers inside congest are built from these.
func PlainShift(w congest.Word) congest.Word {
	return w << 3
}
