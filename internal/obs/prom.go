package obs

// Prometheus text exposition (version 0.0.4) over a Snapshot, with one
// repo-specific extension: families are written deterministic-first, then
// a marker comment, then the wall-clock families. Prometheus scrapers
// ignore comments, so the split costs nothing operationally — but it lets
// the determinism tests (and `distlapd -selftest`) cut the exposition at
// the marker and byte-compare the deterministic section across daemons,
// the same gating discipline simtrace JSONL and BENCH metrics live under.
//
// Byte stability: families sort by name, series by label value, floats
// format via strconv.FormatFloat(v, 'g', -1, 64) (shortest round-trip
// form, like simtrace gauges), so identical snapshots marshal to identical
// bytes.

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WallClockMarker separates the deterministic exposition section from the
// wall-clock one. Everything above the marker must be byte-identical
// across daemons serving the same request sequence; everything below may
// not (latency, uptime).
const WallClockMarker = "# --- wall-clock section: values below vary with real time and are not determinism-gated ---"

// WriteProm writes the snapshot in Prometheus text exposition format:
// deterministic families first, then WallClockMarker, then the rest. The
// marker is written even when one side is empty, so consumers can always
// split on it.
func WriteProm(w io.Writer, snap Snapshot) error {
	for _, f := range snap.Families {
		if f.Deterministic {
			if err := writeFamily(w, f); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(w, WallClockMarker+"\n"); err != nil {
		return err
	}
	for _, f := range snap.Families {
		if !f.Deterministic {
			if err := writeFamily(w, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// DeterministicSection renders only the deterministic half of the
// exposition (everything WriteProm emits above the marker) — the
// byte-comparable surface of a daemon.
func DeterministicSection(snap Snapshot) string {
	var b strings.Builder
	for _, f := range snap.Families {
		if f.Deterministic {
			_ = writeFamily(&b, f) // strings.Builder writes cannot fail
		}
	}
	return b.String()
}

func writeFamily(w io.Writer, f FamilySnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, f.Help, f.Name, f.Kind); err != nil {
		return err
	}
	for _, s := range f.Series {
		var err error
		if f.Kind == KindHistogram {
			err = writeHistogramSeries(w, f, s)
		} else {
			_, err = fmt.Fprintf(w, "%s%s %d\n", f.Name, labelPart(f.LabelKey, s.LabelValue, "", ""), s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogramSeries emits the cumulative le-labeled buckets plus the
// _sum and _count conventions.
func writeHistogramSeries(w io.Writer, f FamilySnapshot, s SeriesSnapshot) error {
	var cum int64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.Name, labelPart(f.LabelKey, s.LabelValue, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.Name, labelPart(f.LabelKey, s.LabelValue, "", ""), formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		f.Name, labelPart(f.LabelKey, s.LabelValue, "", ""), s.Count)
	return err
}

// labelPart renders the {k="v",...} label block from up to two pairs,
// omitting empty keys; it returns "" when no labels apply.
func labelPart(k1, v1, k2, v2 string) string {
	var parts []string
	if k1 != "" {
		parts = append(parts, k1+`="`+escapeLabel(v1)+`"`)
	}
	if k2 != "" {
		parts = append(parts, k2+`="`+escapeLabel(v2)+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeLabel applies the exposition-format label escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float in the shortest round-trip form, matching
// the simtrace gauge convention; infinities use the exposition spelling.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
