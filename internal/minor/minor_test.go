package minor

import (
	"errors"
	"testing"

	"distlap/internal/graph"
)

func TestCertificateValidate(t *testing.T) {
	g := graph.Grid(3, 3)
	good := &Certificate{BranchSets: [][]graph.NodeID{{0, 1}, {3, 4}}}
	if err := good.Validate(g); err != nil {
		t.Fatal(err)
	}
	overlap := &Certificate{BranchSets: [][]graph.NodeID{{0, 1}, {1, 2}}}
	if err := overlap.Validate(g); !errors.Is(err, ErrOverlap) {
		t.Fatalf("err=%v", err)
	}
	disc := &Certificate{BranchSets: [][]graph.NodeID{{0, 8}}}
	if err := disc.Validate(g); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err=%v", err)
	}
	empty := &Certificate{BranchSets: [][]graph.NodeID{{}}}
	if err := empty.Validate(g); err == nil {
		t.Fatal("want error for empty branch set")
	}
}

func TestDensityTriangleMinor(t *testing.T) {
	// Contract the 6-cycle's antipodal pairs into 3 branch sets -> K3.
	g := graph.Cycle(6)
	cert := &Certificate{BranchSets: [][]graph.NodeID{{0, 1}, {2, 3}, {4, 5}}}
	if err := cert.Validate(g); err != nil {
		t.Fatal(err)
	}
	if d := cert.Density(g); d != 1.0 { // K3: 3 edges / 3 nodes
		t.Fatalf("density=%v, want 1", d)
	}
}

func TestObservation21DensityScaling(t *testing.T) {
	for _, s := range []int{4, 6, 8, 10} {
		lay, cert, err := Observation21(s)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(s) / 2 // K_{s,s}: s^2 edges over 2s branch sets
		got := cert.Density(lay.G)
		if got < want {
			t.Fatalf("s=%d: certified density %v < %v", s, got, want)
		}
		// Base grid minor density is O(1): any minor of a planar graph is
		// planar, so density < 3; check the greedy heuristic on the base
		// stays small while the layered certificate grows.
		base := graph.Grid(s, s)
		baseCert := GreedyDenseMinor(base, 2)
		if err := baseCert.Validate(base); err != nil {
			t.Fatal(err)
		}
		if bd := baseCert.Density(base); bd >= 3 {
			t.Fatalf("s=%d: planar base certified density %v >= 3 (impossible)", s, bd)
		}
	}
}

func TestGreedyDenseMinorValid(t *testing.T) {
	g := graph.RandomRegular(60, 4, 3)
	for _, rounds := range []int{0, 1, 3} {
		cert := GreedyDenseMinor(g, rounds)
		if err := cert.Validate(g); err != nil {
			t.Fatalf("rounds=%d: %v", rounds, err)
		}
		if cert.Density(g) < 0 {
			t.Fatal("negative density")
		}
	}
}

func TestDensityEmptyCertificate(t *testing.T) {
	g := graph.Path(3)
	cert := &Certificate{}
	if cert.Density(g) != 0 {
		t.Fatal("empty certificate density")
	}
}
