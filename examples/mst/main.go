// Universally-optimal MST: Borůvka phases over part-wise aggregation on a
// weighted planar-style network (the classic client of the low-congestion
// shortcut framework, paper §1). Compares the measured distributed round
// count against the graph diameter and verifies the tree against Kruskal.
//
//	go run ./examples/mst
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distlap"
)

func main() {
	g := buildWeightedGrid(12, 12, 42)
	fmt.Printf("network: %d nodes, %d weighted edges\n", g.N(), g.M())

	res, err := distlap.MinimumSpanningTree(g, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed MST: weight %d, %d edges\n", res.Weight, len(res.Edges))
	fmt.Printf("Borůvka phases:  %d\n", res.Phases)
	fmt.Printf("CONGEST rounds:  %d\n", res.Rounds)

	// Cross-check against the sequential reference.
	wantEdges, wantWeight := sequentialMST(g)
	if res.Weight != wantWeight || len(res.Edges) != wantEdges {
		log.Fatalf("MST mismatch: distributed %d/%d vs sequential %d/%d",
			res.Weight, len(res.Edges), wantWeight, wantEdges)
	}
	fmt.Println("matches the sequential Kruskal reference ✓")
}

// buildWeightedGrid returns a grid with deterministic pseudo-random weights
// in [1, 100].
func buildWeightedGrid(rows, cols int, seed int64) *distlap.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := distlap.NewGraph(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), 1+rng.Int63n(100))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), 1+rng.Int63n(100))
			}
		}
	}
	return g
}

// sequentialMST is a tiny Kruskal for verification.
func sequentialMST(g *distlap.Graph) (edges int, weight int64) {
	type edge struct {
		u, v int
		w    int64
	}
	var es []edge
	for _, e := range g.Edges() {
		es = append(es, edge{u: e.U, v: e.V, w: e.Weight})
	}
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].w < es[j-1].w; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range es {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			edges++
			weight += e.w
		}
	}
	return edges, weight
}
