package linalg

import (
	"fmt"
	"math"
)

// Preconditioner applies M⁻¹ to a residual. Implementations must be
// symmetric positive definite on the mean-zero subspace.
type Preconditioner interface {
	Apply(r []float64) ([]float64, error)
	Name() string
}

// IdentityPreconditioner is plain CG.
type IdentityPreconditioner struct{}

var _ Preconditioner = IdentityPreconditioner{}

// Apply implements Preconditioner.
func (IdentityPreconditioner) Apply(r []float64) ([]float64, error) { return Copy(r), nil }

// Name implements Preconditioner.
func (IdentityPreconditioner) Name() string { return "identity" }

// JacobiPreconditioner scales by the inverse weighted degrees.
type JacobiPreconditioner struct {
	InvDiag []float64
}

var _ Preconditioner = (*JacobiPreconditioner)(nil)

// NewJacobi builds the Jacobi preconditioner for l.
func NewJacobi(l *Laplacian) *JacobiPreconditioner {
	d := l.Degrees()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v > 0 {
			inv[i] = 1 / v
		}
	}
	return &JacobiPreconditioner{InvDiag: inv}
}

// Apply implements Preconditioner.
func (p *JacobiPreconditioner) Apply(r []float64) ([]float64, error) {
	if len(r) != len(p.InvDiag) {
		return nil, ErrDimension
	}
	out := make([]float64, len(r))
	for i := range r {
		out[i] = r[i] * p.InvDiag[i]
	}
	return out, nil
}

// Name implements Preconditioner.
func (*JacobiPreconditioner) Name() string { return "jacobi" }

// PCGResult reports a preconditioned-CG run.
type PCGResult struct {
	X          []float64
	Iterations int
	Residual   float64 // final relative 2-norm residual
}

// PCG solves L x = b to relative residual tol with preconditioner m,
// working entirely in the mean-zero subspace. It is the sequential
// reference for the distributed solver in internal/core: the distributed
// version performs exactly these operations through communication
// primitives.
func PCG(l *Laplacian, b []float64, m Preconditioner, tol float64, maxIter int) (*PCGResult, error) {
	n := l.N()
	if len(b) != n {
		return nil, ErrDimension
	}
	if maxIter <= 0 {
		maxIter = 20*n + 100
	}
	bb := Copy(b)
	CenterMean(bb)
	bNorm := Norm2(bb)
	x := make([]float64, n)
	if bNorm == 0 { //distlint:allow floateq exact-zero guard: b == 0 has the exact solution x == 0
		return &PCGResult{X: x}, nil
	}
	r := Copy(bb)
	z, err := m.Apply(r)
	if err != nil {
		return nil, err
	}
	CenterMean(z)
	p := Copy(z)
	rz := Dot(r, z)
	for it := 1; it <= maxIter; it++ {
		lp, err := l.MatVec(p)
		if err != nil {
			return nil, err
		}
		plp := Dot(p, lp)
		if plp <= 0 || math.IsNaN(plp) {
			return nil, fmt.Errorf("%w: non-positive curvature %g", ErrNoConverge, plp)
		}
		alpha := rz / plp
		AXPY(alpha, p, x)
		AXPY(-alpha, lp, r)
		res := Norm2(r) / bNorm
		if res <= tol {
			CenterMean(x)
			return &PCGResult{X: x, Iterations: it, Residual: res}, nil
		}
		z, err = m.Apply(r)
		if err != nil {
			return nil, err
		}
		CenterMean(z)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, fmt.Errorf("%w after %d iterations (residual %g)",
		ErrNoConverge, maxIter, Norm2(r)/bNorm)
}

// Chebyshev solves L x = b by Chebyshev iteration given eigenvalue bounds
// [lo, hi] on the nonzero spectrum; it is the iteration whose count scales
// as sqrt(hi/lo)·log(1/ε), the log(1/ε) shape Theorem 28 charges per call.
func Chebyshev(l *Laplacian, b []float64, lo, hi, tol float64, maxIter int) (*PCGResult, error) {
	n := l.N()
	if len(b) != n {
		return nil, ErrDimension
	}
	if lo <= 0 || hi < lo {
		return nil, fmt.Errorf("linalg: bad spectral bounds [%g, %g]", lo, hi)
	}
	if maxIter <= 0 {
		maxIter = 20*n + 100
	}
	bb := Copy(b)
	CenterMean(bb)
	bNorm := Norm2(bb)
	x := make([]float64, n)
	if bNorm == 0 { //distlint:allow floateq exact-zero guard: b == 0 has the exact solution x == 0
		return &PCGResult{X: x}, nil
	}
	theta := (hi + lo) / 2
	delta := (hi - lo) / 2
	r := Copy(bb)
	var p []float64
	alpha := 0.0
	for it := 1; it <= maxIter; it++ {
		switch it {
		case 1:
			p = Copy(r)
			alpha = 1 / theta
		case 2:
			beta := 0.5 * (delta * alpha) * (delta * alpha)
			alpha = 1 / (theta - beta/alpha)
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
		default:
			beta := (delta * alpha / 2) * (delta * alpha / 2)
			alpha = 1 / (theta - beta/alpha)
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
		}
		AXPY(alpha, p, x)
		lx, err := l.MatVec(x)
		if err != nil {
			return nil, err
		}
		r = Sub(bb, lx)
		if res := Norm2(r) / bNorm; res <= tol {
			CenterMean(x)
			return &PCGResult{X: x, Iterations: it, Residual: res}, nil
		}
	}
	return nil, fmt.Errorf("%w after %d Chebyshev iterations", ErrNoConverge, maxIter)
}

// SpectralBounds returns safe bounds on the nonzero Laplacian spectrum of a
// connected graph: hi = 2·max weighted degree (Gershgorin), lo = a crude
// algebraic-connectivity lower bound w_min·(2/(n·diamW))-ish; we use the
// standard λ₂ ≥ 4/(n·D_w) bound with D_w ≤ n·w_max... kept deliberately
// conservative: lo = 1/(n²·w_max⁻¹-free form) — callers who need tight
// bounds should estimate them; these are safe defaults for Chebyshev.
func SpectralBounds(l *Laplacian) (lo, hi float64) {
	maxDeg := 0.0
	for _, v := range l.CSR().WDeg {
		if v > maxDeg {
			maxDeg = v
		}
	}
	n := float64(l.N())
	if n < 2 {
		return 1, 1
	}
	hi = 2 * maxDeg
	// λ₂ >= 4 / (n * diam_w); diam_w <= n * max resistance-ish. Use the
	// very safe 1/n² scaling with the minimum edge weight.
	minW := math.Inf(1)
	for _, w := range l.CSR().EdgeW {
		if w < minW {
			minW = w
		}
	}
	if math.IsInf(minW, 1) {
		minW = 1
	}
	lo = 4 * minW / (n * n)
	return lo, hi
}
