package main

import "testing"

func TestRunSelectedQuick(t *testing.T) {
	if err := run([]string{"-run", "E2,E4", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("want unknown-experiment error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("want flag error")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallel(t *testing.T) {
	if err := run([]string{"-run", "E2", "-quick", "-parallel", "3"}); err != nil {
		t.Fatal(err)
	}
}
