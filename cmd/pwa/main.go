// Command pwa generates a p-congested part-wise aggregation instance on a
// chosen graph family and compares the three CONGEST solvers plus the NCC
// solver on it — direct access to the paper's central primitive
// (Definitions 4/13, Lemmas 15–18, 26).
//
// Usage:
//
//	pwa -family grid -n 64 -p 2
//	pwa -family expander -n 256 -p 8 -parts 16
package main

import (
	"flag"
	"fmt"
	"os"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/ncc"
	"distlap/internal/partwise"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pwa:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pwa", flag.ContinueOnError)
	family := fs.String("family", "grid", "graph family: path|grid|widegrid|tree|expander")
	n := fs.Int("n", 64, "approximate node count")
	p := fs.Int("p", 2, "node congestion (parts per node)")
	partsPer := fs.Int("parts", 4, "parts per congestion layer")
	seed := fs.Int64("seed", 1, "rng seed")
	supported := fs.Bool("supported", true, "Supported-CONGEST (topology known, construction free)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *graph.Graph
	for _, f := range graph.StandardFamilies() {
		if f.Name == *family {
			g = f.Make(*n)
		}
	}
	if g == nil {
		return fmt.Errorf("unknown family %q", *family)
	}
	inst := partwise.RandomCongestedInstance(g, *p, *partsPer, *seed)
	if err := inst.Validate(g); err != nil {
		return err
	}
	want := inst.Expected(partwise.Min)
	fmt.Printf("graph: %s n=%d m=%d D≈%d | instance: k=%d parts, congestion p=%d\n\n",
		*family, g.N(), g.M(), graph.DiameterApprox(g), len(inst.Parts), inst.Congestion())
	fmt.Printf("%-14s %10s %10s\n", "solver", "rounds", "correct")

	check := func(out []congest.Word) string {
		for i := range want {
			if out[i] != want[i] {
				return "NO"
			}
		}
		return "yes"
	}
	congestSolvers := []partwise.Solver{
		partwise.NaiveGlobalSolver{},
		partwise.NewLayeredSolver(*seed),
	}
	if inst.Congestion() <= 1 {
		congestSolvers = append(congestSolvers, partwise.NewShortcutSolver())
	}
	for _, solver := range congestSolvers {
		nw := congest.NewNetwork(g, congest.Options{Supported: *supported, Seed: *seed})
		out, err := solver.Solve(nw, inst, partwise.Min)
		if err != nil {
			return fmt.Errorf("%s: %w", solver.Name(), err)
		}
		fmt.Printf("%-14s %10d %10s\n", solver.Name(), nw.Rounds(), check(out))
	}
	nnw := ncc.NewNetwork(g.N())
	out, err := nnw.Aggregate(inst, partwise.Min)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %10d %10s   (capacity %d msgs/node/round)\n",
		"ncc", nnw.Rounds(), check(out), nnw.Capacity())
	return nil
}
