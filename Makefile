# Local and CI entry points — .github/workflows/ci.yml runs exactly these
# targets, so a green `make check` locally means a green CI run.

GO ?= go

.PHONY: check build vet lint lint-json race test alloc-check bench bench-smoke bench-compare bench-wall microbench trace-smoke folded-artifact daemon-smoke chaos-smoke metrics-smoke

check: build vet lint test alloc-check trace-smoke daemon-smoke chaos-smoke metrics-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# distlint enforces the determinism, model-soundness, concurrency and
# metrics-integrity invariants the simulator's measured round counts rest on
# (see internal/lint; `go run ./cmd/distlint -list` names all eleven
# analyzers).
lint:
	$(GO) run ./cmd/distlint ./...

# Machine-readable lint report: the same run serialized as a versioned,
# byte-stable JSON schema (suppressed findings included, with their
# //distlint:allow justifications). CI archives distlint.json as an
# artifact so suppression inventory can be diffed across commits.
lint-json:
	$(GO) run ./cmd/distlint -json ./... > distlint.json
	@echo lint-json: wrote distlint.json

test:
	$(GO) test -race ./...

# Allocation-regression budgets for the pooled hot paths (PERFORMANCE.md):
# steady-state Exchange at 0 allocs/round, AggregateMany at 1 alloc/call,
# a PCG iteration within its fixed budget. The tests are `//go:build !race`
# because the race runtime changes allocation counts, so this is a separate
# plain-runtime pass; `make test` covers the same code for correctness.
alloc-check:
	$(GO) test -run 'Allocs' ./internal/congest ./internal/core

# Focused race-detector pass over the packages sanctioned to run
# goroutines — the experiments worker pool, the simtrace writer, the
# distlapd serving layer and its obs metrics registry — plus the root
# package, whose prepared-Instance concurrency tests hammer one shared
# instance from parallel solvers; -count=2 shakes out ordering flakes a
# single run can miss. The goroutine analyzer guarantees concurrency
# cannot creep in anywhere else, which is what keeps this narrow target a
# sound whole-repo concurrency gate.
race:
	$(GO) test -race -count=2 . ./internal/experiments/... ./internal/simtrace/... ./internal/service/... ./internal/obs/...

# Suite benchmark: full sweeps through cmd/bench, emitting the
# machine-readable trajectory file BENCH_local.json (schema in README
# "Benchmarking"). LABEL and PARALLEL may be overridden:
#   make bench LABEL=mybox PARALLEL=8
LABEL ?= local
PARALLEL ?= 0

bench:
	$(GO) run ./cmd/bench -label $(LABEL) -parallel $(PARALLEL)

# CI-sized benchmark: quick sweeps, plus the sequential parity oracle
# (-verify re-runs everything at -parallel 1 and requires byte-identical
# tables and traces). Fails if parallelism perturbs any result.
bench-smoke:
	$(GO) run ./cmd/bench -quick -label ci -parallel 4 -verify

# Regression gate: quick sweeps compared against the committed baseline
# BENCH_seed_quick.json. Exits nonzero if rounds, messages, or max edge
# load regress beyond 10% on any experiment; wall time is reported but
# never gated. Regenerate the baselines after an intentional perf change:
#   go run ./cmd/bench -quick -label seed_quick -parallel 1 -out BENCH_seed_quick.json
#   go run ./cmd/bench -label seed -parallel 1 -out BENCH_seed.json
bench-compare:
	$(GO) run ./cmd/bench -quick -label ci -parallel 4 -compare BENCH_seed_quick.json

# Advisory wall-time report: quick sweeps with per-experiment wall deltas
# against the committed quick baseline. Wall time varies by machine and
# load, so this target never fails — it exists to make wall drift visible
# in CI logs, not to gate on it (PERFORMANCE.md "How to profile a
# regression").
bench-wall:
	$(GO) run ./cmd/bench -quick -label ci -parallel 4 -wall BENCH_seed_quick.json

# Go microbenchmarks (per-experiment testing.B harness in bench_test.go).
microbench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# End-to-end instrumentation check: run one traced experiment, then render
# the trace with cmd/simtrace, which exits nonzero unless the per-phase
# round sums reproduce the engine totals exactly.
trace-smoke:
	$(GO) run ./cmd/experiments -quick -run E9a -trace $(CURDIR)/.trace-smoke.jsonl >/dev/null
	$(GO) run ./cmd/simtrace $(CURDIR)/.trace-smoke.jsonl >/dev/null
	rm -f $(CURDIR)/.trace-smoke.jsonl
	@echo trace-smoke: accounting identity holds

# Chaos smoke test: the fault-injection tier C1–C2 (quick sweeps) must be
# byte-identical across a repeat run and across worker-pool widths — the
# determinism contract of internal/faultinject (DESIGN.md §9). Any drift
# in fault decisions, retransmission scheduling or the recovery ladder
# shows up as a cmp failure here.
chaos-smoke:
	$(GO) run ./cmd/experiments -chaos -quick -parallel 4 > $(CURDIR)/.chaos-a.txt 2>/dev/null
	$(GO) run ./cmd/experiments -chaos -quick -parallel 4 > $(CURDIR)/.chaos-b.txt 2>/dev/null
	$(GO) run ./cmd/experiments -chaos -quick -parallel 1 > $(CURDIR)/.chaos-c.txt 2>/dev/null
	cmp $(CURDIR)/.chaos-a.txt $(CURDIR)/.chaos-b.txt
	cmp $(CURDIR)/.chaos-a.txt $(CURDIR)/.chaos-c.txt
	rm -f $(CURDIR)/.chaos-a.txt $(CURDIR)/.chaos-b.txt $(CURDIR)/.chaos-c.txt
	@echo chaos-smoke: faulty runs are byte-identical across repeats and widths

# Daemon smoke test: distlapd's -selftest drives the whole request cycle
# (load → list → solve → multi-RHS batch → flow → mst → evict → 404)
# in-process and exits nonzero on any mismatch, including a divergence
# between a single solve and batch entry 0's derived-seed replay.
daemon-smoke:
	$(GO) run ./cmd/distlapd -selftest

# Serving-metrics smoke test: the same -selftest run also verifies the
# metric identities (per-endpoint request counters sum to the served
# total and the status-class counters, latency histogram counts equal
# per-endpoint request counts, cache hits + misses equal instance
# lookups) and that the deterministic /metrics section is byte-stable
# under re-scrape. Kept as its own target so a metrics regression is
# named in CI output even though the binary run is shared.
metrics-smoke:
	$(GO) run ./cmd/distlapd -selftest >/dev/null
	@echo metrics-smoke: serving-metric identities hold

# Flamegraph folded stacks for the solver experiment: a round-resolved
# trace of E9b rendered as `path weight` lines (feed into flamegraph.pl or
# speedscope). CI uploads the result as an artifact.
folded-artifact:
	$(GO) run ./cmd/experiments -quick -run E9b -series -trace $(CURDIR)/.e9b.jsonl >/dev/null
	$(GO) run ./cmd/simtrace -folded $(CURDIR)/.e9b.jsonl > $(CURDIR)/e9b-folded.txt
	rm -f $(CURDIR)/.e9b.jsonl
	@echo folded-artifact: wrote e9b-folded.txt
