package floateq

// IsNaN uses self-inequality: flagged (use math.IsNaN instead).
func IsNaN(x float64) bool {
	return x != x
}

// Eq32 compares float32 values exactly: flagged.
func Eq32(a, b float32) bool {
	return a == b
}
