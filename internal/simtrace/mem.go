package simtrace

import "sort"

// PhaseStat is the exclusive (own-charge) summary of one phase path across
// all of its instances: rounds and messages charged while this exact path
// was the innermost open span. The empty path "" collects charges made with
// no span open ("untracked").
type PhaseStat struct {
	Path     string // slash-joined span names, e.g. "solve/precond/sweep"
	Count    int    // number of span instances opened at this path
	Rounds   int    // rounds attributed to this path (exclusive of children)
	Messages int64  // word-messages attributed to this path (exclusive)
}

// EdgeLoad is the total word count carried by one directed edge of one
// engine over the traced execution.
type EdgeLoad struct {
	Engine string
	Edge   int // directed edge id (2*edge for U->V, 2*edge+1 for V->U)
	Words  int64
}

// NodeLoad is the total word count attributed to one node of one engine
// over the traced execution (each delivery charges both endpoints).
// NodeLoadHistogram reuses the type with Node holding the power-of-two
// bucket index instead of a node id.
type NodeLoad struct {
	Engine string
	Node   int
	Words  int64
}

// CounterStat is one named counter's accumulated value.
type CounterStat struct {
	Name  string
	Value int64
}

// GaugeSample is one observation of a named telemetry series: the emitter's
// step (iteration) index, the observed value, and the communication rounds
// elapsed when the sample was taken.
type GaugeSample struct {
	Step   int
	Value  float64
	Rounds int
}

// EngineTotal is one engine's accumulated rounds and messages.
type EngineTotal struct {
	Engine   string
	Rounds   int
	Messages int64
}

// frame is one open span instance; rounds/messages are the instance's own
// (exclusive) charges, consumed by the JSONL sink's per-instance end events.
type frame struct {
	name     string
	path     string
	rounds   int
	messages int64
}

// loadArr is a dense per-id word accumulator (directed-edge or node loads):
// a flat array grown on demand, where a zero entry means "never charged"
// (every charge is positive, so zero is unambiguous).
type loadArr struct{ w []int64 }

func (a *loadArr) add(i int, n int64) {
	if i >= len(a.w) {
		if i < cap(a.w) {
			a.w = a.w[:i+1]
		} else {
			grown := make([]int64, i+1, 2*(i+1))
			copy(grown, a.w)
			a.w = grown
		}
	}
	a.w[i] += n
}

// InMemory aggregates trace events into queryable summaries. It is the
// workhorse sink for tests and benchmarks and the aggregation core of the
// JSONL sink. The zero value is not usable; call NewInMemory.
//
// The charge methods (Rounds, Messages, NodeWords) are on the hot path of
// every traced replay — two calls per delivered word — so their state is
// laid out for constant-time updates: the innermost phase stat is cached
// between Begin/End transitions, per-engine structures are cached behind a
// one-entry name check (the engine label rarely changes between charges),
// and per-edge/per-node loads are flat arrays indexed by id rather than
// maps.
type InMemory struct {
	stack    []frame
	stats    map[string]*PhaseStat
	cur      *PhaseStat // stat of the innermost open path; nil until first untracked charge
	counters map[string]int64
	engines  map[string]*EngineTotal
	edges    map[string]*loadArr      // engine -> directed-edge loads
	nodes    map[string]*loadArr      // engine -> node loads
	gauges   map[string][]GaugeSample // series name -> samples in emission order

	lastEngName string
	lastEng     *EngineTotal
	lastEdgeEng string
	lastEdges   *loadArr
	lastNodeEng string
	lastNodes   *loadArr
}

var _ Collector = (*InMemory)(nil)
var _ PhaseQuerier = (*InMemory)(nil)

// NewInMemory returns an empty in-memory collector.
func NewInMemory() *InMemory {
	return &InMemory{
		stats:    make(map[string]*PhaseStat),
		counters: make(map[string]int64),
		engines:  make(map[string]*EngineTotal),
		edges:    make(map[string]*loadArr),
		nodes:    make(map[string]*loadArr),
		gauges:   make(map[string][]GaugeSample),
	}
}

// path returns the innermost open phase path ("" when no span is open).
func (m *InMemory) path() string {
	if len(m.stack) == 0 {
		return ""
	}
	return m.stack[len(m.stack)-1].path
}

func (m *InMemory) stat(path string) *PhaseStat {
	st := m.stats[path]
	if st == nil {
		st = &PhaseStat{Path: path}
		m.stats[path] = st
	}
	return st
}

// Begin implements Collector.
func (m *InMemory) Begin(name string) {
	p := name
	if parent := m.path(); parent != "" {
		p = parent + "/" + name
	}
	m.stack = append(m.stack, frame{name: name, path: p})
	st := m.stat(p)
	st.Count++
	m.cur = st
}

// End implements Collector. An End with no open span is ignored (the
// tracephase analyzer rejects such code statically).
func (m *InMemory) End(name string) {
	if len(m.stack) == 0 {
		return
	}
	m.stack = m.stack[:len(m.stack)-1]
	// May be nil when the stack empties and "" was never charged; curStat
	// re-creates it lazily so the untracked bucket appears only if used.
	m.cur = m.stats[m.path()]
}

// curStat returns the stat of the innermost open path (the cached pointer on
// the hot path; one lazy lookup after the stack empties).
func (m *InMemory) curStat() *PhaseStat {
	if m.cur == nil {
		m.cur = m.stat(m.path())
	}
	return m.cur
}

// Rounds implements Collector.
func (m *InMemory) Rounds(engine string, n int) {
	if n <= 0 {
		return
	}
	m.curStat().Rounds += n
	if len(m.stack) > 0 {
		m.stack[len(m.stack)-1].rounds += n
	}
	m.engine(engine).Rounds += n
}

// Messages implements Collector.
func (m *InMemory) Messages(engine string, dirEdge int, n int64) {
	if n <= 0 {
		return
	}
	m.curStat().Messages += n
	if len(m.stack) > 0 {
		m.stack[len(m.stack)-1].messages += n
	}
	m.engine(engine).Messages += n
	if dirEdge >= 0 {
		m.edgeArr(engine).add(dirEdge, n)
	}
}

// NodeWords implements Collector: charges n words to each in-range endpoint.
func (m *InMemory) NodeWords(engine string, from, to int, n int64) {
	if n <= 0 {
		return
	}
	byNode := m.nodeArr(engine)
	if from >= 0 {
		byNode.add(from, n)
	}
	if to >= 0 {
		byNode.add(to, n)
	}
}

func (m *InMemory) edgeArr(engine string) *loadArr {
	if engine == m.lastEdgeEng && m.lastEdges != nil {
		return m.lastEdges
	}
	a := m.edges[engine]
	if a == nil {
		a = &loadArr{}
		m.edges[engine] = a
	}
	m.lastEdgeEng, m.lastEdges = engine, a
	return a
}

func (m *InMemory) nodeArr(engine string) *loadArr {
	if engine == m.lastNodeEng && m.lastNodes != nil {
		return m.lastNodes
	}
	a := m.nodes[engine]
	if a == nil {
		a = &loadArr{}
		m.nodes[engine] = a
	}
	m.lastNodeEng, m.lastNodes = engine, a
	return a
}

// edgeLoad reports the accumulated words on one directed edge (the series
// sink's running-max probe).
func (m *InMemory) edgeLoad(engine string, dirEdge int) int64 {
	if a := m.edges[engine]; a != nil && dirEdge < len(a.w) {
		return a.w[dirEdge]
	}
	return 0
}

// Counter implements Collector.
func (m *InMemory) Counter(name string, n int64) { m.counters[name] += n }

// Gauge implements Collector: appends one sample to the named series.
func (m *InMemory) Gauge(name string, step int, value float64, rounds int) {
	m.gauges[name] = append(m.gauges[name], GaugeSample{Step: step, Value: value, Rounds: rounds})
}

// Flush implements Collector (no-op for the in-memory sink).
func (m *InMemory) Flush() error { return nil }

func (m *InMemory) engine(name string) *EngineTotal {
	if name == m.lastEngName && m.lastEng != nil {
		return m.lastEng
	}
	e := m.engines[name]
	if e == nil {
		e = &EngineTotal{Engine: name}
		m.engines[name] = e
	}
	m.lastEngName, m.lastEng = name, e
	return e
}

// Phases returns the per-path exclusive summaries sorted by path. The ""
// (untracked) bucket is included when it received charges.
func (m *InMemory) Phases() []PhaseStat {
	paths := make([]string, 0, len(m.stats))
	for p := range m.stats {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]PhaseStat, 0, len(paths))
	for _, p := range paths {
		out = append(out, *m.stats[p])
	}
	return out
}

// PhaseRounds returns the exclusive rounds attributed to the exact path.
func (m *InMemory) PhaseRounds(path string) int {
	if st := m.stats[path]; st != nil {
		return st.Rounds
	}
	return 0
}

// Counters returns all counters sorted by name.
func (m *InMemory) Counters() []CounterStat {
	names := make([]string, 0, len(m.counters))
	for n := range m.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]CounterStat, 0, len(names))
	for _, n := range names {
		out = append(out, CounterStat{Name: n, Value: m.counters[n]})
	}
	return out
}

// CounterValue returns one counter's value (0 if never incremented).
func (m *InMemory) CounterValue(name string) int64 { return m.counters[name] }

// Engines returns per-engine totals sorted by engine name.
func (m *InMemory) Engines() []EngineTotal {
	names := make([]string, 0, len(m.engines))
	for n := range m.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]EngineTotal, 0, len(names))
	for _, n := range names {
		out = append(out, *m.engines[n])
	}
	return out
}

// EngineRounds returns the total rounds recorded for one engine.
func (m *InMemory) EngineRounds(engine string) int {
	if e := m.engines[engine]; e != nil {
		return e.Rounds
	}
	return 0
}

// TotalRounds returns the rounds recorded across all engines.
func (m *InMemory) TotalRounds() int {
	total := 0
	for _, e := range m.Engines() {
		total += e.Rounds
	}
	return total
}

// TopEdges returns the k most loaded directed edges of one engine, sorted by
// descending load with edge id as the deterministic tiebreak (the flat array
// is scanned in ascending id order, so the stable sort preserves it).
func (m *InMemory) TopEdges(engine string, k int) []EdgeLoad {
	out := []EdgeLoad{}
	if a := m.edges[engine]; a != nil {
		for de, w := range a.w {
			if w != 0 {
				out = append(out, EdgeLoad{Engine: engine, Edge: de, Words: w})
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Words > out[b].Words })
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// LoadHistogram buckets one engine's directed-edge loads into power-of-two
// buckets: bucket b counts edges with load in (2^(b-1), 2^b]. Returned as
// (bucket, count) pairs sorted by bucket.
func (m *InMemory) LoadHistogram(engine string) []EdgeLoad {
	buckets := make(map[int]int64)
	if a := m.edges[engine]; a != nil {
		for _, w := range a.w {
			if w != 0 {
				buckets[loadBucket(w)]++
			}
		}
	}
	bs := make([]int, 0, len(buckets))
	for b := range buckets {
		bs = append(bs, b)
	}
	sort.Ints(bs)
	out := make([]EdgeLoad, 0, len(bs))
	for _, b := range bs {
		out = append(out, EdgeLoad{Engine: engine, Edge: b, Words: buckets[b]})
	}
	return out
}

// TopNodes returns the k most loaded nodes of one engine, sorted by
// descending word count with node id as the deterministic tiebreak.
func (m *InMemory) TopNodes(engine string, k int) []NodeLoad {
	out := []NodeLoad{}
	if a := m.nodes[engine]; a != nil {
		for v, w := range a.w {
			if w != 0 {
				out = append(out, NodeLoad{Engine: engine, Node: v, Words: w})
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Words > out[b].Words })
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// NodeLoadHistogram buckets one engine's node loads into power-of-two
// buckets, mirroring LoadHistogram: bucket b counts nodes with load in
// (2^(b-1), 2^b]. Returned as (bucket, count) pairs sorted by bucket, with
// the bucket index carried in Node.
func (m *InMemory) NodeLoadHistogram(engine string) []NodeLoad {
	buckets := make(map[int]int64)
	if a := m.nodes[engine]; a != nil {
		for _, w := range a.w {
			if w != 0 {
				buckets[loadBucket(w)]++
			}
		}
	}
	bs := make([]int, 0, len(buckets))
	for b := range buckets {
		bs = append(bs, b)
	}
	sort.Ints(bs)
	out := make([]NodeLoad, 0, len(bs))
	for _, b := range bs {
		out = append(out, NodeLoad{Engine: engine, Node: b, Words: buckets[b]})
	}
	return out
}

// Gauges returns the names of all recorded telemetry series, sorted.
func (m *InMemory) Gauges() []string {
	names := make([]string, 0, len(m.gauges))
	for n := range m.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeSeries returns one series' samples in emission order (nil if the
// series was never sampled).
func (m *InMemory) GaugeSeries(name string) []GaugeSample { return m.gauges[name] }

// loadBucket returns ceil(log2(words)): the power-of-two histogram bucket.
func loadBucket(words int64) int {
	b := 0
	for lim := int64(1); lim < words; lim *= 2 {
		b++
	}
	return b
}

// OpenSpans returns the number of currently open spans (test helper).
func (m *InMemory) OpenSpans() int { return len(m.stack) }
