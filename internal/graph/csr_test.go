package graph_test

import (
	"fmt"
	"testing"

	"distlap/internal/graph"
	"distlap/internal/seedderive"
)

// TestCSRParityRandom is the CSR-vs-map kernel parity guard: on random
// graphs drawn from seedderive streams, every flat view of the CSR must
// reproduce, bit for bit and in the same order, what walking the Graph's
// own structures produces. Gated metrics and floating-point sums both rest
// on these orders, so any divergence here is a determinism bug, not a
// perf tradeoff.
func TestCSRParityRandom(t *testing.T) {
	const base = int64(0xC52)
	for i := int64(0); i < 8; i++ {
		seed := seedderive.Derive(base, "csr-parity", i)
		n := 40 + int(i)*37
		g := graph.RandomConnected(n, n/2, 16, seed)
		c := graph.BuildCSR(g)

		if c.N() != g.N() || c.M() != g.M() {
			t.Fatalf("seed %d: CSR is %d nodes/%d edges, graph is %d/%d",
				seed, c.N(), c.M(), g.N(), g.M())
		}

		// Adjacency view: half-edges in exactly Neighbors order.
		pos := 0
		for v := 0; v < g.N(); v++ {
			if int(c.RowStart[v]) != pos {
				t.Fatalf("seed %d: RowStart[%d]=%d, want %d", seed, v, c.RowStart[v], pos)
			}
			if c.Degree(v) != len(g.Neighbors(v)) {
				t.Fatalf("seed %d: Degree(%d)=%d, want %d", seed, v, c.Degree(v), len(g.Neighbors(v)))
			}
			for _, h := range g.Neighbors(v) {
				if int(c.HalfTo[pos]) != h.To || int(c.HalfEdge[pos]) != h.Edge {
					t.Fatalf("seed %d: half %d is (to=%d,edge=%d), want (%d,%d)",
						seed, pos, c.HalfTo[pos], c.HalfEdge[pos], h.To, h.Edge)
				}
				if c.HalfW[pos] != float64(g.Edge(h.Edge).Weight) {
					t.Fatalf("seed %d: half %d weight %v, want %v",
						seed, pos, c.HalfW[pos], g.Edge(h.Edge).Weight)
				}
				pos++
			}
		}
		if int(c.RowStart[g.N()]) != pos || pos != 2*g.M() {
			t.Fatalf("seed %d: adjacency view covers %d half-edges, want %d", seed, pos, 2*g.M())
		}

		// Edge view: the edge list in EdgeID order.
		for id, e := range g.EdgeList() {
			if int(c.EdgeU[id]) != e.U || int(c.EdgeV[id]) != e.V || c.EdgeW[id] != float64(e.Weight) {
				t.Fatalf("seed %d: edge %d is (%d,%d,%v), want (%d,%d,%v)",
					seed, id, c.EdgeU[id], c.EdgeV[id], c.EdgeW[id], e.U, e.V, e.Weight)
			}
		}

		// Weighted degrees: bit-identical to EdgeID-order accumulation over
		// the graph's own edge list (the order linalg.Degrees historically
		// used).
		wdeg := make([]float64, g.N())
		for _, e := range g.EdgeList() {
			w := float64(e.Weight)
			wdeg[e.U] += w
			wdeg[e.V] += w
		}
		for v := range wdeg {
			if c.WDeg[v] != wdeg[v] {
				t.Fatalf("seed %d: WDeg[%d]=%v, want %v (bitwise)", seed, v, c.WDeg[v], wdeg[v])
			}
		}
	}
}

// TestCSRMatVecParity checks that the edge-order CSR Laplacian apply is
// bit-identical to the same accumulation over Graph.EdgeList — the flat
// kernel and the map-era kernel share one summation order by construction.
func TestCSRMatVecParity(t *testing.T) {
	for i := int64(0); i < 4; i++ {
		seed := seedderive.Derive(0xC52, "csr-matvec", i)
		g := graph.RandomConnected(60+int(i)*25, 30, 9, seed)
		c := graph.BuildCSR(g)
		x := make([]float64, g.N())
		for v := range x {
			x[v] = float64((v*7919)%101) / 13.0
		}

		yCSR := make([]float64, g.N())
		for e := range c.EdgeW {
			d := c.EdgeW[e] * (x[c.EdgeU[e]] - x[c.EdgeV[e]])
			yCSR[c.EdgeU[e]] += d
			yCSR[c.EdgeV[e]] -= d
		}
		yMap := make([]float64, g.N())
		for _, e := range g.EdgeList() {
			d := float64(e.Weight) * (x[e.U] - x[e.V])
			yMap[e.U] += d
			yMap[e.V] -= d
		}
		for v := range yCSR {
			if yCSR[v] != yMap[v] {
				t.Fatalf("seed %d: L·x diverges at node %d: CSR %v, edge-walk %v", seed, v, yCSR[v], yMap[v])
			}
		}
	}
}

// ExampleBuildCSR shows the two flat views a CSR carries: the
// adjacency-order half-edge rows and the EdgeID-order edge arrays.
func ExampleBuildCSR() {
	g := graph.Path(4) // 0-1-2-3, unit weights
	c := graph.BuildCSR(g)

	fmt.Println("n =", c.N(), "m =", c.M())
	for v := 0; v < c.N(); v++ {
		row := c.HalfTo[c.RowStart[v]:c.RowStart[v+1]]
		fmt.Printf("neighbors of %d: %v\n", v, row)
	}
	for e := 0; e < c.M(); e++ {
		fmt.Printf("edge %d: (%d,%d) w=%g\n", e, c.EdgeU[e], c.EdgeV[e], c.EdgeW[e])
	}
	fmt.Println("weighted degrees:", c.WDeg)
	// Output:
	// n = 4 m = 3
	// neighbors of 0: [1]
	// neighbors of 1: [0 2]
	// neighbors of 2: [1 3]
	// neighbors of 3: [2]
	// edge 0: (0,1) w=1
	// edge 1: (1,2) w=1
	// edge 2: (2,3) w=1
	// weighted degrees: [1 2 2 1]
}
