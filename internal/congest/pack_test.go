package congest

import "testing"

func TestPackWordRoundTrip(t *testing.T) {
	cases := []struct {
		hi, lo Word
		loBits uint
	}{
		{0, 0, 31},
		{1, 2, 31},
		{1<<32 - 1, 1<<31 - 1, 31}, // max fields at the MST encoding width
		{7, 1<<20 - 1, 20},
		{1<<62 - 1, 1, 1},
	}
	for _, c := range cases {
		x := PackWord(c.hi, c.lo, c.loBits)
		if x < 0 {
			t.Errorf("PackWord(%d,%d,%d) = %d is negative; sign bit must stay clear", c.hi, c.lo, c.loBits, x)
		}
		hi, lo := UnpackWord(x, c.loBits)
		if hi != c.hi || lo != c.lo {
			t.Errorf("round trip (%d,%d,%d): got (%d,%d)", c.hi, c.lo, c.loBits, hi, lo)
		}
	}
}

func TestPackWordOrdersLikeTuples(t *testing.T) {
	// Min-aggregation over packed edges relies on tuple ordering.
	a := PackWord(3, 100, 31)
	b := PackWord(4, 0, 31)
	c := PackWord(4, 1, 31)
	if !(a < b && b < c) {
		t.Errorf("packed words must order like (hi, lo) tuples: %d, %d, %d", a, b, c)
	}
}

func TestPackWordOverflowPanics(t *testing.T) {
	cases := []struct {
		name   string
		hi, lo Word
		loBits uint
	}{
		{"lo overflow", 0, 1 << 31, 31},
		{"hi overflow", 1 << 32, 0, 31},
		{"negative lo", 0, -1, 31},
		{"negative hi", -1, 0, 31},
		{"zero loBits", 1, 1, 0},
		{"loBits too wide", 1, 1, WordBits - 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("PackWord(%d,%d,%d) must panic instead of truncating", c.hi, c.lo, c.loBits)
				}
			}()
			PackWord(c.hi, c.lo, c.loBits)
		})
	}
}

func TestWordsFor(t *testing.T) {
	cases := []struct{ bits, want int }{
		{-5, 0}, {0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, c := range cases {
		if got := WordsFor(c.bits); got != c.want {
			t.Errorf("WordsFor(%d) = %d, want %d", c.bits, got, c.want)
		}
	}
}
