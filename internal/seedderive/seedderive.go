// Package seedderive defines the one sanctioned way to derive child RNG
// seeds from a caller-supplied base seed. Every randomized phase in the
// simulator draws from an explicit *rand.Rand seeded through this package
// (paper §2: all algorithms are Las Vegas randomized, and DESIGN.md §5/§7
// demand that identical seeds replay identical executions).
//
// Determinism obligations: Derive is a pure function of (base, phase, idx)
// — no global state, no clock — so a run is replayable from its base seed
// alone. The phase string and index are mixed through independent 64-bit
// avalanche steps, so distinct phases (and distinct indices within a
// phase) get statistically unrelated child seeds even when the base seeds
// or indices are small consecutive integers. Ad-hoc arithmetic on seeds
// (`seed + round*7919` and friends) is banned by the distlint `seedderive`
// analyzer precisely because such derivations collide across phases:
// phase A at index 7919 and phase B at index 0 would share a stream.
package seedderive

// Derive returns the child seed for draw idx of the named phase under the
// given base seed. Calls with distinct (phase, idx) pairs yield unrelated
// seeds; equal arguments always yield the same seed.
func Derive(base int64, phase string, idx int64) int64 {
	x := uint64(base)
	x ^= fnv1a(phase)
	x = mix64(x)
	x += uint64(idx) * 0x9E3779B97F4A7C15 // golden-ratio increment keeps consecutive idx far apart
	return int64(mix64(x))
}

// fnv1a hashes the phase name (64-bit FNV-1a).
func fnv1a(s string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche on 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
