package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickBenchWithVerify runs the whole quick suite with the sequential
// parity oracle enabled and checks the emitted BENCH file's invariants.
func TestQuickBenchWithVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := run([]string{"-quick", "-label", "test", "-parallel", "2", "-verify", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH file is not valid JSON: %v", err)
	}
	if doc.Schema != schemaVersion {
		t.Errorf("schema: got %d, want %d", doc.Schema, schemaVersion)
	}
	if doc.Mode != "quick" || doc.Label != "test" || doc.Parallel != 2 {
		t.Errorf("header fields wrong: %+v", doc)
	}
	if len(doc.Experiments) != 15 {
		t.Fatalf("got %d experiment records, want 15", len(doc.Experiments))
	}
	for _, e := range doc.Experiments {
		if e.WallMS < 0 || e.Rows <= 0 {
			t.Errorf("%s: implausible record %+v", e.ID, e)
		}
		// Every experiment drives at least one network, so communication
		// metrics must be present (E3/E4 are pure computation and may be 0).
		if e.Rounds < 0 || e.Messages < 0 || e.MaxEdgeLoad < 0 {
			t.Errorf("%s: negative metric %+v", e.ID, e)
		}
	}
	if doc.Speedup <= 0 {
		t.Errorf("verify run must record a speedup, got %v", doc.Speedup)
	}
}

// TestBadFlag checks flag errors surface instead of running the suite.
func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("want flag error")
	}
}
