package graph

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    NodeID
		w       int64
		wantErr error
	}{
		{name: "out of range u", u: -1, v: 0, w: 1, wantErr: ErrNodeRange},
		{name: "out of range v", u: 0, v: 3, w: 1, wantErr: ErrNodeRange},
		{name: "self loop", u: 1, v: 1, w: 1, wantErr: ErrSelfLoop},
		{name: "zero weight", u: 0, v: 1, w: 0, wantErr: ErrBadWeight},
		{name: "negative weight", u: 0, v: 1, w: -2, wantErr: ErrBadWeight},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := g.AddEdge(tt.u, tt.v, tt.w); !errors.Is(err, tt.wantErr) {
				t.Fatalf("AddEdge(%d,%d,%d) err=%v, want %v", tt.u, tt.v, tt.w, err, tt.wantErr)
			}
		})
	}
	if g.M() != 0 {
		t.Fatalf("failed AddEdge mutated graph: m=%d", g.M())
	}
}

func TestAddEdgeAndAccessors(t *testing.T) {
	g := New(4)
	id, err := g.AddEdge(0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e := g.Edge(id); e.U != 0 || e.V != 1 || e.Weight != 5 {
		t.Fatalf("edge = %+v", e)
	}
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(1, 2, 7) // parallel edge allowed
	if g.Degree(1) != 3 {
		t.Fatalf("degree(1)=%d, want 3", g.Degree(1))
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("maxdegree=%d, want 3", g.MaxDegree())
	}
	if !g.HasEdgeBetween(1, 2) || g.HasEdgeBetween(0, 3) {
		t.Fatal("HasEdgeBetween wrong")
	}
	if g.Other(id, 0) != 1 || g.Other(id, 1) != 0 {
		t.Fatal("Other wrong")
	}
	if g.WeightedDegree(1) != 15 {
		t.Fatalf("weighted degree(1)=%d, want 15", g.WeightedDegree(1))
	}
	if g.TotalWeight() != 15 {
		t.Fatalf("total weight=%d, want 15", g.TotalWeight())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.MustAddEdge(0, 3, 1)
	if g.M() != 3 || c.M() != 4 {
		t.Fatalf("clone not deep: g.M()=%d c.M()=%d", g.M(), c.M())
	}
}

func TestAddNode(t *testing.T) {
	g := New(1)
	v := g.AddNode()
	if v != 1 || g.N() != 2 {
		t.Fatalf("AddNode = %d, n = %d", v, g.N())
	}
	g.MustAddEdge(0, 1, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraph(t *testing.T) {
	g := Grid(3, 3)
	sub, orig := g.Subgraph([]NodeID{0, 1, 3, 4})
	if sub.N() != 4 {
		t.Fatalf("sub n=%d", sub.N())
	}
	// 2x2 corner of the grid has 4 edges.
	if sub.M() != 4 {
		t.Fatalf("sub m=%d, want 4", sub.M())
	}
	if orig[2] != 3 {
		t.Fatalf("orig[2]=%d, want 3", orig[2])
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsShape(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{name: "path", g: Path(5), n: 5, m: 4},
		{name: "cycle", g: Cycle(5), n: 5, m: 5},
		{name: "grid3x4", g: Grid(3, 4), n: 12, m: 17},
		{name: "torus3x3", g: Torus(3, 3), n: 9, m: 18},
		{name: "star", g: Star(6), n: 6, m: 5},
		{name: "complete", g: Complete(5), n: 5, m: 10},
		{name: "tree b2 l3", g: CompleteTree(2, 3), n: 7, m: 6},
		{name: "caterpillar", g: Caterpillar(3, 2), n: 9, m: 8},
		{name: "barbell", g: Barbell(3, 2), n: 8, m: 9},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.n || tt.g.M() != tt.m {
				t.Fatalf("n=%d m=%d, want n=%d m=%d", tt.g.N(), tt.g.M(), tt.n, tt.m)
			}
			if err := tt.g.Validate(); err != nil {
				t.Fatal(err)
			}
			if !IsConnected(tt.g) {
				t.Fatal("generator produced disconnected graph")
			}
		})
	}
}

func TestRandomGeneratorsConnectedAndValid(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := RandomRegular(50, 4, seed)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !IsConnected(g) {
			t.Fatalf("seed %d: RandomRegular disconnected", seed)
		}
		h := RandomConnected(40, 30, 10, seed)
		if err := h.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !IsConnected(h) {
			t.Fatalf("seed %d: RandomConnected disconnected", seed)
		}
		if h.M() < 39 {
			t.Fatalf("seed %d: too few edges %d", seed, h.M())
		}
	}
}

func TestRandomGeneratorsDeterministic(t *testing.T) {
	a := RandomConnected(30, 20, 5, 42)
	b := RandomConnected(30, 20, 5, 42)
	if a.M() != b.M() {
		t.Fatalf("nondeterministic edge count: %d vs %d", a.M(), b.M())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ae[i], be[i])
		}
	}
}

func TestBFSPath(t *testing.T) {
	g := Path(6)
	res := BFS(g, 0)
	for v := 0; v < 6; v++ {
		if res.Dist[v] != v {
			t.Fatalf("dist[%d]=%d, want %d", v, res.Dist[v], v)
		}
	}
	if res.Parent[0] != -1 || res.Parent[3] != 2 {
		t.Fatal("parents wrong")
	}
	if len(res.Order) != 6 || res.Order[0] != 0 {
		t.Fatal("order wrong")
	}
}

func TestDiameters(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{name: "path", g: Path(7), want: 6},
		{name: "cycle", g: Cycle(8), want: 4},
		{name: "grid", g: Grid(3, 4), want: 5},
		{name: "star", g: Star(9), want: 2},
		{name: "complete", g: Complete(6), want: 1},
		{name: "single", g: New(1), want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if d := Diameter(tt.g); d != tt.want {
				t.Fatalf("Diameter = %d, want %d", d, tt.want)
			}
			// Double sweep is a lower bound and at least half the diameter.
			da := DiameterApprox(tt.g)
			if da > tt.want || 2*da < tt.want {
				t.Fatalf("DiameterApprox = %d for diameter %d", da, tt.want)
			}
		})
	}
	g := New(3) // disconnected
	if Diameter(g) != -1 || DiameterApprox(g) != -1 {
		t.Fatal("disconnected diameter should be -1")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	comps := Components(g)
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if len(comps[0]) != 2 || len(comps[1]) != 3 || len(comps[2]) != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
	if IsConnected(g) {
		t.Fatal("IsConnected on disconnected graph")
	}
}

func TestInducedConnected(t *testing.T) {
	g := Grid(3, 3)
	if !InducedConnected(g, []NodeID{0, 1, 2}) {
		t.Fatal("top row should be connected")
	}
	if InducedConnected(g, []NodeID{0, 8}) {
		t.Fatal("opposite corners are not induced-connected")
	}
	if !InducedConnected(g, []NodeID{4}) || !InducedConnected(g, nil) {
		t.Fatal("singleton/empty should be vacuously connected")
	}
}

func TestBFSTree(t *testing.T) {
	g := Grid(4, 4)
	tr := BFSTree(g, 0)
	if tr.Height() != 6 {
		t.Fatalf("height=%d, want 6", tr.Height())
	}
	if len(tr.Members) != 16 {
		t.Fatalf("members=%d", len(tr.Members))
	}
	ch := tr.Children()
	total := 0
	for _, c := range ch {
		total += len(c)
	}
	if total != 15 {
		t.Fatalf("child-edges=%d, want 15", total)
	}
	for _, v := range tr.Members {
		if v != tr.Root && tr.Depth[v] != tr.Depth[tr.Parent[v]]+1 {
			t.Fatalf("depth invariant broken at %d", v)
		}
	}
}

func TestBFSTreeOfSubgraph(t *testing.T) {
	g := Grid(3, 3)
	// Two opposite corners plus a shortcut edge joining them directly.
	id := g.MustAddEdge(0, 8, 1)
	tr := BFSTreeOfSubgraph(g, []NodeID{0, 8}, []EdgeID{id}, 0)
	if len(tr.Members) != 2 || tr.Depth[8] != 1 {
		t.Fatalf("shortcut subtree wrong: members=%v depth8=%d", tr.Members, tr.Depth[8])
	}
	// Without the extra edge the corners are separate (fresh grid, since g
	// itself was augmented above).
	tr2 := BFSTreeOfSubgraph(Grid(3, 3), []NodeID{0, 8}, nil, 0)
	if tr2.Contains(8) {
		t.Fatal("unreachable member should not be in tree")
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatal("initial count")
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("unions should succeed")
	}
	if uf.Union(0, 2) {
		t.Fatal("redundant union should fail")
	}
	if uf.Count() != 3 {
		t.Fatalf("count=%d, want 3", uf.Count())
	}
	if uf.Find(0) != uf.Find(2) || uf.Find(3) == uf.Find(4) && false {
		t.Fatal("find wrong")
	}
}

func TestMST(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	g.MustAddEdge(0, 3, 10)
	g.MustAddEdge(0, 2, 10)
	ids, total := MST(g)
	if len(ids) != 3 || total != 6 {
		t.Fatalf("MST edges=%d total=%d, want 3, 6", len(ids), total)
	}
}

func TestMSTOnDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(2, 3, 5)
	ids, total := MST(g)
	if len(ids) != 2 || total != 7 {
		t.Fatalf("forest edges=%d total=%d", len(ids), total)
	}
}

func TestTreeFromEdgesAndPathInTree(t *testing.T) {
	g := Grid(3, 3)
	ids, _ := MST(g)
	tr := TreeFromEdges(g, ids, 4)
	if len(tr.Members) != 9 {
		t.Fatalf("members=%d", len(tr.Members))
	}
	p := PathInTree(tr, 0, 8)
	if len(p) < 2 || p[0] != 0 || p[len(p)-1] != 8 {
		t.Fatalf("path = %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if tr.Parent[p[i]] != p[i+1] && tr.Parent[p[i+1]] != p[i] {
			t.Fatalf("path step %d-%d not a tree edge", p[i], p[i+1])
		}
	}
	if PathInTree(tr, 0, 0) == nil || len(PathInTree(tr, 3, 3)) != 1 {
		t.Fatal("trivial path wrong")
	}
}

func TestStandardFamilies(t *testing.T) {
	for _, f := range StandardFamilies() {
		g := f.Make(64)
		if g.N() < 16 {
			t.Fatalf("%s: too small (%d nodes)", f.Name, g.N())
		}
		if !IsConnected(g) {
			t.Fatalf("%s: disconnected", f.Name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
}

func TestIsqrtLog2(t *testing.T) {
	for n := 0; n <= 1000; n++ {
		s := isqrt(n)
		if s*s > n || (s+1)*(s+1) <= n {
			t.Fatalf("isqrt(%d)=%d", n, s)
		}
	}
	if log2ceil(1) != 0 || log2ceil(2) != 1 || log2ceil(3) != 2 || log2ceil(8) != 3 || log2ceil(9) != 4 {
		t.Fatal("log2ceil wrong")
	}
}

// Property: for any path length, BFS distance equals index; and in any
// random connected graph, BFS distances obey the triangle-ish invariant
// |d(u) - d(v)| <= 1 across every edge.
func TestBFSEdgeInvariantProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%50) + 2
		g := RandomConnected(n, n/2, 1, seed)
		res := BFS(g, 0)
		for _, e := range g.Edges() {
			du, dv := res.Dist[e.U], res.Dist[e.V]
			if du-dv > 1 || dv-du > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MST total weight is invariant under edge insertion order
// (checked by comparing against a permuted copy of the same edge set).
func TestMSTWeightPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomConnected(20, 15, 9, seed)
		_, w1 := MST(g)
		// Rebuild with reversed edge order.
		h := New(g.N())
		es := g.Edges()
		for i := len(es) - 1; i >= 0; i-- {
			h.MustAddEdge(es[i].U, es[i].V, es[i].Weight)
		}
		_, w2 := MST(h)
		return w1 == w2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: every spanning tree reported by BFSTree has exactly n-1
// parent edges and depths consistent with parents.
func TestBFSTreeProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%40) + 2
		g := RandomConnected(n, n, 3, seed)
		tr := BFSTree(g, 0)
		if len(tr.Members) != n {
			return false
		}
		cnt := 0
		for v := 0; v < n; v++ {
			if tr.Parent[v] != -1 {
				cnt++
				if tr.Depth[v] != tr.Depth[tr.Parent[v]]+1 {
					return false
				}
			}
		}
		return cnt == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
