package simprof

import (
	"strings"
	"testing"
)

func benchFixture() *BenchFile {
	return &BenchFile{
		Schema: BenchSchema,
		Mode:   "quick",
		Experiments: []BenchExp{
			{ID: "E1", Rounds: 100, Messages: 5000, MaxEdgeLoad: 40},
			{ID: "E2", Rounds: 0, Messages: 0, MaxEdgeLoad: 0},
			{ID: "E3", Rounds: 300, Messages: 90000, MaxEdgeLoad: 12},
		},
	}
}

func TestCompareBenchSelf(t *testing.T) {
	b := benchFixture()
	regs, err := CompareBench(b, b, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("self-compare found regressions: %v", regs)
	}
}

func TestCompareBenchFlagsInflation(t *testing.T) {
	old, cur := benchFixture(), benchFixture()
	cur.Experiments[0].Rounds = 111     // +11% > 10%
	cur.Experiments[2].Messages = 99001 // +10.001% > 10%
	cur.Experiments[2].MaxEdgeLoad = 13 // +8.3% passes
	cur.Experiments[0].WallMS = 1e9     // wall time never gated
	regs, err := CompareBench(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want rounds@E1 and messages@E3", regs)
	}
	if regs[0].ID != "E1" || regs[0].Metric != "rounds" {
		t.Fatalf("regs[0] = %v", regs[0])
	}
	if regs[1].ID != "E3" || regs[1].Metric != "messages" {
		t.Fatalf("regs[1] = %v", regs[1])
	}
	if !strings.Contains(regs[0].String(), "rounds regressed 100 -> 111") {
		t.Fatalf("String() = %q", regs[0].String())
	}
}

func TestCompareBenchZeroBaselineGrowth(t *testing.T) {
	old, cur := benchFixture(), benchFixture()
	cur.Experiments[1].MaxEdgeLoad = 1
	regs, err := CompareBench(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "max_edge_load" {
		t.Fatalf("regressions = %v, want max_edge_load@E2", regs)
	}
}

func TestCompareBenchImprovementsAndNewExperimentsPass(t *testing.T) {
	old, cur := benchFixture(), benchFixture()
	cur.Experiments[0].Rounds = 10 // big improvement
	cur.Experiments = append(cur.Experiments, BenchExp{ID: "E4", Rounds: 7})
	regs, err := CompareBench(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %v, want none", regs)
	}
}

func TestCompareBenchMissingExperiment(t *testing.T) {
	old, cur := benchFixture(), benchFixture()
	cur.Experiments = cur.Experiments[:2]
	regs, err := CompareBench(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "missing" || regs[0].ID != "E3" {
		t.Fatalf("regressions = %v, want missing@E3", regs)
	}
}

func TestCompareBenchModeAndSchemaMismatch(t *testing.T) {
	old, cur := benchFixture(), benchFixture()
	cur.Mode = "full"
	if _, err := CompareBench(old, cur, 0.10); err == nil {
		t.Fatal("mode mismatch accepted")
	}
	cur = benchFixture()
	cur.Schema = BenchSchema + 1
	if _, err := CompareBench(old, cur, 0.10); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}
