package apps

import (
	"testing"
	"testing/quick"

	"distlap/internal/core"
	"distlap/internal/graph"
)

func TestApproxMaxFlowMatchesExactSmall(t *testing.T) {
	parallel := graph.New(4)
	parallel.MustAddEdge(0, 1, 2)
	parallel.MustAddEdge(1, 3, 2)
	parallel.MustAddEdge(0, 2, 3)
	parallel.MustAddEdge(2, 3, 3)
	cases := []struct {
		name string
		g    *graph.Graph
		s, t graph.NodeID
	}{
		{name: "path", g: graph.Path(5), s: 0, t: 4},
		{name: "grid", g: graph.Grid(3, 5), s: 0, t: 14},
		{name: "parallel", g: parallel, s: 0, t: 3},
		{name: "barbell", g: graph.Barbell(4, 1), s: 0, t: 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := &ApproxMaxFlow{Mode: core.ModeUniversal, Epsilon: 0.1, Seed: 1}
			res, err := a.Run(c.g, c.s, c.t)
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != res.ExactValue {
				t.Fatalf("approx=%d exact=%d", res.Value, res.ExactValue)
			}
			if res.Solves <= 0 || res.Rounds <= 0 {
				t.Fatalf("accounting: %+v", res)
			}
			// The returned flow routes ~Value units with bounded
			// congestion.
			div := make([]float64, c.g.N())
			for id, e := range c.g.Edges() {
				div[e.U] += res.EdgeFlow[id]
				div[e.V] -= res.EdgeFlow[id]
			}
			if div[c.s] < 0.9*float64(res.Value) {
				t.Fatalf("source divergence %v for value %d", div[c.s], res.Value)
			}
			for id, e := range c.g.Edges() {
				if abs64(res.EdgeFlow[id]) > 1.35*float64(e.Weight) {
					t.Fatalf("edge %d congestion %v", id, abs64(res.EdgeFlow[id])/float64(e.Weight))
				}
			}
		})
	}
}

func TestApproxMaxFlowBadEpsilon(t *testing.T) {
	a := &ApproxMaxFlow{Mode: core.ModeUniversal, Epsilon: 0.7}
	if _, err := a.Run(graph.Path(3), 0, 2); err == nil {
		t.Fatal("want epsilon error")
	}
}

func TestApproxMaxFlowDisconnected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	a := &ApproxMaxFlow{Mode: core.ModeUniversal, Epsilon: 0.1}
	res, err := a.Run(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 || res.ExactValue != 0 {
		t.Fatalf("res=%+v", res)
	}
}

func abs64(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Property: the approximation is within (1±3ε) of the exact optimum on
// random weighted graphs.
func TestApproxMaxFlowProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(10, 6, 4, seed)
		a := &ApproxMaxFlow{Mode: core.ModeUniversal, Epsilon: 0.12, Seed: seed}
		res, err := a.Run(g, 0, 9)
		if err != nil {
			return false
		}
		lo := float64(res.ExactValue) * 0.6
		hi := float64(res.ExactValue)*1.36 + 1
		return float64(res.Value) >= lo && float64(res.Value) <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
