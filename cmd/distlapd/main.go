// Command distlapd serves the distributed Laplacian solver over HTTP: load
// a graph once (paying instance preparation — trees, cluster covers,
// preconditioner state — exactly once), then issue solve, multi-RHS batch,
// electrical-flow and MST requests against the cached instance, each paying
// only iteration cost. Instances live in a byte-budgeted LRU cache.
//
// Usage:
//
//	distlapd [-addr :8090] [-cache-bytes 67108864] [-access-log PATH] [-debug-addr :8091]
//	distlapd -selftest
//
// The API is JSON over stdlib net/http (see internal/service):
//
//	POST   /v1/graphs             {"id":"g1","graph":{"family":"grid","size":100},"seed":1}
//	GET    /v1/graphs
//	DELETE /v1/graphs/{id}
//	POST   /v1/graphs/{id}/solve  {"b":[...]} or {"bs":[[...],[...]]}
//	POST   /v1/graphs/{id}/flow   {"s":0,"t":5}
//	POST   /v1/graphs/{id}/mst    {}
//
// Observability (see internal/obs and README "Operating distlapd"):
//
//	GET /metrics      Prometheus text; deterministic families above the
//	                  wall-clock marker, latency/uptime below it
//	GET /v1/statusz   JSON status: deterministic counters, cache occupancy
//	                  vs budget, latency quantiles, build info
//	GET /v1/healthz   liveness + saturation + cache occupancy/evictions
//
// -access-log writes one JSON line per served API request ("-" for stderr,
// otherwise an append-only file); the "id" field matches the X-Request-Id
// response header. -debug-addr serves net/http/pprof on a second listener
// that is never exposed on the API address.
//
// Responses are deterministic: identical requests against daemons started
// with identical configuration produce byte-identical JSON, and the
// deterministic /metrics section is byte-identical across daemons serving
// the same request sequence.
//
// -selftest exercises the full request cycle in-process (no sockets),
// checks the serving-metrics identities (per-endpoint counters summing to
// totals, histogram counts matching request counts, cache hits + misses
// matching instance lookups), and exits nonzero on any mismatch; CI runs
// it as the daemon smoke test.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	_ "net/http/pprof" // registers debug handlers on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"distlap/internal/obs"
	"distlap/internal/service"
)

// shutdownGrace bounds how long a terminating daemon waits for in-flight
// requests to drain before closing their connections.
const shutdownGrace = 30 * time.Second

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	cacheBytes := flag.Int64("cache-bytes", service.DefaultCacheBytes, "instance cache budget in bytes")
	accessLog := flag.String("access-log", "", `access log destination: "" disables, "-" is stderr, anything else appends to that file`)
	debugAddr := flag.String("debug-addr", "", "optional second listen address serving net/http/pprof (never exposed on -addr)")
	selftest := flag.Bool("selftest", false, "run the in-process request-cycle and metrics smoke test and exit")
	flag.Parse()

	logDst, closeLog, err := openAccessLog(*accessLog)
	if err != nil {
		log.Fatal(err)
	}
	defer closeLog()

	srv := service.New(service.Config{CacheBytes: *cacheBytes, AccessLog: logDst})
	if *selftest {
		if err := runSelftest(srv); err != nil {
			fmt.Fprintln(os.Stderr, "selftest:", err)
			os.Exit(1)
		}
		fmt.Println("distlapd selftest ok")
		return
	}
	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}
	if err := serve(srv, *addr, *cacheBytes); err != nil {
		log.Fatal(err)
	}
	if err := srv.AccessLogErr(); err != nil {
		log.Fatalf("distlapd: access log failed mid-run: %v", err)
	}
}

// openAccessLog resolves the -access-log flag into a writer plus a close
// hook: "" disables logging (nil writer — a typed nil would defeat the
// service's nil check), "-" selects stderr, anything else appends to the
// named file.
func openAccessLog(dst string) (w io.Writer, closeFn func(), err error) {
	switch dst {
	case "":
		return nil, func() {}, nil
	case "-":
		return os.Stderr, func() {}, nil
	}
	f, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("distlapd: access log: %w", err)
	}
	return f, func() { _ = f.Close() }, nil
}

// serveDebug serves net/http/pprof (DefaultServeMux) on its own listener;
// keeping it off the API address means profiling is opt-in and never
// reachable from the serving port.
func serveDebug(addr string) {
	log.Printf("distlapd: pprof listening on %s", addr)
	dbg := &http.Server{Addr: addr, ReadHeaderTimeout: 5 * time.Second}
	if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("distlapd: pprof server: %v", err)
	}
}

// serve runs the hardened HTTP server until SIGINT/SIGTERM, then drains
// in-flight requests through a bounded graceful Shutdown so a rolling
// restart never truncates a response mid-solve.
func serve(srv *service.Server, addr string, cacheBytes int64) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := srv.NewHTTPServer(addr)
	errc := make(chan error, 1)
	go func() {
		log.Printf("distlapd listening on %s (cache budget %d bytes)", addr, cacheBytes)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return fmt.Errorf("distlapd: %w", err)
	case <-ctx.Done():
	}
	log.Printf("distlapd: shutdown signal received, draining (up to %s)", shutdownGrace)
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("distlapd: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("distlapd: %w", err)
	}
	log.Printf("distlapd: drained, exiting")
	return nil
}

// runSelftest drives the whole request cycle against the handler in-process
// (load → list → solve → batch → flow → mst → evict → 404, checking the
// single solve is byte-identical to batch entry 0's derivation), then
// verifies the serving-metrics identities the cycle must have produced.
func runSelftest(srv *service.Server) error {
	h := srv.Handler()
	do := func(method, path, body string) (int, []byte) {
		req := httptest.NewRequest(method, path, bytes.NewBufferString(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes()
	}
	expect := func(step string, code, want int, body []byte) error {
		if code != want {
			return fmt.Errorf("%s: status %d (want %d): %s", step, code, want, body)
		}
		return nil
	}

	code, body := do("POST", "/v1/graphs",
		`{"id":"self","graph":{"family":"grid","size":36},"seed":7,"eps":1e-6}`)
	if err := expect("load", code, http.StatusOK, body); err != nil {
		return err
	}
	code, body = do("GET", "/v1/graphs", "")
	if err := expect("list", code, http.StatusOK, body); err != nil {
		return err
	}
	if !bytes.Contains(body, []byte(`"id":"self"`)) {
		return fmt.Errorf("list: loaded instance missing: %s", body)
	}

	// One unit-demand RHS on the 6x6 grid (36 nodes, sum zero).
	b := make([]float64, 36)
	b[0], b[35] = 1, -1
	rhs, err := jsonFloats(b)
	if err != nil {
		return err
	}
	code, single := do("POST", "/v1/graphs/self/solve", `{"b":`+rhs+`}`)
	if err := expect("solve", code, http.StatusOK, single); err != nil {
		return err
	}
	code, batch := do("POST", "/v1/graphs/self/solve", `{"bs":[`+rhs+`,`+rhs+`]}`)
	if err := expect("batch", code, http.StatusOK, batch); err != nil {
		return err
	}
	// Batch RHS 0 derives the same request seed as the single solve, so the
	// single response's sole result must appear verbatim inside the batch.
	if !bytes.Contains(batch, bytes.TrimSuffix(bytes.TrimPrefix(single, []byte(`{"results":[`)), []byte("]}\n"))) {
		return fmt.Errorf("batch entry 0 diverged from single solve")
	}

	code, body = do("POST", "/v1/graphs/self/flow", `{"s":0,"t":35}`)
	if err := expect("flow", code, http.StatusOK, body); err != nil {
		return err
	}
	code, body = do("POST", "/v1/graphs/self/mst", `{}`)
	if err := expect("mst", code, http.StatusOK, body); err != nil {
		return err
	}
	code, body = do("DELETE", "/v1/graphs/self", "")
	if err := expect("evict", code, http.StatusOK, body); err != nil {
		return err
	}
	code, body = do("POST", "/v1/graphs/self/solve", `{"b":`+rhs+`}`)
	if err := expect("post-evict solve", code, http.StatusNotFound, body); err != nil {
		return err
	}
	return checkMetricIdentities(do)
}

// checkMetricIdentities scrapes /metrics and /v1/statusz after the request
// cycle and verifies the accounting identities that must hold on the
// quiescent daemon: per-endpoint request counters sum to the served total
// (and to the status-class counters), latency histogram counts equal the
// per-endpoint request counts, cache hits + misses equal the instance
// lookups the cycle performed, and the deterministic exposition section is
// byte-stable under re-scrape.
func checkMetricIdentities(do func(method, path, body string) (int, []byte)) error {
	// The request cycle above: load, list, solve, batch, flow, mst, evict,
	// post-evict solve = 8 API requests; everything succeeded except the
	// final 404. Instance lookups: solve, batch, flow, mst hit; the
	// post-evict solve missed.
	const (
		wantRequests = 8
		want2xx      = 7
		want4xx      = 1
		wantHits     = 4
		wantMisses   = 1
	)

	code, first := do("GET", "/metrics", "")
	if code != http.StatusOK {
		return fmt.Errorf("metrics: status %d: %s", code, first)
	}
	code, second := do("GET", "/metrics", "")
	if code != http.StatusOK {
		return fmt.Errorf("metrics re-scrape: status %d: %s", code, second)
	}
	detA, _, okA := bytes.Cut(first, []byte(obs.WallClockMarker+"\n"))
	detB, _, okB := bytes.Cut(second, []byte(obs.WallClockMarker+"\n"))
	if !okA || !okB {
		return fmt.Errorf("metrics: exposition missing wall-clock marker")
	}
	if !bytes.Equal(detA, detB) {
		return fmt.Errorf("metrics: deterministic section changed under re-scrape:\n%s\nvs\n%s", detA, detB)
	}
	if !bytes.Contains(detA, []byte(fmt.Sprintf("distlapd_http_requests_served_total %d", wantRequests))) {
		return fmt.Errorf("metrics: served-total series missing or wrong:\n%s", detA)
	}

	code, body := do("GET", "/v1/statusz", "")
	if code != http.StatusOK {
		return fmt.Errorf("statusz: status %d: %s", code, body)
	}
	var sz service.StatuszResponse
	if err := json.Unmarshal(body, &sz); err != nil {
		return fmt.Errorf("statusz: %v: %s", err, body)
	}
	det := sz.Deterministic

	if det.RequestsTotal != wantRequests {
		return fmt.Errorf("statusz: requests_total = %d, want %d", det.RequestsTotal, wantRequests)
	}
	var byEndpoint, byClass int64
	for _, v := range det.RequestsByEndpoint {
		byEndpoint += v
	}
	for _, v := range det.ResponsesByClass {
		byClass += v
	}
	if byEndpoint != det.RequestsTotal || byClass != det.RequestsTotal {
		return fmt.Errorf("statusz: endpoint sum %d / class sum %d != total %d",
			byEndpoint, byClass, det.RequestsTotal)
	}
	if det.ResponsesByClass["2xx"] != want2xx || det.ResponsesByClass["4xx"] != want4xx {
		return fmt.Errorf("statusz: status classes %v, want %d 2xx + %d 4xx",
			det.ResponsesByClass, want2xx, want4xx)
	}
	if det.Cache.Hits != wantHits || det.Cache.Misses != wantMisses {
		return fmt.Errorf("statusz: cache hits/misses = %d/%d, want %d/%d",
			det.Cache.Hits, det.Cache.Misses, wantHits, wantMisses)
	}
	if det.Cache.Entries != 0 || det.Cache.Bytes != 0 || det.Cache.Evictions != 1 {
		return fmt.Errorf("statusz: cache occupancy after evict: %+v", det.Cache)
	}
	for ep, want := range det.RequestsByEndpoint {
		lat, ok := sz.WallClock.Latency[ep]
		if !ok || lat.Count != want {
			return fmt.Errorf("statusz: latency count for %q = %d, want %d (histogram counts must equal request counts)",
				ep, lat.Count, want)
		}
	}
	if det.EngineRounds["solve"] <= 0 || det.EngineRounds["flow"] <= 0 || det.EngineRounds["mst"] <= 0 {
		return fmt.Errorf("statusz: engine rounds missing endpoints: %v", det.EngineRounds)
	}

	code, body = do("GET", "/v1/healthz", "")
	if code != http.StatusOK {
		return fmt.Errorf("healthz: status %d: %s", code, body)
	}
	var hz service.HealthResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		return fmt.Errorf("healthz: %v: %s", err, body)
	}
	if hz.CacheEvictions != det.Cache.Evictions {
		return fmt.Errorf("healthz evictions %d != statusz evictions %d", hz.CacheEvictions, det.Cache.Evictions)
	}
	return nil
}

func jsonFloats(xs []float64) (string, error) {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, x := range xs {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%g", x)
	}
	buf.WriteByte(']')
	return buf.String(), nil
}
