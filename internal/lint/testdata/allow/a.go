// Package allow is a distlint fixture: one suppressed and one unsuppressed
// violation of the same check in the same file.
package allow

import "math/rand"

// Jittered is suppressed by a justified allow on the preceding line.
func Jittered() int {
	//distlint:allow seededrand fixture: demonstrates a justified suppression
	return rand.Intn(3)
}

// Unjustified has no allow comment: flagged.
func Unjustified() int {
	return rand.Intn(3)
}

// EndOfLine is suppressed by a same-line allow.
func EndOfLine() int {
	return rand.Intn(5) //distlint:allow seededrand fixture: same-line suppression
}

// WrongCheck has an allow for a different analyzer: still flagged.
func WrongCheck() int {
	//distlint:allow maporder fixture: wrong check name must not suppress
	return rand.Intn(7)
}
