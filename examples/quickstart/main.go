// Quickstart: solve a Laplacian system on a 16×16 grid in the almost
// universally optimal Supported-CONGEST configuration and print the
// measured round complexity, accuracy, and where the rounds went.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"distlap"
)

func main() {
	// Build the communication graph: a 16x16 grid (n = 256).
	var g *distlap.Graph
	for _, f := range distlap.Families() {
		if f.Name == "grid" {
			g = f.Make(256)
		}
	}

	// A demand vector: inject one unit of current at the top-left corner
	// and extract it at the bottom-right (b must sum to zero).
	b := make([]float64, g.N())
	b[0] = 1
	b[g.N()-1] = -1

	// Configure the solver once; attach an in-memory trace so the run
	// reports a per-phase round breakdown alongside the totals.
	trace := distlap.NewInMemoryTrace()
	solver := distlap.NewSolver(
		distlap.WithMode(distlap.ModeUniversal),
		distlap.WithEps(1e-8),
		distlap.WithSeed(1),
		distlap.WithTrace(trace),
	)

	// Solve L x = b to relative residual 1e-8.
	res, err := solver.Solve(g, b)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the exact solver (feasible at this size).
	xStar, err := distlap.ExactSolve(g, b)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("grid %d nodes, %d edges\n", g.N(), g.M())
	fmt.Printf("iterations:       %d\n", res.Iterations)
	fmt.Printf("CONGEST rounds:   %d (measured on the simulator)\n", res.Rounds)
	fmt.Printf("residual:         %.2e\n", res.Residual)
	fmt.Printf("L-norm error:     %.2e (vs exact solution)\n",
		distlap.RelativeLError(g, res.X, xStar))
	fmt.Printf("corner potential: %+.4f (opposite corner %+.4f)\n",
		res.X[0], res.X[g.N()-1])

	fmt.Println("\nwhere the rounds went (exclusive per phase):")
	for _, ph := range res.Metrics.Phases {
		if ph.Rounds == 0 {
			continue
		}
		fmt.Printf("  %-28s %6d rounds  %8d messages\n", ph.Path, ph.Rounds, ph.Messages)
	}
}
