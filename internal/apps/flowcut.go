package apps

import (
	"fmt"
	"sort"

	"distlap/internal/core"
	"distlap/internal/graph"
)

// This file provides the max-flow/min-cut side of the Laplacian paradigm
// that the paper's conclusion points at (§5: the solver "directly
// impl[ies]" faster max-flow): an exact Edmonds–Karp reference on the
// weighted graph (capacities = edge weights), and the classic sweep-cut
// rounding of electrical potentials, whose quality is measured against the
// exact minimum cut in tests and experiments.

// MaxFlowResult reports an exact s-t max-flow computation.
type MaxFlowResult struct {
	Value    int64
	CutS     []graph.NodeID // the s-side of a minimum cut
	Augments int
}

// MaxFlowExact computes the exact s-t max flow by Edmonds–Karp
// (BFS augmenting paths) treating edge weights as capacities.
// It is the sequential comparator for the electrical-flow applications.
func MaxFlowExact(g *graph.Graph, s, t graph.NodeID) (*MaxFlowResult, error) {
	n := g.N()
	if s < 0 || s >= n || t < 0 || t >= n {
		return nil, fmt.Errorf("apps: %w: s=%d t=%d", graph.ErrNodeRange, s, t)
	}
	if s == t {
		return nil, fmt.Errorf("apps: s and t coincide (%d)", s)
	}
	// Residual capacities per directed edge: 2*id (U->V) and 2*id+1 (V->U).
	resid := make([]int64, 2*g.M())
	for id, e := range g.Edges() {
		resid[2*id] = e.Weight
		resid[2*id+1] = e.Weight
	}
	dirOf := func(id graph.EdgeID, from graph.NodeID) int {
		if g.Edge(id).U == from {
			return 2 * id
		}
		return 2*id + 1
	}
	res := &MaxFlowResult{}
	for {
		// BFS on residual graph.
		parent := make([]graph.NodeID, n)
		parentEdge := make([]graph.EdgeID, n)
		for i := range parent {
			parent[i] = -1
			parentEdge[i] = -1
		}
		parent[s] = s
		queue := []graph.NodeID{s}
		for len(queue) > 0 && parent[t] == -1 {
			v := queue[0]
			queue = queue[1:]
			for _, h := range g.Neighbors(v) {
				if parent[h.To] == -1 && resid[dirOf(h.Edge, v)] > 0 {
					parent[h.To] = v
					parentEdge[h.To] = h.Edge
					queue = append(queue, h.To)
				}
			}
		}
		if parent[t] == -1 {
			break
		}
		// Bottleneck along the path.
		bottleneck := int64(1) << 62
		for v := t; v != s; v = parent[v] {
			if c := resid[dirOf(parentEdge[v], parent[v])]; c < bottleneck {
				bottleneck = c
			}
		}
		for v := t; v != s; v = parent[v] {
			fwd := dirOf(parentEdge[v], parent[v])
			resid[fwd] -= bottleneck
			resid[fwd^1] += bottleneck
		}
		res.Value += bottleneck
		res.Augments++
	}
	// Min cut = nodes reachable from s in the final residual graph.
	reach := make([]bool, n)
	reach[s] = true
	stack := []graph.NodeID{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.Neighbors(v) {
			if !reach[h.To] && resid[dirOf(h.Edge, v)] > 0 {
				reach[h.To] = true
				stack = append(stack, h.To)
			}
		}
	}
	for v := 0; v < n; v++ {
		if reach[v] {
			res.CutS = append(res.CutS, v)
		}
	}
	return res, nil
}

// CutValue returns the total weight of edges leaving the node set side.
func CutValue(g *graph.Graph, side []graph.NodeID) int64 {
	in := make(map[graph.NodeID]bool, len(side))
	for _, v := range side {
		in[v] = true
	}
	var total int64
	for _, e := range g.Edges() {
		if in[e.U] != in[e.V] {
			total += e.Weight
		}
	}
	return total
}

// SweepCutResult reports a potential-sweep cut.
type SweepCutResult struct {
	Side   []graph.NodeID // the s-side found
	Value  int64
	Exact  int64   // the true min-cut value (for the quality ratio)
	Ratio  float64 // Value / Exact (>= 1)
	Rounds int     // rounds paid by the underlying electrical solve
}

// SweepCutFromPotentials computes the s-t electrical potentials through
// the distributed solver and sweeps a threshold over them, returning the
// best (minimum-weight) cut that separates s from t. On many graphs the
// sweep recovers a near-minimum cut — the classic rounding step of
// electrical-flow max-flow algorithms.
func SweepCutFromPotentials(g *graph.Graph, s, t graph.NodeID, mode core.Mode, seed int64) (*SweepCutResult, error) {
	el := &Electrical{G: g, Mode: mode, Seed: seed}
	flow, err := el.Flow(s, t)
	if err != nil {
		return nil, err
	}
	exact, err := MaxFlowExact(g, s, t)
	if err != nil {
		return nil, err
	}
	// Sweep: order nodes by decreasing potential (s-side first); evaluate
	// every prefix cut that has s on one side and t on the other.
	order := make([]graph.NodeID, g.N())
	for i := range order {
		order[i] = i
	}
	x := flow.Potentials
	sort.Slice(order, func(a, b int) bool { return x[order[a]] > x[order[b]] })
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	// Incremental cut evaluation.
	best := int64(1) << 62
	bestPrefix := -1
	var current int64
	inSide := make([]bool, g.N())
	adj := make([][]graph.Half, g.N())
	for v := 0; v < g.N(); v++ {
		adj[v] = g.Neighbors(v)
	}
	for i := 0; i < g.N()-1; i++ {
		v := order[i]
		inSide[v] = true
		for _, h := range adj[v] {
			w := g.Edge(h.Edge).Weight
			if inSide[h.To] {
				current -= w
			} else {
				current += w
			}
		}
		if pos[s] <= i && pos[t] > i && current < best {
			best = current
			bestPrefix = i
		}
	}
	if bestPrefix < 0 {
		return nil, fmt.Errorf("apps: sweep found no separating cut")
	}
	out := &SweepCutResult{
		Value:  best,
		Exact:  exact.Value,
		Rounds: flow.Rounds,
	}
	for i := 0; i <= bestPrefix; i++ {
		out.Side = append(out.Side, order[i])
	}
	if exact.Value > 0 {
		out.Ratio = float64(best) / float64(exact.Value)
	}
	return out, nil
}
