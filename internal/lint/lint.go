// Package lint is a repo-specific static-analysis driver, written purely
// with the standard library's go/ast, go/parser, go/token and go/types. It
// enforces the invariants every measured round count in this repository
// rests on (DESIGN.md "Determinism & verification"):
//
//  1. Determinism — identical seeds must produce identical executions, so
//     no iteration over map order, no global or wall-clock-seeded
//     randomness, no wall-clock reads at all in simulator packages, and no
//     ad-hoc arithmetic deriving child seeds outside internal/seedderive
//     (analyzers maporder, seededrand, walltime, seedderive);
//  2. Model soundness — message payloads are charged honestly in the
//     CONGEST cost model: no silently truncating conversion into
//     congest.Word and no unchecked multi-field packing (analyzer
//     wordtrunc), and no unmanaged concurrency outside the sanctioned
//     worker pool, which would let scheduler nondeterminism leak into
//     measurements (analyzer goroutine);
//  3. Metrics integrity — round/message accounting flows only through the
//     congest/ncc charging primitives, never through direct field writes
//     (analyzers metricsintegrity, floateq for the residual checks those
//     metrics gate);
//  4. Trace integrity — every simtrace span opened in a function is also
//     closed there, so phase attribution cannot silently skew (analyzer
//     tracephase), and errors reported by engine primitives are never
//     dropped on the floor (analyzer errcheck).
//
// Findings can be suppressed with a justification comment on the flagged
// line or the line directly above it:
//
//	//distlint:allow <check>[,<check>...] <why this is safe>
//
// The justification is mandatory: a directive with no trailing text is
// itself a diagnostic (analyzer allowjustify), as is one naming an unknown
// analyzer.
//
// All analyzers share one parse + type-check pass per package (see Loader):
// a package is loaded once and every analyzer runs over the same *Package.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Severity classifies how a diagnostic gates a run: errors fail the build,
// warnings are reported but do not (cmd/distlint exits nonzero only when an
// unsuppressed error-severity finding survives its filters).
type Severity uint8

const (
	// SevWarning marks advisory findings: reported, never build-failing.
	SevWarning Severity = iota + 1
	// SevError marks invariant violations: any unsuppressed one fails the run.
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// ParseSeverity parses "warning" or "error".
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "warning":
		return SevWarning, nil
	case "error":
		return SevError, nil
	}
	return 0, fmt.Errorf("lint: unknown severity %q (want warning or error)", s)
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Check    string // analyzer name
	Severity Severity
	Message  string

	// Suppressed marks findings covered by a //distlint:allow directive.
	// RunAll returns them (the JSON report records suppression state);
	// Run drops them.
	Suppressed bool
	// Justification is the directive's trailing free text for suppressed
	// findings ("" when the directive carries none — which allowjustify
	// flags as its own finding).
	Justification string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named check run over a loaded package.
type Analyzer struct {
	Name     string
	Doc      string
	Severity Severity // default severity for this analyzer's diagnostics
	Run      func(p *Package) []Diagnostic
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder(),
		SeededRand(),
		SeedDerive(),
		MetricsIntegrity(),
		FloatEq(),
		TracePhase(),
		ErrCheck(),
		WordTrunc(),
		AllowJustify(),
		Goroutine(),
		WallTime(),
	}
}

// Select filters the suite by the enable/disable lists: enable, when
// non-empty, keeps only the named analyzers (in the order given); disable
// then removes names. Unknown names in either list are an error.
func Select(all []*Analyzer, enable, disable []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	out := all
	if len(enable) > 0 {
		out = nil
		for _, name := range enable {
			a, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			out = append(out, a)
		}
	}
	if len(disable) > 0 {
		drop := make(map[string]bool, len(disable))
		for _, name := range disable {
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			drop[name] = true
		}
		var kept []*Analyzer
		for _, a := range out {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		out = kept
	}
	return out, nil
}

// knownChecks is the set of analyzer names in the suite, for validating
// allow directives (allowjustify flags directives naming anything else).
func knownChecks() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// AllowDirective is the comment prefix that suppresses findings.
const AllowDirective = "distlint:allow"

// allowSpec is one parsed //distlint:allow directive.
type allowSpec struct {
	comment       *ast.Comment
	checks        []string // named analyzers, in directive order
	justification string   // trailing free text, "" when missing
}

// parseAllow parses c as an allow directive; ok is false when c is not one.
// A directive is "//distlint:allow <check>[,<check>...] <justification>".
func parseAllow(c *ast.Comment) (spec allowSpec, ok bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, AllowDirective) {
		return allowSpec{}, false
	}
	rest := strings.TrimPrefix(text, AllowDirective)
	spec.comment = c
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return spec, true // degenerate directive: no checks, no justification
	}
	for _, check := range strings.Split(fields[0], ",") {
		if check = strings.TrimSpace(check); check != "" {
			spec.checks = append(spec.checks, check)
		}
	}
	spec.justification = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
	return spec, true
}

// allows collects every allow directive in the package's files, in file
// order. Results are memoized on the package so the directive scan — like
// the type-check pass — happens once however many analyzers consume it.
func (p *Package) allows() []allowSpec {
	if p.allowSpecs != nil {
		return *p.allowSpecs
	}
	specs := []allowSpec{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if spec, ok := parseAllow(c); ok {
					specs = append(specs, spec)
				}
			}
		}
	}
	p.allowSpecs = &specs
	return specs
}

// allowKey identifies a (file, line) position an allow directive covers.
type allowKey struct {
	file string
	line int
}

// allowSet maps covered positions to allowed check names and the directive
// justification. A directive covers its own line and the line directly
// below it, so it can sit at the end of the flagged line or alone on the
// line above.
type allowSet map[allowKey]map[string]string

func collectAllows(p *Package) allowSet {
	set := make(allowSet)
	for _, spec := range p.allows() {
		pos := p.Fset.Position(spec.comment.Pos())
		for _, check := range spec.checks {
			for _, line := range []int{pos.Line, pos.Line + 1} {
				k := allowKey{file: pos.Filename, line: line}
				if set[k] == nil {
					set[k] = make(map[string]string)
				}
				set[k][check] = spec.justification
			}
		}
	}
	return set
}

// RunAll executes the analyzers over the packages and returns every finding,
// suppressed ones included (marked, with their justification), sorted by
// position. Analyzer severities fill in zero-valued diagnostic severities.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		allows := collectAllows(p)
		for _, a := range analyzers {
			sev := a.Severity
			if sev == 0 {
				sev = SevError
			}
			for _, d := range a.Run(p) {
				if d.Severity == 0 {
					d.Severity = sev
				}
				k := allowKey{file: d.Pos.Filename, line: d.Pos.Line}
				if why, ok := allows[k][d.Check]; ok {
					d.Suppressed = true
					d.Justification = why
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// Run executes the analyzers and returns only the unsuppressed findings,
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, d := range RunAll(pkgs, analyzers) {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// diag builds a Diagnostic for a node in p with the analyzer's default
// severity (filled in by RunAll).
func diag(p *Package, n ast.Node, check, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(n.Pos()),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

// underInternal reports whether the package path lies under
// <module>/internal/ (module path is the first path element sequence before
// "/internal/").
func underInternal(path string) bool {
	return strings.Contains(path, "/internal/")
}

// underAny reports whether path equals one of the roots or lies beneath one
// (path-segment-aware prefix match).
func underAny(path string, roots []string) bool {
	for _, r := range roots {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}

// inScope reports whether path lies at or below the module-relative package
// suffix (e.g. "/internal/experiments").
func inScope(path, suffix string) bool {
	return strings.HasSuffix(path, suffix) || strings.Contains(path, suffix+"/")
}

// callSite is one resolved pkg.Func(...) call.
type callSite struct {
	node *ast.CallExpr
	pkg  string // import path of the called package
	fn   string // function name
}

// forEachPkgCall walks f invoking fn for every call that is a direct
// pkg.Func selector (as resolved by pkgFuncOf).
func forEachPkgCall(p *Package, f *ast.File, fn func(callSite)) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgPath, name := pkgFuncOf(p, call); pkgPath != "" {
			fn(callSite{node: call, pkg: pkgPath, fn: name})
		}
		return true
	})
}

// inspectWithStack walks f invoking fn with each node and the stack of its
// ancestors (outermost first, not including n itself). Returning false from
// fn prunes the subtree.
func inspectWithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
