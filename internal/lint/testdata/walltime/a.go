// Package walltime is a distlint fixture: wall-clock reads in simulator
// code alongside the pure time-arithmetic forms that stay legal.
package walltime

import "time"

// Stamp reads the clock: flagged.
func Stamp() time.Time {
	return time.Now() // violation: wall-clock read
}

// Elapsed measures a wall duration: flagged.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // violation: wall-clock read
}

// Nap sleeps on the runtime timer heap: flagged.
func Nap() {
	time.Sleep(time.Millisecond) // violation: timer dependence
}

// Justified is the suppressed form (the harness exemption made explicit).
func Justified() time.Time {
	//distlint:allow walltime fixture: diagnostic-only timestamp, never feeds a measurement
	return time.Now()
}

// Arithmetic manipulates durations without observing the clock: never
// flagged.
func Arithmetic(d time.Duration) time.Duration {
	return 2*d + time.Second
}

// Fixed builds a constant instant without observing the clock: never
// flagged.
func Fixed() time.Time {
	return time.Unix(0, 0)
}
