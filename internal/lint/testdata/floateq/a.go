// Package floateq is a distlint fixture (multi-file): floating-point
// equality comparisons in numerical code.
package floateq

// Converged compares a float against zero exactly: flagged.
func Converged(residual float64) bool {
	return residual == 0
}

// IntsOK compares integers: not flagged.
func IntsOK(a, b int) bool {
	return a == b
}

// TolOK compares against a tolerance: not flagged.
func TolOK(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
