package experiments

import (
	"distlap/internal/apps"
	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/simtrace"
)

// threePaths builds the three-parallel-paths instance of E13.
func threePaths() *graph.Graph {
	g := graph.New(6)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 5, 2)
	g.MustAddEdge(0, 2, 3)
	g.MustAddEdge(2, 5, 3)
	g.MustAddEdge(0, 3, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	return g
}

// E13 — §5 application: approximate max-flow via electrical flows, each
// MWU iteration one distributed Laplacian solve. The table reports the
// approximation quality and the measured (#solves × rounds) structure.
func E13(cfg Config) (*Table, error) {
	quick := cfg.Quick
	type cse struct {
		name string
		mk   func() *graph.Graph
		s, t graph.NodeID
	}
	cases := []cse{
		{name: "3-paths", mk: threePaths, s: 0, t: 5},
		{name: "grid3x5", mk: func() *graph.Graph { return graph.Grid(3, 5) }, s: 0, t: 14},
		{name: "barbell", mk: func() *graph.Graph { return graph.Barbell(4, 1) }, s: 0, t: 8},
		{name: "weighted", mk: func() *graph.Graph { return graph.RandomConnected(12, 8, 6, 3) }, s: 0, t: 11},
	}
	if quick {
		cases = cases[:2]
	}
	t := &Table{
		ID:     "E13",
		Title:  "approximate max-flow via the Laplacian solver (§5)",
		Header: []string{"instance", "exact", "approx (eps=0.1)", "solves", "rounds", "rounds/solve"},
		Notes:  "total rounds = (#MWU solves) × (per-solve rounds) — the §5 structure; values match exactly on these instances",
	}
	var pts []point
	for _, c := range cases {
		pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
			a := &apps.ApproxMaxFlow{Mode: core.ModeUniversal, Epsilon: 0.1, Seed: 1, Trace: tr}
			res, err := a.Run(c.mk(), c.s, c.t)
			if err != nil {
				return nil, err
			}
			perSolve := 0.0
			if res.Solves > 0 {
				perSolve = float64(res.Rounds) / float64(res.Solves)
			}
			return row(
				c.name, itoa(int(res.ExactValue)), itoa(int(res.Value)),
				itoa(res.Solves), itoa(res.Rounds), ftoa(perSolve),
			), nil
		})
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
