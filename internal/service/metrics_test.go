package service

// Serving-metrics tests: the two-daemon determinism gate over the
// /metrics exposition and the statusz deterministic object, the metric
// identities (per-endpoint counters sum to totals, histogram counts match
// request counts, cache hits + misses match instance lookups), the
// admission-bypass contract for scrape endpoints, access-log correlation,
// and a concurrent scrape-while-solving run for the race detector.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"distlap/internal/obs"
)

func newTestRequest(method, path, body string) *http.Request {
	return httptest.NewRequest(method, path, strings.NewReader(body))
}

func newTestRecorder() *httptest.ResponseRecorder { return httptest.NewRecorder() }

// metricsScript is the canonical request sequence the metrics tests
// replay: every endpoint once, plus a batch solve and a 404.
var metricsScript = []struct{ method, path, body string }{
	{"POST", "/v1/graphs", loadGrid},
	{"GET", "/v1/graphs", ""},
	{"POST", "/v1/graphs/g1/solve", `{"b":` + unitRHS36(0, 35) + `}`},
	{"POST", "/v1/graphs/g1/solve", `{"bs":[` + unitRHS36(0, 35) + `,` + unitRHS36(3, 30) + `]}`},
	{"POST", "/v1/graphs/g1/flow", `{"s":1,"t":34}`},
	{"POST", "/v1/graphs/g1/mst", `{}`},
	{"DELETE", "/v1/graphs/g1", ""},
	{"POST", "/v1/graphs/g1/solve", `{"b":` + unitRHS36(0, 35) + `}`}, // 404: evicted
}

func unitRHS36(s, t int) string { return unitRHS(36, s, t) }

func playScript(t *testing.T, h http.Handler) {
	t.Helper()
	for i, step := range metricsScript {
		code, body := doReq(t, h, step.method, step.path, step.body)
		want := http.StatusOK
		if i == len(metricsScript)-1 {
			want = http.StatusNotFound
		}
		mustStatus(t, step.method+" "+step.path, code, want, body)
	}
}

func scrape(t *testing.T, h http.Handler, path string) []byte {
	t.Helper()
	code, body := doReq(t, h, "GET", path, "")
	mustStatus(t, "GET "+path, code, http.StatusOK, body)
	return body
}

// detSection cuts a /metrics exposition at the wall-clock marker and
// returns the deterministic half.
func detSection(t *testing.T, exposition []byte) []byte {
	t.Helper()
	det, _, found := bytes.Cut(exposition, []byte(obs.WallClockMarker+"\n"))
	if !found {
		t.Fatalf("exposition missing wall-clock marker:\n%s", exposition)
	}
	return det
}

// TestMetricsDeterministicAcrossDaemons is the observability determinism
// gate: two independently constructed Servers replaying the same request
// sequence expose byte-identical deterministic /metrics sections and
// byte-identical statusz deterministic objects (the wall-clock halves are
// free to differ — that is the point of the split).
func TestMetricsDeterministicAcrossDaemons(t *testing.T) {
	run := func() (metrics, statuszDet []byte) {
		h := New(Config{}).Handler()
		playScript(t, h)
		var sz StatuszResponse
		if err := json.Unmarshal(scrape(t, h, statuszPath), &sz); err != nil {
			t.Fatalf("statusz: %v", err)
		}
		detJSON, err := json.Marshal(sz.Deterministic)
		if err != nil {
			t.Fatal(err)
		}
		return scrape(t, h, metricsPath), detJSON
	}
	m1, s1 := run()
	m2, s2 := run()
	if d1, d2 := detSection(t, m1), detSection(t, m2); !bytes.Equal(d1, d2) {
		t.Errorf("deterministic /metrics sections diverge across daemons:\n%s\nvs\n%s", d1, d2)
	}
	if !bytes.Equal(s1, s2) {
		t.Errorf("statusz deterministic objects diverge across daemons:\n%s\nvs\n%s", s1, s2)
	}
	// Scraping must not perturb the metrics it reads: a second scrape of the
	// same daemon returns an identical deterministic section.
	h := New(Config{}).Handler()
	playScript(t, h)
	a, b := scrape(t, h, metricsPath), scrape(t, h, metricsPath)
	if !bytes.Equal(detSection(t, a), detSection(t, b)) {
		t.Errorf("re-scrape changed the deterministic section:\n%s\nvs\n%s", a, b)
	}
}

// TestMetricsIdentities replays the script and checks the accounting
// identities the registry must satisfy on a quiescent daemon.
func TestMetricsIdentities(t *testing.T) {
	h := New(Config{}).Handler()
	playScript(t, h)
	var sz StatuszResponse
	if err := json.Unmarshal(scrape(t, h, statuszPath), &sz); err != nil {
		t.Fatal(err)
	}
	det := sz.Deterministic

	if det.RequestsTotal != int64(len(metricsScript)) {
		t.Errorf("requests_total = %d, want %d", det.RequestsTotal, len(metricsScript))
	}
	var byEndpoint int64
	for _, v := range det.RequestsByEndpoint {
		byEndpoint += v
	}
	if byEndpoint != det.RequestsTotal {
		t.Errorf("per-endpoint requests sum to %d, total is %d", byEndpoint, det.RequestsTotal)
	}
	var byClass int64
	for _, v := range det.ResponsesByClass {
		byClass += v
	}
	if byClass != det.RequestsTotal {
		t.Errorf("per-class responses sum to %d, total is %d", byClass, det.RequestsTotal)
	}
	if det.ResponsesByClass["2xx"] != 7 || det.ResponsesByClass["4xx"] != 1 {
		t.Errorf("status classes = %v, want 7 2xx + 1 4xx", det.ResponsesByClass)
	}
	// Script sends 3 solve, 1 flow, 1 mst request; each does exactly one
	// cache lookup; only the post-evict solve misses.
	if got := det.Cache.Hits + det.Cache.Misses; got != 5 {
		t.Errorf("cache hits+misses = %d, want 5 instance lookups", got)
	}
	if det.Cache.Misses != 1 {
		t.Errorf("cache misses = %d, want 1 (the post-evict solve)", det.Cache.Misses)
	}
	if det.Cache.Evictions != 1 || det.Cache.Entries != 0 || det.Cache.Bytes != 0 {
		t.Errorf("cache accounting after DELETE: %+v", det.Cache)
	}
	if det.Cache.BudgetBytes != DefaultCacheBytes {
		t.Errorf("cache budget = %d, want %d", det.Cache.BudgetBytes, DefaultCacheBytes)
	}
	if det.EngineRounds["solve"] <= 0 || det.EngineRounds["flow"] <= 0 || det.EngineRounds["mst"] <= 0 {
		t.Errorf("engine rounds missing endpoints: %v", det.EngineRounds)
	}

	// Latency histogram counts equal the per-endpoint request counts.
	for ep, want := range det.RequestsByEndpoint {
		lat, ok := sz.WallClock.Latency[ep]
		if !ok {
			t.Errorf("endpoint %q has requests but no latency series", ep)
			continue
		}
		if lat.Count != want {
			t.Errorf("latency count for %q = %d, want %d", ep, lat.Count, want)
		}
	}

	// healthz reports the same cache accounting.
	var hz HealthResponse
	if err := json.Unmarshal(scrape(t, h, healthzPath), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.CacheEvictions != det.Cache.Evictions {
		t.Errorf("healthz evictions %d != statusz evictions %d", hz.CacheEvictions, det.Cache.Evictions)
	}
	if int64(hz.CachedInstances) != det.Cache.Entries || hz.CacheBytes != det.Cache.Bytes {
		t.Errorf("healthz occupancy (%d entries, %d bytes) != statusz (%d, %d)",
			hz.CachedInstances, hz.CacheBytes, det.Cache.Entries, det.Cache.Bytes)
	}
}

// TestScrapeBypassesAdmission fills the admission semaphore and checks a
// saturated daemon still serves /metrics, /v1/statusz and /v1/healthz —
// while an API request is refused with a counted 503.
func TestScrapeBypassesAdmission(t *testing.T) {
	s := New(Config{MaxInFlight: 1})
	h := s.Handler()
	s.sem <- struct{}{} // saturate
	for _, p := range []string{metricsPath, statuszPath, healthzPath} {
		if code, body := doReq(t, h, "GET", p, ""); code != http.StatusOK {
			t.Errorf("saturated GET %s: status %d: %s", p, code, body)
		}
	}
	code, body := doReq(t, h, "GET", "/v1/graphs", "")
	mustStatus(t, "saturated list", code, http.StatusServiceUnavailable, body)
	<-s.sem

	var sz StatuszResponse
	if err := json.Unmarshal(scrape(t, h, statuszPath), &sz); err != nil {
		t.Fatal(err)
	}
	if sz.Deterministic.ResponsesByClass["5xx"] != 1 {
		t.Errorf("admission 503 not counted: %v", sz.Deterministic.ResponsesByClass)
	}
	if sz.Deterministic.RequestsTotal != 1 {
		t.Errorf("scrapes were instrumented: requests_total = %d, want 1", sz.Deterministic.RequestsTotal)
	}
}

// TestAccessLogCorrelation replays the script with the access log enabled
// and checks one record per API request, none for scrapes, IDs matching
// the X-Request-Id headers, and byte-identical logs across daemons after
// zeroing the wall-clock duration field.
func TestAccessLogCorrelation(t *testing.T) {
	run := func() (lines []obs.AccessRecord, headerIDs []string) {
		var buf bytes.Buffer
		s := New(Config{AccessLog: &buf})
		h := s.Handler()
		for i, step := range metricsScript {
			req := newTestRequest(step.method, step.path, step.body)
			rec := newTestRecorder()
			h.ServeHTTP(rec, req)
			want := http.StatusOK
			if i == len(metricsScript)-1 {
				want = http.StatusNotFound
			}
			mustStatus(t, step.method+" "+step.path, rec.Code, want, rec.Body.Bytes())
			headerIDs = append(headerIDs, rec.Header().Get("X-Request-Id"))
		}
		scrape(t, h, metricsPath) // scrapes are not logged
		if err := s.AccessLogErr(); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
			var rec obs.AccessRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("access log line %q: %v", line, err)
			}
			lines = append(lines, rec)
		}
		return lines, headerIDs
	}
	lines, ids := run()
	if len(lines) != len(metricsScript) {
		t.Fatalf("access log has %d records, want %d (scrapes must not be logged)", len(lines), len(metricsScript))
	}
	for i, rec := range lines {
		if rec.ID != ids[i] {
			t.Errorf("record %d id %q != X-Request-Id %q", i, rec.ID, ids[i])
		}
		if rec.Method != metricsScript[i].method || rec.Path != metricsScript[i].path {
			t.Errorf("record %d is %s %s, want %s %s", i, rec.Method, rec.Path,
				metricsScript[i].method, metricsScript[i].path)
		}
	}
	if lines[len(lines)-1].Status != http.StatusNotFound {
		t.Errorf("last record status = %d, want 404", lines[len(lines)-1].Status)
	}

	// Determinism modulo the one wall-clock field.
	lines2, _ := run()
	for i := range lines {
		a, b := lines[i], lines2[i]
		a.DurationMicros, b.DurationMicros = 0, 0
		if a != b {
			t.Errorf("access record %d diverges across daemons: %+v vs %+v", i, a, b)
		}
	}
}

// TestConcurrentScrapeWhileSolving hammers solves and scrapes in parallel;
// the race detector (make race covers this package) is the assertion, plus
// the identities holding once the daemon quiesces.
func TestConcurrentScrapeWhileSolving(t *testing.T) {
	h := New(Config{}).Handler()
	code, body := doReq(t, h, "POST", "/v1/graphs", loadGrid)
	mustStatus(t, "load", code, http.StatusOK, body)

	const workers, perWorker = 4, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := newTestRequest("POST", "/v1/graphs/g1/solve", `{"b":`+unitRHS36(0, 35)+`}`)
				rec := newTestRecorder()
				h.ServeHTTP(rec, req)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for _, p := range []string{metricsPath, statuszPath, healthzPath} {
					req := newTestRequest("GET", p, "")
					h.ServeHTTP(newTestRecorder(), req)
				}
			}
		}()
	}
	wg.Wait()

	var sz StatuszResponse
	if err := json.Unmarshal(scrape(t, h, statuszPath), &sz); err != nil {
		t.Fatal(err)
	}
	det := sz.Deterministic
	wantSolves := int64(workers * perWorker)
	if det.RequestsByEndpoint["solve"] != wantSolves {
		t.Errorf("solve requests = %d, want %d", det.RequestsByEndpoint["solve"], wantSolves)
	}
	if det.RequestsTotal != wantSolves+1 {
		t.Errorf("requests_total = %d, want %d (solves + load)", det.RequestsTotal, wantSolves+1)
	}
	if got := det.Cache.Hits + det.Cache.Misses; got != wantSolves {
		t.Errorf("cache lookups = %d, want %d", got, wantSolves)
	}
	if sz.WallClock.Latency["solve"].Count != wantSolves {
		t.Errorf("solve latency count = %d, want %d", sz.WallClock.Latency["solve"].Count, wantSolves)
	}
}
