package service

// Tests for the serving-path hardening (harden.go + decodeBody): body caps,
// admission control, per-request deadlines, panic recovery, /v1/healthz,
// and graceful Shutdown draining in-flight requests. The blocking routes
// some tests register exist only on the test's own Server instance —
// channels, not clocks, make the concurrency deterministic.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func doRec(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestServerRejectsOversizedBody: a body past MaxBodyBytes answers a
// structured 400 naming the limit, and a small body on the same server
// still works.
func TestServerRejectsOversizedBody(t *testing.T) {
	s := New(Config{MaxBodyBytes: 256})
	h := s.Handler()

	var sb strings.Builder
	sb.WriteString(`{"id":"x","graph":{"n":2,"edges":[`)
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`[0,1,1]`)
	}
	sb.WriteString(`]}}`)
	code, body := doReq(t, h, "POST", "/v1/graphs", sb.String())
	mustStatus(t, "oversized load", code, http.StatusBadRequest, body)
	if !bytes.Contains(body, []byte("exceeds 256 bytes")) {
		t.Fatalf("oversized-body error does not name the limit: %s", body)
	}

	code, body = doReq(t, h, "POST", "/v1/graphs",
		`{"id":"x","graph":{"family":"grid","size":16},"seed":1}`)
	mustStatus(t, "small load after oversized", code, http.StatusOK, body)
}

// TestServerSaturationAnswers503: with the in-flight gate full, requests
// get 503 + Retry-After while /v1/healthz bypasses the gate and keeps
// answering; releasing the slot restores service.
func TestServerSaturationAnswers503(t *testing.T) {
	s := New(Config{MaxInFlight: 1})
	h := s.Handler()

	s.sem <- struct{}{} // occupy the sole slot
	rec := doRec(t, h, "GET", "/v1/graphs", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated list: status %d, want 503: %s", rec.Code, rec.Body.Bytes())
	}
	if got := rec.Header().Get("Retry-After"); got != retryAfterSeconds {
		t.Fatalf("saturated 503 Retry-After = %q, want %q", got, retryAfterSeconds)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("saturated")) {
		t.Fatalf("saturated error body: %s", rec.Body.Bytes())
	}

	code, body := doReq(t, h, "GET", healthzPath, "")
	mustStatus(t, "healthz under saturation", code, http.StatusOK, body)
	var hr HealthResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.InFlight != 1 || hr.MaxInFlight != 1 {
		t.Fatalf("healthz under saturation: %+v", hr)
	}

	<-s.sem
	code, body = doReq(t, h, "GET", "/v1/graphs", "")
	mustStatus(t, "list after release", code, http.StatusOK, body)
}

// TestHealthzReportsCacheOccupancy: the health body carries the cache and
// admission numbers an operator steers by.
func TestHealthzReportsCacheOccupancy(t *testing.T) {
	s := New(Config{})
	h := s.Handler()

	var hr HealthResponse
	code, body := doReq(t, h, "GET", healthzPath, "")
	mustStatus(t, "healthz empty", code, http.StatusOK, body)
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.InFlight != 0 || hr.MaxInFlight != DefaultMaxInFlight ||
		hr.CachedInstances != 0 || hr.CacheBytes != 0 || hr.CacheBudgetBytes != DefaultCacheBytes {
		t.Fatalf("empty healthz: %+v", hr)
	}

	code, body = doReq(t, h, "POST", "/v1/graphs", loadGrid)
	mustStatus(t, "load", code, http.StatusOK, body)
	code, body = doReq(t, h, "GET", healthzPath, "")
	mustStatus(t, "healthz loaded", code, http.StatusOK, body)
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.CachedInstances != 1 || hr.CacheBytes <= 0 {
		t.Fatalf("loaded healthz: %+v", hr)
	}
}

// TestRecoverPanicsKeepsServing: a panicking handler becomes a structured
// 500 and the daemon serves the next request as if nothing happened.
func TestRecoverPanicsKeepsServing(t *testing.T) {
	s := New(Config{})
	s.mux.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("poisoned request")
	})
	h := s.Handler()

	code, body := doReq(t, h, "GET", "/v1/boom", "")
	mustStatus(t, "panicking route", code, http.StatusInternalServerError, body)
	if !bytes.Contains(body, []byte("internal error: poisoned request")) {
		t.Fatalf("panic 500 body: %s", body)
	}

	code, body = doReq(t, h, "POST", "/v1/graphs", loadGrid)
	mustStatus(t, "load after panic", code, http.StatusOK, body)
	code, body = doReq(t, h, "POST", "/v1/graphs/g1/solve", `{"b":`+unitRHS(36, 0, 35)+`}`)
	mustStatus(t, "solve after panic", code, http.StatusOK, body)
}

// TestDeadlineExpiryAnswers503: the per-request deadline reaches handlers
// through the request context, and an expired deadline maps to a retryable
// 503 with Retry-After (writeSolveError), distinct from client cancel.
func TestDeadlineExpiryAnswers503(t *testing.T) {
	s := New(Config{RequestTimeout: time.Millisecond})
	s.mux.HandleFunc("GET /v1/stall", func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // a solve polls the context at round barriers
		writeSolveError(w, r, r.Context().Err())
	})
	rec := doRec(t, s.Handler(), "GET", "/v1/stall", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired request: status %d, want 503: %s", rec.Code, rec.Body.Bytes())
	}
	if got := rec.Header().Get("Retry-After"); got != retryAfterSeconds {
		t.Fatalf("expired 503 Retry-After = %q, want %q", got, retryAfterSeconds)
	}
}

// TestNewHTTPServerSetsSocketTimeouts pins the slow-loris protections: a
// distlapd listener must never accept a connection it is willing to wait
// forever on.
func TestNewHTTPServerSetsSocketTimeouts(t *testing.T) {
	hs := New(Config{}).NewHTTPServer(":0")
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 ||
		hs.WriteTimeout <= 0 || hs.IdleTimeout <= 0 {
		t.Fatalf("NewHTTPServer left a socket timeout unset: %+v", hs)
	}
}

// TestShutdownDrainsInFlight: Server.Shutdown on the hardened http.Server
// waits for an in-flight request to finish (the response arrives whole)
// instead of killing its connection.
func TestShutdownDrainsInFlight(t *testing.T) {
	s := New(Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.mux.HandleFunc("GET /v1/block", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		writeJSON(w, http.StatusOK, map[string]string{"drained": "whole"})
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := s.NewHTTPServer(ln.Addr().String())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	respc := make(chan []byte, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/v1/block")
		if err != nil {
			errc <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errc <- fmt.Errorf("in-flight request: status %d", resp.StatusCode)
			return
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			errc <- err
			return
		}
		respc <- body
	}()

	<-entered
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- hs.Shutdown(t.Context()) }()

	// Shutdown must wait for the blocked request, not return under it.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case body := <-respc:
		if !bytes.Contains(body, []byte(`"drained":"whole"`)) {
			t.Fatalf("drained response body: %s", body)
		}
	case err := <-errc:
		t.Fatalf("in-flight request failed across Shutdown: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight response never arrived")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

// TestCacheEvictWhileSolveInFlight hammers the evict/reload path while
// solves run against the same instance ID. Instances are immutable and
// handlers hold their *Instance across eviction, so every response must be
// either a correct 200 or a clean 404 — run under -race, this is the
// aliasing proof for the cache's share-nothing claim.
func TestCacheEvictWhileSolveInFlight(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	code, body := doReq(t, h, "POST", "/v1/graphs", loadGrid)
	mustStatus(t, "load", code, http.StatusOK, body)

	const solvers, rounds = 4, 8
	rhs := unitRHS(36, 0, 35)
	done := make(chan error, solvers)
	for w := 0; w < solvers; w++ {
		go func() {
			for i := 0; i < rounds; i++ {
				code, body := doReq(t, h, "POST", "/v1/graphs/g1/solve", `{"b":`+rhs+`}`)
				switch code {
				case http.StatusOK:
					var sr SolveResponse
					if err := json.Unmarshal(body, &sr); err != nil {
						done <- err
						return
					}
					if len(sr.Results) != 1 || sr.Results[0].Residual > 1e-6 {
						done <- fmt.Errorf("solve under eviction: %+v", sr.Results)
						return
					}
				case http.StatusNotFound:
					// Evicted between requests — clean miss, not corruption.
				default:
					done <- fmt.Errorf("solve under eviction: status %d: %s", code, body)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 2*rounds; i++ {
		s.cache.evict("g1")
		code, body := doReq(t, h, "POST", "/v1/graphs", loadGrid)
		mustStatus(t, "reload", code, http.StatusOK, body)
	}
	for w := 0; w < solvers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
