package simprof

import (
	"bytes"
	"strings"
	"testing"

	"distlap/internal/simtrace"
)

// traceBytes records a small synthetic execution through a series-enabled
// JSONL sink: two phases on the congest engine, one ncc batch, a gauge
// series, and node attribution.
func traceBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	j := simtrace.NewJSONLSeries(&buf)
	j.Begin("solve")
	j.Begin("matvec")
	for r := 0; r < 4; r++ {
		j.Messages(simtrace.EngineCongest, 2*r, 3)
		j.NodeWords(simtrace.EngineCongest, r, r+1, 3)
		j.Rounds(simtrace.EngineCongest, 1)
	}
	j.End("matvec")
	j.Gauge("pcg.residual", 1, 0.25, 4)
	j.Begin("reduce")
	j.Messages(simtrace.EngineNCC, simtrace.NoEdge, 5)
	j.NodeWords(simtrace.EngineNCC, 0, 2, 5)
	j.Rounds(simtrace.EngineNCC, 2)
	j.End("reduce")
	j.Gauge("pcg.residual", 2, 0.0625, 6)
	j.End("solve")
	// Messages after the last round boundary: exercised by the Flush tail
	// series record.
	j.Messages(simtrace.EngineCongest, 0, 1)
	j.NodeWords(simtrace.EngineCongest, 0, 1, 1)
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParseAndIdentity(t *testing.T) {
	raw := traceBytes(t)
	p, err := Parse(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckIdentity(); err != nil {
		t.Fatal(err)
	}
	if got, want := p.EngineRounds(), 6; got != want {
		t.Fatalf("EngineRounds = %d, want %d", got, want)
	}
	if got, want := p.EngineMessages(), int64(18); got != want {
		t.Fatalf("EngineMessages = %d, want %d", got, want)
	}
	// 4 congest boundaries + 1 ncc boundary + the Flush tail record.
	if got, want := len(p.Series), 6; got != want {
		t.Fatalf("len(Series) = %d, want %d", got, want)
	}
	tail := p.Series[len(p.Series)-1]
	if tail.Rounds != 0 || tail.Messages != 1 {
		t.Fatalf("tail series record = %+v, want rounds=0 messages=1", tail)
	}
	if len(p.Gauges) != 1 || p.Gauges[0].Name != "pcg.residual" || len(p.Gauges[0].Samples) != 2 {
		t.Fatalf("Gauges = %+v, want one pcg.residual series with 2 samples", p.Gauges)
	}
	if p.Gauges[0].Samples[1].Value != 0.0625 || p.Gauges[0].Samples[1].Round != 0 {
		t.Fatalf("gauge sample = %+v", p.Gauges[0].Samples[1])
	}
	if len(p.Nodes) == 0 || len(p.NodeHist) == 0 {
		t.Fatalf("expected node aggregates, got nodes=%d nodehist=%d", len(p.Nodes), len(p.NodeHist))
	}
	// Every congest delivery charges both endpoints, so the engine's node
	// words sum to exactly twice its 13 messages.
	var nodeWords int64
	for _, n := range p.Nodes {
		if n.Engine == simtrace.EngineCongest {
			nodeWords += n.Words
		}
	}
	if nodeWords != 2*13 {
		t.Fatalf("congest node words = %d, want %d", nodeWords, 2*13)
	}
}

func TestParseRejectsBrokenIdentity(t *testing.T) {
	raw := string(traceBytes(t))
	// Inflate one engine total so the phase identity breaks.
	broken := strings.Replace(raw,
		`{"ev":"engine","engine":"congest","rounds":4`,
		`{"ev":"engine","engine":"congest","rounds":5`, 1)
	if broken == raw {
		t.Fatal("fixture did not contain the expected engine record")
	}
	p, err := Parse(strings.NewReader(broken))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckIdentity(); err == nil {
		t.Fatal("CheckIdentity accepted a broken trace")
	}
}

func TestFolded(t *testing.T) {
	p, err := Parse(bytes.NewReader(traceBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := Folded(&out, p, WeightRounds); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"solve;matvec 4\n", "solve;reduce 2\n"} {
		if !strings.Contains(got, want) {
			t.Fatalf("folded output missing %q:\n%s", want, got)
		}
	}
	out.Reset()
	if err := Folded(&out, p, WeightMessages); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(untracked) 1\n") {
		t.Fatalf("folded -weight messages missing untracked frame:\n%s", out.String())
	}
	if err := Folded(&out, p, "walltime"); err == nil {
		t.Fatal("Folded accepted an unknown weight")
	}
}

func TestTimeline(t *testing.T) {
	p, err := Parse(bytes.NewReader(traceBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := Timeline(&out, p, 4); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"timeline: 6 rounds over 4 buckets", "solve/matvec", "messages", "max edge load"} {
		if !strings.Contains(got, want) {
			t.Fatalf("timeline missing %q:\n%s", want, got)
		}
	}
}

// TestTimelineGaugeOverlay: non-fault gauge streams overlay as
// value-mapped rows on the round axis — the last sample per bucket,
// log-scaled intensity over the series' own range, so a converging
// residual fades and a stagnating one stays bright.
func TestTimelineGaugeOverlay(t *testing.T) {
	p, err := Parse(bytes.NewReader(traceBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := Timeline(&out, p, 4); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// The fixture's residual samples land at cumulative rounds 5 and 7
	// (clamped to 6): buckets 2 and 3 of four. 0.25 is the series max
	// (brightest), 0.0625 the min (dimmest nonzero).
	found := false
	for _, line := range strings.Split(got, "\n") {
		if !strings.Contains(line, "pcg.residual") {
			continue
		}
		found = true
		if !strings.Contains(line, "|  @.|") || !strings.Contains(line, "2 samples") {
			t.Fatalf("pcg.residual overlay row wrong: %q", line)
		}
	}
	if !found {
		t.Fatalf("timeline missing the pcg.residual overlay:\n%s", got)
	}

	// A stagnating residual renders at full intensity in every sampled
	// bucket — constant-value series must stay visible, not flatline away.
	var buf bytes.Buffer
	j := simtrace.NewJSONLSeries(&buf)
	j.Begin("solve")
	for r := 1; r <= 4; r++ {
		j.Messages(simtrace.EngineCongest, 0, 1)
		j.Gauge("pcg.residual", r, 0.5, r)
		j.Gauge("recovery.attempt", r, float64(r%2*3-1), r) // -1 sentinel: linear path
		j.Rounds(simtrace.EngineCongest, 1)
	}
	j.End("solve")
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := Timeline(&out, p2, 4); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "pcg.residual") && !strings.Contains(line, "|@@@@|") {
			t.Fatalf("stagnating residual did not render at full intensity: %q", line)
		}
		// Linear mapping (the -1 sentinel forbids log): 2 maps bright,
		// -1 dim, alternating with the samples.
		if strings.Contains(line, "recovery.attempt") && !strings.Contains(line, "|@.@.|") {
			t.Fatalf("recovery.attempt overlay row wrong: %q", line)
		}
	}
}

// TestTimelineFaultMarkers: fault.<kind> gauge streams render as marker
// rows, aligned to the series axis by stream position (a fault emitted
// mid-round precedes that round's boundary record), and samples past the
// final boundary clamp into the last bucket instead of vanishing.
func TestTimelineFaultMarkers(t *testing.T) {
	var buf bytes.Buffer
	j := simtrace.NewJSONLSeries(&buf)
	j.Begin("solve")
	for r := 1; r <= 4; r++ {
		j.Messages(simtrace.EngineCongest, 0, 2)
		switch r { // faults strike mid-round, as the engines emit them
		case 1:
			j.Gauge("fault.drop", 1, 3, r)
		case 2:
			j.Gauge("fault.drop", 2, 5, r)
		case 4:
			j.Gauge("fault.dup", 1, 3, r)
		}
		j.Rounds(simtrace.EngineCongest, 1)
	}
	j.End("solve")
	j.Gauge("fault.delay", 1, 2, 9) // past the last boundary: clamps
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := Timeline(&out, p, 4); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"fault.drop", "2 events",
		"fault.dup", "fault.delay", "1 events",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("timeline missing %q:\n%s", want, got)
		}
	}
	// The two drops land in buckets 0 and 1 of four; dup in the last.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "fault.drop") && !strings.Contains(line, "|@@  |") {
			t.Fatalf("fault.drop marker row misplaced: %q", line)
		}
		if strings.Contains(line, "fault.delay") && !strings.Contains(line, "|   @|") {
			t.Fatalf("fault.delay sample did not clamp to the last bucket: %q", line)
		}
	}
}

func TestTimelineRequiresSeries(t *testing.T) {
	var buf bytes.Buffer
	j := simtrace.NewJSONL(&buf) // no series
	j.Rounds(simtrace.EngineCongest, 3)
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := Timeline(&out, p, 8); err == nil {
		t.Fatal("Timeline accepted a trace without series records")
	}
}

func TestParseByteStableInputsGiveEqualProfiles(t *testing.T) {
	a, b := traceBytes(t), traceBytes(t)
	if !bytes.Equal(a, b) {
		t.Fatal("series JSONL output is not byte-stable across identical runs")
	}
}
