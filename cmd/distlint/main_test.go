package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"distlap/internal/lint"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, name := range []string{
		"maporder", "seededrand", "seedderive", "metricsintegrity", "floateq",
		"tracephase", "errcheck", "wordtrunc", "allowjustify", "goroutine", "walltime",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "nosuch", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if code := run([]string{"-disable", "nosuch", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("unknown -disable analyzer exited %d, want 2", code)
	}
	if code := run([]string{"-min-severity", "fatal", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("bad -min-severity exited %d, want 2", code)
	}
}

func TestFindingsExitCode(t *testing.T) {
	// The maporder fixture contains seeded violations; pointing the driver
	// at it must exit 1 and report positions.
	var out, errb bytes.Buffer
	code := run([]string{"../../internal/lint/testdata/maporder"}, &out, &errb)
	if code != 1 {
		t.Fatalf("fixture run exited %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "a.go:10:2: [maporder]") {
		t.Errorf("missing expected finding in output:\n%s", out.String())
	}
}

func TestDisableSilencesFixture(t *testing.T) {
	// Disabling the only analyzer the fixture violates must turn the run
	// clean (the fixture package trips nothing else).
	var out, errb bytes.Buffer
	code := run([]string{"-disable", "maporder", "../../internal/lint/testdata/maporder"}, &out, &errb)
	if code != 0 {
		t.Fatalf("disabled run exited %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

func TestMapOrderSortFuncsFlag(t *testing.T) {
	defer delete(lint.MapOrderSortFuncs, "canonicalize")
	var before, after, errb bytes.Buffer
	if code := run([]string{"../../internal/lint/testdata/maporder"}, &before, &errb); code != 1 {
		t.Fatalf("baseline run exited %d, want 1", code)
	}
	if !strings.Contains(before.String(), "a.go:100:2") {
		t.Fatalf("baseline run missing the helper-sorted finding:\n%s", before.String())
	}
	code := run([]string{"-maporder-sortfuncs", "canonicalize",
		"../../internal/lint/testdata/maporder"}, &after, &errb)
	if code != 1 { // other violations in the fixture still fail the run
		t.Fatalf("whitelisted run exited %d, want 1", code)
	}
	if strings.Contains(after.String(), "a.go:100:2") {
		t.Errorf("-maporder-sortfuncs did not silence the whitelisted helper:\n%s", after.String())
	}
}

func TestJSONReportByteStable(t *testing.T) {
	// Two identical -json runs must produce identical bytes — CI archives
	// the report, so nondeterministic output would break artifact diffing.
	runJSON := func() (string, int) {
		var out, errb bytes.Buffer
		code := run([]string{"-json", "../../internal/lint/testdata/errcheck"}, &out, &errb)
		return out.String(), code
	}
	first, code := runJSON()
	if code != 1 {
		t.Fatalf("-json fixture run exited %d, want 1", code)
	}
	second, _ := runJSON()
	if first != second {
		t.Fatalf("-json output differs across identical runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}

	var report struct {
		Version   int `json:"version"`
		Analyzers []struct {
			Name     string `json:"name"`
			Severity string `json:"severity"`
		} `json:"analyzers"`
		Findings []struct {
			Analyzer      string `json:"analyzer"`
			File          string `json:"file"`
			Line          int    `json:"line"`
			Suppressed    bool   `json:"suppressed"`
			Justification string `json:"justification"`
		} `json:"findings"`
		Summary struct {
			Findings   int `json:"findings"`
			Suppressed int `json:"suppressed"`
			Errors     int `json:"errors"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(first), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, first)
	}
	if report.Version != lint.ReportVersion {
		t.Errorf("report version %d, want %d", report.Version, lint.ReportVersion)
	}
	if len(report.Analyzers) != 11 {
		t.Errorf("report lists %d analyzers, want 11", len(report.Analyzers))
	}
	var suppressed, errcheckHits int
	for _, f := range report.Findings {
		if !strings.HasPrefix(f.File, "internal/lint/testdata/errcheck/") {
			t.Errorf("finding file %q is not module-relative", f.File)
		}
		if f.Suppressed {
			suppressed++
			if f.Justification == "" {
				t.Errorf("suppressed finding at %s:%d lacks its justification", f.File, f.Line)
			}
		}
		if f.Analyzer == "errcheck" {
			errcheckHits++
		}
	}
	if suppressed == 0 || suppressed != report.Summary.Suppressed {
		t.Errorf("suppressed findings: counted %d, summary says %d", suppressed, report.Summary.Suppressed)
	}
	if errcheckHits == 0 || report.Summary.Errors == 0 {
		t.Errorf("expected errcheck findings and a nonzero error count, got %d / %d",
			errcheckHits, report.Summary.Errors)
	}
}

func TestMinSeverityErrorKeepsErrors(t *testing.T) {
	// All suite analyzers are error-severity today, so -min-severity error
	// must not change the verdict on a violating fixture.
	var out, errb bytes.Buffer
	code := run([]string{"-min-severity", "error", "../../internal/lint/testdata/maporder"}, &out, &errb)
	if code != 1 {
		t.Fatalf("-min-severity error exited %d, want 1", code)
	}
	if !strings.Contains(out.String(), "[maporder]") {
		t.Errorf("error-severity findings missing from output:\n%s", out.String())
	}
}

func TestCleanExitCode(t *testing.T) {
	// The driver's own package is clean.
	var out, errb bytes.Buffer
	if code := run([]string{"."}, &out, &errb); code != 0 {
		t.Fatalf("clean run exited %d:\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}
