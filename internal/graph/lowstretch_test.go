package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMPXDecompositionPartitions(t *testing.T) {
	g := Grid(8, 8)
	clusters := MPXDecomposition(g, MPXOptions{Beta: 0.5, Seed: 3})
	seen := make(map[NodeID]int)
	for _, cl := range clusters {
		if len(cl) == 0 {
			t.Fatal("empty cluster")
		}
		if !InducedConnected(g, cl) {
			t.Fatalf("cluster %v disconnected", cl)
		}
		for _, v := range cl {
			seen[v]++
		}
	}
	if len(seen) != 64 {
		t.Fatalf("covered %d nodes", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("node %d in %d clusters", v, c)
		}
	}
}

func TestMPXBetaControlsClusterCount(t *testing.T) {
	g := Grid(10, 10)
	small := len(MPXDecomposition(g, MPXOptions{Beta: 0.05, Seed: 1}))
	large := len(MPXDecomposition(g, MPXOptions{Beta: 2.0, Seed: 1}))
	if small >= large {
		t.Fatalf("beta=0.05 gave %d clusters, beta=2 gave %d (want increase)", small, large)
	}
}

func TestMPXDeterministic(t *testing.T) {
	g := RandomRegular(50, 4, 2)
	a := MPXDecomposition(g, MPXOptions{Beta: 0.7, Seed: 9})
	b := MPXDecomposition(g, MPXOptions{Beta: 0.7, Seed: 9})
	if len(a) != len(b) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("nondeterministic clusters")
		}
	}
}

func TestMPXEmptyAndDefaults(t *testing.T) {
	if MPXDecomposition(New(0), MPXOptions{}) != nil {
		t.Fatal("empty graph should give nil")
	}
	// Zero beta picks the default without panicking.
	if len(MPXDecomposition(Path(5), MPXOptions{Seed: 1})) == 0 {
		t.Fatal("no clusters")
	}
}

func TestLowStretchTreeSpans(t *testing.T) {
	for _, g := range []*Graph{
		Path(10), Cycle(12), Grid(6, 6), RandomRegular(60, 4, 5),
		RandomConnected(40, 30, 10, 2),
	} {
		tr := LowStretchTree(g, 1)
		if len(tr.Members) != g.N() {
			t.Fatalf("n=%d: tree spans %d", g.N(), len(tr.Members))
		}
		if s := AverageStretch(g, tr); math.IsInf(s, 1) || s < 1-1e-9 {
			t.Fatalf("stretch %v", s)
		}
	}
}

func TestLowStretchBeatsBFSOnGrid(t *testing.T) {
	g := Grid(16, 16)
	bfs := BFSTree(g, ApproxCenter(g))
	lst := LowStretchTree(g, 1)
	sb, sl := AverageStretch(g, bfs), AverageStretch(g, lst)
	if sl >= sb {
		t.Fatalf("LST stretch %v >= BFS stretch %v on the grid", sl, sb)
	}
}

func TestAverageStretchTreeIsOne(t *testing.T) {
	// On a tree, every edge's detour is itself: stretch exactly 1.
	g := CompleteTree(2, 5)
	tr := BFSTree(g, 0)
	if s := AverageStretch(g, tr); math.Abs(s-1) > 1e-12 {
		t.Fatalf("stretch %v, want 1", s)
	}
}

func TestAverageStretchCycle(t *testing.T) {
	// Unit cycle of n nodes: any spanning tree is a path; the one removed
	// edge has stretch n-1, the rest 1 → average (2n-2)/n.
	n := 10
	g := Cycle(n)
	ids, _ := MST(g)
	tr := TreeFromEdges(g, ids, 0)
	want := float64(2*n-2) / float64(n)
	if s := AverageStretch(g, tr); math.Abs(s-want) > 1e-9 {
		t.Fatalf("stretch %v, want %v", s, want)
	}
}

func TestAverageStretchDisconnectedTree(t *testing.T) {
	g := Grid(3, 3)
	// A tree covering only part of the graph: stretch is infinite.
	tr := BFSTreeOfSubgraph(g, []NodeID{0, 1, 2}, nil, 0)
	if !math.IsInf(AverageStretch(g, tr), 1) {
		t.Fatal("want +Inf for non-spanning tree")
	}
}

// Property: LowStretchTree always spans random connected graphs and its
// stretch is finite; MPX always partitions.
func TestLowStretchProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%40) + 5
		g := RandomConnected(n, n/2, 7, seed)
		tr := LowStretchTree(g, seed)
		if len(tr.Members) != n {
			return false
		}
		if math.IsInf(AverageStretch(g, tr), 1) {
			return false
		}
		clusters := MPXDecomposition(g, MPXOptions{Beta: 0.5, Seed: seed})
		total := 0
		for _, cl := range clusters {
			total += len(cl)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
