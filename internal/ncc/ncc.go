// Package ncc implements the node-capacitated clique model (paper §2,
// following Augustine et al. [2]): in every round each node may exchange
// O(log n)-bit messages with O(log n) arbitrary nodes; messages beyond a
// receiver's capacity are dropped. The engine schedules message batches
// under per-node send and receive caps and measures rounds, and the
// Aggregate method realizes Lemma 26: any p-congested part-wise aggregation
// solved in O(p + log n) NCC rounds.
//
// Determinism obligations: batch scheduling iterates nodes and messages in
// stable ID order, round counters are written only by this package's
// delivery primitives (metricsintegrity), and an engine — like its HYBRID
// partner network — is single-goroutine for its whole lifetime
// (DESIGN.md §7).
package ncc

import (
	"errors"
	"fmt"
	"sort"

	"distlap/internal/congest"
	"distlap/internal/faultinject"
	"distlap/internal/graph"
	"distlap/internal/simtrace"
)

// Message is one O(log n)-bit message between arbitrary nodes.
type Message struct {
	From, To graph.NodeID
	Payload  congest.Word
}

// Network is an NCC communication network over n nodes. Like its CONGEST
// counterpart it is request-private and single-goroutine, so its pooled
// scratch (scr) carries no information between calls and never affects
// scheduling — only allocation counts.
type Network struct {
	n        int
	cap      int
	rounds   int
	messages int64
	trace    simtrace.Collector
	scr      nccScratch

	// Fault-injection state (all zero/nil on reliable networks).
	faults      *faultinject.Plan
	fstats      faultinject.Stats
	crashedSeen map[graph.NodeID]bool
}

// nccScratch pools the per-call working memory of Deliver and Aggregate so
// steady-state aggregation rounds allocate nothing. Deliver and Aggregate
// use disjoint field families (Aggregate calls Deliver while holding its
// own buffers), and each stamped array has its own epoch counter.
type nccScratch struct {
	// Deliver: sender-major message arena (qStart/qLen index per-sender
	// FIFO regions), the per-round delivered batch, and epoch-stamped
	// per-receiver load counts.
	qStart    []int32
	qLen      []int32
	arena     []Message
	delivered []Message
	recvLoad  []int32
	recvStamp []uint32
	recvEpoch uint32

	// Aggregate: per-part sorted member views (aliasing the caller's part
	// when already sorted, a region of memArena otherwise), positional
	// accumulators, epoch-stamped node→value scatter state, and the
	// per-level message/route batches.
	members  [][]graph.NodeID
	memArena []graph.NodeID
	acc      [][]congest.Word
	accArena []congest.Word
	valWord  []congest.Word
	valStamp []uint32
	valEpoch uint32
	msgs     []Message
	routes   []aggRoute
}

func grownMsgs(buf []Message, n int) []Message {
	if cap(buf) < n {
		return make([]Message, n)
	}
	return buf[:n]
}

func grownI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// grownU32 resizes without clearing: stamped users bump their epoch instead,
// and a fresh zeroed allocation always reads stale because epochs start at 1.
func grownU32(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	return buf[:n]
}

func grownWords(buf []congest.Word, n int) []congest.Word {
	if cap(buf) < n {
		return make([]congest.Word, n)
	}
	return buf[:n]
}

// ErrNoNodes is returned for empty networks.
var ErrNoNodes = errors.New("ncc: network has no nodes")

// NewNetwork returns an NCC network over n nodes with the standard
// per-node capacity ceil(log2 n) (minimum 1).
func NewNetwork(n int) *Network {
	return NewNetworkWith(n, nil)
}

// NewNetworkWith is NewNetwork with a trace collector attached (nil selects
// simtrace.Nop). The collector records rounds, clique deliveries, and the
// ncc.sends / ncc.overloads / ncc.drops counters; it never influences
// scheduling or the metrics.
func NewNetworkWith(n int, tr simtrace.Collector) *Network {
	return &Network{n: n, cap: log2ceil(n), trace: simtrace.OrNop(tr)}
}

// Trace returns the network's trace collector (never nil).
func (nw *Network) Trace() simtrace.Collector { return nw.trace }

// SetFaults attaches a deterministic fault plan (nil = reliable). Set it
// before the first Deliver; decisions are pure functions of (plan seed,
// round, sender, receiver), so a faulty clique run replays byte-identically
// (DESIGN.md §9).
func (nw *Network) SetFaults(p *faultinject.Plan) { nw.faults = p }

// FaultStats returns the faults injected so far (zero on reliable
// networks).
func (nw *Network) FaultStats() faultinject.Stats { return nw.fstats }

// N returns the node count.
func (nw *Network) N() int { return nw.n }

// Capacity returns the per-node, per-round message capacity.
func (nw *Network) Capacity() int { return nw.cap }

// Rounds returns the rounds elapsed.
func (nw *Network) Rounds() int { return nw.rounds }

// Messages returns the total messages delivered.
func (nw *Network) Messages() int64 { return nw.messages }

// Reset zeroes the metrics.
func (nw *Network) Reset() { nw.rounds, nw.messages = 0, 0 }

// Deliver schedules all messages under the per-node send and receive caps
// (FIFO per sender, senders scanned in ID order — deterministic) and
// invokes recv for each delivery in delivery order. Because the scheduler
// never oversubscribes a receiver, no messages are dropped; the measured
// rounds are what an actual NCC execution with this schedule would take.
// Returns the number of rounds consumed.
func (nw *Network) Deliver(msgs []Message, recv func(Message)) (int, error) {
	for _, m := range msgs {
		if m.From < 0 || m.From >= nw.n || m.To < 0 || m.To >= nw.n {
			return 0, fmt.Errorf("ncc: %w: message %d->%d with n=%d",
				graph.ErrNodeRange, m.From, m.To, nw.n)
		}
	}
	if nw.faults != nil {
		return nw.deliverFaulty(msgs, recv)
	}
	// Bucket messages sender-major into the pooled arena: count, prefix-sum,
	// fill in input order. Scanning senders 0..n−1 with FIFO region order is
	// exactly the sorted-sender, FIFO-per-sender schedule of the historical
	// map-based implementation, so delivery order — and with it every charge
	// — is unchanged. The borrowed buffers are parked (nil) while recv
	// callbacks run so a reentrant Deliver cannot corrupt them.
	s := &nw.scr
	qStart := grownI32(s.qStart, nw.n+1)
	qLen := grownI32(s.qLen, nw.n)
	arena := grownMsgs(s.arena, len(msgs))
	delivered := s.delivered[:0]
	s.qStart, s.qLen, s.arena, s.delivered = nil, nil, nil, nil
	defer func() {
		s.qStart, s.qLen, s.arena, s.delivered = qStart, qLen, arena, delivered
	}()
	for i := range qLen {
		qLen[i] = 0
	}
	for _, m := range msgs {
		qLen[m.From]++
	}
	qStart[0] = 0
	for v := 0; v < nw.n; v++ {
		qStart[v+1] = qStart[v] + qLen[v]
	}
	{
		fill := qLen // reuse as fill cursors; restored to lengths below
		for i := range fill {
			fill[i] = 0
		}
		for _, m := range msgs {
			arena[qStart[m.From]+fill[m.From]] = m
			fill[m.From]++
		}
	}
	nw.trace.Counter("ncc.sends", int64(len(msgs)))
	remaining := len(msgs)
	used := 0
	for remaining > 0 {
		used++
		s.recvLoad = grownI32(s.recvLoad, nw.n)
		s.recvStamp = grownU32(s.recvStamp, nw.n)
		s.recvEpoch++
		if s.recvEpoch == 0 {
			for i := range s.recvStamp {
				s.recvStamp[i] = 0
			}
			s.recvEpoch = 1
		}
		epoch := s.recvEpoch
		delivered = delivered[:0]
		for v := 0; v < nw.n; v++ {
			l := qLen[v]
			if l == 0 {
				continue
			}
			q := arena[qStart[v] : qStart[v]+l]
			sent := int32(0)
			kept := int32(0)
			for _, m := range q {
				if s.recvStamp[m.To] != epoch {
					s.recvStamp[m.To] = epoch
					s.recvLoad[m.To] = 0
				}
				if int(sent) < nw.cap && int(s.recvLoad[m.To]) < nw.cap {
					s.recvLoad[m.To]++
					sent++
					delivered = append(delivered, m)
					remaining--
				} else {
					q[kept] = m
					kept++
				}
			}
			qLen[v] = kept
		}
		if len(delivered) == 0 {
			nw.rounds++
			nw.trace.Rounds(simtrace.EngineNCC, 1)
			return used, errors.New("ncc: scheduler made no progress")
		}
		nw.messages += int64(len(delivered))
		nw.trace.Messages(simtrace.EngineNCC, simtrace.NoEdge, int64(len(delivered)))
		for _, m := range delivered {
			nw.trace.NodeWords(simtrace.EngineNCC, m.From, m.To, 1)
		}
		// The round is charged after its deliveries so a round-series sink
		// attributes this batch's messages to this round boundary.
		nw.rounds++
		nw.trace.Rounds(simtrace.EngineNCC, 1)
		if remaining > 0 {
			// Messages deferred past this round were blocked by a send or
			// receive cap: the scheduler's congestion signal.
			nw.trace.Counter("ncc.overloads", int64(remaining))
		}
		for _, m := range delivered {
			recv(m)
		}
	}
	return used, nil
}

// ChargeRounds adds idle rounds (for composed accounting).
func (nw *Network) ChargeRounds(r int) {
	if r > 0 {
		nw.rounds += r
		nw.trace.Rounds(simtrace.EngineNCC, r)
	}
}

func log2ceil(n int) int {
	k := 1
	for p := 2; p < n; p *= 2 {
		k++
	}
	return k
}

// DeliverUnscheduled models the raw NCC semantics of §2: every message is
// transmitted in a single round with no coordination, and each receiver
// keeps only an adversarially-selected subset of at most Capacity messages
// (here: the lowest sender IDs, a deterministic adversary) — the rest are
// dropped. It exists for failure-injection tests that demonstrate why the
// Lemma 26 aggregation must schedule under the caps; production algorithms
// use Deliver.
//
// Returns the number of dropped messages. Always charges exactly one round.
func (nw *Network) DeliverUnscheduled(msgs []Message, recv func(Message)) (dropped int, err error) {
	for _, m := range msgs {
		if m.From < 0 || m.From >= nw.n || m.To < 0 || m.To >= nw.n {
			return 0, fmt.Errorf("ncc: %w: message %d->%d with n=%d",
				graph.ErrNodeRange, m.From, m.To, nw.n)
		}
	}
	nw.trace.Counter("ncc.sends", int64(len(msgs)))
	// Senders may emit at most cap messages; excess sends are dropped at
	// the source (in FIFO order).
	sendLoad := make(map[graph.NodeID]int)
	byReceiver := make(map[graph.NodeID][]Message)
	for _, m := range msgs {
		if sendLoad[m.From] >= nw.cap {
			dropped++
			continue
		}
		sendLoad[m.From]++
		byReceiver[m.To] = append(byReceiver[m.To], m)
	}
	var receivers []graph.NodeID
	for to := range byReceiver {
		receivers = append(receivers, to)
	}
	sort.Ints(receivers)
	deliveredCount := int64(0)
	for _, to := range receivers {
		inbox := byReceiver[to]
		sort.Slice(inbox, func(a, b int) bool { return inbox[a].From < inbox[b].From })
		for i, m := range inbox {
			if i >= nw.cap {
				dropped += len(inbox) - i
				break
			}
			nw.messages++
			deliveredCount++
			nw.trace.NodeWords(simtrace.EngineNCC, m.From, m.To, 1)
			recv(m)
		}
	}
	nw.trace.Messages(simtrace.EngineNCC, simtrace.NoEdge, deliveredCount)
	// As in Deliver, the single round is charged after its deliveries.
	nw.rounds++
	nw.trace.Rounds(simtrace.EngineNCC, 1)
	if dropped > 0 {
		nw.trace.Counter("ncc.drops", int64(dropped))
	}
	return dropped, nil
}
