package simtrace

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// JSONL streams trace events as JSON Lines and, on Flush, appends aggregate
// summary records. It embeds an InMemory aggregator, so it also satisfies
// PhaseQuerier.
//
// Byte-stability contract (what determinism tests pin): records carry no
// timestamps or addresses, keys are emitted in a fixed order (hand-rolled
// marshaling, never map-ordered), floats use the shortest unique
// representation (strconv 'g', precision -1), and every aggregate is emitted
// under a total order (path, name, or load-then-id). Two runs with the same
// seed therefore produce byte-identical files.
//
// Error handling: the first write error poisons the sink — every later emit
// is skipped, Flush writes no aggregate records at all (the aggregate block
// is buffered and written atomically, so a healthy stream never ends in a
// partial summary), and Flush returns the original error. A Write that
// returns n < len(p) with a nil error is converted to io.ErrShortWrite.
//
// Stream record shapes:
//
//	{"ev":"begin","path":P}
//	{"ev":"end","path":P,"rounds":R,"messages":M}       // exclusive charges of this instance
//	{"ev":"series","round":R,"path":P,"engine":E,"rounds":N,"messages":M,"maxload":L}
//	                                   // series sinks only: one per engine round boundary
//	{"ev":"gauge","name":N,"step":S,"value":V,"rounds":R}   // telemetry sample
//
// Flush record shapes:
//
//	{"ev":"untracked","rounds":R,"messages":M}          // charges with no open span
//	{"ev":"engine","engine":E,"rounds":R,"messages":M}  // per-engine totals
//	{"ev":"phase","path":P,"count":C,"rounds":R,"messages":M}   // per-path totals
//	{"ev":"counter","name":N,"value":V}
//	{"ev":"loadhist","engine":E,"bucket":B,"edges":C}   // 2^B edge-load buckets
//	{"ev":"edge","engine":E,"edge":D,"words":W}         // top loaded edges
//	{"ev":"nodehist","engine":E,"bucket":B,"nodes":C}   // 2^B node-load buckets
//	{"ev":"node","engine":E,"node":V,"words":W}         // top loaded nodes
type JSONL struct {
	*InMemory
	w    io.Writer
	err  error
	topK int

	// Round-series state. series enables one "series" record per engine
	// round boundary; the deltas are exclusive — each message is counted by
	// exactly one series record (the first boundary at or after its charge,
	// or the Flush tail record), so summing the series reproduces the engine
	// totals, mirroring the phase-attribution identity.
	series    bool
	round     int   // cumulative rounds across all engines
	totalMsgs int64 // cumulative messages across all engines
	lastMsgs  int64 // totalMsgs at the previous series record
	maxLoad   int64 // running max directed-edge load across all engines
}

var _ Collector = (*JSONL)(nil)

// JSONLTopEdges is the number of most-loaded directed edges per engine a
// JSONL sink records at Flush.
const JSONLTopEdges = 16

// JSONLTopNodes is the number of most-loaded nodes per engine a JSONL sink
// records at Flush.
const JSONLTopNodes = 16

// NewJSONL returns a sink streaming to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{InMemory: NewInMemory(), w: w, topK: JSONLTopEdges}
}

// NewJSONLSeries returns a sink streaming to w that additionally emits one
// "series" record per engine round boundary: the round-resolved profile
// cmd/simtrace's -timeline renderer consumes. Series records roughly double
// a trace's size for round-heavy runs, hence the separate constructor.
func NewJSONLSeries(w io.Writer) *JSONL {
	j := NewJSONL(w)
	j.series = true
	return j
}

// writeAll writes b to w in one call, converting a silent short write into
// io.ErrShortWrite so the sink is poisoned rather than truncated.
func writeAll(w io.Writer, b []byte) error {
	n, err := w.Write(b)
	if err == nil && n < len(b) {
		err = io.ErrShortWrite
	}
	return err
}

func (j *JSONL) emit(format string, args ...any) {
	if j.err != nil {
		return
	}
	j.err = writeAll(j.w, fmt.Appendf(nil, format, args...))
}

// Begin implements Collector.
func (j *JSONL) Begin(name string) {
	j.InMemory.Begin(name)
	j.emit("{\"ev\":\"begin\",\"path\":%q}\n", j.path())
}

// End implements Collector: emits the closing instance's exclusive charges.
func (j *JSONL) End(name string) {
	if len(j.stack) > 0 {
		top := j.stack[len(j.stack)-1]
		j.emit("{\"ev\":\"end\",\"path\":%q,\"rounds\":%d,\"messages\":%d}\n",
			top.path, top.rounds, top.messages)
	}
	j.InMemory.End(name)
}

// Rounds implements Collector: for series sinks, every engine round boundary
// emits one series record charging the messages accumulated since the
// previous boundary to the currently-innermost phase path.
func (j *JSONL) Rounds(engine string, n int) {
	j.InMemory.Rounds(engine, n)
	if !j.series || n <= 0 {
		return
	}
	j.round += n
	j.emitSeries(engine, n)
}

// Messages implements Collector: for series sinks it additionally tracks the
// cumulative message count and the running max edge load the series records
// report (read only at round boundaries and Flush, so plain sinks skip it).
func (j *JSONL) Messages(engine string, dirEdge int, n int64) {
	j.InMemory.Messages(engine, dirEdge, n)
	if !j.series || n <= 0 {
		return
	}
	j.totalMsgs += n
	if dirEdge >= 0 {
		if l := j.edgeLoad(engine, dirEdge); l > j.maxLoad {
			j.maxLoad = l
		}
	}
}

// Gauge implements Collector: streams one telemetry sample.
func (j *JSONL) Gauge(name string, step int, value float64, rounds int) {
	j.InMemory.Gauge(name, step, value, rounds)
	j.emit("{\"ev\":\"gauge\",\"name\":%q,\"step\":%d,\"value\":%s,\"rounds\":%d}\n",
		name, step, strconv.FormatFloat(value, 'g', -1, 64), rounds)
}

// emitSeries writes one series record: rounds is this boundary's own round
// charge, messages the delta since the previous series record.
func (j *JSONL) emitSeries(engine string, rounds int) {
	j.emit("{\"ev\":\"series\",\"round\":%d,\"path\":%q,\"engine\":%q,\"rounds\":%d,\"messages\":%d,\"maxload\":%d}\n",
		j.round, j.path(), engine, rounds, j.totalMsgs-j.lastMsgs, j.maxLoad)
	j.lastMsgs = j.totalMsgs
}

// Flush implements Collector: appends the aggregate summary records and
// reports any accumulated write error. The aggregate block is built in
// memory and written with a single Write, so a trace either carries the full
// summary or (if the stream was poisoned earlier) none of it.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	var buf bytes.Buffer
	if j.series && j.totalMsgs > j.lastMsgs {
		// Tail record: messages charged after the last round boundary, so
		// the series deltas still sum to the engine message totals.
		fmt.Fprintf(&buf, "{\"ev\":\"series\",\"round\":%d,\"path\":%q,\"engine\":%q,\"rounds\":0,\"messages\":%d,\"maxload\":%d}\n",
			j.round, j.path(), "", j.totalMsgs-j.lastMsgs, j.maxLoad)
		j.lastMsgs = j.totalMsgs
	}
	if un := j.stats[""]; un != nil {
		fmt.Fprintf(&buf, "{\"ev\":\"untracked\",\"rounds\":%d,\"messages\":%d}\n", un.Rounds, un.Messages)
	}
	engines := j.Engines()
	for _, e := range engines {
		fmt.Fprintf(&buf, "{\"ev\":\"engine\",\"engine\":%q,\"rounds\":%d,\"messages\":%d}\n",
			e.Engine, e.Rounds, e.Messages)
	}
	for _, st := range j.Phases() {
		if st.Path == "" {
			continue
		}
		fmt.Fprintf(&buf, "{\"ev\":\"phase\",\"path\":%q,\"count\":%d,\"rounds\":%d,\"messages\":%d}\n",
			st.Path, st.Count, st.Rounds, st.Messages)
	}
	for _, c := range j.Counters() {
		fmt.Fprintf(&buf, "{\"ev\":\"counter\",\"name\":%q,\"value\":%d}\n", c.Name, c.Value)
	}
	for _, e := range engines {
		for _, h := range j.LoadHistogram(e.Engine) {
			fmt.Fprintf(&buf, "{\"ev\":\"loadhist\",\"engine\":%q,\"bucket\":%d,\"edges\":%d}\n",
				h.Engine, h.Edge, h.Words)
		}
		for _, t := range j.TopEdges(e.Engine, j.topK) {
			fmt.Fprintf(&buf, "{\"ev\":\"edge\",\"engine\":%q,\"edge\":%d,\"words\":%d}\n",
				t.Engine, t.Edge, t.Words)
		}
		for _, h := range j.NodeLoadHistogram(e.Engine) {
			fmt.Fprintf(&buf, "{\"ev\":\"nodehist\",\"engine\":%q,\"bucket\":%d,\"nodes\":%d}\n",
				h.Engine, h.Node, h.Words)
		}
		for _, t := range j.TopNodes(e.Engine, JSONLTopNodes) {
			fmt.Fprintf(&buf, "{\"ev\":\"node\",\"engine\":%q,\"node\":%d,\"words\":%d}\n",
				t.Engine, t.Node, t.Words)
		}
	}
	j.err = writeAll(j.w, buf.Bytes())
	return j.err
}
