package main

import (
	"bytes"
	"strings"
	"testing"

	"distlap/internal/congest"
	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/linalg"
	"distlap/internal/simtrace"
)

// traceOf runs one traced solve and returns the flushed JSONL stream.
func traceOf(t *testing.T, mode core.Mode) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	tr := simtrace.NewJSONL(&buf)
	g := graph.Grid(5, 5)
	b := linalg.RandomBVector(g.N(), 3)
	if _, _, err := core.SolveOnGraphWith(g, b, core.SolveConfig{
		Mode: mode, Tol: 1e-6, Seed: 1, Trace: tr,
	}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return &buf
}

// TestRenderSolveTrace pins the acceptance identity: for both the universal
// and baseline modes, the rendered per-phase rounds sum exactly to the
// engine totals (render errors on mismatch).
func TestRenderSolveTrace(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeUniversal, core.ModeBaseline} {
		buf := traceOf(t, mode)
		var out bytes.Buffer
		if err := render(buf, &out, 5); err != nil {
			t.Fatalf("mode %v: render: %v", mode, err)
		}
		s := out.String()
		for _, want := range []string{
			"accounting identity holds",
			"solve/matvec",
			"congest",
		} {
			if !strings.Contains(s, want) {
				t.Errorf("mode %v: output missing %q:\n%s", mode, want, s)
			}
		}
	}
}

// TestRenderDetectsMismatch corrupts an engine total and checks render
// fails.
func TestRenderDetectsMismatch(t *testing.T) {
	in := strings.Join([]string{
		`{"ev":"phase","path":"solve","count":1,"rounds":5,"messages":10}`,
		`{"ev":"engine","engine":"congest","rounds":7,"messages":10}`,
	}, "\n")
	var out bytes.Buffer
	err := render(strings.NewReader(in), &out, 5)
	if err == nil || !strings.Contains(err.Error(), "accounting mismatch") {
		t.Fatalf("want accounting mismatch error, got %v", err)
	}
}

// TestRenderUntrackedBalances includes charges outside any span.
func TestRenderUntrackedBalances(t *testing.T) {
	in := strings.Join([]string{
		`{"ev":"untracked","rounds":3,"messages":4}`,
		`{"ev":"phase","path":"solve","count":1,"rounds":5,"messages":10}`,
		`{"ev":"engine","engine":"congest","rounds":8,"messages":14}`,
		`{"ev":"counter","name":"ncc.sends","value":9}`,
		`{"ev":"edge","engine":"congest","edge":4,"words":12}`,
	}, "\n")
	var out bytes.Buffer
	if err := render(strings.NewReader(in), &out, 5); err != nil {
		t.Fatalf("render: %v", err)
	}
	for _, want := range []string{"(untracked)", "ncc.sends", "dir-edge"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRenderEmptyTrace errors on a stream with no summary records.
func TestRenderEmptyTrace(t *testing.T) {
	var out bytes.Buffer
	if err := render(strings.NewReader(`{"ev":"begin","path":"x"}`), &out, 5); err == nil {
		t.Fatal("want error for summary-free stream")
	}
}

// TestRenderFoldedAndTimeline drives a traced solve through the renderer
// modes: folded stacks must carry slash-to-semicolon phase frames, and the
// timeline must render from a series-enabled trace.
func TestRenderFoldedAndTimeline(t *testing.T) {
	var buf bytes.Buffer
	tr := simtrace.NewJSONLSeries(&buf)
	g := graph.Grid(5, 5)
	b := linalg.RandomBVector(g.N(), 3)
	if _, _, err := core.SolveOnGraphWith(g, b, core.SolveConfig{
		Mode: core.ModeUniversal, Tol: 1e-6, Seed: 1, Trace: tr,
	}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	raw := buf.Bytes()

	var folded bytes.Buffer
	if err := renderFolded(bytes.NewReader(raw), &folded, "rounds"); err != nil {
		t.Fatalf("folded: %v", err)
	}
	if !strings.Contains(folded.String(), "solve;matvec ") {
		t.Errorf("folded output missing solve;matvec frame:\n%s", folded.String())
	}

	var timeline bytes.Buffer
	if err := renderTimeline(bytes.NewReader(raw), &timeline, 40); err != nil {
		t.Fatalf("timeline: %v", err)
	}
	for _, want := range []string{"timeline:", "max edge load"} {
		if !strings.Contains(timeline.String(), want) {
			t.Errorf("timeline output missing %q:\n%s", want, timeline.String())
		}
	}

	// A non-series trace must render tables (with node aggregates) but
	// refuse -timeline.
	nonSeries := traceOf(t, core.ModeUniversal)
	var tables bytes.Buffer
	if err := render(bytes.NewReader(nonSeries.Bytes()), &tables, 5); err != nil {
		t.Fatalf("render: %v", err)
	}
	for _, want := range []string{"top congested nodes", "node-load histogram", "gauges"} {
		if !strings.Contains(tables.String(), want) {
			t.Errorf("table output missing %q", want)
		}
	}
	if err := renderTimeline(bytes.NewReader(nonSeries.Bytes()), &timeline, 40); err == nil {
		t.Error("timeline accepted a trace without series records")
	}
}

// TestRenderMSTTrace exercises a traced network directly (no solver): the
// identity must hold for arbitrary span structures too.
func TestRenderMSTTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := simtrace.NewJSONL(&buf)
	g := graph.Grid(4, 4)
	nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 2, Trace: tr})
	nw.ChargeRounds(7) // outside any span: must land in untracked
	tr.Begin("probe")
	nw.ChargeRounds(5)
	tr.End("probe")
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	var out bytes.Buffer
	if err := render(&buf, &out, 5); err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.Contains(out.String(), "(untracked)") {
		t.Errorf("expected untracked row:\n%s", out.String())
	}
}
