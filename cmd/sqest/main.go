// Command sqest sweeps graph families and prints the empirical shortcut-
// quality bracket [D̃, Q̂] (DESIGN.md §1) together with the layered-graph
// ratio of Theorem 22.
//
// Usage:
//
//	sqest -n 64,144,256 -p 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"distlap/internal/graph"
	"distlap/internal/layered"
	"distlap/internal/shortcut"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sqest:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sqest", flag.ContinueOnError)
	sizes := fs.String("n", "64,144", "comma-separated approximate node counts")
	p := fs.Int("p", 2, "layering parameter for the Theorem 22 ratio (0 disables)")
	seed := fs.Int64("seed", 1, "rng seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ns []int
	for _, tok := range strings.Split(*sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return fmt.Errorf("bad size %q: %w", tok, err)
		}
		ns = append(ns, v)
	}
	fmt.Printf("%-10s %6s %6s %6s %8s %8s", "family", "n", "D̃", "Q̂", "worst", "Q̂/D̃")
	if *p > 0 {
		fmt.Printf(" %10s %8s", fmt.Sprintf("Q̂(Ĝ_%d)", *p), "ratio")
	}
	fmt.Println()
	for _, f := range graph.StandardFamilies() {
		for _, n := range ns {
			g := f.Make(n)
			est, err := shortcut.EstimateSQ(g, *seed)
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", f.Name, n, err)
			}
			fmt.Printf("%-10s %6d %6d %6d %8s %8.2f",
				f.Name, g.N(), est.Lower, est.Upper, est.WorstName,
				ratio(est.Upper, est.Lower))
			if *p > 0 {
				lay, err := layered.New(g, *p)
				if err != nil {
					return err
				}
				estL, err := shortcut.EstimateSQ(lay.G, *seed)
				if err != nil {
					return err
				}
				fmt.Printf(" %10d %8.2f", estL.Upper, ratio(estL.Upper, est.Upper))
			}
			fmt.Println()
		}
	}
	return nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
