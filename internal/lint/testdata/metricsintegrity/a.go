// Package metricsintegrity is a distlint fixture: direct writes to the
// congest engine's metrics from outside the owning package.
package metricsintegrity

import (
	"distlap/internal/congest"
	"distlap/internal/graph"
)

// Fabricate mutates a Metrics copy: both writes flagged.
func Fabricate(nw *congest.Network) congest.Metrics {
	m := nw.Metrics()
	m.Rounds += 5 // violation: compound assignment
	m.Messages = 0 // violation: plain assignment
	return m
}

// Fake constructs a non-zero Metrics literal: flagged.
func Fake() congest.Metrics {
	return congest.Metrics{Rounds: 3}
}

// Inc increments a metrics field through a pointer: flagged.
func Inc(m *congest.Metrics) {
	m.Rounds++
}

// Legit reads metrics and charges rounds through the engine: not flagged.
func Legit(g *graph.Graph) int {
	nw := congest.NewNetwork(g, congest.Options{Seed: 1})
	nw.ChargeRounds(2)
	var zero congest.Metrics // zero literal: not flagged
	_ = zero
	return nw.Rounds() + nw.Metrics().Rounds
}
