package experiments

import (
	"fmt"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/ncc"
	"distlap/internal/partwise"
	"distlap/internal/simtrace"
	"distlap/internal/treewidth"
)

// congestedRounds runs the layered solver on a p-congested instance and
// returns the measured rounds (validating the aggregates).
func congestedRounds(g *graph.Graph, inst *partwise.Instance, seed int64, tr simtrace.Collector) (int, error) {
	nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: seed, Trace: tr})
	out, err := partwise.NewLayeredSolver(seed).Solve(nw, inst, partwise.Min)
	if err != nil {
		return 0, err
	}
	want := inst.Expected(partwise.Min)
	for i := range want {
		if out[i] != want[i] {
			return 0, fmt.Errorf("experiments: wrong aggregate for part %d", i)
		}
	}
	return nw.Rounds(), nil
}

// E6 — Corollary 20: p-congested PWA rounds on bounded-treewidth graphs
// against the p²·tw·D reference scaling.
func E6(cfg Config) (*Table, error) {
	quick := cfg.Quick
	fams := []namedGraph{
		{name: "caterpillar", mk: func() *graph.Graph { return graph.Caterpillar(12, 2) }},
		{name: "tree", mk: func() *graph.Graph { return graph.CompleteTree(2, 6) }},
		{name: "cycle", mk: func() *graph.Graph { return graph.Cycle(36) }},
	}
	ps := []int{1, 2, 4, 6}
	if quick {
		fams = fams[:2]
		ps = []int{1, 2, 4}
	}
	t := &Table{
		ID:     "E6",
		Title:  "congested PWA on bounded-treewidth graphs (Corollary 20)",
		Header: []string{"family", "tw", "D", "p", "rounds", "rounds/(p^2·tw·D)"},
		Notes:  "the normalized column stays bounded as p grows (Õ(p²·tw·D) scaling)",
	}
	var pts []point
	for _, f := range fams {
		for _, p := range ps {
			pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
				g := f.mk()
				tw := treewidth.Heuristic(g).Width()
				d := graph.Diameter(g)
				inst := partwise.RandomCongestedInstance(g, p, 4, 11)
				rounds, err := congestedRounds(g, inst, 5, tr)
				if err != nil {
					return nil, err
				}
				norm := float64(rounds) / float64(p*p*tw*d)
				return row(f.name, itoa(tw), itoa(d), itoa(p), itoa(rounds), ftoa(norm)), nil
			})
		}
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E7 — Corollary 23: p-congested PWA on general graphs scales ~linearly in
// p (Supported-CONGEST), versus the naive per-layer decomposition.
func E7(cfg Config) (*Table, error) {
	quick := cfg.Quick
	fams := []namedGraph{
		{name: "grid", mk: func() *graph.Graph { return graph.Grid(8, 8) }},
		{name: "widegrid", mk: func() *graph.Graph { return graph.Grid(4, 16) }},
		{name: "expander", mk: func() *graph.Graph { return graph.RandomRegular(64, 4, 9) }},
	}
	ps := []int{1, 2, 4, 8}
	if quick {
		fams = fams[:2]
		ps = []int{1, 2, 4}
	}
	t := &Table{
		ID:     "E7",
		Title:  "congested PWA on general graphs (Corollary 23)",
		Header: []string{"family", "D", "p", "layered rounds", "rounds/p", "naive rounds"},
		Notes:  "rounds/p stays ~flat (linear p dependence); naive = NaiveGlobalSolver on the same instance",
	}
	var pts []point
	for _, f := range fams {
		for _, p := range ps {
			pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
				g := f.mk()
				d := graph.Diameter(g)
				inst := partwise.RandomCongestedInstance(g, p, 4, 13)
				rounds, err := congestedRounds(g, inst, 3, tr)
				if err != nil {
					return nil, err
				}
				naive := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 3, Trace: tr})
				if _, err := (partwise.NaiveGlobalSolver{}).Solve(naive, inst, partwise.Min); err != nil {
					return nil, err
				}
				return row(
					f.name, itoa(d), itoa(p), itoa(rounds),
					ftoa(float64(rounds)/float64(p)), itoa(naive.Rounds()),
				), nil
			})
		}
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E8 — Lemma 26: NCC congested PWA rounds against the p + log n reference.
func E8(cfg Config) (*Table, error) {
	quick := cfg.Quick
	ns := []int{64, 256, 1024}
	ps := []int{1, 2, 4, 8, 16}
	if quick {
		ns = []int{64, 256}
		ps = []int{1, 4, 16}
	}
	t := &Table{
		ID:     "E8",
		Title:  "congested PWA in the NCC model (Lemma 26)",
		Header: []string{"n", "p", "rounds", "p + log2(n)", "ratio"},
		Notes:  "rounds track p + log n, not p·log n or k",
	}
	var pts []point
	for _, n := range ns {
		for _, p := range ps {
			pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
				side := 1
				for side*side < n {
					side++
				}
				g := graph.Grid(side, side)
				inst := partwise.RandomCongestedInstance(g, p, 6, 17)
				nw := ncc.NewNetworkWith(g.N(), simtrace.OrNop(tr))
				out, err := nw.Aggregate(inst, partwise.Min)
				if err != nil {
					return nil, err
				}
				want := inst.Expected(partwise.Min)
				for i := range want {
					if out[i] != want[i] {
						return nil, fmt.Errorf("E8: wrong aggregate")
					}
				}
				ref := p + log2(g.N())
				return row(
					itoa(g.N()), itoa(p), itoa(nw.Rounds()), itoa(ref),
					ftoa(float64(nw.Rounds())/float64(ref)),
				), nil
			})
		}
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

func log2(n int) int {
	k := 0
	for p := 1; p < n; p *= 2 {
		k++
	}
	return k
}
