package apps

import (
	"errors"
	"fmt"

	"distlap/internal/congest"
	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/linalg"
	"distlap/internal/partwise"
)

// SpanningResult reports a spanning-connected-subgraph decision.
type SpanningResult struct {
	Connected bool
	Rounds    int
}

// SpanningConnectedViaPWA decides whether the subgraph H of g given by
// subEdges is connected and spanning, using Borůvka-style component
// counting over part-wise aggregation (the direct algorithm the Theorem 29
// lower bound applies to).
func SpanningConnectedViaPWA(nw *congest.Network, subEdges []graph.EdgeID, solver partwise.Solver) (*SpanningResult, error) {
	g := nw.Graph()
	h := graph.New(g.N())
	for _, id := range subEdges {
		e := g.Edge(id)
		h.MustAddEdge(e.U, e.V, e.Weight)
	}
	// Borůvka-style component merging starting from singletons (each node
	// initially knows only itself), communicating over G (H ⊆ G, so every
	// H edge is usable). Each phase is one part-wise aggregation over the
	// current components (connected in G since they are connected in H).
	before := nw.Rounds()
	comps := make([][]graph.NodeID, g.N())
	for v := 0; v < g.N(); v++ {
		comps[v] = []graph.NodeID{v}
	}
	for phase := 0; len(comps) > 1 && phase <= 2*log2(g.N())+4; phase++ {
		inst := &partwise.Instance{}
		owner := make([]int, g.N())
		for ci, comp := range comps {
			for _, v := range comp {
				owner[v] = ci
			}
		}
		// One exchange round: every node learns its neighbors' component
		// IDs (needed to recognize outgoing edges).
		nw.Exchange(
			func(v graph.NodeID, h graph.Half) (congest.Word, bool) {
				return congest.Word(owner[v]), true
			},
			func(graph.NodeID, graph.Half, congest.Word) {},
		)
		for _, comp := range comps {
			vals := make([]congest.Word, len(comp))
			for i, v := range comp {
				best := noEdge
				for _, hh := range h.Neighbors(v) {
					if owner[hh.To] != owner[v] {
						// h edge IDs differ from g edge IDs; re-encode with
						// the h ID (sufficient for merging decisions).
						if enc := encodeEdge(h.Edge(hh.Edge).Weight, hh.Edge); enc < best {
							best = enc
						}
					}
				}
				vals[i] = best
			}
			inst.Parts = append(inst.Parts, comp)
			inst.Values = append(inst.Values, vals)
		}
		spec := partwise.AggSpec{Name: "minedge", Fn: congest.AggMin, Identity: noEdge}
		mins, err := solver.Solve(nw, inst, spec)
		if err != nil {
			return nil, err
		}
		uf := graph.NewUnionFind(len(comps))
		progress := false
		for _, m := range mins {
			if m == noEdge {
				continue
			}
			e := h.Edge(decodeEdge(m))
			if uf.Union(owner[e.U], owner[e.V]) {
				progress = true
			}
		}
		if !progress {
			break
		}
		merged := make(map[int][]graph.NodeID)
		for ci, comp := range comps {
			r := uf.Find(ci)
			merged[r] = append(merged[r], comp...)
		}
		comps = comps[:0]
		for ci := 0; ci < len(mins); ci++ {
			if c, ok := merged[ci]; ok && uf.Find(ci) == ci {
				comps = append(comps, c)
			}
		}
		// Charge the fragment-relabel aggregation over the merged
		// components (every member must learn its new component ID).
		relabel := &partwise.Instance{}
		for _, comp := range comps {
			vals := make([]congest.Word, len(comp))
			for i, v := range comp {
				vals[i] = congest.Word(v)
			}
			relabel.Parts = append(relabel.Parts, comp)
			relabel.Values = append(relabel.Values, vals)
		}
		if _, err := solver.Solve(nw, relabel, partwise.Min); err != nil {
			return nil, err
		}
	}
	return &SpanningResult{
		Connected: len(comps) == 1,
		Rounds:    nw.Rounds() - before,
	}, nil
}

// SpanningConnectedViaLaplacian realizes the Theorem 1 reduction: a
// Laplacian solver with error ε < 1/2 decides the spanning connected
// subgraph problem. We solve L_H x = χ_s − 1/n on the subgraph H; if H is
// disconnected, the right-hand side restricted to a component missing s
// does not sum to zero, so no x can drive the residual below ~1/(2√n) and
// the solver hits its iteration cap. Convergence within the cap therefore
// certifies connectivity.
func SpanningConnectedViaLaplacian(g *graph.Graph, subEdges []graph.EdgeID, mode core.Mode, seed int64) (*SpanningResult, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("apps: empty graph")
	}
	h := graph.New(n)
	for _, id := range subEdges {
		e := g.Edge(id)
		h.MustAddEdge(e.U, e.V, 1)
	}
	// Local degree check: a node with no H edge decides "not spanning"
	// immediately (0 rounds).
	for v := 0; v < n; v++ {
		if h.Degree(v) == 0 {
			return &SpanningResult{Connected: n == 1}, nil
		}
	}
	// The comm must run on H: communication along subgraph edges only is a
	// restriction, but H ⊆ G so any H-round is implementable in G.
	if !graph.IsConnected(h) {
		// The solver cannot even build its BFS tree across components; a
		// real execution would detect this by the BFS not reaching all
		// nodes within n rounds. Charge that probe.
		return &SpanningResult{Connected: false, Rounds: n}, nil
	}
	b := make([]float64, n)
	b[0] = 1
	for i := range b {
		b[i] -= 1 / float64(n)
	}
	res, _, err := core.SolveOnGraph(h, b, mode, 1e-6, seed)
	if err != nil {
		if errors.Is(err, linalg.ErrNoConverge) {
			return &SpanningResult{Connected: false}, nil
		}
		return nil, fmt.Errorf("apps: laplacian reduction: %w", err)
	}
	return &SpanningResult{Connected: true, Rounds: res.Rounds}, nil
}
