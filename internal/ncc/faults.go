package ncc

import (
	"errors"
	"sort"

	"distlap/internal/faultinject"
	"distlap/internal/graph"
	"distlap/internal/simtrace"
)

// This file is the NCC engine's half of the fault-injection contract
// (DESIGN.md §9). The clique has no edge identity, so flaky links do not
// apply; per-message fates come from Plan.Clique keyed on (round, sender,
// receiver), and crash-stop nodes swallow everything they would send or
// receive. Delays model fabric stalls: a delayed message keeps its FIFO
// slot and is re-offered in a later round. A faulty schedule can therefore
// starve, so deliverFaulty runs under an explicit round budget and reports
// exhaustion as an error — a faulty clique run degrades loudly, it never
// hangs.

// ErrFaultBudget is returned when fault injection starves the scheduler
// past its round budget.
var ErrFaultBudget = errors.New("ncc: fault injection exhausted the round budget")

// noteFault mirrors the congest engine's fault observability: a running
// counter plus a streamed gauge sample pinned to the NCC round.
func (nw *Network) noteFault(kind string, seq int64, val, round int) {
	nw.trace.Counter("fault."+kind+"s", 1)
	nw.trace.Gauge("fault."+kind, int(seq), float64(val), round)
}

func (nw *Network) noteCrash(v graph.NodeID, round int) {
	if nw.crashedSeen[v] {
		return
	}
	if nw.crashedSeen == nil {
		nw.crashedSeen = make(map[graph.NodeID]bool)
	}
	nw.crashedSeen[v] = true
	nw.fstats.Crashes++
	nw.noteFault("crash", int64(nw.fstats.Crashes), v, round)
}

// deliverFaulty is Deliver under a fault plan: the same cap-respecting
// FIFO schedule, with each offered message consulting the plan. A dropped
// message consumes its send slot (the bandwidth was spent) and is
// retransmitted from its FIFO position in a later round; crash-swallowed
// messages are lost permanently; duplicated messages deliver twice;
// delayed messages stall in their queue. Messages are validated by the
// caller (Deliver).
func (nw *Network) deliverFaulty(msgs []Message, recv func(Message)) (int, error) {
	queues := make(map[graph.NodeID][]Message)
	var senders []graph.NodeID
	for _, m := range msgs {
		if len(queues[m.From]) == 0 {
			senders = append(senders, m.From)
		}
		queues[m.From] = append(queues[m.From], m)
	}
	sort.Ints(senders)
	nw.trace.Counter("ncc.sends", int64(len(msgs)))
	remaining := len(msgs)
	used := 0
	budget := 64 + 16*len(msgs)
	for remaining > 0 {
		if used >= budget {
			return used, ErrFaultBudget
		}
		used++
		round := nw.rounds + 1 // absolute NCC round in progress
		recvLoad := make(map[graph.NodeID]int)
		var delivered []Message
		acted := 0 // sends resolved this round (delivered, dropped, crashed)
		stalled := 0
		for _, s := range senders {
			q := queues[s]
			if len(q) == 0 {
				continue
			}
			if nw.faults.Crashed(s, round) {
				// Sender crash-stopped: its whole backlog dies unsent.
				nw.noteCrash(s, round)
				nw.fstats.CrashDrops += int64(len(q))
				acted += len(q)
				remaining -= len(q)
				queues[s] = nil
				continue
			}
			sent := 0
			kept := q[:0]
			for _, m := range q {
				if sent >= nw.cap || recvLoad[m.To] >= nw.cap {
					kept = append(kept, m)
					continue
				}
				if nw.faults.Crashed(m.To, round) {
					nw.noteCrash(m.To, round)
					nw.fstats.CrashDrops++
					nw.noteFault("crash-drop", nw.fstats.CrashDrops, m.To, round)
					sent++
					remaining--
					acted++
					continue
				}
				switch vd := nw.faults.Clique(round, m.From, m.To); vd.Fate {
				case faultinject.FateDrop:
					// Charged slot, lost payload: the message keeps its FIFO
					// position and is retransmitted next round (reliable
					// transport over a fair-lossy fabric). A plan that drops
					// forever runs into the round budget instead of spinning.
					nw.fstats.Drops++
					nw.noteFault("drop", nw.fstats.Drops, m.To, round)
					sent++
					stalled++
					kept = append(kept, m)
				case faultinject.FateDup:
					nw.fstats.Dups++
					nw.noteFault("dup", nw.fstats.Dups, m.To, round)
					recvLoad[m.To]++
					sent++
					remaining--
					acted++
					delivered = append(delivered, m, m)
				case faultinject.FateDelay:
					// Fabric stall: the message keeps its FIFO slot and is
					// re-offered next round (with a fresh fate draw).
					nw.fstats.Delays++
					nw.noteFault("delay", nw.fstats.Delays, m.To, round)
					stalled++
					kept = append(kept, m)
				default:
					recvLoad[m.To]++
					sent++
					remaining--
					acted++
					delivered = append(delivered, m)
				}
			}
			queues[s] = append([]Message(nil), kept...)
		}
		nw.messages += int64(len(delivered))
		if len(delivered) > 0 {
			nw.trace.Messages(simtrace.EngineNCC, simtrace.NoEdge, int64(len(delivered)))
			for _, m := range delivered {
				nw.trace.NodeWords(simtrace.EngineNCC, m.From, m.To, 1)
			}
		}
		// The round is charged after its deliveries so a round-series sink
		// attributes this batch's messages to this round boundary.
		nw.rounds++
		nw.trace.Rounds(simtrace.EngineNCC, 1)
		if acted == 0 && stalled == 0 {
			return used, errors.New("ncc: scheduler made no progress")
		}
		if remaining > 0 {
			nw.trace.Counter("ncc.overloads", int64(remaining))
		}
		for _, m := range delivered {
			recv(m)
		}
	}
	return used, nil
}
