// Command experiments regenerates the paper-claim tables E1–E14 (see
// DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments                      # run every experiment, full sweeps
//	experiments -run E5,E9b          # run selected experiments
//	experiments -chaos               # run the fault-injection tier C1–C2 instead
//	experiments -quick               # reduced sweeps (what the benchmarks use)
//	experiments -parallel 8          # worker-pool width (default GOMAXPROCS)
//	experiments -trace trace.jsonl   # stream the instrumentation to a file
//	experiments -series -trace t.jsonl  # round-resolved trace (for simtrace -timeline)
//
// The -trace file is a deterministic JSONL event stream (one span per
// experiment ID, phases nested beneath); render it with cmd/simtrace.
// -series additionally records one record per engine round boundary, which
// `simtrace -timeline` turns into a per-round heatmap.
//
// Output determinism: stdout carries only the tables, which are
// byte-identical for a given sweep at every -parallel width, so
// `go run ./cmd/experiments > experiments_output.txt` regenerates the
// committed snapshot reproducibly. Wall-clock timings go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distlap/internal/experiments"
	"distlap/internal/simtrace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runList := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	quick := fs.Bool("quick", false, "reduced parameter sweeps")
	chaos := fs.Bool("chaos", false, "run the fault-injection tier C1-C2 instead of the paper tables")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	parallel := fs.Int("parallel", 0, "sweep-point worker-pool width (0 = GOMAXPROCS); output is identical at any width")
	traceOut := fs.String("trace", "", "write a JSONL instrumentation trace to this file")
	series := fs.Bool("series", false, "with -trace: emit round-resolved series records (simtrace -timeline input)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *series && *traceOut == "" {
		return fmt.Errorf("-series requires -trace")
	}
	if *list {
		ids := experiments.IDs()
		if *chaos {
			ids = experiments.ChaosIDs()
		}
		fmt.Println(strings.Join(ids, "\n"))
		return nil
	}
	cfg := experiments.Config{Quick: *quick, Parallel: *parallel}
	var traceFile *os.File
	var jsonl *simtrace.JSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceFile = f
		if *series {
			jsonl = simtrace.NewJSONLSeries(f)
		} else {
			jsonl = simtrace.NewJSONL(f)
		}
		cfg.Trace = jsonl
	}
	ids := experiments.IDs()
	if *chaos {
		ids = experiments.ChaosIDs()
	}
	if *runList != "" {
		ids = strings.Split(*runList, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiments.RunWith(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		tbl.Fprint(os.Stdout)
		// Timing is wall-clock noise, not part of the deterministic table
		// stream — keep stdout redirectable into experiments_output.txt.
		fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", id, time.Since(start).Round(time.Millisecond))
	}
	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := traceFile.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}
	return nil
}
