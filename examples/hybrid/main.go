// HYBRID vs CONGEST: solve the same Laplacian system on a high-diameter
// network in pure CONGEST and in the HYBRID model (CONGEST + node-
// capacitated clique), demonstrating Theorem 3's topology-independence —
// the global aggregations that cost Θ(D) rounds locally cost O(log n) over
// the NCC overlay.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"

	"distlap"
)

func main() {
	// A ring of 400 sensors: diameter ~200, the worst case for purely
	// local global aggregation.
	const n = 400
	g := distlap.NewGraph(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, 1)
	}

	// Heat sources at four points around the ring, sinks uniform.
	b := make([]float64, n)
	for _, src := range []int{0, 100, 200, 300} {
		b[src] += 1
	}
	for i := range b {
		b[i] -= 4.0 / n
	}

	fmt.Printf("ring network: n=%d, diameter ~%d\n\n", n, n/2)
	var rounds []int
	for _, mode := range []distlap.Mode{distlap.ModeUniversal, distlap.ModeHybrid} {
		res, err := distlap.Solve(g, b, mode, 1e-6, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  iterations=%-3d  rounds=%-7d  rounds/iter=%.1f\n",
			mode, res.Iterations, res.Rounds,
			float64(res.Rounds)/float64(res.Iterations))
		rounds = append(rounds, res.Rounds)
	}
	fmt.Printf("\nHYBRID speedup: %.1fx — the NCC overlay replaces Θ(D)-round\n",
		float64(rounds[0])/float64(rounds[1]))
	fmt.Println("global sums with O(log n)-round aggregations (Lemma 26, Theorem 3).")
}
