// Command simtrace renders a JSONL instrumentation trace (produced by
// distlap.NewJSONLTrace or `experiments -trace`) as per-phase round and
// message tables, and verifies the trace's accounting identity: the
// exclusive per-phase rounds (plus charges outside any span) must sum
// exactly to the per-engine round totals. A mismatch is a bug in the
// instrumentation and exits nonzero.
//
// Usage:
//
//	simtrace trace.jsonl
//	simtrace -top 8 trace.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// record is the union of every JSONL record shape (see simtrace.JSONL).
type record struct {
	Ev       string `json:"ev"`
	Path     string `json:"path"`
	Engine   string `json:"engine"`
	Name     string `json:"name"`
	Count    int    `json:"count"`
	Rounds   int    `json:"rounds"`
	Messages int64  `json:"messages"`
	Value    int64  `json:"value"`
	Edge     int    `json:"edge"`
	Words    int64  `json:"words"`
	Bucket   int    `json:"bucket"`
	Edges    int64  `json:"edges"`
}

func main() {
	fs := flag.NewFlagSet("simtrace", flag.ContinueOnError)
	topK := fs.Int("top", 10, "congested edges to show per engine")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: simtrace [-top k] trace.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "simtrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := render(f, os.Stdout, *topK); err != nil {
		fmt.Fprintln(os.Stderr, "simtrace:", err)
		os.Exit(1)
	}
}

// render parses the trace and writes the report; it returns an error when
// the trace is malformed or the phase/engine round sums disagree.
func render(r io.Reader, w io.Writer, topK int) error {
	var phases, engines, counters, edges, hists []record
	untracked := record{Ev: "untracked"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		switch rec.Ev {
		case "phase":
			phases = append(phases, rec)
		case "engine":
			engines = append(engines, rec)
		case "counter":
			counters = append(counters, rec)
		case "edge":
			edges = append(edges, rec)
		case "loadhist":
			hists = append(hists, rec)
		case "untracked":
			untracked = rec
		case "begin", "end":
			// Per-span stream; the Flush aggregates carry the totals.
		default:
			return fmt.Errorf("line %d: unknown record %q", line, rec.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(engines) == 0 && len(phases) == 0 {
		return fmt.Errorf("no summary records — was Flush called on the collector?")
	}

	engineRounds, engineMsgs := 0, int64(0)
	for _, e := range engines {
		engineRounds += e.Rounds
		engineMsgs += e.Messages
	}
	phaseRounds, phaseMsgs := untracked.Rounds, untracked.Messages
	for _, p := range phases {
		phaseRounds += p.Rounds
		phaseMsgs += p.Messages
	}

	fmt.Fprintf(w, "engines (%d):\n", len(engines))
	tw := newTabular(w, "engine", "rounds", "messages")
	for _, e := range engines {
		tw.row(e.Engine, itoa(e.Rounds), i64toa(e.Messages))
	}
	tw.flush()

	fmt.Fprintf(w, "\nphases (%d, exclusive rounds):\n", len(phases))
	tw = newTabular(w, "phase", "count", "rounds", "rounds%", "messages")
	for _, p := range phases {
		tw.row(p.Path, itoa(p.Count), itoa(p.Rounds), pct(p.Rounds, engineRounds), i64toa(p.Messages))
	}
	if untracked.Rounds != 0 || untracked.Messages != 0 {
		tw.row("(untracked)", "", itoa(untracked.Rounds), pct(untracked.Rounds, engineRounds), i64toa(untracked.Messages))
	}
	tw.flush()

	if len(counters) > 0 {
		fmt.Fprintf(w, "\ncounters (%d):\n", len(counters))
		tw = newTabular(w, "counter", "value")
		for _, c := range counters {
			tw.row(c.Name, i64toa(c.Value))
		}
		tw.flush()
	}

	if len(hists) > 0 {
		fmt.Fprintf(w, "\nedge-load histogram (per engine, bucket = ceil(log2 words)):\n")
		tw = newTabular(w, "engine", "bucket", "<= words", "edges")
		for _, h := range hists {
			tw.row(h.Engine, itoa(h.Bucket), i64toa(int64(1)<<h.Bucket), i64toa(h.Edges))
		}
		tw.flush()
	}

	if len(edges) > 0 {
		perEngine := make(map[string]int)
		var shown []record
		for _, e := range edges {
			if perEngine[e.Engine] < topK {
				shown = append(shown, e)
				perEngine[e.Engine]++
			}
		}
		fmt.Fprintf(w, "\ntop congested directed edges (showing <=%d per engine):\n", topK)
		tw = newTabular(w, "engine", "dir-edge", "words")
		for _, e := range shown {
			tw.row(e.Engine, itoa(e.Edge), i64toa(e.Words))
		}
		tw.flush()
	}

	fmt.Fprintf(w, "\ntotals: phases+untracked = %d rounds / %d messages; engines = %d rounds / %d messages\n",
		phaseRounds, phaseMsgs, engineRounds, engineMsgs)
	if phaseRounds != engineRounds || phaseMsgs != engineMsgs {
		return fmt.Errorf("accounting mismatch: phase sum %d rounds / %d messages vs engine sum %d rounds / %d messages",
			phaseRounds, phaseMsgs, engineRounds, engineMsgs)
	}
	fmt.Fprintln(w, "accounting identity holds: per-phase exclusive charges sum to the engine totals")
	return nil
}

// tabular is a minimal aligned-column writer (no dependency on the
// experiments package: cmds stay leaf packages).
type tabular struct {
	w      io.Writer
	header []string
	rows   [][]string
}

func newTabular(w io.Writer, header ...string) *tabular {
	return &tabular{w: w, header: header}
}

func (t *tabular) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tabular) flush() {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
		}
		fmt.Fprintln(t.w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func itoa(n int) string     { return fmt.Sprintf("%d", n) }
func i64toa(n int64) string { return fmt.Sprintf("%d", n) }

func pct(part, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}
