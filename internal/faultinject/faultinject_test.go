package faultinject

import (
	"math"
	"testing"
)

func TestZeroSpecDisabled(t *testing.T) {
	p, err := New(Spec{Seed: 42})
	if err != nil {
		t.Fatalf("New(zero spec): %v", err)
	}
	if p != nil {
		t.Fatalf("zero spec compiled to a non-nil plan")
	}
	// The nil plan must answer every query with "reliable".
	if p.Crashed(3, 100) {
		t.Errorf("nil plan crashed a node")
	}
	if v := p.Link(5, 7); v.Fate != FateDeliver {
		t.Errorf("nil plan Link fate = %v", v.Fate)
	}
	if v := p.Clique(5, 1, 2); v.Fate != FateDeliver {
		t.Errorf("nil plan Clique fate = %v", v.Fate)
	}
}

func TestValidation(t *testing.T) {
	cases := []Spec{
		{DropProb: -0.1},
		{DropProb: 1.5},
		{DupProb: 2},
		{CrashProb: -1},
		{DropProb: 0.5, DupProb: 0.4, DelayProb: 0.3}, // sums to 1.2
		{DelayProb: 0.1, MaxDelay: -1},
		{CrashProb: 0.1, CrashWindow: -2},
	}
	for i, s := range cases {
		if _, err := New(s); err == nil {
			t.Errorf("case %d: spec %+v validated", i, s)
		}
	}
}

func TestDecisionsArePure(t *testing.T) {
	spec := Spec{
		Seed: 7, DropProb: 0.1, DupProb: 0.05, DelayProb: 0.05, MaxDelay: 4,
		CrashProb: 0.2, FlakyLinkProb: 0.3, FlakyDropProb: 0.5,
	}
	a := MustNew(spec)
	b := MustNew(spec)
	for round := 1; round <= 50; round++ {
		for de := 0; de < 40; de++ {
			va, vb := a.Link(round, de), b.Link(round, de)
			if va != vb {
				t.Fatalf("Link(%d,%d) differs across identical plans: %+v vs %+v", round, de, va, vb)
			}
			// Repeated queries on the same plan must agree (stateless).
			if again := a.Link(round, de); again != va {
				t.Fatalf("Link(%d,%d) not stable on one plan", round, de)
			}
		}
		for v := 0; v < 20; v++ {
			if a.Crashed(v, round) != b.Crashed(v, round) {
				t.Fatalf("Crashed(%d,%d) differs across identical plans", v, round)
			}
		}
		if va, vb := a.Clique(round, 3, 9), b.Clique(round, 3, 9); va != vb {
			t.Fatalf("Clique differs across identical plans")
		}
	}
}

func TestCrashIsPermanent(t *testing.T) {
	p := MustNew(Spec{Seed: 11, CrashProb: 0.5, CrashWindow: 16})
	for v := 0; v < 100; v++ {
		crashed := false
		for round := 1; round <= 64; round++ {
			now := p.Crashed(v, round)
			if crashed && !now {
				t.Fatalf("node %d recovered at round %d: crash-stop must be permanent", v, round)
			}
			crashed = now
		}
	}
}

func TestCrashFractionTracksProbability(t *testing.T) {
	p := MustNew(Spec{Seed: 23, CrashProb: 0.25, CrashWindow: 4})
	const n = 4000
	crashed := 0
	for v := 0; v < n; v++ {
		if p.Crashed(v, 1000) { // far past every crash window
			crashed++
		}
	}
	got := float64(crashed) / n
	if math.Abs(got-0.25) > 0.03 {
		t.Errorf("crash fraction %g, want ≈ 0.25", got)
	}
}

func TestFateDistribution(t *testing.T) {
	p := MustNew(Spec{Seed: 99, DropProb: 0.10, DupProb: 0.05, DelayProb: 0.05, MaxDelay: 3})
	counts := map[Fate]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		v := p.Link(1+i/200, i%200)
		counts[v.Fate]++
		if v.Fate == FateDelay && (v.Delay < 1 || v.Delay > 3) {
			t.Fatalf("delay %d outside [1, 3]", v.Delay)
		}
		if v.Fate != FateDelay && v.Delay != 0 {
			t.Fatalf("non-delay verdict carries delay %d", v.Delay)
		}
	}
	check := func(f Fate, want float64) {
		got := float64(counts[f]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("fate %v frequency %g, want ≈ %g", f, got, want)
		}
	}
	check(FateDrop, 0.10)
	check(FateDup, 0.05)
	check(FateDelay, 0.05)
	check(FateDeliver, 0.80)
}

func TestFlakyLinksAreASubset(t *testing.T) {
	p := MustNew(Spec{Seed: 5, FlakyLinkProb: 0.2, FlakyDropProb: 1.0})
	const edges = 2000
	flaky := 0
	for e := 0; e < edges; e++ {
		isFlaky := p.FlakyLink(e)
		if isFlaky {
			flaky++
		}
		for round := 1; round <= 8; round++ {
			for dir := 0; dir < 2; dir++ {
				v := p.Link(round, 2*e+dir)
				if isFlaky && v.Fate != FateDrop {
					t.Fatalf("flaky edge %d delivered with FlakyDropProb=1", e)
				}
				if !isFlaky && v.Fate != FateDeliver {
					t.Fatalf("healthy edge %d faulted with only flaky faults enabled", e)
				}
			}
		}
	}
	got := float64(flaky) / edges
	if math.Abs(got-0.2) > 0.03 {
		t.Errorf("flaky fraction %g, want ≈ 0.2", got)
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	a := MustNew(Spec{Seed: 1, DropProb: 0.5})
	b := MustNew(Spec{Seed: 2, DropProb: 0.5})
	same := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		if a.Link(1+i/50, i%50).Fate == b.Link(1+i/50, i%50).Fate {
			same++
		}
	}
	// Independent 50/50 decisions agree about half the time; identical
	// streams would agree always.
	if same > trials*3/4 {
		t.Errorf("seeds 1 and 2 agree on %d/%d decisions: streams not independent", same, trials)
	}
}

func TestFateString(t *testing.T) {
	for f, want := range map[Fate]string{
		FateDeliver: "deliver", FateDrop: "drop", FateDup: "dup", FateDelay: "delay",
	} {
		if f.String() != want {
			t.Errorf("Fate(%d).String() = %q, want %q", int(f), f.String(), want)
		}
	}
}
