package graph

// BFSResult holds the outcome of a breadth-first search from a root:
// hop distances, BFS-tree parents and the parent edge used, in visit order.
type BFSResult struct {
	Root       NodeID
	Dist       []int    // hop distance from Root; -1 if unreachable
	Parent     []NodeID // BFS-tree parent; -1 for Root and unreachable nodes
	ParentEdge []EdgeID // edge to parent; -1 where Parent is -1
	Order      []NodeID // visited nodes in BFS order (Root first)
}

// BFS runs a breadth-first search over hop distances (ignoring weights, as
// the paper's hop-diameter does).
func BFS(g *Graph, root NodeID) *BFSResult {
	n := g.N()
	res := &BFSResult{
		Root:       root,
		Dist:       make([]int, n),
		Parent:     make([]NodeID, n),
		ParentEdge: make([]EdgeID, n),
		Order:      make([]NodeID, 0, n),
	}
	for i := range res.Dist {
		res.Dist[i] = -1
		res.Parent[i] = -1
		res.ParentEdge[i] = -1
	}
	res.Dist[root] = 0
	queue := []NodeID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		res.Order = append(res.Order, v)
		for _, h := range g.Neighbors(v) {
			if res.Dist[h.To] == -1 {
				res.Dist[h.To] = res.Dist[v] + 1
				res.Parent[h.To] = v
				res.ParentEdge[h.To] = h.Edge
				queue = append(queue, h.To)
			}
		}
	}
	return res
}

// Eccentricity returns the maximum finite BFS distance from root, or -1 if
// the graph is disconnected from root's component point of view (some node
// unreachable).
func Eccentricity(g *Graph, root NodeID) int {
	res := BFS(g, root)
	ecc := 0
	for _, d := range res.Dist {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact hop-diameter of g by running a BFS from every
// node. It returns -1 for disconnected or empty graphs. Use
// DiameterApprox for large graphs.
func Diameter(g *Graph) int {
	if g.N() == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.N(); v++ {
		ecc := Eccentricity(g, v)
		if ecc == -1 {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// DiameterApprox returns a lower bound on the hop-diameter within a factor
// of 2 via the standard double-sweep heuristic (exact on trees), or -1 for
// disconnected or empty graphs.
func DiameterApprox(g *Graph) int {
	if g.N() == 0 {
		return -1
	}
	first := BFS(g, 0)
	far, best := 0, -1
	for v, d := range first.Dist {
		if d == -1 {
			return -1
		}
		if d > best {
			best, far = d, v
		}
	}
	return Eccentricity(g, far)
}

// Components returns the connected components of g, each as a sorted list
// of node IDs, ordered by smallest contained node.
func Components(g *Graph) [][]NodeID {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]NodeID
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, h := range g.Neighbors(v) {
				if !seen[h.To] {
					seen[h.To] = true
					stack = append(stack, h.To)
				}
			}
		}
		intSort(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether g is connected (true for the empty graph's
// vacuous case only when n <= 1).
func IsConnected(g *Graph) bool {
	if g.N() <= 1 {
		return true
	}
	return len(BFS(g, 0).Order) == g.N()
}

// InducedConnected reports whether the subgraph of g induced by nodes is
// connected (vacuously true for |nodes| <= 1). It runs in time proportional
// to the degrees of the listed nodes.
func InducedConnected(g *Graph, nodes []NodeID) bool {
	if len(nodes) <= 1 {
		return true
	}
	in := make(map[NodeID]bool, len(nodes))
	for _, v := range nodes {
		in[v] = true
	}
	seen := make(map[NodeID]bool, len(nodes))
	stack := []NodeID{nodes[0]}
	seen[nodes[0]] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.Neighbors(v) {
			if in[h.To] && !seen[h.To] {
				seen[h.To] = true
				stack = append(stack, h.To)
			}
		}
	}
	return len(seen) == len(nodes)
}

func intSort(a []int) {
	// Insertion sort is fine for the small components produced in tests;
	// fall back to a shell-ish pass for larger inputs.
	if len(a) > 64 {
		quicksortInts(a)
		return
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func quicksortInts(a []int) {
	if len(a) < 2 {
		return
	}
	pivot := a[len(a)/2]
	lo, hi := 0, len(a)-1
	for lo <= hi {
		for a[lo] < pivot {
			lo++
		}
		for a[hi] > pivot {
			hi--
		}
		if lo <= hi {
			a[lo], a[hi] = a[hi], a[lo]
			lo++
			hi--
		}
	}
	quicksortInts(a[:hi+1])
	quicksortInts(a[lo:])
}

// ApproxCenter returns a low-eccentricity node via a double sweep: BFS from
// node 0, then from the farthest node found, returning the midpoint of the
// resulting longest path. Exact on trees; a 2-approximation in general.
func ApproxCenter(g *Graph) NodeID {
	if g.N() == 0 {
		return 0
	}
	first := BFS(g, 0)
	u := 0
	for v, d := range first.Dist {
		if d > first.Dist[u] {
			u = v
		}
	}
	second := BFS(g, u)
	w := u
	for v, d := range second.Dist {
		if d > second.Dist[w] {
			w = v
		}
	}
	v := w
	for i := 0; i < second.Dist[w]/2; i++ {
		v = second.Parent[v]
	}
	return v
}

// ApproxCenterOf returns a low-eccentricity node of the subgraph induced
// by nodes (double sweep within the induced subgraph). Falls back to
// nodes[0] for degenerate inputs.
func ApproxCenterOf(g *Graph, nodes []NodeID) NodeID {
	if len(nodes) == 0 {
		return 0
	}
	first := BFSTreeOfSubgraph(g, nodes, nil, nodes[0])
	u := nodes[0]
	for _, v := range first.Members {
		if first.Depth[v] > first.Depth[u] {
			u = v
		}
	}
	second := BFSTreeOfSubgraph(g, nodes, nil, u)
	w := u
	for _, v := range second.Members {
		if second.Depth[v] > second.Depth[w] {
			w = v
		}
	}
	v := w
	for i := 0; i < second.Depth[w]/2; i++ {
		v = second.Parent[v]
	}
	return v
}
