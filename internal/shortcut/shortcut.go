// Package shortcut implements low-congestion shortcuts (paper Definition 5):
// given a graph G partitioned into connected parts P_1, ..., P_k, a shortcut
// assigns to each part an edge set H_i such that (i) the hop-diameter of
// G[P_i] ∪ H_i is at most the dilation d, and (ii) every edge appears in at
// most c of the H_i. The quality Q = c + d controls the cost of part-wise
// aggregation (Proposition 6).
//
// Shortcut quality SQ(G) (Definition 7) — the best quality achievable on the
// worst-case partition — is bracketed empirically: the quality achieved by
// the builder portfolio on a partition is an upper bound witness, and
// max(D-ish path bounds) a lower bound. Exact SQ is not computable at scale;
// the paper's theorems are about scaling, which the brackets expose (see
// DESIGN.md §1).
//
// Determinism obligations: builders are deterministic given (graph,
// partition) — map-keyed folds sort their keys first (the region.go
// pattern the maporder analyzer points to) — and every returned shortcut
// carries a congestion/dilation certificate this package has verified, so
// reported qualities are measurements, never estimates.
package shortcut

import (
	"errors"
	"fmt"
	"sort"

	"distlap/internal/graph"
)

// Shortcut is a certified shortcut for a specific partition: per-part extra
// edge sets plus the measured congestion and dilation (recomputed by
// Verify).
type Shortcut struct {
	Parts      [][]graph.NodeID
	Extra      [][]graph.EdgeID // H_i per part (may be nil)
	Congestion int              // max number of H_i containing any edge
	Dilation   int              // max hop-diameter of G[P_i] ∪ H_i
	Builder    string           // name of the builder that produced it
}

// Quality returns c + d (Definition 5).
func (s *Shortcut) Quality() int { return s.Congestion + s.Dilation }

// Errors returned by validation.
var (
	ErrEmptyPart        = errors.New("shortcut: empty part")
	ErrPartDisconnected = errors.New("shortcut: part not induced-connected")
	ErrPartsMismatch    = errors.New("shortcut: extra edge sets do not match parts")
)

// ValidateParts checks that every part is nonempty, within range and
// induced-connected in g (the precondition of Definitions 4/5).
func ValidateParts(g *graph.Graph, parts [][]graph.NodeID) error {
	for i, p := range parts {
		if len(p) == 0 {
			return fmt.Errorf("part %d: %w", i, ErrEmptyPart)
		}
		for _, v := range p {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("part %d: %w: node %d", i, graph.ErrNodeRange, v)
			}
		}
		if !graph.InducedConnected(g, p) {
			return fmt.Errorf("part %d: %w", i, ErrPartDisconnected)
		}
	}
	return nil
}

// Congestion returns the maximum number of parts any single node belongs to
// (the parameter p of the congested part-wise aggregation problem,
// Definition 13). Returns 0 for no parts.
func Congestion(parts [][]graph.NodeID) int {
	cnt := make(map[graph.NodeID]int)
	max := 0
	for _, p := range parts {
		for _, v := range p {
			cnt[v]++
			if cnt[v] > max {
				max = cnt[v]
			}
		}
	}
	return max
}

// Verify recomputes the shortcut's congestion and dilation certificates from
// scratch and stores them; it errors if the parts are invalid or any
// augmented part subgraph is disconnected.
func Verify(g *graph.Graph, s *Shortcut) error {
	if len(s.Extra) != len(s.Parts) {
		return ErrPartsMismatch
	}
	if err := ValidateParts(g, s.Parts); err != nil {
		return err
	}
	use := make(map[graph.EdgeID]int)
	cong := 0
	dil := 0
	for i, p := range s.Parts {
		for _, id := range s.Extra[i] {
			if id < 0 || id >= g.M() {
				return fmt.Errorf("part %d: extra edge %d out of range", i, id)
			}
			use[id]++
			if use[id] > cong {
				cong = use[id]
			}
		}
		d, err := augmentedDiameter(g, p, s.Extra[i])
		if err != nil {
			return fmt.Errorf("part %d: %w", i, err)
		}
		if d > dil {
			dil = d
		}
	}
	s.Congestion = cong
	s.Dilation = dil
	return nil
}

// augmentedDiameter returns the hop-diameter of the subgraph on the node set
// touched by G[P] ∪ H (part nodes plus extra-edge endpoints).
func augmentedDiameter(g *graph.Graph, part []graph.NodeID, extra []graph.EdgeID) (int, error) {
	nodes := map[graph.NodeID]bool{}
	for _, v := range part {
		nodes[v] = true
	}
	for _, id := range extra {
		e := g.Edge(id)
		nodes[e.U] = true
		nodes[e.V] = true
	}
	// The dilation certificate must be an upper bound. For small augmented
	// parts compute the exact diameter (all-pairs BFS); for large ones use
	// the 2-approximation upper bound 2·ecc(x), refined by a double sweep
	// so the reported value is max(ecc(far), min over the two sweeps of
	// 2·ecc) — still a valid upper bound, at most 2× the truth.
	ordered := keys(nodes) // sorted once: deterministic BFS input and sweep order
	sweep := func(root graph.NodeID) (int, int, error) {
		tr := graph.BFSTreeOfSubgraph(g, ordered, extra, root)
		if len(tr.Members) != len(nodes) {
			return 0, 0, fmt.Errorf("augmented part disconnected: %w", ErrPartDisconnected)
		}
		far, ecc := root, 0
		for _, v := range tr.Members {
			if tr.Depth[v] > ecc {
				ecc, far = tr.Depth[v], v
			}
		}
		return ecc, far, nil
	}
	const exactCutoff = 192
	if len(nodes) <= exactCutoff {
		diam := 0
		for _, v := range ordered {
			ecc, _, err := sweep(v)
			if err != nil {
				return 0, err
			}
			if ecc > diam {
				diam = ecc
			}
		}
		return diam, nil
	}
	ecc1, far, err := sweep(part[0])
	if err != nil {
		return 0, err
	}
	ecc2, _, err := sweep(far)
	if err != nil {
		return 0, err
	}
	upper := 2 * ecc1
	if 2*ecc2 < upper {
		upper = 2 * ecc2
	}
	if ecc2 > upper {
		upper = ecc2
	}
	return upper, nil
}

func keys(m map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	// Deterministic order for reproducible BFS trees.
	sortNodeIDs(out)
	return out
}

func sortNodeIDs(a []graph.NodeID) { sort.Ints(a) }

// Builder constructs a shortcut for a partition of g.
type Builder interface {
	// Build returns a verified shortcut for the given parts.
	Build(g *graph.Graph, parts [][]graph.NodeID) (*Shortcut, error)
	// Name identifies the builder in experiment tables.
	Name() string
}
