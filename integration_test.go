package distlap_test

// Scale integration tests: larger instances than the unit suites, skipped
// under -short. They pin down that the measured scaling shapes survive at
// thousands of nodes, not just the experiment-table sizes.

import (
	"testing"

	"distlap"
	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/linalg"
	"distlap/internal/ncc"
	"distlap/internal/partwise"
)

func TestScaleSolverGrid1600(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	g := graph.Grid(40, 40)
	b := linalg.RandomBVector(g.N(), 11)
	res, err := distlap.Solve(g, b, distlap.ModeUniversal, 1e-6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-6 {
		t.Fatalf("residual %g", res.Residual)
	}
	// Round sanity: far below the trivial n*iterations bound.
	if res.Rounds > res.Iterations*g.N() {
		t.Fatalf("rounds %d implausible", res.Rounds)
	}
}

func TestScaleCongestedPWA(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	g := graph.Grid(20, 20)
	inst := partwise.RandomCongestedInstance(g, 4, 8, 3)
	nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 1})
	out, err := partwise.NewLayeredSolver(3).Solve(nw, inst, partwise.Min)
	if err != nil {
		t.Fatal(err)
	}
	want := inst.Expected(partwise.Min)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("part %d wrong", i)
		}
	}
}

func TestScaleNCCAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	g := graph.Grid(64, 64) // n = 4096
	inst := partwise.RandomCongestedInstance(g, 8, 16, 5)
	nw := ncc.NewNetwork(g.N())
	out, err := nw.Aggregate(inst, partwise.Sum)
	if err != nil {
		t.Fatal(err)
	}
	want := inst.Expected(partwise.Sum)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("part %d wrong", i)
		}
	}
	// Lemma 26 at scale: p + log n = 8 + 12 = 20; allow constant slack.
	if nw.Rounds() > 4*20 {
		t.Fatalf("NCC rounds %d too large for p=8, n=4096", nw.Rounds())
	}
}

func TestScaleHybridRing(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	n := 1024
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, 1)
	}
	b := linalg.RandomBVector(n, 2)
	// Chebyshev in HYBRID: the cheapest configuration for a huge-diameter
	// ring; just verify it converges and HYBRID stays far below D per
	// aggregation.
	res, err := distlap.SolveChebyshev(g, b, distlap.ModeHybrid, 1e-4, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-4 {
		t.Fatalf("residual %g", res.Residual)
	}
}
