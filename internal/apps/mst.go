// Package apps implements the downstream applications the paper motivates:
// a universally-optimal MST via Borůvka-over-part-wise-aggregation (the
// classic client of the shortcut framework, §1 and Definition 4), the
// spanning-connected-subgraph problem and its reduction from Laplacian
// solving (Theorems 1 and 29), and electrical-flow / effective-resistance
// computations on top of the core solver.
//
// Determinism obligations: applications compose core/partwise primitives
// and never touch the engines directly, so their measured cost decomposes
// into primitive calls; all tie-breaking (Borůvka edge choice, sweep-cut
// ordering) is by stable IDs, and any randomness draws from rand chains
// seeded via seedderive — a run is a pure function of (graph, seed).
package apps

import (
	"errors"
	"fmt"
	"sort"

	"distlap/internal/congest"
	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/partwise"
)

// MSTResult reports a distributed MST computation.
type MSTResult struct {
	Edges  []graph.EdgeID
	Weight int64
	Phases int
	Rounds int
	// Metrics is the structured communication cost of the run (engine
	// totals plus the per-phase breakdown when traced); prefer it over the
	// bare Rounds count.
	Metrics core.Metrics
}

// ErrDisconnected is returned when the input graph is not connected.
var ErrDisconnected = errors.New("apps: graph disconnected")

// edgeIDBits is the ID field width of an encoded edge. Weights are poly(n)
// by assumption (§2), so 31 bits of ID space (and the remaining 32 weight
// bits) suffice for the graphs the simulator handles; the packed payload is
// 63 bits, i.e. congest.WordsFor(63) == 1 honestly-charged word.
const edgeIDBits = 31

// encodeEdge packs (weight, edgeID) into one checked word so that
// min-aggregation selects the lightest edge with deterministic ID
// tie-breaking. congest.PackWord panics if either field overflows its
// width — silent truncation would corrupt the payload and under-charge the
// model (wordtrunc analyzer rationale).
func encodeEdge(w int64, id graph.EdgeID) congest.Word {
	return congest.PackWord(congest.Word(w), congest.Word(id), edgeIDBits)
}

func decodeEdge(x congest.Word) graph.EdgeID {
	_, id := congest.UnpackWord(x, edgeIDBits)
	return graph.EdgeID(id)
}

// noEdge is the min-identity for encoded edges: above every legal packed
// value of weights < 2^31 (poly(n) weights on simulator-scale graphs).
const noEdge = congest.Word(1) << 62

// MST computes a minimum spanning tree with Borůvka phases, each phase one
// part-wise aggregation (fragments = parts, min outgoing encoded edge) plus
// one neighbor exchange in which every node learns its neighbors' fragment
// IDs. With the shortcut solver this is the universally-optimal MST of the
// low-congestion-shortcut literature; with NaiveGlobalSolver it is the
// √n + D-style baseline.
func MST(nw *congest.Network, solver partwise.Solver) (*MSTResult, error) {
	g := nw.Graph()
	n := g.N()
	if n == 0 {
		return &MSTResult{}, nil
	}
	fragOf := make([]int, n)
	for v := range fragOf {
		fragOf[v] = v
	}
	uf := graph.NewUnionFind(n)
	chosen := make(map[graph.EdgeID]bool)
	res := &MSTResult{}

	tr := nw.Trace()
	tr.Begin("mst")
	defer tr.End("mst")
	for phase := 0; uf.Count() > 1; phase++ {
		if phase > 2*log2(n)+4 {
			return nil, ErrDisconnected
		}
		res.Phases++
		// Every node learns each neighbor's fragment (one exchange round).
		nbrFrag := make([]map[graph.EdgeID]int, n)
		for v := range nbrFrag {
			nbrFrag[v] = make(map[graph.EdgeID]int, g.Degree(v))
		}
		nw.Exchange(
			func(v graph.NodeID, h graph.Half) (congest.Word, bool) {
				return congest.Word(fragOf[v]), true
			},
			func(v graph.NodeID, h graph.Half, w congest.Word) {
				nbrFrag[v][h.Edge] = int(w)
			},
		)
		// Fragments as parts; each node contributes its min outgoing edge.
		frags := make(map[int][]graph.NodeID)
		for v := 0; v < n; v++ {
			frags[fragOf[v]] = append(frags[fragOf[v]], v)
		}
		inst := &partwise.Instance{}
		for id := 0; id < n; id++ {
			if part, ok := frags[id]; ok {
				vals := make([]congest.Word, len(part))
				for i, v := range part {
					best := noEdge
					for _, h := range g.Neighbors(v) {
						if nbrFrag[v][h.Edge] == fragOf[v] {
							continue
						}
						if enc := encodeEdge(g.Edge(h.Edge).Weight, h.Edge); enc < best {
							best = enc
						}
					}
					vals[i] = best
				}
				inst.Parts = append(inst.Parts, part)
				inst.Values = append(inst.Values, vals)
			}
		}
		spec := partwise.AggSpec{Name: "minedge", Fn: congest.AggMin, Identity: noEdge}
		mins, err := solver.Solve(nw, inst, spec)
		if err != nil {
			return nil, fmt.Errorf("apps: mst phase %d: %w", phase, err)
		}
		merged := false
		for i := range mins {
			if mins[i] == noEdge {
				continue // fragment with no outgoing edge: done or disconnected
			}
			id := decodeEdge(mins[i])
			e := g.Edge(id)
			if uf.Union(e.U, e.V) {
				chosen[id] = true
				merged = true
			}
		}
		if !merged {
			break
		}
		for v := 0; v < n; v++ {
			fragOf[v] = uf.Find(v)
		}
		// Fragment relabeling is itself a part-wise aggregation over the
		// merged fragments (every member learns the fragment's min node
		// ID); run it so the cost is charged, and use its output as the
		// label to keep the execution honest.
		newFrags := make(map[int][]graph.NodeID)
		for v := 0; v < n; v++ {
			newFrags[fragOf[v]] = append(newFrags[fragOf[v]], v)
		}
		relabel := &partwise.Instance{}
		var order [][]graph.NodeID
		for id := 0; id < n; id++ {
			if part, ok := newFrags[id]; ok {
				vals := make([]congest.Word, len(part))
				for i, v := range part {
					vals[i] = congest.Word(v)
				}
				relabel.Parts = append(relabel.Parts, part)
				relabel.Values = append(relabel.Values, vals)
				order = append(order, part)
			}
		}
		labels, err := solver.Solve(nw, relabel, partwise.Min)
		if err != nil {
			return nil, fmt.Errorf("apps: mst relabel phase %d: %w", phase, err)
		}
		for i, part := range order {
			for _, v := range part {
				fragOf[v] = int(labels[i])
			}
		}
	}
	if uf.Count() > 1 {
		return nil, ErrDisconnected
	}
	// Report edges in sorted ID order: map iteration order would leak into
	// the result (and into the float Weight sum, whose rounding depends on
	// addition order).
	ids := make([]graph.EdgeID, 0, len(chosen))
	for id := range chosen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		res.Edges = append(res.Edges, id)
		res.Weight += g.Edge(id).Weight
	}
	res.Rounds = nw.Rounds()
	res.Metrics = core.Metrics{
		Congest: core.CongestEngineMetrics(nw),
		Phases:  core.PhasesOf(nw.Trace()),
	}
	return res, nil
}

func log2(n int) int {
	k := 0
	for p := 1; p < n; p *= 2 {
		k++
	}
	return k
}
