// Package graph provides the weighted undirected (multi)graph type used by
// every other package in this repository, together with deterministic
// generators for the graph families the paper's experiments sweep over and
// the elementary traversal machinery (BFS, diameter, components, spanning
// trees) that the CONGEST substrate builds on.
//
// Nodes are dense integers in [0, N). Edges are undirected but carry a stable
// EdgeID so that multigraphs (parallel edges) are representable; parallel
// edges matter because the layered-graph reduction (Lemma 17 of the paper)
// edge-colors a multigraph. Weights are positive integers in {1, ..., poly(n)}
// as the paper assumes (§2, "General notation").
//
// Determinism obligations: generators and tree builders are pure functions
// of (parameters, seed); node and edge IDs are dense and assignment-order
// stable so other packages may index arrays by them; randomized
// constructions (MPX shifts, random graphs) draw from rand chains seeded
// via seedderive, never from global or clock-derived state.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node; nodes are dense integers in [0, N).
type NodeID = int

// EdgeID identifies an edge; edges are dense integers in [0, M).
type EdgeID = int

// Edge is an undirected weighted edge between U and V.
type Edge struct {
	U, V   NodeID
	Weight int64
}

// Half is one endpoint's view of an incident edge ("half-edge").
type Half struct {
	To   NodeID
	Edge EdgeID
}

// Graph is a weighted undirected multigraph with dense node and edge IDs.
// The zero value is an empty graph with no nodes; use New to pre-allocate.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]Half
}

// Sentinel errors returned by graph constructors and validators.
var (
	ErrNodeRange  = errors.New("graph: node out of range")
	ErrBadWeight  = errors.New("graph: weight must be positive")
	ErrSelfLoop   = errors.New("graph: self-loops are not allowed")
	ErrEmptyGraph = errors.New("graph: graph has no nodes")
)

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		n:   n,
		adj: make([][]Half, n),
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	for i := range g.adj {
		c.adj[i] = make([]Half, len(g.adj[i]))
		copy(c.adj[i], g.adj[i])
	}
	return c
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return len(g.edges) }

// AddNode appends a fresh node and returns its ID.
func (g *Graph) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddEdge inserts an undirected edge {u, v} of weight w and returns its
// EdgeID. Parallel edges are allowed; self-loops and non-positive weights
// are rejected.
func (g *Graph) AddEdge(u, v NodeID, w int64) (EdgeID, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, fmt.Errorf("%w: {%d,%d} with n=%d", ErrNodeRange, u, v, g.n)
	}
	if u == v {
		return 0, fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	}
	if w <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadWeight, w)
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Weight: w})
	g.adj[u] = append(g.adj[u], Half{To: v, Edge: id})
	g.adj[v] = append(g.adj[v], Half{To: u, Edge: id})
	return id, nil
}

// MustAddEdge is AddEdge for construction-time code where the arguments are
// known valid (generators, tests); it panics on error.
func (g *Graph) MustAddEdge(u, v NodeID, w int64) EdgeID {
	id, err := g.AddEdge(u, v, w)
	if err != nil {
		panic(err)
	}
	return id
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns a copy of the edge list. Callers that only iterate should
// prefer EdgeList, which is allocation-free.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// EdgeList returns the graph's internal edge list in EdgeID order. The
// returned slice is the graph's own storage and must not be modified by
// the caller; it is the O(1) counterpart of Edges for hot loops
// (Laplacian kernels, spectral scans) where the per-call copy would
// dominate the allocation profile.
func (g *Graph) EdgeList() []Edge { return g.edges }

// Neighbors returns the half-edges incident to v. The returned slice is the
// graph's internal storage and must not be modified by the caller.
func (g *Graph) Neighbors(v NodeID) []Half { return g.adj[v] }

// Degree returns the number of edge endpoints at v (parallel edges counted
// with multiplicity).
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Other returns the endpoint of edge id that is not v.
func (g *Graph) Other(id EdgeID, v NodeID) NodeID {
	e := g.edges[id]
	if e.U == v {
		return e.V
	}
	return e.U
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() int64 {
	var s int64
	for _, e := range g.edges {
		s += e.Weight
	}
	return s
}

// WeightedDegree returns the sum of weights of edges incident to v.
func (g *Graph) WeightedDegree(v NodeID) int64 {
	var s int64
	for _, h := range g.adj[v] {
		s += g.edges[h.Edge].Weight
	}
	return s
}

// HasEdgeBetween reports whether at least one edge joins u and v.
func (g *Graph) HasEdgeBetween(u, v NodeID) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	// Scan the smaller adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, h := range g.adj[u] {
		if h.To == v {
			return true
		}
	}
	return false
}

// Validate checks internal consistency (adjacency mirrors the edge list).
// It is intended for tests and for graphs deserialized from external input.
func (g *Graph) Validate() error {
	if len(g.adj) != g.n {
		return fmt.Errorf("graph: adjacency size %d != n %d", len(g.adj), g.n)
	}
	degSum := 0
	for v := 0; v < g.n; v++ {
		degSum += len(g.adj[v])
		for _, h := range g.adj[v] {
			if h.Edge < 0 || h.Edge >= len(g.edges) {
				return fmt.Errorf("graph: node %d references edge %d of %d", v, h.Edge, len(g.edges))
			}
			e := g.edges[h.Edge]
			if e.U != v && e.V != v {
				return fmt.Errorf("graph: node %d lists edge %d={%d,%d} not incident to it", v, h.Edge, e.U, e.V)
			}
			if h.To != g.Other(h.Edge, v) {
				return fmt.Errorf("graph: node %d half-edge target %d mismatches edge %d", v, h.To, h.Edge)
			}
		}
	}
	if degSum != 2*len(g.edges) {
		return fmt.Errorf("graph: degree sum %d != 2m %d", degSum, 2*len(g.edges))
	}
	for id, e := range g.edges {
		if e.U < 0 || e.U >= g.n || e.V < 0 || e.V >= g.n {
			return fmt.Errorf("edge %d: %w", id, ErrNodeRange)
		}
		if e.U == e.V {
			return fmt.Errorf("edge %d: %w", id, ErrSelfLoop)
		}
		if e.Weight <= 0 {
			return fmt.Errorf("edge %d: %w", id, ErrBadWeight)
		}
	}
	return nil
}

// Subgraph returns the subgraph induced by nodes (in the order given),
// together with the mapping from new node IDs to original node IDs. Edges
// with both endpoints inside are kept (including parallel edges).
func (g *Graph) Subgraph(nodes []NodeID) (*Graph, []NodeID) {
	idx := make(map[NodeID]int, len(nodes))
	orig := make([]NodeID, len(nodes))
	for i, v := range nodes {
		idx[v] = i
		orig[i] = v
	}
	sub := New(len(nodes))
	for _, e := range g.edges {
		iu, okU := idx[e.U]
		iv, okV := idx[e.V]
		if okU && okV {
			sub.MustAddEdge(iu, iv, e.Weight)
		}
	}
	return sub, orig
}

// SortedNeighborIDs returns the distinct neighbor IDs of v in increasing
// order (convenience for deterministic iteration in tests and algorithms).
func (g *Graph) SortedNeighborIDs(v NodeID) []NodeID {
	seen := make(map[NodeID]bool, len(g.adj[v]))
	out := make([]NodeID, 0, len(g.adj[v]))
	for _, h := range g.adj[v] {
		if !seen[h.To] {
			seen[h.To] = true
			out = append(out, h.To)
		}
	}
	sort.Ints(out)
	return out
}
