// Package lint is a repo-specific static-analysis driver, written purely
// with the standard library's go/ast, go/parser, go/token and go/types. It
// enforces the two invariants every measured round count in this repository
// rests on (DESIGN.md "Determinism & verification"):
//
//  1. Determinism — identical seeds must produce identical executions, so
//     no iteration over map order, no global or wall-clock-seeded
//     randomness, and no ad-hoc arithmetic deriving child seeds outside
//     internal/seedderive (analyzers maporder, seededrand, seedderive);
//  2. Metrics integrity — round/message accounting flows only through the
//     congest/ncc charging primitives, never through direct field writes
//     (analyzers metricsintegrity, floateq for the residual checks those
//     metrics gate);
//  3. Trace integrity — every simtrace span opened in a function is also
//     closed there, so phase attribution cannot silently skew (analyzer
//     tracephase), and errors reported by engine primitives are never
//     dropped on the floor (analyzer errcheck).
//
// Findings can be suppressed with a justification comment on the flagged
// line or the line directly above it:
//
//	//distlint:allow <check>[,<check>...] <why this is safe>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string // analyzer name
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named check run over a loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder(),
		SeededRand(),
		SeedDerive(),
		MetricsIntegrity(),
		FloatEq(),
		TracePhase(),
		ErrCheck(),
	}
}

// AllowDirective is the comment prefix that suppresses findings.
const AllowDirective = "distlint:allow"

// allowKey identifies a (file, line) position an allow directive covers.
type allowKey struct {
	file string
	line int
}

// allowSet maps covered positions to the set of allowed check names.
type allowSet map[allowKey]map[string]bool

// collectAllows scans a package's comments for //distlint:allow directives.
// A directive covers its own line and the line directly below it, so it can
// sit at the end of the flagged line or alone on the line above.
func collectAllows(p *Package) allowSet {
	allows := make(allowSet)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, AllowDirective))
				if len(fields) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, check := range strings.Split(fields[0], ",") {
					check = strings.TrimSpace(check)
					if check == "" {
						continue
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := allowKey{file: pos.Filename, line: line}
						if allows[k] == nil {
							allows[k] = make(map[string]bool)
						}
						allows[k][check] = true
					}
				}
			}
		}
	}
	return allows
}

// Run executes the analyzers over the packages, drops suppressed findings,
// and returns the survivors sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		allows := collectAllows(p)
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				k := allowKey{file: d.Pos.Filename, line: d.Pos.Line}
				if allows[k][d.Check] {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// diag builds a Diagnostic for a node in p.
func diag(p *Package, n ast.Node, check, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(n.Pos()),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

// underInternal reports whether the package path lies under
// <module>/internal/ (module path is the first path element sequence before
// "/internal/").
func underInternal(path string) bool {
	return strings.Contains(path, "/internal/")
}

// underAny reports whether path equals one of the roots or lies beneath one
// (path-segment-aware prefix match).
func underAny(path string, roots []string) bool {
	for _, r := range roots {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}

// inspectWithStack walks f invoking fn with each node and the stack of its
// ancestors (outermost first, not including n itself). Returning false from
// fn prunes the subtree.
func inspectWithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
