package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// AccessRecord is one served request in the access log. Field order is the
// wire order (encoding/json marshals struct fields in declaration order),
// so records are byte-stable given identical values. DurationMicros is the
// only wall-clock field; everything else is a pure function of the request
// sequence, so two daemons replaying the same traffic produce logs that
// differ in durations alone.
type AccessRecord struct {
	// ID is the request's correlation ID — the same value the daemon
	// returns in the X-Request-Id response header, so a logged line can be
	// matched to the response a client holds.
	ID       string `json:"id"`
	Method   string `json:"method"`
	Path     string `json:"path"`
	Endpoint string `json:"endpoint"`
	Status   int    `json:"status"`
	// BytesOut is the response body size in bytes.
	BytesOut int64 `json:"bytes_out"`
	// DurationMicros is the wall-clock handling time in microseconds.
	DurationMicros int64 `json:"duration_us"`
}

// AccessLog is a mutex-guarded JSONL access-log writer: one JSON object
// per line, each line a single Write. Like the simtrace JSONL sink, the
// first write error poisons the log — later records are dropped and Err
// reports the original failure — so a truncated log never silently loses
// its tail while appearing healthy.
type AccessLog struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewAccessLog returns an access log writing JSONL records to w. A nil w
// yields a nil log, and a nil *AccessLog drops records silently — callers
// can hold one pointer and never branch on whether logging is enabled.
func NewAccessLog(w io.Writer) *AccessLog {
	if w == nil {
		return nil
	}
	return &AccessLog{w: w}
}

// Log appends one record. Safe for concurrent use; a nil receiver is a
// no-op.
func (l *AccessLog) Log(rec AccessRecord) {
	if l == nil {
		return
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		// AccessRecord has no unmarshalable fields; keep the contract local.
		return
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	n, err := l.w.Write(buf)
	if err == nil && n < len(buf) {
		err = io.ErrShortWrite
	}
	l.err = err
}

// Err reports the first write error, nil while the log is healthy or the
// receiver is nil.
func (l *AccessLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}
