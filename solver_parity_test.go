package distlap_test

// Parity tests for the Solver facade: the package-level convenience
// functions are documented as thin wrappers over a default-configured
// Solver, so the two paths must produce bit-identical results — solutions,
// iteration counts, residuals and measured rounds — in every communication
// mode. A divergence would mean the facade quietly runs a different
// algorithm than the documented one.

import (
	"testing"

	"distlap"
	"distlap/internal/linalg"
	"distlap/internal/partwise"
)

func modes() []distlap.Mode {
	return []distlap.Mode{
		distlap.ModeUniversal,
		distlap.ModeCongest,
		distlap.ModeBaseline,
		distlap.ModeHybrid,
	}
}

func parityGraph() (*distlap.Graph, []float64) {
	for _, f := range distlap.Families() {
		if f.Name == "grid" {
			g := f.Make(42)
			return g, linalg.RandomBVector(g.N(), 9)
		}
	}
	panic("no grid family")
}

func sameResult(t *testing.T, label string, a, b *distlap.Result) {
	t.Helper()
	if a.Iterations != b.Iterations || a.Rounds != b.Rounds {
		t.Errorf("%s: iterations/rounds diverge: (%d,%d) vs (%d,%d)",
			label, a.Iterations, a.Rounds, b.Iterations, b.Rounds)
	}
	if a.Residual != b.Residual {
		t.Errorf("%s: residuals diverge: %v vs %v", label, a.Residual, b.Residual)
	}
	if len(a.X) != len(b.X) {
		t.Fatalf("%s: solution lengths diverge", label)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Errorf("%s: X[%d] diverges: %v vs %v", label, i, a.X[i], b.X[i])
			return
		}
	}
}

// TestSolverParitySolve pins flat Solve == Solver.Solve bit-for-bit across
// all four modes.
func TestSolverParitySolve(t *testing.T) {
	g, b := parityGraph()
	for _, mode := range modes() {
		flat, err := distlap.Solve(g, b, mode, 1e-8, 7)
		if err != nil {
			t.Fatalf("mode %v: flat Solve: %v", mode, err)
		}
		s := distlap.NewSolver(
			distlap.WithMode(mode), distlap.WithEps(1e-8), distlap.WithSeed(7),
		)
		viaSolver, err := s.Solve(g, b)
		if err != nil {
			t.Fatalf("mode %v: Solver.Solve: %v", mode, err)
		}
		sameResult(t, string(mode), flat, viaSolver)
		if viaSolver.Metrics.TotalRounds() != viaSolver.Rounds {
			t.Errorf("mode %v: Metrics.TotalRounds %d != Rounds %d",
				mode, viaSolver.Metrics.TotalRounds(), viaSolver.Rounds)
		}
		if mode == distlap.ModeHybrid && viaSolver.Metrics.NCC == nil {
			t.Errorf("hybrid: Metrics.NCC not populated")
		}
	}
}

// TestSolverParityChebyshev pins flat SolveChebyshev == Solver with
// WithChebyshev.
func TestSolverParityChebyshev(t *testing.T) {
	g, b := parityGraph()
	flat, err := distlap.SolveChebyshev(g, b, distlap.ModeUniversal, 1e-6, 0, 0, 3)
	if err != nil {
		t.Fatalf("flat SolveChebyshev: %v", err)
	}
	s := distlap.NewSolver(
		distlap.WithEps(1e-6), distlap.WithSeed(3), distlap.WithChebyshev(0, 0),
	)
	viaSolver, err := s.Solve(g, b)
	if err != nil {
		t.Fatalf("Solver chebyshev: %v", err)
	}
	sameResult(t, "chebyshev", flat, viaSolver)
}

// TestSolverParityAggregateParts pins the deprecated flat AggregateParts
// against Solver.AggregateParts (values and rounds), exercising the
// copy-removal bugfix.
func TestSolverParityAggregateParts(t *testing.T) {
	g, _ := parityGraph()
	inst := partwise.RandomCongestedInstance(g, 3, 4, 11)
	flatVals, flatRounds, err := distlap.AggregateParts(g, inst, distlap.AggMax, 5)
	if err != nil {
		t.Fatalf("flat AggregateParts: %v", err)
	}
	res, err := distlap.NewSolver(distlap.WithSeed(5)).AggregateParts(g, inst, distlap.AggMax)
	if err != nil {
		t.Fatalf("Solver.AggregateParts: %v", err)
	}
	if len(flatVals) != len(res.Values) {
		t.Fatalf("value lengths diverge: %d vs %d", len(flatVals), len(res.Values))
	}
	for i := range flatVals {
		if flatVals[i] != res.Values[i] {
			t.Errorf("value %d diverges: %d vs %d", i, flatVals[i], res.Values[i])
		}
	}
	if flatRounds != res.Metrics.Congest.Rounds {
		t.Errorf("rounds diverge: %d vs %d", flatRounds, res.Metrics.Congest.Rounds)
	}
	if res.Metrics.Congest.Rounds <= 0 {
		t.Errorf("aggregation charged no rounds")
	}
}

// TestSolverParityApplications pins the app wrappers (flow, effective
// resistance, spectral partition, max-flow, MST) against their flat
// counterparts.
func TestSolverParityApplications(t *testing.T) {
	g, _ := parityGraph()
	s := distlap.NewSolver(distlap.WithSeed(2))

	flatFlow, err := distlap.Flow(g, 0, g.N()-1, distlap.ModeUniversal, 2)
	if err != nil {
		t.Fatalf("flat Flow: %v", err)
	}
	svFlow, err := s.Flow(g, 0, g.N()-1)
	if err != nil {
		t.Fatalf("Solver.Flow: %v", err)
	}
	if flatFlow.Resistance != svFlow.Resistance || flatFlow.Rounds != svFlow.Rounds {
		t.Errorf("flow diverges: (%v,%d) vs (%v,%d)",
			flatFlow.Resistance, flatFlow.Rounds, svFlow.Resistance, svFlow.Rounds)
	}

	flatR, err := distlap.EffectiveResistance(g, 0, 5, distlap.ModeUniversal, 2)
	if err != nil {
		t.Fatalf("flat EffectiveResistance: %v", err)
	}
	svR, err := s.EffectiveResistance(g, 0, 5)
	if err != nil {
		t.Fatalf("Solver.EffectiveResistance: %v", err)
	}
	if flatR != svR {
		t.Errorf("effective resistance diverges: %v vs %v", flatR, svR)
	}

	flatMST, err := distlap.MinimumSpanningTree(g, 2)
	if err != nil {
		t.Fatalf("flat MST: %v", err)
	}
	svMST, err := s.MinimumSpanningTree(g)
	if err != nil {
		t.Fatalf("Solver.MinimumSpanningTree: %v", err)
	}
	if flatMST.Weight != svMST.Weight || flatMST.Rounds != svMST.Rounds {
		t.Errorf("mst diverges: (%d,%d) vs (%d,%d)",
			flatMST.Weight, flatMST.Rounds, svMST.Weight, svMST.Rounds)
	}
	if svMST.Metrics.Congest.Rounds != svMST.Rounds {
		t.Errorf("mst Metrics.Congest.Rounds %d != Rounds %d",
			svMST.Metrics.Congest.Rounds, svMST.Rounds)
	}

	flatSP, err := distlap.SpectralPartition(g, distlap.ModeUniversal, 2)
	if err != nil {
		t.Fatalf("flat SpectralPartition: %v", err)
	}
	svSP, err := s.SpectralPartition(g)
	if err != nil {
		t.Fatalf("Solver.SpectralPartition: %v", err)
	}
	if flatSP.Lambda2 != svSP.Lambda2 || flatSP.Rounds != svSP.Rounds ||
		flatSP.CutWeight != svSP.CutWeight {
		t.Errorf("spectral diverges: (%v,%d,%d) vs (%v,%d,%d)",
			flatSP.Lambda2, flatSP.Rounds, flatSP.CutWeight,
			svSP.Lambda2, svSP.Rounds, svSP.CutWeight)
	}

	flatMF, err := distlap.MaxFlow(g, 0, g.N()-1, 0.1, distlap.ModeUniversal, 2)
	if err != nil {
		t.Fatalf("flat MaxFlow: %v", err)
	}
	svMF, err := s.MaxFlow(g, 0, g.N()-1, 0.1)
	if err != nil {
		t.Fatalf("Solver.MaxFlow: %v", err)
	}
	if flatMF.Value != svMF.Value || flatMF.Rounds != svMF.Rounds {
		t.Errorf("maxflow diverges: (%d,%d) vs (%d,%d)",
			flatMF.Value, flatMF.Rounds, svMF.Value, svMF.Rounds)
	}
}

// TestSolverParitySDD pins flat SolveSDD against Solver.SolveSDD.
func TestSolverParitySDD(t *testing.T) {
	g, b := parityGraph()
	extra := make([]int64, g.N())
	extra[0], extra[g.N()/2] = 2, 1
	flat, err := distlap.SolveSDD(g, extra, b, distlap.ModeUniversal, 1e-8, 4)
	if err != nil {
		t.Fatalf("flat SolveSDD: %v", err)
	}
	viaSolver, err := distlap.NewSolver(distlap.WithSeed(4)).SolveSDD(g, extra, b)
	if err != nil {
		t.Fatalf("Solver.SolveSDD: %v", err)
	}
	sameResult(t, "sdd", flat, viaSolver)
}
