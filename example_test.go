package distlap_test

import (
	"context"
	"fmt"

	"distlap"
)

// ExampleSolver_Prepare is the preferred repeated-solve pattern: prepare
// the instance once (paying setup exactly once), then issue requests —
// single solves, multi-RHS batches, flow queries — against the cached
// state. Each request pays only iteration cost.
func ExampleSolver_Prepare() {
	g := distlap.NewGraph(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	s := distlap.NewSolver(distlap.WithEps(1e-10))

	inst, err := s.Prepare(context.Background(), g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// A 2-RHS batch against the one prepared instance: setup is charged
	// zero times, every request is pure iteration.
	batch, err := inst.SolveBatch(context.Background(), [][]float64{
		{1, 0, -1},
		{-1, 2, -1},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r, err := inst.EffectiveResistance(context.Background(), 0, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("x0-x2 = %.3f, solves = %d, R(0,2) = %.2f\n",
		batch[0].X[0]-batch[0].X[2], len(batch), r)
	// Output: x0-x2 = 2.000, solves = 2, R(0,2) = 2.00
}

// ExampleSolve solves a tiny Laplacian system through the one-shot
// compatibility wrapper and prints the measured round count's positivity
// and the potential gap. (For repeated solves on one graph, prefer
// Solver.Prepare — see ExampleSolver_Prepare.)
func ExampleSolve() {
	g := distlap.NewGraph(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	b := []float64{1, 0, -1}
	res, err := distlap.Solve(g, b, distlap.ModeUniversal, 1e-10, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("x0-x2 = %.3f, rounds > 0: %v\n", res.X[0]-res.X[2], res.Rounds > 0)
	// Output: x0-x2 = 2.000, rounds > 0: true
}

// ExampleAggregateParts runs the paper's congested part-wise aggregation
// primitive on two overlapping parts.
func ExampleAggregateParts() {
	g := distlap.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	inst := &distlap.PartwiseInstance{
		Parts:  [][]int{{0, 1, 2}, {1, 2, 3}}, // node congestion p = 2
		Values: [][]int64{{5, 2, 9}, {1, 7, 3}},
	}
	mins, _, err := distlap.AggregateParts(g, inst, distlap.AggMin, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(mins)
	// Output: [2 1]
}

// ExampleEffectiveResistance computes a series resistance.
func ExampleEffectiveResistance() {
	g := distlap.NewGraph(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	r, err := distlap.EffectiveResistance(g, 0, 2, distlap.ModeUniversal, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.2f\n", r)
	// Output: 2.00
}

// ExampleMaxFlow approximates (and here exactly recovers) an s-t max flow.
func ExampleMaxFlow() {
	g := distlap.NewGraph(4)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 3, 2)
	g.MustAddEdge(0, 2, 3)
	g.MustAddEdge(2, 3, 3)
	res, err := distlap.MaxFlow(g, 0, 3, 0.1, distlap.ModeUniversal, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Value)
	// Output: 5
}
