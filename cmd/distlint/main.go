// Command distlint runs the repo-specific static-analysis suite
// (internal/lint) over the module: determinism, model-soundness,
// concurrency and metrics-integrity invariants that ordinary go vet cannot
// express.
//
// Usage:
//
//	go run ./cmd/distlint ./...
//	go run ./cmd/distlint -checks maporder,floateq ./internal/...
//	go run ./cmd/distlint -disable errcheck ./...
//	go run ./cmd/distlint -json ./... > distlint.json
//	go run ./cmd/distlint -list
//
// All analyzers share one parse + type-check pass per package. -checks
// enables only the named analyzers, -disable removes names from whatever is
// enabled, -min-severity hides findings below a level, and
// -maporder-sortfuncs whitelists helper functions the maporder analyzer
// trusts to canonicalize order (see internal/lint.MapOrderSortFuncs).
//
// -json writes a machine-readable report to stdout instead of text lines:
// a versioned schema listing the analyzers that ran and every finding —
// suppressed ones included, with their suppression state and the
// //distlint:allow justification — with module-relative slash paths and a
// severity summary. The bytes are stable: identical inputs produce an
// identical report, so CI can archive and diff it.
//
// Exit status is 0 when no unsuppressed error-severity finding remains,
// 1 when one does (warnings alone never fail a run), 2 on usage or load
// errors. Findings are suppressed line-by-line with
// //distlint:allow <check> <justification> (see internal/lint; the
// justification is mandatory — allowjustify flags bare directives).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"distlap/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// splitList splits a comma-separated flag value into trimmed non-empty names.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("distlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available analyzers and exit")
	checks := fs.String("checks", "", "comma-separated subset of analyzers to run (default all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	jsonOut := fs.Bool("json", false, "write a machine-readable report to stdout")
	minSev := fs.String("min-severity", "warning", "report findings at or above this severity (warning|error)")
	sortFuncs := fs.String("maporder-sortfuncs", "",
		"comma-separated helper function names maporder trusts to canonicalize iteration order")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			sev := a.Severity
			if sev == 0 {
				sev = lint.SevError
			}
			fmt.Fprintf(stdout, "%-18s %-8s %s\n", a.Name, sev, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.Select(analyzers, splitList(*checks), splitList(*disable))
	if err != nil {
		fmt.Fprintf(stderr, "distlint: %v (try -list)\n", err)
		return 2
	}
	threshold, err := lint.ParseSeverity(*minSev)
	if err != nil {
		fmt.Fprintf(stderr, "distlint: %v\n", err)
		return 2
	}
	for _, name := range splitList(*sortFuncs) {
		lint.MapOrderSortFuncs[name] = true
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "distlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "distlint: %v\n", err)
		return 2
	}
	paths, err := loader.Expand(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "distlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(paths)
	if err != nil {
		fmt.Fprintf(stderr, "distlint: %v\n", err)
		return 2
	}

	// One pass over every package; findings below the severity threshold are
	// dropped entirely, suppressed ones are kept for the JSON report (text
	// mode hides them). The exit code reflects only unsuppressed errors.
	var diags []lint.Diagnostic
	failing := 0
	for _, d := range lint.RunAll(pkgs, analyzers) {
		if d.Severity < threshold {
			continue
		}
		diags = append(diags, d)
		if !d.Suppressed && d.Severity >= lint.SevError {
			failing++
		}
	}

	if *jsonOut {
		report := lint.BuildReport(loader.ModulePath, loader.Root, analyzers, len(pkgs), diags)
		b, err := report.Marshal()
		if err != nil {
			fmt.Fprintf(stderr, "distlint: %v\n", err)
			return 2
		}
		if _, err := stdout.Write(b); err != nil {
			fmt.Fprintf(stderr, "distlint: %v\n", err)
			return 2
		}
		if failing > 0 {
			return 1
		}
		return 0
	}

	shown := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		shown++
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n",
			pos.Filename, pos.Line, pos.Column, d.Check, d.Message)
	}
	if shown > 0 {
		fmt.Fprintf(stderr, "distlint: %d finding(s) in %d package(s)\n", shown, len(pkgs))
	}
	if failing > 0 {
		return 1
	}
	return 0
}
