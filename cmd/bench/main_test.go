package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"distlap/internal/simprof"
)

// TestQuickBenchWithVerify runs the whole quick suite with the sequential
// parity oracle enabled and checks the emitted BENCH file's invariants.
func TestQuickBenchWithVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := run([]string{"-quick", "-label", "test", "-parallel", "2", "-verify", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc simprof.BenchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH file is not valid JSON: %v", err)
	}
	if doc.Schema != simprof.BenchSchema {
		t.Errorf("schema: got %d, want %d", doc.Schema, simprof.BenchSchema)
	}
	if doc.Mode != "quick" || doc.Label != "test" || doc.Parallel != 2 {
		t.Errorf("header fields wrong: %+v", doc)
	}
	if len(doc.Experiments) != 15 {
		t.Fatalf("got %d experiment records, want 15", len(doc.Experiments))
	}
	for _, e := range doc.Experiments {
		if e.WallMS < 0 || e.Rows <= 0 {
			t.Errorf("%s: implausible record %+v", e.ID, e)
		}
		// Every experiment drives at least one network, so communication
		// metrics must be present (E3/E4 are pure computation and may be 0).
		if e.Rounds < 0 || e.Messages < 0 || e.MaxEdgeLoad < 0 {
			t.Errorf("%s: negative metric %+v", e.ID, e)
		}
	}
	if doc.Speedup <= 0 {
		t.Errorf("verify run must record a speedup, got %v", doc.Speedup)
	}

	// Regression gating on the just-measured data: the run must pass
	// against its own BENCH file and fail against a synthetically inflated
	// baseline (wall time stays exempt).
	if err := compareAgainst(out, &doc, 0.10); err != nil {
		t.Errorf("self-compare must pass: %v", err)
	}
	inflated := doc
	inflated.Experiments = append([]simprof.BenchExp(nil), doc.Experiments...)
	for i := range inflated.Experiments {
		inflated.Experiments[i].WallMS *= 100 // never gated
	}
	if err := compareAgainst(out, &inflated, 0.10); err != nil {
		t.Errorf("wall-time inflation must pass the gate: %v", err)
	}
	deflatedBaseline := filepath.Join(t.TempDir(), "BENCH_old.json")
	old := doc
	old.Experiments = append([]simprof.BenchExp(nil), doc.Experiments...)
	for i := range old.Experiments {
		// Shrink the recorded baseline so the current run reads as a >10%
		// rounds regression on every experiment with nonzero rounds.
		old.Experiments[i].Rounds = old.Experiments[i].Rounds * 2 / 3
	}
	data, err = json.Marshal(&old)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(deflatedBaseline, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareAgainst(deflatedBaseline, &doc, 0.10); err == nil {
		t.Error("compare against a deflated baseline must fail")
	}
}

// TestBadFlag checks flag errors surface instead of running the suite.
func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("want flag error")
	}
}
