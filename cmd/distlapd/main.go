// Command distlapd serves the distributed Laplacian solver over HTTP: load
// a graph once (paying instance preparation — trees, cluster covers,
// preconditioner state — exactly once), then issue solve, multi-RHS batch,
// electrical-flow and MST requests against the cached instance, each paying
// only iteration cost. Instances live in a byte-budgeted LRU cache.
//
// Usage:
//
//	distlapd [-addr :8090] [-cache-bytes 67108864]
//	distlapd -selftest
//
// The API is JSON over stdlib net/http (see internal/service):
//
//	POST   /v1/graphs             {"id":"g1","graph":{"family":"grid","size":100},"seed":1}
//	GET    /v1/graphs
//	DELETE /v1/graphs/{id}
//	POST   /v1/graphs/{id}/solve  {"b":[...]} or {"bs":[[...],[...]]}
//	POST   /v1/graphs/{id}/flow   {"s":0,"t":5}
//	POST   /v1/graphs/{id}/mst    {}
//
// Responses are deterministic: identical requests against daemons started
// with identical configuration produce byte-identical JSON.
//
// -selftest exercises the full request cycle in-process (no sockets) and
// exits nonzero on any mismatch; CI runs it as the daemon smoke test.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distlap/internal/service"
)

// shutdownGrace bounds how long a terminating daemon waits for in-flight
// requests to drain before closing their connections.
const shutdownGrace = 30 * time.Second

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	cacheBytes := flag.Int64("cache-bytes", service.DefaultCacheBytes, "instance cache budget in bytes")
	selftest := flag.Bool("selftest", false, "run the in-process request-cycle smoke test and exit")
	flag.Parse()

	srv := service.New(service.Config{CacheBytes: *cacheBytes})
	if *selftest {
		if err := runSelftest(srv.Handler()); err != nil {
			fmt.Fprintln(os.Stderr, "selftest:", err)
			os.Exit(1)
		}
		fmt.Println("distlapd selftest ok")
		return
	}
	if err := serve(srv, *addr, *cacheBytes); err != nil {
		log.Fatal(err)
	}
}

// serve runs the hardened HTTP server until SIGINT/SIGTERM, then drains
// in-flight requests through a bounded graceful Shutdown so a rolling
// restart never truncates a response mid-solve.
func serve(srv *service.Server, addr string, cacheBytes int64) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := srv.NewHTTPServer(addr)
	errc := make(chan error, 1)
	go func() {
		log.Printf("distlapd listening on %s (cache budget %d bytes)", addr, cacheBytes)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return fmt.Errorf("distlapd: %w", err)
	case <-ctx.Done():
	}
	log.Printf("distlapd: shutdown signal received, draining (up to %s)", shutdownGrace)
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("distlapd: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("distlapd: %w", err)
	}
	log.Printf("distlapd: drained, exiting")
	return nil
}

// runSelftest drives the whole request cycle against the handler in-process:
// load → list → solve → batch (checking the single solve is byte-identical
// to batch entry 0's derivation) → flow → mst → evict → 404.
func runSelftest(h http.Handler) error {
	do := func(method, path, body string) (int, []byte) {
		req := httptest.NewRequest(method, path, bytes.NewBufferString(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes()
	}
	expect := func(step string, code, want int, body []byte) error {
		if code != want {
			return fmt.Errorf("%s: status %d (want %d): %s", step, code, want, body)
		}
		return nil
	}

	code, body := do("POST", "/v1/graphs",
		`{"id":"self","graph":{"family":"grid","size":36},"seed":7,"eps":1e-6}`)
	if err := expect("load", code, http.StatusOK, body); err != nil {
		return err
	}
	code, body = do("GET", "/v1/graphs", "")
	if err := expect("list", code, http.StatusOK, body); err != nil {
		return err
	}
	if !bytes.Contains(body, []byte(`"id":"self"`)) {
		return fmt.Errorf("list: loaded instance missing: %s", body)
	}

	// One unit-demand RHS on the 6x6 grid (36 nodes, sum zero).
	b := make([]float64, 36)
	b[0], b[35] = 1, -1
	rhs, err := jsonFloats(b)
	if err != nil {
		return err
	}
	code, single := do("POST", "/v1/graphs/self/solve", `{"b":`+rhs+`}`)
	if err := expect("solve", code, http.StatusOK, single); err != nil {
		return err
	}
	code, batch := do("POST", "/v1/graphs/self/solve", `{"bs":[`+rhs+`,`+rhs+`]}`)
	if err := expect("batch", code, http.StatusOK, batch); err != nil {
		return err
	}
	// Batch RHS 0 derives the same request seed as the single solve, so the
	// single response's sole result must appear verbatim inside the batch.
	if !bytes.Contains(batch, bytes.TrimSuffix(bytes.TrimPrefix(single, []byte(`{"results":[`)), []byte("]}\n"))) {
		return fmt.Errorf("batch entry 0 diverged from single solve")
	}

	code, body = do("POST", "/v1/graphs/self/flow", `{"s":0,"t":35}`)
	if err := expect("flow", code, http.StatusOK, body); err != nil {
		return err
	}
	code, body = do("POST", "/v1/graphs/self/mst", `{}`)
	if err := expect("mst", code, http.StatusOK, body); err != nil {
		return err
	}
	code, body = do("DELETE", "/v1/graphs/self", "")
	if err := expect("evict", code, http.StatusOK, body); err != nil {
		return err
	}
	code, body = do("POST", "/v1/graphs/self/solve", `{"b":`+rhs+`}`)
	if err := expect("post-evict solve", code, http.StatusNotFound, body); err != nil {
		return err
	}
	return nil
}

func jsonFloats(xs []float64) (string, error) {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, x := range xs {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%g", x)
	}
	buf.WriteByte(']')
	return buf.String(), nil
}
