package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata package under a chosen import path
// (the path decides which scope rules apply, exactly as for real packages).
func loadFixture(t *testing.T, loader *Loader, dir, importPath string) *Package {
	t.Helper()
	// Absolute dir, as the real driver passes: position filenames must be
	// absolute for the JSON report's module-relative paths to resolve.
	abs, err := filepath.Abs(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	p, err := loader.LoadDir(abs, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return p
}

// fmtDiag renders a diagnostic as "file:line:col check" with the filename
// reduced to its base, the shape the expectation tables use.
func fmtDiag(d Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check)
}

func TestAnalyzersOnFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}

	tests := []struct {
		name string
		dir  string
		path string // import path assigned to the fixture (controls scoping)
		want []string
	}{
		{
			name: "maporder",
			dir:  "maporder",
			path: "distlap/internal/lintfixture/maporder",
			want: []string{
				"a.go:10:2 maporder",
				"a.go:41:2 maporder",
				"a.go:100:2 maporder",
				"a.go:114:2 maporder",
			},
		},
		{
			// The blanket time.Now ban moved to walltime; seededrand keeps
			// the global-source and clock-seed rules. Both fire on the
			// wall-clock seed (entropy source + clock read).
			name: "seededrand",
			dir:  "seededrand",
			path: "distlap/internal/lintfixture/seededrand",
			want: []string{
				"a.go:12:9 seededrand",
				"a.go:17:2 seededrand",
				"a.go:22:33 seededrand",
				"a.go:22:33 walltime",
				"a.go:32:9 walltime",
			},
		},
		{
			name: "seedderive",
			dir:  "seedderive",
			path: "distlap/internal/lintfixture/seedderive",
			want: []string{
				"a.go:8:7 seedderive",
				"a.go:9:8 seedderive",
				"a.go:10:2 seedderive",
				"a.go:12:7 seedderive",
			},
		},
		{
			name: "metricsintegrity",
			dir:  "metricsintegrity",
			path: "distlap/internal/lintfixture/metricsintegrity",
			want: []string{
				"a.go:13:2 metricsintegrity",
				"a.go:14:2 metricsintegrity",
				"a.go:20:9 metricsintegrity",
				"a.go:25:2 metricsintegrity",
			},
		},
		{
			name: "tracephase",
			dir:  "tracephase",
			path: "distlap/internal/lintfixture/tracephase",
			want: []string{
				"a.go:25:2 tracephase",
				"a.go:30:2 tracephase",
				"a.go:38:3 tracephase",
			},
		},
		{
			// The allowed call at a.go:34 must be suppressed by its
			// directive; the handled/underscored forms produce nothing.
			// goroutine additionally flags the `go` statement at line 13.
			name: "errcheck",
			dir:  "errcheck",
			path: "distlap/internal/lintfixture/errcheck",
			want: []string{
				"a.go:11:2 errcheck",
				"a.go:12:2 errcheck",
				"a.go:13:2 errcheck",
				"a.go:13:2 goroutine",
			},
		},
		{
			// Multi-file package: diagnostics must surface from every file.
			name: "floateq multi-file",
			dir:  "floateq",
			path: "distlap/internal/linalg/lintfixture",
			want: []string{
				"a.go:7:9 floateq",
				"b.go:5:9 floateq",
				"b.go:10:9 floateq",
			},
		},
		{
			name: "wordtrunc",
			dir:  "wordtrunc",
			path: "distlap/internal/lintfixture/wordtrunc",
			want: []string{
				"a.go:9:9 wordtrunc",
				"a.go:14:9 wordtrunc",
				"a.go:19:9 wordtrunc",
			},
		},
		{
			name: "goroutine",
			dir:  "goroutine",
			path: "distlap/internal/lintfixture/goroutine",
			want: []string{
				"a.go:9:2 goroutine",
				"a.go:14:9 goroutine",
				"a.go:18:16 goroutine",
				"a.go:19:8 goroutine",
			},
		},
		{
			name: "walltime",
			dir:  "walltime",
			path: "distlap/internal/lintfixture/walltime",
			want: []string{
				"a.go:9:9 walltime",
				"a.go:14:9 walltime",
				"a.go:19:2 walltime",
			},
		},
		{
			// The unjustified, misspelled and bare directives are flagged;
			// the misspelled one also fails to suppress its seededrand
			// finding. The Meta case suppresses allowjustify itself with a
			// justified directive.
			name: "allowjustify",
			dir:  "allowjustify",
			path: "distlap/internal/lintfixture/allowjustify",
			want: []string{
				"a.go:10:2 allowjustify",
				"a.go:23:2 allowjustify",
				"a.go:24:9 seededrand",
				"a.go:29:2 allowjustify",
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := loadFixture(t, loader, tt.dir, tt.path)
			got := Run([]*Package{p}, Analyzers())
			if len(got) != len(tt.want) {
				t.Fatalf("got %d diagnostics, want %d:\n%v", len(got), len(tt.want), got)
			}
			for i, d := range got {
				if fmtDiag(d) != tt.want[i] {
					t.Errorf("diagnostic %d: got %q, want %q (message: %s)", i, fmtDiag(d), tt.want[i], d.Message)
				}
			}
		})
	}
}

// TestAllowSuppression checks //distlint:allow handling: same-line and
// preceding-line suppressions hold, a wrong check name does not suppress,
// and an unsuppressed violation in the same file still surfaces.
func TestAllowSuppression(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p := loadFixture(t, loader, "allow", "distlap/internal/lintfixture/allow")

	// Without suppression handling the analyzer itself sees all four.
	raw := SeededRand().Run(p)
	if len(raw) != 4 {
		t.Fatalf("analyzer alone: got %d diagnostics, want 4:\n%v", len(raw), raw)
	}

	// The runner drops the two suppressed ones.
	got := Run([]*Package{p}, Analyzers())
	want := []string{
		"a.go:15:9 seededrand", // no allow comment
		"a.go:26:9 seededrand", // allow names the wrong check
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(got), len(want), got)
	}
	for i, d := range got {
		if fmtDiag(d) != want[i] {
			t.Errorf("diagnostic %d: got %q, want %q", i, fmtDiag(d), want[i])
		}
	}
}

// TestRunAllSuppressionState checks that RunAll reports suppressed findings
// with their suppression state and directive justification, which the JSON
// report records.
func TestRunAllSuppressionState(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p := loadFixture(t, loader, "allow", "distlap/internal/lintfixture/allow")
	all := RunAll([]*Package{p}, []*Analyzer{SeededRand()})
	if len(all) != 4 {
		t.Fatalf("RunAll: got %d diagnostics, want 4:\n%v", len(all), all)
	}
	var suppressed []Diagnostic
	for _, d := range all {
		if d.Suppressed {
			suppressed = append(suppressed, d)
		}
	}
	if len(suppressed) != 2 {
		t.Fatalf("got %d suppressed diagnostics, want 2:\n%v", len(suppressed), all)
	}
	for _, d := range suppressed {
		if d.Justification == "" || !strings.Contains(d.Justification, "fixture") {
			t.Errorf("suppressed diagnostic %s: justification %q not captured", fmtDiag(d), d.Justification)
		}
		if d.Severity != SevError {
			t.Errorf("suppressed diagnostic %s: severity %v, want error", fmtDiag(d), d.Severity)
		}
	}
}

// TestScopingByImportPath checks that analyzers keyed to package paths stay
// silent outside their scope.
func TestScopingByImportPath(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	cases := []struct {
		name, dir, path string
		analyzer        *Analyzer
	}{
		{"floateq outside numeric packages", "floateq", "distlap/cmd/lintfixturefloat", FloatEq()},
		{"maporder outside internal", "maporder", "distlap/cmd/lintfixturemap", MapOrder()},
		{"errcheck outside internal", "errcheck", "distlap/cmd/lintfixtureerr", ErrCheck()},
		{"wordtrunc outside internal", "wordtrunc", "distlap/cmd/lintfixtureword", WordTrunc()},
		{"goroutine in experiments pool", "goroutine", "distlap/internal/experiments/lintfixture", Goroutine()},
		{"goroutine in simtrace", "goroutine", "distlap/internal/simtrace/lintfixture", Goroutine()},
		{"walltime in experiments harness", "walltime", "distlap/internal/experiments/lintfixture2", WallTime()},
		{"walltime outside internal", "walltime", "distlap/cmd/lintfixturetime", WallTime()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := loadFixture(t, loader, c.dir, c.path)
			if got := c.analyzer.Run(p); len(got) != 0 {
				t.Errorf("%s: got %d diagnostics, want 0:\n%v", c.name, len(got), got)
			}
		})
	}
}

// TestMapOrderWhitelist checks the explicit whitelist hook: the helper-based
// collect-then-order case is flagged by default and accepted once the
// helper name is whitelisted.
func TestMapOrderWhitelist(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p := loadFixture(t, loader, "maporder", "distlap/internal/lintfixture/maporder2")

	countAt := func(line int) int {
		n := 0
		for _, d := range MapOrder().Run(p) {
			if d.Pos.Line == line {
				n++
			}
		}
		return n
	}
	const canonicalLine = 100 // CollectCanonical's range loop
	if got := countAt(canonicalLine); got != 1 {
		t.Fatalf("without whitelist: got %d diagnostics at line %d, want 1", got, canonicalLine)
	}
	MapOrderSortFuncs["canonicalize"] = true
	defer delete(MapOrderSortFuncs, "canonicalize")
	if got := countAt(canonicalLine); got != 0 {
		t.Errorf("with whitelist: got %d diagnostics at line %d, want 0", got, canonicalLine)
	}
}

// TestSelect checks the enable/disable analyzer filters.
func TestSelect(t *testing.T) {
	all := Analyzers()
	if len(all) != 11 {
		t.Fatalf("suite has %d analyzers, want 11", len(all))
	}
	got, err := Select(all, []string{"maporder", "wordtrunc"}, nil)
	if err != nil || len(got) != 2 || got[0].Name != "maporder" || got[1].Name != "wordtrunc" {
		t.Errorf("enable filter: got %v, %v", got, err)
	}
	got, err = Select(all, nil, []string{"errcheck"})
	if err != nil || len(got) != len(all)-1 {
		t.Errorf("disable filter: got %d analyzers, %v", len(got), err)
	}
	for _, a := range got {
		if a.Name == "errcheck" {
			t.Errorf("disable filter kept errcheck")
		}
	}
	if _, err = Select(all, []string{"nosuch"}, nil); err == nil {
		t.Errorf("enable filter accepted unknown analyzer")
	}
	if _, err = Select(all, nil, []string{"nosuch"}); err == nil {
		t.Errorf("disable filter accepted unknown analyzer")
	}
}

// TestSeverity checks the severity plumbing: analyzer defaults fill in
// zero-valued diagnostics, explicit per-diagnostic severities survive, and
// the report summary buckets errors and warnings separately.
func TestSeverity(t *testing.T) {
	mkdiag := func(file string, line int, check string, sev Severity) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: 1},
			Check:    check,
			Severity: sev,
		}
	}
	warn := &Analyzer{
		Name:     "fixturewarn",
		Severity: SevWarning,
		Doc:      "synthetic warning-severity analyzer",
		Run: func(p *Package) []Diagnostic {
			return []Diagnostic{
				mkdiag("w.go", 1, "fixturewarn", 0),        // takes analyzer default
				mkdiag("w.go", 2, "fixturewarn", SevError), // explicit override survives
			}
		},
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p := loadFixture(t, loader, "allow", "distlap/internal/lintfixture/allow")
	diags := RunAll([]*Package{p}, []*Analyzer{warn})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
	if diags[0].Severity != SevWarning || diags[1].Severity != SevError {
		t.Errorf("severities: got %v, %v; want warning, error", diags[0].Severity, diags[1].Severity)
	}
	r := BuildReport("distlap", "", []*Analyzer{warn}, 1, diags)
	if r.Summary.Warnings != 1 || r.Summary.Errors != 1 || r.Summary.Findings != 2 {
		t.Errorf("summary: %+v, want 1 warning + 1 error = 2 findings", r.Summary)
	}
	if s := r.Analyzers[0].Severity; s != "warning" {
		t.Errorf("analyzer severity rendered %q, want warning", s)
	}
}

// TestReportByteStable pins the machine-readable report: two fresh loads of
// the same fixture must marshal to identical bytes, file paths are
// module-relative slash paths, and suppressed findings carry their state
// and justification.
func TestReportByteStable(t *testing.T) {
	build := func() []byte {
		loader, err := NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		p := loadFixture(t, loader, "allow", "distlap/internal/lintfixture/allow")
		diags := RunAll([]*Package{p}, Analyzers())
		r := BuildReport(loader.ModulePath, loader.Root, Analyzers(), 1, diags)
		b, err := r.Marshal()
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		return b
	}
	first, second := build(), build()
	if !bytes.Equal(first, second) {
		t.Fatalf("report bytes differ across identical runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	s := string(first)
	for _, want := range []string{
		`"version": 1`,
		`"module": "distlap"`,
		`"file": "internal/lint/testdata/allow/a.go"`,
		`"suppressed": true`,
		`"justification": "fixture: demonstrates a justified suppression"`,
		`"analyzer": "seededrand"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %s:\n%s", want, s)
		}
	}
	if strings.Contains(s, `"file": "/`) || strings.Contains(s, `\\`) {
		t.Errorf("report leaks absolute or backslashed paths:\n%s", s)
	}
}

// TestAllowParsing pins the directive grammar corner cases.
func TestAllowParsing(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		checks []string
		why    string
	}{
		{"// not a directive", false, nil, ""},
		{"//distlint:allow maporder proven commutative", true, []string{"maporder"}, "proven commutative"},
		{"//distlint:allow maporder,floateq both safe here", true, []string{"maporder", "floateq"}, "both safe here"},
		{"//distlint:allow maporder", true, []string{"maporder"}, ""},
		{"//distlint:allow", true, nil, ""},
		{"//  distlint:allow errcheck   padded   spacing  ", true, []string{"errcheck"}, "padded   spacing"},
	}
	for _, c := range cases {
		spec, ok := parseAllow(&ast.Comment{Text: c.text})
		if ok != c.ok {
			t.Errorf("%q: ok=%v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(spec.checks) != len(c.checks) {
			t.Errorf("%q: checks %v, want %v", c.text, spec.checks, c.checks)
			continue
		}
		for i := range c.checks {
			if spec.checks[i] != c.checks[i] {
				t.Errorf("%q: checks %v, want %v", c.text, spec.checks, c.checks)
			}
		}
		if spec.justification != c.why {
			t.Errorf("%q: justification %q, want %q", c.text, spec.justification, c.why)
		}
	}
}

// TestRepoIsClean is the self-test the CI gate relies on: the whole module
// must lint clean under all eleven analyzers (true positives fixed,
// justified findings suppressed).
func TestRepoIsClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := loader.Expand(loader.Root, []string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	pkgs, err := loader.Load(paths)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("expected to load the whole module, got only %d packages", len(pkgs))
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
