package core

import (
	"fmt"
	"math"

	"distlap/internal/congest"
	"distlap/internal/faultinject"
	"distlap/internal/linalg"
	"distlap/internal/seedderive"
	"distlap/internal/simtrace"
)

// This file is the solver's self-checking recovery loop (DESIGN.md §9),
// active only when a Request carries a fault plan. The reliable path never
// enters it.
//
// The loop rests on one asymmetry: faults can corrupt everything the
// engines move — reductions, sweeps, even the solver's own convergence
// signal — but they cannot touch a locally computed true residual
// ‖b − Lx‖/‖b‖, because the simulator holds the whole state and linalg
// charges no rounds. Every attempt is therefore judged by that verified
// residual, and a run can end in exactly three ways: a verified result at
// the requested tolerance; a verified result at a degraded target with
// Metrics.Degraded = true; or a loud error. A silently wrong vector is
// structurally impossible, and every stage is bounded (engine round caps
// below, attempt caps here), so a faulty solve never hangs.
//
// The degradation ladder:
//  1. up to 1 + Retries attempts at the requested tolerance, each under a
//     freshly derived engine seed (seedderive phase "retry", attempt
//     index) — new scheduling re-aligns which messages meet which faults;
//  2. up to 2 attempts at a coarser tolerance (×degradeFactor);
//  3. one attempt with the identity preconditioner over the global tree —
//     the existential-baseline shape — at the coarse tolerance;
//  4. error, wrapping the last attempt's failure.

// defaultRetries is the full-tolerance retry budget when Request.Retries
// is zero.
const defaultRetries = 2

// degradeFactor coarsens the tolerance when full-tolerance retries
// exhaust (capped below 0.5).
const degradeFactor = 100

// coarseAttempts bounds stage-2 attempts at the degraded tolerance.
const coarseAttempts = 2

// solveRecovering runs the recovery loop. The caller has resolved tol and
// holds the CatchCancel guard; each attempt re-arms its own.
func (in *Instance) solveRecovering(b []float64, req Request, tol float64) (*Result, error) {
	n := in.g.N()
	if len(b) != n {
		return nil, fmt.Errorf("core: b has %d entries for n=%d", len(b), n)
	}
	tr := simtrace.OrNop(req.Trace)

	// The local verification oracle: true relative residual against the
	// mean-centered right-hand side, zero communication, incorruptible.
	lap := linalg.NewLaplacian(in.g)
	bc := linalg.Copy(b)
	linalg.CenterMean(bc)
	bNorm := linalg.Norm2(bc)
	verify := func(x []float64) float64 {
		if bNorm == 0 { //distlint:allow floateq exact-zero guard: b == 0 verifies any centered x == 0 exactly
			return 0
		}
		lx, err := lap.MatVec(x)
		if err != nil {
			return math.MaxFloat64
		}
		for i := range lx {
			lx[i] = bc[i] - lx[i]
		}
		return linalg.Norm2(lx) / bNorm
	}

	retries := req.Retries
	if retries <= 0 {
		retries = defaultRetries
	}
	coarse := tol * degradeFactor
	if coarse > 0.5 {
		coarse = 0.5
	}

	var agg Metrics
	var faults faultinject.Stats
	var lastErr error
	attempt := 0

	// runAttempt executes one bounded solve attempt at the given target
	// tolerance, judging it by the verification oracle, and accumulates
	// its engine costs whether or not it succeeded.
	runAttempt := func(seed int64, target float64, baseline bool) *Result {
		attempt++
		areq := req
		areq.Seed = seed
		res, fs, err := in.attemptFaulty(b, areq, target, baseline, verify)
		faults.Add(fs)
		tr.Counter("recovery.attempts", 1)
		if err != nil {
			lastErr = err
			tr.Gauge("recovery.attempt", attempt, -1, agg.Congest.Rounds)
			return nil
		}
		addEngineMetrics(&agg, res.Metrics)
		tr.Gauge("recovery.attempt", attempt, res.Residual, agg.Congest.Rounds)
		// Iterate verified in-loop for PCG; Chebyshev results are verified
		// here. Re-checking is cheap and makes the invariant unconditional.
		if vres := verify(res.X); vres <= target {
			res.Residual = vres
			return res
		}
		lastErr = fmt.Errorf("%w: verified residual exceeds %g", linalg.ErrNoConverge, target)
		return nil
	}
	accumulate := func(res *Result) *Result {
		agg.Attempts = attempt
		agg.FaultsObserved = faults.Total()
		agg.Phases = PhasesOf(tr)
		res.Metrics = agg
		res.Rounds = agg.TotalRounds()
		return res
	}

	// Stage 1: full tolerance under re-derived seeds.
	for a := 0; a <= retries; a++ {
		seed := req.Seed
		if a > 0 {
			seed = seedderive.Derive(req.Seed, "retry", int64(a))
		}
		if res := runAttempt(seed, tol, false); res != nil {
			return accumulate(res), nil
		}
		if err := cancelErr(req); err != nil {
			return nil, err
		}
	}
	// Stage 2: coarser tolerance.
	tr.Counter("recovery.degraded", 1)
	for a := 0; a < coarseAttempts; a++ {
		seed := seedderive.Derive(req.Seed, "retry/coarse", int64(a))
		if res := runAttempt(seed, coarse, false); res != nil {
			res.Metrics.Degraded = true
			out := accumulate(res)
			out.Metrics.Degraded = true
			return out, nil
		}
		if err := cancelErr(req); err != nil {
			return nil, err
		}
	}
	// Stage 3: the existential-baseline fallback — identity preconditioner
	// over the global aggregation tree — at the coarse tolerance.
	seed := seedderive.Derive(req.Seed, "retry/baseline", 0)
	if res := runAttempt(seed, coarse, true); res != nil {
		out := accumulate(res)
		out.Metrics.Degraded = true
		return out, nil
	}
	if err := cancelErr(req); err != nil {
		return nil, err
	}
	// Stage 4: loud failure.
	return nil, fmt.Errorf("core: recovery exhausted after %d attempts under fault injection: %w",
		attempt, lastErr)
}

// attemptFaulty runs one solve attempt on a fresh faulty comm and reports
// the engines' fault tallies. Engine aborts (completeness failures, round
// budgets) surface as errors; cancellation panics are rematerialized here
// so the recovery loop can distinguish them via cancelErr.
func (in *Instance) attemptFaulty(
	b []float64, req Request, tol float64, baseline bool,
	verify func(x []float64) float64,
) (res *Result, fs faultinject.Stats, err error) {
	defer congest.CatchCancel(&err)
	c := in.Comm(req)
	defer func() {
		// Collect fault tallies on every exit path, including errors.
		switch cc := c.(type) {
		case *CongestComm:
			fs = cc.nw.FaultStats()
		case *HybridComm:
			fs = cc.local.nw.FaultStats()
			fs.Add(cc.global.FaultStats())
		}
	}()
	if in.cheb {
		res, err = SolveChebyshev(c, b, ChebyshevOptions{
			Tol: tol, Lo: in.lo, Hi: in.hi, MaxIter: req.MaxIter, Cancel: req.Cancel,
		})
		return res, fs, err
	}
	pre := in.pre
	if baseline {
		pre = &IdentityPrecond{}
	}
	res, err = Iterate(c, b, pre, Options{
		Tol: tol, MaxIter: req.MaxIter, Cancel: req.Cancel, Verify: verify,
	})
	return res, fs, err
}

// addEngineMetrics accumulates one attempt's engine costs into the
// aggregate: rounds and messages sum across attempts, edge load is the
// maximum any attempt saw.
func addEngineMetrics(agg *Metrics, m Metrics) {
	agg.Congest.Rounds += m.Congest.Rounds
	agg.Congest.Messages += m.Congest.Messages
	if m.Congest.MaxEdgeLoad > agg.Congest.MaxEdgeLoad {
		agg.Congest.MaxEdgeLoad = m.Congest.MaxEdgeLoad
	}
	if m.NCC != nil {
		if agg.NCC == nil {
			agg.NCC = &EngineMetrics{}
		}
		agg.NCC.Rounds += m.NCC.Rounds
		agg.NCC.Messages += m.NCC.Messages
		if m.NCC.MaxEdgeLoad > agg.NCC.MaxEdgeLoad {
			agg.NCC.MaxEdgeLoad = m.NCC.MaxEdgeLoad
		}
	}
}

// cancelErr reports a pending request cancellation (nil otherwise), so the
// recovery loop aborts between attempts instead of retrying into a dead
// deadline.
func cancelErr(req Request) error {
	if req.Cancel == nil {
		return nil
	}
	return req.Cancel()
}
