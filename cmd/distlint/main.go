// Command distlint runs the repo-specific static-analysis suite
// (internal/lint) over the module: determinism and metrics-integrity
// invariants that ordinary go vet cannot express.
//
// Usage:
//
//	go run ./cmd/distlint ./...
//	go run ./cmd/distlint -checks maporder,floateq ./internal/...
//	go run ./cmd/distlint -list
//
// Exit status is 0 when clean, 1 when any diagnostic is reported, 2 on
// usage or load errors. Findings are suppressed line-by-line with
// //distlint:allow <check> <justification> (see internal/lint).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"distlap/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("distlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available analyzers and exit")
	checks := fs.String("checks", "", "comma-separated subset of analyzers to run (default all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "distlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "distlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "distlint: %v\n", err)
		return 2
	}
	paths, err := loader.Expand(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "distlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(paths)
	if err != nil {
		fmt.Fprintf(stderr, "distlint: %v\n", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n",
			pos.Filename, pos.Line, pos.Column, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "distlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
