package lint

// walltimeExempt are the module-relative package suffixes allowed to read
// the wall clock: the experiment harness times real executions (its
// wall-clock numbers are reported, never gated — see cmd/bench), and the
// distlapd serving layer measures request latency and uptime (which the
// obs registry segregates into wall-clock metric families below the
// exposition marker, so the determinism gates never compare them).
// Everything else under internal/ is simulator code whose outputs must be
// bit-identical across runs, and a clock read is the canonical way to
// break that. internal/obs itself is deliberately NOT exempt: the metrics
// subsystem never reads the clock — callers observe durations into
// wall-clock histograms — and the analyzer enforces that split.
var walltimeExempt = []string{"/internal/experiments", "/internal/service"}

// clockFuncs are the time-package functions that observe or depend on the
// wall clock (or the runtime timer heap, equally non-replayable).
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// WallTime returns the walltime analyzer: time.Now / time.Since (and the
// rest of the clock-observing time API) are banned in deterministic
// internal packages. A clock read anywhere in a measured code path makes
// double-run bit-identity (determinism_test.go) and the cmd/bench -compare
// gate meaningless — timing belongs in cmd/ or internal/experiments.
// seededrand separately flags the aggravated case of seeding an RNG from
// the clock, which is banned everywhere including cmd/.
func WallTime() *Analyzer {
	return &Analyzer{
		Name:     "walltime",
		Severity: SevError,
		Doc: "flags time.Now/Since/Sleep/Tick/... in deterministic internal " +
			"packages; wall-clock timing belongs in cmd/ or internal/experiments",
		Run: runWallTime,
	}
}

func runWallTime(p *Package) []Diagnostic {
	if !underInternal(p.Path) {
		return nil
	}
	for _, suffix := range walltimeExempt {
		if inScope(p.Path, suffix) {
			return nil
		}
	}
	var out []Diagnostic
	for _, f := range p.Files {
		forEachPkgCall(p, f, func(call callSite) {
			if call.pkg == "time" && clockFuncs[call.fn] {
				out = append(out, diag(p, call.node, "walltime",
					"time.%s in simulator package %s breaks double-run bit-identity; wall-clock timing belongs in cmd/ or internal/experiments",
					call.fn, p.Path))
			}
		})
	}
	return out
}
