// Package tracephase is a distlint fixture: simtrace spans must be opened
// and closed in the same function scope.
package tracephase

import "distlap/internal/simtrace"

// Good pairs — literal names, deferred End, multiple error-path Ends, and a
// dynamic name: none flagged.
func Good(tr simtrace.Collector, name string, fail bool) error {
	tr.Begin("solve")
	defer tr.End("solve")
	tr.Begin("phase")
	if fail {
		tr.End("phase")
		return nil
	}
	tr.End("phase")
	tr.Begin(name)
	tr.End(name)
	return nil
}

// BadBegin opens a span it never closes: flagged.
func BadBegin(tr simtrace.Collector) {
	tr.Begin("orphan")
}

// BadEnd closes a span it never opened: flagged.
func BadEnd(m *simtrace.InMemory) {
	m.End("stray")
}

// Nested function literals are separate scopes: the literal's unpaired
// Begin is flagged even though the outer function Ends the same name.
func Nested(tr simtrace.Collector) {
	tr.Begin("outer")
	f := func() {
		tr.Begin("outer")
	}
	f()
	tr.End("outer")
}

// ViaAccessor pairs through a collector-returning accessor: not flagged.
func ViaAccessor(get func() simtrace.Collector) {
	get().Begin("bfs")
	get().End("bfs")
}
