package core

// Tests for the core Instance machinery: mid-iteration cancellation via a
// countdown Cancel hook (both the PCG and Chebyshev paths and the round-
// barrier path through the congest engine), request isolation, and the
// size estimator's sanity.

import (
	"context"
	"errors"
	"testing"

	"distlap/internal/graph"
	"distlap/internal/linalg"
)

func prepared(t *testing.T, mode Mode, seed int64) (*Instance, []float64) {
	t.Helper()
	g := graph.Grid(6, 6)
	in, err := PrepareInstance(context.Background(), g, PrepareConfig{Mode: mode, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return in, linalg.RandomBVector(g.N(), 8)
}

// countdown returns a Cancel hook that fires errStop after n polls — a
// deterministic stand-in for a context that dies mid-solve.
var errStop = errors.New("stop requested")

func countdown(n int) func() error {
	calls := 0
	return func() error {
		calls++
		if calls > n {
			return errStop
		}
		return nil
	}
}

// TestInstanceSolveCancelsMidIteration drives the Cancel hook down to zero
// partway through a solve: the error must surface as a plain error (never
// a panic), and it must be the hook's own error.
func TestInstanceSolveCancelsMidIteration(t *testing.T) {
	in, b := prepared(t, ModeUniversal, 1)
	// A full solve polls Cancel at every round barrier and iteration; a
	// small budget dies long before convergence.
	_, err := in.Solve(b, Request{Seed: 1, Cancel: countdown(25)})
	if !errors.Is(err, errStop) {
		t.Fatalf("mid-iteration cancel: got %v, want errStop", err)
	}
	// The instance must remain serviceable after an aborted request.
	res, err := in.Solve(b, Request{Seed: 1})
	if err != nil {
		t.Fatalf("solve after aborted request: %v", err)
	}
	if res.Residual > in.Tol() {
		t.Fatalf("residual %g above tolerance after aborted request", res.Residual)
	}
}

// TestChebyshevCancelsMidIteration covers the same contract on the
// Chebyshev iteration path.
func TestChebyshevCancelsMidIteration(t *testing.T) {
	g := graph.Grid(6, 6)
	in, err := PrepareInstance(context.Background(), g, PrepareConfig{
		Mode: ModeUniversal, Seed: 1, Chebyshev: true, Tol: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.RandomBVector(g.N(), 8)
	if _, err := in.Solve(b, Request{Seed: 1, Cancel: countdown(25)}); !errors.Is(err, errStop) {
		t.Fatalf("chebyshev mid-iteration cancel: got %v, want errStop", err)
	}
}

// TestPrepareCancelsAtRoundBarrier cancels during ModeCongest preparation,
// whose charged BFS crosses round barriers — the cancellation must surface
// as the hook's error through CatchCancel, not a panic.
func TestPrepareCancelsAtRoundBarrier(t *testing.T) {
	g := graph.Grid(6, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PrepareInstance(ctx, g, PrepareConfig{Mode: ModeCongest, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled prepare: got %v, want context.Canceled", err)
	}
}

// TestInstanceRequestsAreIsolated solves twice with the same request and
// checks bit-identical results — a request must never mutate shared state.
func TestInstanceRequestsAreIsolated(t *testing.T) {
	in, b := prepared(t, ModeUniversal, 3)
	r1, err := in.Solve(b, Request{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := in.Solve(b, Request{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Iterations != r2.Iterations || r1.Rounds != r2.Rounds || r1.Residual != r2.Residual {
		t.Fatalf("repeat request diverged: (%d,%d,%g) vs (%d,%d,%g)",
			r1.Iterations, r1.Rounds, r1.Residual, r2.Iterations, r2.Rounds, r2.Residual)
	}
	for i := range r1.X {
		if r1.X[i] != r2.X[i] {
			t.Fatalf("repeat request diverged at X[%d]", i)
		}
	}
}

// TestInstanceSizeBytes sanity-checks the cache-budget estimator: positive,
// and monotone in the graph size.
func TestInstanceSizeBytes(t *testing.T) {
	small, _ := prepared(t, ModeUniversal, 1)
	gBig := graph.Grid(12, 12)
	big, err := PrepareInstance(context.Background(), gBig, PrepareConfig{Mode: ModeUniversal, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if small.SizeBytes() <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", small.SizeBytes())
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("size not monotone: grid(12) %d <= grid(6) %d", big.SizeBytes(), small.SizeBytes())
	}
}
