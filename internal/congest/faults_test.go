package congest

import (
	"strings"
	"testing"

	"distlap/internal/faultinject"
	"distlap/internal/graph"
)

func faultyNet(g *graph.Graph, seed int64, spec faultinject.Spec) *Network {
	spec.Seed = seed
	return NewNetwork(g, Options{Seed: seed, Faults: faultinject.MustNew(spec)})
}

// runExchanges drives k identical all-send Exchange rounds and returns the
// per-node received sums plus the final metrics and fault stats.
func runExchanges(nw *Network, k int) ([]Word, Metrics, FaultStats) {
	got := make([]Word, nw.Graph().N())
	for r := 0; r < k; r++ {
		nw.Exchange(
			func(v graph.NodeID, h graph.Half) (Word, bool) { return Word(v + 1), true },
			func(v graph.NodeID, h graph.Half, w Word) { got[v] += w },
		)
	}
	return got, nw.Metrics(), nw.FaultStats()
}

func TestFaultyExchangeDeterministic(t *testing.T) {
	spec := faultinject.Spec{
		DropProb: 0.1, DupProb: 0.05, DelayProb: 0.1, MaxDelay: 2,
		CrashProb: 0.1, CrashWindow: 4, FlakyLinkProb: 0.2,
	}
	g := graph.Grid(6, 6)
	gotA, mA, fA := runExchanges(faultyNet(g, 7, spec), 12)
	gotB, mB, fB := runExchanges(faultyNet(g, 7, spec), 12)
	if mA != mB {
		t.Fatalf("metrics diverged across identical faulty runs: %+v vs %+v", mA, mB)
	}
	if fA != fB {
		t.Fatalf("fault stats diverged: %+v vs %+v", fA, fB)
	}
	for v := range gotA {
		if gotA[v] != gotB[v] {
			t.Fatalf("node %d received %d vs %d across identical faulty runs", v, gotA[v], gotB[v])
		}
	}
	if fA.Total() == 0 {
		t.Fatalf("fault plan injected nothing over 12 rounds on a 6x6 grid: %+v", fA)
	}
}

func TestDropRetransmitsUntilDelivered(t *testing.T) {
	// Reliable transport over fair-lossy links: every word eventually
	// arrives exactly once, and drops cost rounds and bandwidth instead of
	// correctness.
	g := graph.Grid(4, 4)
	want, rm, _ := runExchanges(NewNetwork(g, Options{Seed: 3}), 3)
	nw := faultyNet(g, 3, faultinject.Spec{DropProb: 0.4})
	got, m, f := runExchanges(nw, 3)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("node %d received %d, want the reliable sum %d", v, got[v], want[v])
		}
	}
	if f.Drops == 0 {
		t.Fatalf("no drops injected at DropProb=0.4")
	}
	if m.Rounds <= rm.Rounds {
		t.Fatalf("retransmission cost no rounds: faulty=%d reliable=%d", m.Rounds, rm.Rounds)
	}
	// Every transmission attempt was charged: lost words spent bandwidth.
	if m.Messages != rm.Messages+f.Drops {
		t.Fatalf("messages=%d, want %d reliable + %d retransmissions", m.Messages, rm.Messages, f.Drops)
	}
}

func TestAllDropExchangeTerminates(t *testing.T) {
	// DropProb=1 defeats retransmission; the exchange must abandon at its
	// retry cap — delivering nothing, charging the attempts — not spin.
	g := graph.Path(4)
	nw := faultyNet(g, 3, faultinject.Spec{DropProb: 1})
	got, m, f := runExchanges(nw, 1)
	for v, w := range got {
		if w != 0 {
			t.Fatalf("node %d received %d despite DropProb=1", v, w)
		}
	}
	if m.Rounds != exchangeRetryCap+1 {
		t.Fatalf("rounds=%d, want the retry cap %d", m.Rounds, exchangeRetryCap+1)
	}
	if f.Drops == 0 || m.Messages == 0 {
		t.Fatalf("lost transmissions not charged: drops=%d messages=%d", f.Drops, m.Messages)
	}
}

func TestDelayedDeliveryArrivesStale(t *testing.T) {
	g := graph.Path(2) // one edge
	nw := faultyNet(g, 5, faultinject.Spec{DelayProb: 1, MaxDelay: 1})
	var rounds []int // exchange index at which each word arrived
	for r := 0; r < 4; r++ {
		rr := r
		nw.Exchange(
			func(v graph.NodeID, h graph.Half) (Word, bool) { return Word(v), rr == 0 },
			func(v graph.NodeID, h graph.Half, w Word) { rounds = append(rounds, rr) },
		)
	}
	if len(rounds) != 2 {
		t.Fatalf("delayed words delivered %d times, want 2 (one per direction)", len(rounds))
	}
	for _, r := range rounds {
		if r == 0 {
			t.Fatalf("a DelayProb=1 word arrived in its own round")
		}
	}
	if nw.FaultStats().Delays != 2 {
		t.Fatalf("delays=%d, want 2", nw.FaultStats().Delays)
	}
}

func TestDupDeliversTwice(t *testing.T) {
	g := graph.Path(2)
	nw := faultyNet(g, 9, faultinject.Spec{DupProb: 1})
	got, m, f := runExchanges(nw, 1)
	if got[0] != 2*2 || got[1] != 2*1 {
		t.Fatalf("received %v, want doubled words [4 2]", got)
	}
	if f.Dups != 2 {
		t.Fatalf("dups=%d, want 2", f.Dups)
	}
	if m.Messages != 4 { // each duplicated word charged twice
		t.Fatalf("messages=%d, want 4", m.Messages)
	}
}

func TestCrashedNodesFallSilent(t *testing.T) {
	g := graph.Star(6)
	spec := faultinject.Spec{CrashProb: 1, CrashWindow: 1} // everyone dead from round 1
	nw := faultyNet(g, 13, spec)
	got, m, f := runExchanges(nw, 3)
	for v, w := range got {
		if w != 0 {
			t.Fatalf("node %d received %d from an all-crashed network", v, w)
		}
	}
	if m.Messages != 0 {
		t.Fatalf("messages=%d: crashed senders must not be charged", m.Messages)
	}
	if m.Rounds != 3 {
		t.Fatalf("rounds=%d, want 3 (rounds still elapse)", m.Rounds)
	}
	if f.Crashes != g.N() {
		t.Fatalf("crashes=%d, want %d", f.Crashes, g.N())
	}
}

func TestConvergecastDetectsFaults(t *testing.T) {
	// Every message on every link dropped: no convergecast can complete,
	// and the primitive must report that rather than hang or lie.
	g := graph.Grid(4, 4)
	nw := faultyNet(g, 21, faultinject.Spec{FlakyLinkProb: 1, FlakyDropProb: 1})
	tree := graph.BFSTree(g, 0)
	_, err := nw.ConvergecastMany([]*graph.Tree{tree},
		func(t int, v graph.NodeID) Word { return 1 }, AggSum)
	if err == nil {
		t.Fatalf("convergecast over an all-dropping network reported success")
	}
	if !strings.Contains(err.Error(), "did not complete") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestConvergecastSurvivesDelays(t *testing.T) {
	// Pure delays lose nothing: the convergecast completes with the exact
	// reliable result, just over more rounds.
	g := graph.Grid(5, 5)
	tree := graph.BFSTree(g, 0)
	reliable := NewNetwork(g, Options{Seed: 2})
	want, err := reliable.ConvergecastMany([]*graph.Tree{tree},
		func(t int, v graph.NodeID) Word { return Word(v) }, AggSum)
	if err != nil {
		t.Fatalf("reliable convergecast: %v", err)
	}
	nw := faultyNet(g, 2, faultinject.Spec{DelayProb: 0.4, MaxDelay: 3})
	got, err := nw.ConvergecastMany([]*graph.Tree{tree},
		func(t int, v graph.NodeID) Word { return Word(v) }, AggSum)
	if err != nil {
		t.Fatalf("delayed convergecast: %v", err)
	}
	if got[0] != want[0] {
		t.Fatalf("delayed convergecast aggregate %d, want %d", got[0], want[0])
	}
	if nw.Rounds() <= reliable.Rounds() {
		t.Fatalf("delays did not cost rounds: faulty=%d reliable=%d", nw.Rounds(), reliable.Rounds())
	}
	if nw.FaultStats().Delays == 0 {
		t.Fatalf("no delays injected at DelayProb=0.4")
	}
}

func TestBroadcastSurvivesDrops(t *testing.T) {
	// Retransmission makes a lossy broadcast complete — slower, never wrong.
	g := graph.Grid(5, 5)
	tree := graph.BFSTree(g, 0)
	reliable := NewNetwork(g, Options{Seed: 4})
	if err := reliable.BroadcastMany([]*graph.Tree{tree}, []Word{7},
		func(t int, v graph.NodeID, w Word) {}); err != nil {
		t.Fatalf("reliable broadcast: %v", err)
	}
	nw := faultyNet(g, 4, faultinject.Spec{DropProb: 0.3})
	seen := make([]Word, g.N())
	if err := nw.BroadcastMany([]*graph.Tree{tree}, []Word{7},
		func(t int, v graph.NodeID, w Word) { seen[v] = w }); err != nil {
		t.Fatalf("broadcast under 30%% drop: %v", err)
	}
	for v, w := range seen {
		if w != 7 {
			t.Fatalf("node %d got %d, want 7", v, w)
		}
	}
	if nw.Rounds() <= reliable.Rounds() {
		t.Fatalf("drops did not cost rounds: faulty=%d reliable=%d", nw.Rounds(), reliable.Rounds())
	}
}

func TestFaultyTreeSchedTerminates(t *testing.T) {
	// drop+delay bands sum to 1: nothing ever crosses, so the scheduler
	// must abandon at its round cap and surface an incomplete broadcast,
	// never spin.
	g := graph.Path(8)
	nw := faultyNet(g, 17, faultinject.Spec{DropProb: 0.9, DelayProb: 0.1, MaxDelay: 5})
	tree := graph.BFSTree(g, 0)
	err := nw.BroadcastMany([]*graph.Tree{tree}, []Word{42},
		func(t int, v graph.NodeID, w Word) {})
	if err == nil {
		t.Fatalf("broadcast under 90%% drop reported success")
	}
}

func TestNilPlanIsReliable(t *testing.T) {
	// Options.Faults = nil must reproduce the pre-fault engine bit for bit.
	g := graph.Grid(4, 5)
	run := func(opts Options) ([]Word, Metrics) {
		nw := NewNetwork(g, opts)
		got, m, _ := runExchanges(nw, 5)
		return got, m
	}
	gotA, mA := run(Options{Seed: 11})
	gotB, mB := run(Options{Seed: 11, Faults: nil})
	if mA != mB {
		t.Fatalf("nil fault plan changed metrics: %+v vs %+v", mA, mB)
	}
	for v := range gotA {
		if gotA[v] != gotB[v] {
			t.Fatalf("nil fault plan changed deliveries at node %d", v)
		}
	}
}
