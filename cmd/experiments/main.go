// Command experiments regenerates the paper-claim tables E1–E14 (see
// DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments                # run every experiment, full sweeps
//	experiments -run E5,E9b    # run selected experiments
//	experiments -quick         # reduced sweeps (what the benchmarks use)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distlap/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runList := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	quick := fs.Bool("quick", false, "reduced parameter sweeps")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	ids := experiments.IDs()
	if *runList != "" {
		ids = strings.Split(*runList, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiments.Run(id, *quick)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
