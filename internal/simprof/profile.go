// Package simprof is the read side of the simulator's observability stack:
// it parses the JSONL traces the simtrace sinks emit into a queryable
// Profile, verifies the accounting identities the write side promises, and
// renders round-resolved views (flamegraph folded stacks, ASCII timelines)
// plus BENCH_<label>.json regression comparisons. simtrace stays the
// write-only hot path; everything analysis-shaped lives here, shared by
// cmd/simtrace and cmd/bench.
package simprof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Record is the union of every simtrace JSONL record shape (see
// simtrace.JSONL for the per-ev field sets). Value is a float64 because
// gauge samples are floats; counter values are integral and convert back
// exactly (they are far below 2^53).
type Record struct {
	Ev       string  `json:"ev"`
	Path     string  `json:"path"`
	Engine   string  `json:"engine"`
	Name     string  `json:"name"`
	Count    int     `json:"count"`
	Rounds   int     `json:"rounds"`
	Messages int64   `json:"messages"`
	Value    float64 `json:"value"`
	Edge     int     `json:"edge"`
	Words    int64   `json:"words"`
	Bucket   int     `json:"bucket"`
	Edges    int64   `json:"edges"`
	Node     int     `json:"node"`
	Nodes    int64   `json:"nodes"`
	Round    int     `json:"round"`
	Step     int     `json:"step"`
	MaxLoad  int64   `json:"maxload"`

	// AtRound is filled by Parse, not the trace: for gauge records, the
	// 1-based cumulative series round in progress when the sample was
	// emitted (the stream interleaves gauges between round boundaries, so
	// file position recovers the global round even when the record's own
	// rounds field is engine-local). Timeline markers bucket by it.
	AtRound int `json:"-"`
}

// GaugeSeries is one named telemetry series in sample (emission) order.
type GaugeSeries struct {
	Name    string
	Samples []Record
}

// Profile is a parsed trace: the Flush aggregates plus the streamed series
// and gauge records, each slice in file order (which the write side emits
// under a total order, so Profiles of byte-identical traces are identical).
type Profile struct {
	Phases    []Record // ev=phase (sorted by path at emission)
	Untracked Record   // ev=untracked (zero value when absent)
	Engines   []Record // ev=engine
	Counters  []Record // ev=counter
	EdgeHist  []Record // ev=loadhist
	Edges     []Record // ev=edge (top loaded, per engine)
	NodeHist  []Record // ev=nodehist
	Nodes     []Record // ev=node (top loaded, per engine)
	Series    []Record // ev=series (round-resolved stream; series sinks only)
	Gauges    []GaugeSeries
}

// Parse reads a JSONL trace. It fails on malformed lines and unknown record
// kinds; use CheckIdentity afterwards to validate the accounting.
func Parse(r io.Reader) (*Profile, error) {
	p := &Profile{Untracked: Record{Ev: "untracked"}}
	gaugeIdx := make(map[string]int)
	curRound := 0 // cumulative round of the last series boundary seen
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		switch rec.Ev {
		case "phase":
			p.Phases = append(p.Phases, rec)
		case "engine":
			p.Engines = append(p.Engines, rec)
		case "counter":
			p.Counters = append(p.Counters, rec)
		case "edge":
			p.Edges = append(p.Edges, rec)
		case "loadhist":
			p.EdgeHist = append(p.EdgeHist, rec)
		case "node":
			p.Nodes = append(p.Nodes, rec)
		case "nodehist":
			p.NodeHist = append(p.NodeHist, rec)
		case "series":
			curRound = rec.Round
			p.Series = append(p.Series, rec)
		case "gauge":
			// A gauge emitted mid-round precedes its round's boundary
			// record, so the round in progress is the last boundary + 1
			// (samples after the final boundary overshoot by one; the
			// timeline clamps them onto the axis).
			rec.AtRound = curRound + 1
			i, ok := gaugeIdx[rec.Name]
			if !ok {
				i = len(p.Gauges)
				gaugeIdx[rec.Name] = i
				p.Gauges = append(p.Gauges, GaugeSeries{Name: rec.Name})
			}
			p.Gauges[i].Samples = append(p.Gauges[i].Samples, rec)
		case "untracked":
			p.Untracked = rec
		case "begin", "end":
			// Per-span stream; the Flush aggregates carry the totals.
		default:
			return nil, fmt.Errorf("line %d: unknown record %q", line, rec.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(p.Engines) == 0 && len(p.Phases) == 0 {
		return nil, fmt.Errorf("no summary records — was Flush called on the collector?")
	}
	return p, nil
}

// EngineRounds returns the summed per-engine round totals.
func (p *Profile) EngineRounds() int {
	total := 0
	for _, e := range p.Engines {
		total += e.Rounds
	}
	return total
}

// EngineMessages returns the summed per-engine message totals.
func (p *Profile) EngineMessages() int64 {
	var total int64
	for _, e := range p.Engines {
		total += e.Messages
	}
	return total
}

// PhaseRounds returns the summed exclusive phase rounds plus the untracked
// bucket — the left-hand side of the accounting identity.
func (p *Profile) PhaseRounds() int {
	total := p.Untracked.Rounds
	for _, ph := range p.Phases {
		total += ph.Rounds
	}
	return total
}

// PhaseMessages is PhaseRounds for messages.
func (p *Profile) PhaseMessages() int64 {
	total := p.Untracked.Messages
	for _, ph := range p.Phases {
		total += ph.Messages
	}
	return total
}

// CheckIdentity verifies the trace's accounting identities: exclusive
// per-phase charges (plus the untracked bucket) must sum exactly to the
// per-engine totals, and — when the trace carries a round series — the
// series deltas must too (each round and message is counted by exactly one
// series record). A violation is an instrumentation bug.
func (p *Profile) CheckIdentity() error {
	if pr, er := p.PhaseRounds(), p.EngineRounds(); pr != er {
		return fmt.Errorf("accounting mismatch: phase sum %d rounds vs engine sum %d rounds", pr, er)
	}
	if pm, em := p.PhaseMessages(), p.EngineMessages(); pm != em {
		return fmt.Errorf("accounting mismatch: phase sum %d messages vs engine sum %d messages", pm, em)
	}
	if len(p.Series) > 0 {
		sr, sm := 0, int64(0)
		for _, s := range p.Series {
			sr += s.Rounds
			sm += s.Messages
		}
		if sr != p.EngineRounds() {
			return fmt.Errorf("accounting mismatch: series sum %d rounds vs engine sum %d rounds", sr, p.EngineRounds())
		}
		if sm != p.EngineMessages() {
			return fmt.Errorf("accounting mismatch: series sum %d messages vs engine sum %d messages", sm, p.EngineMessages())
		}
	}
	return nil
}
