// Package minor implements minor-density certificates (paper Definition 9)
// and the Observation 21 construction (Figure 3): an explicit Ω(√n)-dense
// minor inside the 2-layered version of a √n×√n grid, showing that —
// unlike treewidth (Lemma 19) — minor density can blow up under layering.
//
// Determinism obligations: certificates are constructed by deterministic
// sweeps over stable node IDs (no randomness, no map iteration), and every
// reported density is validated against its explicit branch-set witness
// before being returned.
package minor

import (
	"errors"
	"fmt"

	"distlap/internal/graph"
	"distlap/internal/layered"
)

// Certificate exhibits a minor H of a graph G: disjoint connected branch
// sets (one per H-node); H has an edge between two branch sets iff G has an
// edge joining them. The certified density is |E(H)| / |V(H)|, a lower
// bound on δ(G).
type Certificate struct {
	BranchSets [][]graph.NodeID
}

// Errors reported by Validate.
var (
	ErrOverlap      = errors.New("minor: branch sets overlap")
	ErrDisconnected = errors.New("minor: branch set not induced-connected")
)

// Validate checks disjointness and connectivity of the branch sets.
func (c *Certificate) Validate(g *graph.Graph) error {
	owner := make(map[graph.NodeID]int)
	for i, bs := range c.BranchSets {
		if len(bs) == 0 {
			return fmt.Errorf("minor: branch set %d empty", i)
		}
		for _, v := range bs {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("minor: %w: %d", graph.ErrNodeRange, v)
			}
			if prev, ok := owner[v]; ok {
				return fmt.Errorf("%w: node %d in sets %d and %d", ErrOverlap, v, prev, i)
			}
			owner[v] = i
		}
		if !graph.InducedConnected(g, bs) {
			return fmt.Errorf("%w: set %d", ErrDisconnected, i)
		}
	}
	return nil
}

// Density returns the certified minor's edge/node ratio: the number of
// distinct branch-set pairs joined by at least one G edge, divided by the
// number of branch sets.
func (c *Certificate) Density(g *graph.Graph) float64 {
	k := len(c.BranchSets)
	if k == 0 {
		return 0
	}
	owner := make(map[graph.NodeID]int)
	for i, bs := range c.BranchSets {
		for _, v := range bs {
			owner[v] = i
		}
	}
	pairs := make(map[[2]int]bool)
	for _, e := range g.Edges() {
		a, okA := owner[e.U]
		b, okB := owner[e.V]
		if !okA || !okB || a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		pairs[[2]int{a, b}] = true
	}
	return float64(len(pairs)) / float64(k)
}

// Observation21 constructs, for an s×s grid, the Figure 3 certificate on
// its 2-layered graph: branch set C_i is column i inside layer 0 and branch
// set R_j is row j inside layer 1. Column i meets row j through the clique
// edge at grid cell (j, i), so the minor is K_{s,s}-like with density
// s²/(2s) = s/2 = Ω(√n) — while the grid itself has δ = O(1).
func Observation21(s int) (*layered.Layered, *Certificate, error) {
	base := graph.Grid(s, s)
	lay, err := layered.New(base, 2)
	if err != nil {
		return nil, nil, err
	}
	cert := &Certificate{}
	for col := 0; col < s; col++ {
		var bs []graph.NodeID
		for row := 0; row < s; row++ {
			bs = append(bs, lay.Copy(graph.GridID(s, row, col), 0))
		}
		cert.BranchSets = append(cert.BranchSets, bs)
	}
	for row := 0; row < s; row++ {
		var bs []graph.NodeID
		for col := 0; col < s; col++ {
			bs = append(bs, lay.Copy(graph.GridID(s, row, col), 1))
		}
		cert.BranchSets = append(cert.BranchSets, bs)
	}
	if err := cert.Validate(lay.G); err != nil {
		return nil, nil, err
	}
	return lay, cert, nil
}

// GreedyDenseMinor searches for a dense minor by repeatedly contracting the
// edge joining the two branch sets with the highest combined degree-density
// gain (a simple heuristic — its output is a valid certificate, hence a
// lower bound on δ(G)). rounds bounds the number of contractions.
func GreedyDenseMinor(g *graph.Graph, rounds int) *Certificate {
	n := g.N()
	uf := graph.NewUnionFind(n)
	for r := 0; r < rounds && uf.Count() > 2; r++ {
		// Contract a maximal matching of representative pairs to thicken
		// branch sets uniformly.
		matched := make(map[int]bool)
		for _, e := range g.Edges() {
			ru, rv := uf.Find(e.U), uf.Find(e.V)
			if ru == rv || matched[ru] || matched[rv] {
				continue
			}
			matched[ru] = true
			matched[rv] = true
			uf.Union(ru, rv)
		}
	}
	sets := make(map[int][]graph.NodeID)
	for v := 0; v < n; v++ {
		r := uf.Find(v)
		sets[r] = append(sets[r], v)
	}
	cert := &Certificate{}
	for v := 0; v < n; v++ {
		if bs, ok := sets[v]; ok && uf.Find(v) == v {
			cert.BranchSets = append(cert.BranchSets, bs)
		}
	}
	return cert
}
