package service

// The serving-path hardening of DESIGN.md §9: distlapd must degrade
// loudly and recoverably under hostile or unlucky traffic, never hang and
// never die. The layers, outermost first:
//
//   - panic recovery: a panicking handler becomes a structured 500 and the
//     daemon keeps serving (one poisoned request must not take down the
//     cache everyone else's amortization lives in);
//   - admission control: a bounded in-flight semaphore; saturation answers
//     503 with Retry-After instead of queueing without bound (/v1/healthz
//     bypasses it so probes still see a saturated daemon as alive);
//   - per-request deadline: every request context expires after
//     RequestTimeout, so a pathological solve cannot hold its slot
//     forever — the engine polls the context at round barriers and the
//     handler answers 503 (server's fault, retryable), distinct from the
//     client closing the connection (408);
//   - body caps: http.MaxBytesReader bounds every request body before any
//     JSON decoding, so an oversized payload is rejected with a structured
//     400 after reading at most MaxBodyBytes;
//   - socket timeouts: NewHTTPServer sets read-header/read/write/idle
//     timeouts, closing slow-loris connections at the transport level.
//
// None of this touches the deterministic serving semantics: admission and
// deadlines decide whether a request runs, never what it computes.

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Hardening defaults (Config fields override each one).
const (
	// DefaultMaxBodyBytes bounds a request body (8 MiB holds a ~100k-entry
	// batch RHS with slack; legitimate bodies are far smaller).
	DefaultMaxBodyBytes int64 = 8 << 20
	// DefaultMaxInFlight bounds concurrently served requests.
	DefaultMaxInFlight = 64
	// DefaultRequestTimeout bounds one request's wall time.
	DefaultRequestTimeout = 60 * time.Second

	// Socket-level timeouts for NewHTTPServer.
	defaultReadHeaderTimeout = 5 * time.Second
	defaultReadTimeout       = 30 * time.Second
	defaultWriteTimeout      = 2 * DefaultRequestTimeout
	defaultIdleTimeout       = 120 * time.Second

	healthzPath = "/v1/healthz"
)

// retryAfterSeconds is the static backoff hint sent with every 503.
const retryAfterSeconds = "1"

// harden wraps the route mux in the hardening chain (outermost first:
// recovery, admission, deadline; the body cap lives in decodeBody).
func (s *Server) harden(next http.Handler) http.Handler {
	return s.recoverPanics(s.admit(s.deadline(next)))
}

// recoverPanics converts a handler panic into a structured 500, keeping
// the daemon alive. If the handler had already begun its response the
// write fails silently — the connection is poisoned either way, and the
// next request still gets a healthy daemon.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				writeError(w, http.StatusInternalServerError,
					fmt.Sprintf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// admit is the in-flight admission gate: a non-blocking semaphore acquire,
// answering 503 + Retry-After when the daemon is saturated. Queueing here
// would hide overload behind unbounded latency; refusing keeps the failure
// visible and retryable. Health probes and metric scrapes bypass the
// gate — a saturated daemon is alive, and saying so (with numbers) is
// exactly what probes and scrapers exist for.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if observabilityPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("saturated: %d requests in flight", cap(s.sem)))
		}
	})
}

// deadline attaches the per-request timeout to the request context. The
// solver engines poll the context at round barriers, so an expired request
// stops within one scheduled round and writeSolveError maps the expiry to
// a retryable 503.
func (s *Server) deadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// HealthResponse is the body of GET /v1/healthz: liveness plus the
// saturation and cache-occupancy numbers an operator (or autoscaler)
// steers by.
type HealthResponse struct {
	Status           string `json:"status"`
	InFlight         int    `json:"in_flight"`
	MaxInFlight      int    `json:"max_in_flight"`
	CachedInstances  int    `json:"cached_instances"`
	CacheBytes       int64  `json:"cache_bytes"`
	CacheBudgetBytes int64  `json:"cache_budget_bytes"`
	// CacheEvictions is the cumulative count of instances evicted (budget
	// pressure and explicit DELETE) — rising fast relative to loads means
	// the budget is too small for the working set.
	CacheEvictions int64 `json:"cache_evictions"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:           "ok",
		InFlight:         len(s.sem),
		MaxInFlight:      cap(s.sem),
		CachedInstances:  s.cache.count(),
		CacheBytes:       s.cache.totalBytes(),
		CacheBudgetBytes: s.cache.budget,
		CacheEvictions:   s.met.cacheEvictions.Value(),
	})
}

// NewHTTPServer builds the http.Server distlapd listens with: the hardened
// handler plus socket-level timeouts (slow-loris protection the handler
// chain cannot provide). Callers own Shutdown — pair it with
// signal.NotifyContext as cmd/distlapd does, so in-flight requests drain
// before exit.
func (s *Server) NewHTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: defaultReadHeaderTimeout,
		ReadTimeout:       defaultReadTimeout,
		WriteTimeout:      defaultWriteTimeout,
		IdleTimeout:       defaultIdleTimeout,
	}
}

// maxBytesHint renders the body cap for error messages.
func (s *Server) maxBytesHint() string {
	return strconv.FormatInt(s.maxBody, 10)
}
