// Package goroutine is a distlint fixture: unmanaged concurrency in
// simulator code alongside the single-threaded forms that stay legal.
package goroutine

import "sync"

// Spawn launches an unmanaged goroutine: flagged.
func Spawn(f func()) {
	go f() // violation: go statement
}

// Chan constructs a channel: flagged (buffered or not).
func Chan() chan int {
	return make(chan int, 4) // violation: channel make
}

// Shared declares a sync.Map: flagged.
func Shared() *sync.Map {
	var m sync.Map // violation: sync.Map use
	return &m
}

// Sanctioned is the suppressed form for code audited to be replay-safe.
func Sanctioned(f func()) {
	//distlint:allow goroutine fixture: replayed through the recorder, joined before any charge
	go f()
}

// Local uses maps, slices, and a mutex — all single-goroutine safe: never
// flagged.
func Local() int {
	m := make(map[int]int, 8)
	s := make([]int, 0, 8)
	var mu sync.Mutex
	mu.Lock()
	m[1] = 1
	s = append(s, m[1])
	mu.Unlock()
	return len(s)
}
