package congest

import (
	"fmt"

	"distlap/internal/graph"
)

// Agg is a commutative, associative aggregation function over words
// (paper Definition 4: min, sum, logical-AND, ...).
type Agg func(a, b Word) Word

// Standard aggregation functions.
func AggSum(a, b Word) Word { return a + b }
func AggMin(a, b Word) Word {
	if b < a {
		return b
	}
	return a
}
func AggMax(a, b Word) Word {
	if b > a {
		return b
	}
	return a
}
func AggAnd(a, b Word) Word {
	if a != 0 && b != 0 {
		return 1
	}
	return 0
}
func AggOr(a, b Word) Word {
	if a != 0 || b != 0 {
		return 1
	}
	return 0
}

// pendingSend is one word waiting to cross a directed edge.
type pendingSend struct {
	tree     int
	from     graph.NodeID
	to       graph.NodeID
	w        Word
	eligible int // earliest round this send may occur
}

// treeSched is the shared store-and-forward scheduler for tree-structured
// communication: per directed edge a FIFO of pending sends, at most one
// crossing per round. The FIFOs live in the network's pooled scratch
// (indexed by directed edge, so lookup is an array access, not a map
// probe) and keep their capacity across schedules.
//
// Ordering invariant: active holds exactly the directed edges with
// nonempty FIFOs, and is processed in ascending order every round. dirty
// is set only when push activates a new edge — the per-round filtering
// preserves sortedness, so the re-sort the map-based scheduler ran every
// step is needed only after pushes (and the insertion sort is then nearly
// linear on the almost-sorted list). The processed order is identical
// either way, which is what keeps charge order and delivery order — and
// therefore every gated metric — byte-identical.
type treeSched struct {
	nw     *Network
	active []int // sorted dirEdges with nonempty queues (aliases scr.schedActive)
	dirty  bool
	round  int
	pushes int // total sends ever queued (sizes the faulty-run round cap)
}

func newTreeSched(nw *Network) *treeSched {
	s := &nw.scr
	if len(s.schedQueues) != 2*nw.g.M() {
		s.schedQueues = make([][]pendingSend, 2*nw.g.M())
		s.schedActive = s.schedActive[:0]
	}
	// A previous schedule abandoned under faults may have left sends
	// queued; schedActive still lists exactly the nonempty FIFOs
	// (push adds an edge, only an emptied edge is dropped), so resetting
	// those restores the all-empty invariant.
	for _, de := range s.schedActive {
		s.schedQueues[de] = s.schedQueues[de][:0]
	}
	return &treeSched{nw: nw, active: s.schedActive[:0]}
}

func (s *treeSched) push(de int, ps pendingSend) {
	q := s.nw.scr.schedQueues[de]
	if len(q) == 0 {
		s.active = append(s.active, de)
		s.dirty = true
	}
	s.nw.scr.schedQueues[de] = append(q, ps)
	s.pushes++
}

// step advances one round, delivering at most one eligible send per directed
// edge; deliveries are returned so the caller can apply their effects (which
// may enqueue new sends eligible from round+1). Returns false when no queue
// holds any send.
func (s *treeSched) step(deliver func(ps pendingSend)) bool {
	if len(s.active) == 0 {
		s.nw.scr.schedActive = s.active
		return false
	}
	nw := s.nw
	faults := nw.faults
	if faults != nil && s.round >= s.faultRoundCap() {
		// A fault plan can starve completeness (every remaining send
		// perpetually delayed); abandon the schedule so the primitives'
		// completeness checks report the failure instead of spinning.
		nw.scr.schedActive = s.active
		return false
	}
	nw.checkCancel()
	if s.dirty {
		sortInts(s.active)
		s.dirty = false
	}
	s.round++
	delivered := nw.scr.schedDelivered[:0]
	queues := nw.scr.schedQueues
	newActive := s.active[:0]
	for _, de := range s.active {
		q := queues[de]
		if faults != nil {
			q, delivered = s.stepEdgeFaulty(de, q, delivered)
		} else {
			// Pop the first eligible send, preserving FIFO order otherwise.
			for i := range q {
				if q[i].eligible <= s.round {
					ps := q[i]
					q = append(q[:i], q[i+1:]...)
					nw.chargeEdge(de)
					delivered = append(delivered, ps)
					break
				}
			}
		}
		queues[de] = q
		if len(q) > 0 {
			newActive = append(newActive, de)
		}
	}
	s.active = newActive
	nw.scr.schedActive = newActive
	nw.chargeRound()
	for _, ps := range delivered {
		deliver(ps)
	}
	nw.scr.schedDelivered = delivered
	return true
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// treeCongestion returns the maximum number of trees whose parent edges use
// any single directed edge (the scheduler's congestion parameter c).
// Counting runs over a pooled flat per-directed-edge array.
func (nw *Network) treeCongestion(trees []*graph.Tree) int {
	use := grownI32(nw.scr.edgeUse, 2*nw.g.M())
	nw.scr.edgeUse = use
	for i := range use {
		use[i] = 0
	}
	c := int32(1)
	for _, t := range trees {
		for _, v := range t.Members {
			if t.Parent[v] == -1 {
				continue
			}
			de := nw.dirEdge(t.ParentEdge[v], v)
			use[de]++
			if use[de] > c {
				c = use[de]
			}
		}
	}
	return int(c)
}

// randomDelays draws, for each tree, an initial delay uniform in [0, c)
// (Ghaffari'15-style random-delay scheduling). With delays disabled all
// trees start immediately. The returned slice is pooled scratch, valid
// until the next primitive on this network; the RNG draw sequence is
// identical to the historical allocating version.
func (nw *Network) randomDelays(k, c int) []int {
	delays := grownInts(nw.scr.delayBuf, k)
	nw.scr.delayBuf = delays
	for i := range delays {
		delays[i] = 0
	}
	if nw.opts.DisableRandomDelays || c <= 1 {
		return delays
	}
	for i := range delays {
		delays[i] = nw.rng.Intn(c)
	}
	return delays
}

// ccState is the dense convergecast working state over (tree, node) slots:
// slot t*n+v holds node v's remaining child count and running subtree
// accumulator in tree t. Slots are valid only when stamped with the
// current epoch, so no O(k·n) clearing happens per call.
type ccState struct {
	n       int
	pending []int32
	acc     []Word
	stamp   []uint32
	epoch   uint32
}

func (nw *Network) ccStateFor(trees []*graph.Tree) ccState {
	n := nw.g.N()
	kn := len(trees) * n
	s := &nw.scr
	epoch := s.nextEpoch(kn)
	s.ccPending = grownI32(s.ccPending, kn)
	s.ccAcc = grownWords(s.ccAcc, kn)
	return ccState{n: n, pending: s.ccPending, acc: s.ccAcc, stamp: s.ccStamp, epoch: epoch}
}

// initConvergecast seeds the dense state for one convergecast pass: every
// member's accumulator starts at val(t, v), its pending count at its child
// count, and the leaves' initial sends are pushed. Identical visit order
// (tree-members order) and push order to the historical map-based setup.
func (st *ccState) initConvergecast(
	nw *Network, sched *treeSched, trees []*graph.Tree, delays []int,
	val func(t int, v graph.NodeID) Word,
) {
	for t, tr := range trees {
		base := t * st.n
		for _, v := range tr.Members {
			i := base + v
			st.stamp[i] = st.epoch
			st.pending[i] = 0
			st.acc[i] = val(t, v)
		}
		for _, v := range tr.Members {
			if p := tr.Parent[v]; p != -1 {
				st.pending[base+p]++
			}
		}
		// Leaves are immediately ready to send to their parents.
		for _, v := range tr.Members {
			i := base + v
			if st.pending[i] == 0 && v != tr.Root {
				sched.push(nw.dirEdge(tr.ParentEdge[v], v), pendingSend{
					tree: t, from: v, to: tr.Parent[v], w: st.acc[i],
					eligible: 1 + delays[t],
				})
			}
		}
	}
}

// deliverUp folds one delivered send into the receiver's accumulator and
// forwards the receiver's total when its subtree completes — the upward
// half of every convergecast.
func (st *ccState) deliverUp(nw *Network, sched *treeSched, trees []*graph.Tree, agg Agg, ps pendingSend) {
	tr := trees[ps.tree]
	i := ps.tree*st.n + ps.to
	st.acc[i] = agg(st.acc[i], ps.w)
	st.pending[i]--
	if st.pending[i] == 0 && ps.to != tr.Root {
		sched.push(nw.dirEdge(tr.ParentEdge[ps.to], ps.to), pendingSend{
			tree: ps.tree, from: ps.to, to: tr.Parent[ps.to], w: st.acc[i],
			eligible: sched.round + 1,
		})
	}
}

// ConvergecastMany aggregates, concurrently for every tree, the value
// val(t, v) over the tree's members using agg, delivering the result to each
// tree's root. Trees may share graph edges; every directed edge carries at
// most one word per round, so the measured cost is the true scheduled
// makespan (O(congestion + depth) with random delays, up to log factors).
// Returns the per-tree root aggregates. Aside from the returned slice, a
// steady-state call runs entirely on pooled flat state: cost
// Θ(Σ members + scheduled rounds), zero allocation after warmup.
func (nw *Network) ConvergecastMany(
	trees []*graph.Tree,
	val func(t int, v graph.NodeID) Word,
	agg Agg,
) ([]Word, error) {
	if len(trees) == 0 {
		return nil, ErrNoTrees
	}
	st := nw.ccStateFor(trees)
	sched := newTreeSched(nw)
	delays := nw.randomDelays(len(trees), nw.treeCongestion(trees))
	st.initConvergecast(nw, sched, trees, delays, val)
	deliver := func(ps pendingSend) { st.deliverUp(nw, sched, trees, agg, ps) }
	for sched.step(deliver) {
	}
	out := make([]Word, len(trees))
	for t, tr := range trees {
		i := t*st.n + tr.Root
		if st.stamp[i] != st.epoch || st.pending[i] != 0 {
			return nil, fmt.Errorf("congest: convergecast of tree %d did not complete", t)
		}
		out[t] = st.acc[i]
	}
	return out, nil
}

// bcSeen marks (tree, node) receipt with the current epoch; returns whether
// it was already marked.
func (nw *Network) bcSeen(t int, v graph.NodeID) bool {
	i := t*nw.g.N() + v
	if nw.scr.bcStamp[i] == nw.scr.epoch {
		return true
	}
	nw.scr.bcStamp[i] = nw.scr.epoch
	return false
}

// BroadcastMany propagates, concurrently for every tree, the root value
// rootVal[t] to all members. on(t, v, w) is invoked once per member with the
// received value (including the root itself at round 0). Cost accounting is
// identical to ConvergecastMany; like it, a steady-state call allocates
// nothing.
func (nw *Network) BroadcastMany(
	trees []*graph.Tree,
	rootVal []Word,
	on func(t int, v graph.NodeID, w Word),
) error {
	if len(trees) == 0 {
		return ErrNoTrees
	}
	if len(rootVal) != len(trees) {
		return fmt.Errorf("congest: %d root values for %d trees", len(rootVal), len(trees))
	}
	k := len(trees)
	nw.scr.nextEpoch(k * nw.g.N())
	sched := newTreeSched(nw)
	delays := nw.randomDelays(k, nw.treeCongestion(trees))
	ci := nw.buildChildIndex(trees)
	received := grownInts(nw.scr.recvCount, k)
	nw.scr.recvCount = received
	for i := range received {
		received[i] = 0
	}

	fanOut := func(t int, v graph.NodeID, w Word, eligible int) {
		for _, c := range ci.children(t, v) {
			sched.push(nw.dirEdge(trees[t].ParentEdge[c], v), pendingSend{
				tree: t, from: v, to: c, w: w, eligible: eligible,
			})
		}
	}
	for t, tr := range trees {
		nw.bcSeen(t, tr.Root)
		received[t]++
		on(t, tr.Root, rootVal[t])
		fanOut(t, tr.Root, rootVal[t], 1+delays[t])
	}
	deliver := func(ps pendingSend) {
		if nw.bcSeen(ps.tree, ps.to) {
			return
		}
		received[ps.tree]++
		on(ps.tree, ps.to, ps.w)
		fanOut(ps.tree, ps.to, ps.w, sched.round+1)
	}
	for sched.step(deliver) {
	}

	for t, tr := range trees {
		if received[t] != len(tr.Members) {
			return fmt.Errorf("congest: broadcast of tree %d reached %d of %d members",
				t, received[t], len(tr.Members))
		}
	}
	return nil
}

// AggregateMany runs a full part-wise aggregation round-trip on every tree:
// convergecast of val under agg to the root, then broadcast of the result
// back to all members. It returns the per-tree aggregates (which, after the
// call, every member of the corresponding tree knows). This realizes
// Proposition 6's "solve part-wise aggregation given trees of the shortcut
// subgraphs".
//
// Charges O(c·(maxdepth + log k)) rounds for congestion c over k trees
// (random-delay scheduling; see treeCongestion). Deterministic for a fixed
// network seed: scheduling draws come from the network RNG in canonical
// tree order. Scheduler queues and dense sweep state are pooled — steady
// state allocates only the returned []Word (pinned by
// TestAggregateManySteadyStateAllocs).
func (nw *Network) AggregateMany(
	trees []*graph.Tree,
	val func(t int, v graph.NodeID) Word,
	agg Agg,
) ([]Word, error) {
	up, err := nw.ConvergecastMany(trees, val, agg)
	if err != nil {
		return nil, err
	}
	if err := nw.BroadcastMany(trees, up, func(int, graph.NodeID, Word) {}); err != nil {
		return nil, err
	}
	return up, nil
}
