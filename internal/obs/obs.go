// Package obs is the serving-side metrics subsystem: counters, gauges and
// fixed-bucket histograms behind a registry with a deterministic snapshot
// API. It is the counterpart of internal/simtrace for the serving path —
// simtrace records where a simulated execution's rounds went; obs records
// what a running daemon did with real requests (counts, cache behaviour,
// latency) so distlapd can expose Prometheus text and JSON status pages.
//
// Determinism obligations: every metric is registered as either
// deterministic (its value is a pure function of the request sequence and
// the configured seeds — request counts, status classes, cache accounting,
// engine rounds/messages) or wall-clock (latency, uptime — anything a real
// clock feeds). Snapshots iterate families and series in sorted order, and
// the Prometheus exposition writes the deterministic section first, then a
// marker, then the wall-clock section — so two daemons replaying the same
// request sequence produce byte-identical deterministic sections, gateable
// exactly like traces and BENCH metrics. The package itself never reads
// the clock: callers observe durations into wall-clock histograms.
//
// Handles (Counter, Gauge, Histogram) are safe for concurrent use; the
// hot-path operations (Inc/Add/Set/Observe) never allocate.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind names a metric family's type in snapshots and expositions.
type Kind string

// Metric family kinds (the Prometheus exposition TYPE names).
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing count. The zero value is usable.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a programming error; the counter stays
// monotone only if callers respect that).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is usable.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: observations are counted into the
// first bucket whose upper bound is >= the value (Prometheus `le`
// semantics, inclusive), with an implicit +Inf overflow bucket. Bounds are
// fixed at construction, so bucket assignment is a pure function of the
// observed value — a histogram over a deterministic quantity (engine
// rounds) is itself deterministic.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds
	mu     sync.Mutex
	counts []int64 // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := bucketIndex(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// bucketIndex returns the index of the bucket v falls into: the first
// bound with v <= bound, or len(bounds) for the +Inf overflow bucket.
// Binary search keeps Observe O(log buckets).
func bucketIndex(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// LatencyBuckets are the default request-latency bounds in seconds:
// log-spaced from 100µs to 60s, chosen so sub-millisecond cache hits and
// multi-second worst-case solves land in distinct, stable buckets.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// PowerOfTwoBuckets returns the bounds 2^lo, 2^(lo+1), ..., 2^hi — the
// standard shape for deterministic count-like quantities (engine rounds
// per request), matching simtrace's power-of-two load histograms.
func PowerOfTwoBuckets(lo, hi int) []float64 {
	if lo > hi {
		panic(fmt.Sprintf("obs: PowerOfTwoBuckets(%d, %d): lo > hi", lo, hi))
	}
	out := make([]float64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, float64(int64(1)<<e))
	}
	return out
}

// family is one registered metric family: a name, kind and determinism
// class, plus its label-keyed series.
type family struct {
	name          string
	help          string
	kind          Kind
	deterministic bool
	labelKey      string    // "" for scalar families
	bounds        []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // label value -> *Counter | *Gauge | *Histogram
}

// handle returns the series handle for a label value, creating it on first
// use. The double map lookup stays off the hot path: callers hold vec
// handles (CounterVec.With) once and reuse the returned pointer.
func (f *family) handle(labelValue string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.series[labelValue]; ok {
		return h
	}
	var h any
	switch f.kind {
	case KindCounter:
		h = &Counter{}
	case KindGauge:
		h = &Gauge{}
	case KindHistogram:
		h = &Histogram{bounds: f.bounds, counts: make([]int64, len(f.bounds)+1)}
	}
	f.series[labelValue] = h
	return h
}

// Registry holds metric families and produces deterministic snapshots.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates a family, panicking on a duplicate name: metric names
// are program constants, so a collision is a bug worth failing loudly on.
func (r *Registry) register(name, help string, kind Kind, det bool, labelKey string, bounds []float64) *family {
	if len(bounds) > 0 {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: %s: bucket bounds not strictly increasing at %d", name, i))
			}
		}
	}
	f := &family{
		name: name, help: help, kind: kind, deterministic: det,
		labelKey: labelKey, bounds: bounds, series: make(map[string]any),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", name))
	}
	r.families[name] = f
	return f
}

// Counter registers a scalar counter family and returns its sole handle.
func (r *Registry) Counter(name, help string, det bool) *Counter {
	return r.register(name, help, KindCounter, det, "", nil).handle("").(*Counter)
}

// Gauge registers a scalar gauge family and returns its sole handle.
func (r *Registry) Gauge(name, help string, det bool) *Gauge {
	return r.register(name, help, KindGauge, det, "", nil).handle("").(*Gauge)
}

// Histogram registers a scalar histogram family with the given bucket
// bounds and returns its sole handle.
func (r *Registry) Histogram(name, help string, det bool, bounds []float64) *Histogram {
	return r.register(name, help, KindHistogram, det, "", bounds).handle("").(*Histogram)
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, det bool, labelKey string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, det, labelKey, nil)}
}

// With returns the counter for a label value, creating it on first use.
func (v *CounterVec) With(labelValue string) *Counter { return v.f.handle(labelValue).(*Counter) }

// Sum returns the summed count across all series — the right-hand side of
// "per-label counters sum to the total" identities.
func (v *CounterVec) Sum() int64 {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	var total int64
	//distlint:allow maporder summation is commutative; iteration order cannot reach any output
	for _, h := range v.f.series {
		total += h.(*Counter).Value()
	}
	return total
}

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, det bool, labelKey string, bounds []float64) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, det, labelKey, bounds)}
}

// With returns the histogram for a label value, creating it on first use.
func (v *HistogramVec) With(labelValue string) *Histogram { return v.f.handle(labelValue).(*Histogram) }

// SeriesSnapshot is one series' frozen state inside a Snapshot.
type SeriesSnapshot struct {
	LabelValue string // "" for scalar families

	// Counter / gauge value.
	Value int64

	// Histogram state: per-bucket (non-cumulative) counts, one per bound
	// plus the +Inf overflow; Count and Sum are the totals.
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Quantile estimates the q-quantile (0 < q < 1) of a histogram series by
// linear interpolation inside the selected bucket (the standard
// fixed-bucket estimator). The overflow bucket answers its lower bound —
// an honest "at least this much". A histogram with no observations
// answers 0.
func (s SeriesSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Counts {
		prev := seen
		seen += float64(c)
		if seen < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// FamilySnapshot is one family's frozen state: its metadata plus the
// series sorted by label value.
type FamilySnapshot struct {
	Name          string
	Help          string
	Kind          Kind
	Deterministic bool
	LabelKey      string
	Series        []SeriesSnapshot
}

// Snapshot is a consistent-enough point-in-time view of a registry:
// families sorted by name, series sorted by label value. (Individual
// handles are read without a global lock, so a snapshot taken while
// requests are in flight is per-metric atomic, not cross-metric atomic —
// scraped identities hold exactly on a quiescent daemon.)
type Snapshot struct {
	Families []FamilySnapshot
}

// Family returns the named family snapshot, or a zero value when absent.
func (s Snapshot) Family(name string) (FamilySnapshot, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnapshot{}, false
}

// Snapshot freezes the registry in deterministic order.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	out := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		fs := FamilySnapshot{
			Name: f.name, Help: f.help, Kind: f.kind,
			Deterministic: f.deterministic, LabelKey: f.labelKey,
		}
		f.mu.Lock()
		labels := make([]string, 0, len(f.series))
		for lv := range f.series {
			labels = append(labels, lv)
		}
		sort.Strings(labels)
		for _, lv := range labels {
			ss := SeriesSnapshot{LabelValue: lv}
			switch h := f.series[lv].(type) {
			case *Counter:
				ss.Value = h.Value()
			case *Gauge:
				ss.Value = h.Value()
			case *Histogram:
				h.mu.Lock()
				ss.Bounds = f.bounds
				ss.Counts = append([]int64(nil), h.counts...)
				ss.Count = h.count
				ss.Sum = h.sum
				h.mu.Unlock()
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.Unlock()
		out.Families = append(out.Families, fs)
	}
	return out
}
