package graph

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"

	"distlap/internal/seedderive"
)

// This file implements the low-diameter / low-stretch substrate the
// Laplacian-paradigm solvers precondition with: the Miller–Peng–Xu
// exponential-shift decomposition (MPX) and a hierarchical low-stretch
// spanning tree built from it (an AKPW-style construction). Stretch is the
// classical preconditioning quantity: tree solvers converge in rounds
// governed by the total stretch of the graph over the tree.

// MPXOptions configure the exponential-shift decomposition.
type MPXOptions struct {
	// Beta is the exponential rate: larger beta gives smaller clusters
	// (expected radius O(log n / beta)).
	Beta float64
	// Seed drives the shift draws.
	Seed int64
}

// MPXDecomposition partitions the nodes into connected clusters by the
// Miller–Peng–Xu process: each node v draws a shift δ_v ~ Exp(Beta) and
// joins the node u maximizing δ_u − dist(u, v) (implemented as a shifted
// multi-source Dijkstra over hop distances). Each cluster is connected,
// has radius O(log n / Beta) w.h.p., and every edge is cut with
// probability O(Beta).
func MPXDecomposition(g *Graph, opts MPXOptions) [][]NodeID {
	n := g.N()
	if n == 0 {
		return nil
	}
	beta := opts.Beta
	if beta <= 0 {
		beta = 0.5
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	shift := make([]float64, n)
	for v := range shift {
		shift[v] = rng.ExpFloat64() / beta
	}
	// Shifted Dijkstra: dist(v) = min_u (d(u,v) − δ_u); owner = argmin's u.
	const inf = math.MaxFloat64
	dist := make([]float64, n)
	owner := make([]int, n)
	for v := range dist {
		dist[v] = inf
		owner[v] = -1
	}
	pq := &floatPQ{}
	heap.Init(pq)
	for v := 0; v < n; v++ {
		dist[v] = -shift[v]
		owner[v] = v
		heap.Push(pq, pqItem{node: v, prio: dist[v]})
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.prio > dist[it.node] {
			continue
		}
		for _, h := range g.Neighbors(it.node) {
			nd := it.prio + 1 // hop metric
			if nd < dist[h.To] {
				dist[h.To] = nd
				owner[h.To] = owner[it.node]
				heap.Push(pq, pqItem{node: h.To, prio: nd})
			}
		}
	}
	byOwner := make(map[int][]NodeID)
	for v := 0; v < n; v++ {
		byOwner[owner[v]] = append(byOwner[owner[v]], v)
	}
	var clusters [][]NodeID
	for v := 0; v < n; v++ {
		if c, ok := byOwner[v]; ok {
			clusters = append(clusters, c)
		}
	}
	return clusters
}

type pqItem struct {
	node NodeID
	prio float64
}

type floatPQ []pqItem

func (p floatPQ) Len() int            { return len(p) }
func (p floatPQ) Less(a, b int) bool  { return p[a].prio < p[b].prio }
func (p floatPQ) Swap(a, b int)       { p[a], p[b] = p[b], p[a] }
func (p *floatPQ) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *floatPQ) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// LowStretchTree builds a spanning tree by hierarchical MPX contraction
// (AKPW-style): decompose, keep a BFS tree inside every cluster, contract
// clusters, repeat on the quotient graph with a smaller beta, and map the
// chosen inter-cluster edges back. The result is a spanning tree whose
// average stretch is far below a BFS tree's on path-rich topologies; it is
// measured (never assumed) by AverageStretch.
func LowStretchTree(g *Graph, seed int64) *Tree {
	n := g.N()
	if n == 0 {
		return &Tree{Parent: []NodeID{}, ParentEdge: []EdgeID{}, Depth: []int{}}
	}
	chosen := make(map[EdgeID]bool)
	// current maps quotient-node -> original representative; membership via
	// union-find over original nodes.
	uf := NewUnionFind(n)
	beta := 0.8
	for round := 0; uf.Count() > 1 && round < 40; round++ {
		// Build the quotient multigraph on current components.
		repOf := make(map[int]int) // root -> dense quotient id
		var roots []int
		for v := 0; v < n; v++ {
			r := uf.Find(v)
			if _, ok := repOf[r]; !ok {
				repOf[r] = len(roots)
				roots = append(roots, r)
			}
		}
		q := New(len(roots))
		// Keep one lightest original edge per quotient pair.
		bestEdge := make(map[[2]int]EdgeID)
		for id, e := range g.Edges() {
			ru, rv := repOf[uf.Find(e.U)], repOf[uf.Find(e.V)]
			if ru == rv {
				continue
			}
			key := [2]int{min(ru, rv), max(ru, rv)}
			if prev, ok := bestEdge[key]; !ok || e.Weight > g.Edge(prev).Weight {
				// Prefer heavier (lower-resistance) edges for the tree.
				bestEdge[key] = id
			}
		}
		if len(bestEdge) == 0 {
			break // disconnected graph
		}
		// Quotient edge IDs depend on insertion order, and BFS tie-breaks
		// depend on edge IDs — add edges in sorted key order so the whole
		// construction replays identically.
		qkeys := make([][2]int, 0, len(bestEdge))
		for key := range bestEdge {
			qkeys = append(qkeys, key)
		}
		sort.Slice(qkeys, func(i, j int) bool {
			if qkeys[i][0] != qkeys[j][0] {
				return qkeys[i][0] < qkeys[j][0]
			}
			return qkeys[i][1] < qkeys[j][1]
		})
		for _, key := range qkeys {
			q.MustAddEdge(key[0], key[1], g.Edge(bestEdge[key]).Weight)
		}
		// MPX-decompose the quotient; join each cluster with a BFS tree of
		// quotient edges, realized by their original representatives.
		clusters := MPXDecomposition(q, MPXOptions{Beta: beta, Seed: seedderive.Derive(seed, "lowstretch-mpx", int64(round))})
		merged := false
		for _, cl := range clusters {
			if len(cl) < 2 {
				continue
			}
			tr := BFSTreeOfSubgraph(q, cl, nil, cl[0])
			for _, v := range tr.Members {
				if tr.Parent[v] == -1 {
					continue
				}
				a, b := v, tr.Parent[v]
				key := [2]int{min(a, b), max(a, b)}
				orig := bestEdge[key]
				e := g.Edge(orig)
				if uf.Union(e.U, e.V) {
					chosen[orig] = true
					merged = true
				}
			}
		}
		if !merged {
			// Every cluster was a singleton: halve beta so clusters grow.
			beta /= 2
			if beta < 1e-6 {
				break
			}
		} else {
			beta *= 0.75
		}
	}
	edges := make([]EdgeID, 0, len(chosen))
	for id := range chosen {
		edges = append(edges, id)
	}
	sort.Ints(edges)
	return TreeFromEdges(g, edges, ApproxCenter(g))
}

// AverageStretch returns the mean, over all graph edges, of the weighted
// stretch of the edge through the tree:
//
//	stretch(e) = w(e) · Σ_{f ∈ treePath(u,v)} 1/w(f)
//
// (resistance of the tree detour over the edge's own resistance — the
// quantity that controls tree-preconditioned iteration counts).
func AverageStretch(g *Graph, t *Tree) float64 {
	if g.M() == 0 {
		return 0
	}
	total := 0.0
	for _, e := range g.Edges() {
		path := PathInTree(t, e.U, e.V)
		if path == nil {
			return math.Inf(1)
		}
		r := 0.0
		for i := 0; i+1 < len(path); i++ {
			child := path[i]
			if t.Parent[child] != path[i+1] {
				child = path[i+1]
			}
			r += 1 / float64(g.Edge(t.ParentEdge[child]).Weight)
		}
		total += float64(e.Weight) * r
	}
	return total / float64(g.M())
}
