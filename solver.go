package distlap

import (
	"io"

	"distlap/internal/apps"
	"distlap/internal/congest"
	"distlap/internal/core"
	"distlap/internal/partwise"
	"distlap/internal/simtrace"
)

// Collector receives the deterministic instrumentation events of a run:
// phase spans, per-engine round and message charges, and named counters.
// Collectors are passive — they never alter scheduling, randomness, or the
// measured metrics — so the same seed produces bit-identical results
// whether or not a trace is attached. See NewInMemoryTrace, NewJSONLTrace
// and NopTrace for the provided sinks.
type Collector = simtrace.Collector

// PhaseStat is one phase's exclusive cost in a recorded trace: rounds and
// messages charged while the phase path was the innermost open span.
type PhaseStat = simtrace.PhaseStat

// Metrics is the structured communication cost of a run: per-engine totals
// plus the per-phase breakdown when a trace was attached.
type Metrics = core.Metrics

// EngineMetrics is one engine's totals (rounds, messages, max edge load).
type EngineMetrics = core.EngineMetrics

// NewInMemoryTrace returns a queryable in-memory trace collector. Attach it
// with WithTrace, run, then inspect Phases, TopEdges, Counters, etc.
func NewInMemoryTrace() *simtrace.InMemory { return simtrace.NewInMemory() }

// NewJSONLTrace returns a trace collector that streams events to w as JSON
// lines with a fixed key order; same-seed runs produce byte-identical
// streams. Call Flush after the run to emit the summary records. The output
// is consumable by cmd/simtrace.
func NewJSONLTrace(w io.Writer) *simtrace.JSONL { return simtrace.NewJSONL(w) }

// NopTrace returns the no-op collector (the default when no trace is set).
func NopTrace() Collector { return simtrace.Nop{} }

// Solver is the configured entry point to the distributed Laplacian solver
// and its applications. Construct one with NewSolver and functional
// options; the zero configuration (Supported-CONGEST universal mode,
// tolerance 1e-8, seed 1, no trace) matches the package-level convenience
// functions.
//
//	tr := distlap.NewInMemoryTrace()
//	s := distlap.NewSolver(
//		distlap.WithMode(distlap.ModeUniversal),
//		distlap.WithEps(1e-8),
//		distlap.WithSeed(7),
//		distlap.WithTrace(tr),
//	)
//	res, err := s.Solve(g, b)
//
// A Solver is a value object: methods do not mutate it, and the same Solver
// may be reused across graphs.
//
// Concurrency contract. The one-shot Solver methods (Solve, Flow, ...) each
// run a private sequential simulation; concurrent calls on one Solver are
// safe only when no trace collector is attached, because a collector is a
// single-writer object shared by every call that Solver makes. For
// concurrent serving, Prepare an Instance instead: a prepared Instance is
// immutable and safe for concurrent use — requests share only read-only
// state, and each request attaches its own collector via WithRequestTrace.
//
// Amortization. Every one-shot method rebuilds the full per-graph setup
// (aggregation trees, cluster covers, preconditioner state) on each call.
// When the same graph is solved more than once — multiple right-hand sides,
// repeated flow queries, a serving daemon — call Prepare once and issue
// requests against the returned Instance; setup is then charged exactly
// once, under Prepare.
type Solver struct {
	mode  Mode
	eps   float64
	seed  int64
	trace simtrace.Collector
	cheb  bool
	lo    float64
	hi    float64
}

// Option configures a Solver.
type Option func(*Solver)

// WithMode selects the communication model (default ModeUniversal).
func WithMode(m Mode) Option { return func(s *Solver) { s.mode = m } }

// WithEps sets the relative-residual tolerance of solves (default 1e-8).
func WithEps(eps float64) Option { return func(s *Solver) { s.eps = eps } }

// WithSeed sets the deterministic seed (default 1). Every derived source of
// randomness — network scheduling, preconditioner clustering, iteration
// start vectors — is a pure function of this seed.
func WithSeed(seed int64) Option { return func(s *Solver) { s.seed = seed } }

// WithTrace attaches a trace collector; every method routes its
// instrumentation (phase spans, round/message charges, counters) through
// it. nil restores the default no-op collector.
func WithTrace(c Collector) Option { return func(s *Solver) { s.trace = c } }

// WithChebyshev switches Solve to distributed Chebyshev iteration — the
// alternative iteration with no per-iteration global reductions, which wins
// on high-diameter topologies. lo and hi bracket the spectrum of the
// normalized system; pass 0, 0 for safe automatic bounds.
func WithChebyshev(lo, hi float64) Option {
	return func(s *Solver) { s.cheb = true; s.lo, s.hi = lo, hi }
}

// NewSolver returns a Solver with the defaults (ModeUniversal, eps 1e-8,
// seed 1, no trace) overridden by the given options.
func NewSolver(opts ...Option) *Solver {
	s := &Solver{mode: ModeUniversal, eps: 1e-8, seed: 1}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Solve solves the Laplacian system L_g x = b to the configured tolerance
// and reports the measured communication cost. b must sum to
// (approximately) zero; the solution is mean-centered. With WithChebyshev
// the system is solved by Chebyshev iteration instead of preconditioned CG.
func (sv *Solver) Solve(g *Graph, b []float64) (*Result, error) {
	if sv.cheb {
		c, err := core.NewCommWith(g, core.CommConfig{Mode: sv.mode, Seed: sv.seed, Trace: sv.trace})
		if err != nil {
			return nil, err
		}
		return core.SolveChebyshev(c, b, core.ChebyshevOptions{Tol: sv.eps, Lo: sv.lo, Hi: sv.hi})
	}
	res, _, err := core.SolveOnGraphWith(g, b, core.SolveConfig{
		Mode: sv.mode, Tol: sv.eps, Seed: sv.seed, Trace: sv.trace,
	})
	return res, err
}

// SolveSDD solves the symmetric diagonally-dominant system
// (L_g + diag(extra)) x = b via the grounded-Laplacian reduction. extra
// must be nonnegative integers with at least one positive entry; b may have
// any sum.
func (sv *Solver) SolveSDD(g *Graph, extra []int64, b []float64) (*Result, error) {
	return core.SolveSDDWith(g, extra, b, core.SolveConfig{
		Mode: sv.mode, Tol: sv.eps, Seed: sv.seed, Trace: sv.trace,
	})
}

// Flow computes the unit s-t electrical flow on g (potentials, currents,
// effective resistance) through one distributed solve.
func (sv *Solver) Flow(g *Graph, s, t int) (*ElectricalFlow, error) {
	el := &apps.Electrical{G: g, Mode: sv.mode, Tol: sv.eps, Seed: sv.seed, Trace: sv.trace}
	return el.Flow(s, t)
}

// EffectiveResistance returns the s-t effective resistance of g.
func (sv *Solver) EffectiveResistance(g *Graph, s, t int) (float64, error) {
	el := &apps.Electrical{G: g, Mode: sv.mode, Tol: sv.eps, Seed: sv.seed, Trace: sv.trace}
	return el.EffectiveResistance(s, t)
}

// MaxFlow approximates the s-t maximum flow via electrical-flow
// multiplicative weights: every MWU iteration is one distributed Laplacian
// solve. eps is the MWU approximation parameter in (0, 0.5) — distinct from
// the solver tolerance, which remains the Solver's configured eps.
func (sv *Solver) MaxFlow(g *Graph, s, t int, eps float64) (*apps.ApproxFlowResult, error) {
	a := &apps.ApproxMaxFlow{Mode: sv.mode, Epsilon: eps, Seed: sv.seed, Trace: sv.trace}
	return a.Run(g, s, t)
}

// SpectralPartition approximates the Fiedler vector by inverse power
// iteration (one distributed solve per step) and returns the sign-cut
// bipartition with its measured rounds.
func (sv *Solver) SpectralPartition(g *Graph) (*apps.SpectralResult, error) {
	sp := &apps.SpectralPartitioner{Mode: sv.mode, Tol: sv.eps, Seed: sv.seed, Trace: sv.trace}
	return sp.Partition(g)
}

// MinimumSpanningTree computes an MST distributedly with Borůvka phases
// over part-wise aggregation in Supported-CONGEST.
func (sv *Solver) MinimumSpanningTree(g *Graph) (*MSTResult, error) {
	nw := congest.NewNetwork(g, congest.Options{
		Supported: true, Seed: sv.seed, Trace: sv.trace,
	})
	return apps.MST(nw, partwise.NewShortcutSolver())
}

// AggregateResult reports a part-wise aggregation: the per-part aggregates
// and the structured communication cost of the run.
type AggregateResult struct {
	Values  []int64
	Metrics Metrics
}

// AggregateParts solves a p-congested part-wise aggregation instance on g
// in Supported-CONGEST via the paper's layered-graph reduction.
func (sv *Solver) AggregateParts(g *Graph, inst *PartwiseInstance, spec AggSpec) (*AggregateResult, error) {
	tr := simtrace.OrNop(sv.trace)
	nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: sv.seed, Trace: tr})
	out, err := partwise.NewLayeredSolver(sv.seed).Solve(nw, inst, spec)
	if err != nil {
		return nil, err
	}
	// congest.Word is an alias of int64, so the solver's output slice is
	// already the []int64 we return — no copy.
	return &AggregateResult{
		Values: out,
		Metrics: Metrics{
			Congest: core.CongestEngineMetrics(nw),
			Phases:  core.PhasesOf(nw.Trace()),
		},
	}, nil
}
