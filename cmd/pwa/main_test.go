package main

import "testing"

func TestRunDefault(t *testing.T) {
	if err := run([]string{"-family", "grid", "-n", "36", "-p", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOneCongestedIncludesShortcutSolver(t *testing.T) {
	if err := run([]string{"-family", "path", "-n", "20", "-p", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-family", "nope"}); err == nil {
		t.Fatal("want unknown-family error")
	}
	if err := run([]string{"-zzz"}); err == nil {
		t.Fatal("want flag error")
	}
}
