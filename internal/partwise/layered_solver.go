package partwise

import (
	"fmt"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/layered"
	"distlap/internal/seedderive"
	"distlap/internal/shortcut"
	"distlap/internal/simtrace"
)

// LayeredSolver solves p-congested part-wise aggregation instances by the
// paper's §3.1 pipeline:
//
//  1. each part's spanning tree is heavy-path decomposed (Lemma 15 /
//     [29]): O(log n) levels of simple paths, node congestion ≤ p per
//     level;
//  2. each level's batch of paths — a path-restricted p-congested
//     instance — is reduced to a 1-congested instance on a layered graph
//     Ĝ_{O(p)} by the Lemma 18 embedding (edge coloring per Lemma 17);
//  3. the 1-congested instance is solved over a low-congestion shortcut of
//     the layered graph (Proposition 6 + Theorem 22), and the measured
//     layered rounds are charged on the base network with the ×O(p)
//     simulation overhead of Lemma 16;
//  4. child-path aggregates flow to their attachment nodes between upward
//     levels, and part aggregates flow back down symmetrically, so every
//     member of every part ends up knowing its part's aggregate.
type LayeredSolver struct {
	Builder shortcut.Builder
	Seed    int64
}

var _ Solver = LayeredSolver{}

// NewLayeredSolver returns a LayeredSolver with the default portfolio.
func NewLayeredSolver(seed int64) LayeredSolver {
	return LayeredSolver{Builder: shortcut.DefaultPortfolio(), Seed: seed}
}

// Name implements Solver.
func (s LayeredSolver) Name() string { return "layered" }

// Solve implements Solver.
func (s LayeredSolver) Solve(nw *congest.Network, inst *Instance, spec AggSpec) ([]congest.Word, error) {
	g := nw.Graph()
	if err := inst.Validate(g); err != nil {
		return nil, err
	}
	tr := nw.Trace()
	tr.Begin("pwa-layered")
	defer tr.End("pwa-layered")
	lut := inst.valueLookup()

	// 1. Decompose all parts into heavy paths grouped by level.
	var all []decomposedPath
	for i, p := range inst.Parts {
		dps, err := decomposePart(g, p, i)
		if err != nil {
			return nil, err
		}
		all = append(all, dps...)
	}
	maxLevel := maxPathLevel(all)
	byLevel := make([][]decomposedPath, maxLevel+1)
	for _, dp := range all {
		byLevel[dp.level] = append(byLevel[dp.level], dp)
	}

	// pending[(part,node)] accumulates child-path aggregates delivered to
	// attachment nodes.
	type key struct {
		part int
		node graph.NodeID
	}
	pending := make(map[key]congest.Word)
	valueAt := func(part int, v graph.NodeID) congest.Word {
		w := lut[part][v]
		if extra, ok := pending[key{part, v}]; ok {
			w = spec.Fn(w, extra)
		}
		return w
	}

	// 2–3. Upward sweep: deepest level first.
	partAgg := make([]congest.Word, len(inst.Parts))
	tr.Begin("levels-up")
	for lvl := maxLevel; lvl >= 0; lvl-- {
		batch := byLevel[lvl]
		aggs, err := s.solvePathBatch(nw, batch, valueAt, spec,
			seedderive.Derive(s.Seed, "level-up", int64(lvl)))
		if err != nil {
			tr.End("levels-up")
			return nil, fmt.Errorf("partwise: level %d up: %w", lvl, err)
		}
		// Telemetry: one sample per level — how many paths this level's
		// batch carried and the base-network rounds consumed so far.
		tr.Gauge("pwa.level-up.paths", lvl, float64(len(batch)), nw.Rounds())
		if lvl == 0 {
			for b, dp := range batch {
				partAgg[dp.part] = aggs[b]
			}
			continue
		}
		// 4. Deliver each path's aggregate to its attachment node.
		pkts := make([]congest.Packet, len(batch))
		for b, dp := range batch {
			pkts[b] = congest.Packet{
				Start:   dp.nodes[0],
				Edges:   []graph.EdgeID{dp.attachEdge},
				Payload: aggs[b],
			}
		}
		if _, err := nw.RouteMany(pkts); err != nil {
			tr.End("levels-up")
			return nil, err
		}
		for b, dp := range batch {
			k := key{dp.part, dp.attach}
			if prev, ok := pending[k]; ok {
				pending[k] = spec.Fn(prev, aggs[b])
			} else {
				pending[k] = aggs[b]
			}
		}
	}
	tr.End("levels-up")

	// Downward sweep: attachment nodes forward the final part aggregate to
	// deeper paths, which broadcast it internally via the same machinery
	// (the aggregate of {A, identity, ...} is A).
	tr.Begin("levels-down")
	defer tr.End("levels-down")
	for lvl := 0; lvl < maxLevel; lvl++ {
		batch := byLevel[lvl+1]
		if len(batch) == 0 {
			continue
		}
		pkts := make([]congest.Packet, len(batch))
		for b, dp := range batch {
			pkts[b] = congest.Packet{
				Start:   dp.attach,
				Edges:   []graph.EdgeID{dp.attachEdge},
				Payload: partAgg[dp.part],
			}
		}
		if _, err := nw.RouteMany(pkts); err != nil {
			return nil, err
		}
		// Only each path's top carries the aggregate; everyone else
		// contributes the identity, so the path "aggregate" is a broadcast.
		tops := make(map[key]congest.Word, len(batch))
		for _, dp := range batch {
			tops[key{dp.part, dp.nodes[0]}] = partAgg[dp.part]
		}
		if _, err := s.solvePathBatch(nw, batch,
			func(part int, v graph.NodeID) congest.Word {
				if w, ok := tops[key{part, v}]; ok {
					return w
				}
				return spec.Identity
			}, spec, seedderive.Derive(s.Seed, "level-down", int64(lvl+1))); err != nil {
			return nil, fmt.Errorf("partwise: level %d down: %w", lvl+1, err)
		}
		tr.Gauge("pwa.level-down.paths", lvl+1, float64(len(batch)), nw.Rounds())
	}
	return partAgg, nil
}

// solvePathBatch solves one path-restricted congested batch: singleton
// paths aggregate locally; multi-node paths go through the Lemma 18
// embedding onto Ĝ_{O(p)}, are solved there as a 1-congested instance via
// Proposition 6, and the layered cost is charged on the base network with
// the Lemma 16 overhead. Returns per-path aggregates aligned with batch.
func (s LayeredSolver) solvePathBatch(
	nw *congest.Network,
	batch []decomposedPath,
	valueAt func(part int, v graph.NodeID) congest.Word,
	spec AggSpec,
	seed int64,
) ([]congest.Word, error) {
	out := make([]congest.Word, len(batch))
	var paths []layered.Path
	var multiIdx []int
	for b, dp := range batch {
		if len(dp.nodes) == 1 {
			out[b] = valueAt(dp.part, dp.nodes[0])
			continue
		}
		paths = append(paths, layered.Path{Nodes: dp.nodes, Edges: dp.edges})
		multiIdx = append(multiIdx, b)
	}
	if len(paths) == 0 {
		return out, nil
	}
	emb, err := layered.EmbedPaths(nw.Graph(), paths, seed)
	if err != nil {
		return nil, err
	}
	emb.Report(nw.Trace())
	// Canonical lookup: layered copy -> (batch index, value).
	vals := make(map[graph.NodeID]congest.Word)
	for j, b := range multiIdx {
		dp := batch[b]
		for i, v := range dp.nodes {
			vals[emb.Canonical[j][i]] = valueAt(dp.part, v)
		}
	}
	// The sub-network shares the base trace but records under the
	// "layered" engine label: its rounds are internal to the Lemma 16
	// simulation, whose cost is charged on the base network (engine
	// "congest") below — two labels keep the accounting disjoint.
	layNW := congest.NewNetwork(emb.Layered.G, congest.Options{
		Supported:   nw.Supported(),
		Seed:        seedderive.Derive(seed, "layered-network", 0),
		Trace:       nw.Trace(),
		TraceEngine: simtrace.EngineLayered,
	})
	aggs, _, err := SolveOneCongested(layNW, emb.Parts,
		func(_ int, x graph.NodeID) congest.Word {
			if w, ok := vals[x]; ok {
				return w
			}
			return spec.Identity
		}, spec, s.Builder)
	if err != nil {
		return nil, err
	}
	// Lemma 16 + Lemma 17 accounting on the base network.
	nw.ChargeRounds(emb.ColoringRounds + emb.Layered.SimulatedRounds(layNW.Rounds()))
	for j, b := range multiIdx {
		out[b] = aggs[j]
	}
	return out, nil
}
