package distlap_test

// Tests for the prepared-Instance API: the amortization contract (setup
// phases appear exactly once, under Prepare — never in a request trace),
// exact parity with the one-shot path when the request seed is pinned,
// request-level determinism of the derived seeds, concurrent solves on one
// shared instance (run under -race in CI), and context cancellation.

import (
	"context"
	"strings"
	"sync"
	"testing"

	"distlap"
	"distlap/internal/linalg"
)

// setupPhases are the phase names only preparation may charge or trace.
var setupPhases = []string{"prepare", "comm-setup", "precond-setup", "spectral-bounds"}

func countSetupPhases(t *testing.T, tr *distlap.Metrics) int {
	t.Helper()
	n := 0
	for _, ph := range tr.Phases {
		for _, s := range setupPhases {
			if strings.Contains(ph.Path, s) {
				n += ph.Count
			}
		}
	}
	return n
}

func phasesContain(phases []distlap.PhaseStat, name string) bool {
	for _, ph := range phases {
		if strings.Contains(ph.Path, name) {
			return true
		}
	}
	return false
}

// TestInstanceSolveTraceHasNoSetup is the amortization acceptance check:
// Prepare's trace contains the setup spans, and a request's trace contains
// none of them — setup ran exactly once, under Prepare.
func TestInstanceSolveTraceHasNoSetup(t *testing.T) {
	g, b := parityGraph()
	prep := distlap.NewInMemoryTrace()
	inst, err := distlap.NewSolver(distlap.WithSeed(3), distlap.WithTrace(prep)).Prepare(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !phasesContain(prep.Phases(), "prepare") || !phasesContain(prep.Phases(), "precond-setup") {
		t.Fatalf("prepare trace missing setup spans: %+v", prep.Phases())
	}

	req := distlap.NewInMemoryTrace()
	res, err := inst.Solve(context.Background(), b, distlap.WithRequestTrace(req))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Phases == nil {
		t.Fatal("request trace produced no phase table")
	}
	if n := countSetupPhases(t, &res.Metrics); n != 0 {
		t.Fatalf("request trace charged %d setup phases: %+v", n, res.Metrics.Phases)
	}
	if !phasesContain(res.Metrics.Phases, "solve") {
		t.Fatalf("request trace missing the solve span: %+v", res.Metrics.Phases)
	}
}

// TestInstanceSolveBatchChargesSetupZeroTimes verifies over the simtrace
// phase table that a k-RHS batch charges setup zero times: one shared
// collector across the whole batch records k solve spans and no setup span.
func TestInstanceSolveBatchChargesSetupZeroTimes(t *testing.T) {
	g, b := parityGraph()
	inst, err := distlap.NewSolver(distlap.WithSeed(3)).Prepare(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	bs := [][]float64{b, linalg.RandomBVector(g.N(), 11), linalg.RandomBVector(g.N(), 12)}
	tr := distlap.NewInMemoryTrace()
	// The batch runs sequentially, so one collector across all RHS is safe
	// and lets the phase table count spans over the whole batch.
	if _, err := inst.SolveBatch(context.Background(), bs, distlap.WithRequestTrace(tr)); err != nil {
		t.Fatal(err)
	}
	solves, setups := 0, 0
	for _, ph := range tr.Phases() {
		if ph.Path == "solve" {
			solves += ph.Count
		}
		for _, s := range setupPhases {
			if strings.Contains(ph.Path, s) {
				setups += ph.Count
			}
		}
	}
	if solves != len(bs) {
		t.Errorf("batch of %d recorded %d solve spans", len(bs), solves)
	}
	if setups != 0 {
		t.Errorf("batch charged setup %d times, want 0: %+v", setups, tr.Phases())
	}
}

// TestInstanceSolveParityWithOneShot pins the prepared path against the
// one-shot Solver bit-for-bit in every mode: with the request seed pinned
// to the Solver seed, the fresh request engine replays the exact one-shot
// execution (setup consumes no scheduling randomness). In ModeCongest the
// one-shot run additionally pays the charged BFS inside Solve, which the
// instance paid once under Prepare — the amortization itself — so there
// the round ledger must balance: request rounds + setup rounds = one-shot
// rounds.
func TestInstanceSolveParityWithOneShot(t *testing.T) {
	g, b := parityGraph()
	for _, mode := range modes() {
		sv := distlap.NewSolver(distlap.WithMode(mode), distlap.WithSeed(7))
		want, err := sv.Solve(g, b)
		if err != nil {
			t.Fatalf("%s: one-shot: %v", mode, err)
		}
		inst, err := sv.Prepare(context.Background(), g)
		if err != nil {
			t.Fatalf("%s: prepare: %v", mode, err)
		}
		got, err := inst.Solve(context.Background(), b, distlap.WithRequestSeed(7))
		if err != nil {
			t.Fatalf("%s: instance solve: %v", mode, err)
		}
		setup := inst.SetupMetrics()
		if mode == distlap.ModeCongest {
			if setup.TotalRounds() == 0 {
				t.Errorf("congest: expected Prepare to pay the charged BFS, setup rounds = 0")
			}
			if got.Rounds+setup.TotalRounds() != want.Rounds {
				t.Errorf("congest: round ledger off: %d request + %d setup != %d one-shot",
					got.Rounds, setup.TotalRounds(), want.Rounds)
			}
			// Everything but the setup-round attribution must still match.
			got = cloneResultWithRounds(got, want.Rounds)
		} else if setup.TotalRounds() != 0 {
			t.Errorf("%s: supported-mode setup charged %d rounds, want 0", mode, setup.TotalRounds())
		}
		sameResult(t, string(mode)+"/instance-vs-oneshot", got, want)
	}
}

// cloneResultWithRounds copies r with the round count replaced, so parity
// helpers can compare everything else bit-for-bit.
func cloneResultWithRounds(r *distlap.Result, rounds int) *distlap.Result {
	c := *r
	c.Rounds = rounds
	return &c
}

// TestInstanceBatchMatchesSolve pins the derived-seed contract:
// SolveBatch(bs)[0] uses the same derived request seed as Solve(bs[0]), so
// the two are bit-identical; a second identical RHS at index 1 derives a
// different stream (same solution up to scheduling, but an independent
// request).
func TestInstanceBatchMatchesSolve(t *testing.T) {
	g, b := parityGraph()
	inst, err := distlap.NewSolver(distlap.WithSeed(5)).Prepare(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	single, err := inst.Solve(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := inst.SolveBatch(context.Background(), [][]float64{b, b})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "batch[0]-vs-solve", batch[0], single)
}

// TestInstanceConcurrentSolves runs parallel solves against one shared
// prepared instance, each with its own trace collector — the concurrency
// contract CI verifies under -race. Every goroutine must reproduce the
// sequential reference bit-for-bit.
func TestInstanceConcurrentSolves(t *testing.T) {
	g, b := parityGraph()
	inst, err := distlap.NewSolver(distlap.WithSeed(2)).Prepare(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := inst.Solve(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]*distlap.Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := distlap.NewInMemoryTrace()
			results[w], errs[w] = inst.Solve(context.Background(), b, distlap.WithRequestTrace(tr))
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		sameResult(t, "concurrent-vs-sequential", results[w], want)
	}
}

// TestInstanceCancelledContext verifies both halves of the lifecycle refuse
// a dead context with the context's own error, not a panic.
func TestInstanceCancelledContext(t *testing.T) {
	g, b := parityGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sv := distlap.NewSolver()
	if _, err := sv.Prepare(ctx, g); err != context.Canceled {
		t.Errorf("Prepare on cancelled ctx: got %v, want context.Canceled", err)
	}
	inst, err := sv.Prepare(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Solve(ctx, b); err != context.Canceled {
		t.Errorf("Solve on cancelled ctx: got %v, want context.Canceled", err)
	}
	if _, err := inst.MST(ctx); err != context.Canceled {
		t.Errorf("MST on cancelled ctx: got %v, want context.Canceled", err)
	}
}

// TestInstanceFlowAndMSTParity pins the instance application methods
// against their one-shot counterparts with the request seed pinned.
func TestInstanceFlowAndMSTParity(t *testing.T) {
	g, _ := parityGraph()
	sv := distlap.NewSolver(distlap.WithSeed(9))
	inst, err := sv.Prepare(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	wantFlow, err := sv.Flow(g, 0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	gotFlow, err := inst.Flow(context.Background(), 0, g.N()-1, distlap.WithRequestSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if gotFlow.Resistance != wantFlow.Resistance || gotFlow.Iterations != wantFlow.Iterations {
		t.Errorf("flow diverges: (%v,%d) vs (%v,%d)",
			gotFlow.Resistance, gotFlow.Iterations, wantFlow.Resistance, wantFlow.Iterations)
	}
	wantMST, err := sv.MinimumSpanningTree(g)
	if err != nil {
		t.Fatal(err)
	}
	gotMST, err := inst.MST(context.Background(), distlap.WithRequestSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if gotMST.Weight != wantMST.Weight || gotMST.Rounds != wantMST.Rounds {
		t.Errorf("mst diverges: (%d,%d) vs (%d,%d)",
			gotMST.Weight, gotMST.Rounds, wantMST.Weight, wantMST.Rounds)
	}
}

// TestInstanceChebyshev covers the Chebyshev instance path: spectral bounds
// cached at Prepare, per-request iteration with no setup spans.
func TestInstanceChebyshev(t *testing.T) {
	g, b := parityGraph()
	sv := distlap.NewSolver(distlap.WithSeed(4), distlap.WithChebyshev(0, 0), distlap.WithEps(1e-6))
	want, err := sv.Solve(g, b)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sv.Prepare(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	tr := distlap.NewInMemoryTrace()
	got, err := inst.Solve(context.Background(), b, distlap.WithRequestSeed(4), distlap.WithRequestTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "chebyshev-instance", got, want)
	if phasesContain(tr.Phases(), "spectral-bounds") {
		t.Errorf("request recomputed spectral bounds: %+v", tr.Phases())
	}
}
