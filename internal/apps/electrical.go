package apps

import (
	"fmt"

	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/simtrace"
)

// Electrical computes electrical quantities on a weighted graph through the
// distributed Laplacian solver (the flagship application of the Laplacian
// paradigm, paper §1).
type Electrical struct {
	G    *graph.Graph
	Mode core.Mode
	Tol  float64
	Seed int64
	// Trace receives the underlying solve's instrumentation (nil = Nop).
	Trace simtrace.Collector
}

// FlowResult reports an s-t electrical flow computation.
type FlowResult struct {
	Potentials  []float64 // node potentials x with L x = χ_s − χ_t
	EdgeCurrent []float64 // per edge: w_e (x_u − x_v), oriented U -> V
	Resistance  float64   // effective resistance x_s − x_t
	Rounds      int
	Iterations  int
	// Metrics is the structured communication cost of the underlying
	// solve; prefer it over the bare Rounds count.
	Metrics core.Metrics
}

// CheckSTPair validates an s-t terminal pair against g.
func CheckSTPair(g *graph.Graph, s, t graph.NodeID) error {
	n := g.N()
	if s < 0 || s >= n || t < 0 || t >= n {
		return fmt.Errorf("apps: %w: s=%d t=%d", graph.ErrNodeRange, s, t)
	}
	if s == t {
		return fmt.Errorf("apps: s and t coincide (%d)", s)
	}
	return nil
}

// FlowFromPotentials derives the full electrical-flow result from a solved
// potential vector for the demand χ_s − χ_t: per-edge Ohm's-law currents,
// the effective resistance, and the solve's measured cost. It is the
// shared post-processing of the one-shot path and the prepared-Instance
// path (which amortizes the solve's setup across requests).
func FlowFromPotentials(g *graph.Graph, s, t graph.NodeID, res *core.Result) *FlowResult {
	out := &FlowResult{
		Potentials: res.X,
		Resistance: res.X[s] - res.X[t],
		Rounds:     res.Rounds,
		Iterations: res.Iterations,
		Metrics:    res.Metrics,
	}
	out.EdgeCurrent = make([]float64, g.M())
	for id, e := range g.Edges() {
		out.EdgeCurrent[id] = float64(e.Weight) * (res.X[e.U] - res.X[e.V])
	}
	return out
}

// UnitDemand returns the right-hand side χ_s − χ_t of a unit s-t flow.
func UnitDemand(n int, s, t graph.NodeID) []float64 {
	b := make([]float64, n)
	b[s] = 1
	b[t] = -1
	return b
}

// Flow solves the unit s-t electrical flow.
func (el *Electrical) Flow(s, t graph.NodeID) (*FlowResult, error) {
	if err := CheckSTPair(el.G, s, t); err != nil {
		return nil, err
	}
	tol := el.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	b := UnitDemand(el.G.N(), s, t)
	res, _, err := core.SolveOnGraphWith(el.G, b, core.SolveConfig{
		Mode: el.Mode, Tol: tol, Seed: el.Seed, Trace: el.Trace,
	})
	if err != nil {
		return nil, err
	}
	return FlowFromPotentials(el.G, s, t, res), nil
}

// EffectiveResistance returns just the s-t effective resistance.
func (el *Electrical) EffectiveResistance(s, t graph.NodeID) (float64, error) {
	res, err := el.Flow(s, t)
	if err != nil {
		return 0, err
	}
	return res.Resistance, nil
}

// FlowDivergence returns, for each node, the net current out of it (test
// harnesses check this equals χ_s − χ_t).
func (f *FlowResult) FlowDivergence(g *graph.Graph) []float64 {
	div := make([]float64, g.N())
	for id, e := range g.Edges() {
		div[e.U] += f.EdgeCurrent[id]
		div[e.V] -= f.EdgeCurrent[id]
	}
	return div
}
