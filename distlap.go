// Package distlap is the public facade of the distributed Laplacian solver
// library, a from-scratch reproduction of "Almost Universally Optimal
// Distributed Laplacian Solvers via Low-Congestion Shortcuts"
// (Anagnostides ⓡ Lenzen ⓡ Haeupler ⓡ Zuzic ⓡ Gouleakis, DISC 2022).
//
// The facade re-exports the pieces a downstream user needs:
//
//   - graph construction (NewGraph, generators via Families),
//   - the measured communication models (Mode values) and the configured
//     solver entry point (Solver, built via NewSolver and options),
//   - the congested part-wise aggregation primitive
//     (Solver.AggregateParts), the paper's central contribution,
//   - deterministic observability (Collector trace sinks, Metrics), and
//   - the shortcut-quality estimator (EstimateShortcutQuality).
//
// The preferred API is the Solver: construct once with functional options
// (WithMode, WithEps, WithSeed, WithTrace, WithChebyshev) and call its
// methods. For repeated work on one graph — multiple right-hand sides,
// flow queries, a serving daemon (cmd/distlapd) — call Solver.Prepare once
// and issue requests against the returned Instance: per-graph setup is paid
// exactly once and every request runs only iteration.
//
// The package-level functions (Solve, Flow, MaxFlow, ...) are frozen
// compatibility wrappers over a default-configured Solver: they remain
// supported and behavior-stable (none will be removed), but they gain no
// new capabilities — new code should construct a Solver, and latency- or
// throughput-sensitive code should Prepare an Instance.
//
// Everything is implemented on a deterministic CONGEST / NCC / HYBRID
// simulator that physically moves O(log n)-bit messages and measures
// synchronous rounds; see DESIGN.md for the architecture and
// EXPERIMENTS.md for the paper-claim reproduction tables.
package distlap

import (
	"distlap/internal/apps"
	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/linalg"
	"distlap/internal/partwise"
	"distlap/internal/shortcut"
)

// Graph is a weighted undirected multigraph with dense integer node IDs.
type Graph = graph.Graph

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// Families returns the named standard graph generators (path, grid,
// widegrid, tree, expander), each parameterized by an approximate size.
func Families() []graph.Family { return graph.StandardFamilies() }

// Mode selects the communication model a solve runs in.
type Mode = core.Mode

// Communication models (see Theorems 2 and 3 of the paper).
const (
	// ModeUniversal is Supported-CONGEST with shortcut-style aggregation —
	// the almost universally optimal configuration.
	ModeUniversal = core.ModeUniversal
	// ModeCongest is standard CONGEST (construction costs charged).
	ModeCongest = core.ModeCongest
	// ModeBaseline aggregates everything over one global BFS tree — the
	// existentially optimal (√n + D style) baseline.
	ModeBaseline = core.ModeBaseline
	// ModeHybrid augments CONGEST with the node-capacitated clique.
	ModeHybrid = core.ModeHybrid
)

// Result reports a distributed Laplacian solve: the solution, iteration
// count, achieved residual and the measured communication rounds.
type Result = core.Result

// Solve solves the Laplacian system L_g x = b to relative residual eps in
// the given communication model and reports the measured round complexity.
// b must sum to (approximately) zero; the solution is mean-centered.
//
// Solve is a frozen compatibility wrapper (see the package comment). Prefer
// the Solver API — NewSolver(WithMode(mode), WithEps(eps),
// WithSeed(seed)).Solve(g, b) — and Solver.Prepare when solving the same
// graph more than once.
func Solve(g *Graph, b []float64, mode Mode, eps float64, seed int64) (*Result, error) {
	return NewSolver(WithMode(mode), WithEps(eps), WithSeed(seed)).Solve(g, b)
}

// ExactSolve solves L_g x = b directly (dense elimination; ground truth
// for small systems).
func ExactSolve(g *Graph, b []float64) ([]float64, error) {
	return linalg.NewLaplacian(g).SolveExact(b)
}

// RelativeLError returns ‖x − xStar‖_L / ‖xStar‖_L, the paper's accuracy
// metric.
func RelativeLError(g *Graph, x, xStar []float64) float64 {
	return linalg.NewLaplacian(g).RelativeLError(x, xStar)
}

// PartwiseInstance is a (possibly congested) part-wise aggregation
// instance: parts with per-member values (Definitions 4 and 13).
type PartwiseInstance = partwise.Instance

// AggSpec names an aggregation function with its identity element.
type AggSpec = partwise.AggSpec

// Standard aggregation specs.
var (
	AggSum = partwise.Sum
	AggMin = partwise.Min
	AggMax = partwise.Max
	AggAnd = partwise.And
	AggOr  = partwise.Or
)

// AggregateParts solves a p-congested part-wise aggregation instance on g
// in Supported-CONGEST via the paper's layered-graph reduction and returns
// the per-part aggregates together with the measured round count.
//
// Deprecated: the bare round count loses the message totals and per-phase
// breakdown. Prefer NewSolver(WithSeed(seed)).AggregateParts(g, inst,
// spec), whose AggregateResult carries full Metrics.
func AggregateParts(g *Graph, inst *PartwiseInstance, spec AggSpec, seed int64) ([]int64, int, error) {
	res, err := NewSolver(WithSeed(seed)).AggregateParts(g, inst, spec)
	if err != nil {
		return nil, 0, err
	}
	return res.Values, res.Metrics.Congest.Rounds, nil
}

// ShortcutQuality is the empirical shortcut-quality bracket [Lower, Upper]
// of a graph (Definition 7, bracketed as described in DESIGN.md).
type ShortcutQuality = shortcut.QualityEstimate

// EstimateShortcutQuality brackets SQ(g) over the adversarial partition
// suite.
func EstimateShortcutQuality(g *Graph, seed int64) (ShortcutQuality, error) {
	return shortcut.EstimateSQ(g, seed)
}

// MSTResult reports a distributed minimum-spanning-tree computation.
type MSTResult = apps.MSTResult

// MinimumSpanningTree computes an MST distributedly with Borůvka phases
// over part-wise aggregation in Supported-CONGEST, returning the measured
// round count in the result.
//
// Prefer the Solver API: NewSolver(WithSeed(seed)).MinimumSpanningTree(g).
func MinimumSpanningTree(g *Graph, seed int64) (*MSTResult, error) {
	return NewSolver(WithSeed(seed)).MinimumSpanningTree(g)
}

// ElectricalFlow reports an s-t unit electrical flow (potentials, currents,
// effective resistance) computed through the distributed solver.
type ElectricalFlow = apps.FlowResult

// Flow computes the unit s-t electrical flow on g in the given model.
//
// Prefer the Solver API: NewSolver(WithMode(mode),
// WithSeed(seed)).Flow(g, s, t).
func Flow(g *Graph, s, t int, mode Mode, seed int64) (*ElectricalFlow, error) {
	return NewSolver(WithMode(mode), WithSeed(seed)).Flow(g, s, t)
}

// EffectiveResistance returns the s-t effective resistance of g.
//
// Prefer the Solver API: NewSolver(WithMode(mode),
// WithSeed(seed)).EffectiveResistance(g, s, t).
func EffectiveResistance(g *Graph, s, t int, mode Mode, seed int64) (float64, error) {
	return NewSolver(WithMode(mode), WithSeed(seed)).EffectiveResistance(g, s, t)
}

// SolveSDD solves the symmetric diagonally-dominant system
// (L_g + diag(extra)) x = b via the grounded-Laplacian reduction — the
// standard extension of the Laplacian paradigm to SDD matrices (heat
// diffusion, regularized regression, PageRank-style systems). extra must
// be nonnegative integers with at least one positive entry; b may have
// any sum.
// Prefer the Solver API: NewSolver(WithMode(mode), WithEps(eps),
// WithSeed(seed)).SolveSDD(g, extra, b).
func SolveSDD(g *Graph, extra []int64, b []float64, mode Mode, eps float64, seed int64) (*Result, error) {
	return NewSolver(WithMode(mode), WithEps(eps), WithSeed(seed)).SolveSDD(g, extra, b)
}

// MaxFlow approximates the s-t maximum flow via electrical-flow
// multiplicative weights (the §5 application: every MWU iteration is one
// distributed Laplacian solve), returning the approximate value, the exact
// Edmonds–Karp reference, and the total measured rounds.
// Prefer the Solver API: NewSolver(WithMode(mode),
// WithSeed(seed)).MaxFlow(g, s, t, eps).
func MaxFlow(g *Graph, s, t int, eps float64, mode Mode, seed int64) (*apps.ApproxFlowResult, error) {
	return NewSolver(WithMode(mode), WithSeed(seed)).MaxFlow(g, s, t, eps)
}

// SolveChebyshev solves L_g x = b by distributed Chebyshev iteration — the
// alternative iteration with no per-iteration global reductions (one
// residual check every few iterations), which wins on high-diameter
// topologies. Pass lo = hi = 0 for safe automatic spectral bounds.
//
// Prefer the Solver API: NewSolver(WithMode(mode), WithEps(eps),
// WithSeed(seed), WithChebyshev(lo, hi)).Solve(g, b).
func SolveChebyshev(g *Graph, b []float64, mode Mode, eps, lo, hi float64, seed int64) (*Result, error) {
	return NewSolver(WithMode(mode), WithEps(eps), WithSeed(seed),
		WithChebyshev(lo, hi)).Solve(g, b)
}

// SpectralPartition approximates the Fiedler vector by inverse power
// iteration (one distributed Laplacian solve per step) and returns the
// sign-cut bipartition with its measured rounds — spectral clustering
// through the solver.
// Prefer the Solver API: NewSolver(WithMode(mode),
// WithSeed(seed)).SpectralPartition(g).
func SpectralPartition(g *Graph, mode Mode, seed int64) (*apps.SpectralResult, error) {
	return NewSolver(WithMode(mode), WithSeed(seed)).SpectralPartition(g)
}
