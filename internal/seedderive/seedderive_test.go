package seedderive

import "testing"

// TestDeterministic pins that Derive is a pure function: equal inputs give
// equal outputs across calls (the replayability contract).
func TestDeterministic(t *testing.T) {
	for _, base := range []int64{0, 1, -1, 7, 1 << 40} {
		for _, phase := range []string{"", "mpx-round", "cluster-cover"} {
			for _, idx := range []int64{0, 1, 2, 100} {
				a := Derive(base, phase, idx)
				b := Derive(base, phase, idx)
				if a != b {
					t.Fatalf("Derive(%d,%q,%d) not stable: %d vs %d", base, phase, idx, a, b)
				}
			}
		}
	}
}

// TestNoCollisions checks the property the ad-hoc arithmetic lacked: child
// seeds across nearby (base, phase, idx) combinations never coincide.
func TestNoCollisions(t *testing.T) {
	seen := make(map[int64]string)
	phases := []string{"mpx-round", "cluster-cover", "level-up", "level-down", "mwu-solve"}
	for base := int64(0); base < 8; base++ {
		for _, ph := range phases {
			for idx := int64(0); idx < 64; idx++ {
				s := Derive(base, ph, idx)
				key := string(rune(base)) + "/" + ph + "/" + string(rune(idx))
				if prev, ok := seen[s]; ok {
					t.Fatalf("collision: %s and %s both derive %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

// TestPhaseSeparation checks that the same index under different phases
// yields different seeds — the cross-phase collision the old
// seed+idx*prime scheme allowed.
func TestPhaseSeparation(t *testing.T) {
	for idx := int64(0); idx < 32; idx++ {
		a := Derive(5, "phase-a", idx)
		b := Derive(5, "phase-b", idx)
		if a == b {
			t.Fatalf("phases not separated at idx %d: both %d", idx, a)
		}
	}
}
