package congest

import "fmt"

// WordBits is the simulator's word width. The CONGEST model transmits
// Θ(log n)-bit words; the engines realize a word as one int64, so a single
// message legally carries up to WordBits payload bits and anything larger
// must be split across ceil(bits/WordBits) words — see WordsFor. The
// wordtrunc analyzer (internal/lint) keeps call sites honest: payloads may
// not be silently truncated to fit.
const WordBits = 64

// WordsFor returns the number of words a payload of the given bit width
// occupies on an edge: ceil(bits/WordBits), the multi-word charge rule.
// Algorithms sending richer payloads charge one round per word per edge.
func WordsFor(bits int) int {
	if bits <= 0 {
		return 0
	}
	return (bits + WordBits - 1) / WordBits
}

// PackWord packs two non-negative fields into a single word, lo occupying
// the low loBits bits and hi the bits above it (the sign bit stays clear,
// so packed words order like the (hi, lo) tuple — min-aggregations
// tie-break correctly). Packing is checked: a field that overflows its
// width panics instead of silently truncating, because a truncated payload
// is a corrupted message the model was never charged for. Both fields
// together occupy at most WordBits-1 < WordBits bits, so the packed
// payload is one honestly-charged word (WordsFor(WordBits-1) == 1).
func PackWord(hi, lo Word, loBits uint) Word {
	if loBits == 0 || loBits >= WordBits-1 {
		panic(fmt.Sprintf("congest: PackWord loBits %d outside (0, %d)", loBits, WordBits-1))
	}
	if lo < 0 || lo >= 1<<loBits {
		panic(fmt.Sprintf("congest: PackWord lo field %d overflows %d bits", lo, loBits))
	}
	hiBits := WordBits - 1 - loBits
	if hi < 0 || hi >= 1<<hiBits {
		panic(fmt.Sprintf("congest: PackWord hi field %d overflows %d bits", hi, hiBits))
	}
	return hi<<loBits | lo
}

// UnpackWord splits a word packed by PackWord back into its fields.
func UnpackWord(x Word, loBits uint) (hi, lo Word) {
	return x >> loBits, x & (1<<loBits - 1)
}
