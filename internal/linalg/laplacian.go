package linalg

import (
	"fmt"
	"math"

	"distlap/internal/graph"
	"distlap/internal/seedderive"
)

// Laplacian is the operator view of a weighted graph's Laplacian
// L = D − A. It never materializes the matrix; MatVec streams over the
// graph's flat CSR edge arrays (built once in NewLaplacian), in EdgeID
// order — the same order the historical per-call edge-copy walked — so
// results are bit-identical while the steady-state kernels allocate
// nothing beyond their output vector.
type Laplacian struct {
	G   *graph.Graph
	csr *graph.CSR
}

// NewLaplacian wraps g, flattening it to CSR form once (Θ(n + m)).
func NewLaplacian(g *graph.Graph) *Laplacian {
	return &Laplacian{G: g, csr: graph.BuildCSR(g)}
}

// CSR exposes the cached flat view (read-only; shared).
func (l *Laplacian) CSR() *graph.CSR { return l.csr }

// N returns the dimension.
func (l *Laplacian) N() int { return l.G.N() }

// MatVec computes y = L x into a fresh vector. Θ(n + m), edge order.
func (l *Laplacian) MatVec(x []float64) ([]float64, error) {
	y := make([]float64, len(x))
	if err := l.MatVecInto(y, x); err != nil {
		return nil, err
	}
	return y, nil
}

// MatVecInto computes y = L x into the caller's buffer (zeroed here), the
// allocation-free kernel iterative loops use. y must have length n; it is
// accumulated in EdgeID order, so the float64 result is bit-identical to
// MatVec's. Θ(n + m).
func (l *Laplacian) MatVecInto(y, x []float64) error {
	if len(x) != l.G.N() {
		return fmt.Errorf("%w: x has %d entries for n=%d", ErrDimension, len(x), l.G.N())
	}
	if len(y) != len(x) {
		return fmt.Errorf("%w: y has %d entries for n=%d", ErrDimension, len(y), len(x))
	}
	for i := range y {
		y[i] = 0
	}
	c := l.csr
	for i := range c.EdgeW {
		u, v := c.EdgeU[i], c.EdgeV[i]
		d := c.EdgeW[i] * (x[u] - x[v])
		y[u] += d
		y[v] -= d
	}
	return nil
}

// Quadratic returns xᵀLx = Σ_e w_e (x_u − x_v)², the Laplacian energy.
// Edge-order summation; allocation-free.
func (l *Laplacian) Quadratic(x []float64) float64 {
	s := 0.0
	c := l.csr
	for i := range c.EdgeW {
		d := x[c.EdgeU[i]] - x[c.EdgeV[i]]
		s += c.EdgeW[i] * d * d
	}
	return s
}

// LNorm returns ‖x‖_L = sqrt(xᵀLx), the error norm the paper's guarantee
// uses.
func (l *Laplacian) LNorm(x []float64) float64 { return math.Sqrt(l.Quadratic(x)) }

// Degrees returns a copy of the weighted degree vector (the diagonal of
// L). The degrees were accumulated in EdgeID order at CSR build time, so
// they carry the exact bits per-call accumulation produced.
func (l *Laplacian) Degrees() []float64 {
	d := make([]float64, len(l.csr.WDeg))
	copy(d, l.csr.WDeg)
	return d
}

// Dense materializes L as a dense matrix (tests and the exact solver only).
func (l *Laplacian) Dense() [][]float64 {
	n := l.G.N()
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for _, e := range l.G.Edges() {
		w := float64(e.Weight)
		m[e.U][e.U] += w
		m[e.V][e.V] += w
		m[e.U][e.V] -= w
		m[e.V][e.U] -= w
	}
	return m
}

// SolveExact solves L x = b exactly (up to floating point) by pinning the
// last node to zero and Gaussian-eliminating the reduced SPD system, then
// recentering the solution to mean zero. b must sum to ~0 (the Laplacian's
// range) and the graph must be connected.
func (l *Laplacian) SolveExact(b []float64) ([]float64, error) {
	n := l.G.N()
	if len(b) != n {
		return nil, fmt.Errorf("%w: b has %d entries for n=%d", ErrDimension, len(b), n)
	}
	if n == 0 {
		return nil, nil
	}
	if !graph.IsConnected(l.G) {
		return nil, ErrDisconnected
	}
	sum := 0.0
	scale := 0.0
	for _, v := range b {
		sum += v
		scale += math.Abs(v)
	}
	if scale > 0 && math.Abs(sum) > 1e-8*scale {
		return nil, fmt.Errorf("%w: sum=%g", ErrNotInRange, sum)
	}
	if n == 1 {
		return []float64{0}, nil
	}
	// Reduced system on nodes 0..n-2.
	a := l.Dense()
	m := n - 1
	// Augment with b.
	for i := 0; i < m; i++ {
		a[i] = append(a[i][:m:m], b[i])
	}
	a = a[:m]
	// Gaussian elimination with partial pivoting.
	for col := 0; col < m; col++ {
		piv := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		inv := 1 / a[col][col]
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := a[r][col] * inv
			if f == 0 { //distlint:allow floateq exact-zero pivot test in exact elimination
				continue
			}
			for c := col; c <= m; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < m; i++ {
		x[i] = a[i][m] / a[i][i]
	}
	x[n-1] = 0
	CenterMean(x)
	return x, nil
}

// RelativeLError returns ‖x − xStar‖_L / ‖xStar‖_L, the paper's ε metric
// (both arguments are recentred first so the nullspace component is
// ignored).
func (l *Laplacian) RelativeLError(x, xStar []float64) float64 {
	xc, sc := Copy(x), Copy(xStar)
	CenterMean(xc)
	CenterMean(sc)
	denom := l.LNorm(sc)
	if denom == 0 { //distlint:allow floateq exact-zero guard before dividing by the pivot
		return l.LNorm(Sub(xc, sc))
	}
	return l.LNorm(Sub(xc, sc)) / denom
}

// RandomBVector returns a deterministic mean-zero right-hand side for
// experiments: b[i] alternates structured values then is centered.
func RandomBVector(n int, seed int64) []float64 {
	b := make([]float64, n)
	s := uint64(seedderive.Derive(seed, "bvector", 0))
	for i := range b {
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = float64(int64(s>>33)%1000) / 100.0
	}
	CenterMean(b)
	return b
}
