package experiments

import (
	"context"
	"fmt"
	"math"

	"distlap/internal/apps"
	"distlap/internal/congest"
	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/linalg"
	"distlap/internal/partwise"
	"distlap/internal/simtrace"
)

// E9a — Theorem 2, the log(1/ε) factor: solver rounds versus the requested
// accuracy on a fixed grid.
func E9a(cfg Config) (*Table, error) {
	quick := cfg.Quick
	tols := []float64{1e-1, 1e-2, 1e-4, 1e-6, 1e-8, 1e-10}
	if quick {
		tols = []float64{1e-2, 1e-6, 1e-10}
	}
	t := &Table{
		ID:     "E9a",
		Title:  "solver rounds vs accuracy (Theorem 2: log(1/ε) dependence)",
		Header: []string{"eps", "iterations", "rounds", "rounds/log10(1/eps)"},
		Notes:  "rounds per decade of accuracy stays ~constant — the log(1/ε) factor",
	}
	// Every tolerance solves the same grid, so the sweep prepares the
	// instance once and re-solves against it — the amortization the
	// Instance API exists for. The request pins the original engine seed
	// (setup consumes no scheduling randomness and charges zero rounds in
	// Supported modes), so the gated metrics match the historical one-shot
	// runs exactly.
	g := graph.Grid(10, 10)
	inst, err := core.PrepareInstance(context.Background(), g, core.PrepareConfig{
		Mode: core.ModeUniversal, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	var pts []point
	for _, tol := range tols {
		pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
			b := linalg.RandomBVector(g.N(), 5)
			res, err := inst.Solve(b, core.Request{Tol: tol, Seed: 1, Trace: tr})
			if err != nil {
				return nil, err
			}
			dec := math.Log10(1 / tol)
			return row(
				fmt.Sprintf("%.0e", tol), itoa(res.Iterations), itoa(res.Rounds),
				ftoa(float64(res.Rounds)/dec),
			), nil
		})
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E9b — Theorem 2, topology dependence: shortcut-based (universal) solver
// versus the global-tree (existential) baseline across topologies. On
// low-diameter graphs with many clusters the baseline's aggregations
// serialize at the global root; on the grid the two coincide — the
// crossover the universal-optimality story predicts.
func E9b(cfg Config) (*Table, error) {
	quick := cfg.Quick
	fams := []namedGraph{
		{name: "grid", mk: func() *graph.Graph { return graph.Grid(12, 12) }},
		{name: "tree", mk: func() *graph.Graph { return graph.CompleteTree(2, 8) }},
		{name: "expander", mk: func() *graph.Graph { return graph.RandomRegular(256, 4, 5) }},
		{name: "star-of-paths", mk: func() *graph.Graph { return graph.Caterpillar(4, 60) }},
	}
	if quick {
		fams = []namedGraph{
			{name: "grid", mk: func() *graph.Graph { return graph.Grid(8, 8) }},
			{name: "expander", mk: func() *graph.Graph { return graph.RandomRegular(64, 4, 5) }},
		}
	}
	t := &Table{
		ID:     "E9b",
		Title:  "universal vs existential solver by topology (Theorem 2)",
		Header: []string{"family", "n", "D", "sqrt(n)", "universal r/it", "baseline r/it", "speedup"},
		Notes:  "on low-D graphs the baseline pays Θ(k + D) per iteration at the global root; the universal solver pays ~cluster-diameter",
	}
	var pts []point
	for _, f := range fams {
		pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
			g := f.mk()
			b := linalg.RandomBVector(g.N(), 3)
			resU, _, err := core.SolveOnGraphWith(g, b, core.SolveConfig{
				Mode: core.ModeUniversal, Tol: 1e-6, Seed: 2, Trace: tr,
			})
			if err != nil {
				return nil, err
			}
			resB, _, err := core.SolveOnGraphWith(g, b, core.SolveConfig{
				Mode: core.ModeBaseline, Tol: 1e-6, Seed: 2, Trace: tr,
			})
			if err != nil {
				return nil, err
			}
			perU := float64(resU.Rounds) / float64(resU.Iterations)
			perB := float64(resB.Rounds) / float64(resB.Iterations)
			return row(
				f.name, itoa(g.N()), itoa(graph.DiameterApprox(g)),
				itoa(isqrt(g.N())), ftoa(perU), ftoa(perB), ftoa(perB/perU),
			), nil
		})
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E10 — Theorem 3: the HYBRID solver's rounds are nearly topology-
// independent, while the CONGEST solver's grow with the diameter.
func E10(cfg Config) (*Table, error) {
	quick := cfg.Quick
	fams := []namedGraph{
		{name: "path", mk: func() *graph.Graph { return graph.Path(256) }},
		{name: "grid", mk: func() *graph.Graph { return graph.Grid(16, 16) }},
		{name: "widegrid", mk: func() *graph.Graph { return graph.Grid(4, 64) }},
		{name: "expander", mk: func() *graph.Graph { return graph.RandomRegular(256, 4, 3) }},
	}
	if quick {
		fams = []namedGraph{
			{name: "path", mk: func() *graph.Graph { return graph.Path(64) }},
			{name: "expander", mk: func() *graph.Graph { return graph.RandomRegular(64, 4, 3) }},
		}
	}
	t := &Table{
		ID:     "E10",
		Title:  "HYBRID vs CONGEST solver by topology (Theorem 3)",
		Header: []string{"family", "n", "D", "congest rounds", "hybrid rounds", "hybrid r/it", "speedup"},
		Notes:  "hybrid rounds/iteration stay near-constant across topologies (n^{o(1)} log(1/ε) shape)",
	}
	var pts []point
	for _, f := range fams {
		pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
			g := f.mk()
			b := linalg.RandomBVector(g.N(), 7)
			resC, _, err := core.SolveOnGraphWith(g, b, core.SolveConfig{
				Mode: core.ModeUniversal, Tol: 1e-6, Seed: 4, Trace: tr,
			})
			if err != nil {
				return nil, err
			}
			resH, _, err := core.SolveOnGraphWith(g, b, core.SolveConfig{
				Mode: core.ModeHybrid, Tol: 1e-6, Seed: 4, Trace: tr,
			})
			if err != nil {
				return nil, err
			}
			return row(
				f.name, itoa(g.N()), itoa(graph.DiameterApprox(g)),
				itoa(resC.Rounds), itoa(resH.Rounds),
				ftoa(float64(resH.Rounds)/float64(resH.Iterations)),
				ftoa(float64(resC.Rounds)/float64(resH.Rounds)),
			), nil
		})
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E11 — Theorems 1 & 29: the Laplacian solver decides spanning connected
// subgraph; correctness on connected and disconnected inputs across
// families, with the PWA-based verifier as reference.
func E11(cfg Config) (*Table, error) {
	quick := cfg.Quick
	fams := []namedGraph{
		{name: "grid", mk: func() *graph.Graph { return graph.Grid(6, 6) }},
		{name: "tree", mk: func() *graph.Graph { return graph.CompleteTree(2, 5) }},
		{name: "expander", mk: func() *graph.Graph { return graph.RandomRegular(36, 4, 11) }},
	}
	if quick {
		fams = fams[:2]
	}
	t := &Table{
		ID:     "E11",
		Title:  "spanning connected subgraph via the Laplacian solver (Theorems 1, 29)",
		Header: []string{"family", "instance", "want", "laplacian", "lap rounds", "pwa", "pwa rounds", "D"},
		Notes:  "the reduction matches the PWA verifier on every instance; both need Ω(D) ≤ Ω̃(SQ) rounds",
	}
	var pts []point
	for _, f := range fams {
		pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
			g := f.mk()
			mst, _ := graph.MST(g)
			cases := []struct {
				name  string
				edges []graph.EdgeID
				want  bool
			}{
				{name: "spanning-tree", edges: mst, want: true},
				{name: "tree-minus-edge", edges: mst[1:], want: false},
			}
			var rows [][]string
			for _, cse := range cases {
				lap, err := apps.SpanningConnectedViaLaplacian(g, cse.edges, core.ModeUniversal, 1)
				if err != nil {
					return nil, err
				}
				nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 1, Trace: tr})
				pwa, err := apps.SpanningConnectedViaPWA(nw, cse.edges, partwise.NewShortcutSolver())
				if err != nil {
					return nil, err
				}
				if lap.Connected != cse.want || pwa.Connected != cse.want {
					return nil, fmt.Errorf("E11: %s/%s misclassified", f.name, cse.name)
				}
				rows = append(rows, []string{
					f.name, cse.name, boolStr(cse.want), boolStr(lap.Connected),
					itoa(lap.Rounds), boolStr(pwa.Connected), itoa(pwa.Rounds),
					itoa(graph.DiameterApprox(g)),
				})
			}
			return rows, nil
		})
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}
