package experiments

import (
	"fmt"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/layered"
	"distlap/internal/minor"
	"distlap/internal/partwise"
	"distlap/internal/shortcut"
	"distlap/internal/simtrace"
	"distlap/internal/treewidth"
)

// E1 — Figure 1 + Observation 14: on the pairwise-intersecting hook
// instance (p = 2), a direct decomposition into 1-congested instances needs
// k = s = √n classes, while the layered reduction solves the whole
// instance at once; the table reports both, plus the measured naive cost of
// running s sequential 1-congested solves.
func E1(cfg Config) (*Table, error) {
	quick := cfg.Quick
	sizes := []int{6, 12, 18, 24, 30}
	if quick {
		sizes = []int{6, 10}
	}
	t := &Table{
		ID:     "E1",
		Title:  "congested PWA: direct decomposition vs layered reduction (Fig. 1, Obs. 14)",
		Header: []string{"s", "n", "p", "parts k", "1-cong classes", "layered rounds", "per-class seq rounds"},
		Notes:  "classes = k = Θ(√n) despite p = 2; the layered solver needs one pipeline, not k",
	}
	var pts []point
	for _, s := range sizes {
		pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
			g, inst := partwise.HookCongestedInstance(s)
			classes := partwise.MinOneCongestedCover(inst.Parts)

			nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 1, Trace: tr})
			out, err := partwise.NewLayeredSolver(7).Solve(nw, inst, partwise.Min)
			if err != nil {
				return nil, err
			}
			want := inst.Expected(partwise.Min)
			for i := range want {
				if out[i] != want[i] {
					return nil, fmt.Errorf("E1: s=%d wrong aggregate", s)
				}
			}
			// Sequential per-class solves: each class is a 1-congested
			// sub-instance; measure the total of solving them one by one.
			seq := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 1, Trace: tr})
			for i := range inst.Parts {
				sub := &partwise.Instance{
					Parts:  inst.Parts[i : i+1],
					Values: inst.Values[i : i+1],
				}
				if _, err := partwise.NewShortcutSolver().Solve(seq, sub, partwise.Min); err != nil {
					return nil, err
				}
			}
			return row(
				itoa(s), itoa(g.N()), "2", itoa(len(inst.Parts)), itoa(classes),
				itoa(nw.Rounds()), itoa(seq.Rounds()),
			), nil
		})
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E2 — Figure 2 + Lemma 16: the cost of simulating Ĝ_p in G is exactly a
// ×p round factor; the table runs the same aggregation workload on layered
// graphs of growing p and reports layered rounds vs simulated (charged)
// rounds.
func E2(cfg Config) (*Table, error) {
	quick := cfg.Quick
	ps := []int{1, 2, 4, 8}
	if quick {
		ps = []int{1, 2, 4}
	}
	t := &Table{
		ID:     "E2",
		Title:  "simulating the layered graph in G (Fig. 2, Lemma 16)",
		Header: []string{"p", "layered n", "layered rounds", "simulated rounds", "overhead"},
		Notes:  "overhead = simulated/layered = p by construction; layered rounds stay ~flat (Theorem 22)",
	}
	var pts []point
	for _, p := range ps {
		pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
			base := graph.Grid(6, 6)
			lay, err := layered.New(base, p)
			if err != nil {
				return nil, err
			}
			nw := congest.NewNetwork(lay.G, congest.Options{Supported: true, Seed: 3, Trace: tr})
			// Workload: aggregate over each layer (p disjoint copies of G as
			// parts).
			inst := &partwise.Instance{}
			for l := 0; l < p; l++ {
				part := make([]graph.NodeID, base.N())
				vals := make([]congest.Word, base.N())
				for v := 0; v < base.N(); v++ {
					part[v] = lay.Copy(v, l)
					vals[v] = congest.Word(v)
				}
				inst.Parts = append(inst.Parts, part)
				inst.Values = append(inst.Values, vals)
			}
			if _, err := partwise.NewShortcutSolver().Solve(nw, inst, partwise.Max); err != nil {
				return nil, err
			}
			layRounds := nw.Rounds()
			sim := lay.SimulatedRounds(layRounds)
			return row(
				itoa(p), itoa(lay.G.N()), itoa(layRounds), itoa(sim),
				ftoa(float64(sim)/float64(layRounds)),
			), nil
		})
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E3 — Lemma 19: heuristic treewidth of Ĝ_p versus the p·(w+1)−1 witness
// bound across graph families.
func E3(cfg Config) (*Table, error) {
	quick := cfg.Quick
	fams := []namedGraph{
		{name: "path", mk: func() *graph.Graph { return graph.Path(12) }},
		{name: "tree", mk: func() *graph.Graph { return graph.CompleteTree(2, 4) }},
		{name: "caterpillar", mk: func() *graph.Graph { return graph.Caterpillar(5, 2) }},
		{name: "cycle", mk: func() *graph.Graph { return graph.Cycle(10) }},
		{name: "grid3x3", mk: func() *graph.Graph { return graph.Grid(3, 3) }},
	}
	ps := []int{1, 2, 3, 4}
	if quick {
		fams = fams[:3]
		ps = []int{1, 2, 3}
	}
	t := &Table{
		ID:     "E3",
		Title:  "treewidth of the layered graph (Lemma 19)",
		Header: []string{"family", "w(G)", "p", "heuristic w(G_p)", "bound p(w+1)-1", "within"},
		Notes:  "heuristic width of Ĝ_p never exceeds the Lemma 19 bound (the lifted decomposition witnesses it)",
	}
	var pts []point
	for _, f := range fams {
		for _, p := range ps {
			pts = append(pts, func(simtrace.Collector) ([][]string, error) {
				g := f.mk()
				w := treewidth.Heuristic(g).Width()
				lay, err := layered.New(g, p)
				if err != nil {
					return nil, err
				}
				// The lifted decomposition is a certified upper bound; also run
				// the heuristic directly on the layered graph.
				lifted := treewidth.LiftToLayered(treewidth.Heuristic(g), lay)
				if err := lifted.Validate(lay.G); err != nil {
					return nil, err
				}
				direct := treewidth.Heuristic(lay.G).Width()
				bound := p*(w+1) - 1
				hw := direct
				if lifted.Width() < hw {
					hw = lifted.Width()
				}
				ok := "yes"
				if hw > bound {
					ok = "NO"
				}
				return row(f.name, itoa(w), itoa(p), itoa(hw), itoa(bound), ok), nil
			})
		}
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E4 — Figure 3 + Observation 21: certified minor density of the 2-layered
// grid grows as √n/2 while the planar base stays below 3.
func E4(cfg Config) (*Table, error) {
	quick := cfg.Quick
	sizes := []int{4, 8, 12, 16, 20}
	if quick {
		sizes = []int{4, 8, 12}
	}
	t := &Table{
		ID:     "E4",
		Title:  "minor density blowup of the 2-layered grid (Fig. 3, Obs. 21)",
		Header: []string{"s", "n(G)", "δ̂(G) (greedy)", "δ̂(Ĝ2) (certified)", "s/2"},
		Notes:  "δ̂(Ĝ2) ≥ s/2 = Ω(√n); the base grid is planar so any certified density stays < 3",
	}
	var pts []point
	for _, s := range sizes {
		pts = append(pts, func(simtrace.Collector) ([][]string, error) {
			lay, cert, err := minor.Observation21(s)
			if err != nil {
				return nil, err
			}
			base := graph.Grid(s, s)
			baseCert := minor.GreedyDenseMinor(base, 2)
			return row(
				itoa(s), itoa(base.N()),
				ftoa(baseCert.Density(base)),
				ftoa(cert.Density(lay.G)),
				ftoa(float64(s)/2),
			), nil
		})
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E5 — Theorem 22: the empirical shortcut-quality bracket of Ĝ_p stays
// within polylog factors of G's, independent of p.
func E5(cfg Config) (*Table, error) {
	quick := cfg.Quick
	fams := []namedGraph{
		{name: "grid", mk: func() *graph.Graph { return graph.Grid(8, 8) }},
		{name: "widegrid", mk: func() *graph.Graph { return graph.Grid(3, 21) }},
		{name: "tree", mk: func() *graph.Graph { return graph.CompleteTree(2, 6) }},
		{name: "expander", mk: func() *graph.Graph { return graph.RandomRegular(64, 4, 7) }},
	}
	ps := []int{2, 4}
	if quick {
		fams = fams[:2]
		ps = []int{2}
	}
	t := &Table{
		ID:     "E5",
		Title:  "shortcut quality of the layered graph (Theorem 22)",
		Header: []string{"family", "Q̂(G)", "p", "Q̂(Ĝ_p)", "ratio"},
		Notes:  "ratio Q̂(Ĝ_p)/Q̂(G) stays O(polylog), not Ω(p) (Theorem 22)",
	}
	var pts []point
	for _, f := range fams {
		for _, p := range ps {
			pts = append(pts, func(simtrace.Collector) ([][]string, error) {
				g := f.mk()
				estG, err := shortcut.EstimateSQ(g, 1)
				if err != nil {
					return nil, err
				}
				lay, err := layered.New(g, p)
				if err != nil {
					return nil, err
				}
				estL, err := shortcut.EstimateSQ(lay.G, 1)
				if err != nil {
					return nil, err
				}
				return row(
					f.name, itoa(estG.Upper), itoa(p), itoa(estL.Upper),
					ftoa(float64(estL.Upper)/float64(estG.Upper)),
				), nil
			})
		}
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
