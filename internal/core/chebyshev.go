package core

import (
	"fmt"
	"math"

	"distlap/internal/linalg"
)

// ChebyshevOptions configure SolveChebyshev.
type ChebyshevOptions struct {
	// Tol is the target relative residual.
	Tol float64
	// Lo, Hi bound the nonzero Laplacian spectrum; zero values select the
	// safe defaults of linalg.SpectralBounds.
	Lo, Hi float64
	// CheckEvery controls how often the (communication-bearing) residual
	// check runs; 0 selects 8.
	CheckEvery int
	// MaxIter caps iterations (0 selects the √κ·log(1/Tol) budget).
	MaxIter int
	// Cancel, when non-nil, is polled at every iteration boundary; a
	// non-nil return aborts the solve with that error (see Options.Cancel).
	Cancel func() error
}

// SolveChebyshev runs distributed Chebyshev iteration over the comm. Its
// communication profile differs from PCG's: one MatVec exchange per
// iteration and *no* per-iteration global reductions — only a residual
// check every CheckEvery iterations — so on high-diameter topologies it
// trades more iterations (from the loose spectral bounds) for far fewer
// global aggregations. The iteration budget is the textbook
// √(Hi/Lo)·ln(2/Tol), making the log(1/ε) factor of Theorem 28 explicit in
// the code.
func SolveChebyshev(c Comm, b []float64, opts ChebyshevOptions) (*Result, error) {
	g := c.Graph()
	n := g.N()
	if len(b) != n {
		return nil, fmt.Errorf("core: b has %d entries for n=%d", len(b), n)
	}
	if opts.Tol <= 0 || opts.Tol >= 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadTol, opts.Tol)
	}
	lo, hi := opts.Lo, opts.Hi
	if lo <= 0 || hi <= 0 {
		lo, hi = linalg.SpectralBounds(linalg.NewLaplacian(g))
	}
	if hi <= lo {
		return nil, fmt.Errorf("core: bad spectral bounds [%g, %g]", lo, hi)
	}
	checkEvery := opts.CheckEvery
	if checkEvery <= 0 {
		checkEvery = 8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = int(math.Sqrt(hi/lo)*math.Log(2/opts.Tol)) + 16
	}

	tr := c.Tracer()
	tr.Begin("chebyshev")
	defer tr.End("chebyshev")

	// Center b and compute its norm (two global reductions).
	tr.Begin("norms")
	sums, err := c.GlobalSums(b)
	if err != nil {
		tr.End("norms")
		return nil, err
	}
	bc := linalg.Copy(b)
	mean := sums[0] / float64(n)
	for i := range bc {
		bc[i] -= mean
	}
	bsq := make([]float64, n)
	for i := range bc {
		bsq[i] = bc[i] * bc[i]
	}
	sums, err = c.GlobalSums(bsq)
	tr.End("norms")
	if err != nil {
		return nil, err
	}
	bNorm := math.Sqrt(sums[0])
	setupRounds := c.Rounds()
	x := make([]float64, n)
	if bNorm == 0 { //distlint:allow floateq exact-zero guard: b == 0 has the exact solution x == 0
		return &Result{X: x, Rounds: c.Rounds(), SetupRounds: setupRounds,
			Metrics: c.CollectMetrics()}, nil
	}

	theta := (hi + lo) / 2
	delta := (hi - lo) / 2
	r := linalg.Copy(bc)
	var p []float64
	alpha := 0.0
	// Residual-check scratch, allocated once and reused: bsq is dead after
	// the norm setup above.
	rsq := bsq
	for it := 1; it <= maxIter; it++ {
		if opts.Cancel != nil {
			if err := opts.Cancel(); err != nil {
				return nil, err
			}
		}
		switch it {
		case 1:
			p = linalg.Copy(r)
			alpha = 1 / theta
		case 2:
			beta := 0.5 * (delta * alpha) * (delta * alpha)
			alpha = 1 / (theta - beta/alpha)
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
		default:
			beta := (delta * alpha / 2) * (delta * alpha / 2)
			alpha = 1 / (theta - beta/alpha)
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
		}
		linalg.AXPY(alpha, p, x)
		tr.Begin("matvec")
		lx, err := c.MatVecLaplacian(x)
		tr.End("matvec")
		if err != nil {
			return nil, err
		}
		linalg.SubInto(r, bc, lx)
		if it%checkEvery != 0 && it != maxIter {
			continue
		}
		linalg.MulInto(rsq, r, r)
		tr.Begin("reduce")
		pair, err := c.GlobalSums(rsq)
		tr.End("reduce")
		if err != nil {
			return nil, err
		}
		res := math.Sqrt(pair[0]) / bNorm
		tr.Gauge("chebyshev.residual", it, res, c.Rounds())
		if res <= opts.Tol {
			linalg.CenterMean(x)
			return &Result{
				X: x, Iterations: it, Residual: res,
				Rounds: c.Rounds(), SetupRounds: setupRounds,
				Metrics: c.CollectMetrics(),
			}, nil
		}
	}
	return nil, fmt.Errorf("%w after %d Chebyshev iterations", linalg.ErrNoConverge, maxIter)
}
