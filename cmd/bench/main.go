// Command bench executes the experiment suite E1–E14 and records the
// repo's perf trajectory as BENCH_<label>.json: per-experiment wall time,
// measured rounds, word-messages, and maximum directed-edge load, plus
// whole-suite totals. Future changes compare their BENCH files against
// committed ones to see whether a hot path got faster or slower.
//
// Usage:
//
//	bench                       # full sweeps, BENCH_local.json
//	bench -quick -label ci      # reduced sweeps, BENCH_ci.json
//	bench -parallel 8           # worker-pool width (default GOMAXPROCS)
//	bench -verify               # also run at -parallel 1 and assert parity
//
// Schema stability (documented in README "Benchmarking"): `schema` is
// bumped on any incompatible change; `rounds`, `messages`, `max_edge_load`
// and `rows` are deterministic for a given code version and mode (they are
// simulator measurements, independent of -parallel and of the host);
// `*_wall_ms` and `speedup` are wall-clock observations and vary by
// machine and load. Experiments appear in canonical suite order.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"distlap/internal/experiments"
	"distlap/internal/simtrace"
)

// benchFile is the top-level BENCH_<label>.json document. Field order here
// is the emission order (encoding/json follows struct order), so the file
// layout is stable.
type benchFile struct {
	Schema           int        `json:"schema"`
	Label            string     `json:"label"`
	Mode             string     `json:"mode"` // "quick" or "full"
	Parallel         int        `json:"parallel"`
	GOMAXPROCS       int        `json:"gomaxprocs"`
	TotalWallMS      float64    `json:"total_wall_ms"`
	SequentialWallMS float64    `json:"sequential_wall_ms,omitempty"` // -verify only
	Speedup          float64    `json:"speedup,omitempty"`            // -verify only
	Experiments      []benchExp `json:"experiments"`
}

// benchExp is one experiment's record.
type benchExp struct {
	ID          string  `json:"id"`
	WallMS      float64 `json:"wall_ms"`
	Rounds      int     `json:"rounds"`
	Messages    int64   `json:"messages"`
	MaxEdgeLoad int64   `json:"max_edge_load"`
	Rows        int     `json:"rows"`
}

const schemaVersion = 1

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	label := fs.String("label", "local", "label naming the output file BENCH_<label>.json")
	quick := fs.Bool("quick", false, "reduced parameter sweeps")
	parallel := fs.Int("parallel", 0, "sweep-point worker-pool width (0 = GOMAXPROCS)")
	out := fs.String("out", "", "output path (default BENCH_<label>.json)")
	verify := fs.Bool("verify", false, "re-run every experiment at -parallel 1 and require byte-identical tables and traces")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}

	doc := benchFile{
		Schema:     schemaVersion,
		Label:      *label,
		Mode:       "full",
		Parallel:   *parallel,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if doc.Parallel == 0 {
		doc.Parallel = doc.GOMAXPROCS
	}
	if *quick {
		doc.Mode = "quick"
	}

	for _, id := range experiments.IDs() {
		table, trace, mem, wall, err := runOne(id, *quick, *parallel)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		rec := benchExp{ID: id, WallMS: toMS(wall)}
		rec.Rows = bytes.Count(table, []byte("\n"))
		for _, e := range mem.Engines() {
			rec.Rounds += e.Rounds
			rec.Messages += e.Messages
			for _, top := range mem.TopEdges(e.Engine, 1) {
				if top.Words > rec.MaxEdgeLoad {
					rec.MaxEdgeLoad = top.Words
				}
			}
		}
		doc.TotalWallMS += rec.WallMS

		if *verify {
			seqTable, seqTrace, _, seqWall, err := runOne(id, *quick, 1)
			if err != nil {
				return fmt.Errorf("%s (sequential oracle): %w", id, err)
			}
			if !bytes.Equal(table, seqTable) {
				return fmt.Errorf("%s: table at -parallel %d diverged from the sequential oracle", id, doc.Parallel)
			}
			if !bytes.Equal(trace, seqTrace) {
				return fmt.Errorf("%s: JSONL trace at -parallel %d diverged from the sequential oracle", id, doc.Parallel)
			}
			doc.SequentialWallMS += toMS(seqWall)
		}
		doc.Experiments = append(doc.Experiments, rec)
		fmt.Fprintf(os.Stderr, "%-4s %8.1fms  rounds=%d messages=%d maxload=%d\n",
			id, rec.WallMS, rec.Rounds, rec.Messages, rec.MaxEdgeLoad)
	}
	if *verify && doc.TotalWallMS > 0 {
		doc.Speedup = doc.SequentialWallMS / doc.TotalWallMS
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%s mode, parallel=%d, total %.1fms)\n",
		path, doc.Mode, doc.Parallel, doc.TotalWallMS)
	if *verify {
		fmt.Fprintf(os.Stderr, "bench: parity verified against the sequential oracle; speedup %.2fx\n", doc.Speedup)
	}
	return nil
}

// runOne executes one experiment under a fresh JSONL collector and returns
// the rendered table bytes, the flushed trace bytes, the embedded
// aggregates, and the wall time of the (parallel) run.
func runOne(id string, quick bool, parallel int) ([]byte, []byte, *simtrace.InMemory, time.Duration, error) {
	var trace bytes.Buffer
	jsonl := simtrace.NewJSONL(&trace)
	start := time.Now()
	tbl, err := experiments.RunWith(id, experiments.Config{
		Quick: quick, Trace: jsonl, Parallel: parallel,
	})
	wall := time.Since(start)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	if err := jsonl.Flush(); err != nil {
		return nil, nil, nil, 0, err
	}
	var table bytes.Buffer
	tbl.Fprint(&table)
	return table.Bytes(), trace.Bytes(), jsonl.InMemory, wall, nil
}

// toMS converts a duration to fractional milliseconds.
func toMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
