package core

// Tests for the self-checking recovery loop (DESIGN.md §9). The contract
// under test: a faulty solve never hangs, never returns a silently wrong
// vector (every returned Residual is re-verified here against a local
// true-residual computation), reports its attempts/faults/degradation in
// Metrics, and is byte-identical across repeats.

import (
	"context"
	"errors"
	"math"
	"testing"

	"distlap/internal/faultinject"
	"distlap/internal/graph"
	"distlap/internal/linalg"
	"distlap/internal/simtrace"
)

// trueResidual recomputes ‖b − Lx‖/‖b‖ with mean-centered b — the same
// oracle the recovery loop uses, rebuilt independently so the test does not
// trust the code under test.
func trueResidual(t *testing.T, g *graph.Graph, b, x []float64) float64 {
	t.Helper()
	bc := linalg.Copy(b)
	linalg.CenterMean(bc)
	bn := linalg.Norm2(bc)
	lx, err := linalg.NewLaplacian(g).MatVec(x)
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	for i := range lx {
		lx[i] = bc[i] - lx[i]
	}
	return linalg.Norm2(lx) / bn
}

// faultySolve runs one faulty solve against a fresh instance and enforces
// the never-silently-wrong invariant on whatever comes back.
func faultySolve(t *testing.T, mode Mode, spec faultinject.Spec, tol float64) (*Result, error) {
	t.Helper()
	g := graph.Grid(6, 6)
	in, err := PrepareInstance(context.Background(), g, PrepareConfig{Mode: mode, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.RandomBVector(g.N(), 11)
	res, err := in.Solve(b, Request{Seed: 7, Tol: tol, Faults: faultinject.MustNew(spec)})
	if res != nil {
		verified := trueResidual(t, g, b, res.X)
		if math.Abs(verified-res.Residual) > 1e-12 {
			t.Fatalf("reported residual %g is not the verified residual %g", res.Residual, verified)
		}
		target := tol
		if res.Metrics.Degraded {
			target = 0.5 // the ladder's outermost cap
		}
		if verified > target {
			t.Fatalf("silently wrong result: verified residual %g above target %g (degraded=%v)",
				verified, target, res.Metrics.Degraded)
		}
	}
	return res, err
}

// TestRecoveryUnderModestDrop is the acceptance criterion: under ≤5%
// message drop the solve must converge to ε or report Degraded — and in
// either case terminate with a verified residual.
func TestRecoveryUnderModestDrop(t *testing.T) {
	for _, mode := range []Mode{ModeUniversal, ModeBaseline, ModeHybrid} {
		res, err := faultySolve(t, mode, faultinject.Spec{Seed: 21, DropProb: 0.05}, 1e-6)
		if err != nil {
			// An error is an allowed outcome only if it is loud — but under
			// 5% drop with retries the ladder is expected to land somewhere.
			t.Fatalf("%s: recovery errored under 5%% drop: %v", mode, err)
		}
		if res.Metrics.Attempts < 1 {
			t.Fatalf("%s: Attempts=%d, want >=1", mode, res.Metrics.Attempts)
		}
		if res.Metrics.FaultsObserved == 0 {
			t.Fatalf("%s: no faults observed at DropProb=0.05", mode)
		}
	}
}

// TestRecoveryIsDeterministic repeats a faulty solve and demands identical
// results, attempts, fault tallies, and round counts.
func TestRecoveryIsDeterministic(t *testing.T) {
	spec := faultinject.Spec{Seed: 9, DropProb: 0.03, DupProb: 0.02, DelayProb: 0.03}
	resA, errA := faultySolve(t, ModeUniversal, spec, 1e-6)
	resB, errB := faultySolve(t, ModeUniversal, spec, 1e-6)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("runs diverged: %v vs %v", errA, errB)
	}
	if errA != nil {
		return
	}
	if resA.Metrics.Attempts != resB.Metrics.Attempts ||
		resA.Metrics.FaultsObserved != resB.Metrics.FaultsObserved ||
		resA.Metrics.Degraded != resB.Metrics.Degraded ||
		resA.Rounds != resB.Rounds ||
		resA.Residual != resB.Residual {
		t.Fatalf("faulty solves diverged:\n  %+v res=%g rounds=%d\n  %+v res=%g rounds=%d",
			resA.Metrics, resA.Residual, resA.Rounds, resB.Metrics, resB.Residual, resB.Rounds)
	}
	for i := range resA.X {
		if resA.X[i] != resB.X[i] {
			t.Fatalf("solution vectors diverged at %d: %g vs %g", i, resA.X[i], resB.X[i])
		}
	}
}

// TestRecoveryNeverHangsUnderHeavyFaults pushes fault rates far past
// recoverability: the solve must terminate — with a result or a loud
// error — inside the test's own deadline, courtesy of the engines' round
// budgets and the ladder's attempt caps.
func TestRecoveryNeverHangsUnderHeavyFaults(t *testing.T) {
	spec := faultinject.Spec{Seed: 13, DropProb: 0.45, DelayProb: 0.3, CrashProb: 0.2}
	res, err := faultySolve(t, ModeUniversal, spec, 1e-8)
	if err == nil && !res.Metrics.Degraded && res.Residual > 1e-8 {
		t.Fatalf("non-degraded result above tolerance: %g", res.Residual)
	}
	if err != nil && err.Error() == "" {
		t.Fatalf("empty error from exhausted recovery")
	}
}

// TestRecoveryDegradesNotLies forces every full-tolerance attempt to fail
// (an unreachable tolerance floor is simulated by heavy faults and a tiny
// retry budget) and checks the Degraded path reports itself.
func TestRecoveryDegradesNotLies(t *testing.T) {
	g := graph.Grid(6, 6)
	in, err := PrepareInstance(context.Background(), g, PrepareConfig{Mode: ModeUniversal, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.RandomBVector(g.N(), 3)
	spec := faultinject.Spec{Seed: 31, DropProb: 0.25, DelayProb: 0.2}
	res, err := in.Solve(b, Request{
		Seed: 2, Tol: 1e-10, Retries: 1, MaxIter: 60,
		Faults: faultinject.MustNew(spec),
	})
	if err != nil {
		// Full exhaustion is acceptable; silence is not.
		t.Logf("recovery exhausted (acceptable): %v", err)
		return
	}
	verified := trueResidual(t, g, b, res.X)
	if verified > 1e-10 && !res.Metrics.Degraded {
		t.Fatalf("residual %g above requested 1e-10 but Degraded not set", verified)
	}
	if res.Metrics.Attempts < 2 {
		t.Fatalf("degraded result after %d attempts — ladder should have retried first", res.Metrics.Attempts)
	}
}

// TestRecoveryCancelAborts threads a countdown Cancel through a faulty
// request: the recovery loop must stop retrying and surface the hook's
// error instead of burning the whole ladder against a dead deadline.
func TestRecoveryCancelAborts(t *testing.T) {
	g := graph.Grid(6, 6)
	in, err := PrepareInstance(context.Background(), g, PrepareConfig{Mode: ModeUniversal, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.RandomBVector(g.N(), 3)
	_, err = in.Solve(b, Request{
		Seed: 2, Cancel: countdown(30),
		Faults: faultinject.MustNew(faultinject.Spec{Seed: 17, DropProb: 0.3}),
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("cancelled faulty solve: got %v, want errStop", err)
	}
}

// TestRecoveryTracesAttempts checks the observability contract: attempt
// gauges and counters land in the request's collector.
func TestRecoveryTracesAttempts(t *testing.T) {
	g := graph.Grid(6, 6)
	in, err := PrepareInstance(context.Background(), g, PrepareConfig{Mode: ModeUniversal, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.RandomBVector(g.N(), 3)
	tr := simtrace.NewInMemory()
	res, err := in.Solve(b, Request{
		Seed: 7, Tol: 1e-6, Trace: tr,
		Faults: faultinject.MustNew(faultinject.Spec{Seed: 21, DropProb: 0.05}),
	})
	if err != nil {
		t.Fatalf("traced faulty solve: %v", err)
	}
	if got := tr.CounterValue("recovery.attempts"); got != int64(res.Metrics.Attempts) {
		t.Fatalf("recovery.attempts counter %d != Metrics.Attempts %d", got, res.Metrics.Attempts)
	}
	samples := tr.GaugeSeries("recovery.attempt")
	if len(samples) != res.Metrics.Attempts {
		t.Fatalf("%d attempt gauges for %d attempts", len(samples), res.Metrics.Attempts)
	}
}

// TestReliablePathUnchangedByRecoveryCode: a nil fault plan must produce
// byte-identical results to a build that never heard of recovery.
func TestReliablePathUnchangedByRecoveryCode(t *testing.T) {
	in, b := prepared(t, ModeUniversal, 1)
	res, err := in.Solve(b, Request{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Attempts != 0 || res.Metrics.FaultsObserved != 0 || res.Metrics.Degraded {
		t.Fatalf("reliable solve carries recovery metrics: %+v", res.Metrics)
	}
}
