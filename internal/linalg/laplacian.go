package linalg

import (
	"fmt"
	"math"

	"distlap/internal/graph"
	"distlap/internal/seedderive"
)

// Laplacian is the operator view of a weighted graph's Laplacian
// L = D − A. It never materializes the matrix; MatVec streams over edges.
type Laplacian struct {
	G *graph.Graph
}

// NewLaplacian wraps g.
func NewLaplacian(g *graph.Graph) *Laplacian { return &Laplacian{G: g} }

// N returns the dimension.
func (l *Laplacian) N() int { return l.G.N() }

// MatVec computes y = L x.
func (l *Laplacian) MatVec(x []float64) ([]float64, error) {
	if len(x) != l.G.N() {
		return nil, fmt.Errorf("%w: x has %d entries for n=%d", ErrDimension, len(x), l.G.N())
	}
	y := make([]float64, len(x))
	for _, e := range l.G.Edges() {
		w := float64(e.Weight)
		d := x[e.U] - x[e.V]
		y[e.U] += w * d
		y[e.V] -= w * d
	}
	return y, nil
}

// Quadratic returns xᵀLx = Σ_e w_e (x_u − x_v)², the Laplacian energy.
func (l *Laplacian) Quadratic(x []float64) float64 {
	s := 0.0
	for _, e := range l.G.Edges() {
		d := x[e.U] - x[e.V]
		s += float64(e.Weight) * d * d
	}
	return s
}

// LNorm returns ‖x‖_L = sqrt(xᵀLx), the error norm the paper's guarantee
// uses.
func (l *Laplacian) LNorm(x []float64) float64 { return math.Sqrt(l.Quadratic(x)) }

// Degrees returns the weighted degree vector (the diagonal of L).
func (l *Laplacian) Degrees() []float64 {
	d := make([]float64, l.G.N())
	for _, e := range l.G.Edges() {
		w := float64(e.Weight)
		d[e.U] += w
		d[e.V] += w
	}
	return d
}

// Dense materializes L as a dense matrix (tests and the exact solver only).
func (l *Laplacian) Dense() [][]float64 {
	n := l.G.N()
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for _, e := range l.G.Edges() {
		w := float64(e.Weight)
		m[e.U][e.U] += w
		m[e.V][e.V] += w
		m[e.U][e.V] -= w
		m[e.V][e.U] -= w
	}
	return m
}

// SolveExact solves L x = b exactly (up to floating point) by pinning the
// last node to zero and Gaussian-eliminating the reduced SPD system, then
// recentering the solution to mean zero. b must sum to ~0 (the Laplacian's
// range) and the graph must be connected.
func (l *Laplacian) SolveExact(b []float64) ([]float64, error) {
	n := l.G.N()
	if len(b) != n {
		return nil, fmt.Errorf("%w: b has %d entries for n=%d", ErrDimension, len(b), n)
	}
	if n == 0 {
		return nil, nil
	}
	if !graph.IsConnected(l.G) {
		return nil, ErrDisconnected
	}
	sum := 0.0
	scale := 0.0
	for _, v := range b {
		sum += v
		scale += math.Abs(v)
	}
	if scale > 0 && math.Abs(sum) > 1e-8*scale {
		return nil, fmt.Errorf("%w: sum=%g", ErrNotInRange, sum)
	}
	if n == 1 {
		return []float64{0}, nil
	}
	// Reduced system on nodes 0..n-2.
	a := l.Dense()
	m := n - 1
	// Augment with b.
	for i := 0; i < m; i++ {
		a[i] = append(a[i][:m:m], b[i])
	}
	a = a[:m]
	// Gaussian elimination with partial pivoting.
	for col := 0; col < m; col++ {
		piv := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		inv := 1 / a[col][col]
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := a[r][col] * inv
			if f == 0 { //distlint:allow floateq exact-zero pivot test in exact elimination
				continue
			}
			for c := col; c <= m; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < m; i++ {
		x[i] = a[i][m] / a[i][i]
	}
	x[n-1] = 0
	CenterMean(x)
	return x, nil
}

// RelativeLError returns ‖x − xStar‖_L / ‖xStar‖_L, the paper's ε metric
// (both arguments are recentred first so the nullspace component is
// ignored).
func (l *Laplacian) RelativeLError(x, xStar []float64) float64 {
	xc, sc := Copy(x), Copy(xStar)
	CenterMean(xc)
	CenterMean(sc)
	denom := l.LNorm(sc)
	if denom == 0 { //distlint:allow floateq exact-zero guard before dividing by the pivot
		return l.LNorm(Sub(xc, sc))
	}
	return l.LNorm(Sub(xc, sc)) / denom
}

// RandomBVector returns a deterministic mean-zero right-hand side for
// experiments: b[i] alternates structured values then is centered.
func RandomBVector(n int, seed int64) []float64 {
	b := make([]float64, n)
	s := uint64(seedderive.Derive(seed, "bvector", 0))
	for i := range b {
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = float64(int64(s>>33)%1000) / 100.0
	}
	CenterMean(b)
	return b
}
