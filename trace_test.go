package distlap_test

// Observability regression tests: attaching a trace collector must be
// side-effect-free (the Nop, InMemory and JSONL sinks all leave the
// measured execution bit-identical to an untraced run), JSONL streams must
// be byte-stable across same-seed runs, and the recorded per-phase rounds
// must sum exactly to the engine totals — the accounting identity
// cmd/simtrace enforces.

import (
	"bytes"
	"testing"

	"distlap"
	"distlap/internal/linalg"
)

func traceGraph() (*distlap.Graph, []float64) {
	for _, f := range distlap.Families() {
		if f.Name == "grid" {
			g := f.Make(36)
			return g, linalg.RandomBVector(g.N(), 13)
		}
	}
	panic("no grid family")
}

// solveTraced runs one solve with the given collector (nil = none).
func solveTraced(t *testing.T, mode distlap.Mode, tr distlap.Collector) *distlap.Result {
	t.Helper()
	g, b := traceGraph()
	opts := []distlap.Option{distlap.WithMode(mode), distlap.WithSeed(6)}
	if tr != nil {
		opts = append(opts, distlap.WithTrace(tr))
	}
	res, err := distlap.NewSolver(opts...).Solve(g, b)
	if err != nil {
		t.Fatalf("solve (mode %v): %v", mode, err)
	}
	return res
}

// TestTraceIsPassive pins that no collector, NopTrace and an InMemory
// collector all yield bit-identical solves: same solution, same iteration
// count, same measured rounds.
func TestTraceIsPassive(t *testing.T) {
	for _, mode := range []distlap.Mode{distlap.ModeUniversal, distlap.ModeHybrid} {
		bare := solveTraced(t, mode, nil)
		nop := solveTraced(t, mode, distlap.NopTrace())
		mem := solveTraced(t, mode, distlap.NewInMemoryTrace())
		for _, o := range []*distlap.Result{nop, mem} {
			if o.Iterations != bare.Iterations || o.Rounds != bare.Rounds {
				t.Errorf("mode %v: traced run diverges: (%d,%d) vs bare (%d,%d)",
					mode, o.Iterations, o.Rounds, bare.Iterations, bare.Rounds)
			}
			for i := range bare.X {
				if o.X[i] != bare.X[i] {
					t.Fatalf("mode %v: X[%d] diverges under tracing", mode, i)
				}
			}
		}
	}
}

// TestJSONLByteStableAcrossRuns pins the sink's determinism contract: two
// identically-seeded solves stream byte-identical JSONL (including the
// Flush aggregates).
func TestJSONLByteStableAcrossRuns(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		tr := distlap.NewJSONLTrace(&buf)
		solveTraced(t, distlap.ModeUniversal, tr)
		if err := tr.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed JSONL streams differ: %d vs %d bytes", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("empty trace stream")
	}
}

// TestPhaseRoundsSumToTotal pins the accounting identity for the universal
// and baseline modes: exclusive per-phase rounds (plus untracked) sum
// exactly to the network's total rounds.
func TestPhaseRoundsSumToTotal(t *testing.T) {
	for _, mode := range []distlap.Mode{distlap.ModeUniversal, distlap.ModeBaseline} {
		tr := distlap.NewInMemoryTrace()
		res := solveTraced(t, mode, tr)
		if open := tr.OpenSpans(); open != 0 {
			t.Errorf("mode %v: %d spans left open", mode, open)
		}
		sum := 0
		for _, ph := range tr.Phases() {
			sum += ph.Rounds
		}
		if sum != res.Rounds {
			t.Errorf("mode %v: phase rounds sum %d != measured rounds %d", mode, sum, res.Rounds)
		}
		if sum != tr.TotalRounds() {
			t.Errorf("mode %v: phase rounds sum %d != engine totals %d", mode, sum, tr.TotalRounds())
		}
		if got := tr.PhaseRounds("solve/matvec"); got <= 0 {
			t.Errorf("mode %v: expected positive matvec rounds, got %d", mode, got)
		}
	}
}

// TestResultCarriesPhases pins that a traced solve surfaces its per-phase
// breakdown on Result.Metrics without any extra plumbing.
func TestResultCarriesPhases(t *testing.T) {
	res := solveTraced(t, distlap.ModeUniversal, distlap.NewInMemoryTrace())
	if len(res.Metrics.Phases) == 0 {
		t.Fatal("traced solve reported no phases on Result.Metrics")
	}
	found := false
	for _, ph := range res.Metrics.Phases {
		if ph.Path == "solve/reduce" && ph.Rounds > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no solve/reduce phase with positive rounds in %v", res.Metrics.Phases)
	}
	untraced := solveTraced(t, distlap.ModeUniversal, nil)
	if len(untraced.Metrics.Phases) != 0 {
		t.Errorf("untraced solve reports phases: %v", untraced.Metrics.Phases)
	}
}
