package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestGraphIORoundtrip(t *testing.T) {
	for _, g := range []*Graph{
		New(0),
		New(3),
		Grid(3, 4),
		RandomConnected(20, 15, 9, 7),
	} {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Fatalf("roundtrip n=%d m=%d vs %d %d", got.N(), got.M(), g.N(), g.M())
		}
		ge, he := g.Edges(), got.Edges()
		for i := range ge {
			if ge[i] != he[i] {
				t.Fatalf("edge %d: %+v vs %+v", i, ge[i], he[i])
			}
		}
	}
}

func TestGraphReadCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n3 2\n# edges\n0 1 5\n\n1 2 7\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || g.Edge(1).Weight != 7 {
		t.Fatalf("parsed wrong: n=%d m=%d", g.N(), g.M())
	}
}

func TestGraphReadErrors(t *testing.T) {
	cases := []string{
		"",                  // missing header
		"3",                 // short header
		"x 2\n0 1 1\n0 2 1", // bad n
		"3 2\n0 1 1",        // missing edge
		"3 1\n0 1",          // short edge line
		"3 1\n0 1 z",        // bad weight
		"3 1\n0 5 1",        // out of range
		"3 1\n1 1 1",        // self loop
		"3 1\n0 1 0",        // zero weight
		"2 1\n0 1 1\nextra", // trailing content
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: want error", in)
		}
	}
	if _, err := Read(strings.NewReader("x 2\n")); !errors.Is(err, ErrBadFormat) {
		t.Fatal("want ErrBadFormat")
	}
}

// Property: Write/Read round-trips arbitrary random graphs.
func TestGraphIOProperty(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%30) + 1
		g := RandomConnected(n, n/2, 100, seed)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.N() == g.N() && got.M() == g.M() && got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
