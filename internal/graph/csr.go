package graph

// CSR is a flat, index-based (compressed sparse row) view of a Graph,
// built once and shared read-only by every hot-path kernel: Laplacian
// apply, weighted-degree walks, residual evaluation, and the engines'
// charge accounting. It carries two complementary layouts:
//
//   - an adjacency-order view (RowStart/HalfTo/HalfEdge/HalfW), the CSR
//     proper: node v's incident half-edges occupy
//     HalfTo[RowStart[v]:RowStart[v+1]] in exactly the order of
//     Graph.Neighbors(v), so kernels that walk neighborhoods touch one
//     contiguous cache-friendly block per node;
//   - an edge-order view (EdgeU/EdgeV/EdgeW), the edge list as parallel
//     scalar arrays in EdgeID order, for kernels that stream over edges
//     (Laplacian MatVec, quadratic forms, spectral-bound scans).
//
// Both views preserve the source graph's iteration orders bit-for-bit,
// which is what lets flat kernels replace map- and struct-walking ones
// without perturbing any floating-point summation order — and therefore
// without moving a single measured round (DESIGN.md §7). WDeg is the
// weighted-degree vector accumulated in EdgeID order, the same order
// linalg's Degrees used, so cached degrees are bit-identical to freshly
// computed ones.
//
// A CSR is immutable after BuildCSR returns and safe for concurrent
// readers; it holds no reference that would let a caller mutate the
// source graph through it. Building costs Θ(n + m) time and space.
type CSR struct {
	// Adjacency-order view: half-edges of node v are the index range
	// [RowStart[v], RowStart[v+1]).
	RowStart []int32   // length n+1
	HalfTo   []int32   // length 2m: neighbor endpoint
	HalfEdge []int32   // length 2m: EdgeID of the half-edge
	HalfW    []float64 // length 2m: weight of the half-edge

	// Edge-order view: edge e is (EdgeU[e], EdgeV[e]) with weight EdgeW[e].
	EdgeU []int32   // length m
	EdgeV []int32   // length m
	EdgeW []float64 // length m

	// WDeg[v] is the weighted degree of v, accumulated in EdgeID order.
	WDeg []float64 // length n
}

// N returns the number of nodes.
func (c *CSR) N() int { return len(c.RowStart) - 1 }

// M returns the number of undirected edges.
func (c *CSR) M() int { return len(c.EdgeU) }

// Degree returns the unweighted degree of v (half-edge count).
func (c *CSR) Degree(v NodeID) int { return int(c.RowStart[v+1] - c.RowStart[v]) }

// BuildCSR flattens g into its CSR view. The result is a pure function of
// g's construction history: half-edges appear in Neighbors order and edges
// in EdgeID order, so two structurally identical graphs yield bytewise
// identical CSRs. Θ(n + m).
func BuildCSR(g *Graph) *CSR {
	n, m := g.N(), g.M()
	c := &CSR{
		RowStart: make([]int32, n+1),
		HalfTo:   make([]int32, 2*m),
		HalfEdge: make([]int32, 2*m),
		HalfW:    make([]float64, 2*m),
		EdgeU:    make([]int32, m),
		EdgeV:    make([]int32, m),
		EdgeW:    make([]float64, m),
		WDeg:     make([]float64, n),
	}
	pos := 0
	for v := 0; v < n; v++ {
		c.RowStart[v] = int32(pos)
		for _, h := range g.Neighbors(v) {
			c.HalfTo[pos] = int32(h.To)
			c.HalfEdge[pos] = int32(h.Edge)
			c.HalfW[pos] = float64(g.Edge(h.Edge).Weight)
			pos++
		}
	}
	c.RowStart[n] = int32(pos)
	for id, e := range g.EdgeList() {
		c.EdgeU[id] = int32(e.U)
		c.EdgeV[id] = int32(e.V)
		w := float64(e.Weight)
		c.EdgeW[id] = w
		c.WDeg[e.U] += w
		c.WDeg[e.V] += w
	}
	return c
}
