package simprof

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// timelineLevels are the intensity characters of the heatmap, lightest
// first; index 0 (a space) marks an empty bucket.
const timelineLevels = " .:*#@"

// Timeline renders the profile's round series as an ASCII heatmap: the
// execution's rounds are squashed into at most width buckets, one row per
// phase path shows where in the execution that phase's rounds were charged
// (intensity is row-relative), and summary rows show per-bucket message
// volume and the running max directed-edge load. Convergence gauges
// (pcg.residual, chebyshev.residual, spectral.rayleigh, … — every
// non-fault gauge stream) overlay as value-mapped rows aligned to the same
// round axis: each bucket shows the last sample that landed in it, with
// intensity tracking the value's position in the series' own range
// (log-scaled when all samples are positive, since residuals span
// decades) — so a healthy solve fades left-to-right next to its phase
// round bars, and a stagnating residual stays bright. When the trace
// carries fault-injection telemetry (the engines' "fault.<kind>" gauge
// streams, aligned to the series axis by stream position — see
// Record.AtRound), one marker row per fault kind shows where in the
// execution the plan struck — drops clustering under a convergecast phase
// explain that phase's stretched bucket. Requires a trace recorded by a
// series-enabled sink.
func Timeline(w io.Writer, p *Profile, width int) error {
	if len(p.Series) == 0 {
		return fmt.Errorf("simprof: trace has no series records — record it with a series-enabled sink (e.g. experiments -series -trace)")
	}
	if width < 1 {
		width = 1
	}
	maxRound := 0
	for _, s := range p.Series {
		if s.Round > maxRound {
			maxRound = s.Round
		}
	}
	cols := width
	if cols > maxRound {
		cols = maxRound
	}
	// bucket maps a 1-based cumulative round to its column. Gauge samples
	// emitted after the final round boundary overshoot the axis by one
	// (Record.AtRound) — clamp instead of dropping them.
	bucket := func(round int) int {
		if round < 1 {
			round = 1
		}
		if round > maxRound {
			round = maxRound
		}
		return (round - 1) * cols / maxRound
	}

	type row struct {
		label string
		cells []int64
		total int64
	}
	rowIdx := make(map[string]int)
	var rows []row
	msgs := make([]int64, cols)
	load := make([]int64, cols)
	var totalMsgs int64
	var finalLoad int64
	for _, s := range p.Series {
		b := bucket(s.Round)
		label := s.Path
		if label == "" {
			label = "(untracked)"
		}
		i, ok := rowIdx[label]
		if !ok {
			i = len(rows)
			rowIdx[label] = i
			rows = append(rows, row{label: label, cells: make([]int64, cols)})
		}
		rows[i].cells[b] += int64(s.Rounds)
		rows[i].total += int64(s.Rounds)
		msgs[b] += s.Messages
		totalMsgs += s.Messages
		if s.MaxLoad > load[b] {
			load[b] = s.MaxLoad
		}
		if s.MaxLoad > finalLoad {
			finalLoad = s.MaxLoad
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].total != rows[b].total {
			return rows[a].total > rows[b].total
		}
		return rows[a].label < rows[b].label
	})

	// Convergence overlays: every non-fault gauge stream becomes one
	// value-mapped row on the same round axis (ROADMAP: gauge series over
	// the per-phase bars). A bucket keeps the last sample that landed in
	// it — gauges report state ("residual after this iteration"), so the
	// latest value is the bucket's truth, unlike the event counts above.
	type gaugeRow struct {
		label   string
		values  []float64
		present []bool
		samples int
	}
	var gauges []gaugeRow
	for _, g := range p.Gauges {
		if strings.HasPrefix(g.Name, "fault.") {
			continue
		}
		gr := gaugeRow{label: g.Name, values: make([]float64, cols), present: make([]bool, cols)}
		for _, s := range g.Samples {
			b := bucket(s.AtRound)
			gr.values[b] = s.Value
			gr.present[b] = true
			gr.samples++
		}
		gauges = append(gauges, gr)
	}
	sort.SliceStable(gauges, func(a, b int) bool { return gauges[a].label < gauges[b].label })

	// Fault markers: one row per injected fault kind, counting events per
	// bucket from the engines' "fault.<kind>" gauge streams. Bucketing is
	// by AtRound — the cumulative series round the sample interleaved
	// with — so markers stay aligned with the phase rows even in traces
	// that concatenate several executions (each engine's own round counter
	// restarts per run; the stream position does not).
	var faults []row
	for _, g := range p.Gauges {
		if !strings.HasPrefix(g.Name, "fault.") {
			continue
		}
		fr := row{label: g.Name, cells: make([]int64, cols)}
		for _, s := range g.Samples {
			fr.cells[bucket(s.AtRound)]++
			fr.total++
		}
		faults = append(faults, fr)
	}
	sort.SliceStable(faults, func(a, b int) bool {
		if faults[a].total != faults[b].total {
			return faults[a].total > faults[b].total
		}
		return faults[a].label < faults[b].label
	})

	labelW := len("max edge load")
	for _, r := range rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	for _, g := range gauges {
		if len(g.label) > labelW {
			labelW = len(g.label)
		}
	}
	for _, r := range faults {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	fmt.Fprintf(w, "timeline: %d rounds over %d buckets (~%d rounds/bucket); intensity is row-relative\n",
		maxRound, cols, (maxRound+cols-1)/cols)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-*s |%s| %d rounds\n", labelW, r.label, heatline(r.cells), r.total)
	}
	fmt.Fprintf(w, "  %-*s |%s| %d total\n", labelW, "messages", heatline(msgs), totalMsgs)
	fmt.Fprintf(w, "  %-*s |%s| %d peak\n", labelW, "max edge load", heatline(load), finalLoad)
	for _, g := range gauges {
		fmt.Fprintf(w, "  %-*s |%s| %d samples\n", labelW, g.label, gaugeline(g.values, g.present), g.samples)
	}
	for _, r := range faults {
		fmt.Fprintf(w, "  %-*s |%s| %d events\n", labelW, r.label, heatline(r.cells), r.total)
	}
	return nil
}

// gaugeline maps per-bucket gauge values to intensity characters against
// the series' own [min, max] range: the maximum renders as the brightest
// level, the minimum as the dimmest nonzero one, and buckets without a
// sample as spaces. When every sampled value is positive the mapping is
// logarithmic — convergence residuals fall over decades, and a linear map
// would flatline after the first halving — otherwise it is linear (e.g.
// recovery.attempt's -1 "gave up" sentinel). A constant series renders at
// full intensity throughout: visible stagnation is the overlay's point.
func gaugeline(values []float64, present []bool) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	allPositive := true
	for i, v := range values {
		if !present[i] {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
		if v <= 0 {
			allPositive = false
		}
	}
	scale := func(v float64) float64 { return v }
	if allPositive && hi > lo {
		scale = math.Log
	}
	span := scale(hi) - scale(lo)
	var b strings.Builder
	for i, v := range values {
		if !present[i] {
			b.WriteByte(timelineLevels[0])
			continue
		}
		t := 1.0
		if span > 0 {
			t = (scale(v) - scale(lo)) / span
		}
		idx := 1 + int(math.Round(t*float64(len(timelineLevels)-2)))
		if idx > len(timelineLevels)-1 {
			idx = len(timelineLevels) - 1
		}
		b.WriteByte(timelineLevels[idx])
	}
	return b.String()
}

// heatline maps per-bucket values to intensity characters against the
// row's own maximum; zero buckets render as spaces.
func heatline(cells []int64) string {
	var max int64
	for _, v := range cells {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range cells {
		if v <= 0 || max == 0 {
			b.WriteByte(timelineLevels[0])
			continue
		}
		// Scale 1..max onto 1..len-1 (nonzero values always visible).
		idx := 1 + int(v*int64(len(timelineLevels)-2)/max)
		if idx > len(timelineLevels)-1 {
			idx = len(timelineLevels) - 1
		}
		b.WriteByte(timelineLevels[idx])
	}
	return b.String()
}
