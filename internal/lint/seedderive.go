package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// SeedDerive returns the seedderive analyzer. Child RNG seeds must be
// derived through seedderive.Derive(base, phase, idx) — never by ad-hoc
// arithmetic like `seed + round*7919`, which silently collides across
// phases (phase A at index 7919 shares a stream with phase B at index 0)
// and thereby correlates draws the theory assumes independent. The
// analyzer flags, in internal/ packages (internal/seedderive itself
// excepted), any arithmetic or bitwise expression over a seed-named
// identifier or field, and any compound assignment or ++/-- mutating one.
//
// Passing a seed unchanged (as an argument, struct field, or conversion
// operand) is allowed; only deriving new values from it by hand is not.
func SeedDerive() *Analyzer {
	return &Analyzer{
		Name:     "seedderive",
		Severity: SevError,
		Doc: "requires child seeds to come from seedderive.Derive, banning " +
			"ad-hoc arithmetic on seed-named identifiers in internal/ packages",
		Run: runSeedDerive,
	}
}

func runSeedDerive(p *Package) []Diagnostic {
	if !underInternal(p.Path) || strings.HasSuffix(p.Path, "/internal/seedderive") {
		return nil
	}
	var out []Diagnostic
	report := func(n ast.Node, name string) {
		out = append(out, diag(p, n, "seedderive",
			"ad-hoc arithmetic on seed %q risks cross-phase collisions; derive child seeds through seedderive.Derive(base, phase, idx)", name))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if arithmeticOp(n.Op) {
					if id := seedIdentIn(n); id != nil {
						report(n, id.Name)
						return false // outermost expression only
					}
				}
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					for _, lhs := range n.Lhs {
						if id := seedIdentIn(lhs); id != nil {
							report(n, id.Name)
							return false
						}
					}
				}
			case *ast.IncDecStmt:
				if id := seedIdentIn(n.X); id != nil {
					report(n, id.Name)
					return false
				}
			}
			return true
		})
	}
	return out
}

// arithmeticOp reports whether op combines values arithmetically or
// bitwise — the operations ad-hoc seed derivations are built from.
func arithmeticOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.AND_NOT, token.SHL, token.SHR:
		return true
	}
	return false
}

// seedIdentIn returns the first identifier in the subtree whose name marks
// it as a seed ("seed", "Seed", or a *Seed suffix like "baseSeed"), or nil.
func seedIdentIn(root ast.Node) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && isSeedName(id.Name) {
			found = id
			return false
		}
		return true
	})
	return found
}

func isSeedName(name string) bool {
	return name == "seed" || name == "Seed" || strings.HasSuffix(name, "Seed")
}
