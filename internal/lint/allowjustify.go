package lint

// AllowJustify returns the allowjustify analyzer: every //distlint:allow
// directive must carry a trailing justification — a suppression is a claim
// that the flagged code is safe, and the claim must say why, on the line,
// where review sees it. The analyzer also flags directives that name no
// analyzer at all or an analyzer outside the suite: both rot silently —
// they suppress nothing, so a later genuine finding on that line appears
// to be "already reviewed" when it never was.
//
// allowjustify findings are themselves suppressible (the directive grammar
// is uniform), but doing so needs a justified directive, so the invariant
// cannot be talked out of by the thing it polices.
func AllowJustify() *Analyzer {
	return &Analyzer{
		Name:     "allowjustify",
		Severity: SevError,
		Doc: "flags //distlint:allow directives without a trailing " +
			"justification, and ones naming no or unknown analyzers",
		Run: runAllowJustify,
	}
}

func runAllowJustify(p *Package) []Diagnostic {
	known := knownChecks()
	var out []Diagnostic
	for _, spec := range p.allows() {
		if len(spec.checks) == 0 {
			out = append(out, diag(p, spec.comment, "allowjustify",
				"//%s directive names no analyzer; write //%s <check> <why this is safe>",
				AllowDirective, AllowDirective))
			continue
		}
		for _, check := range spec.checks {
			if !known[check] {
				out = append(out, diag(p, spec.comment, "allowjustify",
					"//%s names unknown analyzer %q, so it suppresses nothing (try distlint -list)",
					AllowDirective, check))
			}
		}
		if spec.justification == "" {
			out = append(out, diag(p, spec.comment, "allowjustify",
				"suppression without a justification; //%s %s must end with why the finding is safe",
				AllowDirective, spec.checks[0]))
		}
	}
	return out
}
