package obs

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries pins the le (inclusive upper bound)
// semantics: a value exactly on a bound lands in that bound's bucket, a
// hair above falls through to the next, and values past the last bound
// land in the +Inf overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // inclusive: v == bound stays in bucket
		{1.0000001, 1}, {2, 1},
		{3, 2}, {4, 2},
		{8, 3},
		{8.1, 4}, {1e9, 4}, // overflow bucket
		{-5, 0},            // below every bound: first bucket
	}
	for _, c := range cases {
		if got := bucketIndex(bounds, c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}

	r := NewRegistry()
	h := r.Histogram("h", "test", true, bounds)
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := r.Snapshot()
	f, ok := snap.Family("h")
	if !ok || len(f.Series) != 1 {
		t.Fatalf("snapshot missing histogram family: %+v", snap)
	}
	s := f.Series[0]
	wantCounts := []int64{4, 2, 2, 1, 2}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("counts = %v, want %v", s.Counts, wantCounts)
	}
	for i := range wantCounts {
		if s.Counts[i] != wantCounts[i] {
			t.Fatalf("counts = %v, want %v", s.Counts, wantCounts)
		}
	}
	if s.Count != 11 {
		t.Fatalf("count = %d, want 11", s.Count)
	}
}

func TestPowerOfTwoBuckets(t *testing.T) {
	got := PowerOfTwoBuckets(0, 3)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("PowerOfTwoBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PowerOfTwoBuckets = %v, want %v", got, want)
		}
	}
}

// TestHistogramQuantile pins the linear-interpolation estimator on a known
// distribution: 10 observations spread uniformly through [0, 10) with
// bounds every 2.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "test", true, []float64{2, 4, 6, 8, 10})
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5) // two observations per bucket
	}
	s := r.Snapshot().Families[0].Series[0]
	// Median: rank 5 falls in the middle of the third bucket's first obs —
	// bucket (4,6], rank-within-bucket 1 of 2 → 4 + 2*(1/2) = 5.
	if got := s.Quantile(0.5); math.Abs(got-5) > 1e-12 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	// p90: rank 9 → bucket (8,10], 1 of 2 → 9.
	if got := s.Quantile(0.9); math.Abs(got-9) > 1e-12 {
		t.Fatalf("p90 = %v, want 9", got)
	}
	// Empty histogram answers 0.
	empty := SeriesSnapshot{Bounds: []float64{1}, Counts: []int64{0, 0}}
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// Everything in the overflow bucket answers the last bound.
	r2 := NewRegistry()
	h2 := r2.Histogram("o", "test", true, []float64{1, 2})
	h2.Observe(100)
	if got := r2.Snapshot().Families[0].Series[0].Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want last bound 2", got)
	}
}

// TestPromExpositionByteStable: two snapshots of the same state marshal to
// identical bytes, series and families appear sorted, and the wall-clock
// marker separates deterministic from wall-clock families regardless of
// registration order.
func TestPromExpositionByteStable(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		lat := r.HistogramVec("z_latency_seconds", "wall-clock latency", false, "endpoint", []float64{0.001, 1})
		lat.With("solve").Observe(0.0005)
		reqs := r.CounterVec("a_requests_total", "requests", true, "endpoint")
		reqs.With("solve").Add(2)
		reqs.With("flow").Inc()
		r.Gauge("m_in_flight", "gauge", true).Set(3)
		return r
	}
	var a, b bytes.Buffer
	if err := WriteProm(&a, build().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&b, build().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("exposition not byte-stable:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
	text := a.String()
	det, wall, found := strings.Cut(text, WallClockMarker+"\n")
	if !found {
		t.Fatalf("exposition missing wall-clock marker:\n%s", text)
	}
	if !strings.Contains(det, `a_requests_total{endpoint="flow"} 1`) ||
		!strings.Contains(det, `a_requests_total{endpoint="solve"} 2`) ||
		!strings.Contains(det, "m_in_flight 3") {
		t.Fatalf("deterministic section wrong:\n%s", det)
	}
	if strings.Contains(det, "z_latency_seconds") {
		t.Fatalf("wall-clock family leaked into the deterministic section:\n%s", det)
	}
	if !strings.Contains(wall, `z_latency_seconds_bucket{endpoint="solve",le="0.001"} 1`) ||
		!strings.Contains(wall, `z_latency_seconds_bucket{endpoint="solve",le="+Inf"} 1`) ||
		!strings.Contains(wall, `z_latency_seconds_count{endpoint="solve"} 1`) {
		t.Fatalf("wall-clock histogram section wrong:\n%s", wall)
	}
	// flow sorts before solve within the family.
	if strings.Index(det, `endpoint="flow"`) > strings.Index(det, `endpoint="solve"`) {
		t.Fatalf("series not sorted by label value:\n%s", det)
	}
	if got := DeterministicSection(build().Snapshot()); got != det {
		t.Fatalf("DeterministicSection diverges from WriteProm's upper half:\n%s\nvs\n%s", got, det)
	}
}

func TestCounterVecSumIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "test", true, "k")
	v.With("a").Add(3)
	v.With("b").Add(4)
	v.With("c").Inc()
	if got := v.Sum(); got != 8 {
		t.Fatalf("Sum = %d, want 8", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup", "one", true)
	r.Counter("dup", "two", true)
}

// failAfter fails every write after the first n bytes.
type failAfter struct {
	n       int
	written bytes.Buffer
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written.Len() >= f.n {
		return 0, errors.New("disk full")
	}
	return f.written.Write(p)
}

func TestAccessLogPoisonsOnError(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf)
	l.Log(AccessRecord{ID: "req-1", Method: "POST", Path: "/v1/graphs", Endpoint: "load", Status: 200, BytesOut: 10, DurationMicros: 5})
	l.Log(AccessRecord{ID: "req-2", Method: "GET", Path: "/v1/graphs", Endpoint: "list", Status: 200})
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if lines[0] != `{"id":"req-1","method":"POST","path":"/v1/graphs","endpoint":"load","status":200,"bytes_out":10,"duration_us":5}` {
		t.Fatalf("unexpected record encoding: %s", lines[0])
	}

	fl := NewAccessLog(&failAfter{n: 1})
	fl.Log(AccessRecord{ID: "req-1"})
	fl.Log(AccessRecord{ID: "req-2"})
	if fl.Err() == nil {
		t.Fatal("write error did not poison the log")
	}

	var nilLog *AccessLog
	nilLog.Log(AccessRecord{}) // must not panic
	if nilLog.Err() != nil {
		t.Fatal("nil log reported an error")
	}
	if NewAccessLog(io.Writer(nil)) != nil {
		t.Fatal("NewAccessLog(nil) should return a nil log")
	}
}
