// Command bench executes the experiment suite E1–E14 and records the
// repo's perf trajectory as BENCH_<label>.json: per-experiment wall time,
// measured rounds, word-messages, and maximum directed-edge load, plus
// whole-suite totals. -compare gates the deterministic metrics against a
// committed baseline so perf regressions fail loudly instead of shipping
// silently.
//
// Usage:
//
//	bench                       # full sweeps, BENCH_local.json
//	bench -quick -label ci      # reduced sweeps, BENCH_ci.json
//	bench -parallel 8           # worker-pool width (default GOMAXPROCS)
//	bench -verify               # also run at -parallel 1 and assert parity
//	bench -compare BENCH_seed.json            # exit nonzero on regression
//	bench -compare BENCH_seed.json -threshold 0.05
//	bench -wall BENCH_seed.json               # advisory wall deltas, never fails
//
// Schema stability (documented in README "Benchmarking"): `schema` is
// bumped on any incompatible change; `rounds`, `messages`, `max_edge_load`
// and `rows` are deterministic for a given code version and mode (they are
// simulator measurements, independent of -parallel and of the host);
// `*_wall_ms` and `speedup` are wall-clock observations and vary by
// machine and load. -compare gates only the deterministic metrics — wall
// time is reported but never gated. Experiments appear in canonical suite
// order.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"distlap/internal/experiments"
	"distlap/internal/simprof"
	"distlap/internal/simtrace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	label := fs.String("label", "local", "label naming the output file BENCH_<label>.json")
	quick := fs.Bool("quick", false, "reduced parameter sweeps")
	parallel := fs.Int("parallel", 0, "sweep-point worker-pool width (0 = GOMAXPROCS)")
	out := fs.String("out", "", "output path (default BENCH_<label>.json)")
	verify := fs.Bool("verify", false, "re-run every experiment at -parallel 1 and require byte-identical tables and traces")
	compare := fs.String("compare", "", "baseline BENCH_<label>.json to gate against; regressions exit nonzero")
	threshold := fs.Float64("threshold", 0.10, "regression threshold for -compare (fraction; 0.10 = 10%)")
	wallBase := fs.String("wall", "", "baseline BENCH_<label>.json to print wall-time deltas against; advisory, never fails")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}

	doc := simprof.BenchFile{
		Schema:     simprof.BenchSchema,
		Label:      *label,
		Mode:       "full",
		Parallel:   *parallel,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if doc.Parallel == 0 {
		doc.Parallel = doc.GOMAXPROCS
	}
	if *quick {
		doc.Mode = "quick"
	}

	for _, id := range experiments.IDs() {
		table, trace, mem, wall, err := runOne(id, *quick, *parallel)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		rec := simprof.BenchExp{ID: id, WallMS: toMS(wall)}
		rec.Rows = bytes.Count(table, []byte("\n"))
		for _, e := range mem.Engines() {
			rec.Rounds += e.Rounds
			rec.Messages += e.Messages
			for _, top := range mem.TopEdges(e.Engine, 1) {
				if top.Words > rec.MaxEdgeLoad {
					rec.MaxEdgeLoad = top.Words
				}
			}
		}
		doc.TotalWallMS += rec.WallMS

		if *verify {
			seqTable, seqTrace, _, seqWall, err := runOne(id, *quick, 1)
			if err != nil {
				return fmt.Errorf("%s (sequential oracle): %w", id, err)
			}
			if !bytes.Equal(table, seqTable) {
				return fmt.Errorf("%s: table at -parallel %d diverged from the sequential oracle", id, doc.Parallel)
			}
			if !bytes.Equal(trace, seqTrace) {
				return fmt.Errorf("%s: JSONL trace at -parallel %d diverged from the sequential oracle", id, doc.Parallel)
			}
			doc.SequentialWallMS += toMS(seqWall)
		}
		doc.Experiments = append(doc.Experiments, rec)
		fmt.Fprintf(os.Stderr, "%-4s %8.1fms  rounds=%d messages=%d maxload=%d\n",
			id, rec.WallMS, rec.Rounds, rec.Messages, rec.MaxEdgeLoad)
	}
	if *verify && doc.TotalWallMS > 0 {
		doc.Speedup = doc.SequentialWallMS / doc.TotalWallMS
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%s mode, parallel=%d, total %.1fms)\n",
		path, doc.Mode, doc.Parallel, doc.TotalWallMS)
	if *verify {
		fmt.Fprintf(os.Stderr, "bench: parity verified against the sequential oracle; speedup %.2fx\n", doc.Speedup)
	}
	if *compare != "" {
		if err := compareAgainst(*compare, &doc, *threshold); err != nil {
			return err
		}
	}
	if *wallBase != "" {
		reportWall(*wallBase, &doc)
	}
	return nil
}

// reportWall prints per-experiment wall-time deltas against the baseline
// file. Wall time varies by machine and load, so this is advisory output
// only: it never affects the exit status, even if the baseline is missing.
func reportWall(baselinePath string, doc *simprof.BenchFile) {
	baseline, err := simprof.LoadBench(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: wall: %v (advisory step, continuing)\n", err)
		return
	}
	base := make(map[string]float64, len(baseline.Experiments))
	for _, e := range baseline.Experiments {
		base[e.ID] = e.WallMS
	}
	fmt.Fprintf(os.Stderr, "bench: wall deltas vs %s (advisory — wall time is never gated):\n", baselinePath)
	for _, e := range doc.Experiments {
		b, ok := base[e.ID]
		if !ok || b <= 0 {
			fmt.Fprintf(os.Stderr, "  %-4s %8.1fms  (no baseline)\n", e.ID, e.WallMS)
			continue
		}
		fmt.Fprintf(os.Stderr, "  %-4s %8.1fms  baseline %8.1fms  %+6.1f%%\n",
			e.ID, e.WallMS, b, 100*(e.WallMS-b)/b)
	}
	if baseline.TotalWallMS > 0 {
		fmt.Fprintf(os.Stderr, "  total %7.1fms  baseline %8.1fms  %+6.1f%%\n",
			doc.TotalWallMS, baseline.TotalWallMS, 100*(doc.TotalWallMS-baseline.TotalWallMS)/baseline.TotalWallMS)
	}
}

// compareAgainst gates doc's deterministic metrics against the baseline
// file; any regression beyond threshold is an error (nonzero exit).
func compareAgainst(baselinePath string, doc *simprof.BenchFile, threshold float64) error {
	baseline, err := simprof.LoadBench(baselinePath)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	regs, err := simprof.CompareBench(baseline, doc, threshold)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "bench: REGRESSION", r)
		}
		return fmt.Errorf("compare: %d metric(s) regressed beyond %.0f%% of %s", len(regs), 100*threshold, baselinePath)
	}
	fmt.Fprintf(os.Stderr, "bench: compare ok — no deterministic metric regressed beyond %.0f%% of %s (wall time is reported, never gated)\n",
		100*threshold, baselinePath)
	return nil
}

// runOne executes one experiment under a fresh JSONL collector and returns
// the rendered table bytes, the flushed trace bytes, the embedded
// aggregates, and the wall time of the (parallel) run.
func runOne(id string, quick bool, parallel int) ([]byte, []byte, *simtrace.InMemory, time.Duration, error) {
	var trace bytes.Buffer
	jsonl := simtrace.NewJSONL(&trace)
	start := time.Now()
	tbl, err := experiments.RunWith(id, experiments.Config{
		Quick: quick, Trace: jsonl, Parallel: parallel,
	})
	wall := time.Since(start)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	if err := jsonl.Flush(); err != nil {
		return nil, nil, nil, 0, err
	}
	var table bytes.Buffer
	tbl.Fprint(&table)
	return table.Bytes(), trace.Bytes(), jsonl.InMemory, wall, nil
}

// toMS converts a duration to fractional milliseconds.
func toMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
