package congest

import (
	"fmt"
	"math"

	"distlap/internal/graph"
)

// FloatWord packs a float64 into a message word (one float per O(log n)-bit
// message, the standard CONGEST convention for numerical algorithms). This
// is the sanctioned bit-level encoder the wordtrunc analyzer points cast
// sites at: the uint64 -> Word reinterpretation below is exact (all 64 bits
// preserved) and WordFloat inverts it bit-for-bit.
func FloatWord(f float64) Word {
	//distlint:allow wordtrunc sanctioned encoder: Float64bits reinterpretation is exact and WordFloat inverts it
	return Word(math.Float64bits(f))
}

// WordFloat unpacks a float64 from a message word.
func WordFloat(w Word) float64 { return math.Float64frombits(uint64(w)) }

// ConvergecastAll is ConvergecastMany that additionally exposes, per tree,
// every member's subtree aggregate (the value the member forwarded to its
// parent — physically known to both endpoints after the pass). Tree solvers
// (internal/core's tree and Schwarz preconditioners) need these per-edge
// partial aggregates, not just the root total.
//
// subtree[t] is a dense per-node row: subtree[t][v] is node v's aggregate in
// tree t, defined only for v in trees[t].Members (other slots hold stale
// scratch). The rows alias the network's pooled convergecast state and stay
// valid until the next convergecast-family primitive on this network
// (broadcasts and down-sweeps do not touch them); copy to retain longer.
func (nw *Network) ConvergecastAll(
	trees []*graph.Tree,
	val func(t int, v graph.NodeID) Word,
	agg Agg,
) (roots []Word, subtree [][]Word, err error) {
	if len(trees) == 0 {
		return nil, nil, ErrNoTrees
	}
	k := len(trees)
	st := nw.ccStateFor(trees)
	sched := newTreeSched(nw)
	delays := nw.randomDelays(k, nw.treeCongestion(trees))
	st.initConvergecast(nw, sched, trees, delays, val)
	deliver := func(ps pendingSend) { st.deliverUp(nw, sched, trees, agg, ps) }
	for sched.step(deliver) {
	}
	roots = make([]Word, k)
	subtree = make([][]Word, k)
	for t, tr := range trees {
		row := st.acc[t*st.n : (t+1)*st.n]
		for _, v := range tr.Members {
			if st.pending[t*st.n+v] != 0 {
				return nil, nil, fmt.Errorf("congest: convergecast of tree %d stuck at node %d", t, v)
			}
		}
		subtree[t] = row
		roots[t] = row[tr.Root]
	}
	return roots, subtree, nil
}

// DownSweepMany propagates values from each tree root toward the leaves,
// transforming per hop: the parent computes next(t, parent, child,
// parentVal) — a function of locally-known state — and sends the result to
// the child. on fires at every member with its received (or, for the root,
// initial) value. This is the downward pass of distributed tree solvers.
// Like the other tree primitives it runs on pooled flat state (child index,
// receipt stamps, scheduler FIFOs) and allocates nothing at steady state.
func (nw *Network) DownSweepMany(
	trees []*graph.Tree,
	rootVal []Word,
	next func(t int, parent, child graph.NodeID, parentVal Word) Word,
	on func(t int, v graph.NodeID, w Word),
) error {
	if len(trees) == 0 {
		return ErrNoTrees
	}
	if len(rootVal) != len(trees) {
		return fmt.Errorf("congest: %d root values for %d trees", len(rootVal), len(trees))
	}
	k := len(trees)
	nw.scr.nextEpoch(k * nw.g.N())
	sched := newTreeSched(nw)
	delays := nw.randomDelays(k, nw.treeCongestion(trees))
	ci := nw.buildChildIndex(trees)
	received := grownInts(nw.scr.recvCount, k)
	nw.scr.recvCount = received
	for i := range received {
		received[i] = 0
	}

	fanOut := func(t int, v graph.NodeID, w Word, eligible int) {
		for _, c := range ci.children(t, v) {
			sched.push(nw.dirEdge(trees[t].ParentEdge[c], v), pendingSend{
				tree: t, from: v, to: c, w: next(t, v, c, w), eligible: eligible,
			})
		}
	}
	for t, tr := range trees {
		nw.bcSeen(t, tr.Root)
		received[t]++
		on(t, tr.Root, rootVal[t])
		fanOut(t, tr.Root, rootVal[t], 1+delays[t])
	}
	deliver := func(ps pendingSend) {
		if nw.bcSeen(ps.tree, ps.to) {
			return
		}
		received[ps.tree]++
		on(ps.tree, ps.to, ps.w)
		fanOut(ps.tree, ps.to, ps.w, sched.round+1)
	}
	for sched.step(deliver) {
	}
	for t, tr := range trees {
		if received[t] != len(tr.Members) {
			return fmt.Errorf("congest: down-sweep of tree %d reached %d of %d members",
				t, received[t], len(tr.Members))
		}
	}
	return nil
}
