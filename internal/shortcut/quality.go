package shortcut

import (
	"math/rand"
	"sort"
	"strconv"

	"distlap/internal/graph"
)

// This file provides the empirical shortcut-quality bracket used by the
// experiments (DESIGN.md §1): adversarial partition generators and an
// estimator that reports
//
//	lower = D(G)               (any part containing two antipodal nodes of
//	                            a shortest path forces dilation >= D, since
//	                            shortcuts are subgraphs of G)
//	upper = max over candidate partitions of the portfolio quality
//
// The paper notes Ω(D) <= SQ(G) <= O(D + √n) (§2); the estimator's bracket
// follows that shape and, crucially, is computed by the *same* procedure on
// G and on layered graphs Ĝ_p, so ratios across the two are meaningful
// (experiment E5).

// QualityEstimate is the result of EstimateSQ.
type QualityEstimate struct {
	Lower     int // hop-diameter lower bound
	Upper     int // worst candidate-partition portfolio quality
	WorstName string
}

// PartitionGen names a partition of a graph for the estimator sweep.
type PartitionGen struct {
	Name  string
	Parts [][]graph.NodeID
}

// CandidatePartitions generates the adversarial partition suite for g:
//
//   - "whole": the single part V(G) (stresses dilation);
//   - "tree-k": a spanning tree chopped into ~k connected pieces for
//     k ∈ {√n, 2√n} (the classic worst-case shape behind the Ω(√n + D)
//     lower bounds);
//   - "layers": BFS layers from a center, split into connected components
//     (ring/band parts, the planar stress case);
//   - "random-k": random connected parts grown greedily (seeded).
func CandidatePartitions(g *graph.Graph, seed int64) []PartitionGen {
	n := g.N()
	if n == 0 {
		return nil
	}
	var gens []PartitionGen
	all := make([]graph.NodeID, n)
	for i := range all {
		all[i] = i
	}
	gens = append(gens, PartitionGen{Name: "whole", Parts: [][]graph.NodeID{all}})

	rt := isqrt(n)
	if rt < 2 {
		rt = 2
	}
	for _, k := range []int{rt, 2 * rt} {
		if parts := TreePartition(g, k); len(parts) > 1 {
			gens = append(gens, PartitionGen{Name: "tree-" + strconv.Itoa(k), Parts: parts})
		}
	}
	if parts := LayerPartition(g, centerHeuristic(g)); len(parts) > 1 {
		gens = append(gens, PartitionGen{Name: "layers", Parts: parts})
	}
	if parts := RandomConnectedPartition(g, rt, seed); len(parts) > 1 {
		gens = append(gens, PartitionGen{Name: "random-" + strconv.Itoa(rt), Parts: parts})
	}
	return gens
}

// EstimateSQ computes the quality bracket for g using the default builder
// portfolio over the candidate partitions.
func EstimateSQ(g *graph.Graph, seed int64) (QualityEstimate, error) {
	est := QualityEstimate{Lower: graph.DiameterApprox(g)}
	b := WidePortfolio()
	for _, gen := range CandidatePartitions(g, seed) {
		s, err := b.Build(g, gen.Parts)
		if err != nil {
			return est, err
		}
		if q := s.Quality(); q > est.Upper {
			est.Upper = q
			est.WorstName = gen.Name
		}
	}
	if est.Upper < est.Lower {
		// The portfolio can beat the double-sweep diameter estimate only
		// through estimation slack; clamp so the bracket stays ordered.
		est.Lower = est.Upper
	}
	return est, nil
}

// TreePartition chops a BFS spanning tree of g into connected parts of size
// roughly n/k by a post-order accumulation: whenever a subtree bucket
// reaches the target size it is emitted as a part. Always returns a
// partition into induced-connected parts covering all nodes.
func TreePartition(g *graph.Graph, k int) [][]graph.NodeID {
	n := g.N()
	if n == 0 || k <= 0 {
		return nil
	}
	target := (n + k - 1) / k
	if target < 1 {
		target = 1
	}
	tr := graph.BFSTree(g, 0)
	if len(tr.Members) != n {
		return nil // disconnected
	}
	children := tr.Children()
	var parts [][]graph.NodeID
	// bucket[v] collects v's residual subtree nodes not yet emitted.
	bucket := make([][]graph.NodeID, n)
	// Iterate members in reverse BFS order = children before parents.
	for i := len(tr.Members) - 1; i >= 0; i-- {
		v := tr.Members[i]
		acc := []graph.NodeID{v}
		for _, c := range children[v] {
			acc = append(acc, bucket[c]...)
			bucket[c] = nil
		}
		if len(acc) >= target || v == tr.Root {
			sort.Ints(acc)
			parts = append(parts, acc)
		} else {
			bucket[v] = acc
		}
	}
	return parts
}

// LayerPartition splits the nodes by BFS distance from root and then splits
// each layer into its induced-connected components.
func LayerPartition(g *graph.Graph, root graph.NodeID) [][]graph.NodeID {
	res := graph.BFS(g, root)
	byLayer := map[int][]graph.NodeID{}
	maxd := 0
	for v, d := range res.Dist {
		if d < 0 {
			return nil
		}
		byLayer[d] = append(byLayer[d], v)
		if d > maxd {
			maxd = d
		}
	}
	var parts [][]graph.NodeID
	for d := 0; d <= maxd; d++ {
		layer := byLayer[d]
		sub, orig := g.Subgraph(layer)
		for _, comp := range graph.Components(sub) {
			part := make([]graph.NodeID, len(comp))
			for i, lv := range comp {
				part[i] = orig[lv]
			}
			sort.Ints(part)
			parts = append(parts, part)
		}
	}
	return parts
}

// RandomConnectedPartition grows k connected parts from random seeds by
// round-robin frontier expansion; every node ends up in exactly one part.
func RandomConnectedPartition(g *graph.Graph, k int, seed int64) [][]graph.NodeID {
	n := g.N()
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	seeds := rng.Perm(n)[:k]
	frontiers := make([][]graph.NodeID, k)
	for i, s := range seeds {
		owner[s] = i
		frontiers[i] = []graph.NodeID{s}
	}
	remaining := n - k
	for remaining > 0 {
		progress := false
		for i := 0; i < k; i++ {
			// Pop frontier nodes until one with an unclaimed neighbor.
			for len(frontiers[i]) > 0 {
				v := frontiers[i][0]
				claimed := false
				for _, h := range g.Neighbors(v) {
					if owner[h.To] == -1 {
						owner[h.To] = i
						frontiers[i] = append(frontiers[i], h.To)
						remaining--
						progress = true
						claimed = true
						break
					}
				}
				if claimed {
					break
				}
				frontiers[i] = frontiers[i][1:]
			}
		}
		if !progress {
			// Unreachable leftovers (disconnected graph): give each its
			// own part.
			for v := 0; v < n; v++ {
				if owner[v] == -1 {
					owner[v] = k
					k++
					remaining--
				}
			}
		}
	}
	parts := make([][]graph.NodeID, k)
	for v, o := range owner {
		parts[o] = append(parts[o], v)
	}
	out := parts[:0]
	for _, p := range parts {
		if len(p) > 0 {
			out = append(out, p)
		}
	}
	return out
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}
