package layered

import (
	"errors"
	"fmt"

	"distlap/internal/graph"
	"distlap/internal/simtrace"
)

// Path is a simple path in the base graph: a node sequence together with
// the base edges joining consecutive nodes. Lemma 18 restricts parts to
// such paths; general parts are decomposed into paths by the part-wise
// aggregation layer (following [29]).
type Path struct {
	Nodes []graph.NodeID
	Edges []graph.EdgeID
}

// Validate checks the path's structural invariants against the base graph.
func (p Path) Validate(base *graph.Graph) error {
	if len(p.Nodes) == 0 {
		return errors.New("layered: empty path")
	}
	if len(p.Edges) != len(p.Nodes)-1 {
		return fmt.Errorf("layered: %d edges for %d nodes", len(p.Edges), len(p.Nodes))
	}
	seen := make(map[graph.NodeID]bool, len(p.Nodes))
	for i, v := range p.Nodes {
		if v < 0 || v >= base.N() {
			return fmt.Errorf("layered: %w: %d", graph.ErrNodeRange, v)
		}
		if seen[v] {
			return fmt.Errorf("layered: path repeats node %d", v)
		}
		seen[v] = true
		if i < len(p.Edges) {
			e := base.Edge(p.Edges[i])
			if !((e.U == v && e.V == p.Nodes[i+1]) || (e.V == v && e.U == p.Nodes[i+1])) {
				return fmt.Errorf("layered: edge %d does not join %d-%d",
					p.Edges[i], v, p.Nodes[i+1])
			}
		}
	}
	return nil
}

// Embedding is the result of reducing a batch of paths (a path-restricted
// p-congested instance) to a 1-congested instance on a layered graph
// (Lemma 18): per-path connected parts in Ĝ_L whose node sets are pairwise
// disjoint.
type Embedding struct {
	Layered *Layered
	L       int // number of layers used

	// Parts[j] is path j's part in the layered graph (1-congested).
	Parts [][]graph.NodeID
	// Canonical[j][i] is the single layered copy of path j's i-th node
	// designated to carry that node's input value (a node may appear as
	// two copies inside one part at a color junction; only the canonical
	// copy contributes its value).
	Canonical [][]graph.NodeID

	// ColoringRounds is the distributed cost of the Lemma 17 edge coloring
	// that the reduction paid on the base network.
	ColoringRounds int
}

// Report emits the embedding's shape into tr as free-form counters, so
// traces can attribute layered-graph blowup alongside the rounds it causes:
// one "layered.embeddings" tick plus the layer count, the Lemma 17 coloring
// rounds, and the total node copies materialized in Ĝ_L.
func (emb *Embedding) Report(tr simtrace.Collector) {
	tr = simtrace.OrNop(tr)
	tr.Counter("layered.embeddings", 1)
	tr.Counter("layered.layers", int64(emb.L))
	tr.Counter("layered.coloring-rounds", int64(emb.ColoringRounds))
	copies := 0
	for _, part := range emb.Parts {
		copies += len(part)
	}
	tr.Counter("layered.copies", int64(copies))
}

// EmbedPaths performs the Lemma 18 reduction: it edge-colors the multigraph
// formed by all path edges with O(Δ) = O(p) colors (Lemma 17), then embeds
// each path edge into the layer given by its color, joining consecutive
// path edges through clique edges at their shared node. The resulting parts
// are node-disjoint (1-congested) in Ĝ_L.
//
// Paths of a single node are rejected; callers aggregate those locally.
func EmbedPaths(base *graph.Graph, paths []Path, seed int64) (*Embedding, error) {
	if len(paths) == 0 {
		return nil, errors.New("layered: no paths")
	}
	mg := &Multigraph{N: base.N()}
	for j, p := range paths {
		if err := p.Validate(base); err != nil {
			return nil, fmt.Errorf("path %d: %w", j, err)
		}
		if len(p.Nodes) < 2 {
			return nil, fmt.Errorf("path %d: singleton paths must be handled locally", j)
		}
		for i := 0; i+1 < len(p.Nodes); i++ {
			mg.Edges = append(mg.Edges, [2]int{p.Nodes[i], p.Nodes[i+1]})
		}
	}
	col, err := ColorEdges(mg, seed)
	if err != nil {
		return nil, err
	}
	// Remap used colors to a dense range so the layered graph has exactly
	// as many layers as distinct colors in use.
	remap := make(map[int]int)
	for _, c := range col.Colors {
		if _, ok := remap[c]; !ok {
			remap[c] = len(remap)
		}
	}
	numLayers := len(remap)
	lay, err := New(base, numLayers)
	if err != nil {
		return nil, err
	}
	emb := &Embedding{
		Layered:        lay,
		L:              numLayers,
		Parts:          make([][]graph.NodeID, len(paths)),
		Canonical:      make([][]graph.NodeID, len(paths)),
		ColoringRounds: col.Rounds,
	}
	idx := 0
	for j, p := range paths {
		colors := make([]int, len(p.Edges))
		for i := range p.Edges {
			colors[i] = remap[col.Colors[idx]]
			idx++
		}
		part := make([]graph.NodeID, 0, 2*len(p.Nodes))
		inPart := make(map[graph.NodeID]bool)
		add := func(x graph.NodeID) {
			if !inPart[x] {
				inPart[x] = true
				part = append(part, x)
			}
		}
		canon := make([]graph.NodeID, len(p.Nodes))
		for i := range p.Nodes {
			switch {
			case i == 0:
				canon[i] = lay.Copy(p.Nodes[i], colors[0])
			default:
				canon[i] = lay.Copy(p.Nodes[i], colors[i-1])
			}
			add(canon[i])
			// Junction: node i sits between edge i-1 (color[i-1]) and edge
			// i (color[i]); if they differ, the part also contains the copy
			// in edge i's layer, reached through a clique edge.
			if i > 0 && i < len(p.Nodes)-1 && colors[i] != colors[i-1] {
				add(lay.Copy(p.Nodes[i], colors[i]))
			}
		}
		emb.Parts[j] = part
		emb.Canonical[j] = canon
	}
	if err := emb.verify(); err != nil {
		return nil, err
	}
	return emb, nil
}

// verify checks the Lemma 18 guarantees: parts are pairwise node-disjoint
// and each part is induced-connected in the layered graph.
func (e *Embedding) verify() error {
	owner := make(map[graph.NodeID]int)
	for j, part := range e.Parts {
		for _, x := range part {
			if prev, ok := owner[x]; ok {
				return fmt.Errorf("layered: parts %d and %d share copy %d (not 1-congested)",
					prev, j, x)
			}
			owner[x] = j
		}
		if !graph.InducedConnected(e.Layered.G, part) {
			return fmt.Errorf("layered: embedded part %d disconnected", j)
		}
	}
	return nil
}
