package seedderive

type opts struct {
	Seed int64
}

func derive(seed int64, round int) int64 {
	s := seed + int64(round)*7919 // ad-hoc offset: flagged
	s2 := seed * 31               // ad-hoc multiply: flagged
	seed += 1000003               // compound assignment: flagged
	o := opts{Seed: seed}         // passing through unchanged: fine
	x := o.Seed ^ 12345           // field access still counts: flagged
	ok := use(seed, int64(round)) // call argument: fine
	y := int64(round) * 7919      // no seed involved: fine
	_, _, _, _, _ = s, s2, x, ok, y
	return seed
}

func use(base, idx int64) int64 { return base }
