package lint

import (
	"go/ast"
	"go/types"
)

// concurrencyExempt are the module-relative package suffixes allowed to use
// goroutines, channels and sync.Map: the experiment harness's bounded
// worker pool (whose record-and-replay recorder makes parallel sweeps
// byte-identical to sequential ones, DESIGN.md §7), the trace layer whose
// sinks it drives, and the distlapd serving layer (its mutex-guarded
// instance cache runs under net/http's per-request goroutines; the solver
// instances it serves are immutable, so concurrency never reaches a
// measured engine — each request runs a private one), and the obs metrics
// subsystem (its counters, gauges and histograms exist to be hammered by
// those same request goroutines while a scraper snapshots them; metric
// values are order-insensitive sums, so concurrency cannot reach the
// deterministic exposition). CI runs `go test -race` over exactly these
// packages; everything else in internal/... must stay single-goroutine so
// the Go scheduler can never order a measured execution.
var concurrencyExempt = []string{"/internal/experiments", "/internal/simtrace", "/internal/service", "/internal/obs"}

// Goroutine returns the goroutine analyzer: in internal/... outside the
// sanctioned packages it flags `go` statements, channel construction, and
// any use of sync.Map. Engines and solvers are confined to one goroutine
// for their whole lifetime — an unmanaged goroutine injects scheduling
// nondeterminism that no seed can replay, and sync.Map additionally
// iterates in unspecified order even under a single goroutine.
func Goroutine() *Analyzer {
	return &Analyzer{
		Name:     "goroutine",
		Severity: SevError,
		Doc: "flags go statements, channel makes, and sync.Map in internal " +
			"packages outside the experiments worker pool and simtrace",
		Run: runGoroutine,
	}
}

func runGoroutine(p *Package) []Diagnostic {
	if !underInternal(p.Path) {
		return nil
	}
	for _, suffix := range concurrencyExempt {
		if inScope(p.Path, suffix) {
			return nil
		}
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.GoStmt:
				out = append(out, diag(p, e, "goroutine",
					"unmanaged goroutine in %s: scheduler interleavings are not a function of the seed; deterministic parallelism lives behind the internal/experiments worker pool",
					p.Path))
			case *ast.CallExpr:
				if d, ok := channelMake(p, e); ok {
					out = append(out, d)
				}
			case *ast.SelectorExpr:
				if d, ok := syncMapUse(p, e); ok {
					out = append(out, d)
				}
			}
			return true
		})
	}
	return out
}

// channelMake reports make(chan ...) calls: a channel in single-goroutine
// simulator code either deadlocks or implies a goroutine this analyzer
// would flag anyway, so construction itself is the earliest signal.
func channelMake(p *Package, call *ast.CallExpr) (Diagnostic, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return Diagnostic{}, false
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return Diagnostic{}, false
	}
	t := p.Info.TypeOf(call.Args[0])
	if t == nil {
		return Diagnostic{}, false
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return Diagnostic{}, false
	}
	return diag(p, call, "goroutine",
		"channel construction in %s implies cross-goroutine communication; deterministic simulator code is single-threaded (worker pools belong in internal/experiments)",
		p.Path), true
}

// syncMapUse reports any reference to the sync.Map type: its iteration
// order is unspecified and its fast path depends on contention history, so
// even read-mostly use leaks nondeterminism.
func syncMapUse(p *Package, sel *ast.SelectorExpr) (Diagnostic, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok || sel.Sel.Name != "Map" {
		return Diagnostic{}, false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync" {
		return Diagnostic{}, false
	}
	return diag(p, sel, "goroutine",
		"sync.Map iterates in unspecified order and is concurrency-bait; use an ordinary map with sorted sweeps (maporder rules) or move the code behind the experiments pool"), true
}
