package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Run(id, true)
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != id {
				t.Fatalf("table ID %q", tbl.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("row width %d vs header %d", len(row), len(tbl.Header))
				}
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", true); err == nil {
		t.Fatal("want unknown-experiment error")
	}
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 15 {
		t.Fatalf("got %d experiments", len(ids))
	}
	if ids[0] != "E1" || ids[len(ids)-1] != "E14" {
		t.Fatalf("order: %v", ids)
	}
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  "n",
	}
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== T — demo ==", "long-header", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

// Shape assertions on key claims (quick mode): these encode the
// "who wins / how it scales" expectations from EXPERIMENTS.md.
func TestE3WithinBound(t *testing.T) {
	tbl, err := Run("E3", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("Lemma 19 bound violated: %v", row)
		}
	}
}

func TestE4DensityGrows(t *testing.T) {
	tbl, err := Run("E4", true)
	if err != nil {
		t.Fatal(err)
	}
	// Certified layered density (col 3) must exceed base density (col 2)
	// from s >= 8 on.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[3] <= last[2] {
		t.Fatalf("layered density did not exceed base: %v", last)
	}
}
