package simtrace

import (
	"bytes"
	"testing"
)

// drive issues a representative event sequence against c.
func drive(c Collector) {
	c.Begin("solve")
	c.Rounds(EngineCongest, 3)
	c.Begin("precond")
	c.Messages(EngineCongest, 4, 7)
	c.Rounds(EngineLayered, 2)
	c.End("precond")
	c.Counter("ncc.drops", 5)
	c.Messages(EngineNCC, NoEdge, 9)
	c.End("solve")
	c.Rounds(EngineCongest, 1) // untracked
}

// TestReplayEquivalence pins the Recorder contract: tracing into a
// Recorder and replaying it into a JSONL sink produces the same bytes as
// tracing into the JSONL sink directly.
func TestReplayEquivalence(t *testing.T) {
	var direct bytes.Buffer
	jd := NewJSONL(&direct)
	drive(jd)
	if err := jd.Flush(); err != nil {
		t.Fatal(err)
	}

	rec := NewRecorder()
	drive(rec)
	var replayed bytes.Buffer
	jr := NewJSONL(&replayed)
	rec.Replay(jr)
	if err := jr.Flush(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(direct.Bytes(), replayed.Bytes()) {
		t.Fatalf("replay diverged:\ndirect:\n%s\nreplayed:\n%s", direct.String(), replayed.String())
	}
	if rec.Len() == 0 {
		t.Fatal("recorder captured no events")
	}
}

// TestReplayAggregates checks replay into an InMemory collector reproduces
// the aggregate summaries.
func TestReplayAggregates(t *testing.T) {
	rec := NewRecorder()
	drive(rec)
	m := NewInMemory()
	rec.Replay(m)
	if got := m.EngineRounds(EngineCongest); got != 4 {
		t.Fatalf("congest rounds: got %d, want 4", got)
	}
	if got := m.PhaseRounds("solve"); got != 3 {
		t.Fatalf("solve exclusive rounds: got %d, want 3", got)
	}
	if got := m.CounterValue("ncc.drops"); got != 5 {
		t.Fatalf("counter: got %d, want 5", got)
	}
}

// TestReplayNil checks nil-recorder Replay is a no-op.
func TestReplayNil(t *testing.T) {
	var r *Recorder
	r.Replay(NewInMemory())
}
