package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, name := range []string{"maporder", "seededrand", "metricsintegrity", "floateq"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "nosuch", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
}

func TestFindingsExitCode(t *testing.T) {
	// The maporder fixture contains seeded violations; pointing the driver
	// at it must exit 1 and report positions.
	var out, errb bytes.Buffer
	code := run([]string{"../../internal/lint/testdata/maporder"}, &out, &errb)
	if code != 1 {
		t.Fatalf("fixture run exited %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "a.go:10:2: [maporder]") {
		t.Errorf("missing expected finding in output:\n%s", out.String())
	}
}

func TestCleanExitCode(t *testing.T) {
	// The driver's own package is clean.
	var out, errb bytes.Buffer
	if code := run([]string{"."}, &out, &errb); code != 0 {
		t.Fatalf("clean run exited %d:\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}
