package core

import (
	"testing"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/linalg"
)

func TestSolveChebyshevMatchesExact(t *testing.T) {
	g := graph.Path(12)
	b := linalg.RandomBVector(12, 4)
	c := universalComm(t, g)
	res, err := SolveChebyshev(c, b, ChebyshevOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	l := linalg.NewLaplacian(g)
	xStar, _ := l.SolveExact(b)
	if e := l.RelativeLError(res.X, xStar); e > 1e-4 {
		t.Fatalf("L-error %g", e)
	}
	if res.Iterations <= 0 || res.Rounds <= 0 {
		t.Fatalf("res=%+v", res)
	}
}

func TestSolveChebyshevTighterBoundsFewerIterations(t *testing.T) {
	g := graph.Grid(5, 5)
	b := linalg.RandomBVector(25, 2)
	l := linalg.NewLaplacian(g)
	loose, err := SolveChebyshev(universalComm(t, g), b, ChebyshevOptions{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// Hand the solver honest tighter bounds (grid spectrum is well inside
	// the Gershgorin/1-over-n² defaults).
	lo, hi := linalg.SpectralBounds(l)
	tight, err := SolveChebyshev(universalComm(t, g), b, ChebyshevOptions{
		Tol: 1e-6, Lo: lo * 16, Hi: hi,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Iterations >= loose.Iterations {
		t.Fatalf("tight bounds %d iters >= loose %d", tight.Iterations, loose.Iterations)
	}
}

func TestSolveChebyshevBadInputs(t *testing.T) {
	g := graph.Path(4)
	c := universalComm(t, g)
	if _, err := SolveChebyshev(c, []float64{1}, ChebyshevOptions{Tol: 1e-6}); err == nil {
		t.Fatal("want dimension error")
	}
	if _, err := SolveChebyshev(c, make([]float64, 4), ChebyshevOptions{Tol: 0}); err == nil {
		t.Fatal("want tolerance error")
	}
	if _, err := SolveChebyshev(c, make([]float64, 4), ChebyshevOptions{Tol: 1e-6, Lo: 5, Hi: 1}); err == nil {
		t.Fatal("want bounds error")
	}
}

func TestSolveChebyshevZeroRHS(t *testing.T) {
	g := graph.Path(4)
	c := universalComm(t, g)
	res, err := SolveChebyshev(c, make([]float64, 4), ChebyshevOptions{Tol: 1e-6})
	if err != nil || res.Iterations != 0 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestChebyshevCommunicationProfile(t *testing.T) {
	// On a high-diameter path, Chebyshev's rounds-per-iteration must be
	// far below PCG's (no per-iteration global sums).
	g := graph.Path(96)
	b := linalg.RandomBVector(96, 6)
	nwC := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 1})
	cc, _ := NewCongestComm(nwC, false)
	cheb, err := SolveChebyshev(cc, b, ChebyshevOptions{Tol: 1e-5, CheckEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	nwP := congest.NewNetwork(g, congest.Options{Supported: true, Seed: 1})
	pc, _ := NewCongestComm(nwP, false)
	pcg, err := Solve(pc, b, Options{Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	perCheb := float64(cheb.Rounds) / float64(cheb.Iterations)
	perPCG := float64(pcg.Rounds) / float64(pcg.Iterations)
	if perCheb >= perPCG {
		t.Fatalf("chebyshev %f rounds/iter >= pcg %f", perCheb, perPCG)
	}
}
