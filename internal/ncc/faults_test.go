package ncc

import (
	"errors"
	"testing"

	"distlap/internal/congest"
	"distlap/internal/faultinject"
	"distlap/internal/graph"
)

func cliqueMsgs(n int) []Message {
	var msgs []Message
	for i := 0; i < n; i++ {
		msgs = append(msgs, Message{From: i, To: (i + 1) % n, Payload: congest.Word(i)})
	}
	return msgs
}

func TestFaultyDeliverDeterministic(t *testing.T) {
	spec := faultinject.Spec{Seed: 3, DropProb: 0.2, DupProb: 0.1, DelayProb: 0.2, CrashProb: 0.1}
	run := func() (map[graph.NodeID]congest.Word, int, faultinject.Stats) {
		nw := NewNetwork(32)
		nw.SetFaults(faultinject.MustNew(spec))
		got := map[graph.NodeID]congest.Word{}
		used, err := nw.Deliver(cliqueMsgs(32), func(m Message) { got[m.To] += m.Payload + 1 })
		if err != nil {
			t.Fatalf("faulty deliver: %v", err)
		}
		return got, used, nw.FaultStats()
	}
	gotA, usedA, fA := run()
	gotB, usedB, fB := run()
	if usedA != usedB || fA != fB {
		t.Fatalf("faulty runs diverged: rounds %d vs %d, stats %+v vs %+v", usedA, usedB, fA, fB)
	}
	if len(gotA) != len(gotB) {
		t.Fatalf("delivery sets diverged")
	}
	for to, w := range gotA {
		if gotB[to] != w {
			t.Fatalf("node %d received %d vs %d", to, w, gotB[to])
		}
	}
	if fA.Total() == 0 {
		t.Fatalf("plan injected nothing: %+v", fA)
	}
}

func TestFaultyDeliverAllDropped(t *testing.T) {
	// DropProb=1 defeats retransmission: the round budget must convert the
	// starved schedule into ErrFaultBudget, with nothing delivered.
	nw := NewNetwork(8)
	nw.SetFaults(faultinject.MustNew(faultinject.Spec{Seed: 1, DropProb: 1}))
	delivered := 0
	used, err := nw.Deliver(cliqueMsgs(8), func(Message) { delivered++ })
	if !errors.Is(err, ErrFaultBudget) {
		t.Fatalf("all-drop deliver: got %v, want ErrFaultBudget", err)
	}
	if delivered != 0 {
		t.Fatalf("%d messages delivered at DropProb=1", delivered)
	}
	if used == 0 || nw.Rounds() != used {
		t.Fatalf("rounds not charged: used=%d rounds=%d", used, nw.Rounds())
	}
	if nw.FaultStats().Drops < 8 {
		t.Fatalf("drops=%d, want >=8 (every retransmission attempt counted)", nw.FaultStats().Drops)
	}
}

func TestFaultyDeliverDropRetransmits(t *testing.T) {
	// Fair loss: every message eventually arrives exactly once, over more
	// rounds than the reliable schedule.
	reliable := NewNetwork(16)
	wantUsed, err := reliable.Deliver(cliqueMsgs(16), func(Message) {})
	if err != nil {
		t.Fatalf("reliable deliver: %v", err)
	}
	nw := NewNetwork(16)
	nw.SetFaults(faultinject.MustNew(faultinject.Spec{Seed: 6, DropProb: 0.4}))
	count := map[graph.NodeID]int{}
	used, err := nw.Deliver(cliqueMsgs(16), func(m Message) { count[m.To]++ })
	if err != nil {
		t.Fatalf("lossy deliver: %v", err)
	}
	if len(count) != 16 {
		t.Fatalf("%d receivers heard something, want 16", len(count))
	}
	for to, c := range count {
		if c != 1 {
			t.Fatalf("node %d received %d copies, want exactly 1", to, c)
		}
	}
	if used <= wantUsed {
		t.Fatalf("retransmission cost no rounds: lossy=%d reliable=%d", used, wantUsed)
	}
	if nw.FaultStats().Drops == 0 {
		t.Fatalf("no drops injected at DropProb=0.4")
	}
}

func TestFaultyDeliverNeverHangs(t *testing.T) {
	// Perpetual delays starve the schedule; the round budget must convert
	// that into an error instead of a spin.
	nw := NewNetwork(4)
	nw.SetFaults(faultinject.MustNew(faultinject.Spec{Seed: 2, DelayProb: 1}))
	_, err := nw.Deliver(cliqueMsgs(4), func(Message) {})
	if !errors.Is(err, ErrFaultBudget) {
		t.Fatalf("expected ErrFaultBudget, got %v", err)
	}
}

func TestFaultyDeliverDupDeliversTwice(t *testing.T) {
	nw := NewNetwork(6)
	nw.SetFaults(faultinject.MustNew(faultinject.Spec{Seed: 4, DupProb: 1}))
	count := map[graph.NodeID]int{}
	if _, err := nw.Deliver(cliqueMsgs(6), func(m Message) { count[m.To]++ }); err != nil {
		t.Fatalf("dup deliver: %v", err)
	}
	for to, c := range count {
		if c != 2 {
			t.Fatalf("node %d received %d copies, want 2", to, c)
		}
	}
	if nw.Messages() != 12 {
		t.Fatalf("messages=%d, want 12 (both copies charged)", nw.Messages())
	}
}

func TestNilFaultPlanKeepsReliablePath(t *testing.T) {
	a, b := NewNetwork(16), NewNetwork(16)
	b.SetFaults(nil)
	var da, db []Message
	ua, erra := a.Deliver(cliqueMsgs(16), func(m Message) { da = append(da, m) })
	ub, errb := b.Deliver(cliqueMsgs(16), func(m Message) { db = append(db, m) })
	if erra != nil || errb != nil {
		t.Fatalf("reliable delivers errored: %v, %v", erra, errb)
	}
	if ua != ub || len(da) != len(db) {
		t.Fatalf("nil plan changed schedule: %d vs %d rounds, %d vs %d deliveries", ua, ub, len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("delivery %d diverged", i)
		}
	}
}
