// Package layered implements the layered graph Ĝ_p of paper §3.1.1
// (Figure 2) and the machinery of Lemmas 15–18: simulation of Ĝ_p inside G
// with ×p round overhead (Lemma 16), randomized O(Δ) multigraph edge
// coloring in O(log n) rounds (Lemma 17), and the embedding of a
// path-restricted p-congested part-wise aggregation instance as a
// 1-congested instance on Ĝ_{O(p)} (Lemma 18).
//
// Determinism obligations: Ĝ_p construction and the projection π are pure
// functions of (G, p) with stable ID mappings; the Lemma 17 coloring is
// randomized but replayable from its explicit seed; Lemma 16 simulation
// charges its ×p overhead under the "layered" engine label so costs are
// never double-attributed to the base network.
package layered

import (
	"errors"
	"fmt"

	"distlap/internal/graph"
)

// Layered is the p-layered version Ĝ_p of a base graph: p disjoint copies
// ("layers") of G, plus a p-clique on the copies of each base node.
// Layer edges inherit the base edge's weight; clique edges have weight 1.
type Layered struct {
	Base *graph.Graph
	P    int
	G    *graph.Graph // the layered graph Ĝ_p

	layerEdge [][]graph.EdgeID // [layer][baseEdge] -> layered edge
	clique    []graph.EdgeID   // flattened [v][i][j], j > i
}

// ErrBadLayers is returned when p < 1.
var ErrBadLayers = errors.New("layered: p must be >= 1")

// New constructs Ĝ_p. The copy of base node v in layer l has layered ID
// l*n + v.
func New(base *graph.Graph, p int) (*Layered, error) {
	if p < 1 {
		return nil, ErrBadLayers
	}
	n, m := base.N(), base.M()
	lg := graph.New(n * p)
	l := &Layered{Base: base, P: p, G: lg}

	l.layerEdge = make([][]graph.EdgeID, p)
	for layer := 0; layer < p; layer++ {
		l.layerEdge[layer] = make([]graph.EdgeID, m)
		for e := 0; e < m; e++ {
			be := base.Edge(e)
			id, err := lg.AddEdge(l.Copy(be.U, layer), l.Copy(be.V, layer), be.Weight)
			if err != nil {
				return nil, fmt.Errorf("layered: layer edge: %w", err)
			}
			l.layerEdge[layer][e] = id
		}
	}
	// Cliques on copies of each node.
	pairs := p * (p - 1) / 2
	l.clique = make([]graph.EdgeID, n*pairs)
	for v := 0; v < n; v++ {
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				id, err := lg.AddEdge(l.Copy(v, i), l.Copy(v, j), 1)
				if err != nil {
					return nil, fmt.Errorf("layered: clique edge: %w", err)
				}
				l.clique[v*pairs+pairIndex(p, i, j)] = id
			}
		}
	}
	return l, nil
}

// pairIndex enumerates pairs (i, j), j > i, of [0, p) in lexicographic
// order.
func pairIndex(p, i, j int) int {
	// Pairs with first element < i: i*(p-1) - i*(i-1)/2 ... derive directly:
	return i*(2*p-i-1)/2 + (j - i - 1)
}

// Copy returns the layered ID of base node v's copy in the given layer.
func (l *Layered) Copy(v graph.NodeID, layer int) graph.NodeID {
	return layer*l.Base.N() + v
}

// Project maps a layered node back to its base node and layer (the
// projection π of the paper).
func (l *Layered) Project(x graph.NodeID) (v graph.NodeID, layer int) {
	n := l.Base.N()
	return x % n, x / n
}

// LayerEdge returns the layered edge that is the given layer's copy of the
// base edge.
func (l *Layered) LayerEdge(layer int, baseEdge graph.EdgeID) graph.EdgeID {
	return l.layerEdge[layer][baseEdge]
}

// CliqueEdge returns the layered edge joining copies (v, i) and (v, j),
// i != j.
func (l *Layered) CliqueEdge(v graph.NodeID, i, j int) (graph.EdgeID, error) {
	if i == j || i < 0 || j < 0 || i >= l.P || j >= l.P {
		return 0, fmt.Errorf("layered: bad clique pair (%d, %d) with p=%d", i, j, l.P)
	}
	if j < i {
		i, j = j, i
	}
	pairs := l.P * (l.P - 1) / 2
	return l.clique[v*pairs+pairIndex(l.P, i, j)], nil
}

// SimulationOverhead returns the multiplicative round overhead of running a
// Ĝ_p algorithm on G (Lemma 16): each G-edge carries the traffic of its p
// layer copies, and each node locally simulates its p copies and their
// clique (clique messages are node-internal in the simulation and free).
func (l *Layered) SimulationOverhead() int { return l.P }

// SimulatedRounds converts a round count measured on Ĝ_p into the rounds
// charged on the base network when the layered algorithm is simulated in G
// (Lemma 16).
func (l *Layered) SimulatedRounds(layeredRounds int) int {
	return l.P * layeredRounds
}
