package lint

import (
	"fmt"
	"path/filepath"
	"testing"
)

// loadFixture type-checks one testdata package under a chosen import path
// (the path decides which scope rules apply, exactly as for real packages).
func loadFixture(t *testing.T, loader *Loader, dir, importPath string) *Package {
	t.Helper()
	p, err := loader.LoadDir(filepath.Join("testdata", dir), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return p
}

// fmtDiag renders a diagnostic as "file:line:col check" with the filename
// reduced to its base, the shape the expectation tables use.
func fmtDiag(d Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check)
}

func TestAnalyzersOnFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}

	tests := []struct {
		name string
		dir  string
		path string // import path assigned to the fixture (controls scoping)
		want []string
	}{
		{
			name: "maporder",
			dir:  "maporder",
			path: "distlap/internal/lintfixture/maporder",
			want: []string{
				"a.go:10:2 maporder",
				"a.go:41:2 maporder",
			},
		},
		{
			name: "seededrand",
			dir:  "seededrand",
			path: "distlap/internal/lintfixture/seededrand",
			want: []string{
				"a.go:12:9 seededrand",
				"a.go:17:2 seededrand",
				"a.go:22:33 seededrand",
				"a.go:32:9 seededrand",
			},
		},
		{
			name: "seedderive",
			dir:  "seedderive",
			path: "distlap/internal/lintfixture/seedderive",
			want: []string{
				"a.go:8:7 seedderive",
				"a.go:9:8 seedderive",
				"a.go:10:2 seedderive",
				"a.go:12:7 seedderive",
			},
		},
		{
			name: "metricsintegrity",
			dir:  "metricsintegrity",
			path: "distlap/internal/lintfixture/metricsintegrity",
			want: []string{
				"a.go:13:2 metricsintegrity",
				"a.go:14:2 metricsintegrity",
				"a.go:20:9 metricsintegrity",
				"a.go:25:2 metricsintegrity",
			},
		},
		{
			name: "tracephase",
			dir:  "tracephase",
			path: "distlap/internal/lintfixture/tracephase",
			want: []string{
				"a.go:25:2 tracephase",
				"a.go:30:2 tracephase",
				"a.go:38:3 tracephase",
			},
		},
		{
			// The allowed call at a.go:34 must be suppressed by its
			// directive; the handled/underscored forms produce nothing.
			name: "errcheck",
			dir:  "errcheck",
			path: "distlap/internal/lintfixture/errcheck",
			want: []string{
				"a.go:11:2 errcheck",
				"a.go:12:2 errcheck",
				"a.go:13:2 errcheck",
			},
		},
		{
			// Multi-file package: diagnostics must surface from every file.
			name: "floateq multi-file",
			dir:  "floateq",
			path: "distlap/internal/linalg/lintfixture",
			want: []string{
				"a.go:7:9 floateq",
				"b.go:5:9 floateq",
				"b.go:10:9 floateq",
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := loadFixture(t, loader, tt.dir, tt.path)
			got := Run([]*Package{p}, Analyzers())
			if len(got) != len(tt.want) {
				t.Fatalf("got %d diagnostics, want %d:\n%v", len(got), len(tt.want), got)
			}
			for i, d := range got {
				if fmtDiag(d) != tt.want[i] {
					t.Errorf("diagnostic %d: got %q, want %q (message: %s)", i, fmtDiag(d), tt.want[i], d.Message)
				}
			}
		})
	}
}

// TestAllowSuppression checks //distlint:allow handling: same-line and
// preceding-line suppressions hold, a wrong check name does not suppress,
// and an unsuppressed violation in the same file still surfaces.
func TestAllowSuppression(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p := loadFixture(t, loader, "allow", "distlap/internal/lintfixture/allow")

	// Without suppression handling the analyzer itself sees all four.
	raw := SeededRand().Run(p)
	if len(raw) != 4 {
		t.Fatalf("analyzer alone: got %d diagnostics, want 4:\n%v", len(raw), raw)
	}

	// The runner drops the two suppressed ones.
	got := Run([]*Package{p}, Analyzers())
	want := []string{
		"a.go:15:9 seededrand", // no allow comment
		"a.go:26:9 seededrand", // allow names the wrong check
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(got), len(want), got)
	}
	for i, d := range got {
		if fmtDiag(d) != want[i] {
			t.Errorf("diagnostic %d: got %q, want %q", i, fmtDiag(d), want[i])
		}
	}
}

// TestScopingByImportPath checks that analyzers keyed to package paths stay
// silent outside their scope: the floateq fixture loaded under a
// non-numerical path, and the maporder fixture outside internal/.
func TestScopingByImportPath(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	fl := loadFixture(t, loader, "floateq", "distlap/cmd/lintfixturefloat")
	if got := FloatEq().Run(fl); len(got) != 0 {
		t.Errorf("floateq outside scope: got %d diagnostics, want 0:\n%v", len(got), got)
	}
	mo := loadFixture(t, loader, "maporder", "distlap/cmd/lintfixturemap")
	if got := MapOrder().Run(mo); len(got) != 0 {
		t.Errorf("maporder outside internal/: got %d diagnostics, want 0:\n%v", len(got), got)
	}
	ec := loadFixture(t, loader, "errcheck", "distlap/cmd/lintfixtureerr")
	if got := ErrCheck().Run(ec); len(got) != 0 {
		t.Errorf("errcheck outside internal/: got %d diagnostics, want 0:\n%v", len(got), got)
	}
}

// TestRepoIsClean is the self-test the CI gate relies on: the whole module
// must lint clean (true positives fixed, justified findings suppressed).
func TestRepoIsClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := loader.Expand(loader.Root, []string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	pkgs, err := loader.Load(paths)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("expected to load the whole module, got only %d packages", len(pkgs))
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
