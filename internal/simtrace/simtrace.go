// Package simtrace is the simulator's observability layer: a
// zero-dependency, deterministic instrumentation substrate the congest and
// ncc engines emit into.
//
// The paper's only metric is measured communication — rounds and O(log n)-bit
// messages — so the trace model is built around *attribution*, not time:
// algorithms open nested phase spans (Begin/End), and every round or
// word-message the engines charge while a span is open is attributed to the
// innermost open phase (its full path, e.g. "solve/precond/shortcut-build").
// Per-phase attribution is *exclusive*: a parent phase's own rounds exclude
// its children's, so summing over all phase paths (plus the "" untracked
// bucket) reproduces the engine's total round count exactly. That identity is
// what cmd/simtrace verifies when rendering a trace.
//
// Determinism contract: collectors never consult the wall clock, never
// iterate maps without sorting keys, and carry no nondeterministic state, so
// for a fixed seed the event stream — and the JSONL sink's byte output — is
// identical across runs. Collectors must also never feed back into the
// execution: they observe charges, they do not alter scheduling, RNG state,
// or metrics. The Nop collector makes the whole layer free when tracing is
// off.
package simtrace

// Engine names used by the built-in engines. Layered-graph simulations
// (Lemma 16) label their sub-networks "layered" so their internally-simulated
// rounds are not conflated with rounds charged on the base network.
const (
	EngineCongest = "congest"
	EngineNCC     = "ncc"
	EngineLayered = "layered"
)

// NoEdge is passed to Messages by engines that have no (directed) edge
// identity for a delivery — e.g. the NCC clique, where any node may message
// any other.
const NoEdge = -1

// NoNode is passed to NodeWords for an endpoint the engine cannot attribute
// (e.g. a broadcast source outside the node range); that side of the
// delivery is simply not charged.
const NoNode = -1

// Collector receives instrumentation events from the engines and phase
// annotations from the algorithm layers. Implementations must be
// deterministic (no wall clock, no unsorted map iteration) and must not
// influence the traced execution.
//
// Spans nest: Begin pushes a phase onto the collector's stack, End pops it.
// Engines call Rounds/Messages/Counter at their charging sites; collectors
// attribute each charge to the innermost open phase.
type Collector interface {
	// Begin opens a phase span named name nested under the current one.
	Begin(name string)
	// End closes the innermost span. name must match the corresponding
	// Begin (collectors may use it for validation; the pairing itself is
	// enforced statically by the distlint tracephase analyzer).
	End(name string)
	// Rounds records n synchronous rounds charged by the named engine.
	Rounds(engine string, n int)
	// Messages records n word-messages crossing directed edge dirEdge on
	// the named engine (NoEdge when the engine has no edge identity).
	Messages(engine string, dirEdge int, n int64)
	// NodeWords attributes n word-messages to their endpoint nodes on the
	// named engine: the sender from and the receiver to each accumulate n
	// words (NoNode skips that side). Engines call it alongside Messages;
	// it mirrors the directed-edge accounting at node granularity and never
	// contributes to the engine's message totals.
	NodeWords(engine string, from, to int, n int64)
	// Counter adds n to the named free-form counter (e.g. "ncc.drops").
	Counter(name string, n int64)
	// Gauge records one sample of the named telemetry series — e.g. a
	// solver's residual norm: step is the emitter's iteration index, value
	// the observation, and rounds the communication rounds elapsed on the
	// emitting network when the sample was taken (so series can be plotted
	// against the paper's cost metric, not wall time).
	Gauge(name string, step int, value float64, rounds int)
	// Flush finalizes the sink (writes summaries for streaming sinks).
	Flush() error
}

// Nop is the default collector: every method is an empty shell, so traced
// code paths cost one interface dispatch and nothing else.
type Nop struct{}

var _ Collector = Nop{}

// Begin implements Collector.
func (Nop) Begin(string) {}

// End implements Collector.
func (Nop) End(string) {}

// Rounds implements Collector.
func (Nop) Rounds(string, int) {}

// Messages implements Collector.
func (Nop) Messages(string, int, int64) {}

// NodeWords implements Collector.
func (Nop) NodeWords(string, int, int, int64) {}

// Counter implements Collector.
func (Nop) Counter(string, int64) {}

// Gauge implements Collector.
func (Nop) Gauge(string, int, float64, int) {}

// Flush implements Collector.
func (Nop) Flush() error { return nil }

// OrNop returns c, or Nop if c is nil — engines store the result so emission
// sites never nil-check.
func OrNop(c Collector) Collector {
	if c == nil {
		return Nop{}
	}
	return c
}

// PhaseQuerier is implemented by collectors that can report per-phase
// summaries (InMemory, and JSONL via its embedded aggregator). Callers that
// want a phase breakdown from an arbitrary Collector type-assert against
// this.
type PhaseQuerier interface {
	Phases() []PhaseStat
}
