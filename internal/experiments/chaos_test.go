package experiments

import (
	"reflect"
	"testing"
)

func TestChaosRegistryResolvesViaRunWith(t *testing.T) {
	if got := ChaosIDs(); !reflect.DeepEqual(got, []string{"C1", "C2"}) {
		t.Fatalf("ChaosIDs() = %v", got)
	}
	for _, id := range ChaosIDs() {
		if _, ok := lookupRunner(id); !ok {
			t.Fatalf("RunWith cannot resolve chaos experiment %s", id)
		}
	}
	if _, err := RunWith("C99", Config{Quick: true}); err == nil {
		t.Fatalf("unknown chaos ID accepted")
	}
}

func TestChaosTierDisjointFromPaperTables(t *testing.T) {
	// The bench baselines iterate experiments.IDs(); the chaos tier must
	// never leak into them.
	for _, id := range IDs() {
		if _, chaotic := ChaosRegistry()[id]; chaotic {
			t.Fatalf("chaos experiment %s shadows a paper-table ID", id)
		}
	}
}

func TestC1QuickDeterministicAcrossWidths(t *testing.T) {
	run := func(par int) *Table {
		tbl, err := RunWith("C1", Config{Quick: true, Parallel: par})
		if err != nil {
			t.Fatalf("C1 at parallel=%d: %v", par, err)
		}
		return tbl
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("C1 rows diverged across widths:\n%v\nvs\n%v", a.Rows, b.Rows)
	}
}
