package simtrace

import (
	"fmt"
	"io"
)

// JSONL streams trace events as JSON Lines and, on Flush, appends aggregate
// summary records. It embeds an InMemory aggregator, so it also satisfies
// PhaseQuerier.
//
// Byte-stability contract (what determinism tests pin): records carry no
// timestamps or addresses, keys are emitted in a fixed order (hand-rolled
// marshaling, never map-ordered), and every aggregate is emitted under a
// total order (path, name, or load-then-id). Two runs with the same seed
// therefore produce byte-identical files.
//
// Record shapes:
//
//	{"ev":"begin","path":P}
//	{"ev":"end","path":P,"rounds":R,"messages":M}       // exclusive charges of this instance
//	{"ev":"untracked","rounds":R,"messages":M}          // Flush: charges with no open span
//	{"ev":"engine","engine":E,"rounds":R,"messages":M}  // Flush: per-engine totals
//	{"ev":"phase","path":P,"count":C,"rounds":R,"messages":M}   // Flush: per-path totals
//	{"ev":"counter","name":N,"value":V}                 // Flush
//	{"ev":"loadhist","engine":E,"bucket":B,"edges":C}   // Flush: 2^B load buckets
//	{"ev":"edge","engine":E,"edge":D,"words":W}         // Flush: top loaded edges
type JSONL struct {
	*InMemory
	w    io.Writer
	err  error
	topK int
}

var _ Collector = (*JSONL)(nil)

// JSONLTopEdges is the number of most-loaded directed edges per engine a
// JSONL sink records at Flush.
const JSONLTopEdges = 16

// NewJSONL returns a sink streaming to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{InMemory: NewInMemory(), w: w, topK: JSONLTopEdges}
}

func (j *JSONL) emit(format string, args ...any) {
	if j.err != nil {
		return
	}
	_, j.err = fmt.Fprintf(j.w, format, args...)
}

// Begin implements Collector.
func (j *JSONL) Begin(name string) {
	j.InMemory.Begin(name)
	j.emit("{\"ev\":\"begin\",\"path\":%q}\n", j.path())
}

// End implements Collector: emits the closing instance's exclusive charges.
func (j *JSONL) End(name string) {
	if len(j.stack) > 0 {
		top := j.stack[len(j.stack)-1]
		j.emit("{\"ev\":\"end\",\"path\":%q,\"rounds\":%d,\"messages\":%d}\n",
			top.path, top.rounds, top.messages)
	}
	j.InMemory.End(name)
}

// Flush implements Collector: appends the aggregate summary records and
// reports any accumulated write error.
func (j *JSONL) Flush() error {
	if un := j.stats[""]; un != nil {
		j.emit("{\"ev\":\"untracked\",\"rounds\":%d,\"messages\":%d}\n", un.Rounds, un.Messages)
	}
	engines := j.Engines()
	for _, e := range engines {
		j.emit("{\"ev\":\"engine\",\"engine\":%q,\"rounds\":%d,\"messages\":%d}\n",
			e.Engine, e.Rounds, e.Messages)
	}
	for _, st := range j.Phases() {
		if st.Path == "" {
			continue
		}
		j.emit("{\"ev\":\"phase\",\"path\":%q,\"count\":%d,\"rounds\":%d,\"messages\":%d}\n",
			st.Path, st.Count, st.Rounds, st.Messages)
	}
	for _, c := range j.Counters() {
		j.emit("{\"ev\":\"counter\",\"name\":%q,\"value\":%d}\n", c.Name, c.Value)
	}
	for _, e := range engines {
		for _, h := range j.LoadHistogram(e.Engine) {
			j.emit("{\"ev\":\"loadhist\",\"engine\":%q,\"bucket\":%d,\"edges\":%d}\n",
				h.Engine, h.Edge, h.Words)
		}
		for _, t := range j.TopEdges(e.Engine, j.topK) {
			j.emit("{\"ev\":\"edge\",\"engine\":%q,\"edge\":%d,\"words\":%d}\n",
				t.Engine, t.Edge, t.Words)
		}
	}
	return j.err
}
