package congest

import "distlap/internal/graph"

// scratch is the Network's pooled working memory: every buffer the engine
// primitives previously allocated per call, hoisted onto the (request-
// private, single-goroutine) network so steady-state rounds allocate
// nothing. All of it is dead between primitive calls — no buffer carries
// information from one call into the next, and none of it ever feeds the
// RNG or the charge counters, so pooling cannot perturb determinism.
//
// Invalidation contract: slices handed out by primitives that alias these
// pools (ConvergecastAll's subtree view) are valid until the next tree
// primitive that uses the same pool family; the per-primitive doc comments
// state which. Callers that need longer retention must copy.
type scratch struct {
	// Exchange: the per-round delivery batch.
	deliveries []delivery

	// Tree scheduler (treeSched): per-directed-edge FIFOs, the sorted
	// active-edge list, and the per-round delivered batch. Queues keep
	// their capacity across schedules; schedActive tracks which FIFOs may
	// hold leftovers from an abandoned (faulty) schedule so the next
	// schedule can reset exactly those.
	schedQueues    [][]pendingSend
	schedActive    []int
	schedDelivered []pendingSend

	// treeCongestion: per-directed-edge usage counts.
	edgeUse []int32

	// randomDelays: the per-tree delay vector.
	delayBuf []int

	// Convergecast state, dense over (tree, node) with epoch-stamped
	// validity (no O(k·n) clearing): child counts still pending, and the
	// running subtree accumulator.
	ccPending []int32
	ccAcc     []Word
	ccStamp   []uint32

	// Broadcast / down-sweep state: epoch-stamped received marks, per-tree
	// received counts, and the flat child index (per-tree CSR offsets into
	// a shared child list, with a fill cursor).
	bcStamp   []uint32
	recvCount []int
	ciStart   []int32
	ciNext    []int32
	ciList    []graph.NodeID

	// epoch is the stamp value identifying the current primitive call;
	// incremented at the start of every primitive that uses stamped state.
	epoch uint32
}

// grownI32 returns buf resized to n (reallocating only on growth).
func grownI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// grownU32 returns buf resized to n (reallocating only on growth). The
// contents are NOT cleared: stamped users must bump their epoch instead.
// A fresh (zeroed) allocation is always valid because epochs start at 1.
func grownU32(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	return buf[:n]
}

// grownWords returns buf resized to n (reallocating only on growth).
func grownWords(buf []Word, n int) []Word {
	if cap(buf) < n {
		return make([]Word, n)
	}
	return buf[:n]
}

// grownInts returns buf resized to n (reallocating only on growth).
func grownInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// grownNodes returns buf resized to n (reallocating only on growth).
func grownNodes(buf []graph.NodeID, n int) []graph.NodeID {
	if cap(buf) < n {
		return make([]graph.NodeID, n)
	}
	return buf[:n]
}

// nextEpoch advances and returns the scratch epoch, growing the stamped
// arrays to k·n entries. Epoch 0 is never current, so freshly grown
// (zeroed) stamp arrays read as "stale" everywhere — exactly the
// uninitialized semantics the dense sweep state needs.
func (s *scratch) nextEpoch(kn int) uint32 {
	s.epoch++
	s.ccStamp = grownU32(s.ccStamp, kn)
	s.bcStamp = grownU32(s.bcStamp, kn)
	if s.epoch == 0 { // wrapped: invalidate everything explicitly
		for i := range s.ccStamp {
			s.ccStamp[i] = 0
		}
		for i := range s.bcStamp {
			s.bcStamp[i] = 0
		}
		s.epoch = 1
	}
	return s.epoch
}

// childIndex is the flat per-call child index over a tree collection:
// children of node v in tree t occupy list[start[t*(n+1)+v] :
// start[t*(n+1)+v+1]], in the same order Tree.Children would list them
// (tree-members order). Offsets are absolute into list.
type childIndex struct {
	n     int
	start []int32
	list  []graph.NodeID
}

func (ci *childIndex) children(t int, v graph.NodeID) []graph.NodeID {
	base := t*(ci.n+1) + v
	return ci.list[ci.start[base]:ci.start[base+1]]
}

// buildChildIndex flattens the child lists of every tree into pooled
// storage: count, prefix-sum, fill in members order — the exact per-parent
// order the historical per-call Tree.Children allocation produced.
func (nw *Network) buildChildIndex(trees []*graph.Tree) childIndex {
	n := nw.g.N()
	k := len(trees)
	total := 0
	for _, tr := range trees {
		total += len(tr.Members)
	}
	s := &nw.scr
	s.ciStart = grownI32(s.ciStart, k*(n+1))
	s.ciNext = grownI32(s.ciNext, n)
	s.ciList = grownNodes(s.ciList, total)
	pos := int32(0)
	for t, tr := range trees {
		row := s.ciStart[t*(n+1) : (t+1)*(n+1)]
		for i := range row {
			row[i] = 0
		}
		for _, v := range tr.Members {
			if p := tr.Parent[v]; p != -1 {
				row[p+1]++
			}
		}
		row[0] = pos
		for v := 0; v < n; v++ {
			row[v+1] += row[v]
		}
		next := s.ciNext[:n]
		copy(next, row[:n])
		for _, v := range tr.Members {
			if p := tr.Parent[v]; p != -1 {
				s.ciList[next[p]] = v
				next[p]++
			}
		}
		pos = row[n]
	}
	return childIndex{n: n, start: s.ciStart, list: s.ciList[:pos]}
}
