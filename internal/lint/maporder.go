package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder returns the maporder analyzer: in non-test internal/... code,
// `range` over a map is flagged unless the loop only collects keys/values
// into slices that are subsequently sorted in the same block — the
// collect-then-sort idiom (see internal/shortcut/region.go, separator
// folding). Go randomizes map iteration order per execution, so any other
// map range can leak schedule nondeterminism into measured round counts.
func MapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc: "flags range over a map in internal packages unless the keys are " +
			"collected into a slice and sorted before use",
		Run: runMapOrder,
	}
}

func runMapOrder(p *Package) []Diagnostic {
	if !underInternal(p.Path) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectThenSort(p, rs, stack) {
				return true
			}
			out = append(out, diag(p, rs, "maporder",
				"range over map %s is iteration-order nondeterministic; collect keys, sort, then sweep (internal/shortcut/region.go pattern), or //%s maporder <why order cannot matter>",
				types.TypeString(t, types.RelativeTo(p.Types)), AllowDirective))
			return true
		})
	}
	return out
}

// collectThenSort reports whether rs is the blessed idiom: the loop body
// only collects loop variables (or expressions over them) into slices —
// append assignments, possibly behind filtering if/continue — and at least
// one of those slices is later passed to a sort call in the enclosing block.
func collectThenSort(p *Package, rs *ast.RangeStmt, stack []ast.Node) bool {
	targets := make(map[string]bool)
	if !collectOnly(rs.Body.List, targets) || len(targets) == 0 {
		return false
	}
	// Find the statement list holding rs and scan the statements after it
	// for a call whose name mentions sorting and whose arguments mention a
	// collection target.
	block := enclosingStmts(rs, stack)
	if block == nil {
		return false
	}
	after := false
	for _, st := range block {
		if st == ast.Stmt(rs) {
			after = true
			continue
		}
		if !after {
			continue
		}
		sorted := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isSortCall(call) {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && targets[id.Name] {
					sorted = true
					return false
				}
			}
			return true
		})
		if sorted {
			return true
		}
	}
	return false
}

// collectOnly reports whether every statement is an append into a slice
// (recorded in targets), a filtering if around such appends, or a continue.
func collectOnly(stmts []ast.Stmt, targets map[string]bool) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				return false
			}
			targets[lhs.Name] = true
		case *ast.IfStmt:
			if !collectOnly(s.Body.List, targets) {
				return false
			}
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					if !collectOnly(e.List, targets) {
						return false
					}
				case *ast.IfStmt:
					if !collectOnly([]ast.Stmt{e}, targets) {
						return false
					}
				default:
					return false
				}
			}
		case *ast.BranchStmt:
			if s.Label != nil {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// enclosingStmts returns the statement list that directly contains rs.
func enclosingStmts(rs *ast.RangeStmt, stack []ast.Node) []ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		for _, st := range list {
			if st == ast.Stmt(rs) {
				return list
			}
		}
	}
	return nil
}

// isSortCall recognizes sort.X(...) and helper functions whose name
// contains "sort" (sortNodeIDs, sortEdgeIDs, ...).
func isSortCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fn.Name), "sort")
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok && (pkg.Name == "sort" || pkg.Name == "slices") {
			return true
		}
		return strings.Contains(strings.ToLower(fn.Sel.Name), "sort")
	}
	return false
}
