# Local and CI entry points — .github/workflows/ci.yml runs exactly these
# targets, so a green `make check` locally means a green CI run.

GO ?= go

.PHONY: check build vet lint test bench

check: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# distlint enforces the determinism and metrics-integrity invariants the
# simulator's measured round counts rest on (see internal/lint).
lint:
	$(GO) run ./cmd/distlint ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
