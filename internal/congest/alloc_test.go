//go:build !race

// Allocation-regression guards for the engine's pooled hot paths. The race
// runtime changes allocation behaviour, so these run only in the plain
// test pass (`make alloc-check`); the race pass covers the same code for
// correctness.
package congest

import (
	"testing"

	"distlap/internal/graph"
)

// TestExchangeSteadyStateAllocs pins the Exchange fast path at zero
// steady-state allocations: after the first round warms the pooled delivery
// buffer, every further round runs entirely on reused scratch.
func TestExchangeSteadyStateAllocs(t *testing.T) {
	g := graph.Grid(12, 12)
	nw := NewNetwork(g, Options{Supported: true, Seed: 3})
	round := func() {
		nw.Exchange(
			func(v graph.NodeID, h graph.Half) (Word, bool) { return Word(v), true },
			func(v graph.NodeID, h graph.Half, w Word) {},
		)
	}
	round() // warm the pooled delivery buffer
	if a := testing.AllocsPerRun(10, round); a > 0 {
		t.Fatalf("steady-state Exchange allocates %.1f per round, want 0", a)
	}
}

// TestAggregateManySteadyStateAllocs pins the tree-aggregation pipeline
// (convergecast + broadcast over shared scheduler/state pools) at its
// documented steady-state budget: exactly the returned per-tree result
// slice, nothing per round or per member.
func TestAggregateManySteadyStateAllocs(t *testing.T) {
	g := graph.Grid(12, 12)
	nw := NewNetwork(g, Options{Supported: true, Seed: 3})
	tr := graph.BFSTree(g, 0)
	trees := []*graph.Tree{tr, tr, tr}
	val := func(t int, v graph.NodeID) Word { return Word(v % 5) }
	agg := func() {
		if _, err := nw.AggregateMany(trees, val, AggSum); err != nil {
			t.Fatal(err)
		}
	}
	agg() // warm scheduler queues, dense state, child index
	agg()
	const budget = 1 // the returned []Word only
	if a := testing.AllocsPerRun(10, agg); a > budget {
		t.Fatalf("steady-state AggregateMany allocates %.1f per call, budget %d", a, budget)
	}
}
