package core

import (
	"errors"
	"fmt"

	"distlap/internal/graph"
	"distlap/internal/linalg"
	"distlap/internal/seedderive"
	"distlap/internal/shortcut"
)

// Preconditioner is a distributed preconditioner: Setup may build
// communication structures (charged to the comm), Apply computes z ≈ L⁻¹ r
// using comm primitives only.
type Preconditioner interface {
	Name() string
	Setup(c Comm) error
	Apply(c Comm, r []float64) ([]float64, error)
}

// IdentityPrecond is plain (unpreconditioned) CG.
type IdentityPrecond struct{}

var _ Preconditioner = (*IdentityPrecond)(nil)

// Name implements Preconditioner.
func (*IdentityPrecond) Name() string { return "identity" }

// Setup implements Preconditioner.
func (*IdentityPrecond) Setup(Comm) error { return nil }

// Apply implements Preconditioner.
func (*IdentityPrecond) Apply(_ Comm, r []float64) ([]float64, error) {
	return linalg.Copy(r), nil
}

// JacobiPrecond scales by inverse weighted degrees — knowledge every node
// has locally, so Apply is communication-free.
type JacobiPrecond struct {
	invDeg []float64
}

var _ Preconditioner = (*JacobiPrecond)(nil)

// Name implements Preconditioner.
func (*JacobiPrecond) Name() string { return "jacobi" }

// Setup implements Preconditioner.
func (p *JacobiPrecond) Setup(c Comm) error {
	d := linalg.NewLaplacian(c.Graph()).Degrees()
	p.invDeg = make([]float64, len(d))
	for i, v := range d {
		if v > 0 {
			p.invDeg[i] = 1 / v
		}
	}
	return nil
}

// Apply implements Preconditioner.
func (p *JacobiPrecond) Apply(_ Comm, r []float64) ([]float64, error) {
	if len(r) != len(p.invDeg) {
		return nil, linalg.ErrDimension
	}
	z := make([]float64, len(r))
	for i := range r {
		z[i] = r[i] * p.invDeg[i]
	}
	return z, nil
}

// TreePrecond solves the spanning-tree Laplacian L_T z = r exactly with one
// upward subtree-sum sweep and one downward potential sweep (cost Θ(tree
// height) rounds per apply). By default it uses the comm's global BFS
// tree; with LowStretch set it builds an MPX-based low-stretch spanning
// tree instead (the preconditioning tree family of the sequential
// Laplacian-paradigm solvers), trading tree height for stretch.
type TreePrecond struct {
	// LowStretch selects the AKPW/MPX low-stretch tree instead of the BFS
	// tree; Seed drives its randomness.
	LowStretch bool
	Seed       int64

	tree *graph.Tree
}

var _ Preconditioner = (*TreePrecond)(nil)

// Name implements Preconditioner.
func (*TreePrecond) Name() string { return "tree" }

// Setup implements Preconditioner.
func (p *TreePrecond) Setup(c Comm) error {
	if p.LowStretch {
		tr := graph.LowStretchTree(c.Graph(), p.Seed)
		if len(tr.Members) != c.Graph().N() {
			return errors.New("core: low-stretch tree does not span")
		}
		p.tree = tr
		return nil
	}
	type globalTreer interface{ GlobalTree() *graph.Tree }
	switch cc := c.(type) {
	case *CongestComm:
		p.tree = cc.GlobalTree()
	case *HybridComm:
		p.tree = cc.local.GlobalTree()
	default:
		if gt, ok := c.(globalTreer); ok {
			p.tree = gt.GlobalTree()
		} else {
			return errors.New("core: comm exposes no global tree")
		}
	}
	return nil
}

// Apply implements Preconditioner: solve the tree Laplacian. With subtree
// sums S(v) of the (mean-centered) residual, the potentials satisfy
// z(child) = z(parent) + S(child)/w(parent edge), z(root) = 0.
func (p *TreePrecond) Apply(c Comm, r []float64) ([]float64, error) {
	g := c.Graph()
	if len(r) != g.N() {
		return nil, linalg.ErrDimension
	}
	// The residual is mean-zero (PCG keeps it so), hence exactly in the
	// tree Laplacian's range; recenter defensively anyway.
	rc := linalg.Copy(r)
	linalg.CenterMean(rc)
	c.Tracer().Begin("tree-sweep")
	defer c.Tracer().End("tree-sweep")
	pots, err := c.TreeUpDown([]*graph.Tree{p.tree},
		func(_ int, v graph.NodeID) float64 { return rc[v] },
		func(_ int, _ float64) float64 { return 0 },
		func(_ int, _, child graph.NodeID, parentVal, childSubtree float64) float64 {
			w := float64(g.Edge(p.tree.ParentEdge[child]).Weight)
			return parentVal + childSubtree/w
		})
	if err != nil {
		return nil, err
	}
	// The tree spans every node, so the whole dense row is defined.
	z := make([]float64, g.N())
	copy(z, pots[0])
	linalg.CenterMean(z)
	return z, nil
}

// SchwarzPrecond is the overlapping-cluster additive Schwarz preconditioner
// — the component that exercises the congested part-wise aggregation
// primitive: every node belongs to Overlap clusters (p = Overlap in
// Definition 13), and each Apply runs concurrent tree solves over all
// cluster trees at measured congested cost.
type SchwarzPrecond struct {
	TargetSize int    // approximate cluster size (nodes)
	Overlap    int    // p: number of overlapping cluster covers
	Seed       int64  // cover-generation seed
	Method     string // cover generator: "" / "random" | "mpx"

	clusters [][]graph.NodeID
	member   []bool // flat k×n cluster membership: member[t*n+v]
	n        int
	trees    []*graph.Tree
	count    []float64 // per node: #clusters containing it
	invDeg   []float64 // Jacobi smoothing term (see Apply)
}

// inCluster reports whether v belongs to cluster t (flat array probe; the
// hot test of every leaf callback in Apply).
func (p *SchwarzPrecond) inCluster(t int, v graph.NodeID) bool {
	return p.member[t*p.n+v]
}

var _ Preconditioner = (*SchwarzPrecond)(nil)

// NewSchwarzPrecond returns a Schwarz preconditioner with the given
// approximate cluster size and overlap p.
func NewSchwarzPrecond(targetSize, overlap int, seed int64) *SchwarzPrecond {
	return &SchwarzPrecond{TargetSize: targetSize, Overlap: overlap, Seed: seed}
}

// Name implements Preconditioner.
func (p *SchwarzPrecond) Name() string { return "schwarz" }

// Setup implements Preconditioner: build Overlap independent connected
// partitions (covers) and materialize their aggregation trees through the
// comm (whose universal/naive mode decides the tree shapes).
func (p *SchwarzPrecond) Setup(c Comm) error {
	g := c.Graph()
	n := g.N()
	if p.TargetSize < 2 {
		p.TargetSize = 2
	}
	if p.Overlap < 1 {
		p.Overlap = 1
	}
	k := n / p.TargetSize
	if k < 1 {
		k = 1
	}
	p.clusters = nil
	for l := 0; l < p.Overlap; l++ {
		var parts [][]graph.NodeID
		switch p.Method {
		case "", "random":
			parts = shortcut.RandomConnectedPartition(g, k, seedderive.Derive(p.Seed, "cluster-cover", int64(l)))
		case "mpx":
			// Beta tuned so the expected cluster size matches TargetSize.
			beta := 2.0 / float64(p.TargetSize)
			parts = graph.MPXDecomposition(g, graph.MPXOptions{
				Beta: beta, Seed: seedderive.Derive(p.Seed, "cluster-cover-mpx", int64(l)),
			})
		default:
			return fmt.Errorf("core: unknown cluster method %q", p.Method)
		}
		if parts == nil {
			return fmt.Errorf("core: cluster cover %d failed", l)
		}
		p.clusters = append(p.clusters, parts...)
	}
	c.Tracer().Begin("cluster-trees")
	trees, err := c.ClusterTrees(p.clusters)
	c.Tracer().End("cluster-trees")
	if err != nil {
		return err
	}
	p.trees = trees
	p.n = n
	p.member = make([]bool, len(p.clusters)*n)
	p.count = make([]float64, n)
	for i, cl := range p.clusters {
		for _, v := range cl {
			p.member[i*n+v] = true
			p.count[v]++
		}
	}
	for v := range p.count {
		if p.count[v] == 0 { //distlint:allow floateq count holds small exact integers; == 0 means uncovered node
			return fmt.Errorf("core: node %d in no cluster", v)
		}
	}
	d := linalg.NewLaplacian(g).Degrees()
	p.invDeg = make([]float64, n)
	for v, deg := range d {
		if deg > 0 {
			p.invDeg[v] = 1 / deg
		}
	}
	return nil
}

// Clusters exposes the cluster node sets (experiments report p and sizes).
func (p *SchwarzPrecond) Clusters() [][]graph.NodeID { return p.clusters }

// Apply implements Preconditioner: concurrent per-cluster tree solves of
// the residual restricted to each cluster, each solution centered within
// its cluster, averaged per node over its clusters.
func (p *SchwarzPrecond) Apply(c Comm, r []float64) ([]float64, error) {
	g := c.Graph()
	if len(r) != g.N() {
		return nil, linalg.ErrDimension
	}
	tr := c.Tracer()
	// Restrict-and-center the residual per cluster so each local system is
	// solvable: leaf value = r(v) − mean_cluster(r) for members, 0 for
	// relay nodes (naive-mode Steiner trees contain relays). Only the root
	// totals are needed, so this is a TreeTotals — charge-equivalent to the
	// identity-transform TreeUpDown it replaces.
	tr.Begin("restrict")
	clusterSum, err := c.TreeTotals(p.trees,
		func(t int, v graph.NodeID) float64 {
			if p.inCluster(t, v) {
				return r[v]
			}
			return 0
		},
	)
	tr.End("restrict")
	if err != nil {
		return nil, err
	}
	means := make([]float64, len(p.trees))
	for t := range p.trees {
		means[t] = clusterSum[t] / float64(len(p.clusters[t]))
	}
	tr.Begin("sweep")
	pots, err := c.TreeUpDown(p.trees,
		func(t int, v graph.NodeID) float64 {
			if p.inCluster(t, v) {
				return r[v] - means[t]
			}
			return 0
		},
		func(_ int, _ float64) float64 { return 0 },
		func(t int, _, child graph.NodeID, parentVal, childSubtree float64) float64 {
			w := float64(g.Edge(p.trees[t].ParentEdge[child]).Weight)
			return parentVal + childSubtree/w
		},
	)
	tr.End("sweep")
	if err != nil {
		return nil, err
	}
	// Center each cluster's potentials over its members. The member
	// potential sums travel through one more (charged) up-and-broadcast
	// sweep so every member learns its cluster's mean. pots stays valid
	// across it: TreeTotals runs on the engine's aggregation pools, not the
	// comm's sweep buffer (the Comm retention contract).
	tr.Begin("center")
	potSum, err := c.TreeTotals(p.trees,
		func(t int, v graph.NodeID) float64 {
			if p.inCluster(t, v) {
				return pots[t][v]
			}
			return 0
		},
	)
	tr.End("center")
	if err != nil {
		return nil, err
	}
	z := make([]float64, g.N())
	for t, tree := range p.trees {
		mean := potSum[t] / float64(len(p.clusters[t]))
		row := pots[t]
		for _, v := range tree.Members {
			if p.inCluster(t, v) {
				z[v] += (row[v] - mean) / p.count[v]
			}
		}
	}
	// Jacobi smoothing term: without it the cluster-centered operator can
	// acquire a kernel beyond the constants (e.g. when two covers contain
	// an identical isolated cluster), which stalls PCG. Adding D⁻¹ keeps
	// the preconditioner strictly SPD on the mean-zero subspace; it is
	// communication-free.
	for v := range z {
		z[v] += p.invDeg[v] * r[v]
	}
	linalg.CenterMean(z)
	return z, nil
}
