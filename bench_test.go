package distlap_test

// One benchmark per experiment table (DESIGN.md §3): each BenchmarkE<k>
// re-runs the corresponding experiment's measurement loop (quick sweeps) so
// `go test -bench=.` regenerates every series' workload. The printed
// tables themselves come from `go run ./cmd/experiments`.

import (
	"context"
	"testing"

	"distlap"
	"distlap/internal/experiments"
	"distlap/internal/linalg"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1_CongestedVsDecomposition(b *testing.B)   { benchExperiment(b, "E1") }
func BenchmarkE2_LayeredSimulation(b *testing.B)          { benchExperiment(b, "E2") }
func BenchmarkE3_LayeredTreewidth(b *testing.B)           { benchExperiment(b, "E3") }
func BenchmarkE4_MinorDensityBlowup(b *testing.B)         { benchExperiment(b, "E4") }
func BenchmarkE5_LayeredShortcutQuality(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE6_TreewidthCongestedPWA(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7_GeneralCongestedPWA(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8_NCCCongestedPWA(b *testing.B)            { benchExperiment(b, "E8") }
func BenchmarkE9a_SolverAccuracyScaling(b *testing.B)     { benchExperiment(b, "E9a") }
func BenchmarkE9b_UniversalVsExistential(b *testing.B)    { benchExperiment(b, "E9b") }
func BenchmarkE10_HybridSolver(b *testing.B)              { benchExperiment(b, "E10") }
func BenchmarkE11_SpanningConnectedSubgraph(b *testing.B) { benchExperiment(b, "E11") }

func BenchmarkE12_AnyToAnyCast(b *testing.B) { benchExperiment(b, "E12") }

func BenchmarkE13_ApproxMaxFlow(b *testing.B) { benchExperiment(b, "E13") }

func BenchmarkE14_LowStretchTrees(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkSuiteParallel runs the whole quick suite through the parallel
// harness at the default pool width (GOMAXPROCS) — the same code path
// `make bench` exercises. Compare against BenchmarkSuiteSequential to see
// the worker pool's effect on this machine; results are byte-identical
// either way (see TestParallelParity in internal/experiments).
func BenchmarkSuiteParallel(b *testing.B)   { benchSuite(b, 0) }
func BenchmarkSuiteSequential(b *testing.B) { benchSuite(b, 1) }

func benchSuite(b *testing.B, parallel int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, id := range experiments.IDs() {
			tbl, err := experiments.RunWith(id, experiments.Config{Quick: true, Parallel: parallel})
			if err != nil {
				b.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				b.Fatal("empty table")
			}
		}
	}
}

// BenchmarkSolveCold vs BenchmarkInstanceResolve measure the amortization
// the prepared-Instance API buys: the cold path rebuilds the full per-graph
// setup (trees, cluster covers, preconditioner state) on every solve, while
// the instance path prepares once outside the timed loop and each timed
// solve pays iteration only. Neither feeds the gated BENCH metrics — this
// pair exists for `go test -bench Solve` comparisons on a developer box.

func benchGraphAndRHS() (*distlap.Graph, []float64) {
	for _, f := range distlap.Families() {
		if f.Name == "grid" {
			g := f.Make(100)
			return g, linalg.RandomBVector(g.N(), 5)
		}
	}
	panic("no grid family")
}

func BenchmarkSolveCold(b *testing.B) {
	g, rhs := benchGraphAndRHS()
	sv := distlap.NewSolver(distlap.WithEps(1e-8), distlap.WithSeed(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Solve(g, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstanceResolve(b *testing.B) {
	g, rhs := benchGraphAndRHS()
	sv := distlap.NewSolver(distlap.WithEps(1e-8), distlap.WithSeed(1))
	inst, err := sv.Prepare(context.Background(), g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Solve(context.Background(), rhs, distlap.WithRequestSeed(1)); err != nil {
			b.Fatal(err)
		}
	}
}
