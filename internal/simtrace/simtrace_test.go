package simtrace

import (
	"bytes"
	"strings"
	"testing"
)

func TestInMemoryExclusiveAttribution(t *testing.T) {
	m := NewInMemory()
	m.Rounds(EngineCongest, 2) // untracked
	m.Begin("solve")
	m.Rounds(EngineCongest, 3)
	m.Begin("precond")
	m.Rounds(EngineCongest, 5)
	m.Messages(EngineCongest, 4, 7)
	m.End("precond")
	m.Rounds(EngineCongest, 1)
	m.End("solve")

	if got := m.PhaseRounds(""); got != 2 {
		t.Errorf("untracked rounds = %d, want 2", got)
	}
	if got := m.PhaseRounds("solve"); got != 4 {
		t.Errorf("solve exclusive rounds = %d, want 4 (must exclude child)", got)
	}
	if got := m.PhaseRounds("solve/precond"); got != 5 {
		t.Errorf("solve/precond rounds = %d, want 5", got)
	}

	// The exclusivity identity: phase rounds (incl. untracked) sum to the
	// engine total.
	sum := 0
	for _, st := range m.Phases() {
		sum += st.Rounds
	}
	if sum != m.TotalRounds() || sum != 11 {
		t.Errorf("phase rounds sum %d, engine total %d, want 11", sum, m.TotalRounds())
	}
	if m.OpenSpans() != 0 {
		t.Errorf("%d spans left open", m.OpenSpans())
	}
}

func TestInMemoryRepeatedSpansAccumulate(t *testing.T) {
	m := NewInMemory()
	for i := 0; i < 3; i++ {
		m.Begin("iter")
		m.Rounds(EngineCongest, 2)
		m.End("iter")
	}
	ph := m.Phases()
	if len(ph) != 1 || ph[0].Path != "iter" || ph[0].Count != 3 || ph[0].Rounds != 6 {
		t.Errorf("phases = %+v, want one path iter count=3 rounds=6", ph)
	}
}

func TestEdgeLoadsAndCounters(t *testing.T) {
	m := NewInMemory()
	m.Messages(EngineCongest, 0, 1)
	m.Messages(EngineCongest, 5, 10)
	m.Messages(EngineCongest, 5, 1)
	m.Messages(EngineNCC, NoEdge, 100) // clique deliveries: no edge identity
	m.Counter("ncc.drops", 4)
	m.Counter("ncc.drops", 1)

	top := m.TopEdges(EngineCongest, 1)
	if len(top) != 1 || top[0].Edge != 5 || top[0].Words != 11 {
		t.Errorf("top edge = %+v, want edge 5 with 11 words", top)
	}
	if len(m.TopEdges(EngineNCC, 10)) != 0 {
		t.Error("NoEdge deliveries must not create edge entries")
	}
	if got := m.CounterValue("ncc.drops"); got != 5 {
		t.Errorf("ncc.drops = %d, want 5", got)
	}
	if got := m.EngineRounds(EngineCongest); got != 0 {
		t.Errorf("messages must not add rounds, got %d", got)
	}
}

func TestLoadBuckets(t *testing.T) {
	cases := []struct {
		words int64
		want  int
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}}
	for _, c := range cases {
		if got := loadBucket(c.words); got != c.want {
			t.Errorf("loadBucket(%d) = %d, want %d", c.words, got, c.want)
		}
	}
}

// traceScript drives a fixed event sequence into a collector.
func traceScript(c Collector) {
	c.Begin("solve")
	c.Rounds(EngineCongest, 1)
	c.Begin("matvec")
	c.Rounds(EngineCongest, 1)
	c.Messages(EngineCongest, 3, 4)
	c.End("matvec")
	c.End("solve")
	c.Counter("k", 2)
	c.Rounds(EngineNCC, 7)
}

func TestJSONLByteStable(t *testing.T) {
	var a, b bytes.Buffer
	ja, jb := NewJSONL(&a), NewJSONL(&b)
	traceScript(ja)
	traceScript(jb)
	if err := ja.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := jb.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical scripts produced different JSONL:\n%s\nvs\n%s", a.String(), b.String())
	}
	for _, want := range []string{
		`{"ev":"begin","path":"solve"}`,
		`{"ev":"end","path":"solve/matvec","rounds":1,"messages":4}`,
		`{"ev":"untracked","rounds":7,"messages":0}`,
		`{"ev":"engine","engine":"congest","rounds":2,"messages":4}`,
		`{"ev":"phase","path":"solve/matvec","count":1,"rounds":1,"messages":4}`,
		`{"ev":"counter","name":"k","value":2}`,
		`{"ev":"edge","engine":"congest","edge":3,"words":4}`,
	} {
		if !strings.Contains(a.String(), want+"\n") {
			t.Errorf("JSONL missing record %s; got:\n%s", want, a.String())
		}
	}
}

func TestOrNop(t *testing.T) {
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Error("OrNop(nil) must be Nop")
	}
	m := NewInMemory()
	if OrNop(m) != Collector(m) {
		t.Error("OrNop must pass non-nil collectors through")
	}
}
