package experiments

// The chaos tier C1–C2: fault-injected experiments exercising the
// robustness path of DESIGN.md §9 — the deterministic fault plans of
// internal/faultinject and the solver's self-checking recovery loop. They
// live in their own registry, gated behind `cmd/experiments -chaos`, so
// the E-series tables (and the bench baselines built on experiments.IDs())
// are untouched by the tier's existence.
//
// Determinism obligations are identical to the E-series: every sweep point
// owns its instance, request seed, fault plan and collector, so tables are
// byte-identical across repeats and -parallel widths. `make chaos-smoke`
// pins exactly that.

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"distlap/internal/core"
	"distlap/internal/faultinject"
	"distlap/internal/graph"
	"distlap/internal/linalg"
	"distlap/internal/seedderive"
	"distlap/internal/simtrace"
)

// ChaosRegistry maps chaos-tier experiment IDs to runners.
func ChaosRegistry() map[string]Runner {
	return map[string]Runner{
		"C1": C1,
		"C2": C2,
	}
}

// ChaosIDs returns the chaos-tier experiment IDs in canonical order.
func ChaosIDs() []string {
	ids := make([]string, 0, len(ChaosRegistry()))
	for id := range ChaosRegistry() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// chaosOutcome condenses a recovered solve into one table cell.
func chaosOutcome(res *core.Result, err error) string {
	switch {
	case err != nil:
		return "error"
	case res.Metrics.Degraded:
		return "degraded"
	default:
		return "ok"
	}
}

// C1 — fault-rate sweep: solver behavior versus the message drop rate on a
// fixed grid. The interesting shape: under fair loss with retransmission,
// rounds grow roughly linearly with the drop rate while the verified
// residual stays at tolerance, until the rate is high enough that attempts
// start failing and the recovery ladder reports degradation.
func C1(cfg Config) (*Table, error) {
	rates := []float64{0, 0.01, 0.02, 0.05, 0.10, 0.20}
	if cfg.Quick {
		rates = []float64{0, 0.05, 0.20}
	}
	t := &Table{
		ID:     "C1",
		Title:  "recovered solve vs drop rate (fair-lossy links, DESIGN.md §9)",
		Header: []string{"drop", "outcome", "attempts", "faults", "iterations", "rounds", "residual"},
		Notes:  "retransmission turns drops into rounds: residual holds at tolerance while rounds grow",
	}
	g := graph.Grid(8, 8)
	inst, err := core.PrepareInstance(context.Background(), g, core.PrepareConfig{
		Mode: core.ModeUniversal, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	var pts []point
	for i, rate := range rates {
		i, rate := i, rate
		pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
			b := linalg.RandomBVector(g.N(), 5)
			req := core.Request{Tol: 1e-6, Seed: seedderive.Derive(1, "chaos/C1", int64(i)), Trace: tr}
			if rate > 0 {
				req.Faults = faultinject.MustNew(faultinject.Spec{Seed: 40 + int64(i), DropProb: rate})
			}
			res, err := inst.Solve(b, req)
			if err != nil {
				return row(fmt.Sprintf("%.0f%%", rate*100), "error", "-", "-", "-", "-", "-"), nil
			}
			return row(
				fmt.Sprintf("%.0f%%", rate*100),
				chaosOutcome(res, nil),
				itoa(res.Metrics.Attempts),
				itoa(int(res.Metrics.FaultsObserved)),
				itoa(res.Iterations),
				itoa(res.Rounds),
				fmt.Sprintf("%.1e", res.Residual),
			), nil
		})
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// C2 — fault-mix matrix: the recovery ladder's response to each adversarial
// fault kind, per communication mode. Drops are recoverable transport
// noise; duplications and delays corrupt values (caught by the residual
// check, answered with retries); crashes silence nodes permanently (tree
// completeness failures, degradation or loud errors). Every cell's outcome
// is verified-or-loud — "silently wrong" is not a value this column can
// take.
func C2(cfg Config) (*Table, error) {
	type mix struct {
		name string
		spec faultinject.Spec
		tol  float64 // 0 selects 1e-6
	}
	mixes := []mix{
		{name: "drop-5%", spec: faultinject.Spec{DropProb: 0.05}},
		{name: "dup-5%", spec: faultinject.Spec{DupProb: 0.05}},
		// Mild staleness at a moderate target: the regime where full-
		// tolerance attempts fail but the ladder's coarser rung verifies —
		// the table's "degraded" outcome.
		{name: "delay-0.5%", spec: faultinject.Spec{DelayProb: 0.005, MaxDelay: 2}, tol: 1e-2},
		{name: "delay-10%", spec: faultinject.Spec{DelayProb: 0.10, MaxDelay: 3}},
		{name: "flaky-links", spec: faultinject.Spec{FlakyLinkProb: 0.05, FlakyDropProb: 0.5}},
		{name: "crash-10%", spec: faultinject.Spec{CrashProb: 0.10, CrashWindow: 64}},
		{name: "storm", spec: faultinject.Spec{DropProb: 0.10, DupProb: 0.05, DelayProb: 0.10, CrashProb: 0.05}},
	}
	modes := []core.Mode{core.ModeUniversal, core.ModeBaseline, core.ModeHybrid}
	if cfg.Quick {
		mixes = []mix{mixes[0], mixes[2], mixes[6]}
		modes = []core.Mode{core.ModeUniversal, core.ModeHybrid}
	}
	t := &Table{
		ID:     "C2",
		Title:  "recovery ladder vs fault mix × mode (never hangs, never silently wrong)",
		Header: []string{"mix", "mode", "outcome", "attempts", "faults", "residual"},
		Notes:  "outcome ∈ {ok, degraded, error}: every returned residual is locally verified",
	}
	var pts []point
	for mi, m := range mixes {
		for _, mode := range modes {
			m, mode, mi := m, mode, mi
			pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
				g := graph.Grid(7, 7)
				inst, err := core.PrepareInstance(context.Background(), g, core.PrepareConfig{
					Mode: mode, Seed: 2,
				})
				if err != nil {
					return nil, err
				}
				spec := m.spec
				spec.Seed = 90 + int64(mi)
				tol := m.tol
				if tol == 0 { //distlint:allow floateq zero is the "default tolerance" sentinel
					tol = 1e-6
				}
				b := linalg.RandomBVector(g.N(), 6)
				res, err := inst.Solve(b, core.Request{
					Tol:    tol,
					Seed:   seedderive.Derive(2, "chaos/C2/"+m.name+"/"+string(mode), 0),
					Trace:  tr,
					Faults: faultinject.MustNew(spec),
				})
				if err != nil {
					return row(m.name, string(mode), "error", "-", "-", "-"), nil
				}
				return row(
					m.name, string(mode),
					chaosOutcome(res, nil),
					itoa(res.Metrics.Attempts),
					itoa(int(res.Metrics.FaultsObserved)),
					fmt.Sprintf("%.1e", res.Residual),
				), nil
			})
		}
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// lookupRunner resolves an ID across the E-series and chaos registries.
func lookupRunner(id string) (Runner, bool) {
	if r, ok := Registry()[id]; ok {
		return r, true
	}
	r, ok := ChaosRegistry()[id]
	return r, ok
}

// knownIDs lists every runnable ID (both tiers) for error messages.
func knownIDs() string {
	return strings.Join(append(IDs(), ChaosIDs()...), ", ")
}
