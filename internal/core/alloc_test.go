//go:build !race

// Allocation-regression guard for the steady-state PCG iteration. The race
// runtime changes allocation behaviour, so this runs only in the plain test
// pass (`make alloc-check`); the race pass covers the same code for
// correctness.
package core

import (
	"context"
	"testing"

	"distlap/internal/graph"
)

// iterAllocBudget bounds the marginal heap allocations of one steady-state
// PCG iteration on a prepared instance. The iteration's vectors (residual,
// search direction, reduction operands) and the engines' delivery/scheduler
// state are pooled, so what remains is the documented small fixed set: the
// preconditioner's output vector, the per-call result slices of the global
// reductions and tree primitives, and the variadic argument slices. ~18 on
// go1.x today; the budget leaves slack for toolchain drift, not for new
// per-iteration vectors — those belong in a pool.
const iterAllocBudget = 24

// TestPCGIterationAllocs measures the marginal allocations per PCG
// iteration by differencing two deterministic solves of different depths on
// one prepared instance (the fixed per-request cost — fresh engine, pools,
// result — cancels out).
func TestPCGIterationAllocs(t *testing.T) {
	g := graph.Grid(16, 16)
	in, err := PrepareInstance(context.Background(), g, PrepareConfig{Mode: ModeUniversal, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N())
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	mean := 0.0
	for _, v := range b {
		mean += v
	}
	mean /= float64(len(b))
	for i := range b {
		b[i] -= mean
	}

	solve := func(tol float64) (float64, int) {
		var iters int
		allocs := testing.AllocsPerRun(3, func() {
			res, err := in.Solve(b, Request{Tol: tol, Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			iters = res.Iterations
		})
		return allocs, iters
	}
	shallowAllocs, shallowIters := solve(1e-4)
	deepAllocs, deepIters := solve(1e-10)
	if deepIters <= shallowIters {
		t.Fatalf("tolerance sweep did not separate iteration counts: %d vs %d", shallowIters, deepIters)
	}
	perIter := (deepAllocs - shallowAllocs) / float64(deepIters-shallowIters)
	t.Logf("allocs: %d iters -> %.0f, %d iters -> %.0f; marginal %.2f/iteration (budget %d)",
		shallowIters, shallowAllocs, deepIters, deepAllocs, perIter, iterAllocBudget)
	if perIter > iterAllocBudget {
		t.Fatalf("steady-state PCG iteration allocates %.2f, budget %d — new per-iteration state belongs in a pool",
			perIter, iterAllocBudget)
	}
}
