package lint

import (
	"go/ast"
	"go/types"
)

// enginePkgs are the packages whose primitives report measurement-critical
// failures: a dropped error from one of them silently discards a failed
// exchange, an unflushed trace, or a broken embedding — the run keeps going
// and publishes wrong round counts.
var enginePkgs = []string{
	"distlap/internal/congest",
	"distlap/internal/ncc",
	"distlap/internal/simtrace",
	"distlap/internal/partwise",
	"distlap/internal/core",
	"distlap/internal/layered",
}

// ErrCheck returns the errcheck analyzer: inside internal/, a call to an
// engine-package function whose final result is an error must not appear as
// a bare statement (including `defer` and `go`). Assigning the error to `_`
// is visible intent and stays allowed; dropping it implicitly is flagged.
func ErrCheck() *Analyzer {
	return &Analyzer{
		Name:     "errcheck",
		Severity: SevError,
		Doc: "flags statement-level calls that drop an error returned by a " +
			"congest/ncc/simtrace/partwise/core/layered primitive",
		Run: runErrCheck,
	}
}

func runErrCheck(p *Package) []Diagnostic {
	if !underInternal(p.Path) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || !underAny(fn.Pkg().Path(), enginePkgs) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !lastResultIsError(sig) {
				return true
			}
			out = append(out, diag(p, n, "errcheck",
				"result of %s.%s includes an error that is silently dropped; handle it or assign it to _ explicitly",
				pkgBase(fn.Pkg().Path()), fn.Name()))
			return true
		})
	}
	return out
}

// calleeFunc resolves the function object a call statement invokes, or nil
// for conversions, builtins, and calls through function-typed values.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	e := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch fe := e.(type) {
	case *ast.Ident:
		id = fe
	case *ast.SelectorExpr:
		id = fe.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// lastResultIsError reports whether the signature's final result is the
// built-in error type.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
