// Regularized heat diffusion: solve (L + αI) x = demand on a sensor grid —
// an SDD (not pure-Laplacian) system handled through the grounded-
// Laplacian reduction. The regularization α controls how far heat from
// each source spreads before leaking to ground; the solver's rounds are
// measured on the CONGEST simulator.
//
//	go run ./examples/diffusion
package main

import (
	"fmt"
	"log"

	"distlap"
)

func main() {
	const side = 12
	var g *distlap.Graph
	for _, f := range distlap.Families() {
		if f.Name == "grid" {
			g = f.Make(side * side)
		}
	}

	// Two heat sources.
	demand := make([]float64, g.N())
	demand[side+1] = 1.0       // near the top-left
	demand[g.N()-side-2] = 0.5 // near the bottom-right

	for _, alpha := range []int64{1, 4, 16} {
		extra := make([]int64, g.N())
		for i := range extra {
			extra[i] = alpha
		}
		res, err := distlap.SolveSDD(g, extra, demand, distlap.ModeUniversal, 1e-8, 1)
		if err != nil {
			log.Fatal(err)
		}
		// How concentrated is the response? Report the mass near each
		// source vs total.
		total, near := 0.0, 0.0
		for v, x := range res.X {
			total += x
			r1, c1 := v/side, v%side
			if (abs(r1-1) <= 2 && abs(c1-1) <= 2) ||
				(abs(r1-(side-2)) <= 2 && abs(c1-(side-2)) <= 2) {
				near += x
			}
		}
		fmt.Printf("alpha=%-3d rounds=%-6d iters=%-3d  mass near sources: %4.1f%%\n",
			alpha, res.Rounds, res.Iterations, 100*near/total)
	}
	fmt.Println("\nlarger alpha → faster leak to ground → the response concentrates")
	fmt.Println("around each source (the regularization length-scale shrinks).")
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
