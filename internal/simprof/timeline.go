package simprof

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// timelineLevels are the intensity characters of the heatmap, lightest
// first; index 0 (a space) marks an empty bucket.
const timelineLevels = " .:*#@"

// Timeline renders the profile's round series as an ASCII heatmap: the
// execution's rounds are squashed into at most width buckets, one row per
// phase path shows where in the execution that phase's rounds were charged
// (intensity is row-relative), and summary rows show per-bucket message
// volume and the running max directed-edge load. When the trace carries
// fault-injection telemetry (the engines' "fault.<kind>" gauge streams,
// aligned to the series axis by stream position — see Record.AtRound), one
// marker row per fault kind shows where in the execution the plan struck —
// drops clustering under a convergecast phase explain that phase's
// stretched bucket. Requires a trace recorded by a series-enabled sink.
func Timeline(w io.Writer, p *Profile, width int) error {
	if len(p.Series) == 0 {
		return fmt.Errorf("simprof: trace has no series records — record it with a series-enabled sink (e.g. experiments -series -trace)")
	}
	if width < 1 {
		width = 1
	}
	maxRound := 0
	for _, s := range p.Series {
		if s.Round > maxRound {
			maxRound = s.Round
		}
	}
	cols := width
	if cols > maxRound {
		cols = maxRound
	}
	// bucket maps a 1-based cumulative round to its column. Gauge samples
	// emitted after the final round boundary overshoot the axis by one
	// (Record.AtRound) — clamp instead of dropping them.
	bucket := func(round int) int {
		if round < 1 {
			round = 1
		}
		if round > maxRound {
			round = maxRound
		}
		return (round - 1) * cols / maxRound
	}

	type row struct {
		label string
		cells []int64
		total int64
	}
	rowIdx := make(map[string]int)
	var rows []row
	msgs := make([]int64, cols)
	load := make([]int64, cols)
	var totalMsgs int64
	var finalLoad int64
	for _, s := range p.Series {
		b := bucket(s.Round)
		label := s.Path
		if label == "" {
			label = "(untracked)"
		}
		i, ok := rowIdx[label]
		if !ok {
			i = len(rows)
			rowIdx[label] = i
			rows = append(rows, row{label: label, cells: make([]int64, cols)})
		}
		rows[i].cells[b] += int64(s.Rounds)
		rows[i].total += int64(s.Rounds)
		msgs[b] += s.Messages
		totalMsgs += s.Messages
		if s.MaxLoad > load[b] {
			load[b] = s.MaxLoad
		}
		if s.MaxLoad > finalLoad {
			finalLoad = s.MaxLoad
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].total != rows[b].total {
			return rows[a].total > rows[b].total
		}
		return rows[a].label < rows[b].label
	})

	// Fault markers: one row per injected fault kind, counting events per
	// bucket from the engines' "fault.<kind>" gauge streams. Bucketing is
	// by AtRound — the cumulative series round the sample interleaved
	// with — so markers stay aligned with the phase rows even in traces
	// that concatenate several executions (each engine's own round counter
	// restarts per run; the stream position does not).
	var faults []row
	for _, g := range p.Gauges {
		if !strings.HasPrefix(g.Name, "fault.") {
			continue
		}
		fr := row{label: g.Name, cells: make([]int64, cols)}
		for _, s := range g.Samples {
			fr.cells[bucket(s.AtRound)]++
			fr.total++
		}
		faults = append(faults, fr)
	}
	sort.SliceStable(faults, func(a, b int) bool {
		if faults[a].total != faults[b].total {
			return faults[a].total > faults[b].total
		}
		return faults[a].label < faults[b].label
	})

	labelW := len("max edge load")
	for _, r := range rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	for _, r := range faults {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	fmt.Fprintf(w, "timeline: %d rounds over %d buckets (~%d rounds/bucket); intensity is row-relative\n",
		maxRound, cols, (maxRound+cols-1)/cols)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-*s |%s| %d rounds\n", labelW, r.label, heatline(r.cells), r.total)
	}
	fmt.Fprintf(w, "  %-*s |%s| %d total\n", labelW, "messages", heatline(msgs), totalMsgs)
	fmt.Fprintf(w, "  %-*s |%s| %d peak\n", labelW, "max edge load", heatline(load), finalLoad)
	for _, r := range faults {
		fmt.Fprintf(w, "  %-*s |%s| %d events\n", labelW, r.label, heatline(r.cells), r.total)
	}
	return nil
}

// heatline maps per-bucket values to intensity characters against the
// row's own maximum; zero buckets render as spaces.
func heatline(cells []int64) string {
	var max int64
	for _, v := range cells {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range cells {
		if v <= 0 || max == 0 {
			b.WriteByte(timelineLevels[0])
			continue
		}
		// Scale 1..max onto 1..len-1 (nonzero values always visible).
		idx := 1 + int(v*int64(len(timelineLevels)-2)/max)
		if idx > len(timelineLevels)-1 {
			idx = len(timelineLevels) - 1
		}
		b.WriteByte(timelineLevels[idx])
	}
	return b.String()
}
