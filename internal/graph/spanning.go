package graph

import "sort"

// Tree is a rooted spanning tree (or spanning forest component) of a graph,
// stored as parent pointers in the host graph's node ID space. Nodes outside
// the tree have Parent == -1 and InTree == false.
type Tree struct {
	Root       NodeID
	Parent     []NodeID // -1 for root and non-members
	ParentEdge []EdgeID // host-graph edge to parent; -1 where Parent == -1
	Depth      []int    // hop depth from root; -1 for non-members
	Members    []NodeID // member nodes in BFS order from the root
}

// Height returns the maximum depth of any member.
func (t *Tree) Height() int {
	h := 0
	for _, v := range t.Members {
		if t.Depth[v] > h {
			h = t.Depth[v]
		}
	}
	return h
}

// Contains reports whether v is a member of the tree.
func (t *Tree) Contains(v NodeID) bool {
	return v >= 0 && v < len(t.Depth) && t.Depth[v] >= 0
}

// Children returns, for each node, the list of its tree children (indexed by
// host node ID). Computing this is linear in the number of members.
func (t *Tree) Children() [][]NodeID {
	ch := make([][]NodeID, len(t.Parent))
	for _, v := range t.Members {
		if p := t.Parent[v]; p != -1 {
			ch[p] = append(ch[p], v)
		}
	}
	return ch
}

// BFSTree returns the BFS spanning tree of root's component.
func BFSTree(g *Graph, root NodeID) *Tree {
	res := BFS(g, root)
	t := &Tree{
		Root:       root,
		Parent:     res.Parent,
		ParentEdge: res.ParentEdge,
		Depth:      res.Dist,
		Members:    res.Order,
	}
	return t
}

// BFSTreeOfSubgraph returns the BFS tree of the subgraph of g induced by
// member nodes and the extra edges listed in extraEdges (which may leave the
// induced subgraph's edge set but must join member nodes), rooted at root.
// This is exactly the structure Proposition 6 aggregates over: G[P_i] ∪ H_i.
//
// The construction is entirely flat (stamp arrays and a count-then-fill
// restricted adjacency, no maps), Θ(n + m + Σ deg(member)) time; the BFS
// visits half-edges in edge-first-seen order — the order the historical
// map-based builder appended them in — so the returned tree is
// bit-identical to what that builder produced for every input.
func BFSTreeOfSubgraph(g *Graph, members []NodeID, extraEdges []EdgeID, root NodeID) *Tree {
	n := g.N()
	in := make([]bool, n)
	for _, v := range members {
		in[v] = true
	}
	// Collect the restricted edge set in first-seen order: induced edges in
	// (member-scan, neighbor-scan) order, then the extra edges. The order
	// matters — it fixes which parent a BFS tie resolves to.
	seen := make([]bool, g.M())
	edges := make([]EdgeID, 0, len(members)*2)
	for _, v := range members {
		for _, h := range g.Neighbors(v) {
			if in[h.To] && !seen[h.Edge] {
				seen[h.Edge] = true
				edges = append(edges, h.Edge)
			}
		}
	}
	for _, id := range extraEdges {
		if !seen[id] {
			seen[id] = true
			e := g.Edge(id)
			if in[e.U] && in[e.V] {
				edges = append(edges, id)
			}
		}
	}
	// Restricted adjacency as a CSR: count, prefix-sum, fill. Filling in
	// edge order keeps each node's half-edges in the same relative order a
	// per-edge append would have produced.
	start := make([]int32, n+1)
	for _, id := range edges {
		e := g.Edge(id)
		start[e.U+1]++
		start[e.V+1]++
	}
	for v := 0; v < n; v++ {
		start[v+1] += start[v]
	}
	next := make([]int32, n)
	copy(next, start[:n])
	halfTo := make([]int32, 2*len(edges))
	halfEdge := make([]int32, 2*len(edges))
	for _, id := range edges {
		e := g.Edge(id)
		halfTo[next[e.U]], halfEdge[next[e.U]] = int32(e.V), int32(id)
		next[e.U]++
		halfTo[next[e.V]], halfEdge[next[e.V]] = int32(e.U), int32(id)
		next[e.V]++
	}
	t := &Tree{
		Root:       root,
		Parent:     make([]NodeID, n),
		ParentEdge: make([]EdgeID, n),
		Depth:      make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.Parent[i] = -1
		t.ParentEdge[i] = -1
		t.Depth[i] = -1
	}
	t.Depth[root] = 0
	queue := make([]NodeID, 0, len(members))
	queue = append(queue, root)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		t.Members = append(t.Members, v)
		for i := start[v]; i < start[v+1]; i++ {
			to := NodeID(halfTo[i])
			if t.Depth[to] == -1 {
				t.Depth[to] = t.Depth[v] + 1
				t.Parent[to] = v
				t.ParentEdge[to] = EdgeID(halfEdge[i])
				queue = append(queue, to)
			}
		}
	}
	return t
}

// UnionFind is a disjoint-set forest with union by rank and path halving.
type UnionFind struct {
	parent []int
	rank   []byte
	count  int
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]byte, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y; it returns false if already joined.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Count returns the number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// MST returns the edge IDs of a minimum spanning forest of g (Kruskal),
// breaking weight ties by edge ID for determinism, together with its total
// weight.
func MST(g *Graph) ([]EdgeID, int64) {
	ids := make([]EdgeID, g.M())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ea, eb := g.Edge(ids[a]), g.Edge(ids[b])
		if ea.Weight != eb.Weight {
			return ea.Weight < eb.Weight
		}
		return ids[a] < ids[b]
	})
	uf := NewUnionFind(g.N())
	var picked []EdgeID
	var total int64
	for _, id := range ids {
		e := g.Edge(id)
		if uf.Union(e.U, e.V) {
			picked = append(picked, id)
			total += e.Weight
		}
	}
	return picked, total
}

// TreeFromEdges builds a rooted Tree from a set of forest edge IDs of g,
// rooted at root (only root's component becomes the tree).
func TreeFromEdges(g *Graph, edgeIDs []EdgeID, root NodeID) *Tree {
	adj := make(map[NodeID][]Half)
	for _, id := range edgeIDs {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], Half{To: e.V, Edge: id})
		adj[e.V] = append(adj[e.V], Half{To: e.U, Edge: id})
	}
	n := g.N()
	t := &Tree{
		Root:       root,
		Parent:     make([]NodeID, n),
		ParentEdge: make([]EdgeID, n),
		Depth:      make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.Parent[i] = -1
		t.ParentEdge[i] = -1
		t.Depth[i] = -1
	}
	t.Depth[root] = 0
	queue := []NodeID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		t.Members = append(t.Members, v)
		for _, h := range adj[v] {
			if t.Depth[h.To] == -1 {
				t.Depth[h.To] = t.Depth[v] + 1
				t.Parent[h.To] = v
				t.ParentEdge[h.To] = h.Edge
				queue = append(queue, h.To)
			}
		}
	}
	return t
}

// PathInTree returns the node sequence from u up to the lowest common
// ancestor of u and v and down to v along tree t (inclusive of endpoints).
func PathInTree(t *Tree, u, v NodeID) []NodeID {
	if !t.Contains(u) || !t.Contains(v) {
		return nil
	}
	var up, down []NodeID
	a, b := u, v
	for t.Depth[a] > t.Depth[b] {
		up = append(up, a)
		a = t.Parent[a]
	}
	for t.Depth[b] > t.Depth[a] {
		down = append(down, b)
		b = t.Parent[b]
	}
	for a != b {
		up = append(up, a)
		down = append(down, b)
		a = t.Parent[a]
		b = t.Parent[b]
	}
	up = append(up, a) // LCA
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}
