package partwise

import (
	"errors"
	"testing"
	"testing/quick"

	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/shortcut"
)

func newNet(g *graph.Graph, supported bool) *congest.Network {
	return congest.NewNetwork(g, congest.Options{Seed: 1, Supported: supported})
}

// rowInstance: rows of a grid as parts (1-congested), values = node IDs.
func rowInstance(rows, cols int) (*graph.Graph, *Instance) {
	g := graph.Grid(rows, cols)
	inst := &Instance{}
	for r := 0; r < rows; r++ {
		var part []graph.NodeID
		var vals []congest.Word
		for c := 0; c < cols; c++ {
			v := graph.GridID(cols, r, c)
			part = append(part, v)
			vals = append(vals, congest.Word(v))
		}
		inst.Parts = append(inst.Parts, part)
		inst.Values = append(inst.Values, vals)
	}
	return g, inst
}

func TestInstanceValidate(t *testing.T) {
	g, inst := rowInstance(3, 3)
	if err := inst.Validate(g); err != nil {
		t.Fatal(err)
	}
	bad := &Instance{Parts: inst.Parts, Values: inst.Values[:2]}
	if err := bad.Validate(g); !errors.Is(err, ErrValuesMismatch) {
		t.Fatalf("err=%v", err)
	}
	bad2 := &Instance{Parts: [][]graph.NodeID{{0, 1}}, Values: [][]congest.Word{{1, 2, 3}}}
	if err := bad2.Validate(g); !errors.Is(err, ErrValuesMismatch) {
		t.Fatalf("err=%v", err)
	}
}

func TestExpected(t *testing.T) {
	_, inst := rowInstance(2, 3)
	sums := inst.Expected(Sum)
	if sums[0] != 0+1+2 || sums[1] != 3+4+5 {
		t.Fatalf("sums=%v", sums)
	}
	mins := inst.Expected(Min)
	if mins[0] != 0 || mins[1] != 3 {
		t.Fatalf("mins=%v", mins)
	}
	maxs := inst.Expected(Max)
	if maxs[0] != 2 || maxs[1] != 5 {
		t.Fatalf("maxs=%v", maxs)
	}
}

func TestAggSpecIdentities(t *testing.T) {
	for _, spec := range []AggSpec{Sum, Min, Max, And, Or} {
		for _, w := range []congest.Word{-5, 0, 3, 1} {
			if spec.Name == "and" || spec.Name == "or" {
				if w != 0 && w != 1 {
					continue
				}
			}
			if got := spec.Fn(spec.Identity, w); got != w {
				t.Fatalf("%s: identity⊕%d = %d", spec.Name, w, got)
			}
			if got := spec.Fn(w, spec.Identity); got != w {
				t.Fatalf("%s: %d⊕identity = %d", spec.Name, w, got)
			}
		}
	}
}

func TestGridCongestedInstance(t *testing.T) {
	g, inst := GridCongestedInstance(4)
	if err := inst.Validate(g); err != nil {
		t.Fatal(err)
	}
	if inst.Congestion() != 2 {
		t.Fatalf("congestion=%d, want 2", inst.Congestion())
	}
	if len(inst.Parts) != 8 {
		t.Fatalf("parts=%d", len(inst.Parts))
	}
}

func TestMinOneCongestedCoverFig1(t *testing.T) {
	// Observation 14: every row intersects every column, so a direct
	// decomposition into 1-congested instances needs >= s classes even
	// though p=2... (rows are mutually disjoint, as are columns, so the
	// conflict graph is complete bipartite: exactly 2 classes suffice for
	// rows-vs-columns — the Ω(√n) blowup appears for parts that pairwise
	// intersect). Check both shapes.
	_, inst := GridCongestedInstance(5)
	if c := MinOneCongestedCover(inst.Parts); c != 2 {
		t.Fatalf("rows/cols cover=%d, want 2", c)
	}
	// Pairwise-intersecting parts: diagonal "L" parts all sharing node 0.
	g := graph.Star(6)
	var parts [][]graph.NodeID
	for leaf := 1; leaf < 6; leaf++ {
		parts = append(parts, []graph.NodeID{0, leaf})
	}
	_ = g
	if c := MinOneCongestedCover(parts); c != 5 {
		t.Fatalf("pairwise-intersecting cover=%d, want 5", c)
	}
	if MinOneCongestedCover(nil) != 0 {
		t.Fatal("empty cover")
	}
}

func TestNaiveGlobalSolver(t *testing.T) {
	for _, supported := range []bool{false, true} {
		g, inst := rowInstance(4, 5)
		nw := newNet(g, supported)
		out, err := NaiveGlobalSolver{}.Solve(nw, inst, Sum)
		if err != nil {
			t.Fatal(err)
		}
		want := inst.Expected(Sum)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("supported=%v: part %d: got %d want %d", supported, i, out[i], want[i])
			}
		}
		if nw.Rounds() == 0 {
			t.Fatal("no rounds charged")
		}
		if supported {
			continue
		}
		// Unsupported mode additionally pays the BFS.
		nw2 := newNet(g, true)
		if _, err := (NaiveGlobalSolver{}).Solve(nw2, inst, Sum); err != nil {
			t.Fatal(err)
		}
		if nw.Rounds() <= nw2.Rounds() {
			t.Fatalf("CONGEST rounds %d should exceed Supported rounds %d",
				nw.Rounds(), nw2.Rounds())
		}
	}
}

func TestShortcutSolverMatchesExpected(t *testing.T) {
	g, inst := rowInstance(5, 5)
	for _, spec := range []AggSpec{Sum, Min, Max} {
		nw := newNet(g, true)
		out, err := NewShortcutSolver().Solve(nw, inst, spec)
		if err != nil {
			t.Fatal(err)
		}
		want := inst.Expected(spec)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("%s part %d: got %d want %d", spec.Name, i, out[i], want[i])
			}
		}
	}
}

func TestShortcutSolverRejectsCongested(t *testing.T) {
	g, inst := GridCongestedInstance(3)
	nw := newNet(g, true)
	if _, err := NewShortcutSolver().Solve(nw, inst, Sum); !errors.Is(err, ErrCongested) {
		t.Fatalf("err=%v", err)
	}
}

func TestShortcutSolverChargesConstructionInCongest(t *testing.T) {
	g, inst := rowInstance(4, 4)
	supp := newNet(g, true)
	cong := newNet(g, false)
	if _, err := NewShortcutSolver().Solve(supp, inst, Sum); err != nil {
		t.Fatal(err)
	}
	if _, err := NewShortcutSolver().Solve(cong, inst, Sum); err != nil {
		t.Fatal(err)
	}
	if cong.Rounds() <= supp.Rounds() {
		t.Fatalf("CONGEST %d <= Supported %d", cong.Rounds(), supp.Rounds())
	}
}

func TestDecomposePartPath(t *testing.T) {
	g := graph.Path(6)
	paths, err := decomposePart(g, []graph.NodeID{0, 1, 2, 3, 4, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A path decomposes into a single heavy path.
	if len(paths) != 1 || len(paths[0].nodes) != 6 || paths[0].level != 0 {
		t.Fatalf("paths=%+v", paths)
	}
	if paths[0].attach != -1 {
		t.Fatal("root path should have no attachment")
	}
}

func TestDecomposePartStar(t *testing.T) {
	g := graph.Star(6)
	part := []graph.NodeID{0, 1, 2, 3, 4, 5}
	paths, err := decomposePart(g, part, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Star from center: one level-0 path (center + one leaf) and 4
	// level-1 singleton paths.
	if len(paths) != 5 {
		t.Fatalf("got %d paths", len(paths))
	}
	levels := map[int]int{}
	for _, p := range paths {
		levels[p.level]++
		if p.part != 3 {
			t.Fatal("part index not propagated")
		}
		if p.level > 0 {
			if p.attach == -1 || p.attachEdge == -1 {
				t.Fatalf("light path missing attachment: %+v", p)
			}
		}
	}
	if levels[0] != 1 || levels[1] != 4 {
		t.Fatalf("levels=%v", levels)
	}
}

func TestDecomposePartCoversEachNodeOnce(t *testing.T) {
	g := graph.RandomConnected(40, 20, 1, 5)
	part := make([]graph.NodeID, 40)
	for i := range part {
		part[i] = i
	}
	paths, err := decomposePart(g, part, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.NodeID]int{}
	for _, p := range paths {
		for _, v := range p.nodes {
			seen[v]++
		}
	}
	if len(seen) != 40 {
		t.Fatalf("covered %d nodes", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("node %d on %d paths", v, c)
		}
	}
	// Heavy-path level bound: O(log n).
	if maxPathLevel(paths) > 7 {
		t.Fatalf("max level %d too deep for n=40", maxPathLevel(paths))
	}
}

func TestLayeredSolverOnFig1(t *testing.T) {
	g, inst := GridCongestedInstance(5)
	for _, spec := range []AggSpec{Sum, Min, Max} {
		nw := newNet(g, true)
		out, err := NewLayeredSolver(7).Solve(nw, inst, spec)
		if err != nil {
			t.Fatal(err)
		}
		want := inst.Expected(spec)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("%s part %d: got %d want %d", spec.Name, i, out[i], want[i])
			}
		}
		if nw.Rounds() == 0 {
			t.Fatal("no rounds charged")
		}
	}
}

func TestLayeredSolverOnOneCongested(t *testing.T) {
	g, inst := rowInstance(4, 6)
	nw := newNet(g, true)
	out, err := NewLayeredSolver(3).Solve(nw, inst, Sum)
	if err != nil {
		t.Fatal(err)
	}
	want := inst.Expected(Sum)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("part %d: got %d want %d", i, out[i], want[i])
		}
	}
}

func TestLayeredSolverHighCongestion(t *testing.T) {
	g := graph.Grid(5, 5)
	inst := RandomCongestedInstance(g, 4, 3, 11)
	if err := inst.Validate(g); err != nil {
		t.Fatal(err)
	}
	if inst.Congestion() != 4 {
		t.Fatalf("congestion=%d, want 4", inst.Congestion())
	}
	nw := newNet(g, true)
	out, err := NewLayeredSolver(5).Solve(nw, inst, Min)
	if err != nil {
		t.Fatal(err)
	}
	want := inst.Expected(Min)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("part %d: got %d want %d", i, out[i], want[i])
		}
	}
}

func TestSolveOneCongestedWholeGraph(t *testing.T) {
	g := graph.Grid(4, 4)
	nw := newNet(g, true)
	all := make([]graph.NodeID, 16)
	for i := range all {
		all[i] = i
	}
	out, sc, err := SolveOneCongested(nw, [][]graph.NodeID{all},
		func(_ int, v graph.NodeID) congest.Word { return 1 }, Sum,
		shortcut.DefaultPortfolio())
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 16 {
		t.Fatalf("count=%d", out[0])
	}
	if sc == nil || sc.Quality() <= 0 {
		t.Fatal("missing shortcut certificate")
	}
}

func TestRandomCongestedInstanceShape(t *testing.T) {
	g := graph.Grid(4, 4)
	inst := RandomCongestedInstance(g, 3, 2, 1)
	if err := inst.Validate(g); err != nil {
		t.Fatal(err)
	}
	if c := inst.Congestion(); c != 3 {
		t.Fatalf("congestion=%d, want 3", c)
	}
}

// Property: all three solvers agree with Expected on random congested
// instances (the layered solver) and 1-congested instances (all).
func TestSolversAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(24, 12, 1, seed)
		parts := shortcut.TreePartition(g, 4)
		inst := &Instance{Parts: parts}
		for _, p := range parts {
			vals := make([]congest.Word, len(p))
			for i, v := range p {
				vals[i] = congest.Word(v*3 + 1)
			}
			inst.Values = append(inst.Values, vals)
		}
		want := inst.Expected(Sum)
		for _, solver := range []Solver{NaiveGlobalSolver{}, NewShortcutSolver(), NewLayeredSolver(seed)} {
			nw := newNet(g, true)
			out, err := solver.Solve(nw, inst, Sum)
			if err != nil {
				return false
			}
			for i := range want {
				if out[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: the layered solver is correct on p-congested instances for
// p in 2..4 with min aggregation.
func TestLayeredCongestedProperty(t *testing.T) {
	f := func(seed int64, pp uint8) bool {
		p := int(pp%3) + 2
		g := graph.Grid(4, 4)
		inst := RandomCongestedInstance(g, p, 3, seed)
		nw := newNet(g, true)
		out, err := NewLayeredSolver(seed).Solve(nw, inst, Min)
		if err != nil {
			return false
		}
		want := inst.Expected(Min)
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
